// Command primad serves a MAD database over TCP — PRIMA as a server
// process: molecule processing with an MQL interface on top of the
// atom-oriented storage layer (Chapter 5 of the paper).
//
// Usage:
//
//	primad -addr 127.0.0.1:7227 -geo          # serve the Fig. 1 sample
//	primad -addr :7227 -db snapshot.mad       # serve a snapshot
//
// Protocol (see internal/server): "REQ <n>\n"+payload in,
// "OK|ERR <n>\n"+payload out. The molshell counterpart is left as a
// library client (server.Dial / Client.Exec).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mad/internal/codec"
	"mad/internal/geo"
	"mad/internal/server"
	"mad/internal/storage"
)

func main() {
	var (
		addrFlag = flag.String("addr", "127.0.0.1:7227", "listen address")
		geoFlag  = flag.Bool("geo", false, "serve the Fig. 1 geographic sample database")
		dbFlag   = flag.String("db", "", "serve a database snapshot")
		saveFlag = flag.String("save", "", "write a snapshot to this path on shutdown")
	)
	flag.Parse()

	var db *storage.Database
	switch {
	case *dbFlag != "":
		loaded, err := codec.Load(*dbFlag)
		if err != nil {
			fatal(err)
		}
		db = loaded
	case *geoFlag:
		s, err := geo.BuildSample()
		if err != nil {
			fatal(err)
		}
		db = s.DB
	default:
		db = storage.NewDatabase()
	}

	srv := server.New(db)
	addr, err := srv.Listen(*addrFlag)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("primad listening on %s (%d atoms, %d links)\n",
		addr, db.TotalAtoms(), db.TotalLinks())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nprimad: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(); err != nil {
		fatal(err)
	}
	if *saveFlag != "" {
		if err := codec.Save(db, *saveFlag); err != nil {
			fatal(err)
		}
		fmt.Printf("primad: snapshot written to %s\n", *saveFlag)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "primad: %v\n", err)
	os.Exit(1)
}
