// Command madviz emits Graphviz DOT renderings of MAD schemas (the MAD
// diagram of Fig. 1), molecule structures (the type graphs of Fig. 2) and
// single molecule instances with shared subobjects highlighted.
//
// Usage:
//
//	madviz -geo                                  # schema of the sample DB
//	madviz -db snapshot.mad                      # schema of a snapshot
//	madviz -geo -structure "point-edge-(area-state, net-river)"
//	madviz -geo -structure "state-area-edge-point" -molecule 1
package main

import (
	"flag"
	"fmt"
	"os"

	"mad/internal/codec"
	"mad/internal/geo"
	"mad/internal/mql"
	"mad/internal/storage"
	"mad/internal/viz"
)

func main() {
	var (
		geoFlag    = flag.Bool("geo", false, "use the Fig. 1 geographic sample database")
		dbFlag     = flag.String("db", "", "load a database snapshot from this path")
		structFlag = flag.String("structure", "", "render a molecule structure instead of the schema")
		molFlag    = flag.Int("molecule", 0, "render the n-th molecule (1-based) of the structure")
	)
	flag.Parse()

	var db *storage.Database
	switch {
	case *dbFlag != "":
		loaded, err := codec.Load(*dbFlag)
		if err != nil {
			fatal(err)
		}
		db = loaded
	case *geoFlag:
		s, err := geo.BuildSample()
		if err != nil {
			fatal(err)
		}
		db = s.DB
	default:
		fmt.Fprintln(os.Stderr, "madviz: need -geo or -db (schema source)")
		os.Exit(2)
	}

	if *structFlag == "" {
		fmt.Print(viz.SchemaDOT(db))
		return
	}
	stmt, err := mql.Parse("SELECT ALL FROM " + *structFlag)
	if err != nil {
		fatal(err)
	}
	sel, ok := stmt.(*mql.SelectStmt)
	if !ok || sel.From.Struct == nil {
		fatal(fmt.Errorf("not a structure: %q", *structFlag))
	}
	desc, err := mql.BuildDesc(db, sel.From.Struct)
	if err != nil {
		fatal(err)
	}
	if *molFlag <= 0 {
		fmt.Print(viz.StructureDOT(desc))
		return
	}
	// Render the n-th molecule of the structure's occurrence.
	sess := mql.NewSession(db)
	res, err := sess.Exec("SELECT ALL FROM " + *structFlag + ";")
	if err != nil {
		fatal(err)
	}
	if *molFlag > len(res.Set) {
		fatal(fmt.Errorf("only %d molecule(s) derived", len(res.Set)))
	}
	fmt.Print(viz.MoleculeDOT(db, res.Set[*molFlag-1]))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "madviz: %v\n", err)
	os.Exit(1)
}
