// Command madbench regenerates the paper's evaluation artifacts: every
// figure (F1–F5), the Chapter-4 example queries (Q1, Q2) and the
// performance experiments (P1–P8). See DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded outputs.
//
// Usage:
//
//	madbench                 # run everything at scale 1
//	madbench -exp F2,Q2      # run selected experiments
//	madbench -scale 4        # larger workloads for the P-series
//	madbench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mad/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scaleFlag = flag.Int("scale", 1, "workload scale factor for the P-series")
		listFlag  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *expFlag == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(strings.ToUpper(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "madbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		if err := e.Run(os.Stdout, *scaleFlag); err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
