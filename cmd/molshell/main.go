// Command molshell is an interactive MQL shell over a MAD database.
//
// Usage:
//
//	molshell                    # empty in-memory database
//	molshell -geo               # preload the Fig. 1 geographic sample
//	molshell -db path.mad       # load a snapshot (saved on \save)
//	molshell -data dir          # durable database: WAL + checkpoints
//	echo "SELECT ...;" | molshell -geo
//
// With -data every committed statement is fsynced through the write-ahead
// log before it acknowledges, and the CHECKPOINT statement snapshots the
// database (including planner statistics and feedback) so the next start
// replays less log and plans warm.
//
// Statements end with ';'. Shell commands: \h help, \q quit,
// \save [path] snapshot, \stats counters, \trace toggles operation traces.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"mad"
	"mad/internal/codec"
	"mad/internal/geo"
	"mad/internal/mql"
	"mad/internal/storage"
)

func main() {
	var (
		geoFlag  = flag.Bool("geo", false, "preload the Fig. 1 geographic sample database")
		dbFlag   = flag.String("db", "", "load a database snapshot from this path")
		dataFlag = flag.String("data", "", "open a durable database in this directory (WAL + checkpoints)")
	)
	flag.Parse()

	db, err := openDatabase(*geoFlag, *dbFlag, *dataFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "molshell: %v\n", err)
		os.Exit(1)
	}
	defer closeDatabase(db)
	sess := mql.NewSession(db)

	interactive := isTerminalLike()
	if interactive {
		fmt.Println("molshell — MQL over the molecule-atom data model (\\h for help)")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var buf strings.Builder
	prompt(interactive, buf.Len() > 0)
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if quit := shellCommand(trimmed, db, *dbFlag); quit {
				return
			}
			prompt(interactive, false)
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			src := buf.String()
			buf.Reset()
			results, err := sess.ExecScript(src)
			for _, r := range results {
				fmt.Print(r.Render(db))
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
		prompt(interactive, buf.Len() > 0)
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "molshell: %v\n", err)
		os.Exit(1)
	}
}

func openDatabase(loadGeo bool, path, dataDir string) (*storage.Database, error) {
	switch {
	case dataDir != "":
		if path != "" {
			return nil, fmt.Errorf("-data and -db are mutually exclusive")
		}
		db, err := mad.Open(dataDir)
		if err != nil {
			return nil, err
		}
		if loadGeo && db.TotalAtoms() == 0 {
			if err := seedGeo(db); err != nil {
				db.Close()
				return nil, err
			}
		}
		return db, nil
	case path != "":
		return codec.Load(path)
	case loadGeo:
		s, err := geo.BuildSample()
		if err != nil {
			return nil, err
		}
		return s.DB, nil
	default:
		return storage.NewDatabase(), nil
	}
}

// seedGeo loads the geographic sample into a fresh durable database by
// replaying its build script, so the data goes through the WAL.
func seedGeo(db *storage.Database) error {
	s, err := geo.BuildSample()
	if err != nil {
		return err
	}
	var out strings.Builder
	if err := storage.EncodeSnapshot(s.DB, &out); err != nil {
		return err
	}
	src, err := storage.DecodeSnapshot(strings.NewReader(out.String()))
	if err != nil {
		return err
	}
	return copyInto(db, src)
}

// copyInto replays src's schema and occurrences into db as ordinary
// commits.
func copyInto(db, src *storage.Database) error {
	for _, at := range src.Schema().AtomTypes() {
		if _, err := db.DefineAtomType(at.Name, at.Desc); err != nil {
			return err
		}
	}
	for _, lt := range src.Schema().LinkTypes() {
		if _, err := db.DefineLinkType(lt.Name, lt.Desc); err != nil {
			return err
		}
	}
	for _, at := range src.Schema().AtomTypes() {
		var ierr error
		src.ScanAtoms(at.Name, func(a mad.Atom) bool {
			ierr = db.AdoptAtom(at.Name, a)
			return ierr == nil
		})
		if ierr != nil {
			return ierr
		}
	}
	for _, lt := range src.Schema().LinkTypes() {
		ls, ok := src.LinkStore(lt.Name)
		if !ok {
			continue
		}
		var cerr error
		ls.Scan(func(l mad.Link) bool {
			cerr = db.Connect(lt.Name, l.A, l.B)
			return cerr == nil
		})
		if cerr != nil {
			return cerr
		}
	}
	return nil
}

func closeDatabase(db *storage.Database) {
	if err := db.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "molshell: close: %v\n", err)
	}
}

func prompt(interactive, continuation bool) {
	if !interactive {
		return
	}
	if continuation {
		fmt.Print("   ...> ")
	} else {
		fmt.Print("mql> ")
	}
}

// isTerminalLike decides whether to print prompts without resorting to
// syscalls: piped input usually arrives with MOLSHELL_BATCH set by tests,
// and prompts are harmless otherwise.
func isTerminalLike() bool {
	return os.Getenv("MOLSHELL_BATCH") == ""
}

// shellCommand executes a backslash command; it reports whether to quit.
func shellCommand(cmd string, db *storage.Database, defaultPath string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		closeDatabase(db)
		os.Exit(0)
	case "\\h", "\\help":
		fmt.Println(`statements end with ';'. Examples:
  SELECT ALL FROM mt_state(state-area-edge-point);
  SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';
  DEFINE MOLECULE TYPE big AS SELECT ALL FROM state-area WHERE hectare > 300;
  SELECT ALL FROM RECURSIVE parts VIA composition WHERE name = 'car';
  CREATE ATOM TYPE t (a STRING NOT NULL, b INT); INSERT INTO t VALUES ('x', 1);
  SHOW SCHEMA;  SHOW MOLECULE TYPES;  SHOW HISTOGRAMS;
  ANALYZE;  ANALYZE state;          -- build planner histograms
  CHECKPOINT;                        -- durable snapshot (-data mode)
  EXPLAIN SELECT ...;  EXPLAIN (ESTIMATE) SELECT ...;
shell: \q quit, \save [path] snapshot, \stats counters`)
	case "\\stats":
		fmt.Println(db.Stats().Snapshot().String())
	case "\\save":
		path := defaultPath
		if len(fields) > 1 {
			path = fields[1]
		}
		if path == "" {
			fmt.Fprintln(os.Stderr, "error: \\save needs a path (no -db given)")
			return false
		}
		if err := codec.Save(db, path); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		} else {
			fmt.Printf("saved to %s\n", path)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s (\\h for help)\n", fields[0])
	}
	return false
}
