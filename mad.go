// Package mad is the public API of the molecule-atom data model (MAD)
// library — a reproduction of "Extending the Relational Algebra to Capture
// Complex Objects" (Mitschang, VLDB 1989).
//
// The MAD model extends the relational model with atoms (identifiable,
// typed records) connected by bidirectional, symmetric links. Complex
// objects — molecules — are defined *dynamically* per query as directed
// acyclic structures laid over the atom networks, and may overlap: shared
// subobjects are first class. The molecule algebra (Σ, Π, X, Ω, Δ, Ψ over
// molecule types; π, σ, ×, ω, δ over atom types) is closed: every result
// is a molecule type over a correspondingly enlarged database, and the
// MQL query language is defined by translation into that algebra.
//
// Quick start:
//
//	db := mad.NewDatabase()
//	sess := mad.NewSession(db)
//	sess.ExecScript(`
//	    CREATE ATOM TYPE state (name STRING NOT NULL, hectare FLOAT);
//	    CREATE ATOM TYPE area  (tag STRING NOT NULL);
//	    CREATE LINK TYPE state-area BETWEEN state AND area;
//	    INSERT INTO state VALUES ('Minas Gerais', 900.0);
//	    INSERT INTO area VALUES ('a_MG');
//	    CONNECT state TO area VIA state-area;
//	`)
//	res, _ := sess.Exec(`SELECT ALL FROM state-area WHERE hectare > 500;`)
//	fmt.Print(res.Render(db))
//
// The facade re-exports the stable types of the internal packages; the
// full machinery (storage engine, atom-type algebra, molecule algebra,
// NF² and relational baselines, ER mappings, recursive molecules, binary
// snapshots, two-layer PRIMA-style engine) lives beneath it and is
// documented per package.
package mad

import (
	"mad/internal/atomalg"
	"mad/internal/codec"
	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/mql"
	"mad/internal/plan"
	"mad/internal/prima"
	"mad/internal/recursive"
	"mad/internal/storage"
	"mad/internal/storage/stats"
)

// Core data-model types.
type (
	// Database is a MAD database: schema plus atom and link occurrences.
	Database = storage.Database
	// Value is one attribute value (null/bool/int/float/string/atom-ID).
	Value = model.Value
	// Kind tags attribute values and attribute declarations.
	Kind = model.Kind
	// AttrDesc declares one attribute of an atom type.
	AttrDesc = model.AttrDesc
	// AtomDesc is an atom-type description (a set of attribute
	// descriptions, Definition 1).
	AtomDesc = model.Desc
	// LinkDesc is a link-type description (the two connected atom types
	// plus optional cardinality restrictions, Definition 2).
	LinkDesc = model.LinkDesc
	// Cardinality bounds one side of an extended link-type definition.
	Cardinality = model.Cardinality
	// AtomID is the unique identifier of an atom.
	AtomID = model.AtomID
	// Atom is one element of an atom-type occurrence.
	Atom = model.Atom
	// Link is one element of a link-type occurrence (an unsorted pair).
	Link = model.Link
)

// Molecule algebra types (the paper's primary contribution).
type (
	// MoleculeType is mt = <mname, md, mv> (Definition 7).
	MoleculeType = core.MoleculeType
	// MoleculeDesc is a molecule-type description md = <C, G>
	// (Definition 5).
	MoleculeDesc = core.Desc
	// DirectedLink is one edge of a molecule-type description.
	DirectedLink = core.DirectedLink
	// Molecule is one element of a molecule-type occurrence.
	Molecule = core.Molecule
	// MoleculeSet is a materialized molecule-type occurrence.
	MoleculeSet = core.MoleculeSet
	// Projection parameterizes the molecule-type projection Π.
	Projection = core.Projection
	// OpTrace records the op-specific/prop/α anatomy of an operation
	// (Fig. 5).
	OpTrace = core.OpTrace
	// RecursiveType is a recursive molecule type over a reflexive link
	// type (Chapter 5).
	RecursiveType = recursive.Type
)

// Concurrency types.
//
// # Migration: locked reads → snapshots and transactions
//
// Since the MVCC redesign the storage layer keeps a short per-key chain
// of versions stamped with a monotonic commit timestamp instead of
// guarding one mutable copy with a global reader/writer lock. Three
// consequences for callers:
//
//   - Reads never block behind writes. Database.Snapshot() pins an
//     immutable, transaction-consistent view of the latest commit; every
//     read method on the snapshot answers from that view no matter what
//     writers commit afterwards. Close it when done — a live snapshot
//     holds the vacuum horizon back.
//   - Plan.Stream pins its own snapshot at cursor open and releases it
//     at exhaustion or Close, so a long streaming SELECT observes exactly
//     one commit timestamp end to end (no torn molecules). Plan.StreamAt
//     runs a cursor against a caller-owned snapshot instead — that is how
//     SELECTs inside an MQL transaction read the begin snapshot.
//   - Database.Begin() opens a buffered-write Txn: its mutations stay
//     private (validated, but invisible — even to the transaction's own
//     reads) until Commit installs them atomically under the next commit
//     timestamp. Rollback discards them. MQL exposes the same protocol as
//     BEGIN [TRANSACTION] / COMMIT / ROLLBACK per session.
//
// Direct mutators (Database.InsertAtom, Connect, ...) behave exactly as
// before — each is now simply a single-statement transaction. Old
// versions are reclaimed by Database.Vacuum (or a StartVacuum background
// loop) once no live snapshot can reach them.
type (
	// Txn is a buffered-write transaction over the database: writes
	// validate eagerly against its begin snapshot but install atomically
	// at Commit (see Database.Begin).
	Txn = storage.Txn
	// Snapshot is an immutable, transaction-consistent read view pinned
	// at one commit timestamp (see Database.Snapshot); Close releases it.
	Snapshot = storage.Snapshot
	// VacuumStats reports one vacuum pass (versions reclaimed, horizon).
	VacuumStats = storage.VacuumStats
)

// Begin opens a buffered-write transaction (Database.Begin shorthand).
func Begin(db *Database) *Txn { return db.Begin() }

// TakeSnapshot pins an immutable consistent read view of the latest
// commit (Database.Snapshot shorthand); Close it when done.
func TakeSnapshot(db *Database) *Snapshot { return db.Snapshot() }

// Language and engine types.
//
// # Migration: Exec → QueryContext
//
// Since the streaming redesign, Session.Exec is a thin collect-all
// wrapper: it parses, plans and executes exactly as before, but the
// engine underneath now streams molecules off a bounded channel and
// Exec merely drains it. Existing code keeps working unchanged. New
// code — and any code that wants cancellation, deadlines, result caps
// or bounded memory — should move to the streaming surface:
//
//	cur, err := sess.QueryContext(ctx, `SELECT ALL FROM mt_state;`,
//	    mad.WithWorkers(4), mad.WithLimit(100))
//	defer cur.Close()
//	for m := range cur.Seq() { ... }   // or cur.Next() in a loop
//	if err := cur.Err(); err != nil { ... }
//
// The same options are available inside MQL itself: `SET WORKERS n;`
// and `SET NOCACHE TRUE;` install session defaults, and a SELECT may
// carry a trailing `LIMIT n`. A SELECT may also order its stream
// (`ORDER BY attr [ASC|DESC]` on a root attribute — served off an
// ordered index ride when one covers the attribute, a bounded top-K
// heap under LIMIT, a terminal sort otherwise) or aggregate instead of
// materialize (`SELECT COUNT ... [GROUP BY attr]`, folded batch by
// batch off the stream). Plan-level callers migrate from
// Plan.Execute to Plan.Stream(ctx) the same way; Execute remains as the
// collect-all form.
type (
	// Session executes MQL statements.
	Session = mql.Session
	// Result is the outcome of one MQL statement.
	Result = mql.Result
	// Cursor is the streaming result of one MQL statement: molecules
	// arrive incrementally in deterministic order, with the SELECT
	// list's projection applied per molecule (see Session.QueryContext).
	Cursor = mql.Cursor
	// QueryOption tunes one QueryContext call (WithWorkers, WithLimit,
	// WithNoCache).
	QueryOption = mql.QueryOption
	// Stream is a plan's incremental result cursor: the fused parallel
	// executor feeds it through a bounded channel, so first results
	// arrive before the batch materializes and cancelling its context
	// stops the workers mid-derivation (see Plan.Stream).
	Stream = plan.Stream
	// Engine is the two-layer PRIMA-style engine with per-layer work
	// accounting.
	Engine = prima.Engine
	// Expr is a qualification-formula node (restriction predicates).
	Expr = expr.Expr
	// Plan is a compiled query plan: access path (root scan, root index
	// or interior-index entry climbed upward through the symmetric
	// links), derivation with per-atom-type predicate pushdown fanned
	// over the worker pool, cost-ordered residual restriction.
	Plan = plan.Plan
	// PlanAlternative is one access path the planner considered, with
	// its estimated cost — the EXPLAIN "considered" provenance.
	PlanAlternative = plan.Alternative
	// PlanCache memoizes compiled plans per database, invalidated by DDL
	// and ANALYZE through the plan epoch.
	PlanCache = plan.Cache
	// PlanFeedback records what executions actually observed — molecule-
	// level residual pass rates, per-root derivation work, per-entry
	// climb work — and feeds them back into later compiles and
	// executions (EXPLAIN provenance [observed]).
	PlanFeedback = plan.Feedback
	// FixpointPlan is a compiled recursive derivation: a semi-naive delta
	// fixpoint whose entry point (full scan vs indexed root equality) is
	// contested on the link-fan closure estimate, with WHERE conjuncts
	// pruning seed roots before expansion (see CompileFixpoint).
	FixpointPlan = plan.FixpointPlan
	// FixpointStream is a fixpoint plan's incremental cursor: each
	// molecule streams out the moment its own closure finishes, at a
	// snapshot pinned for the whole run.
	FixpointStream = plan.FixpointStream
	// RecursiveMolecule is one recursive molecule: the root, the atoms
	// grouped by the level the closure first reached them, the links.
	RecursiveMolecule = recursive.Molecule
	// Histogram is a per-attribute equi-depth histogram — the statistics
	// ANALYZE builds and the planner estimates selectivities from.
	Histogram = stats.Histogram
)

// Value kinds.
const (
	KNull   = model.KNull
	KBool   = model.KBool
	KInt    = model.KInt
	KFloat  = model.KFloat
	KString = model.KString
	KID     = model.KID
)

// Per-query execution options for Session.QueryContext.
var (
	// WithWorkers bounds the worker pool of one query (0 = all cores,
	// 1 = sequential).
	WithWorkers = mql.WithWorkers
	// WithLimit caps the molecules delivered; the in-flight derivation
	// is cancelled once the cap is reached.
	WithLimit = mql.WithLimit
	// WithNoCache compiles the query's plan fresh, bypassing the plan
	// cache.
	WithNoCache = mql.WithNoCache
)

// NewDatabase returns an empty MAD database.
func NewDatabase() *Database { return storage.NewDatabase() }

// NewSession opens an MQL session over a database.
func NewSession(db *Database) *Session { return mql.NewSession(db) }

// NewEngine opens a two-layer engine over a database.
func NewEngine(db *Database) *Engine { return prima.New(db) }

// NewAtomDesc builds an atom-type description.
func NewAtomDesc(attrs ...AttrDesc) (*AtomDesc, error) { return model.NewDesc(attrs...) }

// Values.
var (
	// Null is the null value.
	Null = model.Null
	// Bool wraps a boolean.
	Bool = model.Bool
	// Int wraps an integer.
	Int = model.Int
	// Float wraps a float.
	Float = model.Float
	// Str wraps a string.
	Str = model.Str
)

// Define is the molecule-type definition α[mname, G](C) (Definition 8).
func Define(db *Database, name string, types []string, edges []DirectedLink) (*MoleculeType, error) {
	return core.Define(db, name, types, edges)
}

// Restrict is the molecule-type restriction Σ (Definition 10); it enlarges
// the database with the propagated result (Definition 9) and returns the
// result type. A nil trace disables tracing.
func Restrict(mt *MoleculeType, pred Expr, resultName string, tr *OpTrace) (*MoleculeType, error) {
	return core.Restrict(mt, pred, resultName, tr)
}

// CompilePlan compiles a plan for deriving desc under pred (nil = no
// restriction): the access path is chosen by costing every entry point —
// root scan, root index, or an interior-index entry that climbs the
// symmetric links upward from a selective mid-structure match — against
// histogram statistics (falling back to index cardinalities and link
// fan-outs); pushdown conjuncts cut subtrees during derivation, and the
// residual conjuncts run per molecule in selectivity × cost order.
// Execute it for the qualifying set; Render it for EXPLAIN.
//
// Compiling and executing consults the database's execution-feedback
// store only if one exists (PlanCacheFor and PlanFeedbackFor create it);
// a database that never opted in is not pinned by any registry.
func CompilePlan(db *Database, desc *MoleculeDesc, pred Expr) (*Plan, error) {
	return plan.Compile(db, desc, pred)
}

// CompileFixpoint plans a recursive derivation over atomType closed under
// one direction of the reflexive link type, optionally depth-bounded and
// restricted by pred (nil = all roots): the entry contest weighs a full
// scan against each indexed root equality using histogram selectivities
// and the AvgFan^depth closure estimate, non-entry conjuncts prune seed
// roots before a single link is traversed, and Stream delivers each
// molecule as its closure finishes, at one pinned snapshot. Render it
// for the [fixpoint] EXPLAIN form.
func CompileFixpoint(db *Database, atomType, link string, up bool, depth int, pred Expr) (*FixpointPlan, error) {
	return plan.CompileFixpoint(db, atomType, link, up, depth, pred)
}

// PlanCacheFor returns the plan cache shared by every session over db.
// Cache.Compile memoizes compilations until DDL, index changes or
// Analyze invalidate them (the MQL session layer goes through it
// automatically). Entries evict least-recently-used first.
func PlanCacheFor(db *Database) *PlanCache { return plan.CacheFor(db) }

// PlanFeedbackFor returns the execution-feedback store shared by every
// session over db, creating it on first use (PlanCacheFor creates it
// too, so MQL sessions always learn). Executions record their observed
// residual pass rates and access-path work into it; subsequent compiles
// and executions rank residual chains and weigh access-path contests
// from those observations instead of the histogram guesses. ANALYZE and
// DDL reset it through the plan epoch; ReleasePlanCache drops it.
func PlanFeedbackFor(db *Database) *PlanFeedback { return plan.FeedbackFor(db) }

// ReleasePlanCache drops the database's plan cache and execution-
// feedback store from the process-wide registries. Call it when a
// database goes out of use — the registries otherwise pin both (and
// through them the database) for the life of the process.
func ReleasePlanCache(db *Database) { plan.Release(db) }

// Analyze builds equi-depth histograms over every attribute of the named
// atom types (all types when none are given) — the MQL ANALYZE
// statement. It returns the number of histograms built.
func Analyze(db *Database, typeNames ...string) (int, error) {
	return db.Analyze(typeNames...)
}

// PlannedRestrict is Restrict evaluated through the query planner: same
// result, less work when an index or a pushdown applies.
func PlannedRestrict(mt *MoleculeType, pred Expr, resultName string, tr *OpTrace) (*MoleculeType, error) {
	return plan.Restrict(mt, pred, resultName, tr)
}

// Project is the molecule-type projection Π.
func Project(mt *MoleculeType, p Projection, resultName string, tr *OpTrace) (*MoleculeType, error) {
	return core.Project(mt, p, resultName, tr)
}

// Product is the molecule-type cartesian product X.
func Product(mt1, mt2 *MoleculeType, resultName string, tr *OpTrace) (*MoleculeType, error) {
	return core.Product(mt1, mt2, resultName, tr)
}

// Union is the molecule-type union Ω.
func Union(mt1, mt2 *MoleculeType, resultName string, tr *OpTrace) (*MoleculeType, error) {
	return core.Union(mt1, mt2, resultName, tr)
}

// Difference is the molecule-type difference Δ.
func Difference(mt1, mt2 *MoleculeType, resultName string, tr *OpTrace) (*MoleculeType, error) {
	return core.Difference(mt1, mt2, resultName, tr)
}

// Intersect is the derived intersection Ψ(a, b) = Δ(a, Δ(a, b)).
func Intersect(mt1, mt2 *MoleculeType, resultName string, tr *OpTrace) (*MoleculeType, error) {
	return core.Intersect(mt1, mt2, resultName, tr)
}

// DefineRecursive defines a recursive molecule type over a reflexive link
// type (Chapter 5 / [Schö89]).
func DefineRecursive(db *Database, name, atomType, link string, up bool, depth int) (*RecursiveType, error) {
	return recursive.Define(db, name, atomType, link, up, depth)
}

// Atom-type algebra (Definition 4, Theorem 1). Each operation installs a
// new atom type — with inherited link types — in the database and returns
// its name and inheritance record.
var (
	// AtomProject is the atom-type projection π.
	AtomProject = atomalg.Project
	// AtomRestrict is the atom-type restriction σ.
	AtomRestrict = atomalg.Restrict
	// AtomProduct is the atom-type cartesian product ×.
	AtomProduct = atomalg.Product
	// AtomUnion is the atom-type union ω.
	AtomUnion = atomalg.Union
	// AtomDifference is the atom-type difference δ.
	AtomDifference = atomalg.Difference
)

// Save writes a binary snapshot of the database to a file.
func Save(db *Database, path string) error { return codec.Save(db, path) }

// Load reads a binary snapshot from a file.
func Load(path string) (*Database, error) { return codec.Load(path) }

// Open opens (or creates) a durable database in dir: the newest
// checkpoint is loaded, the write-ahead log tail replayed, persisted
// planner feedback installed, the persisted plan shapes precompiled into
// a warm plan cache, and a group-commit WAL attached so every subsequent
// commit is fsynced before it acknowledges. Checkpoints taken on the
// returned database persist the feedback store and the plan-cache shapes
// beside the data, so a restarted server answers its first queries off
// warm, feedback-calibrated plans. Call Close when done.
func Open(dir string) (*Database, error) {
	db, err := storage.Open(dir)
	if err != nil {
		return nil, err
	}
	if err := plan.LoadFeedback(db, dir); err != nil {
		db.Close()
		return nil, err
	}
	if _, err := plan.WarmCache(db, dir); err != nil {
		db.Close()
		return nil, err
	}
	db.OnCheckpoint(func() error {
		if err := plan.SaveFeedback(db, dir); err != nil {
			return err
		}
		return plan.SaveCacheShapes(db, dir)
	})
	return db, nil
}

// Recover rebuilds the database persisted in dir without attaching a
// write-ahead log — the read-only inspection half of Open.
func Recover(dir string) (*Database, error) { return storage.Recover(dir) }

// Checkpoint writes a consistent snapshot of a durable database and
// truncates its log below it. CheckpointStats reports what was captured.
func Checkpoint(db *Database) (storage.CheckpointStats, error) { return db.Checkpoint() }

// Parse parses one MQL statement without executing it.
func Parse(src string) (mql.Stmt, error) { return mql.Parse(src) }
