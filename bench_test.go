// Repository-level benchmarks: one per experiment of DESIGN.md §4 (the
// madbench command prints the same series as formatted tables). Workloads
// are deterministic, so -benchmem comparisons are stable.
package mad_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"mad"
	"mad/internal/bom"
	"mad/internal/codec"
	"mad/internal/core"
	"mad/internal/er"
	"mad/internal/experiments"
	"mad/internal/expr"
	"mad/internal/geo"
	"mad/internal/mql"
	"mad/internal/nf2"
	"mad/internal/plan"
	"mad/internal/prima"
	"mad/internal/recursive"
	"mad/internal/rel"
)

// mtState defines the Fig. 2 mt_state structure on any geo database.
func mtState(b *testing.B, db *mad.Database) *mad.MoleculeType {
	b.Helper()
	mt, err := mad.Define(db, "", []string{"state", "area", "edge", "point"},
		[]mad.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		b.Fatal(err)
	}
	return mt
}

func synDB(b *testing.B, states, sharing int) *geo.Synth {
	b.Helper()
	syn, err := geo.BuildSynthetic(geo.Config{
		States: states, EdgesPerArea: 3, Sharing: sharing, Rivers: 4, RiverEdges: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	return syn
}

// BenchmarkF1SchemaMapping measures both directions of the Fig. 1 mapping.
func BenchmarkF1SchemaMapping(b *testing.B) {
	d := er.Fig1Diagram()
	b.Run("er_to_mad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := d.ToMAD(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("er_to_relational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := d.ToRelational(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkF2MoleculeDerivation derives the two Fig. 2 molecule types over
// the Brazil sample.
func BenchmarkF2MoleculeDerivation(b *testing.B) {
	s, err := geo.BuildSample()
	if err != nil {
		b.Fatal(err)
	}
	stateMT := mtState(b, s.DB)
	pnMT, err := mad.Define(s.DB, "", []string{"point", "edge", "area", "state", "net", "river"},
		[]mad.DirectedLink{
			{Link: "edge-point", From: "point", To: "edge"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "state-area", From: "area", To: "state"},
			{Link: "net-edge", From: "edge", To: "net"},
			{Link: "river-net", From: "net", To: "river"},
		})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mt_state", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stateMT.Derive(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("point_neighborhood_pn", func(b *testing.B) {
		dv, err := pnMT.Deriver()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dv.DeriveFor(s.PN); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQ1 runs the first Chapter-4 query through MQL and through the
// algebra directly.
func BenchmarkQ1(b *testing.B) {
	s, err := geo.BuildSample()
	if err != nil {
		b.Fatal(err)
	}
	sess := mql.NewSession(s.DB)
	if _, err := sess.Exec("SELECT ALL FROM mt_state(state-area-edge-point);"); err != nil {
		b.Fatal(err)
	}
	b.Run("mql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec("SELECT ALL FROM mt_state;"); err != nil {
				b.Fatal(err)
			}
		}
	})
	mt := mtState(b, s.DB)
	b.Run("algebra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mt.Derive(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQ2 runs the restricted point-neighborhood query, with and
// without the root index.
func BenchmarkQ2(b *testing.B) {
	const q = "SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';"
	b.Run("scan", func(b *testing.B) {
		s, err := geo.BuildSample()
		if err != nil {
			b.Fatal(err)
		}
		sess := mql.NewSession(s.DB)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		s, err := geo.BuildSample()
		if err != nil {
			b.Fatal(err)
		}
		if err := s.DB.CreateIndex("point", "name"); err != nil {
			b.Fatal(err)
		}
		sess := mql.NewSession(s.DB)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP1MadVsRelational is the P1 series: molecule derivation against
// the relational auxiliary-relation join pipeline.
func BenchmarkP1MadVsRelational(b *testing.B) {
	for _, states := range []int{64, 256, 1024} {
		syn := synDB(b, states, 2)
		rdb, err := rel.ImportMAD(syn.DB)
		if err != nil {
			b.Fatal(err)
		}
		mt := mtState(b, syn.DB)
		b.Run(fmt.Sprintf("states=%d/mad_derive", states), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mt.Derive(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("states=%d/relational_joins", states), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.MtStateRelationalJoin(rdb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP2SharingVsNF2 measures molecule materialization cost under
// growing sharing, MAD-shared vs NF²-duplicated.
func BenchmarkP2SharingVsNF2(b *testing.B) {
	for _, sharing := range []int{1, 4, 8} {
		syn, err := geo.BuildSynthetic(geo.Config{
			States: 32, EdgesPerArea: 2, Sharing: sharing, Rivers: 2, RiverEdges: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		mt := mtState(b, syn.DB)
		set, err := mt.Derive()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("sharing=%d/mad_derive", sharing), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mt.Derive(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sharing=%d/nf2_materialize", sharing), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nf2.FromMolecules(syn.DB, set); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP3DynamicDefinition derives five different molecule types from
// one database occurrence.
func BenchmarkP3DynamicDefinition(b *testing.B) {
	syn := synDB(b, 128, 2)
	structures := map[string]struct {
		types []string
		edges []mad.DirectedLink
	}{
		"mt_state": {[]string{"state", "area", "edge", "point"}, []mad.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		}},
		"mt_river": {[]string{"river", "net", "edge", "point"}, []mad.DirectedLink{
			{Link: "river-net", From: "river", To: "net"},
			{Link: "net-edge", From: "net", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		}},
		"edge_neighborhood": {[]string{"edge", "point", "area", "net"}, []mad.DirectedLink{
			{Link: "edge-point", From: "edge", To: "point"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "net-edge", From: "edge", To: "net"},
		}},
	}
	for name, st := range structures {
		mt, err := mad.Define(syn.DB, "", st.types, st.edges)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mt.Derive(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP4PartsExplosion compares adjacency fixpoint vs relational
// self-join closure on the BOM workload.
func BenchmarkP4PartsExplosion(b *testing.B) {
	for _, depth := range []int{6, 8, 10} {
		bm, err := bom.Build(bom.Config{Depth: depth, Branch: 3, Share: 1})
		if err != nil {
			b.Fatal(err)
		}
		rt, err := recursive.Define(bm.DB, "", "parts", "composition", false, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d/mad_fixpoint", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rt.Closure(bm.Root); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("depth=%d/self_join", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := recursive.NaiveClosure(bm.DB, "composition", bm.Root, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP5OperatorPipelines measures a Σ→Σ→Π pipeline with propagation
// (each iteration rebuilds the sample since propagation enlarges it).
func BenchmarkP5OperatorPipelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := geo.BuildSample()
		if err != nil {
			b.Fatal(err)
		}
		mt := mtState(b, s.DB)
		b.StartTimer()
		step1, err := core.Restrict(mt, expr.Cmp{Op: expr.GT,
			L: expr.Attr{Type: "state", Name: "hectare"}, R: expr.Lit(mad.Float(100))}, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		root := step1.Desc().Root()
		step2, err := core.Restrict(step1, expr.Cmp{Op: expr.LT,
			L: expr.Attr{Type: root, Name: "hectare"}, R: expr.Lit(mad.Float(950))}, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Project(step2, core.Projection{Keep: step2.Desc().Types()[:2]}, "", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP6TwoLayer measures the instrumented two-layer engine.
func BenchmarkP6TwoLayer(b *testing.B) {
	syn := synDB(b, 256, 2)
	e := prima.New(syn.DB)
	if _, _, err := e.RunMQL("SELECT ALL FROM mt_state(state-area-edge-point);"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.RunMQL("SELECT ALL FROM mt_state;"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP8PlannerPushdown compares naive Σ (derive everything, then
// qualify) with the compiled plan on the three planner access shapes:
// indexed root equality, unindexed root predicate (filtered scan), and a
// mid-structure conjunct exploitable only by pushdown.
func BenchmarkP8PlannerPushdown(b *testing.B) {
	syn := synDB(b, 256, 2)
	if err := syn.DB.CreateIndex("state", "abbrev"); err != nil {
		b.Fatal(err)
	}
	mt := mtState(b, syn.DB)
	preds := map[string]mad.Expr{
		"indexed_eq": expr.Cmp{Op: expr.EQ,
			L: expr.Attr{Type: "state", Name: "abbrev"}, R: expr.Lit(mad.Str("S7"))},
		"root_range": expr.Cmp{Op: expr.LT,
			L: expr.Attr{Type: "state", Name: "hectare"}, R: expr.Lit(mad.Float(120))},
		"mid_structure": expr.Cmp{Op: expr.EQ,
			L: expr.Attr{Type: "edge", Name: "tag"}, R: expr.Lit(mad.Str("be3"))},
	}
	for name, pred := range preds {
		b.Run(name+"/naive", func(b *testing.B) {
			dv, err := mt.Deriver()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				var evalErr error
				dv.Walk(func(m *core.Molecule) bool {
					keep, err := expr.EvalPredicate(pred, core.Binding{DB: syn.DB, M: m})
					if err != nil {
						evalErr = err
						return false
					}
					if keep {
						n++
					}
					return true
				})
				if evalErr != nil {
					b.Fatal(evalErr)
				}
			}
		})
		b.Run(name+"/planned", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := plan.Compile(syn.DB, mt.Desc(), pred)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.Execute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP11FusedPipeline measures the fused derive+residual pipeline
// against PR 3's derive-then-filter execution on a residual-heavy
// workload: five molecule-level conjuncts that cannot push below
// derivation, so the residual chain dominates. The barrier variant
// parallelizes derivation but runs the whole chain on one goroutine; the
// fused variant runs the chain on the worker that derived the molecule.
// The gap widens with worker count (the barrier serializes the dominant
// stage) and the fused variant also allocates less per molecule
// (recycled rejects, reused scratch) — compare with -benchmem.
func BenchmarkP11FusedPipeline(b *testing.B) {
	db, mt, err := experiments.BuildAssembly(1024)
	if err != nil {
		b.Fatal(err)
	}
	defer plan.Release(db)
	pred := experiments.ResidualHeavyPred()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("barrier/workers=%d", workers), func(b *testing.B) {
			p, err := plan.Compile(db, mt.Desc(), pred)
			if err != nil {
				b.Fatal(err)
			}
			p.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.ExecuteBarrier(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fused/workers=%d", workers), func(b *testing.B) {
			plan.FeedbackFor(db).Reset()
			p, err := plan.Compile(db, mt.Desc(), pred)
			if err != nil {
				b.Fatal(err)
			}
			p.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Execute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// liveHeap forces a collection and returns the live heap — the figure
// the streaming benchmark tracks as "peak-B/op" (B/op from -benchmem
// counts total allocation, which streaming cannot reduce: every
// molecule is built either way; what streaming caps is how many of them
// are alive at once).
func liveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// BenchmarkP12StreamingMemory compares the peak live heap of consuming a
// large result incrementally (Plan.Stream, molecules dropped as they are
// read) against materializing it (Plan.Execute holds the whole set):
// the streamed run's peak stays bounded by the executor's in-flight
// batches while the materialized peak grows with the result. The
// "peak-B/op" metric lands in the bench-trajectory artifact via
// scripts/bench.sh, so the trajectory tracks the memory cap alongside
// ns/op.
func BenchmarkP12StreamingMemory(b *testing.B) {
	db, mt, err := experiments.BuildAssembly(4096)
	if err != nil {
		b.Fatal(err)
	}
	defer plan.Release(db)
	b.Run("materialized", func(b *testing.B) {
		var peak int64
		for i := 0; i < b.N; i++ {
			p, err := plan.Compile(db, mt.Desc(), nil)
			if err != nil {
				b.Fatal(err)
			}
			base := liveHeap()
			set, err := p.Execute()
			if err != nil {
				b.Fatal(err)
			}
			if g := liveHeap() - base; g > peak {
				peak = g
			}
			runtime.KeepAlive(set)
		}
		b.ReportMetric(float64(peak), "peak-B/op")
	})
	b.Run("streaming", func(b *testing.B) {
		var peak int64
		for i := 0; i < b.N; i++ {
			p, err := plan.Compile(db, mt.Desc(), nil)
			if err != nil {
				b.Fatal(err)
			}
			base := liveHeap()
			st, err := p.Stream(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				m, err := st.Next()
				if err != nil {
					b.Fatal(err)
				}
				if m == nil {
					break
				}
				n++
				// Sample the live heap a few times mid-stream; consumed
				// molecules are garbage and must not accumulate.
				if n%1024 == 0 {
					if g := liveHeap() - base; g > peak {
						peak = g
					}
				}
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(peak), "peak-B/op")
	})
}

// BenchmarkP15TopKEarlyStop measures the early-terminating ordered
// access path: ORDER BY root attribute LIMIT K with K ≪ N through the
// bounded-heap plan (the heap bound is pushed into the access path, so
// roots that cannot make the top K are cut before their molecule is
// derived) against the sort-everything path that materializes all N.
// Logical work is reported as "atom-fetches/op" next to ns/op — at K=8
// over 4096 assemblies the top-K run must fetch at least 5× fewer atoms,
// and the benchmark fails if it does not.
func BenchmarkP15TopKEarlyStop(b *testing.B) {
	const (
		assemblies = 4096
		k          = 8
	)
	db, mt, err := experiments.BuildAssembly(assemblies)
	if err != nil {
		b.Fatal(err)
	}
	defer plan.Release(db)
	order := plan.OrderBy{Attr: "code", Desc: true}
	// exec runs one ordered query and returns the molecule count.
	exec := func(limit int) (int, error) {
		p, err := plan.CompileOrdered(db, mt.Desc(), nil, &order)
		if err != nil {
			return 0, err
		}
		p.Limit = limit
		st, err := p.Stream(context.Background())
		if err != nil {
			return 0, err
		}
		n := 0
		for {
			m, err := st.Next()
			if err != nil {
				st.Close()
				return 0, err
			}
			if m == nil {
				break
			}
			n++
		}
		return n, st.Close()
	}
	run := func(b *testing.B, limit, want int) {
		before := db.Stats().Snapshot()
		for i := 0; i < b.N; i++ {
			n, err := exec(limit)
			if err != nil {
				b.Fatal(err)
			}
			if n != want {
				b.Fatalf("drained %d molecules, want %d", n, want)
			}
		}
		diff := db.Stats().Snapshot().Sub(before)
		b.ReportMetric(float64(diff.AtomsFetched)/float64(b.N), "atom-fetches/op")
	}
	// The ≥5× acceptance gate, checked on logical work alone so it holds
	// at smoke benchtime (1x) as well as trend-quality runs.
	fetches := func(limit int) int64 {
		before := db.Stats().Snapshot()
		if _, err := exec(limit); err != nil {
			b.Fatal(err)
		}
		return db.Stats().Snapshot().Sub(before).AtomsFetched
	}
	full, topk := fetches(0), fetches(k)
	if topk*5 > full {
		b.Fatalf("top-K fetched %d atoms vs %d for the full sort — want ≥5× fewer", topk, full)
	}
	b.Run("sort_all", func(b *testing.B) { run(b, 0, assemblies) })
	b.Run(fmt.Sprintf("topk_limit=%d", k), func(b *testing.B) { run(b, k, k) })
}

// BenchmarkP16IndexIntersection measures the multi-entry access path: two
// indexed equality conjuncts on different interior atom types, executed
// through the best single interior-index entry (all of that entry's
// candidates are derived; the other conjunct rejects molecules via its
// pushdown hook) versus the sorted-merge index intersection (both entries
// climb to candidate roots, the sets intersect, and only the survivors
// are derived). Logical work is reported as "atom-fetches/op" — over 4096
// jobs on a 64×64 site/grade grid the intersection must fetch at least 3×
// fewer atoms than the best single entry, and the benchmark fails if it
// does not.
func BenchmarkP16IndexIntersection(b *testing.B) {
	const jobs = 4096
	db, mt, err := experiments.BuildJobShop(jobs)
	if err != nil {
		b.Fatal(err)
	}
	defer plan.Release(db)
	pred := experiments.JobShopPred(7, 3)
	// exec compiles with or without the intersection candidate and
	// returns the molecule count.
	exec := func(intersect bool) (int, error) {
		var p *plan.Plan
		var err error
		if intersect {
			p, err = plan.Compile(db, mt.Desc(), pred)
		} else {
			p, err = plan.CompileSingleEntry(db, mt.Desc(), pred)
		}
		if err != nil {
			return 0, err
		}
		if intersect && p.Access.Kind != plan.IndexIntersect {
			return 0, fmt.Errorf("contest picked %v, want index intersection", p.Access.Kind)
		}
		set, err := p.Execute()
		if err != nil {
			return 0, err
		}
		return len(set), nil
	}
	run := func(b *testing.B, intersect bool) {
		before := db.Stats().Snapshot()
		for i := 0; i < b.N; i++ {
			n, err := exec(intersect)
			if err != nil {
				b.Fatal(err)
			}
			if n != 1 {
				b.Fatalf("delivered %d molecules, want 1", n)
			}
		}
		diff := db.Stats().Snapshot().Sub(before)
		b.ReportMetric(float64(diff.AtomsFetched)/float64(b.N), "atom-fetches/op")
	}
	// The ≥3× acceptance gate, checked on logical work alone so it holds
	// at smoke benchtime (1x) as well as trend-quality runs.
	fetches := func(intersect bool) int64 {
		before := db.Stats().Snapshot()
		if _, err := exec(intersect); err != nil {
			b.Fatal(err)
		}
		return db.Stats().Snapshot().Sub(before).AtomsFetched
	}
	single, intersected := fetches(false), fetches(true)
	if intersected*3 > single {
		b.Fatalf("intersection fetched %d atoms vs %d for the best single entry — want ≥3× fewer", intersected, single)
	}
	b.Run("single_entry", func(b *testing.B) { run(b, false) })
	b.Run("intersect", func(b *testing.B) { run(b, true) })
}

// BenchmarkP17BOMExplosion measures the recursion subsystem on a deep
// reconvergent assembly graph (P17, `madbench -exp P17`): a depth-bounded
// part explosion of one assembly through the indexed fixpoint entry
// against the eager derive-everything-then-filter baseline, plus
// time-to-first-molecule of the streamed full explosion. Both acceptance
// gates run before the sub-benchmarks so a regression fails even at
// smoke benchtime: the indexed entry must fetch ≥5× fewer atoms than the
// eager closure, and the first streamed molecule must arrive before 50%
// of full-materialization wall time.
func BenchmarkP17BOMExplosion(b *testing.B) {
	db, err := experiments.BuildBOM(200)
	if err != nil {
		b.Fatal(err)
	}
	defer plan.Release(db)
	const depth = 4
	pred := experiments.BOMPred(3)

	eager := func() int64 {
		rt, err := recursive.Define(db, "", "parts", "composition", false, depth)
		if err != nil {
			b.Fatal(err)
		}
		before := db.Stats().Snapshot()
		if _, err := rt.Derive(); err != nil {
			b.Fatal(err)
		}
		return db.Stats().Snapshot().Sub(before).AtomsFetched
	}
	planned := func() int64 {
		fp, err := plan.CompileFixpoint(db, "parts", "composition", false, depth, pred)
		if err != nil {
			b.Fatal(err)
		}
		if fp.EntryKind != plan.FixIndexEq {
			b.Fatalf("entry contest picked %v, want indexed entry", fp.EntryKind)
		}
		before := db.Stats().Snapshot()
		ms, err := fp.Execute(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != 1 {
			b.Fatalf("explosion delivered %d molecules, want 1", len(ms))
		}
		return db.Stats().Snapshot().Sub(before).AtomsFetched
	}
	// Gate 1: logical work, stable at any benchtime.
	eagerFetches, plannedFetches := eager(), planned()
	if plannedFetches*5 > eagerFetches {
		b.Fatalf("indexed fixpoint fetched %d atoms vs %d eager — want ≥5× fewer", plannedFetches, eagerFetches)
	}
	// Gate 2: streaming latency — first closure of the full explosion
	// must land before half the full materialization.
	full, err := plan.CompileFixpoint(db, "parts", "composition", false, depth, nil)
	if err != nil {
		b.Fatal(err)
	}
	st, err := full.Stream(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	if _, err := st.Next(); err != nil {
		b.Fatal(err)
	}
	firstAt := time.Since(start)
	for {
		m, err := st.Next()
		if err != nil {
			b.Fatal(err)
		}
		if m == nil {
			break
		}
	}
	totalAt := time.Since(start)
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	if firstAt*2 >= totalAt {
		b.Fatalf("first streamed molecule after %v of %v total — want < 50%%", firstAt, totalAt)
	}

	b.Run("eager_full_closure", func(b *testing.B) {
		var fetches int64
		for i := 0; i < b.N; i++ {
			fetches += eager()
		}
		b.ReportMetric(float64(fetches)/float64(b.N), "atom-fetches/op")
	})
	b.Run("indexed_fixpoint", func(b *testing.B) {
		var fetches int64
		for i := 0; i < b.N; i++ {
			fetches += planned()
		}
		b.ReportMetric(float64(fetches)/float64(b.N), "atom-fetches/op")
	})
	b.Run("first_molecule", func(b *testing.B) {
		var wait time.Duration
		for i := 0; i < b.N; i++ {
			st, err := full.Stream(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			if _, err := st.Next(); err != nil {
				b.Fatal(err)
			}
			wait += time.Since(start)
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(wait.Nanoseconds())/float64(b.N), "ns-to-first-molecule")
	})
}

// BenchmarkCodecRoundTrip measures snapshot encode/decode of a mid-size
// database.
func BenchmarkCodecRoundTrip(b *testing.B) {
	syn := synDB(b, 256, 2)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := codec.Encode(syn.DB, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP7ParallelDerivation measures derivation speedup over workers.
func BenchmarkP7ParallelDerivation(b *testing.B) {
	syn := synDB(b, 1024, 2)
	mt := mtState(b, syn.DB)
	dv, err := core.NewDeriver(syn.DB, mt.Desc())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dv.DeriveParallel(workers)
			}
		})
	}
}

// BenchmarkP9SkewedAccessPath measures the histogram win end to end: the
// same skewed-data predicate executed through the plan the uniform
// estimate picks (heavy-hitter index) and through the plan the
// histograms pick (selective index), plus the cost of compiling fresh
// versus through the plan cache.
func BenchmarkP9SkewedAccessPath(b *testing.B) {
	db, mt, err := experiments.BuildSkewed(1000)
	if err != nil {
		b.Fatal(err)
	}
	pred := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "batch"}, R: expr.Lit(mad.Int(0))},
		R: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "grade"}, R: expr.Lit(mad.Str("g3"))},
	}
	uniform, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mad.Analyze(db, "part"); err != nil {
		b.Fatal(err)
	}
	histo, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("execute/uniform_plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := uniform.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("execute/histogram_plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := histo.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile/fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Compile(db, mt.Desc(), pred); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile/cached", func(b *testing.B) {
		cache := mad.PlanCacheFor(db)
		if _, _, err := cache.Compile(mt.Desc(), pred); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cache.Compile(mt.Desc(), pred); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP10InteriorEntry measures the symmetric access path end to
// end: the same selective mid-structure predicate executed through the
// filtered root scan (compiled before the interior index existed) and
// through the interior-index entry that climbs the links upward from the
// matching parts. Fewer atom fetches must show up as lower ns/op.
func BenchmarkP10InteriorEntry(b *testing.B) {
	db, mt, err := experiments.BuildAssembly(1024)
	if err != nil {
		b.Fatal(err)
	}
	pred := experiments.FlaggedPartPred()
	rootScan, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("part", "serial"); err != nil {
		b.Fatal(err)
	}
	interior, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		b.Fatal(err)
	}
	if interior.Access.Kind != plan.InteriorIndex {
		b.Fatalf("expected the interior-index entry to win, got %+v", interior.Access)
	}
	b.Run("execute/root_scan_plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rootScan.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("execute/interior_index_plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := interior.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP13MixedReadWrite measures snapshot isolation's headline
// promise: streaming readers do not stall behind writers. The read_only
// series drains a Plan.Stream cursor over an undisturbed database; the
// mixed series drains the identical cursor while 4 writer goroutines
// continuously commit whole-molecule version bumps through buffered
// transactions. The writers are rate-limited to a steady aggregate load
// (they model an OLTP feed, not a CPU-saturation spin — on a small
// machine an unthrottled spin loop would measure scheduler share, not
// lock interference). Under the old global RWMutex even this modest
// write rate stalled every reader for the duration of each write; under
// MVCC each cursor pins its snapshot and the two series should stay
// within 2x of each other at every worker count.
func BenchmarkP13MixedReadWrite(b *testing.B) {
	const (
		molecules = 1024
		leaves    = 3
		bgWriters = 4
	)
	build := func(b *testing.B) (*mad.Database, *mad.Plan, [][]mad.AtomID) {
		b.Helper()
		db := mad.NewDatabase()
		desc, err := mad.NewAtomDesc(
			mad.AttrDesc{Name: "name", Kind: mad.KString},
			mad.AttrDesc{Name: "v", Kind: mad.KInt},
		)
		if err != nil {
			b.Fatal(err)
		}
		for _, tn := range []string{"root", "leaf"} {
			if _, err := db.DefineAtomType(tn, desc); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := db.DefineLinkType("rl", mad.LinkDesc{SideA: "root", SideB: "leaf"}); err != nil {
			b.Fatal(err)
		}
		mols := make([][]mad.AtomID, molecules)
		for i := range mols {
			ids := make([]mad.AtomID, 0, leaves+1)
			root, err := db.InsertAtom("root", mad.Str(fmt.Sprintf("r%d", i)), mad.Int(0))
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, root)
			for j := 0; j < leaves; j++ {
				leaf, err := db.InsertAtom("leaf", mad.Str(fmt.Sprintf("r%d_l%d", i, j)), mad.Int(0))
				if err != nil {
					b.Fatal(err)
				}
				if err := db.Connect("rl", root, leaf); err != nil {
					b.Fatal(err)
				}
				ids = append(ids, leaf)
			}
			mols[i] = ids
		}
		mt, err := mad.Define(db, "", []string{"root", "leaf"},
			[]mad.DirectedLink{{Link: "rl", From: "root", To: "leaf"}})
		if err != nil {
			b.Fatal(err)
		}
		p, err := mad.CompilePlan(db, mt.Desc(), nil)
		if err != nil {
			b.Fatal(err)
		}
		return db, p, mols
	}
	drain := func(b *testing.B, p *mad.Plan) {
		b.Helper()
		st, err := p.Stream(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			m, err := st.Next()
			if err != nil {
				b.Fatal(err)
			}
			if m == nil {
				break
			}
			n++
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		if n != molecules {
			b.Fatalf("drained %d molecules, want %d", n, molecules)
		}
	}
	for _, workers := range []int{1, 4, 8} {
		db, p, mols := build(b)
		p.Workers = workers
		b.Run(fmt.Sprintf("read_only/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				drain(b, p)
			}
		})
		b.Run(fmt.Sprintf("mixed/workers=%d", workers), func(b *testing.B) {
			// Writers partition the molecules, so commits never
			// conflict; each bumps a whole molecule per transaction.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < bgWriters; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ver := int64(0)
					tick := time.NewTicker(200 * time.Microsecond)
					defer tick.Stop()
					for i := w; ; i = (i + bgWriters) % molecules {
						select {
						case <-stop:
							return
						case <-tick.C:
						}
						ver++
						txn := mad.Begin(db)
						ids := mols[i]
						if err := txn.UpdateAtom("root", ids[0],
							[]mad.Value{mad.Str(fmt.Sprintf("r%d", i)), mad.Int(ver)}); err != nil {
							txn.Rollback()
							continue
						}
						for j, id := range ids[1:] {
							if err := txn.UpdateAtom("leaf", id,
								[]mad.Value{mad.Str(fmt.Sprintf("r%d_l%d", i, j)), mad.Int(ver)}); err != nil {
								txn.Rollback()
								continue
							}
						}
						txn.Commit()
					}
				}(w)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drain(b, p)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			// The writers piled up versions; reclaim them so the next
			// worker count starts from a compact chain.
			db.Vacuum()
		})
	}
}
