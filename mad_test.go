// Tests of the public facade: everything a downstream user touches first.
package mad_test

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"mad"
	"mad/internal/expr"
)

// buildLibrary assembles a small publication database through the facade.
func buildLibrary(t *testing.T) (*mad.Database, *mad.Session) {
	t.Helper()
	db := mad.NewDatabase()
	sess := mad.NewSession(db)
	_, err := sess.ExecScript(`
CREATE ATOM TYPE author (name STRING NOT NULL);
CREATE ATOM TYPE paper (title STRING NOT NULL, year INT);
CREATE LINK TYPE wrote BETWEEN author AND paper;
INSERT INTO author VALUES ('a1'), ('a2');
INSERT INTO paper VALUES ('p1', 1989), ('p2', 1987);
CONNECT author WHERE name = 'a1' TO paper VIA wrote;
CONNECT author WHERE name = 'a2' TO paper WHERE year = 1987 VIA wrote;
`)
	if err != nil {
		t.Fatal(err)
	}
	return db, sess
}

func TestFacadeQuickstartFlow(t *testing.T) {
	db, sess := buildLibrary(t)
	res, err := sess.Exec(`SELECT ALL FROM author-[wrote]-paper;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 2 {
		t.Fatalf("molecules = %d", len(res.Set))
	}
	// p2 is a shared subobject: the same atom (by identity) belongs to
	// both author molecules.
	shared := res.Set.SharedAtoms()
	if len(shared) != 1 {
		t.Fatalf("shared atoms = %v, want exactly the 1987 paper", shared)
	}
	out := res.Render(db)
	if !strings.Contains(out, "p2") || !strings.Contains(out, "a2") {
		t.Fatalf("render incomplete: %s", out)
	}
}

func TestFacadeAlgebraOps(t *testing.T) {
	db, _ := buildLibrary(t)
	mt, err := mad.Define(db, "aw", []string{"author", "paper"},
		[]mad.DirectedLink{{Link: "wrote", From: "author", To: "paper"}})
	if err != nil {
		t.Fatal(err)
	}
	tr := &mad.OpTrace{}
	oldOnly, err := mad.Restrict(mt, expr.Cmp{Op: expr.LT,
		L: expr.Attr{Type: "paper", Name: "year"},
		R: expr.Lit(mad.Int(1989))}, "", tr)
	if err != nil {
		t.Fatal(err)
	}
	n, err := oldOnly.Cardinality()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // both authors wrote the 1987 paper
		t.Fatalf("Σ result = %d molecules", n)
	}
	if len(tr.Phases) < 3 {
		t.Fatal("trace incomplete")
	}
	// Ψ(mt, mt) = mt.
	inter, err := mad.Intersect(mt, mt, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ni, _ := inter.Cardinality(); ni != 2 {
		t.Fatalf("Ψ(x,x) = %d", ni)
	}
	// Atom-level algebra through the facade.
	res, err := mad.AtomRestrict(db, "paper", expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Name: "year"}, R: expr.Lit(mad.Int(1987))}, "")
	if err != nil {
		t.Fatal(err)
	}
	if cnt, _ := db.CountAtoms(res.TypeName); cnt != 1 {
		t.Fatalf("σ result = %d atoms", cnt)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	db, _ := buildLibrary(t)
	path := filepath.Join(t.TempDir(), "lib.mad")
	if err := mad.Save(db, path); err != nil {
		t.Fatal(err)
	}
	back, err := mad.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalAtoms() != db.TotalAtoms() || back.TotalLinks() != db.TotalLinks() {
		t.Fatal("snapshot round trip lost data")
	}
	// The restored database answers queries.
	sess := mad.NewSession(back)
	res, err := sess.Exec(`SELECT ALL FROM author-[wrote]-paper WHERE paper.year = 1987;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 2 {
		t.Fatalf("restored query = %d molecules", len(res.Set))
	}
}

func TestFacadeEngine(t *testing.T) {
	db, _ := buildLibrary(t)
	e := mad.NewEngine(db)
	res, rep, err := e.RunMQL(`SELECT ALL FROM author-[wrote]-paper;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 2 || rep.AtomLayer.AtomsFetched == 0 {
		t.Fatalf("engine result = %d molecules, report %+v", len(res.Set), rep)
	}
}

func TestFacadeRecursive(t *testing.T) {
	db := mad.NewDatabase()
	sess := mad.NewSession(db)
	if _, err := sess.ExecScript(`
CREATE ATOM TYPE parts (name STRING NOT NULL);
CREATE LINK TYPE composition BETWEEN parts AND parts;
INSERT INTO parts VALUES ('a'), ('b'), ('c');
CONNECT parts WHERE name = 'a' TO parts WHERE name = 'b' VIA composition;
CONNECT parts WHERE name = 'b' TO parts WHERE name = 'c' VIA composition;
`); err != nil {
		t.Fatal(err)
	}
	rt, err := mad.DefineRecursive(db, "", "parts", "composition", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := rt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0].Size() != 3 {
		t.Fatalf("recursive derive: %d molecules, first size %d", len(ms), ms[0].Size())
	}
}

func TestFacadeParse(t *testing.T) {
	if _, err := mad.Parse("SELECT ALL FROM a-b;"); err != nil {
		t.Fatal(err)
	}
	if _, err := mad.Parse("SELEKT;"); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestFacadeAtomAlgebraFamily(t *testing.T) {
	db, _ := buildLibrary(t)
	// π: project paper titles (set semantics).
	proj, err := mad.AtomProject(db, "paper", []string{"title"}, "titles")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountAtoms(proj.TypeName); n != 2 {
		t.Fatalf("π = %d atoms", n)
	}
	// ×: authors × papers with inherited link types.
	prod, err := mad.AtomProduct(db, "author", "paper", "authorpaper")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountAtoms(prod.TypeName); n != 4 {
		t.Fatalf("× = %d atoms", n)
	}
	if len(prod.Inherited) == 0 {
		t.Fatal("product must inherit link types")
	}
	// ω and δ over two σ results.
	old, err := mad.AtomRestrict(db, "paper", expr.Cmp{Op: expr.LT,
		L: expr.Attr{Name: "year"}, R: expr.Lit(mad.Int(1989))}, "")
	if err != nil {
		t.Fatal(err)
	}
	recent, err := mad.AtomRestrict(db, "paper", expr.Cmp{Op: expr.GE,
		L: expr.Attr{Name: "year"}, R: expr.Lit(mad.Int(1989))}, "")
	if err != nil {
		t.Fatal(err)
	}
	u, err := mad.AtomUnion(db, old.TypeName, recent.TypeName, "")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountAtoms(u.TypeName); n != 2 {
		t.Fatalf("ω = %d atoms", n)
	}
	d, err := mad.AtomDifference(db, u.TypeName, old.TypeName, "")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountAtoms(d.TypeName); n != 1 {
		t.Fatalf("δ = %d atoms", n)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeProductAndUnion(t *testing.T) {
	db, _ := buildLibrary(t)
	mt, err := mad.Define(db, "aw", []string{"author", "paper"},
		[]mad.DirectedLink{{Link: "wrote", From: "author", To: "paper"}})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := mad.Product(mt, mt, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := prod.Cardinality(); n != 4 { // 2 × 2 pairs
		t.Fatalf("X = %d molecules", n)
	}
	u, err := mad.Union(mt, mt, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := u.Cardinality(); n != 2 {
		t.Fatalf("Ω(x,x) = %d molecules", n)
	}
	dd, err := mad.Difference(mt, mt, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := dd.Cardinality(); n != 0 {
		t.Fatalf("Δ(x,x) = %d molecules", n)
	}
	proj, err := mad.Project(mt, mad.Projection{Keep: []string{"author"}}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Desc().NumTypes() != 1 {
		t.Fatal("Π structure wrong")
	}
}

func TestFacadeAtomDescAndValues(t *testing.T) {
	desc, err := mad.NewAtomDesc(
		mad.AttrDesc{Name: "a", Kind: mad.KInt, NotNull: true},
		mad.AttrDesc{Name: "b", Kind: mad.KString},
	)
	if err != nil {
		t.Fatal(err)
	}
	db := mad.NewDatabase()
	if _, err := db.DefineAtomType("t", desc); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertAtom("t", mad.Int(1), mad.Str("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertAtom("t", mad.Null(), mad.Str("x")); err == nil {
		t.Fatal("NOT NULL must hold through the facade")
	}
	if _, err := db.InsertAtom("t", mad.Int(1), mad.Bool(true)); err == nil {
		t.Fatal("kind checking must hold through the facade")
	}
	_ = mad.Float(1.5) // exercised elsewhere; keep the constructor visible
}

func TestFacadeStatsAndPlanCache(t *testing.T) {
	db, sess := buildLibrary(t)
	n, err := mad.Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("Analyze built no histograms")
	}
	var h *mad.Histogram
	h, ok := db.Histogram("paper", "year")
	if !ok || h.Total() != 2 {
		t.Fatalf("histogram on paper.year: ok=%v", ok)
	}

	cache := mad.PlanCacheFor(db)
	_, _, base := cache.Counters()
	q := `SELECT ALL FROM author-[wrote]-paper WHERE year = 1987;`
	for i := 0; i < 3; i++ {
		if _, err := sess.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, compiles := cache.Counters(); compiles != base+1 {
		t.Fatalf("3 executions compiled %d plans, want 1", compiles-base)
	}

	res, err := sess.Exec(`EXPLAIN (ESTIMATE) ` + q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "[histogram]") && !strings.Contains(res.Message, "[default]") {
		t.Fatalf("EXPLAIN must label estimate sources:\n%s", res.Message)
	}
	if strings.Contains(res.Message, "actual") {
		t.Fatalf("EXPLAIN (ESTIMATE) executed:\n%s", res.Message)
	}
}

// TestFacadeStreamingQuery drives the streaming surface end to end
// through the facade: QueryContext with per-query options, the Cursor's
// incremental delivery, the Seq adapter, MQL's SET/LIMIT syntax, and
// Plan.Stream with a context.
func TestFacadeStreamingQuery(t *testing.T) {
	db, sess := buildLibrary(t)
	defer mad.ReleasePlanCache(db)

	full, err := sess.Exec(`SELECT ALL FROM author-paper;`)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sess.QueryContext(context.Background(), `SELECT ALL FROM author-paper;`,
		mad.WithWorkers(2), mad.WithLimit(1), mad.WithNoCache())
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	n := 0
	for m := range cur.Seq() {
		if !m.Equal(full.Set[n]) {
			t.Fatalf("streamed molecule %d differs from the materialized order", n)
		}
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("WithLimit(1) delivered %d molecules", n)
	}

	if _, err := sess.Exec(`SET WORKERS = 2;`); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(`SELECT ALL FROM author-paper LIMIT 1;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 {
		t.Fatalf("LIMIT 1 returned %d molecules", len(res.Set))
	}

	// Plan-level streaming: the facade's Stream type is plan.Stream.
	mt, err := mad.Define(db, "", []string{"author", "paper"},
		[]mad.DirectedLink{{Link: "wrote", From: "author", To: "paper"}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := mad.CompilePlan(db, mt.Desc(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var st *mad.Stream
	st, err = p.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		m, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			break
		}
		got++
	}
	if got != len(full.Set) {
		t.Fatalf("plan stream delivered %d, want %d", got, len(full.Set))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// durableLibrary seeds a durable database with enough rows that ANALYZE
// builds meaningful histograms.
func durableLibrary(t *testing.T, dir string) (*mad.Database, *mad.Session) {
	t.Helper()
	db, err := mad.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess := mad.NewSession(db)
	var sb strings.Builder
	sb.WriteString(`
CREATE ATOM TYPE author (name STRING NOT NULL);
CREATE ATOM TYPE paper (title STRING NOT NULL, year INT);
CREATE LINK TYPE wrote BETWEEN author AND paper;
`)
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "INSERT INTO author VALUES ('a%d');\n", i)
		fmt.Fprintf(&sb, "INSERT INTO paper VALUES ('p%d', %d);\n", i, 1980+i%10)
		fmt.Fprintf(&sb, "CONNECT author WHERE name = 'a%d' TO paper WHERE title = 'p%d' VIA wrote;\n", i, i)
	}
	if _, err := sess.ExecScript(sb.String()); err != nil {
		t.Fatal(err)
	}
	return db, sess
}

// TestDurableOpenRoundTrip is the basic durability contract through the
// facade: committed data survives Close and reopens without a checkpoint.
func TestDurableOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, sess := durableLibrary(t, dir)
	res, err := sess.Exec(`SELECT ALL FROM author-[wrote]-paper;`)
	if err != nil {
		t.Fatal(err)
	}
	want := len(res.Set)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := mad.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res2, err := mad.NewSession(db2).Exec(`SELECT ALL FROM author-[wrote]-paper;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Set) != want {
		t.Fatalf("recovered %d molecules, want %d", len(res2.Set), want)
	}
}

// TestCheckpointRequiresDurable pins down the in-memory behaviour: the
// CHECKPOINT statement must refuse a database with no directory.
func TestCheckpointRequiresDurable(t *testing.T) {
	_, sess := buildLibrary(t)
	if _, err := sess.Exec(`CHECKPOINT;`); err == nil {
		t.Fatal("CHECKPOINT on an in-memory database must fail")
	}
}

// TestWarmRestartPlansWarm is the planner-state half of recovery: after
// ANALYZE, a feedback-recording query and CHECKPOINT, a restarted server
// must EXPLAIN with [histogram] and [observed] provenance on its FIRST
// query — no re-ANALYZE, no warm-up executions.
func TestWarmRestartPlansWarm(t *testing.T) {
	dir := t.TempDir()
	db, sess := durableLibrary(t, dir)

	q := `SELECT ALL FROM author-[wrote]-paper WHERE year = 1985 AND COUNT(paper) >= COUNT(author);`
	script := []string{
		`ANALYZE;`,
		`EXPLAIN ` + q, // executes: records derive/climb observations
		`EXPLAIN ` + q,
		`CHECKPOINT;`,
	}
	for _, stmt := range script {
		if _, err := sess.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	// Sanity: the warm session itself shows both provenances.
	res, err := sess.Exec(`EXPLAIN (ESTIMATE) ` + q)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"[histogram]", "[observed]"} {
		if !strings.Contains(res.Message, tag) {
			t.Fatalf("pre-restart EXPLAIN lacks %s:\n%s", tag, res.Message)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := mad.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res2, err := mad.NewSession(db2).Exec(`EXPLAIN (ESTIMATE) ` + q)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"[histogram]", "[observed]"} {
		if !strings.Contains(res2.Message, tag) {
			t.Fatalf("first post-restart EXPLAIN lacks %s provenance:\n%s", tag, res2.Message)
		}
	}
}

// TestWarmRestartPlanCacheWarm is the plan-cache half of warm restart:
// CHECKPOINT persists the cached plan shapes beside the feedback, and a
// reopened database precompiles them during Open — so the FIRST query of
// the restarted server is a plan-cache hit, not a cold compile.
func TestWarmRestartPlanCacheWarm(t *testing.T) {
	dir := t.TempDir()
	db, sess := durableLibrary(t, dir)
	q := `SELECT ALL FROM author-[wrote]-paper WHERE year = 1985;`
	for _, stmt := range []string{q, q, `CHECKPOINT;`} {
		if _, err := sess.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := mad.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Warm before any statement runs.
	if n := mad.PlanCacheFor(db2).Len(); n == 0 {
		t.Fatal("plan cache is cold after reopen; Open must precompile the persisted shapes")
	}
	hits0, _, compiles0 := mad.PlanCacheFor(db2).Counters()
	res, err := mad.NewSession(db2).Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 {
		t.Fatal("warmed query returned nothing")
	}
	hits1, _, compiles1 := mad.PlanCacheFor(db2).Counters()
	if hits1 != hits0+1 || compiles1 != compiles0 {
		t.Fatalf("first post-restart query: hits %d → %d, compiles %d → %d; want one hit, zero compiles",
			hits0, hits1, compiles0, compiles1)
	}
}
