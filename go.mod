module mad

go 1.24
