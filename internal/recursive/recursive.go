// Package recursive implements recursive molecule types, the Chapter 5
// extension of the molecule algebra ([Schö89]): molecule structures over
// *reflexive* link types, which md_graph excludes from plain descriptions
// because a self-loop is a cycle. The canonical example is the
// bill-of-material application — one atom type "parts" with one reflexive
// link type "composition", queried either for the parts explosion
// (sub-component view, traversing the link type forward) or for the
// where-used view (super-component view, traversing it backward).
//
// Derivation is the natural least fixpoint: the molecule rooted at r
// contains every atom reachable from r through the chosen direction of the
// reflexive link type. Atom networks may be cyclic, so derivation keeps a
// visited set; an optional depth bound truncates the closure to the first
// n levels.
package recursive

import (
	"fmt"
	"strings"

	"mad/internal/model"
	"mad/internal/storage"
)

// Type is a recursive molecule type: the recursive analogue of
// <mname, md, mv> where the description is a single atom type closed over
// one reflexive link type in one direction.
type Type struct {
	// Name is the molecule-type name.
	Name string
	// AtomType is the single component atom type.
	AtomType string
	// Link is the reflexive link type closed over.
	Link string
	// Up selects the super-component view (backward traversal); the
	// default is the sub-component view.
	Up bool
	// Depth bounds the closure depth; 0 means unbounded (full transitive
	// closure).
	Depth int

	db *storage.Database
}

// Define validates and creates a recursive molecule type.
func Define(db *storage.Database, name, atomType, link string, up bool, depth int) (*Type, error) {
	if _, ok := db.Schema().AtomType(atomType); !ok {
		return nil, fmt.Errorf("recursive: unknown atom type %q", atomType)
	}
	lt, ok := db.Schema().LinkType(link)
	if !ok {
		return nil, fmt.Errorf("recursive: unknown link type %q", link)
	}
	if !lt.Desc.Reflexive() || lt.Desc.SideA != atomType {
		return nil, fmt.Errorf("recursive: link type %q is not reflexive on %q", link, atomType)
	}
	if depth < 0 {
		return nil, fmt.Errorf("recursive: negative depth")
	}
	if name == "" {
		name = db.Schema().FreshAtomName("rec_" + atomType)
	}
	return &Type{Name: name, AtomType: atomType, Link: link, Up: up, Depth: depth, db: db}, nil
}

// Molecule is one recursive molecule: the root, the atoms grouped by the
// level at which the closure first reached them, and the component links.
type Molecule struct {
	Root   model.AtomID
	Levels [][]model.AtomID // Levels[0] == {Root}
	Links  []model.Link     // A = parent, B = child in traversal direction
}

// Size returns the number of component atoms.
func (m *Molecule) Size() int {
	n := 0
	for _, l := range m.Levels {
		n += len(l)
	}
	return n
}

// Depth returns the deepest populated level (0 for a leaf root).
func (m *Molecule) Depth() int { return len(m.Levels) - 1 }

// Atoms returns all component atoms in level order.
func (m *Molecule) Atoms() []model.AtomID {
	var out []model.AtomID
	for _, l := range m.Levels {
		out = append(out, l...)
	}
	return out
}

// Contains reports component membership.
func (m *Molecule) Contains(id model.AtomID) bool {
	for _, l := range m.Levels {
		for _, x := range l {
			if x == id {
				return true
			}
		}
	}
	return false
}

// Format renders the molecule level by level with attribute values from
// the latest view.
func (m *Molecule) Format(db *storage.Database, atomType string) string {
	return m.FormatAt(db, atomType, 0)
}

// FormatAt renders the molecule level by level with attribute values read
// at commit timestamp ts (zero = latest view) — the renderer for
// snapshot-pinned cursors, whose values must match the structure the
// closure traversed however many writers committed since.
func (m *Molecule) FormatAt(db *storage.Database, atomType string, ts uint64) string {
	var b strings.Builder
	c, hasC := db.Container(atomType)
	for depth, level := range m.Levels {
		fmt.Fprintf(&b, "level %d:", depth)
		for _, id := range level {
			var a model.Atom
			ok := hasC
			if ok {
				if ts != 0 {
					a, ok = c.GetAt(id, ts)
				} else {
					a, ok = c.Get(id)
				}
			}
			if !ok {
				fmt.Fprintf(&b, " %s", id)
				continue
			}
			fmt.Fprintf(&b, " %s", a.Get(0))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DeriveFor computes the recursive molecule rooted at the given atom.
func (t *Type) DeriveFor(root model.AtomID) (*Molecule, error) {
	if !t.db.HasAtom(t.AtomType, root) {
		return nil, fmt.Errorf("recursive: atom %v not in %q", root, t.AtomType)
	}
	ls, ok := t.db.LinkStore(t.Link)
	if !ok {
		return nil, fmt.Errorf("recursive: link type %q has no store", t.Link)
	}
	m := &Molecule{Root: root, Levels: [][]model.AtomID{{root}}}
	visited := map[model.AtomID]bool{root: true}
	frontier := []model.AtomID{root}
	for depth := 1; len(frontier) > 0 && (t.Depth == 0 || depth <= t.Depth); depth++ {
		var next []model.AtomID
		for _, a := range frontier {
			var partners []model.AtomID
			if t.Up {
				partners = ls.PartnersFromB(a)
			} else {
				partners = ls.PartnersFromA(a)
			}
			t.db.Stats().LinksTraversed.Add(int64(len(partners)) + 1)
			for _, p := range partners {
				m.Links = append(m.Links, model.Link{A: a, B: p})
				if visited[p] {
					continue // cycle or reconvergence: include once
				}
				visited[p] = true
				next = append(next, p)
			}
		}
		if len(next) > 0 {
			m.Levels = append(m.Levels, next)
		}
		frontier = next
	}
	t.db.Stats().AtomsFetched.Add(int64(m.Size()))
	return m, nil
}

// Derive materializes one recursive molecule per atom of the component
// type, in container order.
func (t *Type) Derive() ([]*Molecule, error) {
	var out []*Molecule
	var derr error
	err := t.db.ScanAtoms(t.AtomType, func(a model.Atom) bool {
		m, err := t.DeriveFor(a.ID)
		if err != nil {
			derr = err
			return false
		}
		out = append(out, m)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, derr
}

// Closure returns the set of atoms reachable from root (excluding the
// root itself unless it lies on a cycle back to itself) — the transitive
// closure the recursive molecule materializes.
func (t *Type) Closure(root model.AtomID) (map[model.AtomID]bool, error) {
	m, err := t.DeriveFor(root)
	if err != nil {
		return nil, err
	}
	out := make(map[model.AtomID]bool)
	for i, level := range m.Levels {
		if i == 0 {
			continue
		}
		for _, id := range level {
			out[id] = true
		}
	}
	return out, nil
}

// NaiveClosure computes the same closure by repeated relational-style
// self-joins over the full link occurrence (semi-naive iteration without
// per-atom adjacency) — the baseline a relational system without link
// structures would execute. It exists for the P4 experiment.
func NaiveClosure(db *storage.Database, link string, root model.AtomID, up bool) (map[model.AtomID]bool, error) {
	ls, ok := db.LinkStore(link)
	if !ok {
		return nil, fmt.Errorf("recursive: link type %q has no store", link)
	}
	all := ls.Links()
	closure := map[model.AtomID]bool{}
	delta := map[model.AtomID]bool{root: true}
	for len(delta) > 0 {
		next := map[model.AtomID]bool{}
		// One pass over the whole link occurrence per iteration: the
		// relational self-join shape.
		for _, l := range all {
			parent, child := l.A, l.B
			if up {
				parent, child = l.B, l.A
			}
			if delta[parent] && !closure[child] && child != root {
				next[child] = true
			}
		}
		for id := range next {
			closure[id] = true
		}
		delta = next
	}
	return closure, nil
}
