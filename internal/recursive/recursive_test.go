package recursive_test

import (
	"testing"
	"testing/quick"

	"mad/internal/bom"
	"mad/internal/model"
	"mad/internal/recursive"
	"mad/internal/storage"
)

func chainDB(t *testing.T, n int) (*storage.Database, []model.AtomID) {
	t.Helper()
	db := storage.NewDatabase()
	if err := bom.Schema(db); err != nil {
		t.Fatal(err)
	}
	var ids []model.AtomID
	for i := 0; i < n; i++ {
		id, err := db.InsertAtom("parts", model.Str("p"), model.Float(1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if i > 0 {
			if err := db.Connect("composition", ids[i-1], ids[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db, ids
}

func TestDefineValidation(t *testing.T) {
	db, _ := chainDB(t, 2)
	if _, err := recursive.Define(db, "", "nosuch", "composition", false, 0); err == nil {
		t.Fatal("unknown atom type must fail")
	}
	if _, err := recursive.Define(db, "", "parts", "nosuch", false, 0); err == nil {
		t.Fatal("unknown link must fail")
	}
	if _, err := recursive.Define(db, "", "parts", "composition", false, -1); err == nil {
		t.Fatal("negative depth must fail")
	}
	// Non-reflexive link rejected.
	if _, err := db.DefineAtomType("other", model.MustDesc(model.AttrDesc{Name: "x", Kind: model.KInt})); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("po", model.LinkDesc{SideA: "parts", SideB: "other"}); err != nil {
		t.Fatal(err)
	}
	if _, err := recursive.Define(db, "", "parts", "po", false, 0); err == nil {
		t.Fatal("non-reflexive link must fail")
	}
}

func TestChainExplosionAndWhereUsed(t *testing.T) {
	db, ids := chainDB(t, 5)
	down, err := recursive.Define(db, "explosion", "parts", "composition", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := down.DeriveFor(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 5 || m.Depth() != 4 {
		t.Fatalf("explosion size=%d depth=%d", m.Size(), m.Depth())
	}
	up, err := recursive.Define(db, "whereused", "parts", "composition", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := up.DeriveFor(ids[4])
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 5 {
		t.Fatalf("where-used size = %d", w.Size())
	}
	// Depth bound truncates.
	bounded, err := recursive.Define(db, "", "parts", "composition", false, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bounded.DeriveFor(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 3 {
		t.Fatalf("bounded size = %d", b.Size())
	}
}

func TestCycleTermination(t *testing.T) {
	db, ids := chainDB(t, 3)
	// Close the cycle: last part contains the first.
	if err := db.Connect("composition", ids[2], ids[0]); err != nil {
		t.Fatal(err)
	}
	rt, err := recursive.Define(db, "", "parts", "composition", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.DeriveFor(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Fatalf("cyclic closure size = %d (must terminate, include once)", m.Size())
	}
	if !m.Contains(ids[0]) || !m.Contains(ids[2]) {
		t.Fatal("membership wrong")
	}
}

func TestSharedSubcomponentsIncludedOnce(t *testing.T) {
	b, err := bom.Build(bom.Config{Depth: 3, Branch: 3, Share: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := recursive.Define(b.DB, "", "parts", "composition", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.DeriveFor(b.Root)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != b.NumParts() {
		t.Fatalf("explosion from root = %d parts, generator made %d", m.Size(), b.NumParts())
	}
}

func TestClosureEqualsNaiveClosure(t *testing.T) {
	// Property 12 of DESIGN.md: adjacency-based fixpoint equals the
	// relational self-join closure, over random DAGs.
	f := func(seed uint8, edges []uint16) bool {
		db := storage.NewDatabase()
		if err := bom.Schema(db); err != nil {
			return false
		}
		const n = 12
		var ids []model.AtomID
		for i := 0; i < n; i++ {
			id, err := db.InsertAtom("parts", model.Str("p"), model.Float(1))
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		for _, e := range edges {
			a := int(e) % n
			b := int(e/16) % n
			if a >= b {
				continue // keep it a DAG
			}
			if err := db.Connect("composition", ids[a], ids[b]); err != nil {
				return false
			}
		}
		rt, err := recursive.Define(db, "", "parts", "composition", false, 0)
		if err != nil {
			return false
		}
		root := ids[int(seed)%n]
		fast, err := rt.Closure(root)
		if err != nil {
			return false
		}
		naive, err := recursive.NaiveClosure(db, "composition", root, false)
		if err != nil {
			return false
		}
		if len(fast) != len(naive) {
			return false
		}
		for id := range fast {
			if !naive[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveAll(t *testing.T) {
	db, _ := chainDB(t, 4)
	rt, err := recursive.Define(db, "", "parts", "composition", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	all, err := rt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("|mv| = %d (one per root atom)", len(all))
	}
	// Sizes decrease along the chain.
	for i, m := range all {
		if m.Size() != 4-i {
			t.Fatalf("molecule %d size = %d", i, m.Size())
		}
	}
}
