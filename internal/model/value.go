// Package model defines the fundamental data structures of the
// molecule-atom data model (MAD): typed attribute values, atom types and
// atoms, link types and links, and the identity scheme that makes atoms
// "uniquely identifiable" basic building blocks (paper, Section 2).
//
// The package is deliberately free of storage or algebra concerns; it is
// the vocabulary shared by the catalog, the storage engine, the atom-type
// algebra and the molecule algebra.
package model

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the attribute data types supported by atom types.
// The paper only requires "attributes of various data types"; this closed
// kind system stands in for Go's limited value polymorphism: every
// attribute value is a Value tagged with one of these kinds.
type Kind uint8

const (
	// KNull is the kind of the absent value.
	KNull Kind = iota
	// KBool is a boolean attribute value.
	KBool
	// KInt is a 64-bit signed integer attribute value.
	KInt
	// KFloat is a 64-bit IEEE-754 attribute value.
	KFloat
	// KString is a UTF-8 string attribute value.
	KString
	// KID is a reference to an atom (an atom identifier). The MAD model
	// expresses relationships through links, not foreign keys, but IDs are
	// still first-class values so result types can carry provenance.
	KID
)

// kindNames indexes Kind to its textual name (also used by the MQL DDL).
var kindNames = [...]string{
	KNull:   "NULL",
	KBool:   "BOOL",
	KInt:    "INT",
	KFloat:  "FLOAT",
	KString: "STRING",
	KID:     "ID",
}

// String returns the DDL spelling of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k <= KID }

// KindFromName parses a DDL type name (case-insensitive) into a Kind.
func KindFromName(name string) (Kind, bool) {
	switch strings.ToUpper(name) {
	case "BOOL", "BOOLEAN":
		return KBool, true
	case "INT", "INTEGER":
		return KInt, true
	case "FLOAT", "REAL", "DOUBLE":
		return KFloat, true
	case "STRING", "TEXT", "CHAR", "VARCHAR":
		return KString, true
	case "ID", "REF":
		return KID, true
	case "NULL":
		return KNull, true
	}
	return KNull, false
}

// Value is a single attribute value: a small tagged union. The zero Value
// is the SQL-style null. Values are immutable; all operations return new
// values.
type Value struct {
	kind Kind
	i    int64 // KInt payload; KBool stores 0/1; KID stores AtomID bits
	f    float64
	s    string
}

// Null returns the null value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KBool, i: i}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KFloat, f: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KString, s: s} }

// ID returns an atom-identifier value.
func ID(id AtomID) Value { return Value{kind: KID, i: int64(id)} }

// Kind returns the kind tag of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KNull }

// AsBool returns the boolean payload; ok is false if the kind differs.
func (v Value) AsBool() (b, ok bool) {
	if v.kind != KBool {
		return false, false
	}
	return v.i != 0, true
}

// AsInt returns the integer payload; ok is false if the kind differs.
func (v Value) AsInt() (int64, bool) {
	if v.kind != KInt {
		return 0, false
	}
	return v.i, true
}

// AsFloat returns the float payload; integers are widened. ok is false for
// non-numeric kinds.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KFloat:
		return v.f, true
	case KInt:
		return float64(v.i), true
	}
	return 0, false
}

// AsString returns the string payload; ok is false if the kind differs.
func (v Value) AsString() (string, bool) {
	if v.kind != KString {
		return "", false
	}
	return v.s, true
}

// AsID returns the atom-identifier payload; ok is false if the kind differs.
func (v Value) AsID() (AtomID, bool) {
	if v.kind != KID {
		return 0, false
	}
	return AtomID(v.i), true
}

// Numeric reports whether the value is of a numeric kind.
func (v Value) Numeric() bool { return v.kind == KInt || v.kind == KFloat }

// Equal reports deep equality. Int/float cross-kind comparison follows
// numeric equality (Int(2).Equal(Float(2)) is true); null equals only null.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

// Compare totally orders values: null < bool < numeric < string < id, with
// numerics compared by value across the int/float divide. It returns -1, 0
// or +1. The total order makes values usable as sort and index keys.
func (v Value) Compare(w Value) int {
	vr, wr := v.rank(), w.rank()
	if vr != wr {
		return cmpInt(int64(vr), int64(wr))
	}
	switch v.kind {
	case KNull:
		return 0
	case KBool:
		return cmpInt(v.i, w.i)
	case KInt, KFloat:
		if v.kind == KInt && w.kind == KInt {
			return cmpInt(v.i, w.i)
		}
		vf, _ := v.AsFloat()
		wf, _ := w.AsFloat()
		switch {
		case vf < wf:
			return -1
		case vf > wf:
			return 1
		}
		return 0
	case KString:
		return strings.Compare(v.s, w.s)
	case KID:
		return cmpInt(v.i, w.i)
	}
	return 0
}

// rank groups kinds for the cross-kind total order; int and float share a
// rank so they compare numerically.
func (v Value) rank() int {
	switch v.kind {
	case KNull:
		return 0
	case KBool:
		return 1
	case KInt, KFloat:
		return 2
	case KString:
		return 3
	case KID:
		return 4
	}
	return 5
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Key is a comparable projection of a Value, suitable as a Go map key for
// hash indexes and duplicate elimination. Numerically equal int/float
// values produce the same key.
type Key struct {
	Rank int
	I    int64
	F    float64
	S    string
}

// Key returns the comparable key of the value. Integers use their float64
// image so that keys agree with Compare, which orders int against float by
// numeric value (both therefore share float64 precision).
func (v Value) Key() Key {
	k := Key{Rank: v.rank()}
	switch v.kind {
	case KBool, KID:
		k.I = v.i
	case KInt:
		k.F = float64(v.i)
	case KFloat:
		if math.IsNaN(v.f) {
			// NaN is not equal to itself under ==; canonicalize so NaN
			// values behave as a single key in maps.
			k.I = 1
		} else {
			k.F = v.f
		}
	case KString:
		k.S = v.s
	}
	return k
}

// String renders the value for diagnostics and result display. Strings are
// quoted; null renders as "⊥".
func (v Value) String() string {
	switch v.kind {
	case KNull:
		return "⊥"
	case KBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KInt:
		return strconv.FormatInt(v.i, 10)
	case KFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KString:
		return strconv.Quote(v.s)
	case KID:
		return AtomID(v.i).String()
	}
	return "?"
}

// ConformsTo reports whether the value may be stored in an attribute of
// kind k: the kinds must match, or the value is null, or an int value is
// stored into a float attribute (implicit widening).
func (v Value) ConformsTo(k Kind) bool {
	if v.kind == KNull {
		return true
	}
	if v.kind == k {
		return true
	}
	return v.kind == KInt && k == KFloat
}

// Widen converts the value to kind k when ConformsTo allows an implicit
// conversion (int→float); otherwise it returns the value unchanged.
func (v Value) Widen(k Kind) Value {
	if v.kind == KInt && k == KFloat {
		return Float(float64(v.i))
	}
	return v
}
