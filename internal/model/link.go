package model

import "fmt"

// Link is one element of a link-type occurrence: an *unsorted pair* of atom
// identifiers l = <a1, a2> with a1 ∈ ext(at1) and a2 ∈ ext(at2)
// (Definition 2). The representation keeps each identifier on its declared
// side so that typed navigation is direct, but equality is symmetric for
// reflexive link types, where both sides share an atom type.
type Link struct {
	// A is the atom on the link type's first declared side.
	A AtomID
	// B is the atom on the link type's second declared side.
	B AtomID
}

// Canonical returns the link with endpoints ordered so that reflexive links
// <x,y> and <y,x> — the same unsorted pair — compare equal. For links
// between two different atom types the sides are fixed by typing and the
// link is returned unchanged.
func (l Link) Canonical(reflexive bool) Link {
	if reflexive && l.B < l.A {
		return Link{A: l.B, B: l.A}
	}
	return l
}

// Other returns the endpoint opposite to id, honouring the symmetric
// reading of links. ok is false when id is not an endpoint.
func (l Link) Other(id AtomID) (AtomID, bool) {
	switch id {
	case l.A:
		return l.B, true
	case l.B:
		return l.A, true
	}
	return 0, false
}

// String renders the link as "<a, b>".
func (l Link) String() string { return fmt.Sprintf("<%s, %s>", l.A, l.B) }

// Cardinality bounds one side of an extended link-type definition. The
// paper notes "it is even possible to control cardinality restrictions
// specified in an extended link-type definition" (Section 3.1); Max = 0
// means unbounded.
type Cardinality struct {
	Min int
	Max int // 0 = unbounded
}

// Unbounded is the default cardinality: any number of partners.
var Unbounded = Cardinality{Min: 0, Max: 0}

// Allows reports whether a partner count n satisfies the bound.
func (c Cardinality) Allows(n int) bool {
	if n < c.Min {
		return false
	}
	return c.Max == 0 || n <= c.Max
}

// String renders the cardinality as "min:max" with "n" for unbounded.
func (c Cardinality) String() string {
	if c.Max == 0 {
		return fmt.Sprintf("%d:n", c.Min)
	}
	return fmt.Sprintf("%d:%d", c.Min, c.Max)
}

// LinkDesc is a link-type description ld = {aname1, aname2}: the names of
// the two connected atom types (Definition 2). A reflexive link type names
// the same atom type twice ("it is allowed to define several link types
// using the same two atom types as well as using only one atom type").
// Cardinalities extend the basic definition; they default to unbounded.
type LinkDesc struct {
	// SideA and SideB are the connected atom-type names.
	SideA, SideB string
	// CardA bounds how many SideB-partners one SideA atom may have;
	// CardB bounds the opposite direction.
	CardA, CardB Cardinality
}

// Reflexive reports whether both sides name the same atom type.
func (d LinkDesc) Reflexive() bool { return d.SideA == d.SideB }

// Mentions reports whether the description involves the named atom type.
func (d LinkDesc) Mentions(atomType string) bool {
	return d.SideA == atomType || d.SideB == atomType
}

// OtherSide returns the atom type opposite to the given one; ok is false
// when the type is not an endpoint. For reflexive descriptions the same
// name comes back.
func (d LinkDesc) OtherSide(atomType string) (string, bool) {
	switch atomType {
	case d.SideA:
		return d.SideB, true
	case d.SideB:
		return d.SideA, true
	}
	return "", false
}

// String renders the description as "{a, b}".
func (d LinkDesc) String() string { return "{" + d.SideA + ", " + d.SideB + "}" }
