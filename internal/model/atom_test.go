package model

import (
	"strings"
	"testing"
)

func TestAtomIDPacking(t *testing.T) {
	tests := []struct {
		tn  TypeNum
		seq uint64
	}{
		{1, 1}, {7, 12345}, {65535, MaxSeq}, {0, 0},
	}
	for _, tc := range tests {
		id := MakeAtomID(tc.tn, tc.seq)
		if id.TypeNum() != tc.tn {
			t.Errorf("TypeNum(%v) = %d, want %d", id, id.TypeNum(), tc.tn)
		}
		if id.Seq() != tc.seq {
			t.Errorf("Seq(%v) = %d, want %d", id, id.Seq(), tc.seq)
		}
	}
	if MakeAtomID(0, 0).Valid() {
		t.Fatal("zero id must be invalid")
	}
	if !MakeAtomID(1, 1).Valid() {
		t.Fatal("issued id must be valid")
	}
}

func TestNewDescValidation(t *testing.T) {
	if _, err := NewDesc(AttrDesc{Name: "", Kind: KInt}); err == nil {
		t.Fatal("empty attribute name must fail")
	}
	if _, err := NewDesc(
		AttrDesc{Name: "a", Kind: KInt},
		AttrDesc{Name: "a", Kind: KString},
	); err == nil {
		t.Fatal("duplicate attribute name must fail")
	}
	if _, err := NewDesc(AttrDesc{Name: "a", Kind: KNull}); err == nil {
		t.Fatal("null kind must fail")
	}
	d, err := NewDesc(
		AttrDesc{Name: "name", Kind: KString, NotNull: true},
		AttrDesc{Name: "size", Kind: KInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if i, ok := d.Lookup("size"); !ok || i != 1 {
		t.Fatalf("Lookup(size) = %d, %v", i, ok)
	}
	if _, ok := d.Lookup("nope"); ok {
		t.Fatal("Lookup of unknown attr must fail")
	}
}

func TestDescProjectConcatPrefix(t *testing.T) {
	d := MustDesc(
		AttrDesc{Name: "a", Kind: KInt},
		AttrDesc{Name: "b", Kind: KString},
		AttrDesc{Name: "c", Kind: KFloat},
	)
	p, err := d.Project([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Attr(0).Name != "c" || p.Attr(1).Name != "a" {
		t.Fatalf("Project order wrong: %s", p)
	}
	if _, err := d.Project([]string{"zz"}); err == nil {
		t.Fatal("projecting unknown attr must fail")
	}
	other := MustDesc(AttrDesc{Name: "d", Kind: KBool})
	cc, err := d.Concat(other)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Len() != 4 {
		t.Fatalf("Concat len = %d", cc.Len())
	}
	if _, err := d.Concat(d); err == nil {
		t.Fatal("Concat with name collision must fail")
	}
	pref := d.Prefixed("t", ".")
	if pref.Attr(0).Name != "t.a" {
		t.Fatalf("Prefixed = %s", pref.Attr(0).Name)
	}
	if !d.Disjoint(other) || d.Disjoint(d) {
		t.Fatal("Disjoint misbehaves")
	}
}

func TestDescEqual(t *testing.T) {
	a := MustDesc(AttrDesc{Name: "x", Kind: KInt}, AttrDesc{Name: "y", Kind: KString})
	b := MustDesc(AttrDesc{Name: "x", Kind: KInt}, AttrDesc{Name: "y", Kind: KString})
	c := MustDesc(AttrDesc{Name: "y", Kind: KString}, AttrDesc{Name: "x", Kind: KInt})
	if !a.Equal(b) {
		t.Fatal("identical descs must be equal")
	}
	if a.Equal(c) {
		t.Fatal("order matters for Equal")
	}
}

func TestAtomConforms(t *testing.T) {
	d := MustDesc(
		AttrDesc{Name: "name", Kind: KString, NotNull: true},
		AttrDesc{Name: "size", Kind: KFloat},
	)
	id := MakeAtomID(1, 1)
	if err := NewAtom(id, Str("x"), Float(1)).Conforms(d); err != nil {
		t.Fatalf("valid atom rejected: %v", err)
	}
	if err := NewAtom(id, Str("x")).Conforms(d); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if err := NewAtom(id, Int(3), Float(1)).Conforms(d); err == nil {
		t.Fatal("kind mismatch must fail")
	}
	if err := NewAtom(id, Null(), Float(1)).Conforms(d); err == nil {
		t.Fatal("null in NOT NULL must fail")
	}
	if err := NewAtom(id, Str("x"), Null()).Conforms(d); err != nil {
		t.Fatalf("null in nullable attr rejected: %v", err)
	}
	// Widened: int value in float attribute.
	w := NewAtom(id, Str("x"), Int(3)).Widened(d)
	if w.Get(1).Kind() != KFloat {
		t.Fatal("Widened must convert int to float attr")
	}
}

func TestAtomCloneIndependence(t *testing.T) {
	a := NewAtom(MakeAtomID(1, 1), Int(1), Int(2))
	b := a.Clone()
	b.Vals[0] = Int(99)
	if v, _ := a.Get(0).AsInt(); v != 1 {
		t.Fatal("Clone must not alias values")
	}
}

func TestAtomGetOutOfRange(t *testing.T) {
	a := NewAtom(MakeAtomID(1, 1), Int(1))
	if !a.Get(5).IsNull() || !a.Get(-1).IsNull() {
		t.Fatal("out-of-range Get must return null")
	}
}

func TestLinkCanonicalAndOther(t *testing.T) {
	x, y := MakeAtomID(1, 2), MakeAtomID(1, 1)
	l := Link{A: x, B: y}
	c := l.Canonical(true)
	if c.A != y || c.B != x {
		t.Fatalf("Canonical reflexive = %v", c)
	}
	if nr := l.Canonical(false); nr != l {
		t.Fatal("non-reflexive canonical must not reorder")
	}
	if o, ok := l.Other(x); !ok || o != y {
		t.Fatal("Other(x) failed")
	}
	if _, ok := l.Other(MakeAtomID(9, 9)); ok {
		t.Fatal("Other of non-endpoint must fail")
	}
}

func TestCardinality(t *testing.T) {
	if !Unbounded.Allows(0) || !Unbounded.Allows(1000000) {
		t.Fatal("unbounded must allow everything")
	}
	c := Cardinality{Min: 1, Max: 3}
	if c.Allows(0) || !c.Allows(1) || !c.Allows(3) || c.Allows(4) {
		t.Fatal("bounded cardinality misbehaves")
	}
	if c.String() != "1:3" || Unbounded.String() != "0:n" {
		t.Fatal("cardinality rendering wrong")
	}
}

func TestLinkDescHelpers(t *testing.T) {
	d := LinkDesc{SideA: "state", SideB: "area"}
	if d.Reflexive() {
		t.Fatal("not reflexive")
	}
	if !d.Mentions("state") || !d.Mentions("area") || d.Mentions("net") {
		t.Fatal("Mentions wrong")
	}
	if o, ok := d.OtherSide("state"); !ok || o != "area" {
		t.Fatal("OtherSide wrong")
	}
	if _, ok := d.OtherSide("net"); ok {
		t.Fatal("OtherSide of stranger must fail")
	}
	r := LinkDesc{SideA: "parts", SideB: "parts"}
	if !r.Reflexive() {
		t.Fatal("reflexive not detected")
	}
}

func TestDescString(t *testing.T) {
	d := MustDesc(AttrDesc{Name: "a", Kind: KInt, NotNull: true})
	if !strings.Contains(d.String(), "a INT NOT NULL") {
		t.Fatalf("Desc.String = %s", d)
	}
}

func TestSortAtomIDs(t *testing.T) {
	ids := []AtomID{MakeAtomID(2, 1), MakeAtomID(1, 2), MakeAtomID(1, 1)}
	SortAtomIDs(ids)
	if ids[0] != MakeAtomID(1, 1) || ids[2] != MakeAtomID(2, 1) {
		t.Fatalf("sorted = %v", ids)
	}
}
