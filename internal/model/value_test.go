package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() must be null")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Fatal("Bool(true) round-trip failed")
	}
	if i, ok := Int(-7).AsInt(); !ok || i != -7 {
		t.Fatal("Int(-7) round-trip failed")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Fatal("Float(2.5) round-trip failed")
	}
	if s, ok := Str("x").AsString(); !ok || s != "x" {
		t.Fatal("Str round-trip failed")
	}
	id := MakeAtomID(3, 42)
	if got, ok := ID(id).AsID(); !ok || got != id {
		t.Fatal("ID round-trip failed")
	}
}

func TestValueAccessorKindMismatch(t *testing.T) {
	if _, ok := Str("x").AsInt(); ok {
		t.Fatal("AsInt on string must fail")
	}
	if _, ok := Int(1).AsString(); ok {
		t.Fatal("AsString on int must fail")
	}
	if _, ok := Bool(true).AsFloat(); ok {
		t.Fatal("AsFloat on bool must fail")
	}
	if _, ok := Str("x").AsID(); ok {
		t.Fatal("AsID on string must fail")
	}
}

func TestIntWidensToFloat(t *testing.T) {
	if f, ok := Int(3).AsFloat(); !ok || f != 3.0 {
		t.Fatalf("Int(3).AsFloat() = %v, %v", f, ok)
	}
	if !Int(3).ConformsTo(KFloat) {
		t.Fatal("int must conform to float attribute")
	}
	w := Int(3).Widen(KFloat)
	if w.Kind() != KFloat {
		t.Fatalf("Widen kind = %v", w.Kind())
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Null(), Null(), 0},
		{Null(), Int(0), -1},        // null sorts first
		{Bool(true), Int(-100), -1}, // bool rank below numeric
		{Str("z"), ID(MakeAtomID(1, 1)), -1},
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Compare(tc.a); got != -tc.want {
			t.Errorf("Compare(%s, %s) = %d, want %d (antisymmetry)", tc.b, tc.a, got, -tc.want)
		}
	}
}

func TestValueEqualConsistentWithKey(t *testing.T) {
	vals := []Value{
		Null(), Bool(false), Bool(true), Int(0), Int(1), Int(-5),
		Float(0), Float(1), Float(2.5), Str(""), Str("a"), Str("b"),
		ID(MakeAtomID(1, 1)), ID(MakeAtomID(1, 2)),
	}
	for _, a := range vals {
		for _, b := range vals {
			eq := a.Equal(b)
			keq := a.Key() == b.Key()
			if eq != keq {
				t.Errorf("Equal(%s,%s)=%v but key equality=%v", a, b, eq, keq)
			}
		}
	}
}

func TestNaNKeyCanonical(t *testing.T) {
	k1 := Float(math.NaN()).Key()
	k2 := Float(math.NaN()).Key()
	if k1 != k2 {
		t.Fatal("NaN keys must be canonical")
	}
	if k1 == Float(0).Key() {
		t.Fatal("NaN key must differ from 0")
	}
}

func TestValueCompareTotalOrderProperty(t *testing.T) {
	// Antisymmetry and reflexivity over random int/float/string values.
	f := func(ai int64, af float64, as string, bi int64, bf float64, bs string, pick uint8) bool {
		mk := func(i int64, fl float64, s string, p uint8) Value {
			switch p % 3 {
			case 0:
				return Int(i)
			case 1:
				if math.IsNaN(fl) {
					fl = 0
				}
				return Float(fl)
			default:
				return Str(s)
			}
		}
		a := mk(ai, af, as, pick)
		b := mk(bi, bf, bs, pick/3)
		if a.Compare(a) != 0 || b.Compare(b) != 0 {
			return false
		}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindParsing(t *testing.T) {
	tests := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"INT", KInt, true}, {"integer", KInt, true}, {"Float", KFloat, true},
		{"REAL", KFloat, true}, {"STRING", KString, true}, {"text", KString, true},
		{"BOOL", KBool, true}, {"ID", KID, true}, {"blob", KNull, false},
	}
	for _, tc := range tests {
		got, ok := KindFromName(tc.in)
		if ok != tc.ok || got != tc.want {
			t.Errorf("KindFromName(%q) = %v, %v", tc.in, got, ok)
		}
	}
	if KInt.String() != "INT" || KString.String() != "STRING" {
		t.Error("Kind.String mismatch")
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Null(), "⊥"},
		{Bool(true), "true"},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Str("hi"), `"hi"`},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.v.Kind(), got, tc.want)
		}
	}
}

func TestConformsToNullAndKinds(t *testing.T) {
	if !Null().ConformsTo(KInt) {
		t.Fatal("null conforms to any kind")
	}
	if Str("x").ConformsTo(KInt) {
		t.Fatal("string must not conform to int")
	}
	if !Float(1).ConformsTo(KFloat) {
		t.Fatal("float conforms to float")
	}
	if Float(1).ConformsTo(KInt) {
		t.Fatal("float must not conform to int (no narrowing)")
	}
}
