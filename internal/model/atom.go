package model

import (
	"fmt"
	"sort"
	"strings"
)

// TypeNum is the small dense number the catalog assigns to each atom type.
// It is embedded in every AtomID so an identifier names both the atom and
// its type ("each atom ... is uniquely identifiable, and belongs to its
// corresponding atom type", Section 2).
type TypeNum uint16

// AtomID is the system-wide unique, immutable identifier of an atom: the
// owning atom type's number in the top 16 bits and a per-type sequence
// number in the low 48 bits. The zero AtomID is invalid and never issued.
type AtomID uint64

// seqBits is the width of the per-type sequence number inside an AtomID.
const seqBits = 48

// MaxSeq is the largest per-type sequence number an AtomID can carry.
const MaxSeq = (uint64(1) << seqBits) - 1

// MakeAtomID composes an identifier from a type number and sequence.
func MakeAtomID(t TypeNum, seq uint64) AtomID {
	return AtomID(uint64(t)<<seqBits | (seq & MaxSeq))
}

// TypeNum extracts the owning atom type's number.
func (id AtomID) TypeNum() TypeNum { return TypeNum(uint64(id) >> seqBits) }

// Seq extracts the per-type sequence number.
func (id AtomID) Seq() uint64 { return uint64(id) & MaxSeq }

// Valid reports whether the identifier was issued (non-zero).
func (id AtomID) Valid() bool { return id != 0 }

// String renders the identifier as "t<type>#<seq>" for diagnostics.
func (id AtomID) String() string {
	return fmt.Sprintf("t%d#%d", id.TypeNum(), id.Seq())
}

// AttrDesc describes one attribute of an atom type: a name, a kind and a
// not-null constraint. Attribute descriptions compose into atom-type
// descriptions (Definition 1: "a valid atom-type description consists of a
// set of attribute descriptions").
type AttrDesc struct {
	Name    string
	Kind    Kind
	NotNull bool
}

// String renders the attribute in DDL form.
func (a AttrDesc) String() string {
	s := a.Name + " " + a.Kind.String()
	if a.NotNull {
		s += " NOT NULL"
	}
	return s
}

// Desc is an atom-type description: an ordered list of uniquely named
// attribute descriptions. Its domain — the cartesian product of the
// attribute domains — is the space of valid atoms (Definition 1). Desc is
// immutable after construction and safe for concurrent use.
type Desc struct {
	attrs []AttrDesc
	index map[string]int
}

// NewDesc builds a description from attribute descriptions, rejecting
// duplicate or empty attribute names and invalid kinds.
func NewDesc(attrs ...AttrDesc) (*Desc, error) {
	d := &Desc{
		attrs: make([]AttrDesc, len(attrs)),
		index: make(map[string]int, len(attrs)),
	}
	copy(d.attrs, attrs)
	for i, a := range d.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("model: attribute %d has empty name", i)
		}
		if !a.Kind.Valid() || a.Kind == KNull {
			return nil, fmt.Errorf("model: attribute %q has invalid kind", a.Name)
		}
		if _, dup := d.index[a.Name]; dup {
			return nil, fmt.Errorf("model: duplicate attribute name %q", a.Name)
		}
		d.index[a.Name] = i
	}
	return d, nil
}

// MustDesc is NewDesc that panics on error, for fixtures and tests.
func MustDesc(attrs ...AttrDesc) *Desc {
	d, err := NewDesc(attrs...)
	if err != nil {
		panic(err)
	}
	return d
}

// Len returns the number of attributes.
func (d *Desc) Len() int { return len(d.attrs) }

// Attr returns the i-th attribute description.
func (d *Desc) Attr(i int) AttrDesc { return d.attrs[i] }

// Lookup returns the position of the named attribute.
func (d *Desc) Lookup(name string) (int, bool) {
	i, ok := d.index[name]
	return i, ok
}

// Names returns the attribute names in declaration order.
func (d *Desc) Names() []string {
	ns := make([]string, len(d.attrs))
	for i, a := range d.attrs {
		ns[i] = a.Name
	}
	return ns
}

// Attrs returns a copy of the attribute descriptions.
func (d *Desc) Attrs() []AttrDesc {
	out := make([]AttrDesc, len(d.attrs))
	copy(out, d.attrs)
	return out
}

// Equal reports whether two descriptions declare the same attributes in the
// same order (the atom-type union and difference operations require
// ad1 = ad2, Definition 4).
func (d *Desc) Equal(o *Desc) bool {
	if d.Len() != o.Len() {
		return false
	}
	for i := range d.attrs {
		if d.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// Project returns the sub-description containing the named attributes, in
// the order given (proj(ad) ⊆ ad, Definition 4). Unknown names are errors.
func (d *Desc) Project(names []string) (*Desc, error) {
	attrs := make([]AttrDesc, 0, len(names))
	for _, n := range names {
		i, ok := d.index[n]
		if !ok {
			return nil, fmt.Errorf("model: unknown attribute %q", n)
		}
		attrs = append(attrs, d.attrs[i])
	}
	return NewDesc(attrs...)
}

// Concat returns the union description ad ∪ ad′ used by the cartesian
// product (Definition 4 requires the operand descriptions to be "in pairs
// disjoint"); a name collision is an error.
func (d *Desc) Concat(o *Desc) (*Desc, error) {
	attrs := make([]AttrDesc, 0, d.Len()+o.Len())
	attrs = append(attrs, d.attrs...)
	attrs = append(attrs, o.attrs...)
	return NewDesc(attrs...)
}

// Prefixed returns a copy of the description with every attribute renamed
// to prefix+sep+name; callers use it to establish the disjointness the
// cartesian product requires.
func (d *Desc) Prefixed(prefix, sep string) *Desc {
	attrs := make([]AttrDesc, d.Len())
	for i, a := range d.attrs {
		a.Name = prefix + sep + a.Name
		attrs[i] = a
	}
	nd, err := NewDesc(attrs...)
	if err != nil {
		// Prefixing preserves uniqueness, so this cannot happen.
		panic(err)
	}
	return nd
}

// Disjoint reports whether the two descriptions share no attribute name.
func (d *Desc) Disjoint(o *Desc) bool {
	for n := range o.index {
		if _, clash := d.index[n]; clash {
			return false
		}
	}
	return true
}

// String renders the description as "(a KIND, b KIND, ...)".
func (d *Desc) String() string {
	parts := make([]string, len(d.attrs))
	for i, a := range d.attrs {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Atom is one element of an atom-type occurrence: an identity plus one
// value per attribute of the owning type's description. Atoms are the
// tuple-analogues of the MAD model (Fig. 3). The values slice is owned by
// the atom; callers must not mutate it after handing it over.
type Atom struct {
	ID   AtomID
	Vals []Value
}

// NewAtom builds an atom. The value count must match the description when
// the atom is stored; construction itself does not validate.
func NewAtom(id AtomID, vals ...Value) Atom {
	return Atom{ID: id, Vals: vals}
}

// Get returns the i-th attribute value, or null when out of range.
func (a Atom) Get(i int) Value {
	if i < 0 || i >= len(a.Vals) {
		return Null()
	}
	return a.Vals[i]
}

// Conforms checks the atom against a description: value count, kind
// conformance and not-null constraints.
func (a Atom) Conforms(d *Desc) error {
	if len(a.Vals) != d.Len() {
		return fmt.Errorf("model: atom %v has %d values, description has %d attributes",
			a.ID, len(a.Vals), d.Len())
	}
	for i, v := range a.Vals {
		ad := d.Attr(i)
		if !v.ConformsTo(ad.Kind) {
			return fmt.Errorf("model: atom %v attribute %q: %s value does not conform to %s",
				a.ID, ad.Name, v.Kind(), ad.Kind)
		}
		if ad.NotNull && v.IsNull() {
			return fmt.Errorf("model: atom %v attribute %q: null violates NOT NULL", a.ID, ad.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	vals := make([]Value, len(a.Vals))
	copy(vals, a.Vals)
	return Atom{ID: a.ID, Vals: vals}
}

// Widened returns a copy of the atom with int values widened to float where
// the description declares a float attribute, canonicalizing storage.
func (a Atom) Widened(d *Desc) Atom {
	out := a.Clone()
	for i := range out.Vals {
		if i < d.Len() {
			out.Vals[i] = out.Vals[i].Widen(d.Attr(i).Kind)
		}
	}
	return out
}

// String renders the atom as "id{a: v, ...}"; attribute names are not
// available here, so values render positionally.
func (a Atom) String() string {
	parts := make([]string, len(a.Vals))
	for i, v := range a.Vals {
		parts[i] = v.String()
	}
	return a.ID.String() + "(" + strings.Join(parts, ", ") + ")"
}

// SortAtomIDs sorts a slice of atom identifiers in place and returns it,
// giving derived sets a canonical order for display and comparison.
func SortAtomIDs(ids []AtomID) []AtomID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
