package server_test

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mad/internal/geo"
	"mad/internal/server"
	"mad/internal/storage"
)

// startServer boots a server on a free port and returns a dialed client.
func startServer(t *testing.T, db *storage.Database) (*server.Server, string) {
	t.Helper()
	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, addr.String()
}

func TestServerBasicSession(t *testing.T) {
	_, addr := startServer(t, storage.NewDatabase())
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out, err := c.Exec(`
CREATE ATOM TYPE t (name STRING NOT NULL);
INSERT INTO t VALUES ('x'), ('y');
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "inserted 2 atom(s)") {
		t.Fatalf("out: %s", out)
	}
	out, err = c.Exec("SELECT ALL FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 molecule(s)") {
		t.Fatalf("query out: %s", out)
	}
}

func TestServerErrorsAreRemoteErrors(t *testing.T) {
	_, addr := startServer(t, storage.NewDatabase())
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT ALL FROM nosuch;")
	var re *server.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	// The connection survives statement errors.
	if _, err := c.Exec("SHOW SCHEMA;"); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestServerGeoQueries(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, s.DB)
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Exec("SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Parana", "Sao Paulo", "Goias"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pn neighborhood missing %q:\n%s", want, out)
		}
	}
}

func TestServerSessionsAreIsolated(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, s.DB)
	c1, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Named molecule types are per-session (dynamic object definition).
	if _, err := c1.Exec("SELECT ALL FROM mt_state(state-area-edge-point);"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("SELECT ALL FROM mt_state;"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec("SELECT ALL FROM mt_state;"); err == nil {
		t.Fatal("session 2 must not see session 1's named types")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, s.DB)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				out, err := c.Exec("SELECT ALL FROM state-area WHERE hectare > 300;")
				if err != nil {
					errs <- err
					return
				}
				if !strings.Contains(out, "4 molecule(s)") {
					errs <- errors.New("wrong result under concurrency: " + out[:50])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerLargeResult(t *testing.T) {
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 512, EdgesPerArea: 3, Sharing: 2, Rivers: 2, RiverEdges: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, syn.DB)
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Exec("SELECT ALL FROM state-area-edge-point;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "512 molecule(s)") {
		t.Fatal("large result truncated")
	}
	if len(out) < 100_000 {
		t.Fatalf("result suspiciously small: %d bytes", len(out))
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t, storage.NewDatabase())
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
}

func TestServerDropsProtocolViolators(t *testing.T) {
	_, addr := startServer(t, storage.NewDatabase())
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("GARBAGE FRAME\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server must drop protocol violators without responding")
	}
	// A well-behaved client still works afterwards.
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SHOW SCHEMA;"); err != nil {
		t.Fatal(err)
	}
}

func TestServerOversizedFrameRejected(t *testing.T) {
	_, addr := startServer(t, storage.NewDatabase())
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("REQ 999999999999\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("oversized frame must drop the connection")
	}
}
