package server_test

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/server"
	"mad/internal/storage"
)

// startServer boots a server on a free port and returns a dialed client.
func startServer(t *testing.T, db *storage.Database) (*server.Server, string) {
	t.Helper()
	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, addr.String()
}

func TestServerBasicSession(t *testing.T) {
	_, addr := startServer(t, storage.NewDatabase())
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out, err := c.Exec(`
CREATE ATOM TYPE t (name STRING NOT NULL);
INSERT INTO t VALUES ('x'), ('y');
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "inserted 2 atom(s)") {
		t.Fatalf("out: %s", out)
	}
	out, err = c.Exec("SELECT ALL FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 molecule(s)") {
		t.Fatalf("query out: %s", out)
	}
}

func TestServerErrorsAreRemoteErrors(t *testing.T) {
	_, addr := startServer(t, storage.NewDatabase())
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT ALL FROM nosuch;")
	var re *server.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	// The connection survives statement errors.
	if _, err := c.Exec("SHOW SCHEMA;"); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestServerGeoQueries(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, s.DB)
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Exec("SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Parana", "Sao Paulo", "Goias"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pn neighborhood missing %q:\n%s", want, out)
		}
	}
}

func TestServerSessionsAreIsolated(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, s.DB)
	c1, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Named molecule types are per-session (dynamic object definition).
	if _, err := c1.Exec("SELECT ALL FROM mt_state(state-area-edge-point);"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("SELECT ALL FROM mt_state;"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec("SELECT ALL FROM mt_state;"); err == nil {
		t.Fatal("session 2 must not see session 1's named types")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, s.DB)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				out, err := c.Exec("SELECT ALL FROM state-area WHERE hectare > 300;")
				if err != nil {
					errs <- err
					return
				}
				if !strings.Contains(out, "4 molecule(s)") {
					errs <- errors.New("wrong result under concurrency: " + out[:50])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerLargeResult(t *testing.T) {
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 512, EdgesPerArea: 3, Sharing: 2, Rivers: 2, RiverEdges: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, syn.DB)
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Exec("SELECT ALL FROM state-area-edge-point;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "512 molecule(s)") {
		t.Fatal("large result truncated")
	}
	if len(out) < 100_000 {
		t.Fatalf("result suspiciously small: %d bytes", len(out))
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t, storage.NewDatabase())
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
}

func TestServerDropsProtocolViolators(t *testing.T) {
	_, addr := startServer(t, storage.NewDatabase())
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("GARBAGE FRAME\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server must drop protocol violators without responding")
	}
	// A well-behaved client still works afterwards.
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SHOW SCHEMA;"); err != nil {
		t.Fatal(err)
	}
}

func TestServerOversizedFrameRejected(t *testing.T) {
	_, addr := startServer(t, storage.NewDatabase())
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("REQ 999999999999\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("oversized frame must drop the connection")
	}
}

// TestServerStreamsChunks speaks the raw protocol against a server with
// a tiny chunk threshold: a large SELECT must arrive as several CHUNK
// frames followed by the closing OK, and their concatenation must carry
// every molecule plus the trailing summary line.
func TestServerStreamsChunks(t *testing.T) {
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 64, EdgesPerArea: 3, Sharing: 2, Rivers: 2, RiverEdges: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, syn.DB)
	srv.SetChunkSize(256)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	req := "SELECT ALL FROM state-area-edge-point;"
	if _, err := fmt.Fprintf(raw, "REQ %d\n%s", len(req), req); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(raw)
	chunks := 0
	var out strings.Builder
	for {
		header, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		verb, sizeStr, _ := strings.Cut(strings.TrimSuffix(header, "\n"), " ")
		n, err := strconv.Atoi(sizeStr)
		if err != nil {
			t.Fatalf("bad frame header %q", header)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			t.Fatal(err)
		}
		out.Write(payload)
		if verb == "CHUNK" {
			chunks++
			continue
		}
		if verb != "OK" {
			t.Fatalf("unexpected verb %q with payload %q", verb, payload)
		}
		break
	}
	if chunks < 2 {
		t.Fatalf("large result must stream in several chunks, got %d", chunks)
	}
	if got := out.String(); !strings.Contains(got, "-- molecule 64") || !strings.Contains(got, "64 molecule(s)") {
		t.Fatalf("reassembled result incomplete:\n%.300s", got)
	}
}

// TestServerRequestDeadline: a request outliving the per-request
// deadline is aborted and answered with an ERR frame carrying the
// context error; the connection stays usable.
func TestServerRequestDeadline(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, s.DB)
	srv.SetRequestTimeout(time.Nanosecond)
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT ALL FROM state-area-edge-point;")
	var re *server.RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "deadline") {
		t.Fatalf("want deadline RemoteError, got %v", err)
	}
	srv.SetRequestTimeout(0)
	if _, err := c.Exec("SHOW SCHEMA;"); err != nil {
		t.Fatalf("connection dead after deadline: %v", err)
	}
}

// TestServerClientDisconnectCancels: a client that hangs up mid-stream
// must not wedge its handler — the failed chunk write cancels the
// in-flight derivation and the handler exits, so Close (which waits for
// every handler) completes promptly.
func TestServerClientDisconnectCancels(t *testing.T) {
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 2048, EdgesPerArea: 4, Sharing: 2, Rivers: 2, RiverEdges: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(syn.DB)
	srv.SetChunkSize(64)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	raw, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	req := "SELECT ALL FROM state-area-edge-point;"
	if _, err := fmt.Fprintf(raw, "REQ %d\n%s", len(req), req); err != nil {
		t.Fatal(err)
	}
	// Read one chunk header to be sure the stream started, then hang up.
	r := bufio.NewReader(raw)
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return: disconnected client's handler is wedged")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestServerOrderedAndCountQueries drives the new ordered/aggregated
// surface over the wire: an ORDER BY SELECT streams its molecules in key
// order through the usual CHUNK frames, and SELECT COUNT (grouped or
// not) arrives as an eagerly rendered result.
func TestServerOrderedAndCountQueries(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, s.DB)
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out, err := c.Exec("SELECT state FROM state-area ORDER BY hectare DESC LIMIT 2;")
	if err != nil {
		t.Fatal(err)
	}
	// Largest two states first: Bahia (1000) before Minas Gerais (900).
	ba, mg := strings.Index(out, "Bahia"), strings.Index(out, "Minas Gerais")
	if ba < 0 || mg < 0 || ba > mg {
		t.Fatalf("ordered delivery wrong (Bahia at %d, Minas Gerais at %d):\n%s", ba, mg, out)
	}
	if strings.Count(out, "-- molecule") != 2 {
		t.Fatalf("want 2 molecules:\n%s", out)
	}

	out, err = c.Exec("SELECT COUNT FROM state-area WHERE state.hectare > 500;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "count: 2") {
		t.Fatalf("count out: %s", out)
	}

	out, err = c.Exec("SELECT COUNT FROM state-area GROUP BY abbrev LIMIT 3;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 group(s) by abbrev") {
		t.Fatalf("group out: %s", out)
	}
}

// TestServerRecursiveStreaming: a recursive SELECT streams its closures
// over the wire as CHUNK frames as each one finishes — the reassembled
// payload carries every molecule level by level plus the trailing
// summary — and SELECT COUNT over a recursion arrives eagerly rendered.
func TestServerRecursiveStreaming(t *testing.T) {
	db := storage.NewDatabase()
	if _, err := db.DefineAtomType("parts", model.MustDesc(model.AttrDesc{Name: "name", Kind: model.KString})); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("composition", model.LinkDesc{SideA: "parts", SideB: "parts"}); err != nil {
		t.Fatal(err)
	}
	const roots, depth = 16, 4
	ids := make([]model.AtomID, roots*depth)
	for i := range ids {
		id, err := db.InsertAtom("parts", model.Str(fmt.Sprintf("p%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for r := 0; r < roots; r++ {
		for d := 0; d < depth-1; d++ {
			if err := db.Connect("composition", ids[r*depth+d], ids[r*depth+d+1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv, addr := startServer(t, db)
	srv.SetChunkSize(128)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	req := "SELECT ALL FROM RECURSIVE parts VIA composition;"
	if _, err := fmt.Fprintf(raw, "REQ %d\n%s", len(req), req); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(raw)
	chunks := 0
	var out strings.Builder
	for {
		header, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		verb, sizeStr, _ := strings.Cut(strings.TrimSuffix(header, "\n"), " ")
		n, err := strconv.Atoi(sizeStr)
		if err != nil {
			t.Fatalf("bad frame header %q", header)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			t.Fatal(err)
		}
		out.Write(payload)
		if verb == "CHUNK" {
			chunks++
			continue
		}
		if verb != "OK" {
			t.Fatalf("unexpected verb %q with payload %q", verb, payload)
		}
		break
	}
	if chunks < 2 {
		t.Fatalf("recursive result must stream in several chunks, got %d", chunks)
	}
	got := out.String()
	if strings.Count(got, "-- molecule") != roots*depth {
		t.Fatalf("want %d closures, payload:\n%.400s", roots*depth, got)
	}
	for _, want := range []string{`level 0: "p000"`, `level 3: "p003"`, fmt.Sprintf("%d recursive molecule(s)\n", roots*depth)} {
		if !strings.Contains(got, want) {
			t.Fatalf("reassembled payload missing %q:\n%.400s", want, got)
		}
	}

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cnt, err := c.Exec("SELECT COUNT FROM RECURSIVE parts VIA composition;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cnt, fmt.Sprintf("count: %d", roots*depth)) {
		t.Fatalf("recursive count over the wire: %s", cnt)
	}
}
