package server_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mad/internal/server"
	"mad/internal/storage"
)

// dialTxnServer boots a server over a parts schema and dials n clients.
func dialTxnServer(t *testing.T, n int) (*storage.Database, []*server.Client) {
	t.Helper()
	db := storage.NewDatabase()
	_, addr := startServer(t, db)
	clients := make([]*server.Client, n)
	for i := range clients {
		c, err := server.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	if _, err := clients[0].Exec(`
CREATE ATOM TYPE parts (name STRING NOT NULL, weight FLOAT);
INSERT INTO parts VALUES ('engine', 120.5), ('piston', 2.5);
`); err != nil {
		t.Fatal(err)
	}
	return db, clients
}

// TestServerTxnIsolationAcrossConnections drives BEGIN/INSERT/COMMIT on
// one connection while another streams SELECTs: the reader sees either
// the pre-commit or post-commit state, never a partial transaction.
func TestServerTxnIsolationAcrossConnections(t *testing.T) {
	_, cs := dialTxnServer(t, 2)
	writer, reader := cs[0], cs[1]

	if out, err := writer.Exec("BEGIN;"); err != nil || !strings.Contains(out, "transaction started") {
		t.Fatalf("BEGIN: %v %q", err, out)
	}
	if _, err := writer.Exec("INSERT INTO parts VALUES ('ring', 0.1); INSERT INTO parts VALUES ('bolt', 0.05);"); err != nil {
		t.Fatal(err)
	}
	out, err := reader.Exec("SELECT ALL FROM parts;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 molecule(s)") {
		t.Fatalf("reader sees buffered writes before commit:\n%s", out)
	}
	// The writer's own SELECT reads the effective view: begin snapshot
	// plus its buffered writes (read-your-writes).
	out, err = writer.Exec("SELECT ALL FROM parts;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 molecule(s)") || !strings.Contains(out, "ring") {
		t.Fatalf("writer misses own buffered writes mid-txn:\n%s", out)
	}
	if out, err = writer.Exec("COMMIT;"); err != nil || !strings.Contains(out, "committed 2 mutation(s)") {
		t.Fatalf("COMMIT: %v %q", err, out)
	}
	out, err = reader.Exec("SELECT ALL FROM parts;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 molecule(s)") {
		t.Fatalf("reader after commit:\n%s", out)
	}
}

// TestServerDroppedConnectionRollsBack verifies that a client that
// disconnects with a transaction open leaves no trace: the deferred
// session Close rolls the buffered writes back and releases the pinned
// snapshot so vacuum can advance.
func TestServerDroppedConnectionRollsBack(t *testing.T) {
	db, cs := dialTxnServer(t, 2)
	doomed, survivor := cs[0], cs[1]
	if _, err := doomed.Exec("BEGIN; INSERT INTO parts VALUES ('ghost', 0.0);"); err != nil {
		t.Fatal(err)
	}
	doomed.Close()
	// The handler tears the session down asynchronously after the
	// disconnect; poll through the surviving connection.
	waitOK := false
	for i := 0; i < 200 && !waitOK; i++ {
		db.Vacuum()
		st := db.Vacuum()
		waitOK = st.Reclaimed == 0 && db.VacuumHorizon() == db.LatestTS()
	}
	out, err := survivor.Exec("SELECT ALL FROM parts;")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "ghost") || !strings.Contains(out, "2 molecule(s)") {
		t.Fatalf("abandoned txn leaked:\n%s", out)
	}
}

// TestServerConcurrentTxnWritersAndStreamingReaders is the wire-level
// mixed workload: several connections run BEGIN/INSERT/COMMIT loops
// while several others stream SELECTs. Every response must parse
// cleanly, every reader must see a whole number of committed
// transactions (each commit installs exactly 2 parts), and the final
// state must account for every commit.
func TestServerConcurrentTxnWritersAndStreamingReaders(t *testing.T) {
	const writers, readers, rounds = 3, 3, 8
	db, cs := dialTxnServer(t, writers+readers+1)
	check := cs[writers+readers]

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cs[w]
			for r := 0; r < rounds; r++ {
				script := fmt.Sprintf(
					"BEGIN; INSERT INTO parts VALUES ('w%d_%d_a', 1.0); INSERT INTO parts VALUES ('w%d_%d_b', 2.0); COMMIT;",
					w, r, w, r)
				if _, err := c.Exec(script); err != nil {
					errc <- fmt.Errorf("writer %d round %d: %w", w, r, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := cs[writers+r]
			for i := 0; i < rounds; i++ {
				out, err := c.Exec("SELECT ALL FROM parts;")
				if err != nil {
					errc <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				// Each streamed response trails "<n> molecule(s) of ...";
				// n-2 seeded parts must be an even count: a whole number
				// of 2-insert transactions, never half of one.
				n := -1
				for _, line := range strings.Split(out, "\n") {
					if _, err := fmt.Sscanf(line, "%d molecule(s)", &n); err == nil {
						break
					}
				}
				if n < 2 || (n-2)%2 != 0 {
					errc <- fmt.Errorf("reader %d saw torn commit: %d parts\n%s", r, n, out)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	out, err := check.Exec("SELECT ALL FROM parts;")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%d molecule(s)", 2+2*writers*rounds)
	if !strings.Contains(out, want) {
		t.Fatalf("final state: want %s in\n%s", want, out)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
