// Package server exposes a MAD database over TCP, completing the PRIMA
// picture (Chapter 5): the molecule-processing layer with its MQL
// interface serving application programs — here, remote clients. Each
// connection gets its own MQL session (named molecule types are
// per-session, as in the paper's dynamic object definition); the shared
// database serializes data access internally.
//
// The wire protocol is deliberately simple and self-framing:
//
//	client → server:  "REQ <n>\n" followed by n bytes of MQL text
//	server → client:  zero or more "CHUNK <n>\n" + n-byte payload frames,
//	                  then exactly one "OK <n>\n" or "ERR <n>\n" frame
//
// One request may contain several ';'-separated statements; the
// concatenation of the CHUNK payloads and the final OK payload is the
// rendering of their results. SELECT results are not buffered: the
// session streams molecules off the planner's bounded-channel executor
// and the handler flushes a CHUNK frame whenever chunkSize bytes have
// rendered, so the first rows reach a client while the bulk of the root
// batch is still deriving, and the server's memory per connection stays
// bounded no matter how large the result is. Because a streamed result's
// cardinality is unknown until the stream ends, its "N molecule(s) of
// ..." summary line trails the molecules instead of leading them.
//
// Each request runs under a context: SetRequestTimeout installs a
// per-request deadline (exceeding it aborts the statement with an ERR
// frame), and a failed CHUNK write — the client hung up mid-result —
// cancels the in-flight derivation, so a disconnected client's workers
// stop instead of materializing a result nobody reads.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"mad/internal/mql"
	"mad/internal/storage"
)

// maxRequest bounds a single request frame (16 MiB).
const maxRequest = 16 << 20

// defaultChunkSize is the rendered-byte threshold at which a response
// CHUNK frame flushes.
const defaultChunkSize = 8 << 10

// Server serves MQL over TCP.
type Server struct {
	db *storage.Database

	mu        sync.Mutex
	listener  net.Listener
	conns     map[net.Conn]bool
	closed    bool
	timeout   time.Duration
	chunkSize int
	wg        sync.WaitGroup
}

// New creates a server over the database.
func New(db *storage.Database) *Server {
	return &Server{db: db, conns: make(map[net.Conn]bool), chunkSize: defaultChunkSize}
}

// SetRequestTimeout installs a per-request deadline (0 disables, the
// default): a request still executing when it expires is aborted and
// answered with an ERR frame, and its in-flight derivation is cancelled.
func (s *Server) SetRequestTimeout(d time.Duration) {
	s.mu.Lock()
	s.timeout = d
	s.mu.Unlock()
}

// SetChunkSize overrides the rendered-byte threshold at which response
// CHUNK frames flush (tests use tiny thresholds to force multi-chunk
// responses).
func (s *Server) SetChunkSize(n int) {
	s.mu.Lock()
	if n > 0 {
		s.chunkSize = n
	}
	s.mu.Unlock()
}

// Listen binds the address (e.g. "127.0.0.1:7227"; port 0 picks a free
// one) and returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until Close. It returns nil after a graceful
// Close and the accept error otherwise.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.listener
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, closes every live connection and waits for the
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs one connection's session loop.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	sess := mql.NewSession(s.db)
	// A dropped connection rolls back any transaction left open, so an
	// abandoned BEGIN cannot pin the vacuum horizon forever.
	defer sess.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		req, err := readFrame(r, "REQ")
		if err != nil {
			return // disconnect or protocol error: drop the connection
		}
		if s.handleRequest(sess, w, string(req)) != nil {
			return // the response could not be delivered: drop the connection
		}
	}
}

// handleRequest executes one request under its context and writes the
// response frames. The returned error reports a broken connection;
// statement errors travel to the client in an ERR frame instead.
func (s *Server) handleRequest(sess *mql.Session, w *bufio.Writer, req string) error {
	s.mu.Lock()
	timeout, chunkSize := s.timeout, s.chunkSize
	s.mu.Unlock()
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	// A failed chunk write means the client hung up mid-result: cancel
	// the request context so the in-flight derivation's workers stop.
	ck := &chunker{w: w, limit: chunkSize, cancel: cancel}
	execErr := s.execStream(ctx, sess, req, ck)
	if ck.err != nil {
		return ck.err
	}
	if execErr != nil {
		if err := writeFrame(w, "ERR", []byte(execErr.Error())); err != nil {
			return err
		}
		return w.Flush()
	}
	// The final OK frame carries whatever rendering is still buffered.
	if err := writeFrame(w, "OK", ck.buf.Bytes()); err != nil {
		return err
	}
	return w.Flush()
}

// execStream runs one request's statements, streaming SELECT results
// molecule by molecule into the chunker.
func (s *Server) execStream(ctx context.Context, sess *mql.Session, src string, ck *chunker) error {
	stmts, err := mql.ParseScript(src)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		cur, err := sess.ExecuteStream(ctx, st)
		if err != nil {
			return err
		}
		if !cur.Streaming() {
			r, err := cur.Result()
			if err != nil {
				return err
			}
			ck.add(r.Render(s.db))
			continue
		}
		if cur.RecStreaming() {
			// Recursive fixpoint cursor: each molecule's closure renders
			// into a CHUNK frame the moment it finishes, at the cursor's
			// pinned snapshot.
			n := 0
			for {
				m, err := cur.NextRec()
				if err != nil {
					cur.Close()
					return err
				}
				if m == nil {
					break
				}
				n++
				ck.add(mql.RenderRecMoleculeAt(s.db, cur.SnapshotTS(), n, m, cur.RecAtomType()))
				if ck.err != nil {
					cur.Close()
					return ck.err
				}
			}
			ck.add(fmt.Sprintf("%d recursive molecule(s)\n", n))
			if err := cur.Close(); err != nil {
				return err
			}
			continue
		}
		n := 0
		for {
			m, err := cur.Next()
			if err != nil {
				cur.Close()
				return err
			}
			if m == nil {
				break
			}
			n++
			ck.add(mql.RenderMoleculeAt(s.db, cur.SnapshotTS(), n, m, cur.Attrs()))
			if ck.err != nil {
				cur.Close()
				return ck.err
			}
		}
		ck.add(fmt.Sprintf("%d molecule(s) of %s\n", n, cur.Desc()))
		if err := cur.Close(); err != nil {
			return err
		}
	}
	return nil
}

// chunker accumulates rendered response text and flushes it as CHUNK
// frames once the threshold is reached; whatever remains at the end of
// the request travels in the final OK frame. The first write error is
// sticky and cancels the request context — the client is gone, so the
// in-flight work should stop too.
type chunker struct {
	w      *bufio.Writer
	buf    bytes.Buffer
	limit  int
	cancel context.CancelFunc
	err    error
}

func (c *chunker) add(s string) {
	if c.err != nil {
		return
	}
	c.buf.WriteString(s)
	if c.buf.Len() >= c.limit {
		c.flushChunk()
	}
}

func (c *chunker) flushChunk() {
	if c.err != nil || c.buf.Len() == 0 {
		return
	}
	if c.err = writeFrame(c.w, "CHUNK", c.buf.Bytes()); c.err == nil {
		c.err = c.w.Flush()
	}
	if c.err != nil && c.cancel != nil {
		c.cancel()
	}
	c.buf.Reset()
}

// readFrame reads "<verb> <n>\n" + n bytes.
func readFrame(r *bufio.Reader, wantVerb string) ([]byte, error) {
	header, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	header = strings.TrimSuffix(header, "\n")
	verb, sizeStr, ok := strings.Cut(header, " ")
	if !ok || verb != wantVerb {
		return nil, fmt.Errorf("server: bad frame header %q", header)
	}
	n, err := strconv.Atoi(sizeStr)
	if err != nil || n < 0 || n > maxRequest {
		return nil, fmt.Errorf("server: bad frame size %q", sizeStr)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame writes "<verb> <n>\n" + payload.
func writeFrame(w *bufio.Writer, verb string, payload []byte) error {
	if _, err := fmt.Fprintf(w, "%s %d\n", verb, len(payload)); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Client is a blocking MQL client for the wire protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Exec sends MQL text and returns the rendered result, concatenated
// across however many CHUNK frames the server streamed before the
// closing OK. A server-side statement error comes back as a
// *RemoteError* (any chunks received before it are discarded).
func (c *Client) Exec(src string) (string, error) {
	if err := writeFrame(c.w, "REQ", []byte(src)); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	var out strings.Builder
	for {
		verb, payload, err := c.readResponseFrame()
		if err != nil {
			return "", err
		}
		switch verb {
		case "CHUNK":
			out.Write(payload)
		case "OK":
			out.Write(payload)
			return out.String(), nil
		case "ERR":
			return "", &RemoteError{Msg: string(payload)}
		default:
			return "", fmt.Errorf("server: unknown response verb %q", verb)
		}
	}
}

// readResponseFrame reads one response frame of any verb.
func (c *Client) readResponseFrame() (string, []byte, error) {
	header, err := c.r.ReadString('\n')
	if err != nil {
		return "", nil, err
	}
	header = strings.TrimSuffix(header, "\n")
	verb, sizeStr, ok := strings.Cut(header, " ")
	if !ok {
		return "", nil, fmt.Errorf("server: bad response header %q", header)
	}
	n, err := strconv.Atoi(sizeStr)
	if err != nil || n < 0 || n > maxRequest {
		return "", nil, fmt.Errorf("server: bad response size %q", sizeStr)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", nil, err
	}
	return verb, buf, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// RemoteError is a statement error reported by the server.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "remote: " + e.Msg }
