// Package server exposes a MAD database over TCP, completing the PRIMA
// picture (Chapter 5): the molecule-processing layer with its MQL
// interface serving application programs — here, remote clients. Each
// connection gets its own MQL session (named molecule types are
// per-session, as in the paper's dynamic object definition); the shared
// database serializes data access internally.
//
// The wire protocol is deliberately simple and self-framing:
//
//	client → server:  "REQ <n>\n" followed by n bytes of MQL text
//	server → client:  "OK <n>\n" or "ERR <n>\n" followed by n payload bytes
//
// One request may contain several ';'-separated statements; the payload of
// an OK response is the concatenated rendering of their results.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"mad/internal/mql"
	"mad/internal/storage"
)

// maxRequest bounds a single request frame (16 MiB).
const maxRequest = 16 << 20

// Server serves MQL over TCP.
type Server struct {
	db *storage.Database

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// New creates a server over the database.
func New(db *storage.Database) *Server {
	return &Server{db: db, conns: make(map[net.Conn]bool)}
}

// Listen binds the address (e.g. "127.0.0.1:7227"; port 0 picks a free
// one) and returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until Close. It returns nil after a graceful
// Close and the accept error otherwise.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.listener
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, closes every live connection and waits for the
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs one connection's session loop.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	sess := mql.NewSession(s.db)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		req, err := readFrame(r, "REQ")
		if err != nil {
			return // disconnect or protocol error: drop the connection
		}
		payload, execErr := s.exec(sess, string(req))
		if execErr != nil {
			if writeFrame(w, "ERR", []byte(execErr.Error())) != nil {
				return
			}
		} else {
			if writeFrame(w, "OK", []byte(payload)) != nil {
				return
			}
		}
		if w.Flush() != nil {
			return
		}
	}
}

// exec runs one request's statements and renders the results.
func (s *Server) exec(sess *mql.Session, src string) (string, error) {
	results, err := sess.ExecScript(src)
	var b strings.Builder
	for _, res := range results {
		b.WriteString(res.Render(s.db))
	}
	if err != nil {
		return "", err
	}
	return b.String(), nil
}

// readFrame reads "<verb> <n>\n" + n bytes.
func readFrame(r *bufio.Reader, wantVerb string) ([]byte, error) {
	header, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	header = strings.TrimSuffix(header, "\n")
	verb, sizeStr, ok := strings.Cut(header, " ")
	if !ok || verb != wantVerb {
		return nil, fmt.Errorf("server: bad frame header %q", header)
	}
	n, err := strconv.Atoi(sizeStr)
	if err != nil || n < 0 || n > maxRequest {
		return nil, fmt.Errorf("server: bad frame size %q", sizeStr)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame writes "<verb> <n>\n" + payload.
func writeFrame(w *bufio.Writer, verb string, payload []byte) error {
	if _, err := fmt.Fprintf(w, "%s %d\n", verb, len(payload)); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Client is a blocking MQL client for the wire protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Exec sends MQL text and returns the rendered result. A server-side
// statement error comes back as a *RemoteError*.
func (c *Client) Exec(src string) (string, error) {
	if err := writeFrame(c.w, "REQ", []byte(src)); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	header, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	header = strings.TrimSuffix(header, "\n")
	verb, sizeStr, ok := strings.Cut(header, " ")
	if !ok {
		return "", fmt.Errorf("server: bad response header %q", header)
	}
	n, err := strconv.Atoi(sizeStr)
	if err != nil || n < 0 || n > maxRequest {
		return "", fmt.Errorf("server: bad response size %q", sizeStr)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", err
	}
	switch verb {
	case "OK":
		return string(buf), nil
	case "ERR":
		return "", &RemoteError{Msg: string(buf)}
	}
	return "", fmt.Errorf("server: unknown response verb %q", verb)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// RemoteError is a statement error reported by the server.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "remote: " + e.Msg }
