// Package expr implements the qualification formulas of the MAD algebras:
// the restr(ad) predicates of atom-type restriction σ (Definition 4) and
// the restr(md) predicates of molecule-type restriction Σ (Definition 10).
//
// An expression evaluates against a Binding. An atom binds each attribute
// to exactly one value; a molecule binds a qualified name like point.name
// to the values of *all* component atoms of that type, and comparisons
// follow existential semantics: point.name = 'pn' holds when some point
// atom of the molecule carries that name. Explicit EXISTS/ALL quantifiers
// make the choice visible when it matters.
package expr

import (
	"fmt"
	"strings"

	"mad/internal/model"
)

// CmpOp enumerates the comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

var cmpNames = [...]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="}

// String returns the MQL spelling of the operator.
func (op CmpOp) String() string { return cmpNames[op] }

// holds applies the operator to a three-way comparison result.
func (op CmpOp) holds(c int) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	}
	return false
}

// ArithOp enumerates the arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

var arithNames = [...]string{Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%"}

// String returns the MQL spelling of the operator.
func (op ArithOp) String() string { return arithNames[op] }

// Binding supplies values to attribute references during evaluation.
type Binding interface {
	// Resolve returns every value bound to the (possibly unqualified)
	// attribute reference. Atom bindings return exactly one value;
	// molecule bindings return one value per component atom of the
	// referenced type. An unknown reference is an error.
	Resolve(typeName, attr string) ([]model.Value, error)
	// Count returns how many component atoms of the named type the bound
	// object holds (1 or 0 for atom bindings).
	Count(typeName string) (int, error)
}

// Expr is a qualification-formula node.
type Expr interface {
	// Eval computes the expression's value(s) under the binding. A
	// predicate yields a single boolean value.
	Eval(b Binding) ([]model.Value, error)
	// String renders the expression in MQL syntax.
	String() string
}

// Const is a literal value.
type Const struct{ V model.Value }

// Lit is shorthand for a constant node.
func Lit(v model.Value) Const { return Const{V: v} }

// Eval returns the literal.
func (c Const) Eval(Binding) ([]model.Value, error) { return []model.Value{c.V}, nil }

// String renders the literal.
func (c Const) String() string { return c.V.String() }

// Attr references an attribute, optionally qualified with an atom-type
// name (point.name). Unqualified references resolve only when unambiguous
// in the binding's scope.
type Attr struct {
	Type string // "" = unqualified
	Name string
}

// Eval resolves the reference through the binding.
func (a Attr) Eval(b Binding) ([]model.Value, error) { return b.Resolve(a.Type, a.Name) }

// String renders the reference.
func (a Attr) String() string {
	if a.Type == "" {
		return a.Name
	}
	return a.Type + "." + a.Name
}

// Cmp compares two expressions. When either side is multi-valued the
// comparison is existential: it holds if some pair of values satisfies the
// operator.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval computes the existential comparison.
func (c Cmp) Eval(b Binding) ([]model.Value, error) {
	ls, err := c.L.Eval(b)
	if err != nil {
		return nil, err
	}
	rs, err := c.R.Eval(b)
	if err != nil {
		return nil, err
	}
	for _, l := range ls {
		for _, r := range rs {
			if l.IsNull() || r.IsNull() {
				continue // SQL-style: null compares to nothing
			}
			if c.Op.holds(l.Compare(r)) {
				return trueVal, nil
			}
		}
	}
	return falseVal, nil
}

// String renders the comparison.
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

var (
	trueVal  = []model.Value{model.Bool(true)}
	falseVal = []model.Value{model.Bool(false)}
)

// And is logical conjunction.
type And struct{ L, R Expr }

// Eval computes the conjunction.
func (a And) Eval(b Binding) ([]model.Value, error) {
	l, err := evalBool(a.L, b)
	if err != nil {
		return nil, err
	}
	if !l {
		return falseVal, nil
	}
	r, err := evalBool(a.R, b)
	if err != nil {
		return nil, err
	}
	return boolVal(r), nil
}

// String renders the conjunction.
func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is logical disjunction.
type Or struct{ L, R Expr }

// Eval computes the disjunction.
func (o Or) Eval(b Binding) ([]model.Value, error) {
	l, err := evalBool(o.L, b)
	if err != nil {
		return nil, err
	}
	if l {
		return trueVal, nil
	}
	r, err := evalBool(o.R, b)
	if err != nil {
		return nil, err
	}
	return boolVal(r), nil
}

// String renders the disjunction.
func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is logical negation.
type Not struct{ E Expr }

// Eval computes the negation.
func (n Not) Eval(b Binding) ([]model.Value, error) {
	v, err := evalBool(n.E, b)
	if err != nil {
		return nil, err
	}
	return boolVal(!v), nil
}

// String renders the negation.
func (n Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// Arith applies an arithmetic operator. Both operands must be single
// numeric values; integer pairs stay integral (except division by zero,
// which is an error).
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval computes the arithmetic result.
func (a Arith) Eval(b Binding) ([]model.Value, error) {
	l, err := evalSingle(a.L, b)
	if err != nil {
		return nil, err
	}
	r, err := evalSingle(a.R, b)
	if err != nil {
		return nil, err
	}
	li, lok := l.AsInt()
	ri, rok := r.AsInt()
	if lok && rok {
		switch a.Op {
		case Add:
			return []model.Value{model.Int(li + ri)}, nil
		case Sub:
			return []model.Value{model.Int(li - ri)}, nil
		case Mul:
			return []model.Value{model.Int(li * ri)}, nil
		case Div:
			if ri == 0 {
				return nil, fmt.Errorf("expr: integer division by zero")
			}
			return []model.Value{model.Int(li / ri)}, nil
		case Mod:
			if ri == 0 {
				return nil, fmt.Errorf("expr: integer modulo by zero")
			}
			return []model.Value{model.Int(li % ri)}, nil
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return nil, fmt.Errorf("expr: %s applied to non-numeric operands %s, %s", a.Op, l, r)
	}
	switch a.Op {
	case Add:
		return []model.Value{model.Float(lf + rf)}, nil
	case Sub:
		return []model.Value{model.Float(lf - rf)}, nil
	case Mul:
		return []model.Value{model.Float(lf * rf)}, nil
	case Div:
		if rf == 0 {
			return nil, fmt.Errorf("expr: division by zero")
		}
		return []model.Value{model.Float(lf / rf)}, nil
	case Mod:
		return nil, fmt.Errorf("expr: %% requires integer operands")
	}
	return nil, fmt.Errorf("expr: unknown arithmetic operator")
}

// String renders the arithmetic expression.
func (a Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// Exists holds when the bound object contains at least one component atom
// of the named type — useful because molecule totality permits empty
// branches (a point with no net neighbours still forms a molecule).
type Exists struct{ Type string }

// Eval tests component presence.
func (e Exists) Eval(b Binding) ([]model.Value, error) {
	n, err := b.Count(e.Type)
	if err != nil {
		return nil, err
	}
	return boolVal(n > 0), nil
}

// String renders the quantifier.
func (e Exists) String() string { return fmt.Sprintf("EXISTS(%s)", e.Type) }

// All holds when *every* component atom of the referenced type satisfies
// the comparison — the universal counterpart of Cmp's existential default.
type All struct {
	Attr Attr
	Op   CmpOp
	R    Expr
}

// Eval tests the universal comparison. It is vacuously true when the
// molecule holds no atom of the referenced type.
func (a All) Eval(b Binding) ([]model.Value, error) {
	ls, err := a.Attr.Eval(b)
	if err != nil {
		return nil, err
	}
	rs, err := a.R.Eval(b)
	if err != nil {
		return nil, err
	}
	for _, l := range ls {
		ok := false
		for _, r := range rs {
			if !l.IsNull() && !r.IsNull() && a.Op.holds(l.Compare(r)) {
				ok = true
				break
			}
		}
		if !ok {
			return falseVal, nil
		}
	}
	return trueVal, nil
}

// String renders the quantifier.
func (a All) String() string {
	return fmt.Sprintf("ALL(%s %s %s)", a.Attr, a.Op, a.R)
}

// CountOf yields the number of component atoms of the named type, enabling
// formulas like COUNT(edge) > 3.
type CountOf struct{ Type string }

// Eval counts components.
func (c CountOf) Eval(b Binding) ([]model.Value, error) {
	n, err := b.Count(c.Type)
	if err != nil {
		return nil, err
	}
	return []model.Value{model.Int(int64(n))}, nil
}

// String renders the aggregate.
func (c CountOf) String() string { return fmt.Sprintf("COUNT(%s)", c.Type) }

// Func applies a built-in scalar function to single-valued arguments.
// Supported: LEN, LOWER, UPPER, ABS.
type Func struct {
	Name string
	Args []Expr
}

// Eval applies the function.
func (f Func) Eval(b Binding) ([]model.Value, error) {
	args := make([]model.Value, len(f.Args))
	for i, e := range f.Args {
		v, err := evalSingle(e, b)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	name := strings.ToUpper(f.Name)
	switch name {
	case "LEN":
		if err := arity(name, args, 1); err != nil {
			return nil, err
		}
		s, ok := args[0].AsString()
		if !ok {
			return nil, fmt.Errorf("expr: LEN requires a string, got %s", args[0])
		}
		return []model.Value{model.Int(int64(len(s)))}, nil
	case "LOWER", "UPPER":
		if err := arity(name, args, 1); err != nil {
			return nil, err
		}
		s, ok := args[0].AsString()
		if !ok {
			return nil, fmt.Errorf("expr: %s requires a string, got %s", name, args[0])
		}
		if name == "LOWER" {
			return []model.Value{model.Str(strings.ToLower(s))}, nil
		}
		return []model.Value{model.Str(strings.ToUpper(s))}, nil
	case "ABS":
		if err := arity(name, args, 1); err != nil {
			return nil, err
		}
		if i, ok := args[0].AsInt(); ok {
			if i < 0 {
				i = -i
			}
			return []model.Value{model.Int(i)}, nil
		}
		if fv, ok := args[0].AsFloat(); ok {
			if fv < 0 {
				fv = -fv
			}
			return []model.Value{model.Float(fv)}, nil
		}
		return nil, fmt.Errorf("expr: ABS requires a number, got %s", args[0])
	case "CONTAINS", "PREFIX", "SUFFIX":
		if err := arity(name, args, 2); err != nil {
			return nil, err
		}
		s, ok1 := args[0].AsString()
		sub, ok2 := args[1].AsString()
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("expr: %s requires strings", name)
		}
		switch name {
		case "CONTAINS":
			return boolVal(strings.Contains(s, sub)), nil
		case "PREFIX":
			return boolVal(strings.HasPrefix(s, sub)), nil
		default:
			return boolVal(strings.HasSuffix(s, sub)), nil
		}
	}
	return nil, fmt.Errorf("expr: unknown function %q", f.Name)
}

func arity(name string, args []model.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("expr: %s expects %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

// String renders the call.
func (f Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return strings.ToUpper(f.Name) + "(" + strings.Join(parts, ", ") + ")"
}

func boolVal(b bool) []model.Value {
	if b {
		return trueVal
	}
	return falseVal
}

// evalBool evaluates e and coerces the result to a single boolean.
func evalBool(e Expr, b Binding) (bool, error) {
	vs, err := e.Eval(b)
	if err != nil {
		return false, err
	}
	if len(vs) != 1 {
		return false, fmt.Errorf("expr: %s is not a predicate", e)
	}
	v, ok := vs[0].AsBool()
	if !ok {
		return false, fmt.Errorf("expr: %s does not evaluate to a boolean (got %s)", e, vs[0])
	}
	return v, nil
}

// evalSingle evaluates e and requires exactly one value.
func evalSingle(e Expr, b Binding) (model.Value, error) {
	vs, err := e.Eval(b)
	if err != nil {
		return model.Null(), err
	}
	if len(vs) != 1 {
		return model.Null(), fmt.Errorf("expr: %s is multi-valued here (%d values); use EXISTS/ALL", e, len(vs))
	}
	return vs[0], nil
}

// EvalPredicate evaluates e as the qualification predicate "qual":
// qual(restr, x) decides whether the bound object fulfills the condition.
func EvalPredicate(e Expr, b Binding) (bool, error) {
	if e == nil {
		return true, nil
	}
	return evalBool(e, b)
}
