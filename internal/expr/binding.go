package expr

import (
	"fmt"

	"mad/internal/model"
)

// AtomBinding binds one atom of a known type for the atom-level predicate
// qual(restr(ad), a) of Definition 4. Attribute references may be
// unqualified or qualified with the bound type's name.
type AtomBinding struct {
	TypeName string
	Desc     *model.Desc
	Atom     model.Atom
}

// Resolve returns the single value of the referenced attribute.
func (b AtomBinding) Resolve(typeName, attr string) ([]model.Value, error) {
	if typeName != "" && typeName != b.TypeName {
		return nil, fmt.Errorf("expr: atom type %q not in scope (bound: %q)", typeName, b.TypeName)
	}
	i, ok := b.Desc.Lookup(attr)
	if !ok {
		return nil, fmt.Errorf("expr: atom type %q has no attribute %q", b.TypeName, attr)
	}
	return []model.Value{b.Atom.Get(i)}, nil
}

// Count reports 1 for the bound type, errors otherwise.
func (b AtomBinding) Count(typeName string) (int, error) {
	if typeName != b.TypeName {
		return 0, fmt.Errorf("expr: atom type %q not in scope (bound: %q)", typeName, b.TypeName)
	}
	return 1, nil
}

// Scope describes what names an expression may reference, for static
// validation before execution. Implementations: a single atom type, or a
// molecule-type description spanning several atom types.
type Scope interface {
	// ResolveAttr returns the kind of the referenced attribute, resolving
	// unqualified names when unambiguous.
	ResolveAttr(typeName, attr string) (model.Kind, error)
	// HasType reports whether the named atom type is in scope.
	HasType(typeName string) bool
}

// Check statically validates e against the scope: attribute references
// must resolve, EXISTS/ALL/COUNT must name in-scope types. It reports the
// first violation, or nil.
func Check(e Expr, s Scope) error {
	switch n := e.(type) {
	case nil:
		return nil
	case Const:
		return nil
	case Attr:
		_, err := s.ResolveAttr(n.Type, n.Name)
		return err
	case Cmp:
		if err := Check(n.L, s); err != nil {
			return err
		}
		return Check(n.R, s)
	case And:
		if err := Check(n.L, s); err != nil {
			return err
		}
		return Check(n.R, s)
	case Or:
		if err := Check(n.L, s); err != nil {
			return err
		}
		return Check(n.R, s)
	case Not:
		return Check(n.E, s)
	case Arith:
		if err := Check(n.L, s); err != nil {
			return err
		}
		return Check(n.R, s)
	case Exists:
		if !s.HasType(n.Type) {
			return fmt.Errorf("expr: EXISTS(%s): type not in scope", n.Type)
		}
		return nil
	case CountOf:
		if !s.HasType(n.Type) {
			return fmt.Errorf("expr: COUNT(%s): type not in scope", n.Type)
		}
		return nil
	case All:
		if err := Check(n.Attr, s); err != nil {
			return err
		}
		return Check(n.R, s)
	case Func:
		for _, a := range n.Args {
			if err := Check(a, s); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("expr: unknown node %T", e)
}

// AtomScope is the Scope of a single atom type.
type AtomScope struct {
	TypeName string
	Desc     *model.Desc
}

// ResolveAttr resolves against the single type.
func (s AtomScope) ResolveAttr(typeName, attr string) (model.Kind, error) {
	if typeName != "" && typeName != s.TypeName {
		return model.KNull, fmt.Errorf("expr: atom type %q not in scope (bound: %q)", typeName, s.TypeName)
	}
	i, ok := s.Desc.Lookup(attr)
	if !ok {
		return model.KNull, fmt.Errorf("expr: atom type %q has no attribute %q", s.TypeName, attr)
	}
	return s.Desc.Attr(i).Kind, nil
}

// HasType reports scope membership.
func (s AtomScope) HasType(typeName string) bool { return typeName == s.TypeName }

// References collects the attribute references of e, in syntactic order.
// The optimizer uses it to decide whether a molecule qualification touches
// only the root type (and may therefore be pushed below derivation).
func References(e Expr) []Attr {
	var out []Attr
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Attr:
			out = append(out, n)
		case Cmp:
			walk(n.L)
			walk(n.R)
		case And:
			walk(n.L)
			walk(n.R)
		case Or:
			walk(n.L)
			walk(n.R)
		case Not:
			walk(n.E)
		case Arith:
			walk(n.L)
			walk(n.R)
		case All:
			walk(n.Attr)
			walk(n.R)
		case Func:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

// TypesReferenced collects the distinct atom-type names mentioned by e,
// including quantifier and aggregate targets; unqualified references
// contribute "".
func TypesReferenced(e Expr) map[string]bool {
	out := make(map[string]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Attr:
			out[n.Type] = true
		case Cmp:
			walk(n.L)
			walk(n.R)
		case And:
			walk(n.L)
			walk(n.R)
		case Or:
			walk(n.L)
			walk(n.R)
		case Not:
			walk(n.E)
		case Arith:
			walk(n.L)
			walk(n.R)
		case Exists:
			out[n.Type] = true
		case CountOf:
			out[n.Type] = true
		case All:
			walk(n.Attr)
			walk(n.R)
		case Func:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}
