package expr_test

import (
	"strings"
	"testing"

	"mad/internal/expr"
	"mad/internal/model"
)

// binding over one atom of a small type.
func binding() expr.AtomBinding {
	desc := model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString},
		model.AttrDesc{Name: "size", Kind: model.KInt},
		model.AttrDesc{Name: "ratio", Kind: model.KFloat},
		model.AttrDesc{Name: "ok", Kind: model.KBool},
	)
	return expr.AtomBinding{
		TypeName: "t",
		Desc:     desc,
		Atom: model.NewAtom(model.MakeAtomID(1, 1),
			model.Str("widget"), model.Int(7), model.Float(0.5), model.Bool(true)),
	}
}

func evalBool(t *testing.T, e expr.Expr) bool {
	t.Helper()
	ok, err := expr.EvalPredicate(e, binding())
	if err != nil {
		t.Fatalf("%s: %v", e, err)
	}
	return ok
}

func TestComparisons(t *testing.T) {
	attr := func(n string) expr.Attr { return expr.Attr{Name: n} }
	tests := []struct {
		e    expr.Expr
		want bool
	}{
		{expr.Cmp{Op: expr.EQ, L: attr("name"), R: expr.Lit(model.Str("widget"))}, true},
		{expr.Cmp{Op: expr.NE, L: attr("name"), R: expr.Lit(model.Str("gadget"))}, true},
		{expr.Cmp{Op: expr.GT, L: attr("size"), R: expr.Lit(model.Int(3))}, true},
		{expr.Cmp{Op: expr.LE, L: attr("size"), R: expr.Lit(model.Int(7))}, true},
		{expr.Cmp{Op: expr.LT, L: attr("ratio"), R: expr.Lit(model.Float(0.6))}, true},
		{expr.Cmp{Op: expr.GE, L: attr("size"), R: expr.Lit(model.Float(7.5))}, false},
		// int/float cross comparison
		{expr.Cmp{Op: expr.EQ, L: attr("size"), R: expr.Lit(model.Float(7.0))}, true},
	}
	for _, tc := range tests {
		if got := evalBool(t, tc.e); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestNullComparesToNothing(t *testing.T) {
	desc := model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})
	b := expr.AtomBinding{TypeName: "t", Desc: desc,
		Atom: model.NewAtom(model.MakeAtomID(1, 1), model.Null())}
	eq := expr.Cmp{Op: expr.EQ, L: expr.Attr{Name: "v"}, R: expr.Lit(model.Int(1))}
	ne := expr.Cmp{Op: expr.NE, L: expr.Attr{Name: "v"}, R: expr.Lit(model.Int(1))}
	for _, e := range []expr.Expr{eq, ne} {
		ok, err := expr.EvalPredicate(e, b)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("%s over null must be false", e)
		}
	}
}

func TestLogic(t *testing.T) {
	tr := expr.Lit(model.Bool(true))
	fa := expr.Lit(model.Bool(false))
	if !evalBool(t, expr.And{L: tr, R: tr}) || evalBool(t, expr.And{L: tr, R: fa}) {
		t.Fatal("AND broken")
	}
	if !evalBool(t, expr.Or{L: fa, R: tr}) || evalBool(t, expr.Or{L: fa, R: fa}) {
		t.Fatal("OR broken")
	}
	if evalBool(t, expr.Not{E: tr}) || !evalBool(t, expr.Not{E: fa}) {
		t.Fatal("NOT broken")
	}
}

func TestArithmetic(t *testing.T) {
	attr := expr.Attr{Name: "size"}
	e := expr.Cmp{Op: expr.EQ,
		L: expr.Arith{Op: expr.Add, L: attr, R: expr.Lit(model.Int(3))},
		R: expr.Lit(model.Int(10))}
	if !evalBool(t, e) {
		t.Fatal("7+3 != 10 ?")
	}
	// Integer arithmetic stays integral.
	div := expr.Arith{Op: expr.Div, L: expr.Lit(model.Int(7)), R: expr.Lit(model.Int(2))}
	vs, err := div.Eval(binding())
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := vs[0].AsInt(); !ok || i != 3 {
		t.Fatalf("7/2 = %s", vs[0])
	}
	// Mixed promotes to float.
	mix := expr.Arith{Op: expr.Mul, L: expr.Attr{Name: "ratio"}, R: expr.Lit(model.Int(4))}
	vs, err = mix.Eval(binding())
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := vs[0].AsFloat(); !ok || f != 2.0 {
		t.Fatalf("0.5*4 = %s", vs[0])
	}
	// Division by zero errors.
	if _, err := (expr.Arith{Op: expr.Div, L: expr.Lit(model.Int(1)), R: expr.Lit(model.Int(0))}).Eval(binding()); err == nil {
		t.Fatal("division by zero must fail")
	}
	if _, err := (expr.Arith{Op: expr.Mod, L: expr.Lit(model.Int(1)), R: expr.Lit(model.Int(0))}).Eval(binding()); err == nil {
		t.Fatal("modulo by zero must fail")
	}
	// Arithmetic over strings errors.
	if _, err := (expr.Arith{Op: expr.Add, L: expr.Attr{Name: "name"}, R: expr.Lit(model.Int(1))}).Eval(binding()); err == nil {
		t.Fatal("string arithmetic must fail")
	}
}

func TestFunctions(t *testing.T) {
	cases := []struct {
		e    expr.Expr
		want model.Value
	}{
		{expr.Func{Name: "LEN", Args: []expr.Expr{expr.Attr{Name: "name"}}}, model.Int(6)},
		{expr.Func{Name: "UPPER", Args: []expr.Expr{expr.Attr{Name: "name"}}}, model.Str("WIDGET")},
		{expr.Func{Name: "lower", Args: []expr.Expr{expr.Lit(model.Str("ABC"))}}, model.Str("abc")},
		{expr.Func{Name: "ABS", Args: []expr.Expr{expr.Lit(model.Int(-4))}}, model.Int(4)},
		{expr.Func{Name: "ABS", Args: []expr.Expr{expr.Lit(model.Float(-2.5))}}, model.Float(2.5)},
		{expr.Func{Name: "CONTAINS", Args: []expr.Expr{expr.Attr{Name: "name"}, expr.Lit(model.Str("dge"))}}, model.Bool(true)},
		{expr.Func{Name: "PREFIX", Args: []expr.Expr{expr.Attr{Name: "name"}, expr.Lit(model.Str("wid"))}}, model.Bool(true)},
		{expr.Func{Name: "SUFFIX", Args: []expr.Expr{expr.Attr{Name: "name"}, expr.Lit(model.Str("get"))}}, model.Bool(true)},
	}
	for _, tc := range cases {
		vs, err := tc.e.Eval(binding())
		if err != nil {
			t.Fatalf("%s: %v", tc.e, err)
		}
		if !vs[0].Equal(tc.want) {
			t.Errorf("%s = %s, want %s", tc.e, vs[0], tc.want)
		}
	}
	// Errors.
	if _, err := (expr.Func{Name: "NOPE"}).Eval(binding()); err == nil {
		t.Fatal("unknown function must fail")
	}
	if _, err := (expr.Func{Name: "LEN", Args: []expr.Expr{expr.Lit(model.Int(1))}}).Eval(binding()); err == nil {
		t.Fatal("LEN of int must fail")
	}
	if _, err := (expr.Func{Name: "LEN"}).Eval(binding()); err == nil {
		t.Fatal("arity error must fail")
	}
}

func TestCheckScope(t *testing.T) {
	scope := expr.AtomScope{TypeName: "t", Desc: model.MustDesc(
		model.AttrDesc{Name: "a", Kind: model.KInt},
	)}
	good := expr.Cmp{Op: expr.EQ, L: expr.Attr{Name: "a"}, R: expr.Lit(model.Int(1))}
	if err := expr.Check(good, scope); err != nil {
		t.Fatal(err)
	}
	bad := expr.Cmp{Op: expr.EQ, L: expr.Attr{Name: "zz"}, R: expr.Lit(model.Int(1))}
	if err := expr.Check(bad, scope); err == nil {
		t.Fatal("unknown attr must fail Check")
	}
	if err := expr.Check(expr.Exists{Type: "other"}, scope); err == nil {
		t.Fatal("EXISTS of out-of-scope type must fail")
	}
	if err := expr.Check(nil, scope); err != nil {
		t.Fatal("nil predicate is valid")
	}
}

func TestReferencesAndTypes(t *testing.T) {
	e := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "a", Name: "x"}, R: expr.Lit(model.Int(1))},
		R: expr.Or{
			L: expr.Exists{Type: "b"},
			R: expr.Cmp{Op: expr.GT, L: expr.CountOf{Type: "c"}, R: expr.Lit(model.Int(2))},
		},
	}
	refs := expr.References(e)
	if len(refs) != 1 || refs[0].Type != "a" {
		t.Fatalf("refs = %v", refs)
	}
	types := expr.TypesReferenced(e)
	for _, want := range []string{"a", "b", "c"} {
		if !types[want] {
			t.Errorf("type %q missing from %v", want, types)
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "point", Name: "name"}, R: expr.Lit(model.Str("pn"))},
		R: expr.Not{E: expr.Exists{Type: "net"}},
	}
	s := e.String()
	for _, want := range []string{"point.name", `"pn"`, "NOT", "EXISTS(net)", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("render %q missing %q", s, want)
		}
	}
}

func TestAllQuantifier(t *testing.T) {
	// Multi-valued binding via a fake: reuse AtomBinding twice through a
	// molecule-like binding is exercised in core tests; here check the
	// vacuous and single-value paths.
	a := expr.All{Attr: expr.Attr{Name: "size"}, Op: expr.GT, R: expr.Lit(model.Int(3))}
	if !evalBool(t, a) {
		t.Fatal("ALL over single satisfying value must hold")
	}
	b := expr.All{Attr: expr.Attr{Name: "size"}, Op: expr.GT, R: expr.Lit(model.Int(100))}
	if evalBool(t, b) {
		t.Fatal("ALL must fail when a value violates")
	}
}
