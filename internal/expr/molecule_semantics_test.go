package expr_test

import (
	"testing"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/geo"
	"mad/internal/model"
)

// moleculeBinding derives one mt_state molecule from the Fig. 1 sample and
// returns its binding — the multi-valued case of the qualification
// semantics (one value per component atom).
func moleculeBinding(t *testing.T) (core.Binding, *geo.Sample) {
	t.Helper()
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(s.DB, "mt_state",
		[]string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		t.Fatal(err)
	}
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dv.DeriveFor(s.States["MG"]) // MG touches the pn junction
	if err != nil {
		t.Fatal(err)
	}
	return core.Binding{DB: s.DB, M: m}, s
}

func TestExistentialComparisonOverMolecule(t *testing.T) {
	b, _ := moleculeBinding(t)
	// SOME point of the MG molecule is named pn.
	some := expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "point", Name: "name"},
		R: expr.Lit(model.Str("pn"))}
	ok, err := expr.EvalPredicate(some, b)
	if err != nil || !ok {
		t.Fatalf("existential failed: %v %v", ok, err)
	}
	// No point is named 'nope'.
	none := expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "point", Name: "name"},
		R: expr.Lit(model.Str("nope"))}
	ok, err = expr.EvalPredicate(none, b)
	if err != nil || ok {
		t.Fatalf("existential leaked: %v %v", ok, err)
	}
	// NOT over existential: "no point is named nope" holds.
	ok, err = expr.EvalPredicate(expr.Not{E: none}, b)
	if err != nil || !ok {
		t.Fatal("negated existential failed")
	}
}

func TestAllQuantifierOverMolecule(t *testing.T) {
	b, _ := moleculeBinding(t)
	// Every point name starts with 'p' in the sample.
	all := expr.All{
		Attr: expr.Attr{Type: "point", Name: "name"},
		Op:   expr.GE,
		R:    expr.Lit(model.Str("p")),
	}
	ok, err := expr.EvalPredicate(all, b)
	if err != nil || !ok {
		t.Fatalf("ALL failed: %v %v", ok, err)
	}
	// Not every point is exactly 'pn'.
	allPn := expr.All{
		Attr: expr.Attr{Type: "point", Name: "name"},
		Op:   expr.EQ,
		R:    expr.Lit(model.Str("pn")),
	}
	ok, err = expr.EvalPredicate(allPn, b)
	if err != nil || ok {
		t.Fatal("ALL must fail when one component violates")
	}
	// Contrast with the existential default, which holds.
	some := expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "point", Name: "name"},
		R: expr.Lit(model.Str("pn"))}
	ok, _ = expr.EvalPredicate(some, b)
	if !ok {
		t.Fatal("existential counterpart must hold")
	}
}

func TestArithmeticRejectsMultiValue(t *testing.T) {
	b, _ := moleculeBinding(t)
	// point.x is multi-valued in the molecule: arithmetic must refuse it
	// with a hint toward EXISTS/ALL.
	bad := expr.Arith{Op: expr.Add,
		L: expr.Attr{Type: "point", Name: "x"},
		R: expr.Lit(model.Int(1))}
	if _, err := bad.Eval(b); err == nil {
		t.Fatal("multi-valued arithmetic must fail")
	}
	// Root attributes are single-valued: arithmetic works.
	good := expr.Cmp{Op: expr.GT,
		L: expr.Arith{Op: expr.Mul,
			L: expr.Attr{Type: "state", Name: "hectare"},
			R: expr.Lit(model.Int(2))},
		R: expr.Lit(model.Float(1000))}
	ok, err := expr.EvalPredicate(good, b)
	if err != nil || !ok { // MG: 900*2 > 1000
		t.Fatalf("single-valued arithmetic failed: %v %v", ok, err)
	}
}

func TestCountAndExistsOverMolecule(t *testing.T) {
	b, _ := moleculeBinding(t)
	cnt := expr.Cmp{Op: expr.GE, L: expr.CountOf{Type: "edge"}, R: expr.Lit(model.Int(3))}
	ok, err := expr.EvalPredicate(cnt, b)
	if err != nil || !ok { // MG has 3 edges in the sample
		t.Fatalf("COUNT failed: %v %v", ok, err)
	}
	ok, err = expr.EvalPredicate(expr.Exists{Type: "point"}, b)
	if err != nil || !ok {
		t.Fatal("EXISTS failed")
	}
	if _, err := (expr.Exists{Type: "river"}).Eval(b); err == nil {
		t.Fatal("EXISTS of out-of-structure type must fail")
	}
}

func TestCheckAgainstMoleculeScope(t *testing.T) {
	b, s := moleculeBinding(t)
	scope := core.Scope{DB: s.DB, Desc: b.M.Desc()}
	good := expr.And{
		L: expr.Cmp{Op: expr.GT, L: expr.Attr{Type: "state", Name: "hectare"}, R: expr.Lit(model.Float(0))},
		R: expr.Exists{Type: "edge"},
	}
	if err := expr.Check(good, scope); err != nil {
		t.Fatal(err)
	}
	// Unqualified unique attribute resolves; ambiguous one fails.
	if err := expr.Check(expr.Cmp{Op: expr.GT, L: expr.Attr{Name: "hectare"}, R: expr.Lit(model.Float(0))}, scope); err != nil {
		t.Fatalf("unique unqualified: %v", err)
	}
	if err := expr.Check(expr.Cmp{Op: expr.EQ, L: expr.Attr{Name: "name"}, R: expr.Lit(model.Str("x"))}, scope); err == nil {
		t.Fatal("ambiguous unqualified must fail Check")
	}
	if err := expr.Check(expr.Exists{Type: "river"}, scope); err == nil {
		t.Fatal("out-of-structure EXISTS must fail Check")
	}
}
