package mql_test

import (
	"fmt"
	"os"
	"testing"
)

// TestPrintFeedbackTranscript prints the README feedback transcript when
// MAD_TRANSCRIPT=1 — a doc-generation hook, not an assertion.
func TestPrintFeedbackTranscript(t *testing.T) {
	if os.Getenv("MAD_TRANSCRIPT") == "" {
		t.Skip("set MAD_TRANSCRIPT=1 to print")
	}
	sess, _ := session(t)
	q := "EXPLAIN SELECT ALL FROM state-area-edge-point WHERE COUNT(point) >= COUNT(edge) AND (point.name = 'pn' OR COUNT(point) < 0);"
	for i := 1; i <= 2; i++ {
		r, err := sess.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("=== EXPLAIN #%d ===\n%s\n", i, r.Message)
	}
	r, err := sess.Exec("SHOW FEEDBACK;")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("=== SHOW FEEDBACK ===\n%s", r.Message)
}
