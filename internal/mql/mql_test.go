package mql_test

import (
	"strings"
	"testing"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/mql"
	"mad/internal/storage"
)

func session(t *testing.T) (*mql.Session, *geo.Sample) {
	t.Helper()
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	return mql.NewSession(s.DB), s
}

func TestLexer(t *testing.T) {
	toks, err := mql.LexAll("SELECT ALL FROM mt_state(state-area) WHERE point.name = 'pn'; -- comment")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Text)
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "SELECT ALL FROM mt_state ( state - area ) WHERE point . name = pn ;") {
		t.Fatalf("lexed: %s", joined)
	}
}

func TestLexerStringsAndNumbers(t *testing.T) {
	toks, err := mql.LexAll(`x = 'it''s' y = 3.25 z = "dq"`)
	if err != nil {
		t.Fatal(err)
	}
	var strs []string
	for _, tk := range toks {
		if tk.Kind == mql.TString {
			strs = append(strs, tk.Text)
		}
	}
	if len(strs) != 2 || strs[0] != "it's" || strs[1] != "dq" {
		t.Fatalf("strings = %v", strs)
	}
	if _, err := mql.LexAll("'unterminated"); err == nil {
		t.Fatal("unterminated string must fail")
	}
}

func TestParseStructureChain(t *testing.T) {
	st, err := mql.Parse("SELECT ALL FROM state-area-edge-point")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*mql.SelectStmt)
	if sel.From.Struct.String() != "state-area-edge-point" {
		t.Fatalf("structure = %s", sel.From.Struct)
	}
}

func TestParseStructureBranch(t *testing.T) {
	st, err := mql.Parse("SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn'")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*mql.SelectStmt)
	s := sel.From.Struct
	if s.Type != "point" || len(s.Children) != 1 {
		t.Fatalf("root = %+v", s)
	}
	edge := s.Children[0].Node
	if edge.Type != "edge" || len(edge.Children) != 2 {
		t.Fatalf("edge node = %+v", edge)
	}
	if edge.Children[0].Node.Type != "area" || edge.Children[1].Node.Type != "net" {
		t.Fatalf("branches wrong: %s", s)
	}
	if sel.Where == nil {
		t.Fatal("WHERE lost")
	}
}

func TestParseExplicitLink(t *testing.T) {
	st, err := mql.Parse("SELECT ALL FROM state-[state-area]-area")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*mql.SelectStmt)
	if sel.From.Struct.Children[0].Link != "state-area" {
		t.Fatalf("explicit link = %q", sel.From.Struct.Children[0].Link)
	}
}

func TestParseNamedDefinition(t *testing.T) {
	st, err := mql.Parse("SELECT ALL FROM mt_state(state-area-edge-point)")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*mql.SelectStmt)
	if sel.From.Name != "mt_state" {
		t.Fatalf("name = %q", sel.From.Name)
	}
	if sel.From.Struct == nil {
		t.Fatal("structure missing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT ALL",
		"SELECT ALL FROM",
		"SELECT ALL FROM a-(b,c)-d",   // chain after group
		"SELECT ALL FROM a WHERE",     // missing predicate
		"FRobnicate",                  // unknown statement
		"SELECT ALL FROM a; SELECT",   // trailing garbage for Parse
		"INSERT INTO t VALUES 1",      // missing parens
		"CREATE ATOM TYPE t (a BLOB)", // unknown kind
	}
	for _, src := range bad {
		if _, err := mql.Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// TestQ1PaperQuery reproduces the paper's first MQL example:
// SELECT ALL FROM mt_state(state-area-edge-point) and checks it against
// the hand-built algebra expression α[mt_state, ...](state,area,edge,point).
func TestQ1PaperQuery(t *testing.T) {
	sess, s := session(t)
	res, err := sess.Exec("SELECT ALL FROM mt_state(state-area-edge-point);")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != mql.RMolecules {
		t.Fatal("wrong result kind")
	}
	// Hand-built algebra equivalent.
	mt, err := core.Define(s.DB, "mt_state_manual",
		[]string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		t.Fatal(err)
	}
	want, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != len(want) {
		t.Fatalf("MQL %d molecules, algebra %d", len(res.Set), len(want))
	}
	for i := range want {
		if res.Set[i].Key() != want[i].Key() {
			t.Fatalf("molecule %d differs between MQL and algebra", i)
		}
	}
	// The named definition is registered and reusable.
	res2, err := sess.Exec("SELECT ALL FROM mt_state;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Set) != len(want) {
		t.Fatal("named reuse failed")
	}
}

// TestQ2PaperQuery reproduces the paper's second MQL example: the
// symmetric point-neighborhood query with restriction point.name = 'pn',
// checked against Σ[restr(point.name='pn')](point-neighborhood).
func TestQ2PaperQuery(t *testing.T) {
	sess, s := session(t)
	res, err := sess.Exec("SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 {
		t.Fatalf("|result| = %d, want 1", len(res.Set))
	}
	m := res.Set[0]
	if m.Root() != s.PN {
		t.Fatal("wrong root")
	}
	// Algebra: α then Σ.
	pnMT, err := core.Define(s.DB, "point-neighborhood",
		[]string{"point", "edge", "area", "state", "net", "river"},
		[]core.DirectedLink{
			{Link: "edge-point", From: "point", To: "edge"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "state-area", From: "area", To: "state"},
			{Link: "net-edge", From: "edge", To: "net"},
			{Link: "river-net", From: "net", To: "river"},
		})
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := core.Restrict(pnMT, expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "point", Name: "name"},
		R: expr.Lit(model.Str("pn"))}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sigma.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1 {
		t.Fatalf("algebra |Σ| = %d", len(want))
	}
	// Same component atoms (the propagated molecule has renamed types but
	// identical atom identity sets, compared positionally).
	if want[0].Root() != m.Root() || want[0].Size() != m.Size() {
		t.Fatalf("MQL and algebra disagree: size %d vs %d", m.Size(), want[0].Size())
	}
	// Both reach the Fig. 2 result: 4 states + river Parana.
	if len(m.AtomsOf("state")) != 4 || len(m.AtomsOf("river")) != 1 {
		t.Fatalf("states=%d rivers=%d", len(m.AtomsOf("state")), len(m.AtomsOf("river")))
	}
}

func TestSelectProjection(t *testing.T) {
	sess, _ := session(t)
	res, err := sess.Exec("SELECT state.name, area FROM state-area-edge-point WHERE state.hectare > 500;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 2 { // MG, BA
		t.Fatalf("|result| = %d, want 2", len(res.Set))
	}
	d := res.Desc
	if d.NumTypes() != 2 || d.Root() != "state" {
		t.Fatalf("projected desc = %s", d)
	}
	if got := res.Attrs["state"]; len(got) != 1 || got[0] != "name" {
		t.Fatalf("attr narrowing = %v", res.Attrs)
	}
	out := res.Render(sess.DB())
	if !strings.Contains(out, "Minas Gerais") || strings.Contains(out, "abbrev") {
		t.Fatalf("render: %s", out)
	}
	// Projection without the root fails.
	if _, err := sess.Exec("SELECT area FROM state-area;"); err == nil {
		t.Fatal("projection dropping root must fail")
	}
}

func TestWhereSemantics(t *testing.T) {
	sess, _ := session(t)
	// Existential: molecules where SOME point is the junction pn.
	res, err := sess.Exec("SELECT ALL FROM state-area-edge-point WHERE point.name = 'p_border_0';")
	if err != nil {
		t.Fatal(err)
	}
	// p_border_0 is an endpoint of two ring edges (b_0 and b_9), which
	// belong to the borders of MG, BA and RS: three molecules share it.
	if len(res.Set) != 3 {
		t.Fatalf("|result| = %d, want 3 (shared border point)", len(res.Set))
	}
	// COUNT aggregate.
	res, err = sess.Exec("SELECT ALL FROM state-area-edge-point WHERE COUNT(edge) >= 4;")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Set {
		if len(m.AtomsOf("edge")) < 4 {
			t.Fatal("COUNT filter leaked")
		}
	}
	// EXISTS + AND + OR + NOT.
	if _, err := sess.Exec("SELECT ALL FROM state-area-edge-point WHERE EXISTS(edge) AND (state.hectare > 100 OR NOT state.abbrev = 'SP');"); err != nil {
		t.Fatal(err)
	}
	// Unknown attribute is a static error.
	if _, err := sess.Exec("SELECT ALL FROM state-area WHERE state.nosuch = 1;"); err == nil {
		t.Fatal("unknown attribute must fail")
	}
}

func TestIndexPushdownSameResult(t *testing.T) {
	sess, s := session(t)
	if err := s.DB.CreateIndex("point", "name"); err != nil {
		t.Fatal(err)
	}
	q := "SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';"
	res, err := sess.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 {
		t.Fatalf("|result| = %d", len(res.Set))
	}
	// EXPLAIN reports the index plan.
	plan, err := sess.Exec("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Message, "index lookup point.name") {
		t.Fatalf("plan: %s", plan.Message)
	}
}

func TestDDLAndDML(t *testing.T) {
	db := storage.NewDatabase()
	sess := mql.NewSession(db)
	script := `
CREATE ATOM TYPE parts (name STRING NOT NULL, weight FLOAT);
CREATE ATOM TYPE supplier (name STRING NOT NULL);
CREATE LINK TYPE supplies BETWEEN supplier AND parts;
CREATE INDEX ON parts(name);
INSERT INTO parts VALUES ('engine', 120.5), ('piston', 2.5);
INSERT INTO parts (name) VALUES ('ring');
INSERT INTO supplier VALUES ('acme');
CONNECT supplier WHERE name = 'acme' TO parts WHERE name = 'engine' VIA supplies;
`
	if _, err := sess.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.CountAtoms("parts"); n != 3 {
		t.Fatalf("parts = %d", n)
	}
	if n, _ := db.CountLinks("supplies"); n != 1 {
		t.Fatalf("supplies = %d", n)
	}
	res, err := sess.Exec("SELECT ALL FROM supplier-supplies-parts;")
	if err == nil {
		// supplier-supplies-parts parses supplies as a type; must fail.
		t.Fatalf("expected failure, got %d molecules", len(res.Set))
	}
	res, err = sess.Exec("SELECT ALL FROM supplier-[supplies]-parts;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 {
		t.Fatalf("molecules = %d", len(res.Set))
	}
	// UPDATE and DELETE.
	if r, err := sess.Exec("UPDATE parts SET weight = 3.0 WHERE name = 'piston';"); err != nil || r.Affected != 1 {
		t.Fatalf("update: %v %+v", err, r)
	}
	if r, err := sess.Exec("DELETE FROM parts WHERE name = 'ring';"); err != nil || r.Affected != 1 {
		t.Fatalf("delete: %v", err)
	}
	if n, _ := db.CountAtoms("parts"); n != 2 {
		t.Fatalf("parts after delete = %d", n)
	}
	// DISCONNECT.
	if r, err := sess.Exec("DISCONNECT supplier WHERE name = 'acme' TO parts WHERE name = 'engine' VIA supplies;"); err != nil || r.Affected != 1 {
		t.Fatalf("disconnect: %v", err)
	}
	if n, _ := db.CountLinks("supplies"); n != 0 {
		t.Fatal("link not removed")
	}
}

func TestDefineUsesPlannedRestrict(t *testing.T) {
	sess, s := session(t)
	if err := s.DB.CreateIndex("state", "abbrev"); err != nil {
		t.Fatal(err)
	}
	// The DEFINE runs Σ through the planner: the indexed root equality
	// must use the index (visible as an index lookup in the stats) and
	// the derived type's occurrence must match the query-mode SELECT.
	before := s.DB.Stats().Snapshot()
	if _, err := sess.Exec("DEFINE MOLECULE TYPE sp AS SELECT ALL FROM state-area-edge-point WHERE state.abbrev = 'SP';"); err != nil {
		t.Fatal(err)
	}
	if d := s.DB.Stats().Snapshot().Sub(before); d.IndexLookups == 0 {
		t.Fatal("DEFINE ... WHERE on an indexed attribute must use the index")
	}
	res, err := sess.Exec("SELECT ALL FROM sp;")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Exec("SELECT ALL FROM state-area-edge-point WHERE state.abbrev = 'SP';")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != len(want.Set) || len(want.Set) != 1 {
		t.Fatalf("derived %d molecules, query mode %d, want 1", len(res.Set), len(want.Set))
	}
	if res.Set[0].Root() != want.Set[0].Root() || res.Set[0].Size() != want.Set[0].Size() {
		t.Fatal("derived molecule differs from query-mode result")
	}
}

func TestExplainShowsPushdownAndCardinalities(t *testing.T) {
	sess, s := session(t)
	if err := s.DB.CreateIndex("state", "abbrev"); err != nil {
		t.Fatal(err)
	}
	plan, err := sess.Exec("EXPLAIN SELECT ALL FROM state-area-edge-point WHERE state.abbrev = 'SP' AND edge.tag = 'e_pn_SP';")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`index lookup state.abbrev = "SP"`,
		"est ≈",
		"actual",
		`pushdown:  Σ↓[edge.tag = "e_pn_SP"] at edge`,
	} {
		if !strings.Contains(plan.Message, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, plan.Message)
		}
	}
}

// TestExplainShowsInteriorIndexEntry checks the symmetric access path
// surfaces in EXPLAIN: with an index on a selective mid-structure
// attribute, the plan enters the structure at the interior type, climbs
// to the roots, and the transcript names the entry point, the climb and
// the access-path contest.
func TestExplainShowsInteriorIndexEntry(t *testing.T) {
	sess, s := session(t)
	if err := s.DB.CreateIndex("edge", "tag"); err != nil {
		t.Fatal(err)
	}
	q := "SELECT ALL FROM state-area-edge-point WHERE edge.tag = 'e_pn_SP';"
	plan, err := sess.Exec("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`[interior-index] entry at edge.tag = "e_pn_SP"`,
		"recover roots upward edge ⇡ area ⇡ state",
		"considered:",
		"← chosen",
		"full scan of state (cost",
	} {
		if !strings.Contains(plan.Message, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, plan.Message)
		}
	}
	// The interior plan must return exactly what the query returns.
	res, err := sess.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != mql.RMolecules || len(res.Set) == 0 {
		t.Fatalf("query through the interior plan returned %d molecules", len(res.Set))
	}
}

// TestExplainShowsObservedFeedback drives the execution-feedback loop
// through MQL: the first EXPLAIN executes the plan and records the
// observed molecule-level pass rates of its residual conjuncts; the
// second EXPLAIN of the same statement ranks and labels them [observed].
// SHOW FEEDBACK reports the store.
func TestExplainShowsObservedFeedback(t *testing.T) {
	sess, _ := session(t)
	q := "EXPLAIN SELECT ALL FROM state-area-edge-point WHERE COUNT(point) >= COUNT(edge) AND area.tag <= point.name;"
	first, err := sess.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(first.Message, "[observed]") {
		t.Fatalf("first EXPLAIN must not carry observations yet:\n%s", first.Message)
	}
	if !strings.Contains(first.Message, "residual:") {
		t.Fatalf("predicate must stay residual:\n%s", first.Message)
	}
	second, err := sess.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.Message, "[observed]") {
		t.Fatalf("second EXPLAIN must rank residuals from observed pass rates:\n%s", second.Message)
	}
	show, err := sess.Exec("SHOW FEEDBACK;")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"execution(s) recorded", "atoms/root", "[observed]"} {
		if !strings.Contains(show.Message, want) {
			t.Fatalf("SHOW FEEDBACK missing %q:\n%s", want, show.Message)
		}
	}
}

func TestDefineMoleculeTypeAlgebraMode(t *testing.T) {
	sess, s := session(t)
	res, err := sess.Exec("DEFINE MOLECULE TYPE big_states AS SELECT ALL FROM state-area-edge-point WHERE state.hectare > 300;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "big_states") {
		t.Fatalf("message: %s", res.Message)
	}
	mt, ok := sess.NamedType("big_states")
	if !ok {
		t.Fatal("named type not registered")
	}
	set, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 { // MG 900, BA 1000, GO 340, MS 357
		t.Fatalf("|big_states| = %d, want 4", len(set))
	}
	if err := core.VerifySet(s.DB, set); err != nil {
		t.Fatal(err)
	}
	// Reusable in a follow-up query (closure at the language level).
	res2, err := sess.Exec("SELECT ALL FROM big_states;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Set) != 4 {
		t.Fatalf("reuse = %d molecules", len(res2.Set))
	}
	// With projection.
	if _, err := sess.Exec("DEFINE MOLECULE TYPE state_names AS SELECT state.name, area FROM state-area-edge-point;"); err != nil {
		t.Fatal(err)
	}
	mt2, _ := sess.NamedType("state_names")
	if mt2.Desc().NumTypes() != 2 {
		t.Fatalf("projected define = %s", mt2.Desc())
	}
}

func TestRecursiveSelect(t *testing.T) {
	db := storage.NewDatabase()
	sess := mql.NewSession(db)
	setup := `
CREATE ATOM TYPE parts (name STRING NOT NULL);
CREATE LINK TYPE composition BETWEEN parts AND parts;
INSERT INTO parts VALUES ('car'), ('engine'), ('piston'), ('ring');
CONNECT parts WHERE name = 'car' TO parts WHERE name = 'engine' VIA composition;
CONNECT parts WHERE name = 'engine' TO parts WHERE name = 'piston' VIA composition;
CONNECT parts WHERE name = 'piston' TO parts WHERE name = 'ring' VIA composition;
`
	if _, err := sess.ExecScript(setup); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec("SELECT ALL FROM RECURSIVE parts VIA composition WHERE name = 'car';")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RecSet) != 1 {
		t.Fatalf("|rec| = %d", len(res.RecSet))
	}
	m := res.RecSet[0]
	if m.Size() != 4 || m.Depth() != 3 {
		t.Fatalf("parts explosion size=%d depth=%d", m.Size(), m.Depth())
	}
	// Super-component view from the leaf.
	res, err = sess.Exec("SELECT ALL FROM RECURSIVE parts VIA composition UP WHERE name = 'ring';")
	if err != nil {
		t.Fatal(err)
	}
	if res.RecSet[0].Size() != 4 {
		t.Fatalf("where-used size = %d", res.RecSet[0].Size())
	}
	// Depth bound.
	res, err = sess.Exec("SELECT ALL FROM RECURSIVE parts VIA composition DEPTH 1 WHERE name = 'car';")
	if err != nil {
		t.Fatal(err)
	}
	if res.RecSet[0].Size() != 2 {
		t.Fatalf("depth-1 size = %d", res.RecSet[0].Size())
	}
	out := res.Render(db)
	if !strings.Contains(out, "level 1") {
		t.Fatalf("render: %s", out)
	}
}

func TestShowStatements(t *testing.T) {
	sess, _ := session(t)
	if _, err := sess.Exec("SELECT ALL FROM mt_state(state-area-edge-point);"); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec("SHOW SCHEMA;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "ATOM TYPE state") {
		t.Fatalf("schema: %s", res.Message)
	}
	res, err = sess.Exec("SHOW MOLECULE TYPES;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "mt_state") {
		t.Fatalf("molecule types: %s", res.Message)
	}
	if _, err := sess.Exec("SHOW STATS;"); err != nil {
		t.Fatal(err)
	}
}

func TestRenderSharedMarks(t *testing.T) {
	// A structure where both branches reach the same atom renders the
	// second occurrence with a shared mark.
	db := storage.NewDatabase()
	sess := mql.NewSession(db)
	setup := `
CREATE ATOM TYPE r (v INT);
CREATE ATOM TYPE a (v INT);
CREATE ATOM TYPE c (v INT);
CREATE LINK TYPE ra BETWEEN r AND a;
CREATE LINK TYPE rc BETWEEN r AND c;
CREATE LINK TYPE ac BETWEEN a AND c;
INSERT INTO r VALUES (1);
INSERT INTO a VALUES (2);
INSERT INTO c VALUES (3);
CONNECT r TO a VIA ra;
CONNECT r TO c VIA rc;
CONNECT a TO c VIA ac;
`
	if _, err := sess.ExecScript(setup); err != nil {
		t.Fatal(err)
	}
	// r-(a-c) plus r-c: c reachable twice. Structure r-(a-c, c) needs c
	// once in C; use branch syntax.
	res, err := sess.Exec("SELECT ALL FROM r-(a-[ac]-c)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 {
		t.Fatalf("|result| = %d", len(res.Set))
	}
}

func TestDefineSetOperations(t *testing.T) {
	sess, s := session(t)
	script := `
DEFINE MOLECULE TYPE big AS SELECT ALL FROM state-area-edge-point WHERE state.hectare > 300;
DEFINE MOLECULE TYPE small AS SELECT ALL FROM state-area-edge-point WHERE state.hectare <= 300;
DEFINE MOLECULE TYPE everything AS UNION OF big AND small;
DEFINE MOLECULE TYPE bigagain AS DIFFERENCE OF everything AND small;
DEFINE MOLECULE TYPE common AS INTERSECT OF everything AND big;
`
	if _, err := sess.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	card := func(name string) int {
		t.Helper()
		mt, ok := sess.NamedType(name)
		if !ok {
			t.Fatalf("type %q not registered", name)
		}
		n, err := mt.Cardinality()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if card("big") != 4 || card("small") != 6 {
		t.Fatalf("partition: big=%d small=%d", card("big"), card("small"))
	}
	if card("everything") != 10 {
		t.Fatalf("Ω = %d", card("everything"))
	}
	if card("bigagain") != 4 {
		t.Fatalf("Δ = %d", card("bigagain"))
	}
	if card("common") != 4 {
		t.Fatalf("Ψ = %d", card("common"))
	}
	// Results queryable through SELECT.
	res, err := sess.Exec("SELECT ALL FROM everything;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 10 {
		t.Fatalf("SELECT over Ω result = %d", len(res.Set))
	}
	if err := s.DB.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Unknown operand errors.
	if _, err := sess.Exec("DEFINE MOLECULE TYPE x AS UNION OF nope AND big;"); err == nil {
		t.Fatal("unknown operand must fail")
	}
	// Incompatible operands (different shapes) error.
	if _, err := sess.Exec("DEFINE MOLECULE TYPE sa AS SELECT ALL FROM state-area;"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("DEFINE MOLECULE TYPE y AS UNION OF sa AND big;"); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}
