package mql_test

import (
	"fmt"
	"strings"
	"testing"

	"mad/internal/mql"
	"mad/internal/plan"
	"mad/internal/storage"
)

// prepSession builds a session over a small indexed part-supplier
// database: 12 "part" roots (pn = i, bin = i%3, indexed) each linked to
// one "box" (slot = i).
func prepSession(t *testing.T) (*mql.Session, *storage.Database) {
	t.Helper()
	db := storage.NewDatabase()
	sess := mql.NewSession(db)
	var sb strings.Builder
	sb.WriteString(`
CREATE ATOM TYPE part (pn INT NOT NULL, bin INT);
CREATE ATOM TYPE box (slot INT);
CREATE LINK TYPE pb BETWEEN part AND box;
CREATE INDEX ON part(bin);
`)
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, "INSERT INTO part VALUES (%d, %d);\n", i, i%3)
		fmt.Fprintf(&sb, "INSERT INTO box VALUES (%d);\n", i)
		fmt.Fprintf(&sb, "CONNECT part WHERE pn = %d TO box WHERE slot = %d VIA pb;\n", i, i)
	}
	if _, err := sess.ExecScript(sb.String()); err != nil {
		t.Fatal(err)
	}
	return sess, db
}

// TestPrepareExecute is the parameterized-statement contract: EXECUTE
// binds literals into the prepared shape, repeated EXECUTEs of the same
// statement hit one shape-keyed cache entry (rebinding, not
// recompiling), and each binding returns exactly the molecules its
// literals select.
func TestPrepareExecute(t *testing.T) {
	sess, db := prepSession(t)
	defer plan.Release(db)

	res, err := sess.Exec(`PREPARE by_bin AS SELECT ALL FROM part-[pb]-box WHERE part.bin = ?;`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, `"by_bin" prepared (1 parameter(s))`) {
		t.Fatalf("PREPARE message = %q", res.Message)
	}

	r0, err := sess.Exec(`EXECUTE by_bin (0);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r0.Set) != 4 {
		t.Fatalf("EXECUTE by_bin (0) delivered %d molecules, want 4", len(r0.Set))
	}
	hits0, _, compiles0 := plan.CacheFor(db).Counters()

	// A different literal through the same shape: correct result, cache
	// hit, no new compile.
	r1, err := sess.Exec(`EXECUTE by_bin (1);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Set) != 4 {
		t.Fatalf("EXECUTE by_bin (1) delivered %d molecules, want 4", len(r1.Set))
	}
	hits1, _, compiles1 := plan.CacheFor(db).Counters()
	if hits1 != hits0+1 {
		t.Fatalf("second EXECUTE: hits %d → %d, want a shape-cache hit", hits0, hits1)
	}
	if compiles1 != compiles0 {
		t.Fatalf("second EXECUTE recompiled (%d → %d compiles); want rebind", compiles0, compiles1)
	}

	// The two bindings must select disjoint parts (bin 0 vs bin 1).
	keys := map[string]bool{}
	for _, m := range r0.Set {
		keys[m.Key()] = true
	}
	for _, m := range r1.Set {
		if keys[m.Key()] {
			t.Fatal("EXECUTE (0) and EXECUTE (1) overlap; rebinding leaked a literal")
		}
	}

	// Out-of-range bin: empty, not an error.
	r9, err := sess.Exec(`EXECUTE by_bin (9);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r9.Set) != 0 {
		t.Fatalf("EXECUTE by_bin (9) delivered %d molecules, want 0", len(r9.Set))
	}
}

// TestPrepareExecuteErrors pins the error surface: duplicate PREPARE,
// unknown statement, and arity mismatch all fail cleanly.
func TestPrepareExecuteErrors(t *testing.T) {
	sess, db := prepSession(t)
	defer plan.Release(db)
	if _, err := sess.Exec(`PREPARE q AS SELECT ALL FROM part-[pb]-box WHERE part.bin = ?;`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`PREPARE q AS SELECT ALL FROM part-[pb]-box;`); err == nil {
		t.Fatal("duplicate PREPARE must fail")
	}
	if _, err := sess.Exec(`EXECUTE nosuch (1);`); err == nil {
		t.Fatal("EXECUTE of an unknown statement must fail")
	}
	if _, err := sess.Exec(`EXECUTE q;`); err == nil {
		t.Fatal("EXECUTE with missing parameters must fail")
	}
	if _, err := sess.Exec(`EXECUTE q (1, 2);`); err == nil {
		t.Fatal("EXECUTE with excess parameters must fail")
	}
}

// TestPrepareCount covers the aggregate path: a prepared SELECT COUNT
// folds per binding without materializing molecules.
func TestPrepareCount(t *testing.T) {
	sess, db := prepSession(t)
	defer plan.Release(db)
	if _, err := sess.Exec(`PREPARE n AS SELECT COUNT FROM part-[pb]-box WHERE part.bin = ?;`); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(`EXECUTE n (2);`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 4 {
		t.Fatalf("EXECUTE n (2) counted %d, want 4", res.Count)
	}
}

// TestShowCache exercises the SHOW CACHE statement: aggregate traffic,
// per-entry lines, and the [shape] tag on PREPARE'd entries.
func TestShowCache(t *testing.T) {
	sess, db := prepSession(t)
	defer plan.Release(db)
	if _, err := sess.Exec(`SELECT ALL FROM part-[pb]-box WHERE part.pn = 3;`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`PREPARE q AS SELECT ALL FROM part-[pb]-box WHERE part.bin = ?;`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`EXECUTE q (1);`); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(`SHOW CACHE;`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan cache:", "hit(s)", "part WHERE", "[shape]"} {
		if !strings.Contains(res.Message, want) {
			t.Fatalf("SHOW CACHE lacks %q:\n%s", want, res.Message)
		}
	}
}
