package mql

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/recursive"
	"mad/internal/storage"
)

// Session executes MQL statements against a database. It tracks the named
// molecule types created by DEFINE MOLECULE TYPE and by named FROM
// clauses, plus the per-session execution options installed by SET
// (workers, cache bypass). A Session is not safe for concurrent use;
// open one per client, and finish (drain or Close) a streaming Cursor
// before issuing the next statement.
type Session struct {
	db    *storage.Database
	named map[string]*core.MoleculeType
	rec   map[string]*recursive.Type
	// prepared holds the session's PREPARE'd statements by name.
	prepared map[string]*preparedStmt

	// workers is the SET WORKERS session default threaded into every
	// plan (0 = GOMAXPROCS); noCache bypasses the plan cache when set.
	workers int
	noCache bool

	// txn is the open BEGIN transaction, nil in auto-commit mode. While
	// set, DML buffers into it and SELECTs are read-your-writes: a clean
	// transaction streams from its begin snapshot, and one holding
	// buffered writes derives eagerly over its effective view, so the
	// session queries its own uncommitted inserts, updates and connects
	// (still invisible to every other session until COMMIT).
	txn *storage.Txn
}

// NewSession opens a session over the database.
func NewSession(db *storage.Database) *Session {
	return &Session{
		db:       db,
		named:    make(map[string]*core.MoleculeType),
		rec:      make(map[string]*recursive.Type),
		prepared: make(map[string]*preparedStmt),
	}
}

// DB returns the session's database.
func (s *Session) DB() *storage.Database { return s.db }

// InTxn reports whether a BEGIN transaction is open on the session.
func (s *Session) InTxn() bool { return s.txn != nil }

// Close releases the session's resources: an open transaction is rolled
// back (its buffered writes are discarded and its snapshot pin on the
// vacuum horizon released). Servers call it on connection teardown so an
// abandoned BEGIN cannot hold old versions alive forever.
func (s *Session) Close() error {
	if s.txn == nil {
		return nil
	}
	err := s.txn.Rollback()
	s.txn = nil
	return err
}

// NamedType returns a molecule type registered by DEFINE or a named FROM.
func (s *Session) NamedType(name string) (*core.MoleculeType, bool) {
	mt, ok := s.named[name]
	return mt, ok
}

// ResultKind discriminates Result payloads.
type ResultKind uint8

// Result kinds.
const (
	RMessage ResultKind = iota
	RMolecules
	RRecursive
	RInserted
	RAffected
	RPlan
	RCount
)

// GroupCount is one GROUP BY bucket: a distinct root-attribute value and
// how many qualifying molecules carry it.
type GroupCount struct {
	Value model.Value
	Count int
}

// Result is the outcome of one statement.
type Result struct {
	Kind ResultKind
	// Message carries DDL/SHOW/EXPLAIN output.
	Message string
	// Set and Desc carry SELECT results; Attrs optionally narrows the
	// attributes rendered per type (projection).
	Set   core.MoleculeSet
	Desc  *core.Desc
	Attrs map[string][]string
	// RecSet and RecType carry recursive SELECT results.
	RecSet  []*recursive.Molecule
	RecType *recursive.Type
	// Inserted lists identifiers created by INSERT.
	Inserted []model.AtomID
	// Count carries a SELECT COUNT result; GroupAttr and Groups carry the
	// per-bucket counts of SELECT COUNT ... GROUP BY (GroupAttr empty =
	// ungrouped count).
	Count     int
	GroupAttr string
	Groups    []GroupCount
	// Affected counts atoms/links touched by UPDATE/DELETE/(DIS)CONNECT.
	Affected int
	// TS is the commit timestamp a streamed SELECT was pinned to; Render
	// resolves attribute values at it so output matches the molecules'
	// structure even if writers committed since. Zero renders the latest
	// view (eager statements).
	TS uint64
	// atoms holds the attribute values of Set's atoms, resolved at TS
	// while the cursor's snapshot was still pinned. Render prefers it over
	// re-reading the database, so rendering stays correct even after
	// vacuum reclaims the versions at TS.
	atoms map[model.AtomID]model.Atom
}

// Exec parses and executes a single statement, materializing the whole
// result. It delegates to QueryContext with a background context — new
// code that wants incremental delivery, cancellation or a deadline
// should call QueryContext directly and iterate the returned Cursor.
func (s *Session) Exec(src string) (*Result, error) {
	cur, err := s.QueryContext(context.Background(), src)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	return cur.Result()
}

// ExecScript parses and executes a ';'-separated script, stopping at the
// first error.
func (s *Session) ExecScript(src string) ([]*Result, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for _, st := range stmts {
		r, err := s.Execute(st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Execute runs one parsed statement.
func (s *Session) Execute(st Stmt) (*Result, error) {
	switch st := st.(type) {
	case *SelectStmt:
		return s.execSelect(st)
	case *DefineStmt:
		return s.execDefine(st)
	case *CreateAtomTypeStmt:
		desc, err := model.NewDesc(st.Attrs...)
		if err != nil {
			return nil, err
		}
		if _, err := s.db.DefineAtomType(st.Name, desc); err != nil {
			return nil, err
		}
		return &Result{Kind: RMessage, Message: fmt.Sprintf("atom type %q defined", st.Name)}, nil
	case *CreateLinkTypeStmt:
		if _, err := s.db.DefineLinkType(st.Name, st.Desc); err != nil {
			return nil, err
		}
		return &Result{Kind: RMessage, Message: fmt.Sprintf("link type %q defined", st.Name)}, nil
	case *CreateIndexStmt:
		if err := s.db.CreateIndex(st.Type, st.Attr); err != nil {
			return nil, err
		}
		return &Result{Kind: RMessage, Message: fmt.Sprintf("index on %s.%s created", st.Type, st.Attr)}, nil
	case *InsertStmt:
		return s.execInsert(st)
	case *UpdateStmt:
		return s.execUpdate(st)
	case *DeleteStmt:
		return s.execDelete(st)
	case *ConnectStmt:
		return s.execConnect(st)
	case *ShowStmt:
		return s.execShow(st)
	case *ExplainStmt:
		return s.execExplain(st)
	case *AnalyzeStmt:
		return s.execAnalyze(st)
	case *CheckpointStmt:
		return s.execCheckpoint()
	case *SetStmt:
		return s.execSet(st)
	case *PrepareStmt:
		return s.execPrepare(st)
	case *ExecuteStmt:
		return s.execExecute(st)
	case *BeginStmt:
		return s.execBegin()
	case *CommitStmt:
		return s.execCommit()
	case *RollbackStmt:
		return s.execRollback()
	}
	return nil, fmt.Errorf("mql: unsupported statement %T", st)
}

// execBegin opens a buffered-write transaction on the session.
func (s *Session) execBegin() (*Result, error) {
	if s.txn != nil {
		return nil, fmt.Errorf("mql: a transaction is already open (COMMIT or ROLLBACK it first)")
	}
	s.txn = s.db.Begin()
	return &Result{Kind: RMessage, Message: fmt.Sprintf(
		"transaction started (snapshot at commit %d)", s.txn.SnapshotTS())}, nil
}

// execCommit installs the open transaction's buffered mutations
// atomically. The transaction ends either way: a failed commit leaves
// nothing visible and the session back in auto-commit mode.
func (s *Session) execCommit() (*Result, error) {
	if s.txn == nil {
		return nil, fmt.Errorf("mql: no transaction is open")
	}
	n := s.txn.Mutations()
	err := s.txn.Commit()
	s.txn = nil
	if err != nil {
		return nil, err
	}
	return &Result{Kind: RMessage, Message: fmt.Sprintf("committed %d mutation(s)", n)}, nil
}

// execRollback discards the open transaction's buffered mutations.
func (s *Session) execRollback() (*Result, error) {
	if s.txn == nil {
		return nil, fmt.Errorf("mql: no transaction is open")
	}
	n := s.txn.Mutations()
	err := s.txn.Rollback()
	s.txn = nil
	if err != nil {
		return nil, err
	}
	return &Result{Kind: RMessage, Message: fmt.Sprintf("rolled back %d mutation(s)", n)}, nil
}

// execSet installs a per-session execution option. The options thread
// into every subsequent plan — both the materialized Execute path and
// streaming cursors.
func (s *Session) execSet(st *SetStmt) (*Result, error) {
	switch strings.ToUpper(st.Name) {
	case "WORKERS":
		n, ok := st.Value.AsInt()
		if !ok || n < 0 {
			return nil, fmt.Errorf("mql: SET WORKERS needs a non-negative integer, got %s", st.Value)
		}
		s.workers = int(n)
		return &Result{Kind: RMessage, Message: fmt.Sprintf("workers set to %d (0 = all cores)", n)}, nil
	case "NOCACHE":
		b, ok := st.Value.AsBool()
		if !ok {
			return nil, fmt.Errorf("mql: SET NOCACHE needs TRUE or FALSE, got %s", st.Value)
		}
		s.noCache = b
		return &Result{Kind: RMessage, Message: fmt.Sprintf("plan-cache bypass set to %v", b)}, nil
	}
	return nil, fmt.Errorf("mql: unknown session option %q (supported: WORKERS, NOCACHE)", st.Name)
}

// execAnalyze rebuilds the per-attribute histograms of one atom type (or
// all of them). The storage layer bumps the plan epoch, so every cached
// plan recompiles against the fresh statistics.
func (s *Session) execAnalyze(st *AnalyzeStmt) (*Result, error) {
	var (
		built int
		err   error
	)
	if st.Type == "" {
		built, err = s.db.Analyze()
	} else {
		built, err = s.db.Analyze(st.Type)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Kind: RMessage, Message: fmt.Sprintf(
		"analyzed %d attribute histogram(s); cached plans invalidated", built)}, nil
}

// execCheckpoint writes a durable snapshot and truncates the log below
// it. Inside a transaction it is rejected: the checkpoint captures
// committed state, and a session mid-transaction asking for one is
// almost certainly confused about what would be saved.
func (s *Session) execCheckpoint() (*Result, error) {
	if s.txn != nil {
		return nil, fmt.Errorf("mql: CHECKPOINT inside a transaction (COMMIT or ROLLBACK first)")
	}
	cs, err := s.db.Checkpoint()
	if err != nil {
		return nil, err
	}
	return &Result{Kind: RMessage, Message: fmt.Sprintf(
		"checkpoint at commit %d; %d log segment(s) truncated", cs.TS, cs.SegmentsRemoved)}, nil
}

// BuildDesc translates a parsed structure into a validated molecule-type
// description, resolving '-' shorthands to unique link types.
func BuildDesc(db *storage.Database, node *StructNode) (*core.Desc, error) {
	var types []string
	var edges []core.DirectedLink
	seen := make(map[string]bool)
	var walk func(n *StructNode) error
	walk = func(n *StructNode) error {
		if seen[n.Type] {
			return fmt.Errorf("mql: atom type %q appears twice in the structure (C is a set)", n.Type)
		}
		seen[n.Type] = true
		types = append(types, n.Type)
		for _, e := range n.Children {
			link := e.Link
			if link == "" {
				lt, err := db.Schema().UniqueLinkBetween(n.Type, e.Node.Type)
				if err != nil {
					return err
				}
				link = lt.Name
			}
			edges = append(edges, core.DirectedLink{Link: link, From: n.Type, To: e.Node.Type})
			if err := walk(e.Node); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(node); err != nil {
		return nil, err
	}
	return core.NewDesc(db, types, edges)
}

// resolveFrom turns a FROM clause into a molecule type (registering named
// on-the-fly definitions) or a recursive type.
func (s *Session) resolveFrom(fc FromClause) (*core.MoleculeType, *recursive.Type, error) {
	if fc.Recursive != nil {
		rt, ok := s.rec[fc.Recursive.Type+"/"+fc.Recursive.Link]
		if ok && rt.Up == fc.Recursive.Up && rt.Depth == fc.Recursive.Depth {
			return nil, rt, nil
		}
		rt, err := recursive.Define(s.db, "", fc.Recursive.Type, fc.Recursive.Link, fc.Recursive.Up, fc.Recursive.Depth)
		if err != nil {
			return nil, nil, err
		}
		return nil, rt, nil
	}
	if fc.Name != "" && fc.Struct != nil && fc.Struct.Children == nil {
		// Bare identifier: named molecule type, or single-type structure.
		if mt, ok := s.named[fc.Name]; ok {
			return mt, nil, nil
		}
		if _, ok := s.db.Schema().AtomType(fc.Name); !ok {
			return nil, nil, fmt.Errorf("mql: %q is neither a molecule type nor an atom type", fc.Name)
		}
		desc, err := BuildDesc(s.db, fc.Struct)
		if err != nil {
			return nil, nil, err
		}
		mt, err := core.DefineDesc(s.db, "", desc)
		return mt, nil, err
	}
	if fc.Struct == nil {
		mt, ok := s.named[fc.Name]
		if !ok {
			return nil, nil, fmt.Errorf("mql: unknown molecule type %q", fc.Name)
		}
		return mt, nil, nil
	}
	desc, err := BuildDesc(s.db, fc.Struct)
	if err != nil {
		return nil, nil, err
	}
	mt, err := core.DefineDesc(s.db, fc.Name, desc)
	if err != nil {
		return nil, nil, err
	}
	if fc.Name != "" {
		if _, dup := s.named[fc.Name]; dup {
			return nil, nil, fmt.Errorf("mql: molecule type %q already defined", fc.Name)
		}
		s.named[fc.Name] = mt
	}
	return mt, nil, nil
}

// planSelect compiles a non-recursive SELECT body into a query plan,
// going through the database's plan cache: repeated statements over the
// same structure (named molecule types above all) reuse the compiled
// plan until DDL or ANALYZE bumps the plan epoch. The session's SET
// options, the statement's LIMIT and any per-query options (strongest
// last) parameterize the returned plan.
func (s *Session) planSelect(st *SelectStmt, desc *core.Desc, o queryOpts) (*plan.Plan, error) {
	if st.Where != nil {
		if err := expr.Check(st.Where, core.Scope{DB: s.db, Desc: desc}); err != nil {
			return nil, err
		}
	}
	var order *plan.OrderBy
	if st.OrderBy != nil {
		if st.OrderBy.Type != "" && st.OrderBy.Type != desc.Root() {
			return nil, fmt.Errorf("mql: ORDER BY %s.%s: molecules order by their root type %q",
				st.OrderBy.Type, st.OrderBy.Attr, desc.Root())
		}
		order = &plan.OrderBy{Attr: st.OrderBy.Attr, Desc: st.OrderBy.Desc}
	}
	var (
		p   *plan.Plan
		err error
	)
	switch {
	case s.noCache || o.noCache:
		p, err = plan.CompileOrdered(s.db, desc, st.Where, order)
	case o.shapeKey != "":
		// EXECUTE of a PREPARE'd statement: plan through the shape-keyed
		// entry, so every binding of the same statement shares (and
		// rebinds) one cached compilation.
		p, _, err = plan.CacheFor(s.db).CompileShaped(desc, st.Where, order, o.shapeKey)
	default:
		p, _, err = plan.CacheFor(s.db).CompileOrdered(desc, st.Where, order)
	}
	if err != nil {
		return nil, err
	}
	p.Workers = s.workers
	if o.workersSet {
		p.Workers = o.workers
	}
	p.Limit = st.Limit
	if o.limitSet {
		p.Limit = o.limit
	}
	return p, nil
}

// execSelect runs a query-mode SELECT through the planner: access path
// (root index, filtered root scan, or an interior-index entry climbed
// upward through the symmetric links), derivation with predicate
// pushdown over the worker pool, residual restriction, projection —
// without enlarging the database. It is the collect-all form of
// ExecuteStream, so the materialized surfaces (Execute, ExecScript)
// and the streaming Cursor run exactly one pipeline. The algebra-mode
// equivalent (with propagation) is DEFINE MOLECULE TYPE ... AS SELECT.
func (s *Session) execSelect(st *SelectStmt) (*Result, error) {
	cur, err := s.ExecuteStream(context.Background(), st)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	return cur.Result()
}

// execCount runs SELECT COUNT [GROUP BY attr]. The ungrouped form takes
// the plan's counting path: when no pushdown or residual applies, the
// count is the filtered root-batch size and no molecule is derived at
// all; otherwise the stream is counted, with LIMIT cancelling the
// derivation mid-flight once the cap is reached. The grouped form folds
// the stream's molecules into per-value buckets as they arrive — the
// result set is never materialized — and LIMIT caps the buckets
// reported, not the molecules counted.
func (s *Session) execCount(ctx context.Context, st *SelectStmt, desc *core.Desc, o queryOpts) (*Result, error) {
	p, err := s.planSelect(st, desc, o)
	if err != nil {
		return nil, err
	}
	var snap *storage.Snapshot
	if s.txn != nil {
		snap = s.txn.Snapshot()
	}
	if st.GroupBy == nil {
		n, err := p.ExecuteCountAt(ctx, snap)
		if err != nil {
			return nil, err
		}
		return &Result{Kind: RCount, Count: n}, nil
	}
	g := st.GroupBy
	if g.Type != "" && g.Type != desc.Root() {
		return nil, fmt.Errorf("mql: GROUP BY %s.%s: molecules group by their root type %q",
			g.Type, g.Attr, desc.Root())
	}
	c, ok := s.db.Container(desc.Root())
	if !ok {
		return nil, fmt.Errorf("mql: root type %q has no container", desc.Root())
	}
	pos, ok := c.Desc().Lookup(g.Attr)
	if !ok {
		return nil, fmt.Errorf("mql: root type %q has no attribute %q", desc.Root(), g.Attr)
	}
	limit := p.Limit
	p.Limit = 0 // LIMIT caps groups, not the molecules folded into them
	var stream *plan.Stream
	if snap != nil {
		stream, err = p.StreamAt(ctx, snap)
	} else {
		stream, err = p.Stream(ctx)
	}
	if err != nil {
		return nil, err
	}
	defer stream.Close()
	ts := stream.SnapshotTS()
	counts := make(map[model.Key]*GroupCount)
	for {
		m, err := stream.Next()
		if err != nil {
			return nil, err
		}
		if m == nil {
			break
		}
		a, ok := c.GetAt(m.Root(), ts)
		if !ok {
			continue
		}
		v := a.Get(pos)
		k := v.Key()
		gc := counts[k]
		if gc == nil {
			gc = &GroupCount{Value: v}
			counts[k] = gc
		}
		gc.Count++
	}
	groups := make([]GroupCount, 0, len(counts))
	for _, gc := range counts {
		groups = append(groups, *gc)
	}
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].Value.Compare(groups[j].Value) < 0
	})
	if limit > 0 && len(groups) > limit {
		groups = groups[:limit]
	}
	return &Result{Kind: RCount, GroupAttr: g.Attr, Groups: groups}, nil
}

// execSelectEff runs a SELECT (including COUNT and ORDER BY forms) over
// the transaction's effective view — the read-your-writes path taken
// when the session's open transaction holds buffered writes. The
// planner's access paths index only committed state, so the derivation
// runs template-over-view eagerly: every root of the effective
// occurrence derives through the transaction's overlay, the WHERE
// predicate evaluates against the same view, and ordering, grouping and
// LIMIT apply to the finished set. Rendered attribute values come from
// the overlay too, so an uncommitted UPDATE shows its new values.
func (s *Session) execSelectEff(ctx context.Context, st *SelectStmt, desc *core.Desc, o queryOpts) (*Result, error) {
	if st.Where != nil {
		if err := expr.Check(st.Where, core.Scope{DB: s.db, Desc: desc}); err != nil {
			return nil, err
		}
	}
	// Validate ORDER BY / GROUP BY / projection before deriving anything,
	// matching the planned path's error surface.
	rootC, ok := s.db.Container(desc.Root())
	if !ok {
		return nil, fmt.Errorf("mql: root type %q has no container", desc.Root())
	}
	orderPos := -1
	if st.OrderBy != nil {
		if st.OrderBy.Type != "" && st.OrderBy.Type != desc.Root() {
			return nil, fmt.Errorf("mql: ORDER BY %s.%s: molecules order by their root type %q",
				st.OrderBy.Type, st.OrderBy.Attr, desc.Root())
		}
		if orderPos, ok = rootC.Desc().Lookup(st.OrderBy.Attr); !ok {
			return nil, fmt.Errorf("plan: root type %q has no attribute %q to order by", desc.Root(), st.OrderBy.Attr)
		}
	}
	groupPos := -1
	if st.GroupBy != nil {
		g := st.GroupBy
		if g.Type != "" && g.Type != desc.Root() {
			return nil, fmt.Errorf("mql: GROUP BY %s.%s: molecules group by their root type %q",
				g.Type, g.Attr, desc.Root())
		}
		if groupPos, ok = rootC.Desc().Lookup(g.Attr); !ok {
			return nil, fmt.Errorf("mql: root type %q has no attribute %q", desc.Root(), g.Attr)
		}
	}
	var sub *core.Desc
	var attrs map[string][]string
	if !st.Count {
		var err error
		if sub, attrs, err = s.projectionSpec(st, desc); err != nil {
			return nil, err
		}
	}
	limit := st.Limit
	if o.limitSet {
		limit = o.limit
	}

	dv, err := core.NewDeriver(s.db, desc)
	if err != nil {
		return nil, err
	}
	dv = dv.AtView(s.txn)
	var set core.MoleculeSet
	var walkErr error
	dv.Walk(func(m *core.Molecule) bool {
		if ctx != nil && ctx.Err() != nil {
			walkErr = ctx.Err()
			return false
		}
		if st.Where != nil {
			keep, err := expr.EvalPredicate(st.Where, core.Binding{DB: s.db, M: m, Lookup: s.txn.EffAtom})
			if err != nil {
				walkErr = err
				return false
			}
			if !keep {
				return true
			}
		}
		set = append(set, m)
		// An unordered, ungrouped SELECT can stop at the cap; ordered and
		// counted forms must see the full qualifying set first.
		return st.OrderBy != nil || st.Count || limit <= 0 || len(set) < limit
	})
	if walkErr != nil {
		return nil, walkErr
	}

	if st.Count {
		if groupPos < 0 {
			n := len(set)
			if limit > 0 && n > limit {
				n = limit
			}
			return &Result{Kind: RCount, Count: n}, nil
		}
		counts := make(map[model.Key]*GroupCount)
		for _, m := range set {
			a, ok := s.txn.EffAtom(desc.Root(), m.Root())
			if !ok {
				continue
			}
			v := a.Get(groupPos)
			k := v.Key()
			gc := counts[k]
			if gc == nil {
				gc = &GroupCount{Value: v}
				counts[k] = gc
			}
			gc.Count++
		}
		groups := make([]GroupCount, 0, len(counts))
		for _, gc := range counts {
			groups = append(groups, *gc)
		}
		sort.Slice(groups, func(i, j int) bool {
			return groups[i].Value.Compare(groups[j].Value) < 0
		})
		if limit > 0 && len(groups) > limit {
			groups = groups[:limit]
		}
		return &Result{Kind: RCount, GroupAttr: st.GroupBy.Attr, Groups: groups}, nil
	}

	if st.OrderBy != nil {
		down := st.OrderBy.Desc
		rootType := desc.Root()
		key := func(m *core.Molecule) model.Value {
			a, _ := s.txn.EffAtom(rootType, m.Root())
			return a.Get(orderPos)
		}
		sort.SliceStable(set, func(i, j int) bool {
			c := key(set[i]).Compare(key(set[j]))
			if c != 0 {
				if down {
					return c > 0
				}
				return c < 0
			}
			return set[i].Root() < set[j].Root() // ties break by root id, both directions
		})
	}
	if limit > 0 && len(set) > limit {
		set = set[:limit]
	}

	outDesc := desc
	if sub != nil {
		outDesc = sub
		for i, m := range set {
			set[i] = m.PruneTo(sub)
		}
	}
	// Resolve rendered values through the overlay while the transaction is
	// still open — they must show the uncommitted writes.
	atoms := make(map[model.AtomID]model.Atom)
	for _, m := range set {
		for _, typeName := range m.Desc().Types() {
			for _, id := range m.AtomsOf(typeName) {
				if _, done := atoms[id]; done {
					continue
				}
				if a, ok := s.txn.EffAtom(typeName, id); ok {
					atoms[id] = a
				}
			}
		}
	}
	return &Result{Kind: RMolecules, Set: set, Desc: outDesc, Attrs: attrs, TS: s.txn.SnapshotTS(), atoms: atoms}, nil
}

// projectionSpec validates the SELECT list against the structure and
// returns the induced sub-description plus the per-type attribute
// narrowing. A nil sub-description means SELECT ALL (no projection).
// Shared by the materialized path (project) and the streaming Cursor,
// which prunes molecule by molecule.
func (s *Session) projectionSpec(st *SelectStmt, desc *core.Desc) (*core.Desc, map[string][]string, error) {
	if st.All {
		return nil, nil, nil
	}
	keep := make([]string, 0, len(st.Items))
	attrs := make(map[string][]string)
	for _, it := range st.Items {
		if !desc.HasType(it.Type) {
			return nil, nil, fmt.Errorf("mql: SELECT item %q is not part of the structure %s", it.Type, desc)
		}
		keep = append(keep, it.Type)
		if it.Attrs != nil {
			c, ok := s.db.Container(it.Type)
			if !ok {
				return nil, nil, fmt.Errorf("mql: atom type %q has no container", it.Type)
			}
			for _, a := range it.Attrs {
				if _, ok := c.Desc().Lookup(a); !ok {
					return nil, nil, fmt.Errorf("mql: atom type %q has no attribute %q", it.Type, a)
				}
			}
			attrs[it.Type] = it.Attrs
		}
	}
	hasRoot := false
	for _, t := range keep {
		if t == desc.Root() {
			hasRoot = true
		}
	}
	if !hasRoot {
		return nil, nil, fmt.Errorf("mql: the SELECT list must include the root type %q (molecule projection keeps the root)", desc.Root())
	}
	// Induced sub-description over the original type names.
	keepSet := make(map[string]bool, len(keep))
	for _, t := range keep {
		keepSet[t] = true
	}
	var subTypes []string
	for _, t := range desc.Types() {
		if keepSet[t] {
			subTypes = append(subTypes, t)
		}
	}
	var subEdges []core.DirectedLink
	for _, e := range desc.Edges() {
		if keepSet[e.From] && keepSet[e.To] {
			subEdges = append(subEdges, e)
		}
	}
	sub, err := core.NewDesc(s.db, subTypes, subEdges)
	if err != nil {
		return nil, nil, fmt.Errorf("mql: projected structure invalid: %w", err)
	}
	return sub, attrs, nil
}

// execDefine runs the algebra mode: α, then Σ with propagation, then Π
// with propagation, and registers the resulting molecule type.
func (s *Session) execDefine(st *DefineStmt) (*Result, error) {
	if _, dup := s.named[st.Name]; dup {
		return nil, fmt.Errorf("mql: molecule type %q already defined", st.Name)
	}
	if st.SetOp != "" {
		return s.execDefineSetOp(st)
	}
	sel := st.Select
	if sel.Limit > 0 {
		// A capped definition would register a molecule type whose
		// occurrence depends on delivery order — algebra mode defines
		// whole occurrences (Definition 9), so reject rather than
		// silently ignore the clause.
		return nil, fmt.Errorf("mql: LIMIT is not supported in DEFINE ... AS SELECT")
	}
	mt, rt, err := s.resolveFrom(sel.From)
	if err != nil {
		return nil, err
	}
	if rt != nil {
		rt2, err := recursive.Define(s.db, st.Name, rt.AtomType, rt.Link, rt.Up, rt.Depth)
		if err != nil {
			return nil, err
		}
		s.rec[rt2.AtomType+"/"+rt2.Link] = rt2
		return &Result{Kind: RMessage, Message: fmt.Sprintf("recursive molecule type %q defined", st.Name)}, nil
	}
	cur := mt
	if sel.Where != nil {
		// Σ through the planner: derived molecule types get the same
		// access paths and pushdown as query-mode SELECT.
		cur, err = plan.Restrict(cur, sel.Where, "", nil)
		if err != nil {
			return nil, err
		}
	}
	if !sel.All {
		// Map projection items (original names) onto the current type's
		// positionally renamed description.
		origDesc := mt.Desc()
		curDesc := cur.Desc()
		keep := make([]string, 0, len(sel.Items))
		attrs := make(map[string][]string)
		for _, it := range sel.Items {
			pos, ok := origDesc.Pos(it.Type)
			if !ok {
				return nil, fmt.Errorf("mql: SELECT item %q is not part of the structure %s", it.Type, origDesc)
			}
			renamed := curDesc.Types()[pos]
			keep = append(keep, renamed)
			if it.Attrs != nil {
				attrs[renamed] = it.Attrs
			}
		}
		cur, err = core.Project(cur, core.Projection{Keep: keep, Attrs: attrs}, "", nil)
		if err != nil {
			return nil, err
		}
	}
	final, err := core.DefineDesc(s.db, st.Name, cur.Desc())
	if err != nil {
		return nil, err
	}
	s.named[st.Name] = final
	n, _ := final.Cardinality()
	return &Result{Kind: RMessage, Message: fmt.Sprintf("molecule type %q defined (%d molecules)", st.Name, n)}, nil
}

// execDefineSetOp runs Ω, Δ or Ψ over two named molecule types and
// registers the propagated result.
func (s *Session) execDefineSetOp(st *DefineStmt) (*Result, error) {
	left, ok := s.named[st.Left]
	if !ok {
		return nil, fmt.Errorf("mql: unknown molecule type %q", st.Left)
	}
	right, ok := s.named[st.Right]
	if !ok {
		return nil, fmt.Errorf("mql: unknown molecule type %q", st.Right)
	}
	var (
		res *core.MoleculeType
		err error
	)
	switch st.SetOp {
	case "UNION":
		res, err = core.Union(left, right, "", nil)
	case "DIFFERENCE":
		res, err = core.Difference(left, right, "", nil)
	case "INTERSECT":
		res, err = core.Intersect(left, right, "", nil)
	default:
		return nil, fmt.Errorf("mql: unknown set operation %q", st.SetOp)
	}
	if err != nil {
		return nil, err
	}
	final, err := core.DefineDesc(s.db, st.Name, res.Desc())
	if err != nil {
		return nil, err
	}
	s.named[st.Name] = final
	n, _ := final.Cardinality()
	return &Result{Kind: RMessage, Message: fmt.Sprintf("molecule type %q defined (%d molecules)", st.Name, n)}, nil
}

func (s *Session) execInsert(st *InsertStmt) (*Result, error) {
	c, ok := s.db.Container(st.Type)
	if !ok {
		return nil, fmt.Errorf("mql: unknown atom type %q", st.Type)
	}
	desc := c.Desc()
	res := &Result{Kind: RInserted}
	for _, row := range st.Rows {
		vals := row
		if st.Attrs != nil {
			if len(row) != len(st.Attrs) {
				return nil, fmt.Errorf("mql: %d values for %d attributes", len(row), len(st.Attrs))
			}
			vals = make([]model.Value, desc.Len())
			for i := range vals {
				vals[i] = model.Null()
			}
			for i, a := range st.Attrs {
				pos, ok := desc.Lookup(a)
				if !ok {
					return nil, fmt.Errorf("mql: atom type %q has no attribute %q", st.Type, a)
				}
				vals[pos] = row[i]
			}
		}
		var (
			id  model.AtomID
			err error
		)
		if s.txn != nil {
			id, err = s.txn.InsertAtom(st.Type, vals...)
		} else {
			id, err = s.db.InsertAtom(st.Type, vals...)
		}
		if err != nil {
			return nil, err
		}
		res.Inserted = append(res.Inserted, id)
	}
	return res, nil
}

// matchAtoms collects the atoms of a type satisfying a predicate. Inside
// a transaction the scan reads the begin snapshot, so the selected set is
// consistent with every other read the transaction performs.
func (s *Session) matchAtoms(typeName string, pred expr.Expr) ([]model.Atom, error) {
	c, ok := s.db.Container(typeName)
	if !ok {
		return nil, fmt.Errorf("mql: unknown atom type %q", typeName)
	}
	if pred != nil {
		if err := expr.Check(pred, expr.AtomScope{TypeName: typeName, Desc: c.Desc()}); err != nil {
			return nil, err
		}
	}
	var out []model.Atom
	var evalErr error
	// Inside a transaction DML predicates match the effective view —
	// begin snapshot plus this transaction's own buffered writes — so a
	// statement can target atoms the transaction just inserted (SELECTs
	// stay on the begin snapshot; see ExecuteStream).
	var scanErr error
	scan := c.Scan
	if s.txn != nil {
		txn := s.txn
		scan = func(fn func(model.Atom) bool) { scanErr = txn.ScanEff(typeName, fn) }
	}
	scan(func(a model.Atom) bool {
		keep, err := expr.EvalPredicate(pred, expr.AtomBinding{TypeName: typeName, Desc: c.Desc(), Atom: a})
		if err != nil {
			evalErr = err
			return false
		}
		if keep {
			out = append(out, a)
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return out, evalErr
}

func (s *Session) execUpdate(st *UpdateStmt) (*Result, error) {
	c, ok := s.db.Container(st.Type)
	if !ok {
		return nil, fmt.Errorf("mql: unknown atom type %q", st.Type)
	}
	desc := c.Desc()
	for a := range st.Set {
		if _, ok := desc.Lookup(a); !ok {
			return nil, fmt.Errorf("mql: atom type %q has no attribute %q", st.Type, a)
		}
	}
	atoms, err := s.matchAtoms(st.Type, st.Where)
	if err != nil {
		return nil, err
	}
	for _, a := range atoms {
		vals := make([]model.Value, len(a.Vals))
		copy(vals, a.Vals)
		for name, v := range st.Set {
			pos, _ := desc.Lookup(name)
			vals[pos] = v
		}
		if s.txn != nil {
			err = s.txn.UpdateAtom(st.Type, a.ID, vals)
		} else {
			err = s.db.UpdateAtom(st.Type, a.ID, vals)
		}
		if err != nil {
			return nil, err
		}
	}
	return &Result{Kind: RAffected, Affected: len(atoms)}, nil
}

func (s *Session) execDelete(st *DeleteStmt) (*Result, error) {
	atoms, err := s.matchAtoms(st.Type, st.Where)
	if err != nil {
		return nil, err
	}
	for _, a := range atoms {
		if s.txn != nil {
			err = s.txn.DeleteAtom(st.Type, a.ID)
		} else {
			_, err = s.db.DeleteAtom(st.Type, a.ID)
		}
		if err != nil {
			return nil, err
		}
	}
	return &Result{Kind: RAffected, Affected: len(atoms)}, nil
}

func (s *Session) execConnect(st *ConnectStmt) (*Result, error) {
	lt, ok := s.db.Schema().LinkType(st.Link)
	if !ok {
		return nil, fmt.Errorf("mql: unknown link type %q", st.Link)
	}
	if lt.Desc.SideA != st.FromType || lt.Desc.SideB != st.ToType {
		return nil, fmt.Errorf("mql: link type %q connects %s, not %q→%q",
			st.Link, lt.Desc, st.FromType, st.ToType)
	}
	froms, err := s.matchAtoms(st.FromType, st.FromWhere)
	if err != nil {
		return nil, err
	}
	tos, err := s.matchAtoms(st.ToType, st.ToWhere)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, fa := range froms {
		for _, ta := range tos {
			if st.Remove {
				var removed bool
				if s.txn != nil {
					removed, err = s.txn.Disconnect(st.Link, fa.ID, ta.ID)
				} else {
					removed, err = s.db.Disconnect(st.Link, fa.ID, ta.ID)
				}
				if err != nil {
					return nil, err
				}
				if removed {
					n++
				}
			} else {
				if s.txn != nil {
					err = s.txn.Connect(st.Link, fa.ID, ta.ID)
				} else {
					err = s.db.Connect(st.Link, fa.ID, ta.ID)
				}
				if err != nil {
					return nil, err
				}
				n++
			}
		}
	}
	return &Result{Kind: RAffected, Affected: n}, nil
}

func (s *Session) execShow(st *ShowStmt) (*Result, error) {
	var b strings.Builder
	switch st.What {
	case "SCHEMA", "TYPES":
		b.WriteString(s.db.Schema().Render())
	case "MOLECULES":
		names := make([]string, 0, len(s.named))
		for n := range s.named {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "MOLECULE TYPE %s = %s;\n", n, s.named[n].Desc())
		}
		recNames := make([]string, 0, len(s.rec))
		for n := range s.rec {
			recNames = append(recNames, n)
		}
		sort.Strings(recNames)
		for _, n := range recNames {
			rt := s.rec[n]
			fmt.Fprintf(&b, "RECURSIVE MOLECULE TYPE %s OVER %s VIA %s;\n", rt.Name, rt.AtomType, rt.Link)
		}
	case "INDEXES":
		for _, ix := range s.db.Indexes() {
			fmt.Fprintf(&b, "INDEX ON %s;\n", ix)
		}
	case "HISTOGRAMS":
		for _, key := range s.db.Histograms() {
			dot := strings.LastIndex(key, ".")
			h, ok := s.db.Histogram(key[:dot], key[dot+1:])
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "HISTOGRAM ON %s: %s\n", key, h)
		}
	case "STATS":
		b.WriteString(s.db.Stats().Snapshot().String())
		b.WriteByte('\n')
	case "FEEDBACK":
		b.WriteString(plan.FeedbackFor(s.db).Render())
	case "CACHE":
		b.WriteString(plan.CacheFor(s.db).Render())
	}
	return &Result{Kind: RMessage, Message: b.String()}, nil
}

func (s *Session) execExplain(st *ExplainStmt) (*Result, error) {
	sel := st.Select
	mt, rt, err := s.resolveFrom(sel.From)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	if rt != nil {
		plan.FeedbackFor(s.db)
		fp, err := plan.CompileFixpoint(s.db, rt.AtomType, rt.Link, rt.Up, rt.Depth, sel.Where)
		if err != nil {
			return nil, err
		}
		fp.Workers = s.workers
		fp.Limit = sel.Limit
		// Run the fixpoint (query mode never enlarges the database) so the
		// rendering carries the [fixpoint] rounds/frontier/visited actuals
		// next to the estimates, unless the statement asked for the
		// compile-only ESTIMATE form.
		if !st.EstimateOnly {
			if _, err := fp.Execute(context.Background()); err != nil {
				return nil, err
			}
		}
		b.WriteString(fp.Render())
		if sel.Count {
			if sel.GroupBy != nil {
				fmt.Fprintf(&b, "aggregate: COUNT GROUP BY %s (folded off fixpoint batches, result never materialized)\n", sel.GroupBy.Attr)
			} else {
				b.WriteString("aggregate: COUNT (folded off fixpoint batches)\n")
			}
		}
		return &Result{Kind: RPlan, Message: b.String()}, nil
	}
	desc := mt.Desc()
	p, err := s.planSelect(sel, desc, queryOpts{})
	if err != nil {
		return nil, err
	}
	// Run the plan (query mode never enlarges the database) so the
	// rendering reports actual cardinalities next to the estimates —
	// including the chosen entry point and the access-path contest on
	// the `considered:` line — unless the statement asked for the
	// compile-only ESTIMATE form.
	if !st.EstimateOnly {
		if sel.Count {
			if _, err := p.ExecuteCountAt(context.Background(), nil); err != nil {
				return nil, err
			}
		} else if _, err := p.Execute(); err != nil {
			return nil, err
		}
	}
	b.WriteString(p.Render())
	if sel.Count {
		switch {
		case sel.GroupBy != nil:
			fmt.Fprintf(&b, "aggregate: COUNT GROUP BY %s (stream-folded, result never materialized)\n", sel.GroupBy.Attr)
		case p.CanCountFast():
			b.WriteString("aggregate: COUNT (root-batch fast path, no derivation)\n")
		default:
			b.WriteString("aggregate: COUNT (stream-counted)\n")
		}
	}
	if !sel.All && !sel.Count {
		var items []string
		for _, it := range sel.Items {
			if it.Attrs == nil {
				items = append(items, it.Type)
			} else {
				items = append(items, it.Type+"("+strings.Join(it.Attrs, ",")+")")
			}
		}
		fmt.Fprintf(&b, "project:   Π[%s]\n", strings.Join(items, ", "))
	}
	return &Result{Kind: RPlan, Message: b.String()}, nil
}
