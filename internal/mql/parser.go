package mql

import (
	"fmt"
	"strconv"
	"strings"

	"mad/internal/expr"
	"mad/internal/model"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
	// params counts the '?' placeholders seen so far; each lexes into a
	// positional parameter sentinel bound at EXECUTE time.
	params int
}

// paramType is the sentinel attribute "type" a '?' placeholder parses
// into: the NUL byte cannot occur in an identifier, so the sentinel never
// collides with a real atom type, and the placeholder's ordinal travels
// in the attribute name.
const paramType = "\x00param"

// NewParser parses the given source into a parser ready to emit
// statements.
func NewParser(src string) (*Parser, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// Parse parses a single statement from source (which must contain exactly
// one statement, optionally ';'-terminated).
func Parse(src string) (Stmt, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	s, err := p.Statement()
	if err != nil {
		return nil, err
	}
	p.accept(TSymbol, ";")
	if !p.atEOF() {
		return nil, fmt.Errorf("mql: trailing input after statement: %s", p.peek())
	}
	return s, nil
}

// ParseScript parses a ';'-separated sequence of statements.
func ParseScript(src string) ([]Stmt, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.atEOF() {
		if p.accept(TSymbol, ";") {
			continue
		}
		s, err := p.Statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.accept(TSymbol, ";") && !p.atEOF() {
			return nil, fmt.Errorf("mql: expected ';' between statements, got %s", p.peek())
		}
	}
	return out, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) atEOF() bool { return p.peek().Kind == TEOF }

// accept consumes the next token when it matches kind and text.
func (p *Parser) accept(kind TokKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && t.Text == text {
		p.pos++
		return true
	}
	return false
}

// expect consumes a token or fails with a location-bearing error.
func (p *Parser) expect(kind TokKind, text string) error {
	if p.accept(kind, text) {
		return nil
	}
	return fmt.Errorf("mql: expected %q, got %s at offset %d", text, p.peek(), p.peek().Pos)
}

// ident consumes an identifier.
func (p *Parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != TIdent {
		return "", fmt.Errorf("mql: expected identifier, got %s at offset %d", t, t.Pos)
	}
	p.pos++
	return t.Text, nil
}

// hyphenName consumes an identifier possibly containing '-' (atom-type and
// link-type names like state-area are identifiers in the catalog but
// lex as IDENT '-' IDENT because '-' separates structure components).
func (p *Parser) hyphenName() (string, error) {
	first, err := p.ident()
	if err != nil {
		return "", err
	}
	name := first
	for p.peekIs(TSymbol, "-") && p.toks[p.pos+1].Kind == TIdent {
		p.pos++ // '-'
		part, _ := p.ident()
		name += "-" + part
	}
	return name, nil
}

func (p *Parser) peekIs(kind TokKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && t.Text == text
}

// Statement parses one statement.
func (p *Parser) Statement() (Stmt, error) {
	t := p.peek()
	if t.Kind != TKeyword {
		return nil, fmt.Errorf("mql: expected statement keyword, got %s at offset %d", t, t.Pos)
	}
	switch t.Text {
	case "SELECT":
		return p.selectStmt()
	case "DEFINE":
		return p.defineStmt()
	case "CREATE":
		return p.createStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "CONNECT", "DISCONNECT":
		return p.connectStmt()
	case "SHOW":
		return p.showStmt()
	case "EXPLAIN":
		p.pos++
		st := &ExplainStmt{}
		if p.accept(TSymbol, "(") {
			if err := p.expect(TKeyword, "ESTIMATE"); err != nil {
				return nil, err
			}
			if err := p.expect(TSymbol, ")"); err != nil {
				return nil, err
			}
			st.EstimateOnly = true
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		st.Select = sel.(*SelectStmt)
		return st, nil
	case "ANALYZE":
		return p.analyzeStmt()
	case "SET":
		return p.setStmt()
	case "PREPARE":
		return p.prepareStmt()
	case "EXECUTE":
		return p.executeStmt()
	case "BEGIN":
		p.pos++
		p.accept(TKeyword, "TRANSACTION")
		return &BeginStmt{}, nil
	case "COMMIT":
		p.pos++
		p.accept(TKeyword, "TRANSACTION")
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.pos++
		p.accept(TKeyword, "TRANSACTION")
		return &RollbackStmt{}, nil
	case "CHECKPOINT":
		p.pos++
		return &CheckpointStmt{}, nil
	}
	return nil, fmt.Errorf("mql: unknown statement %s at offset %d", t, t.Pos)
}

// analyzeStmt parses ANALYZE [type].
func (p *Parser) analyzeStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "ANALYZE"); err != nil {
		return nil, err
	}
	st := &AnalyzeStmt{}
	if p.peek().Kind == TIdent {
		name, err := p.hyphenName()
		if err != nil {
			return nil, err
		}
		st.Type = name
	}
	return st, nil
}

// setStmt parses SET <option> [=] <literal>.
func (p *Parser) setStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "SET"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.accept(TSymbol, "=")
	v, err := p.literal()
	if err != nil {
		return nil, err
	}
	return &SetStmt{Name: name, Value: v}, nil
}

// prepareStmt parses PREPARE name AS SELECT ... — the SELECT's WHERE
// clause may contain '?' placeholders, bound positionally by EXECUTE.
func (p *Parser) prepareStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "PREPARE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TKeyword, "AS"); err != nil {
		return nil, err
	}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	return &PrepareStmt{Name: name, Select: sel.(*SelectStmt)}, nil
}

// executeStmt parses EXECUTE name [( lit, ... )].
func (p *Parser) executeStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "EXECUTE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &ExecuteStmt{Name: name}
	if p.accept(TSymbol, "(") {
		if !p.peekIs(TSymbol, ")") {
			for {
				v, err := p.literal()
				if err != nil {
					return nil, err
				}
				st.Args = append(st.Args, v)
				if !p.accept(TSymbol, ",") {
					break
				}
			}
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// selectStmt parses SELECT <ALL|COUNT|list> FROM <from> [WHERE pred]
// [GROUP BY attr] [ORDER BY attr [ASC|DESC]] [LIMIT n].
func (p *Parser) selectStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.accept(TKeyword, "COUNT") {
		s.Count = true
	} else if p.accept(TKeyword, "ALL") {
		s.All = true
	} else {
		for {
			item, err := p.projItem()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, item)
			if !p.accept(TSymbol, ",") {
				break
			}
		}
	}
	if err := p.expect(TKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.fromClause()
	if err != nil {
		return nil, err
	}
	s.From = from
	if p.accept(TKeyword, "WHERE") {
		pred, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		s.Where = pred
	}
	if p.accept(TKeyword, "GROUP") {
		if err := p.expect(TKeyword, "BY"); err != nil {
			return nil, err
		}
		if !s.Count {
			return nil, fmt.Errorf("mql: GROUP BY requires SELECT COUNT")
		}
		typ, attr, err := p.attrRef()
		if err != nil {
			return nil, err
		}
		s.GroupBy = &GroupClause{Type: typ, Attr: attr}
	}
	if p.accept(TKeyword, "ORDER") {
		if err := p.expect(TKeyword, "BY"); err != nil {
			return nil, err
		}
		if s.Count {
			return nil, fmt.Errorf("mql: ORDER BY does not combine with SELECT COUNT")
		}
		typ, attr, err := p.attrRef()
		if err != nil {
			return nil, err
		}
		s.OrderBy = &OrderClause{Type: typ, Attr: attr}
		if p.accept(TKeyword, "DESC") {
			s.OrderBy.Desc = true
		} else {
			p.accept(TKeyword, "ASC")
		}
	}
	if p.accept(TKeyword, "LIMIT") {
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("mql: LIMIT must be at least 1")
		}
		s.Limit = int(n)
	}
	return s, nil
}

// attrRef parses [type '.'] attr — the optionally type-qualified root
// attribute of GROUP BY and ORDER BY.
func (p *Parser) attrRef() (typ, attr string, err error) {
	name, err := p.ident()
	if err != nil {
		return "", "", err
	}
	if p.accept(TSymbol, ".") {
		attr, err := p.ident()
		if err != nil {
			return "", "", err
		}
		return name, attr, nil
	}
	return "", name, nil
}

// projItem parses one SELECT-list entry. Hyphens do not appear here; type
// names in projections are plain identifiers (projection targets are atom
// types of the structure).
func (p *Parser) projItem() (ProjItem, error) {
	name, err := p.ident()
	if err != nil {
		return ProjItem{}, err
	}
	item := ProjItem{Type: name}
	if p.accept(TSymbol, ".") {
		attr, err := p.ident()
		if err != nil {
			return ProjItem{}, err
		}
		item.Attrs = []string{attr}
		return item, nil
	}
	if p.accept(TSymbol, "(") {
		for {
			attr, err := p.ident()
			if err != nil {
				return ProjItem{}, err
			}
			item.Attrs = append(item.Attrs, attr)
			if !p.accept(TSymbol, ",") {
				break
			}
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return ProjItem{}, err
		}
	}
	return item, nil
}

// fromClause parses the FROM item.
func (p *Parser) fromClause() (FromClause, error) {
	if p.accept(TKeyword, "RECURSIVE") {
		rc, err := p.recursiveClause()
		if err != nil {
			return FromClause{}, err
		}
		return FromClause{Recursive: rc}, nil
	}
	// Either: name(structure) | structure | name.
	// A bare identifier followed by '(' is a named definition; followed by
	// '-' it starts a chain; otherwise it references a named molecule type
	// (or a single-type structure — the analyzer decides).
	start := p.pos
	name, err := p.ident()
	if err != nil {
		return FromClause{}, err
	}
	if p.accept(TSymbol, "(") {
		node, err := p.structure()
		if err != nil {
			return FromClause{}, err
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return FromClause{}, err
		}
		return FromClause{Name: name, Struct: node}, nil
	}
	// Rewind and parse as a structure chain.
	p.pos = start
	node, err := p.structure()
	if err != nil {
		return FromClause{}, err
	}
	if node.Children == nil {
		// Single identifier: named molecule type reference or single-type
		// structure; keep both name and structure, analyzer resolves.
		return FromClause{Name: node.Type, Struct: node}, nil
	}
	return FromClause{Struct: node}, nil
}

// recursiveClause parses RECURSIVE <type> VIA <link> [UP|DOWN] [DEPTH n].
func (p *Parser) recursiveClause() (*RecursiveClause, error) {
	typ, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TKeyword, "VIA"); err != nil {
		return nil, err
	}
	link, err := p.hyphenName()
	if err != nil {
		return nil, err
	}
	rc := &RecursiveClause{Type: typ, Link: link}
	if p.accept(TKeyword, "UP") {
		rc.Up = true
	} else {
		p.accept(TKeyword, "DOWN")
	}
	if p.accept(TKeyword, "DEPTH") {
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		rc.Depth = int(n)
	}
	return rc, nil
}

// structure parses a chain: node ('-' (ident | '[' link ']' | group))*.
func (p *Parser) structure() (*StructNode, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	root := &StructNode{Type: name}
	cur := root
	pendingLink := ""
	for p.accept(TSymbol, "-") {
		switch {
		case p.accept(TSymbol, "["):
			link, err := p.hyphenName()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TSymbol, "]"); err != nil {
				return nil, err
			}
			pendingLink = link
		case p.peekIs(TSymbol, "("):
			p.pos++ // '('
			for {
				child, err := p.structure()
				if err != nil {
					return nil, err
				}
				cur.Children = append(cur.Children, StructEdge{Link: pendingLink, Node: child})
				pendingLink = ""
				if !p.accept(TSymbol, ",") {
					break
				}
			}
			if err := p.expect(TSymbol, ")"); err != nil {
				return nil, err
			}
			if p.peekIs(TSymbol, "-") {
				return nil, fmt.Errorf("mql: a chain cannot continue after a branch group (offset %d)", p.peek().Pos)
			}
			return root, nil
		default:
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			child := &StructNode{Type: name}
			cur.Children = append(cur.Children, StructEdge{Link: pendingLink, Node: child})
			pendingLink = ""
			cur = child
		}
	}
	if pendingLink != "" {
		return nil, fmt.Errorf("mql: dangling link name [%s] without target", pendingLink)
	}
	return root, nil
}

// defineStmt parses DEFINE MOLECULE TYPE name AS SELECT ...
func (p *Parser) defineStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "DEFINE"); err != nil {
		return nil, err
	}
	if err := p.expect(TKeyword, "MOLECULE"); err != nil {
		return nil, err
	}
	if err := p.expect(TKeyword, "TYPE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TKeyword, "AS"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TKeyword && (t.Text == "UNION" || t.Text == "DIFFERENCE" || t.Text == "INTERSECT") {
		p.pos++
		if err := p.expect(TKeyword, "OF"); err != nil {
			return nil, err
		}
		left, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TKeyword, "AND"); err != nil {
			return nil, err
		}
		right, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DefineStmt{Name: name, SetOp: t.Text, Left: left, Right: right}, nil
	}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	return &DefineStmt{Name: name, Select: sel.(*SelectStmt)}, nil
}

// createStmt parses the CREATE family.
func (p *Parser) createStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.accept(TKeyword, "ATOM"):
		if err := p.expect(TKeyword, "TYPE"); err != nil {
			return nil, err
		}
		name, err := p.hyphenName()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, "("); err != nil {
			return nil, err
		}
		var attrs []model.AttrDesc
		for {
			aname, err := p.ident()
			if err != nil {
				return nil, err
			}
			t := p.peek()
			if t.Kind != TIdent && t.Kind != TKeyword {
				return nil, fmt.Errorf("mql: expected type name after attribute %q", aname)
			}
			p.pos++
			kind, ok := model.KindFromName(t.Text)
			if !ok {
				return nil, fmt.Errorf("mql: unknown attribute type %q", t.Text)
			}
			ad := model.AttrDesc{Name: aname, Kind: kind}
			if p.accept(TKeyword, "NOT") {
				if err := p.expect(TKeyword, "NULL"); err != nil {
					return nil, err
				}
				ad.NotNull = true
			}
			attrs = append(attrs, ad)
			if !p.accept(TSymbol, ",") {
				break
			}
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		return &CreateAtomTypeStmt{Name: name, Attrs: attrs}, nil

	case p.accept(TKeyword, "LINK"):
		if err := p.expect(TKeyword, "TYPE"); err != nil {
			return nil, err
		}
		name, err := p.hyphenName()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TKeyword, "BETWEEN"); err != nil {
			return nil, err
		}
		a, err := p.hyphenName()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TKeyword, "AND"); err != nil {
			return nil, err
		}
		b, err := p.hyphenName()
		if err != nil {
			return nil, err
		}
		desc := model.LinkDesc{SideA: a, SideB: b}
		if p.accept(TKeyword, "CARD") {
			ca, err := p.cardinality()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TSymbol, ","); err != nil {
				return nil, err
			}
			cb, err := p.cardinality()
			if err != nil {
				return nil, err
			}
			desc.CardA, desc.CardB = ca, cb
		}
		return &CreateLinkTypeStmt{Name: name, Desc: desc}, nil

	case p.accept(TKeyword, "INDEX"):
		if err := p.expect(TKeyword, "ON"); err != nil {
			return nil, err
		}
		typ, err := p.hyphenName()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, "("); err != nil {
			return nil, err
		}
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Type: typ, Attr: attr}, nil
	}
	return nil, fmt.Errorf("mql: expected ATOM, LINK or INDEX after CREATE, got %s", p.peek())
}

// cardinality parses "n:m" where each side is an integer or 'n'.
func (p *Parser) cardinality() (model.Cardinality, error) {
	min, err := p.intLit()
	if err != nil {
		return model.Cardinality{}, err
	}
	if err := p.expect(TSymbol, ":"); err != nil {
		return model.Cardinality{}, err
	}
	t := p.peek()
	if t.Kind == TIdent && strings.EqualFold(t.Text, "n") {
		p.pos++
		return model.Cardinality{Min: int(min)}, nil
	}
	max, err := p.intLit()
	if err != nil {
		return model.Cardinality{}, err
	}
	return model.Cardinality{Min: int(min), Max: int(max)}, nil
}

func (p *Parser) intLit() (int64, error) {
	t := p.peek()
	if t.Kind != TNumber {
		return 0, fmt.Errorf("mql: expected number, got %s", t)
	}
	p.pos++
	return strconv.ParseInt(t.Text, 10, 64)
}

// insertStmt parses INSERT INTO type [(attrs)] VALUES (lits)[, ...].
func (p *Parser) insertStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if err := p.expect(TKeyword, "INTO"); err != nil {
		return nil, err
	}
	typ, err := p.hyphenName()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Type: typ}
	if p.accept(TSymbol, "(") {
		for {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Attrs = append(st.Attrs, a)
			if !p.accept(TSymbol, ",") {
				break
			}
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(TKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect(TSymbol, "("); err != nil {
			return nil, err
		}
		var row []model.Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.accept(TSymbol, ",") {
				break
			}
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(TSymbol, ",") {
			break
		}
	}
	return st, nil
}

// literal parses a value literal.
func (p *Parser) literal() (model.Value, error) {
	t := p.peek()
	switch {
	case t.Kind == TNumber:
		p.pos++
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return model.Null(), err
			}
			return model.Float(f), nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return model.Null(), err
		}
		return model.Int(i), nil
	case t.Kind == TString:
		p.pos++
		return model.Str(t.Text), nil
	case t.Kind == TKeyword && t.Text == "TRUE":
		p.pos++
		return model.Bool(true), nil
	case t.Kind == TKeyword && t.Text == "FALSE":
		p.pos++
		return model.Bool(false), nil
	case t.Kind == TKeyword && t.Text == "NULL":
		p.pos++
		return model.Null(), nil
	case t.Kind == TSymbol && t.Text == "-":
		p.pos++
		v, err := p.literal()
		if err != nil {
			return model.Null(), err
		}
		if i, ok := v.AsInt(); ok {
			return model.Int(-i), nil
		}
		if f, ok := v.AsFloat(); ok {
			return model.Float(-f), nil
		}
		return model.Null(), fmt.Errorf("mql: '-' applies to numbers only")
	}
	return model.Null(), fmt.Errorf("mql: expected literal, got %s at offset %d", t, t.Pos)
}

// updateStmt parses UPDATE type SET a = lit [, ...] [WHERE pred].
func (p *Parser) updateStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "UPDATE"); err != nil {
		return nil, err
	}
	typ, err := p.hyphenName()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TKeyword, "SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Type: typ, Set: make(map[string]model.Value)}
	for {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, "="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Set[a] = v
		st.Order = append(st.Order, a)
		if !p.accept(TSymbol, ",") {
			break
		}
	}
	if p.accept(TKeyword, "WHERE") {
		pred, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = pred
	}
	return st, nil
}

// deleteStmt parses DELETE FROM type [WHERE pred].
func (p *Parser) deleteStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "DELETE"); err != nil {
		return nil, err
	}
	if err := p.expect(TKeyword, "FROM"); err != nil {
		return nil, err
	}
	typ, err := p.hyphenName()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Type: typ}
	if p.accept(TKeyword, "WHERE") {
		pred, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = pred
	}
	return st, nil
}

// connectStmt parses CONNECT a [WHERE p] TO b [WHERE q] VIA link, and the
// DISCONNECT variant.
func (p *Parser) connectStmt() (Stmt, error) {
	remove := false
	if p.accept(TKeyword, "DISCONNECT") {
		remove = true
	} else if err := p.expect(TKeyword, "CONNECT"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &ConnectStmt{FromType: from, Remove: remove}
	if p.accept(TKeyword, "WHERE") {
		pred, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.FromWhere = pred
	}
	if err := p.expect(TKeyword, "TO"); err != nil {
		return nil, err
	}
	to, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.ToType = to
	if p.accept(TKeyword, "WHERE") {
		pred, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.ToWhere = pred
	}
	if err := p.expect(TKeyword, "VIA"); err != nil {
		return nil, err
	}
	link, err := p.hyphenName()
	if err != nil {
		return nil, err
	}
	st.Link = link
	return st, nil
}

// showStmt parses SHOW SCHEMA|TYPES|MOLECULE TYPES|INDEXES|STATS|
// HISTOGRAMS|FEEDBACK.
func (p *Parser) showStmt() (Stmt, error) {
	if err := p.expect(TKeyword, "SHOW"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != TKeyword {
		return nil, fmt.Errorf("mql: expected SHOW target, got %s", t)
	}
	p.pos++
	switch t.Text {
	case "SCHEMA", "TYPES", "INDEXES", "STATS", "HISTOGRAMS", "FEEDBACK", "CACHE":
		return &ShowStmt{What: t.Text}, nil
	case "MOLECULE", "MOLECULES":
		p.accept(TKeyword, "TYPES")
		return &ShowStmt{What: "MOLECULES"}, nil
	}
	return nil, fmt.Errorf("mql: unknown SHOW target %s", t)
}

// ---- predicate expressions ----

// orExpr := andExpr (OR andExpr)*
func (p *Parser) orExpr() (expr.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = expr.Or{L: l, R: r}
	}
	return l, nil
}

// andExpr := notExpr (AND notExpr)*
func (p *Parser) andExpr() (expr.Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = expr.And{L: l, R: r}
	}
	return l, nil
}

// notExpr := NOT notExpr | cmpExpr
func (p *Parser) notExpr() (expr.Expr, error) {
	if p.accept(TKeyword, "NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return expr.Not{E: e}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.EQ, "<>": expr.NE, "!=": expr.NE,
	"<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

// cmpExpr := addExpr [cmpOp addExpr]
func (p *Parser) cmpExpr() (expr.Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TSymbol {
		if op, ok := cmpOps[t.Text]; ok {
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return expr.Cmp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

// addExpr := mulExpr (('+'|'-') mulExpr)*
func (p *Parser) addExpr() (expr.Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TSymbol, "+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Arith{Op: expr.Add, L: l, R: r}
		case p.accept(TSymbol, "-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Arith{Op: expr.Sub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

// mulExpr := unary (('*'|'/'|'%') unary)*
func (p *Parser) mulExpr() (expr.Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch {
		case p.accept(TSymbol, "*"):
			op = expr.Mul
		case p.accept(TSymbol, "/"):
			op = expr.Div
		case p.accept(TSymbol, "%"):
			op = expr.Mod
		default:
			return l, nil
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = expr.Arith{Op: op, L: l, R: r}
	}
}

// unaryExpr := primary | '-' unaryExpr
func (p *Parser) unaryExpr() (expr.Expr, error) {
	if p.accept(TSymbol, "-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return expr.Arith{Op: expr.Sub, L: expr.Lit(model.Int(0)), R: e}, nil
	}
	return p.primaryExpr()
}

// primaryExpr := literal | EXISTS '(' ident ')' | COUNT '(' ident ')' |
// func '(' args ')' | ref | '(' orExpr ')'
func (p *Parser) primaryExpr() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TNumber || t.Kind == TString ||
		(t.Kind == TKeyword && (t.Text == "TRUE" || t.Text == "FALSE" || t.Text == "NULL")):
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return expr.Lit(v), nil
	case t.Kind == TKeyword && t.Text == "EXISTS":
		p.pos++
		if err := p.expect(TSymbol, "("); err != nil {
			return nil, err
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		return expr.Exists{Type: typ}, nil
	case t.Kind == TKeyword && t.Text == "COUNT":
		p.pos++
		if err := p.expect(TSymbol, "("); err != nil {
			return nil, err
		}
		typ, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		return expr.CountOf{Type: typ}, nil
	case t.Kind == TSymbol && t.Text == "?":
		p.pos++
		idx := p.params
		p.params++
		return expr.Attr{Type: paramType, Name: strconv.Itoa(idx)}, nil
	case t.Kind == TSymbol && t.Text == "(":
		p.pos++
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TIdent:
		name, _ := p.ident()
		if p.peekIs(TSymbol, "(") {
			// function call
			p.pos++
			var args []expr.Expr
			if !p.peekIs(TSymbol, ")") {
				for {
					a, err := p.orExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(TSymbol, ",") {
						break
					}
				}
			}
			if err := p.expect(TSymbol, ")"); err != nil {
				return nil, err
			}
			return expr.Func{Name: name, Args: args}, nil
		}
		if p.accept(TSymbol, ".") {
			attr, err := p.ident()
			if err != nil {
				return nil, err
			}
			return expr.Attr{Type: name, Name: attr}, nil
		}
		return expr.Attr{Name: name}, nil
	}
	return nil, fmt.Errorf("mql: expected expression, got %s at offset %d", t, t.Pos)
}
