package mql_test

import (
	"strings"
	"testing"

	"mad/internal/model"
	"mad/internal/mql"
	"mad/internal/storage"
)

func TestParseOrderCountGroup(t *testing.T) {
	st, err := mql.Parse("SELECT ALL FROM state-area ORDER BY state.hectare DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*mql.SelectStmt)
	if sel.OrderBy == nil || sel.OrderBy.Type != "state" || sel.OrderBy.Attr != "hectare" || !sel.OrderBy.Desc {
		t.Fatalf("ORDER BY = %+v", sel.OrderBy)
	}
	if sel.Limit != 3 {
		t.Fatalf("limit = %d", sel.Limit)
	}

	st, err = mql.Parse("SELECT COUNT FROM state-area WHERE state.hectare > 500")
	if err != nil {
		t.Fatal(err)
	}
	if sel := st.(*mql.SelectStmt); !sel.Count || sel.Where == nil {
		t.Fatalf("COUNT = %+v", sel)
	}

	st, err = mql.Parse("SELECT COUNT FROM part GROUP BY cat")
	if err != nil {
		t.Fatal(err)
	}
	sel = st.(*mql.SelectStmt)
	if sel.GroupBy == nil || sel.GroupBy.Attr != "cat" || sel.GroupBy.Type != "" {
		t.Fatalf("GROUP BY = %+v", sel.GroupBy)
	}

	// ASC is the default and accepted explicitly.
	st, err = mql.Parse("SELECT ALL FROM state ORDER BY hectare ASC")
	if err != nil {
		t.Fatal(err)
	}
	if sel := st.(*mql.SelectStmt); sel.OrderBy.Desc || sel.OrderBy.Attr != "hectare" {
		t.Fatalf("ORDER BY = %+v", sel.OrderBy)
	}

	for _, bad := range []string{
		"SELECT ALL FROM part GROUP BY cat",           // GROUP BY needs COUNT
		"SELECT COUNT FROM part ORDER BY cat",         // ORDER BY with COUNT
		"SELECT ALL FROM part ORDER BY",               // missing attribute
		"SELECT COUNT FROM part GROUP BY cat LIMIT 0", // LIMIT ≥ 1
	} {
		if _, err := mql.Parse(bad); err == nil {
			t.Fatalf("%q must not parse", bad)
		}
	}
}

// rootOrder drains the statement and returns the value of the given root
// attribute per delivered molecule, in delivery order.
func rootOrder(t *testing.T, s *mql.Session, src, rootType, attr string) []model.Value {
	t.Helper()
	r, err := s.Exec(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	c, ok := s.DB().Container(rootType)
	if !ok {
		t.Fatalf("no container %q", rootType)
	}
	pos, ok := c.Desc().Lookup(attr)
	if !ok {
		t.Fatalf("no attribute %q", attr)
	}
	out := make([]model.Value, 0, len(r.Set))
	for _, m := range r.Set {
		a, ok := c.Get(m.Root())
		if !ok {
			t.Fatalf("root %d vanished", m.Root())
		}
		out = append(out, a.Get(pos))
	}
	return out
}

func TestSelectOrderBy(t *testing.T) {
	s, _ := session(t)
	got := rootOrder(t, s, "SELECT ALL FROM state-area ORDER BY hectare DESC LIMIT 3", "state", "abbrev")
	want := []string{"BA", "MG", "MS"} // 1000, 900, 357
	if len(got) != len(want) {
		t.Fatalf("delivered %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if v, _ := got[i].AsString(); v != w {
			t.Fatalf("position %d: %s, want %s", i, got[i], w)
		}
	}

	// Ascending over the full set: first state alphabetically is Bahia.
	names := rootOrder(t, s, "SELECT ALL FROM state-area ORDER BY name", "state", "name")
	if len(names) != 10 {
		t.Fatalf("delivered %d states, want 10", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1].Compare(names[i]) > 0 {
			t.Fatalf("names not ascending: %s before %s", names[i-1], names[i])
		}
	}
}

func TestExplainOrderPaths(t *testing.T) {
	s, _ := session(t)
	// No index, LIMIT present → the bounded heap.
	r, err := s.Exec("EXPLAIN SELECT ALL FROM state-area ORDER BY hectare LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Message, "[top-k heap]") {
		t.Fatalf("expected top-k heap path:\n%s", r.Message)
	}
	// Index on the ORDER BY attribute → the ordered index ride, no sort.
	if _, err := s.Exec("CREATE INDEX ON state(hectare)"); err != nil {
		t.Fatal(err)
	}
	r, err = s.Exec("EXPLAIN SELECT ALL FROM state-area ORDER BY hectare DESC")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Message, "[index-order]") || !strings.Contains(r.Message, "ordered index walk") {
		t.Fatalf("expected index-order ride:\n%s", r.Message)
	}
}

func TestSelectCount(t *testing.T) {
	s, _ := session(t)
	r, err := s.Exec("SELECT COUNT FROM state-area")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != mql.RCount || r.Count != 10 {
		t.Fatalf("count = %+v", r)
	}
	r, err = s.Exec("SELECT COUNT FROM state-area WHERE state.hectare > 500")
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != 2 { // MG (900) and BA (1000)
		t.Fatalf("filtered count = %d, want 2", r.Count)
	}
	if got := r.Render(s.DB()); !strings.Contains(got, "count: 2") {
		t.Fatalf("rendered: %q", got)
	}
	// The fast path must agree with a LIMIT-capped count.
	r, err = s.Exec("SELECT COUNT FROM state-area LIMIT 4")
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != 4 {
		t.Fatalf("capped count = %d, want 4", r.Count)
	}
	// EXPLAIN annotates the aggregate.
	r, err = s.Exec("EXPLAIN SELECT COUNT FROM state-area")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Message, "aggregate: COUNT") {
		t.Fatalf("explain: %s", r.Message)
	}
}

func TestSelectCountGroupBy(t *testing.T) {
	db := storage.NewDatabase()
	s := mql.NewSession(db)
	if _, err := s.ExecScript(`
		CREATE ATOM TYPE part (cat STRING NOT NULL, n INT);
		INSERT INTO part VALUES ('a', 1), ('a', 2), ('b', 3), ('c', 4), ('a', 5), ('b', 6);
	`); err != nil {
		t.Fatal(err)
	}
	r, err := s.Exec("SELECT COUNT FROM part GROUP BY cat")
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != mql.RCount || r.GroupAttr != "cat" {
		t.Fatalf("result = %+v", r)
	}
	want := []struct {
		val string
		n   int
	}{{"a", 3}, {"b", 2}, {"c", 1}}
	if len(r.Groups) != len(want) {
		t.Fatalf("groups = %+v", r.Groups)
	}
	for i, w := range want {
		v, _ := r.Groups[i].Value.AsString()
		if v != w.val || r.Groups[i].Count != w.n {
			t.Fatalf("group %d = %s:%d, want %s:%d", i, v, r.Groups[i].Count, w.val, w.n)
		}
	}
	// WHERE folds before grouping; LIMIT caps the groups reported, not
	// the molecules counted.
	r, err = s.Exec("SELECT COUNT FROM part WHERE n > 1 GROUP BY cat LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Groups) != 2 || r.Groups[0].Count != 2 || r.Groups[1].Count != 2 {
		t.Fatalf("filtered groups = %+v", r.Groups)
	}
	if got := r.Render(db); !strings.Contains(got, `cat = "a": 2`) {
		t.Fatalf("rendered: %q", got)
	}
}

func TestOrderByValidation(t *testing.T) {
	s, _ := session(t)
	if _, err := s.Exec("SELECT ALL FROM state-area ORDER BY area.tag"); err == nil {
		t.Fatal("ORDER BY a non-root type must fail")
	}
	if _, err := s.Exec("SELECT ALL FROM state-area ORDER BY nope"); err == nil {
		t.Fatal("ORDER BY an unknown attribute must fail")
	}
	if _, err := s.Exec("SELECT COUNT FROM state-area GROUP BY area.tag"); err == nil {
		t.Fatal("GROUP BY a non-root type must fail")
	}
}
