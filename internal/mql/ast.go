package mql

import (
	"strings"

	"mad/internal/expr"
	"mad/internal/model"
)

// Stmt is any parsed MQL statement.
type Stmt interface{ stmt() }

// StructNode is one node of a parsed molecule structure: an atom type and
// its outgoing branches.
type StructNode struct {
	Type     string
	Children []StructEdge
}

// StructEdge is one outgoing branch: an optional explicit link-type name
// (empty = resolve the unique link between the adjacent types) and the
// child subtree.
type StructEdge struct {
	Link string
	Node *StructNode
}

// String renders the structure in the paper's chain syntax.
func (n *StructNode) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *StructNode) render(b *strings.Builder) {
	b.WriteString(n.Type)
	switch len(n.Children) {
	case 0:
	case 1:
		e := n.Children[0]
		b.WriteByte('-')
		if e.Link != "" {
			b.WriteString("[" + e.Link + "]-")
		}
		e.Node.render(b)
	default:
		b.WriteString("-(")
		for i, e := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			if e.Link != "" {
				b.WriteString("[" + e.Link + "]-")
			}
			e.Node.render(b)
		}
		b.WriteByte(')')
	}
}

// ProjItem is one SELECT-list entry: an atom type, optionally narrowed to
// specific attributes (state, state.name, state(name, hectare)).
type ProjItem struct {
	Type  string
	Attrs []string // nil = all attributes
}

// FromClause is the FROM part of a SELECT: either a structure (optionally
// named, defining a molecule type on the fly, as in
// mt_state(state-area-edge-point)), a reference to a previously defined
// named molecule type, or a recursive structure over a reflexive link.
type FromClause struct {
	// Name is the optional molecule-type name.
	Name string
	// Struct is the parsed structure; nil when referencing a named type
	// or using RECURSIVE.
	Struct *StructNode
	// Recursive describes FROM RECURSIVE <type> VIA <link> [UP|DOWN]
	// [DEPTH n].
	Recursive *RecursiveClause
}

// RecursiveClause is the recursive molecule structure of Chapter 5 /
// [Schö89]: a root atom type closed transitively over a reflexive link
// type.
type RecursiveClause struct {
	Type  string
	Link  string
	Up    bool // super-component view instead of sub-component view
	Depth int  // 0 = unbounded
}

// OrderClause is ORDER BY [type.]attr [ASC|DESC]. The attribute must
// belong to the structure's root type: molecules order by their root
// atom's value, ties broken by root atom ID ascending. An empty Type
// defaults to the root.
type OrderClause struct {
	Type string
	Attr string
	Desc bool
}

// GroupClause is GROUP BY [type.]attr, valid only with SELECT COUNT:
// the stream's molecules fold into one count per distinct root-attribute
// value without ever materializing the result set.
type GroupClause struct {
	Type string
	Attr string
}

// SelectStmt is
//
//	SELECT <list|ALL|COUNT> FROM <from> [WHERE <pred>]
//	    [GROUP BY attr] [ORDER BY attr [ASC|DESC]] [LIMIT n].
type SelectStmt struct {
	All   bool
	Items []ProjItem
	// Count marks SELECT COUNT — the statement returns how many
	// molecules qualify (per group when GroupBy is set) instead of the
	// molecules themselves.
	Count bool
	From  FromClause
	Where expr.Expr
	// GroupBy folds SELECT COUNT into per-group counts.
	GroupBy *GroupClause
	// OrderBy delivers molecules sorted by a root attribute; the planner
	// rides an ordered index when one covers the attribute and otherwise
	// reorders the stream (bounded top-K heap under LIMIT, terminal sort
	// without).
	OrderBy *OrderClause
	// Limit caps the molecules delivered (0 = no limit); execution
	// cancels the in-flight derivation once the cap is reached.
	Limit int
}

func (*SelectStmt) stmt() {}

// DefineStmt is DEFINE MOLECULE TYPE <name> AS <body> — the algebra mode:
// operators run with propagation and the result registers under the name.
// The body is either a SELECT (α, Σ, Π) or a set operation over two
// previously defined molecule types (Ω, Δ, Ψ):
//
//	DEFINE MOLECULE TYPE u AS UNION OF a AND b;
//	DEFINE MOLECULE TYPE d AS DIFFERENCE OF a AND b;
//	DEFINE MOLECULE TYPE i AS INTERSECT OF a AND b;
type DefineStmt struct {
	Name   string
	Select *SelectStmt
	// SetOp is "UNION", "DIFFERENCE" or "INTERSECT" when the body is a
	// set operation; Left and Right name the operand molecule types.
	SetOp       string
	Left, Right string
}

func (*DefineStmt) stmt() {}

// CreateAtomTypeStmt is CREATE ATOM TYPE name (attr KIND [NOT NULL], ...).
type CreateAtomTypeStmt struct {
	Name  string
	Attrs []model.AttrDesc
}

func (*CreateAtomTypeStmt) stmt() {}

// CreateLinkTypeStmt is CREATE LINK TYPE name BETWEEN a AND b
// [CARD x:y, x:y].
type CreateLinkTypeStmt struct {
	Name string
	Desc model.LinkDesc
}

func (*CreateLinkTypeStmt) stmt() {}

// CreateIndexStmt is CREATE INDEX ON type(attr).
type CreateIndexStmt struct {
	Type string
	Attr string
}

func (*CreateIndexStmt) stmt() {}

// InsertStmt is INSERT INTO type [(attrs)] VALUES (lits) [, (lits)]*.
type InsertStmt struct {
	Type  string
	Attrs []string // nil = declaration order
	Rows  [][]model.Value
}

func (*InsertStmt) stmt() {}

// UpdateStmt is UPDATE type SET attr = lit [, ...] [WHERE pred].
type UpdateStmt struct {
	Type  string
	Set   map[string]model.Value
	Order []string // SET clause order, for deterministic reporting
	Where expr.Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM type [WHERE pred].
type DeleteStmt struct {
	Type  string
	Where expr.Expr
}

func (*DeleteStmt) stmt() {}

// ConnectStmt is CONNECT a [WHERE p] TO b [WHERE q] VIA link — it links
// every selected a-atom with every selected b-atom. DisconnectStmt is the
// inverse.
type ConnectStmt struct {
	FromType  string
	FromWhere expr.Expr
	ToType    string
	ToWhere   expr.Expr
	Link      string
	Remove    bool // DISCONNECT
}

func (*ConnectStmt) stmt() {}

// ShowStmt is SHOW SCHEMA | TYPES | MOLECULE TYPES | INDEXES | STATS |
// HISTOGRAMS.
type ShowStmt struct {
	What string // "SCHEMA", "TYPES", "MOLECULES", "INDEXES", "STATS", "HISTOGRAMS"
}

func (*ShowStmt) stmt() {}

// ExplainStmt is EXPLAIN [(ESTIMATE)] SELECT ... — it reports the plan
// instead of returning molecules. The plain form executes the plan so
// the rendering carries actual cardinalities next to the estimates; the
// ESTIMATE form only compiles, for planning against expensive queries.
type ExplainStmt struct {
	Select *SelectStmt
	// EstimateOnly suppresses execution (EXPLAIN (ESTIMATE)).
	EstimateOnly bool
}

func (*ExplainStmt) stmt() {}

// PrepareStmt is PREPARE name AS SELECT ... — it parses and shape-keys a
// parameterized SELECT whose WHERE clause may contain '?' placeholders.
// Later EXECUTEs bind literals to the placeholders and plan through the
// shape-keyed cache entry, so repeated point queries stop recompiling on
// literal text.
type PrepareStmt struct {
	Name   string
	Select *SelectStmt
}

func (*PrepareStmt) stmt() {}

// ExecuteStmt is EXECUTE name [(lit, ...)] — it runs a PREPARE'd
// statement with the given literals bound to its placeholders in order.
type ExecuteStmt struct {
	Name string
	Args []model.Value
}

func (*ExecuteStmt) stmt() {}

// SetStmt is SET <option> [=] <literal> — per-session execution options
// threaded into subsequent query plans: SET WORKERS n bounds the worker
// pool (0 = all cores), SET NOCACHE TRUE bypasses the plan cache.
type SetStmt struct {
	Name  string
	Value model.Value
}

func (*SetStmt) stmt() {}

// AnalyzeStmt is ANALYZE [type] — it (re)builds the equi-depth
// histograms the planner estimates selectivities from, over one atom
// type or all of them, and invalidates cached plans.
type AnalyzeStmt struct {
	Type string // "" = every atom type
}

func (*AnalyzeStmt) stmt() {}

// CheckpointStmt is CHECKPOINT — it writes a consistent snapshot of the
// database (data, indexes, histograms, feedback) and truncates the
// write-ahead log below it. It errs on an in-memory database.
type CheckpointStmt struct{}

func (*CheckpointStmt) stmt() {}

// BeginStmt is BEGIN [TRANSACTION] — it opens a buffered-write
// transaction on the session, pinned to a snapshot of the latest commit:
// subsequent DML buffers into it and SELECTs read the begin snapshot
// until COMMIT or ROLLBACK ends it.
type BeginStmt struct{}

func (*BeginStmt) stmt() {}

// CommitStmt is COMMIT [TRANSACTION] — it installs every mutation
// buffered since BEGIN atomically, under one commit timestamp.
type CommitStmt struct{}

func (*CommitStmt) stmt() {}

// RollbackStmt is ROLLBACK [TRANSACTION] — it discards the buffered
// mutations; nothing ever becomes visible.
type RollbackStmt struct{}

func (*RollbackStmt) stmt() {}
