package mql_test

import (
	"strings"
	"testing"

	"mad/internal/mql"
	"mad/internal/plan"
)

func TestAnalyzeStatement(t *testing.T) {
	sess, s := session(t)
	res, err := sess.Exec("ANALYZE state;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "histogram") {
		t.Fatalf("ANALYZE message: %s", res.Message)
	}
	if _, ok := s.DB.Histogram("state", "hectare"); !ok {
		t.Fatal("ANALYZE state must build a histogram on state.hectare")
	}
	if _, ok := s.DB.Histogram("area", "tag"); ok {
		t.Fatal("ANALYZE state must not touch other types")
	}
	if _, err := sess.Exec("ANALYZE;"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.DB.Histogram("area", "tag"); !ok {
		t.Fatal("bare ANALYZE must cover every atom type")
	}
	if _, err := sess.Exec("ANALYZE nosuch;"); err == nil {
		t.Fatal("ANALYZE of an unknown type must fail")
	}

	show, err := sess.Exec("SHOW HISTOGRAMS;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(show.Message, "HISTOGRAM ON state.hectare") {
		t.Fatalf("SHOW HISTOGRAMS: %s", show.Message)
	}
}

func TestExplainEstimateDoesNotExecute(t *testing.T) {
	sess, s := session(t)
	if err := s.DB.CreateIndex("state", "abbrev"); err != nil {
		t.Fatal(err)
	}
	q := "SELECT ALL FROM state-area-edge-point WHERE state.abbrev = 'SP';"

	s.DB.Stats().Reset()
	res, err := sess.Exec("EXPLAIN (ESTIMATE) " + q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != mql.RPlan {
		t.Fatalf("kind = %v", res.Kind)
	}
	if !strings.Contains(res.Message, "est ≈") {
		t.Fatalf("estimate missing:\n%s", res.Message)
	}
	if strings.Contains(res.Message, "actual") {
		t.Fatalf("EXPLAIN (ESTIMATE) must not report actuals:\n%s", res.Message)
	}
	if w := s.DB.Stats().Snapshot(); w.AtomsFetched != 0 || w.LinksTraversed != 0 {
		t.Fatalf("EXPLAIN (ESTIMATE) touched the database: %s", w)
	}

	// The plain form still executes and reports actuals.
	res, err = sess.Exec("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "actual") {
		t.Fatalf("plain EXPLAIN must report actuals:\n%s", res.Message)
	}
}

// TestSessionPlanCacheProbe is the compile-count probe of the acceptance
// criteria: repeated execution of a named-molecule SELECT skips
// recompilation, and both DDL and ANALYZE bust the cache.
func TestSessionPlanCacheProbe(t *testing.T) {
	sess, s := session(t)
	cache := plan.CacheFor(s.DB)
	if _, err := sess.Exec("DEFINE MOLECULE TYPE mt_st AS SELECT ALL FROM state-area;"); err != nil {
		t.Fatal(err)
	}
	_, _, base := cache.Counters()

	q := "SELECT ALL FROM mt_st WHERE hectare > 100;"
	for i := 0; i < 4; i++ {
		if _, err := sess.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, compiles := cache.Counters(); compiles != base+1 {
		t.Fatalf("4 executions compiled %d plans, want 1", compiles-base)
	}

	// A second session over the same database shares the cache: named
	// types are session-local, but the cache keys on the structure, so
	// the same query phrased structurally reuses the compilation.
	if _, err := mql.NewSession(s.DB).Exec("SELECT ALL FROM state-area WHERE hectare > 100;"); err != nil {
		t.Fatal(err)
	}
	if _, _, compiles := cache.Counters(); compiles != base+1 {
		t.Fatal("sessions over one database must share compiled plans")
	}

	// DDL busts it.
	if _, err := sess.Exec("CREATE INDEX ON state(abbrev);"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(q); err != nil {
		t.Fatal(err)
	}
	if _, _, compiles := cache.Counters(); compiles != base+2 {
		t.Fatalf("CREATE INDEX must invalidate cached plans (compiles %d, want %d)", compiles, base+2)
	}

	// ANALYZE busts it again.
	if _, err := sess.Exec("ANALYZE state;"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(q); err != nil {
		t.Fatal(err)
	}
	if _, _, compiles := cache.Counters(); compiles != base+3 {
		t.Fatalf("ANALYZE must invalidate cached plans (compiles %d, want %d)", compiles, base+3)
	}
	// And once rebuilt, it stays warm.
	if _, err := sess.Exec(q); err != nil {
		t.Fatal(err)
	}
	if _, _, compiles := cache.Counters(); compiles != base+3 {
		t.Fatal("cache must warm again after invalidation")
	}
}
