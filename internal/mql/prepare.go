package mql

import (
	"context"
	"fmt"
	"strconv"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
)

// preparedStmt is one PREPARE'd statement: the parsed SELECT with its
// placeholder sentinels still in place, the resolved structure, and the
// shape key every EXECUTE plans through. The shape key is computed over
// the placeholder-canonicalized predicate, so all bindings of the same
// statement share one plan-cache entry.
type preparedStmt struct {
	sel      *SelectStmt
	desc     *core.Desc
	shapeKey string
	nparams  int
}

// execPrepare resolves and shape-keys a PREPARE name AS SELECT. The
// structure resolves now (errors surface at PREPARE time); the predicate
// is only checked at EXECUTE, once the placeholders hold real literals.
func (s *Session) execPrepare(st *PrepareStmt) (*Result, error) {
	if _, dup := s.prepared[st.Name]; dup {
		return nil, fmt.Errorf("mql: statement %q already prepared", st.Name)
	}
	sel := st.Select
	mt, rt, err := s.resolveFrom(sel.From)
	if err != nil {
		return nil, err
	}
	if rt != nil {
		return nil, fmt.Errorf("mql: PREPARE does not support recursive structures")
	}
	desc := mt.Desc()
	var order *plan.OrderBy
	if sel.OrderBy != nil {
		if sel.OrderBy.Type != "" && sel.OrderBy.Type != desc.Root() {
			return nil, fmt.Errorf("mql: ORDER BY %s.%s: molecules order by their root type %q",
				sel.OrderBy.Type, sel.OrderBy.Attr, desc.Root())
		}
		order = &plan.OrderBy{Attr: sel.OrderBy.Attr, Desc: sel.OrderBy.Desc}
	}
	ps := &preparedStmt{
		sel:      sel,
		desc:     desc,
		shapeKey: plan.ShapeKey(desc, sel.Where, order),
		nparams:  countParams(sel.Where),
	}
	s.prepared[st.Name] = ps
	return &Result{Kind: RMessage, Message: fmt.Sprintf(
		"statement %q prepared (%d parameter(s))", st.Name, ps.nparams)}, nil
}

// execExecute binds the EXECUTE literals into the prepared statement's
// placeholders and runs the SELECT through the shape-keyed plan cache:
// a repeat execution with different literals hits the cached compilation
// and rebinds it instead of recompiling.
func (s *Session) execExecute(st *ExecuteStmt) (*Result, error) {
	ps, ok := s.prepared[st.Name]
	if !ok {
		return nil, fmt.Errorf("mql: no prepared statement %q", st.Name)
	}
	if len(st.Args) != ps.nparams {
		return nil, fmt.Errorf("mql: statement %q takes %d parameter(s), got %d",
			st.Name, ps.nparams, len(st.Args))
	}
	bound := *ps.sel
	if ps.sel.Where != nil {
		bound.Where = bindParams(ps.sel.Where, st.Args)
	}
	ctx := context.Background()
	o := queryOpts{shapeKey: ps.shapeKey}
	desc := ps.desc
	if s.txn != nil && s.txn.Dirty() {
		// Read-your-writes: same eager effective-view path as a plain
		// SELECT inside a dirty transaction.
		return s.execSelectEff(ctx, &bound, desc, o)
	}
	if bound.Count {
		return s.execCount(ctx, &bound, desc, o)
	}
	p, err := s.planSelect(&bound, desc, o)
	if err != nil {
		return nil, err
	}
	sub, attrs, err := s.projectionSpec(&bound, desc)
	if err != nil {
		return nil, err
	}
	var stream *plan.Stream
	if s.txn != nil {
		stream, err = p.StreamAt(ctx, s.txn.Snapshot())
	} else {
		stream, err = p.Stream(ctx)
	}
	if err != nil {
		return nil, err
	}
	cur := &Cursor{db: s.db, stream: stream, desc: desc, sub: sub, attrs: attrs}
	if sub != nil {
		cur.desc = sub
	}
	defer cur.Close()
	return cur.Result()
}

// countParams returns how many distinct placeholder ordinals pred binds
// (placeholders number densely from 0 in syntactic order, so the count is
// one past the highest ordinal).
func countParams(pred expr.Expr) int {
	n := 0
	for _, a := range expr.References(pred) {
		if a.Type != paramType {
			continue
		}
		if i, err := strconv.Atoi(a.Name); err == nil && i+1 > n {
			n = i + 1
		}
	}
	return n
}

// bindParams replaces every placeholder sentinel in the tree with the
// literal bound at its ordinal, leaving everything else untouched.
func bindParams(e expr.Expr, args []model.Value) expr.Expr {
	switch n := e.(type) {
	case expr.Attr:
		if n.Type == paramType {
			if i, err := strconv.Atoi(n.Name); err == nil && i >= 0 && i < len(args) {
				return expr.Lit(args[i])
			}
		}
		return n
	case expr.Cmp:
		return expr.Cmp{Op: n.Op, L: bindParams(n.L, args), R: bindParams(n.R, args)}
	case expr.And:
		return expr.And{L: bindParams(n.L, args), R: bindParams(n.R, args)}
	case expr.Or:
		return expr.Or{L: bindParams(n.L, args), R: bindParams(n.R, args)}
	case expr.Not:
		return expr.Not{E: bindParams(n.E, args)}
	case expr.Arith:
		return expr.Arith{Op: n.Op, L: bindParams(n.L, args), R: bindParams(n.R, args)}
	case expr.All:
		return expr.All{Attr: n.Attr, Op: n.Op, R: bindParams(n.R, args)}
	case expr.Func:
		out := expr.Func{Name: n.Name, Args: make([]expr.Expr, len(n.Args))}
		for i, a := range n.Args {
			out.Args[i] = bindParams(a, args)
		}
		return out
	default:
		return e
	}
}
