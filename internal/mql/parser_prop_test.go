package mql_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mad/internal/mql"
)

// randStructure builds a random structure AST with unique type names.
func randStructure(rng *rand.Rand) *mql.StructNode {
	counter := 0
	newName := func() string {
		counter++
		return "t" + string(rune('a'+counter%26)) + itoa(counter)
	}
	var build func(depth int) *mql.StructNode
	build = func(depth int) *mql.StructNode {
		n := &mql.StructNode{Type: newName()}
		if depth >= 3 {
			return n
		}
		switch rng.Intn(4) {
		case 0: // leaf
		case 1: // chain
			child := build(depth + 1)
			n.Children = []mql.StructEdge{{Node: child}}
		case 2: // chain with explicit link
			child := build(depth + 1)
			n.Children = []mql.StructEdge{{Link: "lnk-" + child.Type, Node: child}}
		case 3: // branch
			k := 2 + rng.Intn(2)
			for i := 0; i < k; i++ {
				n.Children = append(n.Children, mql.StructEdge{Node: build(depth + 1)})
			}
		}
		return n
	}
	return build(0)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestStructureRenderReparseRoundTrip: rendering a random structure AST
// and reparsing it yields the same tree (modulo the branch-group detail
// that a single child renders as a chain).
func TestStructureRenderReparseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randStructure(rng)
		src := "SELECT ALL FROM " + orig.String()
		stmt, err := mql.Parse(src)
		if err != nil {
			t.Logf("reparse of %q failed: %v", orig, err)
			return false
		}
		sel, ok := stmt.(*mql.SelectStmt)
		if !ok || sel.From.Struct == nil {
			return false
		}
		got := sel.From.Struct.String()
		want := orig.String()
		if got != want {
			t.Logf("round trip: %q vs %q", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPredicateRenderReparse: the String() of a parsed WHERE predicate
// reparses to a predicate with the same rendering (fixed point after one
// round).
func TestPredicateRenderReparse(t *testing.T) {
	preds := []string{
		"a.x = 1",
		"a.x <> 'str'",
		"a.x > 1 AND b.y < 2.5",
		"NOT (a.x = 1 OR b.y = 2)",
		"EXISTS(net) AND COUNT(edge) >= 3",
		"LEN(name) + 1 = 5",
		"a.x * 2 - 1 >= b.y % 3",
		"CONTAINS(name, 'pn') OR PREFIX(name, 'p_')",
	}
	for _, p := range preds {
		stmt, err := mql.Parse("SELECT ALL FROM t WHERE " + p)
		if err != nil {
			t.Fatalf("parse %q: %v", p, err)
		}
		first := stmt.(*mql.SelectStmt).Where.String()
		stmt2, err := mql.Parse("SELECT ALL FROM t WHERE " + first)
		if err != nil {
			t.Fatalf("reparse %q (rendered %q): %v", p, first, err)
		}
		second := stmt2.(*mql.SelectStmt).Where.String()
		if first != second {
			t.Errorf("not a fixed point: %q → %q", first, second)
		}
	}
}

// TestParserRejectsDeepGarbage throws random token soup at the parser and
// requires it to fail cleanly (no panic) on junk.
func TestParserRejectsDeepGarbage(t *testing.T) {
	pieces := []string{
		"SELECT", "FROM", "WHERE", "ALL", "(", ")", "-", ",", ";",
		"ident", "'str'", "3.5", "=", "AND", "[", "]", ".",
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(pieces[rng.Intn(len(pieces))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		// Must not panic; errors are fine and expected.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			_, _ = mql.Parse(src)
		}()
	}
}
