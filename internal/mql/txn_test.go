package mql_test

import (
	"strings"
	"testing"

	"mad/internal/mql"
	"mad/internal/storage"
)

// txnSession builds a small parts/supplier schema shared by the
// transaction tests and returns two sessions over the same database —
// one to run the transaction, one to observe it from outside.
func txnSession(t *testing.T) (*storage.Database, *mql.Session, *mql.Session) {
	t.Helper()
	db := storage.NewDatabase()
	sess := mql.NewSession(db)
	script := `
CREATE ATOM TYPE parts (name STRING NOT NULL, weight FLOAT);
CREATE ATOM TYPE supplier (name STRING NOT NULL);
CREATE LINK TYPE supplies BETWEEN supplier AND parts;
INSERT INTO parts VALUES ('engine', 120.5), ('piston', 2.5);
INSERT INTO supplier VALUES ('acme');
CONNECT supplier WHERE name = 'acme' TO parts WHERE name = 'engine' VIA supplies;
`
	if _, err := sess.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return db, sess, mql.NewSession(db)
}

func countParts(t *testing.T, s *mql.Session) int {
	t.Helper()
	r, err := s.Exec("SELECT ALL FROM parts;")
	if err != nil {
		t.Fatal(err)
	}
	return len(r.Set)
}

func TestTxnCommitMakesWritesVisibleAtomically(t *testing.T) {
	db, sess, other := txnSession(t)
	if _, err := sess.Exec("BEGIN;"); err != nil {
		t.Fatal(err)
	}
	if !sess.InTxn() {
		t.Fatal("InTxn false after BEGIN")
	}
	script := `
INSERT INTO parts VALUES ('ring', 0.1);
INSERT INTO parts VALUES ('bolt', 0.05);
CONNECT supplier WHERE name = 'acme' TO parts WHERE name = 'piston' VIA supplies;
`
	if _, err := sess.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	// Buffered writes are invisible to everyone else until COMMIT — to
	// other sessions and to the raw database — but the writing session's
	// own SELECTs are read-your-writes: they see the buffered inserts.
	if n := countParts(t, other); n != 2 {
		t.Fatalf("other session sees %d parts before commit", n)
	}
	if n, _ := db.CountAtoms("parts"); n != 2 {
		t.Fatalf("db sees %d parts before commit", n)
	}
	if n := countParts(t, sess); n != 4 {
		t.Fatalf("txn session sees %d parts before commit (read-your-writes must show its own inserts)", n)
	}
	r, err := sess.Exec("COMMIT;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Message, "committed 3 mutation(s)") {
		t.Fatalf("commit message: %q", r.Message)
	}
	if sess.InTxn() {
		t.Fatal("InTxn true after COMMIT")
	}
	if n := countParts(t, other); n != 4 {
		t.Fatalf("parts after commit = %d", n)
	}
	if n, _ := db.CountLinks("supplies"); n != 2 {
		t.Fatalf("supplies after commit = %d", n)
	}
}

func TestTxnRollbackDiscardsBufferedWrites(t *testing.T) {
	db, sess, other := txnSession(t)
	if _, err := sess.Exec("BEGIN TRANSACTION;"); err != nil {
		t.Fatal(err)
	}
	script := `
INSERT INTO parts VALUES ('ring', 0.1);
UPDATE parts SET weight = 9.9 WHERE name = 'piston';
DELETE FROM parts WHERE name = 'engine';
`
	if _, err := sess.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	r, err := sess.Exec("ROLLBACK;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Message, "rolled back") {
		t.Fatalf("rollback message: %q", r.Message)
	}
	if n := countParts(t, other); n != 2 {
		t.Fatalf("parts after rollback = %d", n)
	}
	if n, _ := db.CountLinks("supplies"); n != 1 {
		t.Fatalf("supplies after rollback = %d", n)
	}
	if n := db.VersionCount(); n == 0 {
		t.Fatal("sanity: version chains empty")
	}
	// The rolled-back UPDATE must not have touched piston.
	res, err := other.Exec("SELECT ALL FROM parts WHERE parts.weight > 5.0;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 { // engine only
		t.Fatalf("heavy parts after rollback = %d", len(res.Set))
	}
}

func TestTxnSelectReadsBeginSnapshot(t *testing.T) {
	_, sess, other := txnSession(t)
	if _, err := sess.Exec("BEGIN;"); err != nil {
		t.Fatal(err)
	}
	// A concurrent auto-commit writer installs a new part mid-transaction.
	if _, err := other.Exec("INSERT INTO parts VALUES ('gasket', 0.2);"); err != nil {
		t.Fatal(err)
	}
	// The transaction still reads its begin snapshot...
	if n := countParts(t, sess); n != 2 {
		t.Fatalf("txn SELECT sees %d parts (begin snapshot has 2)", n)
	}
	// ...and its predicates match against that snapshot too: the
	// concurrently inserted atom is not visible to UPDATE either.
	if r, err := sess.Exec("UPDATE parts SET weight = 1.0 WHERE name = 'gasket';"); err != nil || r.Affected != 0 {
		t.Fatalf("txn UPDATE of invisible atom: affected=%d err=%v", r.Affected, err)
	}
	if _, err := sess.Exec("COMMIT;"); err != nil {
		t.Fatal(err)
	}
	// Out of the transaction the session reads latest again.
	if n := countParts(t, sess); n != 3 {
		t.Fatalf("parts after commit = %d", n)
	}
}

func TestTxnDMLTargetsOwnBufferedWrites(t *testing.T) {
	db, sess, other := txnSession(t)
	if _, err := sess.Exec("BEGIN;"); err != nil {
		t.Fatal(err)
	}
	// DML predicates match the transaction's effective view: the INSERT
	// below is invisible to SELECT but targetable by UPDATE and CONNECT.
	script := `
INSERT INTO parts VALUES ('ring', 0.1);
UPDATE parts SET weight = 0.2 WHERE name = 'ring';
CONNECT supplier WHERE name = 'acme' TO parts WHERE name = 'ring' VIA supplies;
`
	if _, err := sess.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	if r, err := sess.Exec("UPDATE parts SET weight = 0.3 WHERE name = 'ring';"); err != nil || r.Affected != 1 {
		t.Fatalf("update own insert: affected=%d err=%v", r.Affected, err)
	}
	// A buffered delete hides the atom from later statements of the
	// same transaction.
	if r, err := sess.Exec("DELETE FROM parts WHERE name = 'ring';"); err != nil || r.Affected != 1 {
		t.Fatalf("delete own insert: affected=%d err=%v", r.Affected, err)
	}
	if r, err := sess.Exec("UPDATE parts SET weight = 0.4 WHERE name = 'ring';"); err != nil || r.Affected != 0 {
		t.Fatalf("update after buffered delete: affected=%d err=%v", r.Affected, err)
	}
	if _, err := sess.Exec("COMMIT;"); err != nil {
		t.Fatal(err)
	}
	// The insert/update/connect/delete sequence nets out to no ring atom
	// and the original link set.
	if n := countParts(t, other); n != 2 {
		t.Fatalf("parts after commit = %d", n)
	}
	if n, _ := db.CountLinks("supplies"); n != 1 {
		t.Fatalf("supplies after commit = %d", n)
	}
}

func TestTxnStatementErrors(t *testing.T) {
	_, sess, _ := txnSession(t)
	if _, err := sess.Exec("COMMIT;"); err == nil || !strings.Contains(err.Error(), "no transaction") {
		t.Fatalf("COMMIT without txn: %v", err)
	}
	if _, err := sess.Exec("ROLLBACK;"); err == nil || !strings.Contains(err.Error(), "no transaction") {
		t.Fatalf("ROLLBACK without txn: %v", err)
	}
	if _, err := sess.Exec("BEGIN;"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("BEGIN;"); err == nil || !strings.Contains(err.Error(), "already open") {
		t.Fatalf("double BEGIN: %v", err)
	}
	// The failed BEGIN must not have clobbered the open transaction.
	if !sess.InTxn() {
		t.Fatal("transaction lost after rejected BEGIN")
	}
	if _, err := sess.Exec("ROLLBACK;"); err != nil {
		t.Fatal(err)
	}
}

func TestSessionCloseRollsBackOpenTxn(t *testing.T) {
	db, sess, other := txnSession(t)
	if _, err := sess.Exec("BEGIN;"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO parts VALUES ('ring', 0.1);"); err != nil {
		t.Fatal(err)
	}
	before := db.VersionCount()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if sess.InTxn() {
		t.Fatal("InTxn true after Close")
	}
	if n := countParts(t, other); n != 2 {
		t.Fatalf("parts after abandoned session = %d", n)
	}
	if after := db.VersionCount(); after != before {
		t.Fatalf("abandoned txn changed version count: %d -> %d", before, after)
	}
	// With no snapshot pinning the horizon anymore, vacuum reaches a
	// fixpoint (the abandoned BEGIN released its snapshot).
	db.Vacuum()
	if st := db.Vacuum(); st.Reclaimed != 0 {
		t.Fatalf("vacuum not at fixpoint after session close: %+v", st)
	}
	if err := sess.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
}
