package mql

import (
	"context"
	"fmt"
	"iter"
	"sort"

	"mad/internal/core"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/recursive"
	"mad/internal/storage"
)

// queryOpts carries the per-query execution options of one QueryContext
// call; unset fields fall back to the session's SET defaults and the
// statement's own LIMIT clause.
type queryOpts struct {
	workers    int
	workersSet bool
	limit      int
	limitSet   bool
	noCache    bool
	// shapeKey, when set, plans through the shape-keyed plan-cache entry
	// of a PREPARE'd statement instead of the literal cache key.
	shapeKey string
}

// QueryOption tunes one QueryContext call. Options override the
// session-level SET defaults and the statement's LIMIT clause for this
// query only.
type QueryOption func(*queryOpts)

// WithWorkers bounds the worker pool the query's derivation fans out
// over: 0 selects all cores, 1 forces sequential execution.
func WithWorkers(n int) QueryOption {
	return func(o *queryOpts) { o.workers, o.workersSet = n, true }
}

// WithLimit caps the molecules the cursor delivers; the in-flight
// derivation is cancelled once the cap is reached. 0 removes a LIMIT
// the statement itself carries.
func WithLimit(n int) QueryOption {
	return func(o *queryOpts) { o.limit, o.limitSet = n, true }
}

// WithNoCache bypasses the plan cache for this query: the plan is
// compiled fresh and not memoized — useful for one-off ad-hoc
// statements that should not evict hot cached plans.
func WithNoCache() QueryOption {
	return func(o *queryOpts) { o.noCache = true }
}

// Cursor is the streaming result of one statement. For a non-recursive
// SELECT it wraps a plan.Stream: molecules arrive incrementally, in the
// deterministic root-aligned execution order, with the projection of the
// SELECT list applied molecule by molecule — the first result is
// available while the bulk of the root batch is still deriving, and
// cancelling the query's context stops the worker pool mid-derivation.
// Every other statement (DDL, DML, SHOW, EXPLAIN, recursive SELECT)
// executes eagerly and carries its Result immediately; Next then reports
// exhaustion straight away.
//
// A Cursor must be drained (Next returning nil, nil) or Closed; like its
// Session it is not safe for concurrent use.
type Cursor struct {
	db     *storage.Database
	stream *plan.Stream
	// rec is the streaming fixpoint of a recursive SELECT (stream and rec
	// are mutually exclusive); recType carries the recursion shape for
	// rendering.
	rec     *plan.FixpointStream
	recType *recursive.Type
	// desc is the delivered structure (the projected sub-description
	// when the SELECT list narrows); sub is non-nil when each molecule
	// must be pruned to it before delivery.
	desc  *core.Desc
	sub   *core.Desc
	attrs map[string][]string
	res   *Result // immediate result of a non-streaming statement
	n     int
}

// QueryContext parses and executes a single statement under ctx,
// returning a streaming Cursor. Cancelling ctx (or reaching its
// deadline) stops an in-flight SELECT mid-derivation; per-query options
// override the session's SET defaults.
func (s *Session) QueryContext(ctx context.Context, src string, opts ...QueryOption) (*Cursor, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return s.ExecuteStream(ctx, st, opts...)
}

// ExecuteStream is QueryContext over an already-parsed statement — the
// entry point for callers that manage their own parsing (the TCP server
// runs each statement of a request script through it).
func (s *Session) ExecuteStream(ctx context.Context, st Stmt, opts ...QueryOption) (*Cursor, error) {
	var o queryOpts
	for _, opt := range opts {
		opt(&o)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		r, err := s.Execute(st)
		if err != nil {
			return nil, err
		}
		return &Cursor{db: s.db, res: r}, nil
	}
	mt, rt, err := s.resolveFrom(sel.From)
	if err != nil {
		return nil, err
	}
	if rt != nil {
		return s.recursiveCursor(ctx, sel, rt, o)
	}
	desc := mt.Desc()
	if s.txn != nil && s.txn.Dirty() {
		// Read-your-writes: once the open transaction holds buffered
		// writes, the SELECT (plain, ordered, counted or grouped) derives
		// eagerly over its effective view so the session sees its own
		// uncommitted inserts, updates and connects. A clean transaction
		// stays on the streaming begin-snapshot path below.
		r, err := s.execSelectEff(ctx, sel, desc, o)
		if err != nil {
			return nil, err
		}
		return &Cursor{db: s.db, res: r}, nil
	}
	if sel.Count {
		// COUNT aggregates eagerly — a count (grouped or not) has no
		// molecules to stream; the fold itself still consumes the plan's
		// stream batch by batch without materializing the result set.
		r, err := s.execCount(ctx, sel, desc, o)
		if err != nil {
			return nil, err
		}
		return &Cursor{db: s.db, res: r}, nil
	}
	p, err := s.planSelect(sel, desc, o)
	if err != nil {
		return nil, err
	}
	// Validate the SELECT list before execution starts, exactly like the
	// materialized path does.
	sub, attrs, err := s.projectionSpec(sel, desc)
	if err != nil {
		return nil, err
	}
	// Inside a clean BEGIN transaction (no buffered writes yet) the
	// cursor streams from the begin snapshot — the caller's transaction
	// keeps the snapshot open; outside one, the stream pins (and later
	// releases) its own snapshot of the latest commit.
	var stream *plan.Stream
	if s.txn != nil {
		stream, err = p.StreamAt(ctx, s.txn.Snapshot())
	} else {
		stream, err = p.Stream(ctx)
	}
	if err != nil {
		return nil, err
	}
	c := &Cursor{db: s.db, stream: stream, desc: desc, sub: sub, attrs: attrs}
	if sub != nil {
		c.desc = sub
	}
	return c, nil
}

// recursiveCursor compiles a recursive SELECT into a planned streaming
// fixpoint (plan.CompileFixpoint): the entry contest seeds the closure
// from an indexed root equality when one wins, the remaining WHERE
// conjuncts prune seed roots before expansion, and completed molecules
// stream out at a snapshot pinned for the whole closure. COUNT (and
// GROUP BY over the root attribute) folds off the stream's batches like
// the plain-select path; anything non-streaming returns an immediate
// Result cursor.
func (s *Session) recursiveCursor(ctx context.Context, sel *SelectStmt, rt *recursive.Type, o queryOpts) (*Cursor, error) {
	if !sel.All && !sel.Count {
		return nil, fmt.Errorf("mql: recursive SELECT supports ALL only")
	}
	// Sessions always feed execution observations back into the cost
	// model (the non-recursive path opts in through plan.CacheFor).
	plan.FeedbackFor(s.db)
	p, err := plan.CompileFixpoint(s.db, rt.AtomType, rt.Link, rt.Up, rt.Depth, sel.Where)
	if err != nil {
		return nil, err
	}
	p.Workers = s.workers
	if o.workersSet {
		p.Workers = o.workers
	}
	p.Limit = sel.Limit
	if o.limitSet {
		p.Limit = o.limit
	}
	if sel.Count {
		r, err := s.recursiveCount(ctx, sel, rt, p)
		if err != nil {
			return nil, err
		}
		return &Cursor{db: s.db, res: r}, nil
	}
	// Inside a transaction the closure reads the begin snapshot (the
	// caller's to close); outside one, the stream pins its own.
	var st *plan.FixpointStream
	if s.txn != nil {
		st, err = p.StreamAt(ctx, s.txn.Snapshot())
	} else {
		st, err = p.Stream(ctx)
	}
	if err != nil {
		return nil, err
	}
	return &Cursor{db: s.db, rec: st, recType: rt}, nil
}

// recursiveCount folds SELECT COUNT [GROUP BY attr] over the streaming
// fixpoint: molecules are counted (or bucketed by their root's attribute
// value, read at the stream's snapshot) batch by batch and never
// materialized. For the grouped form LIMIT caps the buckets reported,
// not the molecules folded into them.
func (s *Session) recursiveCount(ctx context.Context, sel *SelectStmt, rt *recursive.Type, p *plan.FixpointPlan) (*Result, error) {
	var groupPos int
	var rootC *storage.Container
	if sel.GroupBy != nil {
		g := sel.GroupBy
		if g.Type != "" && g.Type != rt.AtomType {
			return nil, fmt.Errorf("mql: GROUP BY %s.%s: recursive molecules group by their root type %q",
				g.Type, g.Attr, rt.AtomType)
		}
		var ok bool
		rootC, ok = s.db.Container(rt.AtomType)
		if !ok {
			return nil, fmt.Errorf("mql: atom type %q has no container", rt.AtomType)
		}
		if groupPos, ok = rootC.Desc().Lookup(g.Attr); !ok {
			return nil, fmt.Errorf("mql: root type %q has no attribute %q", rt.AtomType, g.Attr)
		}
	}
	limit := p.Limit
	if sel.GroupBy != nil {
		p.Limit = 0 // LIMIT caps groups, not the molecules folded into them
	}
	var st *plan.FixpointStream
	var err error
	if s.txn != nil {
		st, err = p.StreamAt(ctx, s.txn.Snapshot())
	} else {
		st, err = p.Stream(ctx)
	}
	if err != nil {
		return nil, err
	}
	defer st.Close()
	ts := st.SnapshotTS()
	n := 0
	counts := make(map[model.Key]*GroupCount)
	for {
		m, err := st.Next()
		if err != nil {
			return nil, err
		}
		if m == nil {
			break
		}
		if sel.GroupBy == nil {
			n++
			continue
		}
		a, ok := rootC.GetAt(m.Root, ts)
		if !ok {
			continue
		}
		v := a.Get(groupPos)
		k := v.Key()
		gc := counts[k]
		if gc == nil {
			gc = &GroupCount{Value: v}
			counts[k] = gc
		}
		gc.Count++
	}
	if sel.GroupBy == nil {
		return &Result{Kind: RCount, Count: n}, nil
	}
	groups := make([]GroupCount, 0, len(counts))
	for _, gc := range counts {
		groups = append(groups, *gc)
	}
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].Value.Compare(groups[j].Value) < 0
	})
	if limit > 0 && len(groups) > limit {
		groups = groups[:limit]
	}
	return &Result{Kind: RCount, GroupAttr: sel.GroupBy.Attr, Groups: groups}, nil
}

// Streaming reports whether the cursor delivers molecules incrementally
// (a planned SELECT, recursive or not) or carries an immediate Result.
func (c *Cursor) Streaming() bool { return c.stream != nil || c.rec != nil }

// RecStreaming reports whether the cursor streams recursive molecules
// (consume them with NextRec; Next always reports exhaustion).
func (c *Cursor) RecStreaming() bool { return c.rec != nil }

// RecAtomType returns the component atom type of a recursive cursor's
// molecules ("" otherwise) — what RenderRecMoleculeAt renders them as.
func (c *Cursor) RecAtomType() string {
	if c.recType == nil {
		return ""
	}
	return c.recType.AtomType
}

// NextRec returns the next molecule of a streaming recursive SELECT. A
// nil molecule with a nil error means exhaustion (immediately so for
// non-recursive cursors); errors are terminal.
func (c *Cursor) NextRec() (*recursive.Molecule, error) {
	if c.rec == nil {
		return nil, nil
	}
	m, err := c.rec.Next()
	if m == nil || err != nil {
		return nil, err
	}
	c.n++
	return m, nil
}

// Desc returns the description of the delivered molecules (after
// projection); nil for non-streaming statements.
func (c *Cursor) Desc() *core.Desc { return c.desc }

// Attrs returns the SELECT list's per-type attribute narrowing (nil
// when every attribute is delivered).
func (c *Cursor) Attrs() map[string][]string { return c.attrs }

// Next returns the next molecule of a streaming SELECT, with the
// statement's projection applied. A nil molecule with a nil error means
// the cursor is exhausted (immediately so for non-streaming
// statements); errors are terminal.
func (c *Cursor) Next() (*core.Molecule, error) {
	if c.stream == nil {
		return nil, nil
	}
	m, err := c.stream.Next()
	if m == nil || err != nil {
		return nil, err
	}
	if c.sub != nil {
		m = m.PruneTo(c.sub)
	}
	c.n++
	return m, nil
}

// Seq adapts the cursor to a Go 1.23 range-over-func iterator; after
// the loop, Err reports whether iteration ended by exhaustion or error,
// and breaking out early leaves the cursor open (Close it).
func (c *Cursor) Seq() iter.Seq[*core.Molecule] {
	return func(yield func(*core.Molecule) bool) {
		for {
			m, err := c.Next()
			if m == nil || err != nil {
				return
			}
			if !yield(m) {
				return
			}
		}
	}
}

// Err returns the cursor's terminal error, nil while molecules are
// still flowing and after clean exhaustion.
func (c *Cursor) Err() error {
	switch {
	case c.stream != nil:
		return c.stream.Err()
	case c.rec != nil:
		return c.rec.Err()
	}
	return nil
}

// Delivered counts the molecules handed out so far.
func (c *Cursor) Delivered() int { return c.n }

// SnapshotTS returns the commit timestamp a streaming SELECT's cursor is
// pinned to (0 for non-streaming statements). Rendering molecules with
// RenderMoleculeAt at this timestamp keeps attribute values consistent
// with the structure the cursor derived.
func (c *Cursor) SnapshotTS() uint64 {
	switch {
	case c.stream != nil:
		return c.stream.SnapshotTS()
	case c.rec != nil:
		return c.rec.SnapshotTS()
	}
	return 0
}

// Result drains the cursor and materializes the remaining molecules
// into a classic Result — the collect-all bridge Exec is built on. For
// non-streaming statements it returns the immediate result.
//
// Attribute values are resolved molecule by molecule DURING the drain,
// while the stream's snapshot is still pinned: exhausting the stream
// releases its pin, and a commit-plus-vacuum between drain and a later
// Render could otherwise reclaim the versions at the cursor's timestamp
// and silently degrade rendered atoms to bare ids.
func (c *Cursor) Result() (*Result, error) {
	if c.rec != nil {
		return c.recResult()
	}
	if c.stream == nil {
		return c.res, nil
	}
	ts := c.SnapshotTS()
	atoms := make(map[model.AtomID]model.Atom)
	containers := make(map[string]*storage.Container)
	set := core.MoleculeSet{}
	for {
		m, err := c.Next()
		if err != nil {
			return nil, err
		}
		if m == nil {
			break
		}
		for _, typeName := range m.Desc().Types() {
			cont, ok := containers[typeName]
			if !ok {
				cont, _ = c.db.Container(typeName)
				containers[typeName] = cont
			}
			if cont == nil {
				continue
			}
			for _, id := range m.AtomsOf(typeName) {
				if _, done := atoms[id]; done {
					continue
				}
				if a, ok := cont.GetAt(id, ts); ok {
					atoms[id] = a
				}
			}
		}
		set = append(set, m)
	}
	return &Result{Kind: RMolecules, Set: set, Desc: c.desc, Attrs: c.attrs, TS: ts, atoms: atoms}, nil
}

// recResult drains a recursive cursor, resolving each molecule's atom
// values while the fixpoint's snapshot is still pinned — the same
// drain-then-render hazard the molecule path guards against.
func (c *Cursor) recResult() (*Result, error) {
	ts := c.SnapshotTS()
	cont, _ := c.db.Container(c.recType.AtomType)
	atoms := make(map[model.AtomID]model.Atom)
	var set []*recursive.Molecule
	for {
		m, err := c.NextRec()
		if err != nil {
			return nil, err
		}
		if m == nil {
			break
		}
		if cont != nil {
			for _, id := range m.Atoms() {
				if _, done := atoms[id]; done {
					continue
				}
				if a, ok := cont.GetAt(id, ts); ok {
					atoms[id] = a
				}
			}
		}
		set = append(set, m)
	}
	return &Result{Kind: RRecursive, RecSet: set, RecType: c.recType, TS: ts, atoms: atoms}, nil
}

// Close cancels an in-flight SELECT, waits for its workers to wind down
// and releases the cursor; it is idempotent and a no-op for
// non-streaming statements.
func (c *Cursor) Close() error {
	switch {
	case c.stream != nil:
		return c.stream.Close()
	case c.rec != nil:
		return c.rec.Close()
	}
	return nil
}
