package mql

import (
	"context"
	"fmt"
	"iter"

	"mad/internal/core"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// queryOpts carries the per-query execution options of one QueryContext
// call; unset fields fall back to the session's SET defaults and the
// statement's own LIMIT clause.
type queryOpts struct {
	workers    int
	workersSet bool
	limit      int
	limitSet   bool
	noCache    bool
	// shapeKey, when set, plans through the shape-keyed plan-cache entry
	// of a PREPARE'd statement instead of the literal cache key.
	shapeKey string
}

// QueryOption tunes one QueryContext call. Options override the
// session-level SET defaults and the statement's LIMIT clause for this
// query only.
type QueryOption func(*queryOpts)

// WithWorkers bounds the worker pool the query's derivation fans out
// over: 0 selects all cores, 1 forces sequential execution.
func WithWorkers(n int) QueryOption {
	return func(o *queryOpts) { o.workers, o.workersSet = n, true }
}

// WithLimit caps the molecules the cursor delivers; the in-flight
// derivation is cancelled once the cap is reached. 0 removes a LIMIT
// the statement itself carries.
func WithLimit(n int) QueryOption {
	return func(o *queryOpts) { o.limit, o.limitSet = n, true }
}

// WithNoCache bypasses the plan cache for this query: the plan is
// compiled fresh and not memoized — useful for one-off ad-hoc
// statements that should not evict hot cached plans.
func WithNoCache() QueryOption {
	return func(o *queryOpts) { o.noCache = true }
}

// Cursor is the streaming result of one statement. For a non-recursive
// SELECT it wraps a plan.Stream: molecules arrive incrementally, in the
// deterministic root-aligned execution order, with the projection of the
// SELECT list applied molecule by molecule — the first result is
// available while the bulk of the root batch is still deriving, and
// cancelling the query's context stops the worker pool mid-derivation.
// Every other statement (DDL, DML, SHOW, EXPLAIN, recursive SELECT)
// executes eagerly and carries its Result immediately; Next then reports
// exhaustion straight away.
//
// A Cursor must be drained (Next returning nil, nil) or Closed; like its
// Session it is not safe for concurrent use.
type Cursor struct {
	db     *storage.Database
	stream *plan.Stream
	// desc is the delivered structure (the projected sub-description
	// when the SELECT list narrows); sub is non-nil when each molecule
	// must be pruned to it before delivery.
	desc  *core.Desc
	sub   *core.Desc
	attrs map[string][]string
	res   *Result // immediate result of a non-streaming statement
	n     int
}

// QueryContext parses and executes a single statement under ctx,
// returning a streaming Cursor. Cancelling ctx (or reaching its
// deadline) stops an in-flight SELECT mid-derivation; per-query options
// override the session's SET defaults.
func (s *Session) QueryContext(ctx context.Context, src string, opts ...QueryOption) (*Cursor, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return s.ExecuteStream(ctx, st, opts...)
}

// ExecuteStream is QueryContext over an already-parsed statement — the
// entry point for callers that manage their own parsing (the TCP server
// runs each statement of a request script through it).
func (s *Session) ExecuteStream(ctx context.Context, st Stmt, opts ...QueryOption) (*Cursor, error) {
	var o queryOpts
	for _, opt := range opts {
		opt(&o)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		r, err := s.Execute(st)
		if err != nil {
			return nil, err
		}
		return &Cursor{db: s.db, res: r}, nil
	}
	mt, rt, err := s.resolveFrom(sel.From)
	if err != nil {
		return nil, err
	}
	if rt != nil {
		if sel.Count {
			return nil, fmt.Errorf("mql: SELECT COUNT over a recursive structure is not supported")
		}
		// Recursive derivation runs eagerly (no plan, no worker pool),
		// but a per-query limit still caps the result.
		if o.limitSet {
			capped := *sel
			capped.Limit = o.limit
			sel = &capped
		}
		r, err := s.execRecursiveSelect(sel, rt)
		if err != nil {
			return nil, err
		}
		return &Cursor{db: s.db, res: r}, nil
	}
	desc := mt.Desc()
	if s.txn != nil && s.txn.Dirty() {
		// Read-your-writes: once the open transaction holds buffered
		// writes, the SELECT (plain, ordered, counted or grouped) derives
		// eagerly over its effective view so the session sees its own
		// uncommitted inserts, updates and connects. A clean transaction
		// stays on the streaming begin-snapshot path below.
		r, err := s.execSelectEff(ctx, sel, desc, o)
		if err != nil {
			return nil, err
		}
		return &Cursor{db: s.db, res: r}, nil
	}
	if sel.Count {
		// COUNT aggregates eagerly — a count (grouped or not) has no
		// molecules to stream; the fold itself still consumes the plan's
		// stream batch by batch without materializing the result set.
		r, err := s.execCount(ctx, sel, desc, o)
		if err != nil {
			return nil, err
		}
		return &Cursor{db: s.db, res: r}, nil
	}
	p, err := s.planSelect(sel, desc, o)
	if err != nil {
		return nil, err
	}
	// Validate the SELECT list before execution starts, exactly like the
	// materialized path does.
	sub, attrs, err := s.projectionSpec(sel, desc)
	if err != nil {
		return nil, err
	}
	// Inside a clean BEGIN transaction (no buffered writes yet) the
	// cursor streams from the begin snapshot — the caller's transaction
	// keeps the snapshot open; outside one, the stream pins (and later
	// releases) its own snapshot of the latest commit.
	var stream *plan.Stream
	if s.txn != nil {
		stream, err = p.StreamAt(ctx, s.txn.Snapshot())
	} else {
		stream, err = p.Stream(ctx)
	}
	if err != nil {
		return nil, err
	}
	c := &Cursor{db: s.db, stream: stream, desc: desc, sub: sub, attrs: attrs}
	if sub != nil {
		c.desc = sub
	}
	return c, nil
}

// Streaming reports whether the cursor delivers molecules incrementally
// (a planned SELECT) or carries an immediate Result.
func (c *Cursor) Streaming() bool { return c.stream != nil }

// Desc returns the description of the delivered molecules (after
// projection); nil for non-streaming statements.
func (c *Cursor) Desc() *core.Desc { return c.desc }

// Attrs returns the SELECT list's per-type attribute narrowing (nil
// when every attribute is delivered).
func (c *Cursor) Attrs() map[string][]string { return c.attrs }

// Next returns the next molecule of a streaming SELECT, with the
// statement's projection applied. A nil molecule with a nil error means
// the cursor is exhausted (immediately so for non-streaming
// statements); errors are terminal.
func (c *Cursor) Next() (*core.Molecule, error) {
	if c.stream == nil {
		return nil, nil
	}
	m, err := c.stream.Next()
	if m == nil || err != nil {
		return nil, err
	}
	if c.sub != nil {
		m = m.PruneTo(c.sub)
	}
	c.n++
	return m, nil
}

// Seq adapts the cursor to a Go 1.23 range-over-func iterator; after
// the loop, Err reports whether iteration ended by exhaustion or error,
// and breaking out early leaves the cursor open (Close it).
func (c *Cursor) Seq() iter.Seq[*core.Molecule] {
	return func(yield func(*core.Molecule) bool) {
		for {
			m, err := c.Next()
			if m == nil || err != nil {
				return
			}
			if !yield(m) {
				return
			}
		}
	}
}

// Err returns the cursor's terminal error, nil while molecules are
// still flowing and after clean exhaustion.
func (c *Cursor) Err() error {
	if c.stream == nil {
		return nil
	}
	return c.stream.Err()
}

// Delivered counts the molecules handed out so far.
func (c *Cursor) Delivered() int { return c.n }

// SnapshotTS returns the commit timestamp a streaming SELECT's cursor is
// pinned to (0 for non-streaming statements). Rendering molecules with
// RenderMoleculeAt at this timestamp keeps attribute values consistent
// with the structure the cursor derived.
func (c *Cursor) SnapshotTS() uint64 {
	if c.stream == nil {
		return 0
	}
	return c.stream.SnapshotTS()
}

// Result drains the cursor and materializes the remaining molecules
// into a classic Result — the collect-all bridge Exec is built on. For
// non-streaming statements it returns the immediate result.
//
// Attribute values are resolved molecule by molecule DURING the drain,
// while the stream's snapshot is still pinned: exhausting the stream
// releases its pin, and a commit-plus-vacuum between drain and a later
// Render could otherwise reclaim the versions at the cursor's timestamp
// and silently degrade rendered atoms to bare ids.
func (c *Cursor) Result() (*Result, error) {
	if c.stream == nil {
		return c.res, nil
	}
	ts := c.SnapshotTS()
	atoms := make(map[model.AtomID]model.Atom)
	containers := make(map[string]*storage.Container)
	set := core.MoleculeSet{}
	for {
		m, err := c.Next()
		if err != nil {
			return nil, err
		}
		if m == nil {
			break
		}
		for _, typeName := range m.Desc().Types() {
			cont, ok := containers[typeName]
			if !ok {
				cont, _ = c.db.Container(typeName)
				containers[typeName] = cont
			}
			if cont == nil {
				continue
			}
			for _, id := range m.AtomsOf(typeName) {
				if _, done := atoms[id]; done {
					continue
				}
				if a, ok := cont.GetAt(id, ts); ok {
					atoms[id] = a
				}
			}
		}
		set = append(set, m)
	}
	return &Result{Kind: RMolecules, Set: set, Desc: c.desc, Attrs: c.attrs, TS: ts, atoms: atoms}, nil
}

// Close cancels an in-flight SELECT, waits for its workers to wind down
// and releases the cursor; it is idempotent and a no-op for
// non-streaming statements.
func (c *Cursor) Close() error {
	if c.stream == nil {
		return nil
	}
	return c.stream.Close()
}
