package mql

import (
	"fmt"
	"strings"

	"mad/internal/core"
	"mad/internal/model"
	"mad/internal/recursive"
	"mad/internal/storage"
)

// Render formats a result for display: molecule sets as indented component
// trees (with shared atoms marked), recursive molecules level by level,
// and messages verbatim.
func (r *Result) Render(db *storage.Database) string {
	switch r.Kind {
	case RMessage, RPlan:
		return r.Message
	case RInserted:
		ids := make([]string, len(r.Inserted))
		for i, id := range r.Inserted {
			ids[i] = id.String()
		}
		return fmt.Sprintf("inserted %d atom(s): %s\n", len(r.Inserted), strings.Join(ids, ", "))
	case RAffected:
		return fmt.Sprintf("%d affected\n", r.Affected)
	case RCount:
		if r.GroupAttr == "" {
			return fmt.Sprintf("count: %d\n", r.Count)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%d group(s) by %s\n", len(r.Groups), r.GroupAttr)
		for _, g := range r.Groups {
			fmt.Fprintf(&b, "%s = %s: %d\n", r.GroupAttr, g.Value, g.Count)
		}
		return b.String()
	case RRecursive:
		var b strings.Builder
		fmt.Fprintf(&b, "%d recursive molecule(s)\n", len(r.RecSet))
		for i, m := range r.RecSet {
			b.WriteString(formatRecMoleculeCached(db, r.TS, i+1, m, r.RecType.AtomType, r.atoms))
		}
		return b.String()
	case RMolecules:
		var b strings.Builder
		fmt.Fprintf(&b, "%d molecule(s) of %s\n", len(r.Set), r.Desc)
		for i, m := range r.Set {
			fmt.Fprintf(&b, "-- molecule %d (%d atoms, %d links)\n", i+1, m.Size(), m.NumLinks())
			b.WriteString(formatMoleculeCached(db, r.TS, m, r.Attrs, r.atoms))
		}
		return b.String()
	}
	return ""
}

// RenderMolecule formats one streamed molecule exactly as Result.Render
// formats the i-th molecule (1-based) of a materialized set — the
// building block of incremental result delivery (the TCP server renders
// a cursor's molecules into CHUNK frames with it). Attribute values read
// the latest view; use RenderMoleculeAt to render a snapshot cursor's
// molecules consistently with its structure.
func RenderMolecule(db *storage.Database, i int, m *core.Molecule, attrs map[string][]string) string {
	return RenderMoleculeAt(db, 0, i, m, attrs)
}

// RenderMoleculeAt is RenderMolecule with attribute values resolved at
// commit timestamp ts (zero = latest view), so a molecule derived at a
// snapshot renders the values of that same commit.
func RenderMoleculeAt(db *storage.Database, ts uint64, i int, m *core.Molecule, attrs map[string][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- molecule %d (%d atoms, %d links)\n", i, m.Size(), m.NumLinks())
	b.WriteString(formatMolecule(db, ts, m, attrs))
	return b.String()
}

// RenderRecMoleculeAt formats one streamed recursive molecule exactly as
// Result.Render formats the i-th molecule (1-based) of a materialized
// recursive set, with attribute values resolved at commit timestamp ts —
// the CHUNK-frame building block for recursive cursors, mirroring
// RenderMoleculeAt.
func RenderRecMoleculeAt(db *storage.Database, ts uint64, i int, m *recursive.Molecule, atomType string) string {
	return formatRecMoleculeCached(db, ts, i, m, atomType, nil)
}

// formatRecMoleculeCached renders one recursive molecule header plus its
// level-by-level body, preferring atom values from cache (resolved while
// the result's snapshot was still pinned) over re-reading at ts.
func formatRecMoleculeCached(db *storage.Database, ts uint64, i int, m *recursive.Molecule, atomType string, cache map[model.AtomID]model.Atom) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- molecule %d (root %s, %d atoms, depth %d)\n",
		i, m.Root, m.Size(), m.Depth())
	c, hasC := db.Container(atomType)
	for depth, level := range m.Levels {
		fmt.Fprintf(&b, "level %d:", depth)
		for _, id := range level {
			a, ok := cache[id]
			if !ok && hasC {
				if ts != 0 {
					a, ok = c.GetAt(id, ts)
				} else {
					a, ok = c.Get(id)
				}
			}
			if !ok {
				fmt.Fprintf(&b, " %s", id)
				continue
			}
			fmt.Fprintf(&b, " %s", a.Get(0))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatMolecule renders one molecule as an indented tree honouring the
// projection's attribute narrowing, reading values at ts (zero = latest).
func formatMolecule(db *storage.Database, ts uint64, m *core.Molecule, attrs map[string][]string) string {
	return formatMoleculeCached(db, ts, m, attrs, nil)
}

// formatMoleculeCached is formatMolecule preferring atom values from
// cache (values resolved while the result's snapshot was still pinned)
// over re-reading the database at ts.
func formatMoleculeCached(db *storage.Database, ts uint64, m *core.Molecule, attrs map[string][]string, cache map[model.AtomID]model.Atom) string {
	var b strings.Builder
	d := m.Desc()
	printed := make(map[model.AtomID]bool)
	var rec func(typeName string, id model.AtomID, depth int)
	rec = func(typeName string, id model.AtomID, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		label := renderAtom(db, ts, typeName, id, attrs[typeName], cache)
		if printed[id] {
			fmt.Fprintf(&b, "^%s: %s (shared)\n", typeName, label)
			return
		}
		printed[id] = true
		fmt.Fprintf(&b, "%s: %s\n", typeName, label)
		for _, ei := range d.Outgoing(typeName) {
			e := d.Edge(ei)
			for _, l := range m.LinksAt(ei) {
				if l.A == id {
					rec(e.To, l.B, depth+1)
				}
			}
		}
	}
	rec(d.Root(), m.Root(), 0)
	return b.String()
}

// renderAtom renders one atom with (possibly narrowed) attributes,
// preferring values from cache (resolved while the result's snapshot was
// pinned) over a database read at ts.
func renderAtom(db *storage.Database, ts uint64, typeName string, id model.AtomID, attrs []string, cache map[model.AtomID]model.Atom) string {
	c, ok := db.Container(typeName)
	if !ok {
		return id.String()
	}
	a, ok := cache[id]
	if !ok {
		if ts != 0 {
			a, ok = c.GetAt(id, ts)
		} else {
			a, ok = c.Get(id)
		}
	}
	if !ok {
		return id.String()
	}
	d := c.Desc()
	var parts []string
	if attrs == nil {
		for i := 0; i < d.Len(); i++ {
			parts = append(parts, d.Attr(i).Name+"="+a.Get(i).String())
		}
	} else {
		for _, name := range attrs {
			if i, ok := d.Lookup(name); ok {
				parts = append(parts, name+"="+a.Get(i).String())
			}
		}
	}
	return id.String() + "{" + strings.Join(parts, ", ") + "}"
}
