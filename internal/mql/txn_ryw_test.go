package mql_test

import (
	"strings"
	"testing"

	"mad/internal/mql"
)

// execR is a transcript step: run one statement and return its rendered
// output.
func execR(t *testing.T, s *mql.Session, src string) string {
	t.Helper()
	r, err := s.Exec(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return r.Render(s.DB())
}

// TestTxnReadYourWrites runs the read-your-writes transcript: inside a
// BEGIN transaction, SELECT (plain, filtered, ordered, counted and
// molecule-structured) sees the session's own uncommitted writes while
// every other session keeps reading the committed state.
func TestTxnReadYourWrites(t *testing.T) {
	_, sess, other := txnSession(t)

	// BEGIN; INSERT — the very next SELECT of the same session sees the
	// buffered atom, values rendered from the overlay.
	if _, err := sess.Exec("BEGIN;"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO parts VALUES ('ring', 0.1);"); err != nil {
		t.Fatal(err)
	}
	out := execR(t, sess, "SELECT ALL FROM parts;")
	if !strings.Contains(out, "3 molecule(s)") || !strings.Contains(out, `name="ring"`) {
		t.Fatalf("in-txn SELECT must see the buffered insert:\n%s", out)
	}
	// The other session still reads committed state only.
	if out := execR(t, other, "SELECT ALL FROM parts;"); strings.Contains(out, "ring") {
		t.Fatalf("other session sees uncommitted insert:\n%s", out)
	}

	// WHERE evaluates against the effective view too.
	out = execR(t, sess, "SELECT ALL FROM parts WHERE parts.weight < 1.0;")
	if !strings.Contains(out, "1 molecule(s)") || !strings.Contains(out, "ring") {
		t.Fatalf("in-txn WHERE over buffered values:\n%s", out)
	}

	// An uncommitted UPDATE renders its new value.
	if _, err := sess.Exec("UPDATE parts SET weight = 300.0 WHERE name = 'ring';"); err != nil {
		t.Fatal(err)
	}
	out = execR(t, sess, "SELECT ALL FROM parts ORDER BY weight DESC LIMIT 1;")
	if !strings.Contains(out, "ring") || !strings.Contains(out, "weight=300") {
		t.Fatalf("ORDER BY over the effective view must rank the updated atom first:\n%s", out)
	}

	// COUNT folds the effective occurrence.
	if out := execR(t, sess, "SELECT COUNT FROM parts;"); !strings.Contains(out, "count: 3") {
		t.Fatalf("in-txn COUNT:\n%s", out)
	}
	if out := execR(t, sess, "SELECT COUNT FROM parts GROUP BY name;"); !strings.Contains(out, "3 group(s)") {
		t.Fatalf("in-txn GROUP BY:\n%s", out)
	}

	// A buffered CONNECT extends the derived molecule: acme supplies
	// engine (committed) and now ring (uncommitted).
	if _, err := sess.Exec("CONNECT supplier WHERE name = 'acme' TO parts WHERE name = 'ring' VIA supplies;"); err != nil {
		t.Fatal(err)
	}
	out = execR(t, sess, "SELECT ALL FROM supplier-parts;")
	if !strings.Contains(out, "engine") || !strings.Contains(out, "ring") {
		t.Fatalf("in-txn molecule derivation must traverse buffered links:\n%s", out)
	}
	if out := execR(t, other, "SELECT ALL FROM supplier-parts;"); strings.Contains(out, "ring") {
		t.Fatalf("other session derives through uncommitted link:\n%s", out)
	}

	// A buffered DELETE hides the atom and cascades its links out of the
	// derivation.
	if _, err := sess.Exec("DELETE FROM parts WHERE name = 'engine';"); err != nil {
		t.Fatal(err)
	}
	out = execR(t, sess, "SELECT ALL FROM supplier-parts;")
	if strings.Contains(out, "engine") || !strings.Contains(out, "ring") {
		t.Fatalf("in-txn derivation after buffered delete:\n%s", out)
	}
	if out := execR(t, sess, "SELECT COUNT FROM parts;"); !strings.Contains(out, "count: 2") {
		t.Fatalf("in-txn COUNT after buffered delete:\n%s", out)
	}

	// ROLLBACK discards it all: the session reads committed state again.
	if _, err := sess.Exec("ROLLBACK;"); err != nil {
		t.Fatal(err)
	}
	out = execR(t, sess, "SELECT ALL FROM parts;")
	if !strings.Contains(out, "2 molecule(s)") || strings.Contains(out, "ring") || !strings.Contains(out, "engine") {
		t.Fatalf("post-rollback SELECT:\n%s", out)
	}
}

// TestTxnReadYourWritesCommit is the commit half of the transcript: the
// effective view the transaction queried matches what COMMIT publishes.
func TestTxnReadYourWritesCommit(t *testing.T) {
	_, sess, other := txnSession(t)
	if _, err := sess.ExecScript(`
BEGIN;
INSERT INTO parts VALUES ('ring', 0.1);
UPDATE parts SET weight = 9.0 WHERE name = 'piston';
`); err != nil {
		t.Fatal(err)
	}
	before := execR(t, sess, "SELECT ALL FROM parts ORDER BY weight DESC;")
	if _, err := sess.Exec("COMMIT;"); err != nil {
		t.Fatal(err)
	}
	after := execR(t, other, "SELECT ALL FROM parts ORDER BY weight DESC;")
	if before != after {
		t.Fatalf("pre-commit effective view diverges from published state:\npre:\n%s\npost:\n%s", before, after)
	}
}
