package mql_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"mad/internal/model"
	"mad/internal/mql"
	"mad/internal/plan"
	"mad/internal/storage"
)

// partsDB builds the canonical BOM fixture directly against storage so
// tests hold the atom ids: car → engine → piston → ring over the
// reflexive composition link, with a category attribute for grouping.
func partsDB(t testing.TB) (*storage.Database, []model.AtomID) {
	t.Helper()
	db := storage.NewDatabase()
	desc := model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString},
		model.AttrDesc{Name: "cat", Kind: model.KString},
	)
	if _, err := db.DefineAtomType("parts", desc); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("composition", model.LinkDesc{SideA: "parts", SideB: "parts"}); err != nil {
		t.Fatal(err)
	}
	rows := []struct{ name, cat string }{
		{"car", "assembly"}, {"engine", "assembly"}, {"piston", "piece"}, {"ring", "piece"},
	}
	ids := make([]model.AtomID, len(rows))
	for i, r := range rows {
		id, err := db.InsertAtom("parts", model.Str(r.name), model.Str(r.cat))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i < 3; i++ {
		if err := db.Connect("composition", ids[i], ids[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	return db, ids
}

// TestRecursiveSnapshotUniformUnderWriter (satellite 1): a recursive
// cursor pins one snapshot for the whole closure. A writer committing
// mid-closure — renaming an atom and growing the assembly — must be
// invisible: every molecule and every rendered value is version-uniform
// at the cursor's SnapshotTS.
func TestRecursiveSnapshotUniformUnderWriter(t *testing.T) {
	db, ids := partsDB(t)
	defer plan.Release(db)
	sess := mql.NewSession(db)
	cur, err := sess.QueryContext(context.Background(), "SELECT ALL FROM RECURSIVE parts VIA composition;")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.RecStreaming() || !cur.Streaming() {
		t.Fatal("recursive SELECT must stream")
	}
	ts := cur.SnapshotTS()
	if ts == 0 {
		t.Fatal("recursive cursor must pin a snapshot")
	}
	first, err := cur.NextRec()
	if err != nil || first == nil {
		t.Fatalf("first molecule: %v, %v", first, err)
	}

	// Writer commits while the closure is still streaming: ring becomes
	// a washer and gains a sub-component.
	if err := db.UpdateAtom("parts", ids[3], []model.Value{model.Str("washer"), model.Str("piece")}); err != nil {
		t.Fatal(err)
	}
	bolt, err := db.InsertAtom("parts", model.Str("bolt"), model.Str("piece"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Connect("composition", ids[3], bolt); err != nil {
		t.Fatal(err)
	}

	got := map[model.AtomID]int{first.Root: first.Size()}
	rendered := mql.RenderRecMoleculeAt(db, ts, 1, first, cur.RecAtomType())
	for i := 2; ; i++ {
		m, err := cur.NextRec()
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			break
		}
		if m.Contains(bolt) {
			t.Fatalf("closure of %v saw the mid-stream commit", m.Root)
		}
		got[m.Root] = m.Size()
		rendered += mql.RenderRecMoleculeAt(db, ts, i, m, cur.RecAtomType())
	}
	// Pre-commit shape: car 4, engine 3, piston 2, ring 1 — the bolt
	// never joins, and ring still renders under its old name.
	want := map[model.AtomID]int{ids[0]: 4, ids[1]: 3, ids[2]: 2, ids[3]: 1}
	for id, n := range want {
		if got[id] != n {
			t.Fatalf("closure sizes not version-uniform: %v", got)
		}
	}
	if !strings.Contains(rendered, "ring") || strings.Contains(rendered, "washer") || strings.Contains(rendered, "bolt") {
		t.Fatalf("rendering not uniform at SnapshotTS %d:\n%s", ts, rendered)
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
}

// TestRecursiveCount (satellite 2): SELECT COUNT folds over the
// streaming fixpoint instead of erroring — plain, filtered, and grouped
// by a root attribute.
func TestRecursiveCount(t *testing.T) {
	db, _ := partsDB(t)
	defer plan.Release(db)
	sess := mql.NewSession(db)

	res, err := sess.Exec("SELECT COUNT FROM RECURSIVE parts VIA composition;")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != mql.RCount || res.Count != 4 {
		t.Fatalf("count = %+v", res)
	}

	res, err = sess.Exec("SELECT COUNT FROM RECURSIVE parts VIA composition WHERE cat = 'assembly';")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 {
		t.Fatalf("filtered count = %d, want 2", res.Count)
	}

	res, err = sess.Exec("SELECT COUNT FROM RECURSIVE parts VIA composition GROUP BY cat;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 || res.GroupAttr != "cat" {
		t.Fatalf("groups = %+v", res)
	}
	for _, g := range res.Groups {
		if g.Count != 2 {
			t.Fatalf("group %s = %d closures, want 2", g.Value, g.Count)
		}
	}
	out := res.Render(db)
	if !strings.Contains(out, "2 group(s) by cat") {
		t.Fatalf("render: %s", out)
	}

	// LIMIT caps groups, not the underlying closures.
	res, err = sess.Exec("SELECT COUNT FROM RECURSIVE parts VIA composition GROUP BY name LIMIT 2;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("limited groups = %d, want 2", len(res.Groups))
	}
}

// TestRecursiveLimitReleasesWorkers (satellite 3): LIMIT on a recursive
// SELECT cancels the in-flight expansion instead of deriving the full
// set and truncating, and tearing the cursor down leaks no goroutines.
func TestRecursiveLimitReleasesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	db := storage.NewDatabase()
	desc := model.MustDesc(model.AttrDesc{Name: "pn", Kind: model.KInt})
	if _, err := db.DefineAtomType("parts", desc); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("composition", model.LinkDesc{SideA: "parts", SideB: "parts"}); err != nil {
		t.Fatal(err)
	}
	const roots, depth = 256, 8
	ids := make([]model.AtomID, roots*depth)
	for i := range ids {
		id, err := db.InsertAtom("parts", model.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for r := 0; r < roots; r++ {
		for d := 0; d < depth-1; d++ {
			if err := db.Connect("composition", ids[r*depth+d], ids[r*depth+d+1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer plan.Release(db)
	sess := mql.NewSession(db)

	stats := db.Stats()
	stats.Reset()
	cur, err := sess.QueryContext(context.Background(),
		"SELECT ALL FROM RECURSIVE parts VIA composition LIMIT 2;", mql.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		m, err := cur.NextRec()
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("LIMIT 2 delivered %d molecules", n)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	// The cap must cancel expansion: nowhere near the full 2048-atom
	// closure set may have been derived.
	if fetched := stats.Snapshot().AtomsFetched; fetched > roots*depth/2 {
		t.Fatalf("LIMIT derived eagerly: %d atoms fetched", fetched)
	}
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecursiveExplainFixpoint: EXPLAIN on a recursive SELECT renders
// the costed fixpoint plan — entry access, closure estimate, semi-naive
// derivation line, and post-run actuals.
func TestRecursiveExplainFixpoint(t *testing.T) {
	db, _ := partsDB(t)
	defer plan.Release(db)
	sess := mql.NewSession(db)
	res, err := sess.Exec("EXPLAIN SELECT ALL FROM RECURSIVE parts VIA composition WHERE name = 'car' LIMIT 1;")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"recursive: parts ⟲ composition",
		"[fixpoint]",
		"closure:",
		"semi-naive delta fixpoint",
		"actuals:   [fixpoint] rounds",
	} {
		if !strings.Contains(res.Message, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, res.Message)
		}
	}

	res, err = sess.Exec("EXPLAIN SELECT COUNT FROM RECURSIVE parts VIA composition GROUP BY cat;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "aggregate: COUNT GROUP BY cat") {
		t.Fatalf("COUNT EXPLAIN:\n%s", res.Message)
	}
}
