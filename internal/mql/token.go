// Package mql implements MQL, the molecule query language the paper calls
// MQL ("MOL"): an SQL-like surface syntax whose semantics are defined by
// translation into the molecule algebra (Chapter 4). The package provides
// a lexer, a recursive-descent parser, a semantic analyzer that resolves
// structures against the catalog, and an executor with two modes:
//
//   - query mode (SELECT): derives, restricts and projects molecules
//     without enlarging the database;
//   - algebra mode (DEFINE MOLECULE TYPE ... AS SELECT ...): runs the
//     molecule algebra operators with propagation, registering the result
//     as a named molecule type over the enlarged database — the normative
//     semantics.
//
// The molecule structure syntax follows the paper's examples:
//
//	state-area-edge-point               chain; '-' resolves the unique
//	                                    link type between adjacent types
//	point-edge-(area-state, net-river)  branching after a node
//	a-[linkname]-b                      explicit link-type name
package mql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TEOF TokKind = iota
	TIdent
	TKeyword
	TNumber
	TString
	TSymbol // punctuation and operators
)

// Token is one lexical unit.
type Token struct {
	Kind TokKind
	Text string // raw text; keywords are upper-cased
	Pos  int    // byte offset, for error messages
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case TEOF:
		return "end of input"
	case TString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords recognized by the parser (case-insensitive in source).
var keywords = map[string]bool{
	"SELECT": true, "ALL": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "EXISTS": true, "COUNT": true,
	"TRUE": true, "FALSE": true, "NULL": true,
	"CREATE": true, "ATOM": true, "LINK": true, "TYPE": true,
	"BETWEEN": true, "CARD": true, "INDEX": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"CONNECT": true, "DISCONNECT": true, "TO": true, "VIA": true,
	"DEFINE": true, "MOLECULE": true, "AS": true,
	"SHOW": true, "SCHEMA": true, "TYPES": true, "INDEXES": true,
	"STATS": true, "MOLECULES": true,
	"EXPLAIN": true, "RECURSIVE": true, "DEPTH": true, "DOWN": true, "UP": true,
	"UNION": true, "DIFFERENCE": true, "INTERSECT": true, "OF": true,
	"ANALYZE": true, "ESTIMATE": true, "HISTOGRAMS": true,
	"FEEDBACK": true, "LIMIT": true, "CACHE": true,
	"PREPARE": true, "EXECUTE": true,
	"ORDER": true, "BY": true, "GROUP": true, "ASC": true, "DESC": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true,
	"CHECKPOINT": true,
}

// Lexer turns MQL source into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer creates a lexer over the source text.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// isIdentStart reports whether r can start an identifier.
func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

// isIdentPart reports whether r can continue an identifier. '~' appears in
// generated (propagated) type names, so it is an identifier character.
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '~'
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			// SQL-style comment to end of line.
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return Token{Kind: TEOF, Pos: lx.pos}, nil

scan:
	start := lx.pos
	c := rune(lx.src[lx.pos])
	switch {
	case isIdentStart(c):
		for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		if up := strings.ToUpper(text); keywords[up] {
			return Token{Kind: TKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TIdent, Text: text, Pos: start}, nil
	case c >= '0' && c <= '9':
		seenDot := false
		for lx.pos < len(lx.src) {
			d := lx.src[lx.pos]
			if d == '.' && !seenDot && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
				seenDot = true
				lx.pos++
				continue
			}
			if d < '0' || d > '9' {
				break
			}
			lx.pos++
		}
		return Token{Kind: TNumber, Text: lx.src[start:lx.pos], Pos: start}, nil
	case c == '\'' || c == '"':
		quote := byte(c)
		lx.pos++
		var b strings.Builder
		for lx.pos < len(lx.src) {
			d := lx.src[lx.pos]
			if d == quote {
				if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == quote {
					b.WriteByte(quote) // doubled quote escapes
					lx.pos += 2
					continue
				}
				lx.pos++
				return Token{Kind: TString, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(d)
			lx.pos++
		}
		return Token{}, fmt.Errorf("mql: unterminated string at offset %d", start)
	default:
		// Multi-character symbols first.
		two := ""
		if lx.pos+1 < len(lx.src) {
			two = lx.src[lx.pos : lx.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=":
			lx.pos += 2
			return Token{Kind: TSymbol, Text: two, Pos: start}, nil
		}
		switch c {
		case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';', '.', '[', ']', ':', '?':
			lx.pos++
			return Token{Kind: TSymbol, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("mql: unexpected character %q at offset %d", c, start)
	}
}

// LexAll tokenizes the whole source (convenience for the parser).
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TEOF {
			return out, nil
		}
	}
}
