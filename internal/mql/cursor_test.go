package mql_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mad/internal/core"
	"mad/internal/mql"
	"mad/internal/plan"
	"mad/internal/storage"
)

// TestCursorStreamsSelect: QueryContext delivers the same molecules, in
// the same order, as the materialized Exec — and reports its projected
// description.
func TestCursorStreamsSelect(t *testing.T) {
	sess, s := session(t)
	defer plan.Release(s.DB)
	const q = "SELECT ALL FROM mt_state(state-area-edge-point);"
	res, err := sess.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Set

	cur, err := sess.QueryContext(context.Background(), "SELECT ALL FROM mt_state;")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.Streaming() {
		t.Fatal("SELECT must stream")
	}
	var got core.MoleculeSet
	for {
		m, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			break
		}
		got = append(got, m)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d molecules, Exec returned %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("molecule %d differs from the materialized order", i)
		}
	}
	if cur.Err() != nil {
		t.Fatalf("err after drain: %v", cur.Err())
	}
	if cur.Delivered() != len(want) {
		t.Fatalf("delivered = %d, want %d", cur.Delivered(), len(want))
	}
}

// TestCursorProjection: the cursor applies the SELECT list per molecule
// — the projected description and attribute narrowing match the
// materialized path.
func TestCursorProjection(t *testing.T) {
	sess, s := session(t)
	defer plan.Release(s.DB)
	const q = "SELECT state.name, area FROM mt2(state-area) WHERE hectare > 10;"
	res, err := sess.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sess.QueryContext(context.Background(), "SELECT state.name, area FROM mt2;")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cur.Desc().String() != res.Desc.String() {
		t.Fatalf("cursor desc %s, materialized desc %s", cur.Desc(), res.Desc)
	}
	r2, err := cur.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Set) != len(res.Set) {
		t.Fatalf("cursor result %d molecules, Exec %d", len(r2.Set), len(res.Set))
	}
	for i := range res.Set {
		if !r2.Set[i].Equal(res.Set[i]) {
			t.Fatalf("projected molecule %d differs", i)
		}
	}
	if r2.Attrs["state"][0] != "name" {
		t.Fatalf("attrs = %v", r2.Attrs)
	}
}

// TestCursorLimitSyntax: SELECT ... LIMIT n delivers exactly the first n
// molecules of the deterministic order, on both surfaces.
func TestCursorLimitSyntax(t *testing.T) {
	sess, s := session(t)
	defer plan.Release(s.DB)
	full, err := sess.Exec("SELECT ALL FROM mt_state(state-area-edge-point);")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Set) < 2 {
		t.Fatalf("fixture too small: %d molecules", len(full.Set))
	}
	res, err := sess.Exec("SELECT ALL FROM mt_state LIMIT 2;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 2 {
		t.Fatalf("LIMIT 2 returned %d molecules", len(res.Set))
	}
	for i := range res.Set {
		if !res.Set[i].Equal(full.Set[i]) {
			t.Fatalf("LIMIT must deliver a prefix; molecule %d differs", i)
		}
	}
	if _, err := sess.Exec("SELECT ALL FROM mt_state LIMIT 0;"); err == nil {
		t.Fatal("LIMIT 0 must be rejected")
	}

	// WithLimit overrides the statement for one query.
	cur, err := sess.QueryContext(context.Background(), "SELECT ALL FROM mt_state LIMIT 2;", mql.WithLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	r, err := cur.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Set) != 1 {
		t.Fatalf("WithLimit(1) delivered %d", len(r.Set))
	}
}

// TestCursorCancel: cancelling the query context surfaces through Next
// and stops the execution.
func TestCursorCancel(t *testing.T) {
	sess, s := session(t)
	defer plan.Release(s.DB)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cur, err := sess.QueryContext(ctx, "SELECT ALL FROM mt_state(state-area-edge-point);")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for {
		m, nerr := cur.Next()
		if nerr != nil {
			if !errors.Is(nerr, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", nerr)
			}
			break
		}
		if m == nil {
			t.Fatal("cursor over a cancelled context ended cleanly")
		}
	}
}

// TestSetStatement: SET WORKERS / SET NOCACHE install session defaults,
// reject bad values, and NOCACHE actually bypasses the plan cache.
func TestSetStatement(t *testing.T) {
	sess, s := session(t)
	defer plan.Release(s.DB)
	if res, err := sess.Exec("SET WORKERS = 2;"); err != nil || !strings.Contains(res.Message, "workers set to 2") {
		t.Fatalf("SET WORKERS: %v %v", res, err)
	}
	if _, err := sess.Exec("SET WORKERS = -1;"); err == nil {
		t.Fatal("negative workers must be rejected")
	}
	if _, err := sess.Exec("SET VERBOSE = TRUE;"); err == nil {
		t.Fatal("unknown option must be rejected")
	}

	lookups := func(c *plan.Cache) uint64 {
		h, m, _ := c.Counters()
		return h + m
	}
	cache := plan.CacheFor(s.DB)
	if _, err := sess.Exec("SELECT ALL FROM mt_state(state-area);"); err != nil {
		t.Fatal(err)
	}
	before := lookups(cache)
	if _, err := sess.Exec("SET NOCACHE = TRUE;"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("SELECT ALL FROM mt_state;"); err != nil {
		t.Fatal(err)
	}
	if after := lookups(cache); after != before {
		t.Fatalf("NOCACHE session must not plan through the cache (%d → %d lookups)", before, after)
	}
	if _, err := sess.Exec("SET NOCACHE = FALSE;"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("SELECT ALL FROM mt_state;"); err != nil {
		t.Fatal(err)
	}
	if after := lookups(cache); after == before {
		t.Fatal("cached sessions must plan through the cache again")
	}
}

// TestCursorNonStreamingStatements: DDL and SHOW run eagerly through
// QueryContext and surface their Result immediately.
func TestCursorNonStreamingStatements(t *testing.T) {
	sess, s := session(t)
	defer plan.Release(s.DB)
	cur, err := sess.QueryContext(context.Background(), "SHOW INDEXES;")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Streaming() {
		t.Fatal("SHOW must not stream")
	}
	if m, err := cur.Next(); m != nil || err != nil {
		t.Fatalf("non-streaming Next = %v, %v", m, err)
	}
	r, err := cur.Result()
	if err != nil || r.Kind != mql.RMessage {
		t.Fatalf("result = %+v, %v", r, err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLimitOnRecursiveAndDefine: LIMIT caps a recursive SELECT's result
// (eager derivation, deterministic order) and is rejected in algebra
// mode — DEFINE registers whole occurrences.
func TestLimitOnRecursiveAndDefine(t *testing.T) {
	db := storage.NewDatabase()
	sess := mql.NewSession(db)
	defer plan.Release(db)
	setup := `
CREATE ATOM TYPE parts (name STRING NOT NULL);
CREATE LINK TYPE composition BETWEEN parts AND parts;
INSERT INTO parts VALUES ('car'), ('engine'), ('piston');
CONNECT parts WHERE name = 'car' TO parts WHERE name = 'engine' VIA composition;
CONNECT parts WHERE name = 'engine' TO parts WHERE name = 'piston' VIA composition;
`
	if _, err := sess.ExecScript(setup); err != nil {
		t.Fatal(err)
	}
	full, err := sess.Exec("SELECT ALL FROM RECURSIVE parts VIA composition;")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.RecSet) != 3 {
		t.Fatalf("|rec| = %d, want 3", len(full.RecSet))
	}
	capped, err := sess.Exec("SELECT ALL FROM RECURSIVE parts VIA composition LIMIT 2;")
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.RecSet) != 2 {
		t.Fatalf("recursive LIMIT 2 returned %d", len(capped.RecSet))
	}
	for i := range capped.RecSet {
		if capped.RecSet[i].Root != full.RecSet[i].Root {
			t.Fatalf("recursive LIMIT must deliver a prefix; molecule %d differs", i)
		}
	}
	// WithLimit applies to the recursive path too.
	cur, err := sess.QueryContext(context.Background(),
		"SELECT ALL FROM RECURSIVE parts VIA composition;", mql.WithLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	r, err := cur.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RecSet) != 1 {
		t.Fatalf("WithLimit(1) recursive returned %d", len(r.RecSet))
	}

	if _, err := sess.Exec("DEFINE MOLECULE TYPE few AS SELECT ALL FROM parts LIMIT 1;"); err == nil {
		t.Fatal("DEFINE ... AS SELECT ... LIMIT must be rejected")
	}
}
