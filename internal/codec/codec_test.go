package codec_test

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"mad/internal/codec"
	"mad/internal/core"
	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/storage"
)

// equalDatabases compares schema object counts, atom contents and link
// contents of two databases.
func equalDatabases(t *testing.T, a, b *storage.Database) {
	t.Helper()
	if a.Schema().NumAtomTypes() != b.Schema().NumAtomTypes() {
		t.Fatal("atom type counts differ")
	}
	if a.Schema().NumLinkTypes() != b.Schema().NumLinkTypes() {
		t.Fatal("link type counts differ")
	}
	for _, at := range a.Schema().AtomTypes() {
		bt, ok := b.Schema().AtomType(at.Name)
		if !ok {
			t.Fatalf("atom type %q missing after round trip", at.Name)
		}
		if !at.Desc.Equal(bt.Desc) {
			t.Fatalf("description of %q differs", at.Name)
		}
		if at.Num != bt.Num {
			t.Fatalf("type number of %q differs (%d vs %d): identifiers broken", at.Name, at.Num, bt.Num)
		}
		ca, _ := a.Container(at.Name)
		cb, _ := b.Container(at.Name)
		if ca.Len() != cb.Len() {
			t.Fatalf("occurrence size of %q differs", at.Name)
		}
		ca.Scan(func(atom model.Atom) bool {
			other, ok := cb.Get(atom.ID)
			if !ok {
				t.Fatalf("atom %v missing after round trip", atom.ID)
			}
			for i, v := range atom.Vals {
				if !v.Equal(other.Vals[i]) {
					t.Fatalf("atom %v value %d differs: %s vs %s", atom.ID, i, v, other.Vals[i])
				}
			}
			return true
		})
	}
	for _, lt := range a.Schema().LinkTypes() {
		la, _ := a.LinkStore(lt.Name)
		lb, ok := b.LinkStore(lt.Name)
		if !ok {
			t.Fatalf("link type %q missing", lt.Name)
		}
		if la.Len() != lb.Len() {
			t.Fatalf("link occurrence of %q differs", lt.Name)
		}
		la.Scan(func(l model.Link) bool {
			if !lb.Has(l.A, l.B) {
				t.Fatalf("link %v missing after round trip", l)
			}
			return true
		})
	}
}

func TestRoundTripSample(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := codec.Encode(s.DB, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := codec.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalDatabases(t, s.DB, back)
	if err := back.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Molecules derive identically over the restored database.
	define := func(db *storage.Database) core.MoleculeSet {
		mt, err := core.Define(db, "mt_state",
			[]string{"state", "area", "edge", "point"},
			[]core.DirectedLink{
				{Link: "state-area", From: "state", To: "area"},
				{Link: "area-edge", From: "area", To: "edge"},
				{Link: "edge-point", From: "edge", To: "point"},
			})
		if err != nil {
			t.Fatal(err)
		}
		set, err := mt.Derive()
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	s1, s2 := define(s.DB), define(back)
	if len(s1) != len(s2) {
		t.Fatal("molecule counts differ after round trip")
	}
	for i := range s1 {
		if s1[i].Key() != s2[i].Key() {
			t.Fatalf("molecule %d differs after round trip", i)
		}
	}
}

func TestRoundTripAfterPropagation(t *testing.T) {
	// Propagated types adopt foreign identifiers; the snapshot must keep
	// them intact.
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(s.DB, "sa", []string{"state", "area"},
		[]core.DirectedLink{{Link: "state-area", From: "state", To: "area"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Restrict(mt, nil, "", nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := codec.Encode(s.DB, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := codec.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalDatabases(t, s.DB, back)
}

func TestSaveLoadFile(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "geo.mad")
	if err := codec.Save(s.DB, path); err != nil {
		t.Fatal(err)
	}
	back, err := codec.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	equalDatabases(t, s.DB, back)
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := codec.Decode(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := codec.Decode(strings.NewReader("")); err == nil {
		t.Fatal("empty input must fail")
	}
	// Truncated valid prefix.
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := codec.Encode(s.DB, &buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := codec.Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated snapshot must fail")
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	// Property 10 of DESIGN.md: encode∘decode = identity for values, via
	// a single-type database carrying random values.
	f := func(i int64, fl float64, s string, b bool, pick uint8) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		db := storage.NewDatabase()
		desc := model.MustDesc(
			model.AttrDesc{Name: "i", Kind: model.KInt},
			model.AttrDesc{Name: "f", Kind: model.KFloat},
			model.AttrDesc{Name: "s", Kind: model.KString},
			model.AttrDesc{Name: "b", Kind: model.KBool},
		)
		if _, err := db.DefineAtomType("t", desc); err != nil {
			return false
		}
		vals := []model.Value{model.Int(i), model.Float(fl), model.Str(s), model.Bool(b)}
		if pick%3 == 0 {
			vals[1] = model.Null() // exercise null encoding
		}
		id, err := db.InsertAtom("t", vals...)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := codec.Encode(db, &buf); err != nil {
			return false
		}
		back, err := codec.Decode(&buf)
		if err != nil {
			return false
		}
		a, ok := back.GetAtom("t", id)
		if !ok {
			return false
		}
		for j, v := range vals {
			if !a.Vals[j].Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
