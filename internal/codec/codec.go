// Package codec persists MAD databases as binary snapshots: the schema
// (atom and link types in declaration order, so type numbers survive the
// round trip) followed by every atom-type occurrence and every link-type
// occurrence. The format is self-contained and versioned; Decode
// reconstructs a database whose atoms keep their identifiers, which keeps
// propagated (identity-sharing) result types intact.
//
// Since the durability PR the format itself (MADSNAP1) lives in
// internal/storage, where Checkpoint embeds it inside checkpoint files;
// this package remains the stable save/load API for whole-database
// snapshots.
package codec

import (
	"io"
	"os"

	"mad/internal/storage"
)

// Encode writes a snapshot of the database, as of its latest published
// commit, to out.
func Encode(db *storage.Database, out io.Writer) error {
	return storage.EncodeSnapshot(db, out)
}

// Decode reconstructs a database from a snapshot produced by Encode.
func Decode(in io.Reader) (*storage.Database, error) {
	return storage.DecodeSnapshot(in)
}

// Save writes a snapshot to path atomically: the bytes land in a
// temporary file that is fsynced and renamed over the target, so a crash
// mid-save never leaves a truncated snapshot behind.
func Save(db *storage.Database, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Encode(db, f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads a snapshot from path.
func Load(path string) (*storage.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
