// Package codec persists MAD databases as binary snapshots: the schema
// (atom and link types in declaration order, so type numbers survive the
// round trip) followed by every atom-type occurrence and every link-type
// occurrence. The format is self-contained and versioned; Decode
// reconstructs a database whose atoms keep their identifiers, which keeps
// propagated (identity-sharing) result types intact.
package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"mad/internal/model"
	"mad/internal/storage"
)

// magic identifies snapshot files; the trailing digit is the version.
const magic = "MADSNAP1"

// maxStrLen bounds decoded strings to keep corrupt files from allocating
// unbounded memory.
const maxStrLen = 1 << 24

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}

func (w *writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

func (w *writer) u64(v uint64) {
	if w.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, w.err = w.w.Write(buf[:])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

func (w *writer) boolean(b bool) {
	if b {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.err = err
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	r.err = err
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	var buf [8]byte
	_, err := io.ReadFull(r.r, buf[:])
	r.err = err
	return binary.LittleEndian.Uint64(buf[:])
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxStrLen {
		r.err = fmt.Errorf("codec: string length %d exceeds limit", n)
		return ""
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r.r, buf)
	r.err = err
	return string(buf)
}

func (r *reader) boolean() bool { return r.u8() != 0 }

// encodeValue writes one attribute value.
func encodeValue(w *writer, v model.Value) {
	w.u8(uint8(v.Kind()))
	switch v.Kind() {
	case model.KNull:
	case model.KBool:
		b, _ := v.AsBool()
		w.boolean(b)
	case model.KInt:
		i, _ := v.AsInt()
		w.u64(uint64(i))
	case model.KFloat:
		f, _ := v.AsFloat()
		w.u64(math.Float64bits(f))
	case model.KString:
		s, _ := v.AsString()
		w.str(s)
	case model.KID:
		id, _ := v.AsID()
		w.u64(uint64(id))
	}
}

// decodeValue reads one attribute value.
func decodeValue(r *reader) (model.Value, error) {
	kind := model.Kind(r.u8())
	switch kind {
	case model.KNull:
		return model.Null(), r.err
	case model.KBool:
		return model.Bool(r.boolean()), r.err
	case model.KInt:
		return model.Int(int64(r.u64())), r.err
	case model.KFloat:
		return model.Float(math.Float64frombits(r.u64())), r.err
	case model.KString:
		return model.Str(r.str()), r.err
	case model.KID:
		return model.ID(model.AtomID(r.u64())), r.err
	}
	return model.Null(), fmt.Errorf("codec: unknown value kind %d", kind)
}

// Encode writes a snapshot of the database.
func Encode(db *storage.Database, out io.Writer) error {
	w := &writer{w: bufio.NewWriter(out)}
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	schema := db.Schema()
	atomTypes := schema.AtomTypes()
	w.uvarint(uint64(len(atomTypes)))
	for _, at := range atomTypes {
		w.str(at.Name)
		w.uvarint(uint64(at.Desc.Len()))
		for _, ad := range at.Desc.Attrs() {
			w.str(ad.Name)
			w.u8(uint8(ad.Kind))
			w.boolean(ad.NotNull)
		}
	}
	linkTypes := schema.LinkTypes()
	w.uvarint(uint64(len(linkTypes)))
	for _, lt := range linkTypes {
		w.str(lt.Name)
		w.str(lt.Desc.SideA)
		w.str(lt.Desc.SideB)
		w.uvarint(uint64(lt.Desc.CardA.Min))
		w.uvarint(uint64(lt.Desc.CardA.Max))
		w.uvarint(uint64(lt.Desc.CardB.Min))
		w.uvarint(uint64(lt.Desc.CardB.Max))
	}
	for _, at := range atomTypes {
		c, ok := db.Container(at.Name)
		if !ok {
			return fmt.Errorf("codec: no container for %q", at.Name)
		}
		w.uvarint(uint64(c.Len()))
		c.Scan(func(a model.Atom) bool {
			w.u64(uint64(a.ID))
			for _, v := range a.Vals {
				encodeValue(w, v)
			}
			return w.err == nil
		})
	}
	for _, lt := range linkTypes {
		ls, ok := db.LinkStore(lt.Name)
		if !ok {
			return fmt.Errorf("codec: no store for %q", lt.Name)
		}
		w.uvarint(uint64(ls.Len()))
		ls.Scan(func(l model.Link) bool {
			w.u64(uint64(l.A))
			w.u64(uint64(l.B))
			return w.err == nil
		})
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Decode reconstructs a database from a snapshot.
func Decode(in io.Reader) (*storage.Database, error) {
	r := &reader{r: bufio.NewReader(in)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r.r, head); err != nil {
		return nil, fmt.Errorf("codec: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("codec: bad magic %q (not a MAD snapshot?)", head)
	}
	db := storage.NewDatabase()

	numAtomTypes := r.uvarint()
	type atomTypeInfo struct {
		name string
		desc *model.Desc
	}
	atomTypes := make([]atomTypeInfo, 0, numAtomTypes)
	for i := uint64(0); i < numAtomTypes && r.err == nil; i++ {
		name := r.str()
		numAttrs := r.uvarint()
		attrs := make([]model.AttrDesc, 0, numAttrs)
		for j := uint64(0); j < numAttrs && r.err == nil; j++ {
			attrs = append(attrs, model.AttrDesc{
				Name:    r.str(),
				Kind:    model.Kind(r.u8()),
				NotNull: r.boolean(),
			})
		}
		if r.err != nil {
			return nil, r.err
		}
		desc, err := model.NewDesc(attrs...)
		if err != nil {
			return nil, err
		}
		if _, err := db.DefineAtomType(name, desc); err != nil {
			return nil, err
		}
		atomTypes = append(atomTypes, atomTypeInfo{name: name, desc: desc})
	}

	numLinkTypes := r.uvarint()
	linkNames := make([]string, 0, numLinkTypes)
	for i := uint64(0); i < numLinkTypes && r.err == nil; i++ {
		name := r.str()
		desc := model.LinkDesc{SideA: r.str(), SideB: r.str()}
		desc.CardA = model.Cardinality{Min: int(r.uvarint()), Max: int(r.uvarint())}
		desc.CardB = model.Cardinality{Min: int(r.uvarint()), Max: int(r.uvarint())}
		if r.err != nil {
			return nil, r.err
		}
		if _, err := db.DefineLinkType(name, desc); err != nil {
			return nil, err
		}
		linkNames = append(linkNames, name)
	}

	for _, at := range atomTypes {
		n := r.uvarint()
		for i := uint64(0); i < n && r.err == nil; i++ {
			id := model.AtomID(r.u64())
			vals := make([]model.Value, at.desc.Len())
			for j := range vals {
				v, err := decodeValue(r)
				if err != nil {
					return nil, err
				}
				vals[j] = v
			}
			if err := db.AdoptAtom(at.name, model.NewAtom(id, vals...)); err != nil {
				return nil, err
			}
		}
	}
	for _, name := range linkNames {
		n := r.uvarint()
		for i := uint64(0); i < n && r.err == nil; i++ {
			a := model.AtomID(r.u64())
			b := model.AtomID(r.u64())
			if r.err != nil {
				break
			}
			if err := db.Connect(name, a, b); err != nil {
				return nil, err
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return db, nil
}

// Save writes a snapshot to a file (atomically via a temp file + rename).
func Save(db *storage.Database, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Encode(db, f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a snapshot from a file.
func Load(path string) (*storage.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
