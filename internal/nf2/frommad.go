package nf2

import (
	"fmt"

	"mad/internal/core"
	"mad/internal/model"
	"mad/internal/storage"
)

// FromMolecules materializes a MAD molecule set as one NF² relation: the
// root type's attributes plus one relation-valued attribute per outgoing
// branch, recursively. The molecule structure must be a *tree* (NF²
// supports only hierarchies — a type with several parents cannot nest),
// and shared subobjects are *copied* into every owner, because NF² has no
// identity: this duplication is the storage overhead the P2 experiment
// quantifies against MAD's shared representation.
func FromMolecules(db *storage.Database, set core.MoleculeSet) (*Relation, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("nf2: empty molecule set")
	}
	d := set[0].Desc()
	for _, t := range d.Types() {
		if len(d.Incoming(t)) > 1 {
			return nil, fmt.Errorf("nf2: type %q has several parents; NF² supports hierarchies only", t)
		}
	}
	schema, err := schemaFor(db, d, d.Root())
	if err != nil {
		return nil, err
	}
	out := New("nf2_"+d.Root(), schema)
	for _, m := range set {
		t, err := tupleFor(db, d, m, d.Root(), m.Root())
		if err != nil {
			return nil, err
		}
		if err := out.Insert(t...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// schemaFor builds the nested schema rooted at the given type.
func schemaFor(db *storage.Database, d *core.Desc, typeName string) (*Schema, error) {
	c, ok := db.Container(typeName)
	if !ok {
		return nil, fmt.Errorf("nf2: atom type %q has no container", typeName)
	}
	var attrs []Attr
	for _, ad := range c.Desc().Attrs() {
		attrs = append(attrs, Attr{Name: ad.Name, Kind: ad.Kind})
	}
	for _, ei := range d.Outgoing(typeName) {
		child := d.Edge(ei).To
		ns, err := schemaFor(db, d, child)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, Attr{Name: child + "s", Nested: ns})
	}
	return NewSchema(attrs...)
}

// tupleFor builds the nested tuple for one atom of one molecule.
func tupleFor(db *storage.Database, d *core.Desc, m *core.Molecule, typeName string, id model.AtomID) (Tuple, error) {
	c, ok := db.Container(typeName)
	if !ok {
		return nil, fmt.Errorf("nf2: atom type %q has no container", typeName)
	}
	a, ok := c.Get(id)
	if !ok {
		return nil, fmt.Errorf("nf2: atom %v missing from %q", id, typeName)
	}
	var t Tuple
	for _, v := range a.Vals {
		t = append(t, Atomic{V: v})
	}
	for _, ei := range d.Outgoing(typeName) {
		child := d.Edge(ei).To
		ns, err := schemaFor(db, d, child)
		if err != nil {
			return nil, err
		}
		inner := New(child+"s", ns)
		for _, l := range m.LinksAt(ei) {
			if l.A != id {
				continue
			}
			it, err := tupleFor(db, d, m, child, l.B)
			if err != nil {
				return nil, err
			}
			if err := inner.Insert(it...); err != nil {
				return nil, err
			}
		}
		t = append(t, Nested{R: inner})
	}
	return t, nil
}
