package nf2_test

import (
	"testing"
	"testing/quick"

	"mad/internal/core"
	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/nf2"
)

// flatOrders builds a flat relation of (customer, item) pairs.
func flatOrders(t *testing.T, rows [][2]string) *nf2.Relation {
	t.Helper()
	r := nf2.New("orders", nf2.MustSchema(
		nf2.Attr{Name: "customer", Kind: model.KString},
		nf2.Attr{Name: "item", Kind: model.KString},
	))
	for _, row := range rows {
		if err := r.Insert(nf2.Atomic{V: model.Str(row[0])}, nf2.Atomic{V: model.Str(row[1])}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestNestUnnestRoundTrip(t *testing.T) {
	r := flatOrders(t, [][2]string{
		{"ann", "bolt"}, {"ann", "nut"}, {"bob", "bolt"}, {"cid", "gear"},
	})
	nested, err := r.Nest([]string{"item"}, "items")
	if err != nil {
		t.Fatal(err)
	}
	if nested.Len() != 3 {
		t.Fatalf("nest groups = %d", nested.Len())
	}
	flat, err := nested.Unnest("items")
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Equal(r) {
		t.Fatal("unnest(nest(r)) != r")
	}
}

func TestNestUnnestPropertyRandom(t *testing.T) {
	// Property 11 of DESIGN.md over random key-grouped relations.
	f := func(pairs []uint8) bool {
		if len(pairs) == 0 {
			return true
		}
		rows := make([][2]string, 0, len(pairs))
		seen := map[[2]string]bool{}
		for i, p := range pairs {
			row := [2]string{string(rune('a' + int(p)%5)), string(rune('k' + i%7))}
			if seen[row] {
				continue // keep set semantics so Equal is well-defined
			}
			seen[row] = true
			rows = append(rows, row)
		}
		if len(rows) == 0 {
			return true
		}
		r := nf2.New("r", nf2.MustSchema(
			nf2.Attr{Name: "k", Kind: model.KString},
			nf2.Attr{Name: "v", Kind: model.KString},
		))
		for _, row := range rows {
			if err := r.Insert(nf2.Atomic{V: model.Str(row[0])}, nf2.Atomic{V: model.Str(row[1])}); err != nil {
				return false
			}
		}
		n, err := r.Nest([]string{"v"}, "vs")
		if err != nil {
			return false
		}
		u, err := n.Unnest("vs")
		if err != nil {
			return false
		}
		return u.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertShapeChecking(t *testing.T) {
	inner := nf2.MustSchema(nf2.Attr{Name: "x", Kind: model.KInt})
	s := nf2.MustSchema(
		nf2.Attr{Name: "k", Kind: model.KString},
		nf2.Attr{Name: "xs", Nested: inner},
	)
	r := nf2.New("r", s)
	// Atomic where nested expected.
	if err := r.Insert(nf2.Atomic{V: model.Str("a")}, nf2.Atomic{V: model.Int(1)}); err == nil {
		t.Fatal("atomic into nested attr must fail")
	}
	// Nested with wrong schema.
	wrong := nf2.New("w", nf2.MustSchema(nf2.Attr{Name: "y", Kind: model.KInt}))
	if err := r.Insert(nf2.Atomic{V: model.Str("a")}, nf2.Nested{R: wrong}); err == nil {
		t.Fatal("nested schema mismatch must fail")
	}
	ok := nf2.New("xs", inner)
	_ = ok.Insert(nf2.Atomic{V: model.Int(1)})
	if err := r.Insert(nf2.Atomic{V: model.Str("a")}, nf2.Nested{R: ok}); err != nil {
		t.Fatal(err)
	}
}

func TestFromMoleculesDuplicatesSharedSubobjects(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(s.DB, "mt_state",
		[]string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		t.Fatal(err)
	}
	set, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	nested, err := nf2.FromMolecules(s.DB, set)
	if err != nil {
		t.Fatal(err)
	}
	if nested.Len() != 10 {
		t.Fatalf("nested tuples = %d", nested.Len())
	}
	// NF² has no sharing: the materialization stores at least one atomic
	// cell per (molecule, component) pair — strictly more than the number
	// of distinct atoms when molecules overlap.
	if set.DistinctAtoms() >= set.TotalAtoms() {
		t.Fatal("test premise broken: no sharing in sample")
	}
	if nested.AtomicCells() <= set.DistinctAtoms() {
		t.Fatalf("NF² cells (%d) should exceed distinct atoms (%d)",
			nested.AtomicCells(), set.DistinctAtoms())
	}
}

func TestFromMoleculesRejectsNonTree(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	// A multi-parent structure: point with two incoming edges cannot nest.
	mt, err := core.Define(s.DB, "diamondish",
		[]string{"state", "area", "edge", "point", "net"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
			{Link: "net-edge", From: "edge", To: "net"},
		})
	if err != nil {
		t.Fatal(err)
	}
	set, err := mt.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nf2.FromMolecules(s.DB, set); err != nil {
		t.Fatalf("tree with branching should nest: %v", err)
	}
	// Now an actual multi-parent node.
	mt2, err := core.Define(s.DB, "multi",
		[]string{"state", "area", "net", "edge"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "net-edge", From: "net", To: "edge"},
		})
	if err == nil {
		set2, err := mt2.Derive()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nf2.FromMolecules(s.DB, set2); err == nil {
			t.Fatal("multi-parent structure must be rejected")
		}
	}
	// (Define fails earlier for two roots; if so, the nf2 rejection path
	// is covered by constructing molecules over a diamond in core tests.)
}

func TestSelectOnNested(t *testing.T) {
	r := flatOrders(t, [][2]string{{"ann", "bolt"}, {"bob", "nut"}})
	nested, err := r.Nest([]string{"item"}, "items")
	if err != nil {
		t.Fatal(err)
	}
	sel := nested.Select(func(tp nf2.Tuple) bool {
		v := tp[0].(nf2.Atomic).V
		s, _ := v.AsString()
		return s == "ann"
	})
	if sel.Len() != 1 {
		t.Fatalf("select = %d", sel.Len())
	}
}
