// Package nf2 is the non-first-normal-form baseline ([SS86], "The
// Relational Model with Relation-Valued Attributes"): relations whose
// attribute values may themselves be relations, with the nest (ν) and
// unnest (μ) operators. NF² models *hierarchical* complex objects without
// shared subobjects — "the non-first-normal-form models are just special
// cases" of MAD (Chapter 5) — so materializing a MAD molecule set in NF²
// duplicates every shared subobject once per owner, which is exactly what
// the P2 experiment measures.
package nf2

import (
	"fmt"
	"sort"
	"strings"

	"mad/internal/model"
)

// Attr describes one NF² attribute: atomic (Kind) or relation-valued
// (Nested non-nil).
type Attr struct {
	Name   string
	Kind   model.Kind
	Nested *Schema
}

// Atomic reports whether the attribute is flat.
func (a Attr) Atomic() bool { return a.Nested == nil }

// Schema is an ordered list of NF² attributes.
type Schema struct {
	attrs []Attr
	index map[string]int
}

// NewSchema builds a schema, rejecting duplicates.
func NewSchema(attrs ...Attr) (*Schema, error) {
	s := &Schema{attrs: append([]Attr(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("nf2: empty attribute name")
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("nf2: duplicate attribute %q", a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema panics on error (fixtures).
func MustSchema(attrs ...Attr) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the attribute count.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attr { return s.attrs[i] }

// Lookup finds an attribute by name.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Equal compares schemas structurally (recursively).
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.attrs {
		a, b := s.attrs[i], o.attrs[i]
		if a.Name != b.Name || a.Atomic() != b.Atomic() {
			return false
		}
		if a.Atomic() {
			if a.Kind != b.Kind {
				return false
			}
		} else if !a.Nested.Equal(b.Nested) {
			return false
		}
	}
	return true
}

// Value is one NF² attribute value: a model.Value for atomic attributes or
// a *Relation for relation-valued ones.
type Value interface{ nf2value() }

// Atomic wraps a flat value.
type Atomic struct{ V model.Value }

func (Atomic) nf2value() {}

// Nested wraps a relation value.
type Nested struct{ R *Relation }

func (Nested) nf2value() {}

// Tuple is one NF² row.
type Tuple []Value

// Relation is an NF² relation.
type Relation struct {
	Name   string
	Schema *Schema
	Tuples []Tuple
}

// New creates an empty NF² relation.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Insert appends a tuple after arity and shape checking.
func (r *Relation) Insert(vals ...Value) error {
	if len(vals) != r.Schema.Len() {
		return fmt.Errorf("nf2: %s: %d values for %d attributes", r.Name, len(vals), r.Schema.Len())
	}
	for i, v := range vals {
		a := r.Schema.Attr(i)
		switch v := v.(type) {
		case Atomic:
			if !a.Atomic() {
				return fmt.Errorf("nf2: %s.%s expects a nested relation", r.Name, a.Name)
			}
		case Nested:
			if a.Atomic() {
				return fmt.Errorf("nf2: %s.%s expects an atomic value", r.Name, a.Name)
			}
			if v.R == nil || !v.R.Schema.Equal(a.Nested) {
				return fmt.Errorf("nf2: %s.%s nested schema mismatch", r.Name, a.Name)
			}
		default:
			return fmt.Errorf("nf2: %s.%s: unknown value", r.Name, a.Name)
		}
	}
	r.Tuples = append(r.Tuples, Tuple(vals))
	return nil
}

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.Tuples) }

// key canonicalizes a value for grouping and comparison.
func key(v Value) string {
	switch v := v.(type) {
	case Atomic:
		return "a:" + v.V.String()
	case Nested:
		keys := make([]string, 0, len(v.R.Tuples))
		for _, t := range v.R.Tuples {
			keys = append(keys, tupleKey(t))
		}
		sort.Strings(keys)
		return "n:{" + strings.Join(keys, ";") + "}"
	}
	return "?"
}

func tupleKey(t Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = key(v)
	}
	return strings.Join(parts, ",")
}

// Equal compares relations as sets of (deep) tuples.
func (r *Relation) Equal(o *Relation) bool {
	if !r.Schema.Equal(o.Schema) || r.Len() != o.Len() {
		return false
	}
	count := make(map[string]int, r.Len())
	for _, t := range r.Tuples {
		count[tupleKey(t)]++
	}
	for _, t := range o.Tuples {
		count[tupleKey(t)]--
	}
	for _, n := range count {
		if n != 0 {
			return false
		}
	}
	return true
}

// Nest implements ν: it groups tuples by the non-nested attributes
// (those NOT listed in cols) and collects the listed cols into a new
// relation-valued attribute named as given. This is the key-grouped nest
// of [SS86].
func (r *Relation) Nest(cols []string, as string) (*Relation, error) {
	nestPos := make(map[int]bool, len(cols))
	var nestedAttrs []Attr
	for _, c := range cols {
		i, ok := r.Schema.Lookup(c)
		if !ok {
			return nil, fmt.Errorf("nf2: %s has no attribute %q", r.Name, c)
		}
		nestPos[i] = true
		nestedAttrs = append(nestedAttrs, r.Schema.Attr(i))
	}
	nestedSchema, err := NewSchema(nestedAttrs...)
	if err != nil {
		return nil, err
	}
	var outerAttrs []Attr
	var outerPos []int
	for i := 0; i < r.Schema.Len(); i++ {
		if !nestPos[i] {
			outerAttrs = append(outerAttrs, r.Schema.Attr(i))
			outerPos = append(outerPos, i)
		}
	}
	outerAttrs = append(outerAttrs, Attr{Name: as, Nested: nestedSchema})
	schema, err := NewSchema(outerAttrs...)
	if err != nil {
		return nil, err
	}
	out := New(r.Name+"_nest", schema)
	groups := make(map[string]*Relation)
	var order []string
	heads := make(map[string]Tuple)
	for _, t := range r.Tuples {
		head := make(Tuple, 0, len(outerPos))
		for _, p := range outerPos {
			head = append(head, t[p])
		}
		hk := tupleKey(head)
		g, ok := groups[hk]
		if !ok {
			g = New(as, nestedSchema)
			groups[hk] = g
			order = append(order, hk)
			heads[hk] = head
		}
		inner := make(Tuple, 0, len(cols))
		for i := 0; i < r.Schema.Len(); i++ {
			if nestPos[i] {
				inner = append(inner, t[i])
			}
		}
		g.Tuples = append(g.Tuples, inner)
	}
	for _, hk := range order {
		tuple := append(append(Tuple{}, heads[hk]...), Nested{R: groups[hk]})
		out.Tuples = append(out.Tuples, tuple)
	}
	return out, nil
}

// Unnest implements μ: it flattens the named relation-valued attribute,
// producing one output tuple per inner tuple.
func (r *Relation) Unnest(col string) (*Relation, error) {
	pos, ok := r.Schema.Lookup(col)
	if !ok {
		return nil, fmt.Errorf("nf2: %s has no attribute %q", r.Name, col)
	}
	a := r.Schema.Attr(pos)
	if a.Atomic() {
		return nil, fmt.Errorf("nf2: %s.%s is atomic", r.Name, col)
	}
	var attrs []Attr
	for i := 0; i < r.Schema.Len(); i++ {
		if i != pos {
			attrs = append(attrs, r.Schema.Attr(i))
		}
	}
	for i := 0; i < a.Nested.Len(); i++ {
		attrs = append(attrs, a.Nested.Attr(i))
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	out := New(r.Name+"_unnest", schema)
	for _, t := range r.Tuples {
		nested := t[pos].(Nested).R
		for _, inner := range nested.Tuples {
			nt := make(Tuple, 0, schema.Len())
			for i, v := range t {
				if i != pos {
					nt = append(nt, v)
				}
			}
			nt = append(nt, inner...)
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out, nil
}

// Select keeps tuples satisfying the predicate.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.Name+"_sel", r.Schema)
	for _, t := range r.Tuples {
		if pred(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// AtomicCells counts the atomic values stored in the relation, descending
// into nested relations — the storage-footprint figure of the P2
// experiment (shared subobjects count once per duplication).
func (r *Relation) AtomicCells() int {
	n := 0
	for _, t := range r.Tuples {
		for _, v := range t {
			switch v := v.(type) {
			case Atomic:
				n++
			case Nested:
				n += v.R.AtomicCells()
			}
		}
	}
	return n
}

// String renders the relation with nested values in braces (diagnostics).
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", r.Name)
	for i := 0; i < r.Schema.Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		a := r.Schema.Attr(i)
		if a.Atomic() {
			b.WriteString(a.Name)
		} else {
			fmt.Fprintf(&b, "%s{…}", a.Name)
		}
	}
	fmt.Fprintf(&b, ") %d tuple(s)", r.Len())
	return b.String()
}
