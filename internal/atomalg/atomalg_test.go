package atomalg_test

import (
	"testing"

	"mad/internal/atomalg"
	"mad/internal/expr"
	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/storage"
)

func sampleDB(t *testing.T) *geo.Sample {
	t.Helper()
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProjectDedupesAndInheritsLinks(t *testing.T) {
	s := sampleDB(t)
	res, err := atomalg.Project(s.DB, "state", []string{"abbrev"}, "state_abbrevs")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := s.DB.CountAtoms(res.TypeName)
	if n != 10 { // all abbreviations distinct
		t.Fatalf("projected count = %d", n)
	}
	c, _ := s.DB.Container(res.TypeName)
	if c.Desc().Len() != 1 || c.Desc().Attr(0).Name != "abbrev" {
		t.Fatalf("projected desc = %s", c.Desc())
	}
	// state participates in state-area; the result must have inherited a
	// link type to area.
	if len(res.Inherited) != 1 {
		t.Fatalf("inherited = %v", res.Inherited)
	}
	il := res.Inherited[0]
	if il.Partner != "area" || il.From != "state-area" {
		t.Fatalf("inheritance wrong: %+v", il)
	}
	nl, _ := s.DB.CountLinks(il.Name)
	if nl != 10 {
		t.Fatalf("inherited links = %d, want 10", nl)
	}
}

func TestProjectDuplicateElimination(t *testing.T) {
	db := storage.NewDatabase()
	if _, err := db.DefineAtomType("t", model.MustDesc(
		model.AttrDesc{Name: "a", Kind: model.KInt},
		model.AttrDesc{Name: "b", Kind: model.KInt},
	)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := db.InsertAtom("t", model.Int(int64(i%2)), model.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := atomalg.Project(db, "t", []string{"a"}, "")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := db.CountAtoms(res.TypeName)
	if n != 2 {
		t.Fatalf("set semantics broken: %d atoms, want 2", n)
	}
}

func TestRestrictKeepsIdentityAndRestrictsLinks(t *testing.T) {
	s := sampleDB(t)
	pred := expr.Cmp{Op: expr.GT, L: expr.Attr{Name: "hectare"}, R: expr.Lit(model.Float(500))}
	res, err := atomalg.Restrict(s.DB, "state", pred, "big_states")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := s.DB.CountAtoms(res.TypeName)
	if n != 2 { // MG 900, BA 1000
		t.Fatalf("restricted count = %d, want 2", n)
	}
	// Identity preserved: the MG atom keeps its id.
	if !s.DB.HasAtom(res.TypeName, s.States["MG"]) {
		t.Fatal("restriction must preserve atom identity")
	}
	// Inherited link occurrence restricted to kept atoms.
	if len(res.Inherited) != 1 {
		t.Fatalf("inherited = %v", res.Inherited)
	}
	nl, _ := s.DB.CountLinks(res.Inherited[0].Name)
	if nl != 2 {
		t.Fatalf("inherited links = %d, want 2", nl)
	}
	if err := s.DB.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestRestrictRejectsBadPredicate(t *testing.T) {
	s := sampleDB(t)
	pred := expr.Cmp{Op: expr.EQ, L: expr.Attr{Name: "nosuch"}, R: expr.Lit(model.Int(1))}
	if _, err := atomalg.Restrict(s.DB, "state", pred, ""); err == nil {
		t.Fatal("unknown attribute must fail statically")
	}
}

func TestProductBorderExample(t *testing.T) {
	// The paper's example: x(area, edge) = border, all link types of both
	// operands inherited.
	s := sampleDB(t)
	na, _ := s.DB.CountAtoms("area")
	ne, _ := s.DB.CountAtoms("edge")
	res, err := atomalg.Product(s.DB, "area", "edge", "border")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := s.DB.CountAtoms("border")
	if n != na*ne {
		t.Fatalf("|border| = %d, want %d", n, na*ne)
	}
	c, _ := s.DB.Container("border")
	if c.Desc().Len() != 2 { // area.tag + edge.tag (prefixed on collision)
		t.Fatalf("border desc = %s", c.Desc())
	}
	// area has state-area and area-edge; edge has area-edge, net-edge,
	// edge-point → 5 inherited link types.
	if len(res.Inherited) != 5 {
		t.Fatalf("inherited link types = %d, want 5", len(res.Inherited))
	}
	// The paper continues: σ[hectare>1000](border) — our border carries
	// area/edge attributes; restrict on the prefixed tag instead to show
	// the pipeline composes.
	pred := expr.Cmp{Op: expr.EQ, L: expr.Attr{Name: "area.tag"}, R: expr.Lit(model.Str("a_MG"))}
	res2, err := atomalg.Restrict(s.DB, "border", pred, "")
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := s.DB.CountAtoms(res2.TypeName)
	if n2 != ne {
		t.Fatalf("restricted border = %d, want %d", n2, ne)
	}
}

func TestUnionDifferenceIdentity(t *testing.T) {
	s := sampleDB(t)
	big, err := atomalg.Restrict(s.DB, "state",
		expr.Cmp{Op: expr.GT, L: expr.Attr{Name: "hectare"}, R: expr.Lit(model.Float(300))}, "")
	if err != nil {
		t.Fatal(err)
	}
	small, err := atomalg.Restrict(s.DB, "state",
		expr.Cmp{Op: expr.LE, L: expr.Attr{Name: "hectare"}, R: expr.Lit(model.Float(300))}, "")
	if err != nil {
		t.Fatal(err)
	}
	u, err := atomalg.Union(s.DB, big.TypeName, small.TypeName, "all_states")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := s.DB.CountAtoms(u.TypeName)
	if n != 10 {
		t.Fatalf("|ω| = %d, want 10", n)
	}
	d, err := atomalg.Difference(s.DB, u.TypeName, small.TypeName, "")
	if err != nil {
		t.Fatal(err)
	}
	nd, _ := s.DB.CountAtoms(d.TypeName)
	nbig, _ := s.DB.CountAtoms(big.TypeName)
	if nd != nbig {
		t.Fatalf("|δ| = %d, want %d", nd, nbig)
	}
	// δ(x, x) = ∅.
	e, err := atomalg.Difference(s.DB, big.TypeName, big.TypeName, "")
	if err != nil {
		t.Fatal(err)
	}
	if ne, _ := s.DB.CountAtoms(e.TypeName); ne != 0 {
		t.Fatalf("δ(x,x) = %d", ne)
	}
}

func TestUnionRequiresEqualDescriptions(t *testing.T) {
	s := sampleDB(t)
	if _, err := atomalg.Union(s.DB, "state", "river", ""); err == nil {
		t.Fatal("union of different descriptions must fail")
	}
	if _, err := atomalg.Difference(s.DB, "state", "area", ""); err == nil {
		t.Fatal("difference of different descriptions must fail")
	}
}

// TestClosureTheorem1 checks that atom-type operation results are valid
// operands for further operations and the database stays consistent — the
// closure of the atom-type algebra.
func TestClosureTheorem1(t *testing.T) {
	s := sampleDB(t)
	r1, err := atomalg.Restrict(s.DB, "state",
		expr.Cmp{Op: expr.GT, L: expr.Attr{Name: "hectare"}, R: expr.Lit(model.Float(100))}, "")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := atomalg.Project(s.DB, r1.TypeName, []string{"name", "hectare"}, "")
	if err != nil {
		t.Fatalf("π over σ result failed: %v", err)
	}
	r3, err := atomalg.Restrict(s.DB, r2.TypeName,
		expr.Cmp{Op: expr.LT, L: expr.Attr{Name: "hectare"}, R: expr.Lit(model.Float(950))}, "")
	if err != nil {
		t.Fatalf("σ over π result failed: %v", err)
	}
	if n, _ := s.DB.CountAtoms(r3.TypeName); n == 0 {
		t.Fatal("pipeline lost all atoms")
	}
	if err := s.DB.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after pipeline: %v", err)
	}
}

func TestReflexiveInheritance(t *testing.T) {
	db := storage.NewDatabase()
	if _, err := db.DefineAtomType("parts", model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("composition", model.LinkDesc{SideA: "parts", SideB: "parts"}); err != nil {
		t.Fatal(err)
	}
	a, _ := db.InsertAtom("parts", model.Str("engine"))
	b, _ := db.InsertAtom("parts", model.Str("piston"))
	c, _ := db.InsertAtom("parts", model.Str("ring"))
	if err := db.Connect("composition", a, b); err != nil {
		t.Fatal(err)
	}
	if err := db.Connect("composition", b, c); err != nil {
		t.Fatal(err)
	}
	res, err := atomalg.Restrict(db, "parts",
		expr.Cmp{Op: expr.NE, L: expr.Attr{Name: "name"}, R: expr.Lit(model.Str("ring"))}, "")
	if err != nil {
		t.Fatal(err)
	}
	// Reflexive link type inherits per side: two inherited link types.
	if len(res.Inherited) != 2 {
		t.Fatalf("inherited = %d, want 2 (both roles)", len(res.Inherited))
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
