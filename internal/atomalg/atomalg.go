// Package atomalg implements the atom-type algebra of Definition 4:
// projection π, restriction σ, cartesian product ×, union ω and
// difference δ, each producing a *new atom type* installed in a
// correspondingly enlarged database — the closure property of Theorem 1.
//
// Every operation also performs the link-type inheritance the paper
// sketches ("the link types of the operand atom types are 'inherited' to
// the resulting atom type. Thus, the result atom type could be reused in
// subsequent operations. In particular this is necessary for the molecule
// operations, since the dynamic molecule derivation relies on the
// existence of link types"). The paper defers the formal rules to the
// author's thesis [Mi88a]; the concretization used here is:
//
//   - For every link type with the operand on one side, the result type
//     inherits a fresh link type connecting the result to the *other*
//     side's original atom type.
//   - A result atom is linked to exactly the partners of the operand
//     atom(s) it derives from (its provenance).
//   - Reflexive operand link types inherit as result↔operand link types,
//     one per declared side, so both traversal roles stay available.
//
// Restriction, union and difference preserve atom identity (their result
// occurrences are subsets of the operands', Definition 4), so subobject
// sharing survives. Projection and product mint new atoms and track
// provenance only for inheritance.
package atomalg

import (
	"fmt"

	"mad/internal/catalog"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// InheritedLink records one link type created by inheritance.
type InheritedLink struct {
	// Name is the fresh link-type name in the enlarged database.
	Name string
	// From is the operand link type it derives from.
	From string
	// Partner is the atom type on the non-result side.
	Partner string
	// ResultOnSideA reports which side of the new link type the result
	// atom type occupies.
	ResultOnSideA bool
}

// Result describes the atom type an operation installed.
type Result struct {
	// TypeName is the result atom type's name in the enlarged database.
	TypeName string
	// Inherited lists the link types inherited onto the result.
	Inherited []InheritedLink
}

// provenance maps a result atom to the operand atoms it derives from.
type provenance map[model.AtomID][]model.AtomID

// identity builds the trivial provenance for identity-preserving ops.
func identity(ids []model.AtomID) provenance {
	p := make(provenance, len(ids))
	for _, id := range ids {
		p[id] = []model.AtomID{id}
	}
	return p
}

// resolveName picks the result type name: the caller's, or a fresh one.
func resolveName(db *storage.Database, want, base string) (string, error) {
	if want == "" {
		return db.Schema().FreshAtomName(base), nil
	}
	if db.Schema().HasName(want) {
		return "", fmt.Errorf("atomalg: result name %q already in use", want)
	}
	return want, nil
}

// inherit installs inherited link types for every operand link type
// mentioning operandType, wiring links according to provenance. prov maps
// result atoms to their side-relevant operand atoms. The candidate list is
// snapshotted by the caller *before* the operation mutates the schema, so
// link types created by a sibling inheritance pass are not re-inherited.
func inherit(db *storage.Database, operandType, resultName string, prov provenance, candidates []*catalog.LinkType) ([]InheritedLink, error) {
	var out []InheritedLink
	for _, lt := range candidates {
		ls, ok := db.LinkStore(lt.Name)
		if !ok {
			return nil, fmt.Errorf("atomalg: link type %q has no store", lt.Name)
		}
		sides := make([]bool, 0, 2) // operand-on-side-A values to process
		if lt.Desc.SideA == operandType {
			sides = append(sides, true)
		}
		if lt.Desc.SideB == operandType {
			sides = append(sides, false)
		}
		for _, operandOnA := range sides {
			partner, _ := lt.Desc.OtherSide(operandType)
			fresh := db.Schema().FreshLinkName(lt.Name)
			var desc model.LinkDesc
			if operandOnA {
				desc = model.LinkDesc{SideA: resultName, SideB: partner}
			} else {
				desc = model.LinkDesc{SideA: partner, SideB: resultName}
			}
			if _, err := db.DefineLinkType(fresh, desc); err != nil {
				return nil, err
			}
			for rid, sources := range prov {
				for _, src := range sources {
					var partners []model.AtomID
					if operandOnA {
						partners = ls.PartnersFromA(src)
					} else {
						partners = ls.PartnersFromB(src)
					}
					for _, p := range partners {
						var err error
						if operandOnA {
							err = db.Connect(fresh, rid, p)
						} else {
							err = db.Connect(fresh, p, rid)
						}
						if err != nil {
							return nil, err
						}
					}
				}
			}
			out = append(out, InheritedLink{
				Name: fresh, From: lt.Name, Partner: partner, ResultOnSideA: operandOnA,
			})
		}
	}
	return out, nil
}

// Project implements atom-type projection π[proj(ad)](at): the result
// description is the projected sub-description and the occurrence the set
// of projected atoms, duplicates removed (set semantics). resultName may
// be empty to auto-generate.
func Project(db *storage.Database, operand string, attrs []string, resultName string) (*Result, error) {
	c, ok := db.Container(operand)
	if !ok {
		return nil, fmt.Errorf("atomalg: unknown atom type %q", operand)
	}
	pdesc, err := c.Desc().Project(attrs)
	if err != nil {
		return nil, err
	}
	candidates := db.Schema().LinkTypesOf(operand)
	name, err := resolveName(db, resultName, operand+"_proj")
	if err != nil {
		return nil, err
	}
	if _, err := db.DefineAtomType(name, pdesc); err != nil {
		return nil, err
	}
	positions := make([]int, len(attrs))
	for i, a := range attrs {
		positions[i], _ = c.Desc().Lookup(a)
	}
	seen := make(map[string]model.AtomID)
	prov := make(provenance)
	var insertErr error
	c.Scan(func(a model.Atom) bool {
		vals := make([]model.Value, len(positions))
		for i, p := range positions {
			vals[i] = a.Get(p)
		}
		key := tupleKey(vals)
		rid, dup := seen[key]
		if !dup {
			rid, insertErr = db.InsertAtom(name, vals...)
			if insertErr != nil {
				return false
			}
			seen[key] = rid
		}
		prov[rid] = append(prov[rid], a.ID)
		return true
	})
	if insertErr != nil {
		return nil, insertErr
	}
	inh, err := inherit(db, operand, name, prov, candidates)
	if err != nil {
		return nil, err
	}
	return &Result{TypeName: name, Inherited: inh}, nil
}

// tupleKey builds a duplicate-elimination key from a value tuple.
func tupleKey(vals []model.Value) string {
	s := ""
	for _, v := range vals {
		s += v.String() + "\x00"
	}
	return s
}

// Restrict implements atom-type restriction σ[restr(ad)](at): the result
// keeps the operand's description and the atoms satisfying the predicate,
// preserving their identity.
func Restrict(db *storage.Database, operand string, pred expr.Expr, resultName string) (*Result, error) {
	c, ok := db.Container(operand)
	if !ok {
		return nil, fmt.Errorf("atomalg: unknown atom type %q", operand)
	}
	if err := expr.Check(pred, expr.AtomScope{TypeName: operand, Desc: c.Desc()}); err != nil {
		return nil, err
	}
	candidates := db.Schema().LinkTypesOf(operand)
	name, err := resolveName(db, resultName, operand+"_sel")
	if err != nil {
		return nil, err
	}
	if _, err := db.DefineAtomType(name, c.Desc()); err != nil {
		return nil, err
	}
	var kept []model.AtomID
	var evalErr error
	c.Scan(func(a model.Atom) bool {
		ok, err := expr.EvalPredicate(pred, expr.AtomBinding{TypeName: operand, Desc: c.Desc(), Atom: a})
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			if err := db.AdoptAtom(name, a); err != nil {
				evalErr = err
				return false
			}
			kept = append(kept, a.ID)
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	inh, err := inherit(db, operand, name, identity(kept), candidates)
	if err != nil {
		return nil, err
	}
	return &Result{TypeName: name, Inherited: inh}, nil
}

// Product implements the cartesian product ×(at1, at2): the result
// description is the concatenation ad1 ∪ ad2 (attribute names are
// auto-prefixed with the operand type names when they collide, restoring
// the pairwise disjointness Definition 4 presumes) and the occurrence is
// the set of concatenated atoms a1 & a2. Link types of both operands are
// inherited through the respective component.
func Product(db *storage.Database, left, right, resultName string) (*Result, error) {
	cl, ok := db.Container(left)
	if !ok {
		return nil, fmt.Errorf("atomalg: unknown atom type %q", left)
	}
	cr, ok := db.Container(right)
	if !ok {
		return nil, fmt.Errorf("atomalg: unknown atom type %q", right)
	}
	ld, rd := cl.Desc(), cr.Desc()
	if !ld.Disjoint(rd) || left == right {
		ld = ld.Prefixed(left, ".")
		rd = rd.Prefixed(right+sideSuffix(left, right), ".")
	}
	desc, err := ld.Concat(rd)
	if err != nil {
		return nil, err
	}
	leftCandidates := db.Schema().LinkTypesOf(left)
	rightCandidates := db.Schema().LinkTypesOf(right)
	name, err := resolveName(db, resultName, left+"_x_"+right)
	if err != nil {
		return nil, err
	}
	if _, err := db.DefineAtomType(name, desc); err != nil {
		return nil, err
	}
	leftProv := make(provenance)
	rightProv := make(provenance)
	var insertErr error
	cl.Scan(func(a model.Atom) bool {
		cr.Scan(func(b model.Atom) bool {
			vals := make([]model.Value, 0, len(a.Vals)+len(b.Vals))
			vals = append(vals, a.Vals...)
			vals = append(vals, b.Vals...)
			rid, err := db.InsertAtom(name, vals...)
			if err != nil {
				insertErr = err
				return false
			}
			leftProv[rid] = []model.AtomID{a.ID}
			rightProv[rid] = []model.AtomID{b.ID}
			return true
		})
		return insertErr == nil
	})
	if insertErr != nil {
		return nil, insertErr
	}
	inh, err := inherit(db, left, name, leftProv, leftCandidates)
	if err != nil {
		return nil, err
	}
	if right != left {
		inh2, err := inherit(db, right, name, rightProv, rightCandidates)
		if err != nil {
			return nil, err
		}
		inh = append(inh, inh2...)
	}
	return &Result{TypeName: name, Inherited: inh}, nil
}

// sideSuffix disambiguates the prefix when a type is crossed with itself.
func sideSuffix(left, right string) string {
	if left == right {
		return "'"
	}
	return ""
}

// Union implements atom-type union ω(at1, at2). The operand descriptions
// must be equal (Definition 4); the result occurrence is the identity-
// preserving set union.
func Union(db *storage.Database, left, right, resultName string) (*Result, error) {
	return setOp(db, left, right, resultName, "_union_", func(inLeft, inRight bool) bool {
		return inLeft || inRight
	})
}

// Difference implements atom-type difference δ(at1, at2): atoms of at1
// not in at2 (by identity).
func Difference(db *storage.Database, left, right, resultName string) (*Result, error) {
	return setOp(db, left, right, resultName, "_minus_", func(inLeft, inRight bool) bool {
		return inLeft && !inRight
	})
}

// setOp factors union and difference: both preserve identity and inherit
// links from both operand types' neighbourhoods.
func setOp(db *storage.Database, left, right, resultName, infix string, keep func(bool, bool) bool) (*Result, error) {
	cl, ok := db.Container(left)
	if !ok {
		return nil, fmt.Errorf("atomalg: unknown atom type %q", left)
	}
	cr, ok := db.Container(right)
	if !ok {
		return nil, fmt.Errorf("atomalg: unknown atom type %q", right)
	}
	if !cl.Desc().Equal(cr.Desc()) {
		return nil, fmt.Errorf("atomalg: %q and %q have different descriptions", left, right)
	}
	leftCandidates := db.Schema().LinkTypesOf(left)
	rightCandidates := db.Schema().LinkTypesOf(right)
	name, err := resolveName(db, resultName, left+infix+right)
	if err != nil {
		return nil, err
	}
	if _, err := db.DefineAtomType(name, cl.Desc()); err != nil {
		return nil, err
	}
	var kept []model.AtomID
	var opErr error
	adopt := func(a model.Atom) {
		if err := db.AdoptAtom(name, a); err != nil {
			opErr = err
			return
		}
		kept = append(kept, a.ID)
	}
	cl.Scan(func(a model.Atom) bool {
		if keep(true, cr.Has(a.ID)) {
			adopt(a)
		}
		return opErr == nil
	})
	if opErr != nil {
		return nil, opErr
	}
	cr.Scan(func(a model.Atom) bool {
		if cl.Has(a.ID) {
			return true // already considered through the left scan
		}
		if keep(false, true) {
			adopt(a)
		}
		return opErr == nil
	})
	if opErr != nil {
		return nil, opErr
	}
	// Inherit from the left operand's neighbourhood; for union, also from
	// the right's (its links cover atoms absent on the left).
	prov := identity(kept)
	inh, err := inherit(db, left, name, restrictProv(prov, cl.Has), leftCandidates)
	if err != nil {
		return nil, err
	}
	if keep(false, true) && right != left { // union only
		inh2, err := inherit(db, right, name, restrictProv(prov, func(id model.AtomID) bool {
			return cr.Has(id) && !cl.Has(id)
		}), rightCandidates)
		if err != nil {
			return nil, err
		}
		inh = append(inh, inh2...)
	}
	return &Result{TypeName: name, Inherited: inh}, nil
}

// restrictProv filters a provenance map to result atoms whose source
// passes the predicate.
func restrictProv(p provenance, pass func(model.AtomID) bool) provenance {
	out := make(provenance)
	for rid, srcs := range p {
		for _, s := range srcs {
			if pass(s) {
				out[rid] = append(out[rid], s)
			}
		}
	}
	return out
}
