package er_test

import (
	"testing"

	"mad/internal/er"
	"mad/internal/model"
)

func TestFig1MappingCounts(t *testing.T) {
	d := er.Fig1Diagram()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	madDB, madStats, err := d.ToMAD()
	if err != nil {
		t.Fatal(err)
	}
	relDB, relStats, err := d.ToRelational()
	if err != nil {
		t.Fatal(err)
	}
	// ER→MAD is one-to-one: 7 entity types → 7 atom types, 6 relationship
	// types → 6 link types, no auxiliary structures, no foreign keys.
	if madStats.Containers != 7 || madStats.RelationshipCarriers != 6 || madStats.ForeignKeys != 0 {
		t.Fatalf("MAD stats = %+v", madStats)
	}
	if madDB.Schema().NumAtomTypes() != 7 || madDB.Schema().NumLinkTypes() != 6 {
		t.Fatal("MAD schema object counts wrong")
	}
	// ER→relational: 7 relations + 3 auxiliary relations (the n:m types)
	// + 3 foreign keys (the 1:1 types).
	if relStats.Containers != 7 || relStats.RelationshipCarriers != 3 || relStats.ForeignKeys != 3 {
		t.Fatalf("relational stats = %+v", relStats)
	}
	if relDB.NumRelations() != 10 {
		t.Fatalf("relations = %d, want 10", relDB.NumRelations())
	}
	// The foreign keys appear as columns.
	r, ok := relDB.Rel("area")
	if !ok {
		t.Fatal("area relation missing")
	}
	if _, ok := r.Schema.Lookup("state-area_fk"); !ok {
		t.Fatalf("area columns = %v", r.Schema.Names())
	}
}

func TestCardinalityCarriedIntoMAD(t *testing.T) {
	d := er.Fig1Diagram()
	db, _, err := d.ToMAD()
	if err != nil {
		t.Fatal(err)
	}
	lt, ok := db.Schema().LinkType("state-area")
	if !ok {
		t.Fatal("state-area missing")
	}
	if lt.Desc.CardA.Max != 1 || lt.Desc.CardB.Max != 1 {
		t.Fatalf("1:1 cardinality lost: %+v", lt.Desc)
	}
	nm, _ := db.Schema().LinkType("area-edge")
	if nm.Desc.CardA != model.Unbounded || nm.Desc.CardB != model.Unbounded {
		t.Fatal("n:m must stay unbounded")
	}
}

func TestValidation(t *testing.T) {
	bad := &er.Diagram{
		Entities:      []er.EntityType{{Name: "a"}, {Name: "a"}},
		Relationships: nil,
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate entity must fail")
	}
	bad2 := &er.Diagram{
		Entities:      []er.EntityType{{Name: "a", Attrs: []model.AttrDesc{{Name: "x", Kind: model.KInt}}}},
		Relationships: []er.RelationshipType{{Name: "r", Left: "a", Right: "zz"}},
	}
	if err := bad2.Validate(); err == nil {
		t.Fatal("dangling relationship must fail")
	}
}

func TestOneToManyForeignKeySide(t *testing.T) {
	d := &er.Diagram{
		Entities: []er.EntityType{
			{Name: "dept", Attrs: []model.AttrDesc{{Name: "name", Kind: model.KString}}},
			{Name: "emp", Attrs: []model.AttrDesc{{Name: "name", Kind: model.KString}}},
		},
		Relationships: []er.RelationshipType{
			{Name: "works_in", Left: "dept", Right: "emp", Card: er.OneToMany},
		},
	}
	relDB, stats, err := d.ToRelational()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelationshipCarriers != 0 || stats.ForeignKeys != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	emp, _ := relDB.Rel("emp")
	if _, ok := emp.Schema.Lookup("works_in_fk"); !ok {
		t.Fatal("1:n must embed the fk on the many side")
	}
	// MAD side: each emp has at most one dept.
	madDB, _, err := d.ToMAD()
	if err != nil {
		t.Fatal(err)
	}
	lt, _ := madDB.Schema().LinkType("works_in")
	if lt.Desc.CardB.Max != 1 {
		t.Fatalf("1:n cardinality = %+v", lt.Desc)
	}
}
