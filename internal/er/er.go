// Package er models the (binary) entity-relationship diagrams of Fig. 1
// and the two mappings the paper contrasts:
//
//   - ER → MAD: "there is a one-to-one mapping from the ER model to the
//     MAD model associating each entity type with an atom type and each
//     relationship type with a link type. Compared to the relational
//     model, here we don't have to use any auxiliary structures."
//   - ER → relational: every n:m relationship type requires an auxiliary
//     relation; 1:n relationships embed a foreign key; 1:1 likewise.
//
// The F1 experiment counts the schema objects each mapping produces.
package er

import (
	"fmt"

	"mad/internal/model"
	"mad/internal/rel"
	"mad/internal/storage"
)

// Card classifies a binary relationship type.
type Card uint8

// Relationship cardinality classes.
const (
	OneToOne Card = iota
	OneToMany
	ManyToMany
)

// String renders the class in ER notation.
func (c Card) String() string {
	switch c {
	case OneToOne:
		return "1:1"
	case OneToMany:
		return "1:n"
	default:
		return "n:m"
	}
}

// EntityType is an ER entity type with attributes.
type EntityType struct {
	Name  string
	Attrs []model.AttrDesc
}

// RelationshipType is a binary ER relationship type (no relationship
// attributes, matching the paper's comparison target: "the well-known
// (binary) ER model (without relationship attributes)").
type RelationshipType struct {
	Name  string
	Left  string
	Right string
	Card  Card
}

// Diagram is an ER diagram.
type Diagram struct {
	Entities      []EntityType
	Relationships []RelationshipType
}

// Validate checks name uniqueness and reference integrity.
func (d *Diagram) Validate() error {
	names := make(map[string]bool)
	for _, e := range d.Entities {
		if e.Name == "" {
			return fmt.Errorf("er: empty entity name")
		}
		if names[e.Name] {
			return fmt.Errorf("er: duplicate entity type %q", e.Name)
		}
		names[e.Name] = true
	}
	rnames := make(map[string]bool)
	for _, r := range d.Relationships {
		if rnames[r.Name] {
			return fmt.Errorf("er: duplicate relationship type %q", r.Name)
		}
		rnames[r.Name] = true
		if !names[r.Left] || !names[r.Right] {
			return fmt.Errorf("er: relationship %q references unknown entity", r.Name)
		}
	}
	return nil
}

// MappingStats summarizes how many schema objects a mapping produced —
// the F1 comparison figures.
type MappingStats struct {
	// AtomTypes / Relations: primary object containers.
	Containers int
	// LinkTypes / AuxiliaryRelations: relationship carriers.
	RelationshipCarriers int
	// ForeignKeys: attributes added to embed 1:1 / 1:n relationships
	// relationally (MAD never needs these).
	ForeignKeys int
}

// ToMAD maps the diagram one-to-one onto a fresh MAD database schema:
// entity type → atom type, relationship type → link type, with the ER
// cardinality class carried into the extended link-type definition.
func (d *Diagram) ToMAD() (*storage.Database, MappingStats, error) {
	if err := d.Validate(); err != nil {
		return nil, MappingStats{}, err
	}
	db := storage.NewDatabase()
	var stats MappingStats
	for _, e := range d.Entities {
		desc, err := model.NewDesc(e.Attrs...)
		if err != nil {
			return nil, stats, err
		}
		if _, err := db.DefineAtomType(e.Name, desc); err != nil {
			return nil, stats, err
		}
		stats.Containers++
	}
	for _, r := range d.Relationships {
		ld := model.LinkDesc{SideA: r.Left, SideB: r.Right}
		switch r.Card {
		case OneToOne:
			ld.CardA = model.Cardinality{Max: 1}
			ld.CardB = model.Cardinality{Max: 1}
		case OneToMany:
			// One left partner per right atom; many right partners per left.
			ld.CardB = model.Cardinality{Max: 1}
		}
		if _, err := db.DefineLinkType(r.Name, ld); err != nil {
			return nil, stats, err
		}
		stats.RelationshipCarriers++
	}
	return db, stats, nil
}

// ToRelational maps the diagram onto a flat relational schema: one
// relation per entity type (surrogate id column prepended); n:m
// relationship types become auxiliary relations; 1:1 and 1:n embed a
// foreign key column in the appropriate entity relation.
func (d *Diagram) ToRelational() (*rel.Database, MappingStats, error) {
	if err := d.Validate(); err != nil {
		return nil, MappingStats{}, err
	}
	out := rel.NewDatabase()
	var stats MappingStats
	// Collect foreign keys to embed per entity.
	fks := make(map[string][]rel.Col)
	for _, r := range d.Relationships {
		switch r.Card {
		case ManyToMany:
			// handled below as auxiliary relation
		case OneToMany:
			// each right row references its single left partner
			fks[r.Right] = append(fks[r.Right], rel.Col{Name: r.Name + "_fk", Kind: model.KID})
			stats.ForeignKeys++
		case OneToOne:
			fks[r.Right] = append(fks[r.Right], rel.Col{Name: r.Name + "_fk", Kind: model.KID})
			stats.ForeignKeys++
		}
	}
	for _, e := range d.Entities {
		cols := []rel.Col{{Name: "id", Kind: model.KID}}
		for _, a := range e.Attrs {
			cols = append(cols, rel.Col{Name: a.Name, Kind: a.Kind})
		}
		cols = append(cols, fks[e.Name]...)
		schema, err := rel.NewSchema(cols...)
		if err != nil {
			return nil, stats, err
		}
		if err := out.Add(rel.New(e.Name, schema)); err != nil {
			return nil, stats, err
		}
		stats.Containers++
	}
	for _, r := range d.Relationships {
		if r.Card != ManyToMany {
			continue
		}
		schema := rel.MustSchema(
			rel.Col{Name: r.Left + "_id", Kind: model.KID},
			rel.Col{Name: r.Right + "_id", Kind: model.KID},
		)
		if err := out.Add(rel.New(r.Name+"__aux", schema)); err != nil {
			return nil, stats, err
		}
		stats.RelationshipCarriers++
	}
	return out, stats, nil
}

// Fig1Diagram returns the geographic ER diagram of Fig. 1: the application
// objects (state, river, city) over the shared geographical model (area,
// net, edge, point), with the sharing-inducing relationship types n:m.
func Fig1Diagram() *Diagram {
	str := func(n string) model.AttrDesc { return model.AttrDesc{Name: n, Kind: model.KString, NotNull: true} }
	flt := func(n string) model.AttrDesc { return model.AttrDesc{Name: n, Kind: model.KFloat} }
	return &Diagram{
		Entities: []EntityType{
			{Name: "state", Attrs: []model.AttrDesc{str("name"), str("abbrev"), flt("hectare")}},
			{Name: "river", Attrs: []model.AttrDesc{str("name"), flt("length")}},
			{Name: "city", Attrs: []model.AttrDesc{str("name"), {Name: "population", Kind: model.KInt}}},
			{Name: "area", Attrs: []model.AttrDesc{str("tag")}},
			{Name: "net", Attrs: []model.AttrDesc{str("tag")}},
			{Name: "edge", Attrs: []model.AttrDesc{str("tag")}},
			{Name: "point", Attrs: []model.AttrDesc{str("name"), flt("x"), flt("y")}},
		},
		Relationships: []RelationshipType{
			{Name: "state-area", Left: "state", Right: "area", Card: OneToOne},
			{Name: "river-net", Left: "river", Right: "net", Card: OneToOne},
			{Name: "city-point", Left: "city", Right: "point", Card: OneToOne},
			{Name: "area-edge", Left: "area", Right: "edge", Card: ManyToMany},
			{Name: "net-edge", Left: "net", Right: "edge", Card: ManyToMany},
			{Name: "edge-point", Left: "edge", Right: "point", Card: ManyToMany},
		},
	}
}
