package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"mad/internal/plan"
)

// RunP12 measures the streaming execution surface against the
// materialized one on the assembly workload.
//
// Part one is latency: Plan.Stream hands the first molecule to the
// consumer while the bulk of the root batch is still deriving, so the
// time to first result is a small fraction of the full materialization
// time (which is what Execute makes every caller wait for).
//
// Part two is work under LIMIT: the stream cancels the in-flight
// derivation once the cap is reached, so a LIMIT-k query fetches a
// bounded number of atoms no matter how large the occurrence is,
// where the materialized path derives everything and then throws the
// tail away.
func RunP12(w io.Writer, scale int) error {
	if scale < 1 {
		scale = 1
	}
	header(w, "P12", "streaming execution: time to first molecule, LIMIT work caps")

	const perScale = 2048
	db, mt, err := BuildAssembly(perScale * scale)
	if err != nil {
		return err
	}
	defer plan.Release(db)
	pred := ResidualHeavyPred()
	fmt.Fprintf(w, "workload: %d assemblies, residual-heavy predicate\n\n", perScale*scale)

	// Part one: time to first molecule vs full materialization.
	pm, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		return err
	}
	start := time.Now()
	set, err := pm.Execute()
	if err != nil {
		return err
	}
	materialize := time.Since(start)

	ps, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		return err
	}
	start = time.Now()
	st, err := ps.Stream(context.Background())
	if err != nil {
		return err
	}
	m, err := st.Next()
	if err != nil {
		return err
	}
	if m == nil {
		return fmt.Errorf("P12: stream delivered no molecules")
	}
	first := time.Since(start)
	streamed := 1
	for {
		m, err := st.Next()
		if err != nil {
			return err
		}
		if m == nil {
			break
		}
		streamed++
	}
	drain := time.Since(start)
	if err := st.Close(); err != nil {
		return err
	}
	if streamed != len(set) {
		return fmt.Errorf("P12: stream delivered %d molecules, Execute %d", streamed, len(set))
	}
	tw := table(w)
	fmt.Fprintln(tw, "surface\tfirst molecule\tall molecules\tmolecules")
	fmt.Fprintf(tw, "Execute (materialize)\t%v\t%v\t%d\n",
		materialize.Round(10*time.Microsecond), materialize.Round(10*time.Microsecond), len(set))
	fmt.Fprintf(tw, "Stream (incremental)\t%v\t%v\t%d\n",
		first.Round(10*time.Microsecond), drain.Round(10*time.Microsecond), streamed)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "first molecule after %.1f%% of the materialized wait\n\n",
		100*float64(first)/float64(materialize))

	// Part two: LIMIT caps the derivation work.
	const limit = 8
	full, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		return err
	}
	before := db.Stats().Snapshot()
	if _, err := full.Execute(); err != nil {
		return err
	}
	fullFetches := db.Stats().Snapshot().AtomsFetched - before.AtomsFetched

	capped, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		return err
	}
	capped.Limit = limit
	before = db.Stats().Snapshot()
	got, err := capped.Execute()
	if err != nil {
		return err
	}
	cappedFetches := db.Stats().Snapshot().AtomsFetched - before.AtomsFetched
	if len(got) != limit {
		return fmt.Errorf("P12: LIMIT %d delivered %d molecules", limit, len(got))
	}
	fmt.Fprintf(w, "LIMIT %d: %d atom fetches vs %d for the full run (%.1f%%) — cancellation stops the workers mid-batch\n",
		limit, cappedFetches, fullFetches, 100*float64(cappedFetches)/float64(fullFetches))
	if cappedFetches*4 > fullFetches {
		return fmt.Errorf("P12: LIMIT failed to cap the derivation work (%d of %d fetches)",
			cappedFetches, fullFetches)
	}
	return nil
}
