package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// BuildAssembly constructs the P10 workload (exported for the
// repository-level benchmarks): a three-level assembly → unit → part
// structure where every assembly holds 4 units of 4 parts each, and a
// selective mid-structure attribute — part.serial is a unique serial
// number everywhere except for a handful of recalled parts flagged
// "S-42". With an index on part.serial, the only way to exploit the
// selectivity from the root is a filtered full scan; entering at the
// part level and climbing the symmetric links upward touches a tiny
// fraction of the database.
func BuildAssembly(assemblies int) (*storage.Database, *core.MoleculeType, error) {
	db := storage.NewDatabase()
	asmDesc := model.MustDesc(model.AttrDesc{Name: "code", Kind: model.KString})
	unitDesc := model.MustDesc(model.AttrDesc{Name: "slot", Kind: model.KInt})
	partDesc := model.MustDesc(
		model.AttrDesc{Name: "serial", Kind: model.KString},
		model.AttrDesc{Name: "weight", Kind: model.KFloat},
	)
	for _, at := range []struct {
		name string
		desc *model.Desc
	}{{"asm", asmDesc}, {"unit", unitDesc}, {"part", partDesc}} {
		if _, err := db.DefineAtomType(at.name, at.desc); err != nil {
			return nil, nil, err
		}
	}
	for _, lt := range []struct{ name, a, b string }{
		{"asm-unit", "asm", "unit"}, {"unit-part", "unit", "part"},
	} {
		if _, err := db.DefineLinkType(lt.name, model.LinkDesc{SideA: lt.a, SideB: lt.b}); err != nil {
			return nil, nil, err
		}
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < assemblies; i++ {
		aid, err := db.InsertAtom("asm", model.Str(fmt.Sprintf("A%d", i)))
		if err != nil {
			return nil, nil, err
		}
		for u := 0; u < 4; u++ {
			uid, err := db.InsertAtom("unit", model.Int(int64(u)))
			if err != nil {
				return nil, nil, err
			}
			if err := db.Connect("asm-unit", aid, uid); err != nil {
				return nil, nil, err
			}
			for k := 0; k < 4; k++ {
				serial := fmt.Sprintf("SN-%d-%d-%d", i, u, k)
				// One flagged part per 64 assemblies, in the first slot.
				if u == 0 && k == 0 && i%64 == 0 {
					serial = "S-42"
				}
				pid, err := db.InsertAtom("part", model.Str(serial), model.Float(rng.Float64()))
				if err != nil {
					return nil, nil, err
				}
				if err := db.Connect("unit-part", uid, pid); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	mt, err := core.Define(db, "assembly_p10", []string{"asm", "unit", "part"},
		[]core.DirectedLink{
			{Link: "asm-unit", From: "asm", To: "unit"},
			{Link: "unit-part", From: "unit", To: "part"},
		})
	if err != nil {
		return nil, nil, err
	}
	return db, mt, nil
}

// FlaggedPartPred is the P10 predicate: the selective mid-structure
// equality part.serial = 'S-42'.
func FlaggedPartPred() expr.Expr {
	return expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "part", Name: "serial"}, R: expr.Lit(model.Str("S-42"))}
}

// RunP10 measures the symmetric access path: the same selective
// mid-structure predicate executed through the filtered root scan (the
// only plan available without an interior index — every assembly is
// derived far enough for the pushdown hook to reject it) and through the
// interior-index entry (index lookup on part.serial, upward climb to the
// candidate assemblies, downward derivation of just those). The plans
// are compiled before and after CREATE INDEX on part.serial, so the
// contest the planner resolves is shown by EXPLAIN's `considered` line.
func RunP10(w io.Writer, scale int) error {
	header(w, "P10", "symmetric access paths: interior-index entry vs filtered root scan")
	db, mt, err := BuildAssembly(512 * scale)
	if err != nil {
		return err
	}
	pred := FlaggedPartPred()

	// Without the interior index the planner can only scan the roots.
	rootScan, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		return err
	}
	if err := db.CreateIndex("part", "serial"); err != nil {
		return err
	}
	interior, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		return err
	}

	tw := table(w)
	fmt.Fprintf(tw, "plan\taccess\troots in\tmolecules\tatoms fetched\tlinks traversed\tindex lookups\n")
	for _, c := range []struct {
		label string
		p     *plan.Plan
	}{{"root scan + pushdown", rootScan}, {"interior-index entry", interior}} {
		db.Stats().Reset()
		set, err := c.p.Execute()
		if err != nil {
			return err
		}
		work := db.Stats().Snapshot()
		access := "full scan"
		if c.p.Access.Kind == plan.InteriorIndex {
			access = fmt.Sprintf("interior %s.%s", c.p.Access.EntryType, c.p.Access.Attr)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\n", c.label, access,
			c.p.Access.ActRoots, len(set), work.AtomsFetched, work.LinksTraversed, work.IndexLookups)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nplan with the interior index (EXPLAIN form):\n%s", interior.Render())
	return nil
}
