package experiments

import (
	"fmt"
	"io"
	"time"

	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
)

// ResidualHeavyPred is the P11 workload predicate: five conjuncts that
// all need the whole molecule (cross-type existential comparisons, a
// universal quantifier, a negated existential, a count-vs-count
// comparison), so none can push below derivation — the residual chain
// dominates execution time, which is exactly the regime the fused
// pipeline targets. Every conjunct passes on every molecule of the
// BuildAssembly workload, so the chain runs in full.
func ResidualHeavyPred() expr.Expr {
	slot := expr.Attr{Type: "unit", Name: "slot"}
	weight := expr.Attr{Type: "part", Name: "weight"}
	conj := []expr.Expr{
		// ∃ (slot, weight) pair with slot ≥ weight: slots reach 3,
		// weights stay below 1 — true everywhere, evaluated over every
		// slot × weight pair.
		expr.Cmp{Op: expr.GE, L: slot, R: weight},
		// ∃ pair with weight < slot — true everywhere, same sweep.
		expr.Cmp{Op: expr.LT, L: weight, R: slot},
		// Every part weighs at most 1 — a universal sweep.
		expr.All{Attr: weight, Op: expr.LE, R: expr.Lit(model.Float(1))},
		// No part carries the impossible serial — a negated existential
		// string sweep.
		expr.Not{E: expr.Cmp{Op: expr.EQ,
			L: expr.Attr{Type: "part", Name: "serial"}, R: expr.Lit(model.Str("no-such-serial"))}},
		// Every assembly holds more parts than units.
		expr.Cmp{Op: expr.GE, L: expr.CountOf{Type: "part"}, R: expr.CountOf{Type: "unit"}},
	}
	pred := conj[0]
	for _, c := range conj[1:] {
		pred = expr.And{L: pred, R: c}
	}
	return pred
}

// MisRankedPred is the P11 feedback predicate: two residual conjuncts
// whose estimate-based rank is wrong at the molecule level.
//
//   - R1 (∃ slot ≥ weight) gets the default 0.5 selectivity and the
//     cheaper cost, so the compile ranks it first — but a molecule holds
//     slots up to 3 and weights below 1, so it passes *every* molecule
//     and filters nothing;
//   - R2 (part.serial = 'S-42' OR COUNT(part) < 0) estimates weaker but
//     actually passes only the ~1/64 flagged assemblies. (The OR with an
//     always-false count comparison keeps the equality out of pushdown,
//     forcing it to stay residual.)
//
// The first execution observes the true molecule-level pass rates; the
// re-ranked chain runs the selective conjunct first, and the second
// execution evaluates far fewer conjuncts.
func MisRankedPred() expr.Expr {
	r1 := expr.Cmp{Op: expr.GE,
		L: expr.Attr{Type: "unit", Name: "slot"}, R: expr.Attr{Type: "part", Name: "weight"}}
	r2 := expr.Or{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "serial"}, R: expr.Lit(model.Str("S-42"))},
		R: expr.Cmp{Op: expr.LT, L: expr.CountOf{Type: "part"}, R: expr.Lit(model.Int(0))},
	}
	return expr.And{L: r1, R: r2}
}

// residualEvals sums the per-conjunct molecule evaluations of the last
// execution — the figure the feedback loop drives down.
func residualEvals(p *plan.Plan) int {
	n := 0
	for i := range p.Residuals {
		n += p.Residuals[i].Evals
	}
	return n
}

// residualOrder renders the executed chain compactly: conjuncts in
// evaluation order with their pass counts.
func residualOrder(p *plan.Plan) string {
	s := ""
	for i := range p.Residuals {
		r := &p.Residuals[i]
		if i > 0 {
			s += " → "
		}
		s += fmt.Sprintf("%s [%s] (passed %d/%d)", r.Conjunct, r.Source, r.Passed, r.Evals)
	}
	return s
}

// RunP11 measures the fused execution pipeline and the execution-
// feedback loop.
//
// Part one compares PR 3's derive-then-filter execution (parallel pruned
// derivation, then a barrier, then the residual chain on one goroutine)
// with the fused pipeline (each worker runs the residual chain on a
// molecule the moment it finishes deriving it) on a residual-heavy
// workload, across worker counts. On a single-core host the fused win
// reduces to the allocation savings; the speedup column grows with
// available cores because fusion parallelizes the residual work the
// barrier serializes.
//
// Part two executes a query whose residual chain the cost model
// mis-ranks, twice: the first execution records the observed molecule-
// level pass rates into the feedback store, the second re-ranks the
// chain around them ([observed] provenance) and evaluates far fewer
// conjuncts.
func RunP11(w io.Writer, scale int) error {
	if scale < 1 {
		scale = 1
	}
	header(w, "P11", "fused derive+residual pipeline, feedback-calibrated costs")

	db, mt, err := BuildAssembly(512 * scale)
	if err != nil {
		return err
	}
	// Execute registers the database in the plan/feedback registries;
	// release both workload databases when the experiment is done.
	defer plan.Release(db)
	pred := ResidualHeavyPred()
	fmt.Fprintf(w, "workload: %d assemblies, residual-only predicate (%d conjuncts)\n\n",
		512*scale, 5)
	tw := table(w)
	fmt.Fprintln(tw, "workers\tbarrier (derive→filter)\tfused (derive+filter)\tspeedup\tmolecules")
	for _, workers := range []int{1, 2, 4, 8} {
		pb, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			return err
		}
		pb.Workers = workers
		start := time.Now()
		setB, err := pb.ExecuteBarrier()
		if err != nil {
			return err
		}
		barrier := time.Since(start)

		plan.FeedbackFor(db).Reset()
		pf, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			return err
		}
		pf.Workers = workers
		start = time.Now()
		setF, err := pf.Execute()
		if err != nil {
			return err
		}
		fused := time.Since(start)
		if len(setB) != len(setF) {
			return fmt.Errorf("P11: barrier %d molecules, fused %d", len(setB), len(setF))
		}
		fmt.Fprintf(tw, "%d\t%v\t%v\t%.2fx\t%d\n",
			workers, barrier.Round(10*time.Microsecond), fused.Round(10*time.Microsecond),
			float64(barrier)/float64(fused), len(setF))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nfeedback loop: mis-ranked residual chain, two executions")
	fdb, asmMT, err := BuildAssembly(256 * scale)
	if err != nil {
		return err
	}
	cache := plan.CacheFor(fdb)
	defer plan.Release(fdb)
	mis := MisRankedPred()
	p1, _, err := cache.Compile(asmMT.Desc(), mis)
	if err != nil {
		return err
	}
	if _, err := p1.Execute(); err != nil {
		return err
	}
	first := residualEvals(p1)
	fmt.Fprintf(w, "  execution 1 (estimate order): %s\n", residualOrder(p1))
	p2, cached, err := cache.Compile(asmMT.Desc(), mis)
	if err != nil {
		return err
	}
	if _, err := p2.Execute(); err != nil {
		return err
	}
	second := residualEvals(p2)
	fmt.Fprintf(w, "  execution 2 (observed order, cache hit %v): %s\n", cached, residualOrder(p2))
	fmt.Fprintf(w, "  conjunct evaluations: %d → %d (%.1f%% of the first run)\n",
		first, second, 100*float64(second)/float64(first))
	if second >= first {
		return fmt.Errorf("P11: feedback failed to reduce conjunct evaluations (%d → %d)", first, second)
	}
	fmt.Fprintf(w, "\nplan after feedback (EXPLAIN form):\n%s", p2.Render())
	return nil
}
