package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// BuildSkewed constructs the P9 workload (exported for the repository-
// level benchmarks): parts whose batch attribute is
// 0 for 90% of the atoms (the rest spread over 1..50) and whose grade is
// uniform over ten values, each part linked to two components. Indexes
// cover both part attributes, so the access-path choice is a genuine
// contest between a heavy-hitter index and a selective one.
func BuildSkewed(parts int) (*storage.Database, *core.MoleculeType, error) {
	db := storage.NewDatabase()
	partDesc := model.MustDesc(
		model.AttrDesc{Name: "batch", Kind: model.KInt},
		model.AttrDesc{Name: "grade", Kind: model.KString},
	)
	compDesc := model.MustDesc(model.AttrDesc{Name: "weight", Kind: model.KFloat})
	if _, err := db.DefineAtomType("part", partDesc); err != nil {
		return nil, nil, err
	}
	if _, err := db.DefineAtomType("comp", compDesc); err != nil {
		return nil, nil, err
	}
	if _, err := db.DefineLinkType("part-comp", model.LinkDesc{SideA: "part", SideB: "comp"}); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < parts; i++ {
		batch := int64(0)
		if i%10 == 9 {
			batch = int64(1 + rng.Intn(50))
		}
		id, err := db.InsertAtom("part", model.Int(batch), model.Str(fmt.Sprintf("g%d", i%10)))
		if err != nil {
			return nil, nil, err
		}
		for k := 0; k < 2; k++ {
			cid, err := db.InsertAtom("comp", model.Float(rng.Float64()))
			if err != nil {
				return nil, nil, err
			}
			if err := db.Connect("part-comp", id, cid); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, attr := range []string{"batch", "grade"} {
		if err := db.CreateIndex("part", attr); err != nil {
			return nil, nil, err
		}
	}
	mt, err := core.Define(db, "part_comp_p9", []string{"part", "comp"},
		[]core.DirectedLink{{Link: "part-comp", From: "part", To: "comp"}})
	if err != nil {
		return nil, nil, err
	}
	return db, mt, nil
}

// RunP9 measures what histogram statistics buy the planner on skewed
// data, and what the plan cache buys repeated statements:
//
//  1. Access path under skew. The predicate batch = 0 AND grade = 'g3'
//     offers two indexed root equalities. Under the uniform assumption
//     the batch index looks cheapest (51 distinct keys), but batch = 0
//     matches 90% of the container; the grade index honestly matches
//     10%. The experiment compiles the same predicate before ANALYZE
//     (uniform estimates) and after (equi-depth histograms) and reports
//     the logical work of both executions.
//  2. Plan caching. The same statement compiled through the per-database
//     plan cache reuses the compilation until ANALYZE invalidates it;
//     the compile counters prove recompilation is skipped.
func RunP9(w io.Writer, scale int) error {
	header(w, "P9", "histogram statistics: access-path choice under skew, plan caching")
	db, mt, err := BuildSkewed(500 * scale)
	if err != nil {
		return err
	}
	pred := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "batch"}, R: expr.Lit(model.Int(0))},
		R: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "grade"}, R: expr.Lit(model.Str("g3"))},
	}

	uniform, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		return err
	}
	if _, err := db.Analyze("part"); err != nil {
		return err
	}
	histo, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		return err
	}

	tw := table(w)
	fmt.Fprintf(tw, "planner\taccess path\test roots\tact roots\tmolecules\tatoms fetched\tlinks traversed\n")
	for _, c := range []struct {
		label string
		p     *plan.Plan
	}{{"uniform", uniform}, {"histogram", histo}} {
		db.Stats().Reset()
		set, err := c.p.Execute()
		if err != nil {
			return err
		}
		work := db.Stats().Snapshot()
		fmt.Fprintf(tw, "%s\tindex %s.%s\t≈%d [%s]\t%d\t%d\t%d\t%d\n",
			c.label, c.p.Access.Root, c.p.Access.Attr,
			c.p.Access.EstRoots, c.p.Access.EstSource, c.p.Access.ActRoots,
			len(set), work.AtomsFetched, work.LinksTraversed)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nplan after ANALYZE:\n%s", histo.Render())

	// Plan caching: repeated compiles of one statement.
	cache := plan.CacheFor(db)
	h0, _, c0 := cache.Counters()
	const reps = 50
	for i := 0; i < reps; i++ {
		p, _, err := cache.Compile(mt.Desc(), pred)
		if err != nil {
			return err
		}
		if _, err := p.Execute(); err != nil {
			return err
		}
	}
	h1, _, c1 := cache.Counters()
	fmt.Fprintf(w, "\nplan cache: %d executions, %d compile(s), %d hit(s)\n", reps, c1-c0, h1-h0)
	if _, err := db.Analyze("part"); err != nil {
		return err
	}
	if _, _, err := cache.Compile(mt.Desc(), pred); err != nil {
		return err
	}
	_, _, c2 := cache.Counters()
	fmt.Fprintf(w, "after ANALYZE: next compile recompiles (compiles %d → %d)\n", c1-c0, c2-c0)
	return nil
}
