package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"mad/internal/experiments"
)

// TestAllExperimentsRun executes every experiment at scale 1 and checks
// for the key content each must report.
func TestAllExperimentsRun(t *testing.T) {
	wantContent := map[string][]string{
		"F1":  {"ER → MAD", "7 atom types", "3 aux relations"},
		"F2":  {"mt state", "point neighborhood", "GO MG MS SP", "Parana"},
		"F3":  {"atom-type description", "referential integrity"},
		"F4":  {"∈ AT*", "∈ LT*", "∈ DB*", "GEO_DB"},
		"F5":  {"restriction (op-specific)", "propagation (prop)", "definition (α)"},
		"Q1":  {"equal: true", "molecule m1"},
		"Q2":  {"equivalent: true", "pn"},
		"P1":  {"states", "MAD derive", "relational joins"},
		"P2":  {"duplication", "NF² cells"},
		"P3":  {"mt_state", "point_neighborhood", "never changed"},
		"P4":  {"parts", "self-join closure"},
		"P5":  {"Σ[hectare>50]", "Π[state,area]", "Definition 9"},
		"P6":  {"molecule layer", "atom layer"},
		"P7":  {"workers", "speedup"},
		"P8":  {"naive Σ", "planned", "pushdown", "index lookup"},
		"P9":  {"uniform", "histogram", "plan cache", "ANALYZE"},
		"P10": {"root scan + pushdown", "interior-index entry", "[interior-index]", "recover roots upward"},
		"P11": {"barrier (derive→filter)", "fused (derive+filter)", "feedback loop", "[observed]", "conjunct evaluations"},
		"P12": {"Execute (materialize)", "Stream (incremental)", "first molecule", "LIMIT 8", "atom fetches"},
	}
	for _, e := range experiments.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, 1); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			for _, want := range wantContent[e.ID] {
				if !strings.Contains(out, want) {
					t.Errorf("%s output missing %q\n--- output ---\n%s", e.ID, want, out)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := experiments.Lookup("F2"); !ok {
		t.Fatal("F2 must exist")
	}
	if _, ok := experiments.Lookup("ZZ"); ok {
		t.Fatal("ZZ must not exist")
	}
	if len(experiments.All()) != 21 {
		t.Fatalf("experiment count = %d, want 21", len(experiments.All()))
	}
}
