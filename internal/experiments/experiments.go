// Package experiments regenerates every evaluation artifact of the paper:
// Figures 1–5, the two Chapter-4 example queries, and performance
// experiments backing the paper's qualitative claims (see DESIGN.md §4 for
// the experiment index and EXPERIMENTS.md for recorded outputs). The
// madbench command is a thin CLI over this package; the repository-level
// benchmarks reuse the same building blocks under testing.B.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"mad/internal/core"
	"mad/internal/geo"
	"mad/internal/storage"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, scale int) error
}

// All returns the experiments in presentation order. scale multiplies the
// workload sizes of the P-series (1 = quick, 4 = paper-scale shapes).
func All() []Experiment {
	return []Experiment{
		{ID: "F1", Title: "Fig. 1 — ER diagram ↔ MAD diagram vs relational mapping", Run: RunF1},
		{ID: "F2", Title: "Fig. 2 — molecule types 'point neighborhood' and 'mt state'", Run: RunF2},
		{ID: "F3", Title: "Fig. 3 — relational vs MAD concept correspondence", Run: RunF3},
		{ID: "F4", Title: "Fig. 4 — formal specification of the geographic database", Run: RunF4},
		{ID: "F5", Title: "Fig. 5 — anatomy of the molecule-type operations", Run: RunF5},
		{ID: "Q1", Title: "Ch. 4 — SELECT ALL FROM mt_state(state-area-edge-point)", Run: RunQ1},
		{ID: "Q2", Title: "Ch. 4 — point neighborhood of 'pn' (symmetric links)", Run: RunQ2},
		{ID: "P1", Title: "MAD derivation vs relational auxiliary-relation joins", Run: RunP1},
		{ID: "P2", Title: "shared subobjects vs NF² duplication", Run: RunP2},
		{ID: "P3", Title: "dynamic object definition over one atom network", Run: RunP3},
		{ID: "P4", Title: "recursive molecules: parts explosion", Run: RunP4},
		{ID: "P5", Title: "closure: operator pipelines (Theorems 1–3)", Run: RunP5},
		{ID: "P6", Title: "PRIMA two-layer work split", Run: RunP6},
		{ID: "P7", Title: "parallel molecule derivation (query parallelism outlook)", Run: RunP7},
		{ID: "P8", Title: "predicate pushdown: naive Σ vs planned derivation", Run: RunP8},
		{ID: "P9", Title: "histogram statistics: skew-proof access paths, plan caching", Run: RunP9},
		{ID: "P10", Title: "symmetric access paths: interior-index entry vs root scan", Run: RunP10},
		{ID: "P11", Title: "fused derive+residual pipeline, feedback-calibrated costs", Run: RunP11},
		{ID: "P12", Title: "streaming execution: first-molecule latency, LIMIT work caps", Run: RunP12},
		{ID: "P16", Title: "composable access paths: index intersection vs single entry", Run: RunP16},
		{ID: "P17", Title: "BOM part explosion: indexed fixpoint entry vs eager full closure", Run: RunP17},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// header prints a section header.
func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n== %s: %s ==\n\n", id, title)
}

// table starts an aligned table writer.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// mtStateDesc is the Fig. 2 "mt state" structure.
func mtStateDesc() ([]string, []core.DirectedLink) {
	return []string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		}
}

// pointNeighborhoodDesc is the Fig. 2 "point neighborhood" structure.
func pointNeighborhoodDesc() ([]string, []core.DirectedLink) {
	return []string{"point", "edge", "area", "state", "net", "river"},
		[]core.DirectedLink{
			{Link: "edge-point", From: "point", To: "edge"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "state-area", From: "area", To: "state"},
			{Link: "net-edge", From: "edge", To: "net"},
			{Link: "river-net", From: "net", To: "river"},
		}
}

// defineMtState defines the mt_state molecule type over a database.
func defineMtState(db *storage.Database, name string) (*core.MoleculeType, error) {
	types, edges := mtStateDesc()
	return core.Define(db, name, types, edges)
}

// stateAbbrevs resolves the state abbreviations of a molecule, sorted.
func stateAbbrevs(db *storage.Database, m *core.Molecule) []string {
	var out []string
	for _, id := range m.AtomsOf("state") {
		a, ok := db.GetAtom("state", id)
		if !ok {
			continue
		}
		ab, _ := a.Get(1).AsString()
		out = append(out, ab)
	}
	sort.Strings(out)
	return out
}

// sampleOrErr builds the Fig. 1 sample.
func sampleOrErr() (*geo.Sample, error) { return geo.BuildSample() }
