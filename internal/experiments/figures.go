package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mad/internal/core"
	"mad/internal/er"
	"mad/internal/expr"
	"mad/internal/model"
)

// RunF1 reproduces Fig. 1's mapping comparison: the geographic ER diagram
// maps one-to-one onto the MAD schema, while the relational mapping needs
// auxiliary relations and foreign keys.
func RunF1(w io.Writer, _ int) error {
	d := er.Fig1Diagram()
	madDB, madStats, err := d.ToMAD()
	if err != nil {
		return err
	}
	_, relStats, err := d.ToRelational()
	if err != nil {
		return err
	}
	header(w, "F1", "ER → MAD vs ER → relational")
	fmt.Fprintf(w, "ER diagram: %d entity types, %d relationship types (%d of them n:m)\n\n",
		len(d.Entities), len(d.Relationships), countNM(d))
	tw := table(w)
	fmt.Fprintln(tw, "mapping\tcontainers\trelationship carriers\tauxiliary objects\tforeign keys")
	fmt.Fprintf(tw, "ER → MAD\t%d atom types\t%d link types\t0\t%d\n",
		madStats.Containers, madStats.RelationshipCarriers, madStats.ForeignKeys)
	fmt.Fprintf(tw, "ER → relational\t%d relations\t%d aux relations\t%d\t%d\n",
		relStats.Containers, relStats.RelationshipCarriers, relStats.RelationshipCarriers, relStats.ForeignKeys)
	tw.Flush()
	fmt.Fprintf(w, "\nMAD diagram (one-to-one image of the ER diagram):\n%s", madDB.Schema().Render())
	fmt.Fprintln(w, "paper: \"there is a one-to-one mapping from the ER model to the MAD model ...")
	fmt.Fprintln(w, "        here we don't have to use any auxiliary structures.\"")
	return nil
}

func countNM(d *er.Diagram) int {
	n := 0
	for _, r := range d.Relationships {
		if r.Card == er.ManyToMany {
			n++
		}
	}
	return n
}

// RunF2 reproduces Fig. 2: the two molecule types derived from the same
// atom networks, including the shared subobjects between them.
func RunF2(w io.Writer, _ int) error {
	s, err := sampleOrErr()
	if err != nil {
		return err
	}
	header(w, "F2", "molecule types over one database occurrence")

	mtState, err := defineMtState(s.DB, "mt_state")
	if err != nil {
		return err
	}
	states, err := mtState.Derive()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "molecule type 'mt state' (structure %s)\n", mtState.Desc())
	tw := table(w)
	fmt.Fprintln(tw, "molecule\tareas\tedges\tpoints")
	for _, m := range states {
		a, _ := s.DB.GetAtom("state", m.Root())
		ab, _ := a.Get(1).AsString()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", ab,
			len(m.AtomsOf("area")), len(m.AtomsOf("edge")), len(m.AtomsOf("point")))
	}
	tw.Flush()
	shared := states.SharedAtoms()
	fmt.Fprintf(w, "shared subobjects across the %d state molecules: %d atoms appear in ≥2 molecules\n",
		len(states), len(shared))
	fmt.Fprintf(w, "total component atoms %d vs distinct atoms %d (overlap = non-disjoint atom sets)\n\n",
		states.TotalAtoms(), states.DistinctAtoms())

	types, edges := pointNeighborhoodDesc()
	pn, err := core.Define(s.DB, "point-neighborhood", types, edges)
	if err != nil {
		return err
	}
	dv, err := pn.Deriver()
	if err != nil {
		return err
	}
	m, err := dv.DeriveFor(s.PN)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "molecule type 'point neighborhood' rooted at point \"pn\" (structure %s)\n", pn.Desc())
	fmt.Fprintf(w, "  states reached: %s\n", strings.Join(stateAbbrevs(s.DB, m), " "))
	var rivers []string
	for _, id := range m.AtomsOf("river") {
		a, _ := s.DB.GetAtom("river", id)
		name, _ := a.Get(0).AsString()
		rivers = append(rivers, name)
	}
	fmt.Fprintf(w, "  rivers reached: %s\n", strings.Join(rivers, " "))
	fmt.Fprintf(w, "  (paper's Fig. 2 shows this molecule reaching SP MS MG GO and Parana)\n")
	fmt.Fprintf(w, "\nrendered molecule:\n%s", m.Format(s.DB))
	return nil
}

// RunF3 prints the Fig. 3 correspondence of relational and MAD concepts,
// checking each MAD-side concept against the implementation.
func RunF3(w io.Writer, _ int) error {
	header(w, "F3", "corresponding concepts")
	rows := [][2]string{
		{"attribute", "attribute"},
		{"attribute domain", "attribute domain"},
		{"relation schema", "atom-type description"},
		{"tuple set", "atom-type occurrence"},
		{"tuple", "atom"},
		{"relation", "atom type"},
		{"database", "database"},
		{"—", "link"},
		{"—", "link-type description"},
		{"—", "link-type occurrence"},
		{"—", "link type"},
		{"referential integrity (?)", "referential integrity (!)"},
		{"'relation domain'", "database domain"},
	}
	tw := table(w)
	fmt.Fprintln(tw, "relational concepts\tMAD concepts")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\n", r[0], r[1])
	}
	tw.Flush()
	// Back the "(!)" claim: deleting a linked atom cascades, so no
	// dangling links can exist.
	s, err := sampleOrErr()
	if err != nil {
		return err
	}
	dropped, err := s.DB.DeleteAtom("state", s.States["SP"])
	if err != nil {
		return err
	}
	if err := s.DB.CheckIntegrity(); err != nil {
		return fmt.Errorf("integrity after delete: %w", err)
	}
	fmt.Fprintf(w, "\nreferential integrity check: deleting state SP dropped %d incident link(s); integrity holds.\n", dropped)
	return nil
}

// RunF4 renders the formal specification of the geographic database in
// the paper's AT*/LT*/DB* notation.
func RunF4(w io.Writer, _ int) error {
	s, err := sampleOrErr()
	if err != nil {
		return err
	}
	header(w, "F4", "GEO_DB = <AT, LT> ∈ DB*")
	schema := s.DB.Schema()
	for _, at := range schema.AtomTypes() {
		c, _ := s.DB.Container(at.Name)
		fmt.Fprintf(w, "%s = <%s, %s, {%d atoms}> ∈ AT*\n", at.Name, at.Name, at.Desc, c.Len())
	}
	fmt.Fprintln(w)
	for _, lt := range schema.LinkTypes() {
		ls, _ := s.DB.LinkStore(lt.Name)
		sampleLinks := ""
		n := 0
		ls.Scan(func(l model.Link) bool {
			if n < 3 {
				sampleLinks += l.String() + ", "
			}
			n++
			return n <= 3
		})
		fmt.Fprintf(w, "%s = <%s, {%s, %s}, {%s…}> ∈ LT* (%d links)\n",
			lt.Name, lt.Name, lt.Desc.SideA, lt.Desc.SideB, sampleLinks, ls.Len())
	}
	var atNames, ltNames []string
	for _, at := range schema.AtomTypes() {
		atNames = append(atNames, at.Name)
	}
	for _, lt := range schema.LinkTypes() {
		ltNames = append(ltNames, lt.Name)
	}
	fmt.Fprintf(w, "\nGEO_DB = <{%s}, {%s}> ∈ DB*\n",
		strings.Join(atNames, ", "), strings.Join(ltNames, ", "))
	return nil
}

// RunF5 traces each molecule-type operation, exhibiting the Fig. 5
// anatomy: operation-specific action → propagation (prop) → definition α.
func RunF5(w io.Writer, _ int) error {
	s, err := sampleOrErr()
	if err != nil {
		return err
	}
	header(w, "F5", "every operation factors through prop and α")
	mt, err := defineMtState(s.DB, "mt_state")
	if err != nil {
		return err
	}
	pred := expr.Cmp{Op: expr.GT,
		L: expr.Attr{Type: "state", Name: "hectare"}, R: expr.Lit(model.Float(300))}

	trace := &core.OpTrace{}
	big, err := core.Restrict(mt, pred, "", trace)
	if err != nil {
		return err
	}
	fmt.Fprint(w, trace.String())

	trace = &core.OpTrace{}
	if _, err := core.Project(mt, core.Projection{Keep: []string{"state", "area"}}, "", trace); err != nil {
		return err
	}
	fmt.Fprint(w, trace.String())

	small, err := core.Restrict(mt, expr.Not{E: pred}, "", nil)
	if err != nil {
		return err
	}
	trace = &core.OpTrace{}
	if _, err := core.Union(big, small, "", trace); err != nil {
		return err
	}
	fmt.Fprint(w, trace.String())

	trace = &core.OpTrace{}
	if _, err := core.Difference(big, small, "", trace); err != nil {
		return err
	}
	fmt.Fprint(w, trace.String())

	sa, err := core.Define(s.DB, "", []string{"river", "net"},
		[]core.DirectedLink{{Link: "river-net", From: "river", To: "net"}})
	if err != nil {
		return err
	}
	trace = &core.OpTrace{}
	if _, err := core.Product(big, sa, "", trace); err != nil {
		return err
	}
	fmt.Fprint(w, trace.String())
	return nil
}

// sortedKeys is a tiny helper for deterministic map iteration in reports.
func sortedKeys[M ~map[string]int](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
