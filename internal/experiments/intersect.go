package experiments

import (
	"fmt"
	"io"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// BuildJobShop constructs the P16 workload (exported for the repository-
// level benchmarks): a job-shop structure where every "job" root links to
// one "machine" (site = i mod 64, indexed), one "tool" (grade =
// (i/64) mod 64, indexed) and 16 "step" atoms. Each indexed equality
// alone is mildly selective — site matches ~N/64 jobs, grade ~64 — but
// their conjunction selects exactly one. Climbing each entry separately
// and intersecting the candidate-root sets before derivation touches a
// fraction of what the best single entry derives.
func BuildJobShop(jobs int) (*storage.Database, *core.MoleculeType, error) {
	db := storage.NewDatabase()
	for _, at := range []struct {
		name string
		desc *model.Desc
	}{
		{"job", model.MustDesc(model.AttrDesc{Name: "id", Kind: model.KInt})},
		{"machine", model.MustDesc(model.AttrDesc{Name: "site", Kind: model.KInt})},
		{"tool", model.MustDesc(model.AttrDesc{Name: "grade", Kind: model.KInt})},
		{"step", model.MustDesc(model.AttrDesc{Name: "seq", Kind: model.KInt})},
	} {
		if _, err := db.DefineAtomType(at.name, at.desc); err != nil {
			return nil, nil, err
		}
	}
	for _, lt := range []struct{ name, a, b string }{
		{"job-machine", "job", "machine"},
		{"job-tool", "job", "tool"},
		{"job-step", "job", "step"},
	} {
		if _, err := db.DefineLinkType(lt.name, model.LinkDesc{SideA: lt.a, SideB: lt.b}); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < jobs; i++ {
		jid, err := db.InsertAtom("job", model.Int(int64(i)))
		if err != nil {
			return nil, nil, err
		}
		mid, err := db.InsertAtom("machine", model.Int(int64(i%64)))
		if err != nil {
			return nil, nil, err
		}
		tid, err := db.InsertAtom("tool", model.Int(int64((i/64)%64)))
		if err != nil {
			return nil, nil, err
		}
		if err := db.Connect("job-machine", jid, mid); err != nil {
			return nil, nil, err
		}
		if err := db.Connect("job-tool", jid, tid); err != nil {
			return nil, nil, err
		}
		for k := 0; k < 16; k++ {
			sid, err := db.InsertAtom("step", model.Int(int64(k)))
			if err != nil {
				return nil, nil, err
			}
			if err := db.Connect("job-step", jid, sid); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, idx := range [][2]string{{"machine", "site"}, {"tool", "grade"}} {
		if err := db.CreateIndex(idx[0], idx[1]); err != nil {
			return nil, nil, err
		}
	}
	mt, err := core.Define(db, "jobshop_p16", []string{"job", "machine", "tool", "step"},
		[]core.DirectedLink{
			{Link: "job-machine", From: "job", To: "machine"},
			{Link: "job-tool", From: "job", To: "tool"},
			{Link: "job-step", From: "job", To: "step"},
		})
	if err != nil {
		return nil, nil, err
	}
	return db, mt, nil
}

// JobShopPred is the P16 predicate: indexed equalities on two different
// interior types — machine.site = site AND tool.grade = grade.
func JobShopPred(site, grade int64) expr.Expr {
	return expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "machine", Name: "site"}, R: expr.Lit(model.Int(site))},
		R: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "tool", Name: "grade"}, R: expr.Lit(model.Int(grade))},
	}
}

// RunP16 measures composable access paths: the same two-entry conjunction
// executed through the best single interior-index entry (every candidate
// of that one entry is derived, the other conjunct rejects molecules via
// its pushdown hook) and through the multi-entry index intersection
// (both entries climb to candidate roots, the sorted sets intersect, and
// only the survivors are derived).
func RunP16(w io.Writer, scale int) error {
	header(w, "P16", "composable access paths: multi-entry index intersection vs single entry")
	db, mt, err := BuildJobShop(1024 * scale)
	if err != nil {
		return err
	}
	defer plan.Release(db)
	pred := JobShopPred(7, 3)

	single, err := plan.CompileSingleEntry(db, mt.Desc(), pred)
	if err != nil {
		return err
	}
	intersect, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		return err
	}

	tw := table(w)
	fmt.Fprintf(tw, "plan\taccess\tcandidate roots\tmolecules\tatoms fetched\tlinks traversed\tindex lookups\n")
	for _, c := range []struct {
		label string
		p     *plan.Plan
	}{{"single interior entry", single}, {"index intersection", intersect}} {
		db.Stats().Reset()
		set, err := c.p.Execute()
		if err != nil {
			return err
		}
		work := db.Stats().Snapshot()
		access := fmt.Sprintf("interior %s.%s", c.p.Access.EntryType, c.p.Access.Attr)
		if c.p.Access.Kind == plan.IndexIntersect {
			parts := make([]string, len(c.p.Access.Entries))
			for i, e := range c.p.Access.Entries {
				parts[i] = e.Type + "." + e.Attr
			}
			access = "intersect[" + parts[0] + " ∧ " + parts[1] + "]"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\n", c.label, access,
			c.p.Access.ActSurvivors, len(set), work.AtomsFetched, work.LinksTraversed, work.IndexLookups)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nintersecting plan (EXPLAIN form):\n%s", intersect.Render())
	return nil
}
