package experiments

import (
	"fmt"
	"io"
	"time"

	"mad/internal/bom"
	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/nf2"
	"mad/internal/prima"
	"mad/internal/recursive"
	"mad/internal/rel"
	"mad/internal/storage"
)

// DeriveMtStateMAD defines and fully derives the mt_state molecule type —
// the MAD side of the P1 comparison. It returns the molecule count and
// total component atoms.
func DeriveMtStateMAD(db *storage.Database) (molecules, atoms int, err error) {
	mt, err := defineMtState(db, "")
	if err != nil {
		return 0, 0, err
	}
	set, err := mt.Derive()
	if err != nil {
		return 0, 0, err
	}
	return len(set), set.TotalAtoms(), nil
}

// MtStateRelationalJoin runs the flat equivalent of mt_state over the
// auxiliary-relation schema: a six-join pipeline producing one row per
// state–area–edge–point path. It returns the flat row count.
func MtStateRelationalJoin(rdb *rel.Database) (int, error) {
	get := func(name string) (*rel.Relation, error) {
		r, ok := rdb.Rel(name)
		if !ok {
			return nil, fmt.Errorf("experiments: relation %q missing", name)
		}
		return r, nil
	}
	states, err := get("state")
	if err != nil {
		return 0, err
	}
	saAux, err := get("state-area__aux")
	if err != nil {
		return 0, err
	}
	aeAux, err := get("area-edge__aux")
	if err != nil {
		return 0, err
	}
	epAux, err := get("edge-point__aux")
	if err != nil {
		return 0, err
	}
	points, err := get("point")
	if err != nil {
		return 0, err
	}

	// state ⋈ state_area → (state id, area_id)
	cur, err := states.HashJoin(saAux, "id", "a_id")
	if err != nil {
		return 0, err
	}
	cur, err = cur.Project("id", "name", "abbrev", "hectare", "b_id")
	if err != nil {
		return 0, err
	}
	cur, err = cur.Renamed("b_id", "area_id")
	if err != nil {
		return 0, err
	}
	// ⋈ area_edge → edge_id
	cur, err = cur.HashJoin(aeAux, "area_id", "a_id")
	if err != nil {
		return 0, err
	}
	cur, err = cur.Project("id", "name", "abbrev", "hectare", "area_id", "b_id")
	if err != nil {
		return 0, err
	}
	cur, err = cur.Renamed("b_id", "edge_id")
	if err != nil {
		return 0, err
	}
	// ⋈ edge_point → point_id
	cur, err = cur.HashJoin(epAux, "edge_id", "a_id")
	if err != nil {
		return 0, err
	}
	cur, err = cur.Project("id", "name", "abbrev", "hectare", "area_id", "edge_id", "b_id")
	if err != nil {
		return 0, err
	}
	cur, err = cur.Renamed("b_id", "point_id")
	if err != nil {
		return 0, err
	}
	// ⋈ point to materialize point attributes (the paper's query returns
	// whole complex objects, so the flat plan must fetch the leaves too).
	cur, err = cur.HashJoin(points, "point_id", "id")
	if err != nil {
		return 0, err
	}
	return cur.Len(), nil
}

// RunP1 compares MAD molecule derivation with the relational
// auxiliary-relation join pipeline across database sizes.
func RunP1(w io.Writer, scale int) error {
	if scale < 1 {
		scale = 1
	}
	header(w, "P1", "MAD hierarchical derivation vs relational 6-join pipeline")
	tw := table(w)
	fmt.Fprintln(tw, "states\tsharing\tatoms\tlinks\tMAD derive\trelational joins\trel/MAD\tmolecules\tflat rows")
	for _, states := range []int{64 * scale, 256 * scale, 1024 * scale} {
		for _, sharing := range []int{2, 4} {
			syn, err := geo.BuildSynthetic(geo.Config{
				States: states, EdgesPerArea: 3, Sharing: sharing, Rivers: 4, RiverEdges: 8,
			})
			if err != nil {
				return err
			}
			rdb, err := rel.ImportMAD(syn.DB)
			if err != nil {
				return err
			}
			start := time.Now()
			molecules, _, err := DeriveMtStateMAD(syn.DB)
			if err != nil {
				return err
			}
			madDur := time.Since(start)
			start = time.Now()
			rows, err := MtStateRelationalJoin(rdb)
			if err != nil {
				return err
			}
			relDur := time.Since(start)
			ratio := float64(relDur) / float64(madDur)
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\t%v\t%.2fx\t%d\t%d\n",
				states, sharing, syn.DB.TotalAtoms(), syn.DB.TotalLinks(),
				madDur.Round(10*time.Microsecond), relDur.Round(10*time.Microsecond),
				ratio, molecules, rows)
		}
	}
	tw.Flush()
	fmt.Fprintln(w, "\nnote: the relational result is a flat multiset (object structure lost);")
	fmt.Fprintln(w, "reconstructing molecules would require an additional group-by pass.")
	return nil
}

// RunP2 measures the storage cost of NF² hierarchical materialization
// (duplication of shared subobjects) against MAD's shared representation,
// as the sharing degree grows.
func RunP2(w io.Writer, scale int) error {
	if scale < 1 {
		scale = 1
	}
	header(w, "P2", "shared subobjects: MAD identity vs NF² duplication")
	tw := table(w)
	fmt.Fprintln(tw, "sharing\tmolecules\tdistinct atoms (MAD)\tcomponent atoms (NF²)\tNF² cells\tduplication")
	for _, sharing := range []int{1, 2, 4, 8} {
		syn, err := geo.BuildSynthetic(geo.Config{
			States: 32 * scale, EdgesPerArea: 2, Sharing: sharing, Rivers: 2, RiverEdges: 6,
		})
		if err != nil {
			return err
		}
		mt, err := defineMtState(syn.DB, "")
		if err != nil {
			return err
		}
		set, err := mt.Derive()
		if err != nil {
			return err
		}
		nested, err := nf2.FromMolecules(syn.DB, set)
		if err != nil {
			return err
		}
		dup := float64(set.TotalAtoms()) / float64(set.DistinctAtoms())
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.2fx\n",
			sharing, len(set), set.DistinctAtoms(), set.TotalAtoms(), nested.AtomicCells(), dup)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nMAD stores each shared edge/point once and shares it across molecules;")
	fmt.Fprintln(w, "NF² must copy it into every owning hierarchy (no identity across tuples).")
	return nil
}

// RunP3 derives five different molecule types from the *same* atom
// networks — dynamic object definition without any schema change.
func RunP3(w io.Writer, scale int) error {
	if scale < 1 {
		scale = 1
	}
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 128 * scale, EdgesPerArea: 3, Sharing: 2, Rivers: 8, RiverEdges: 16,
	})
	if err != nil {
		return err
	}
	header(w, "P3", "five molecule types over one database occurrence")
	structures := []struct {
		name  string
		types []string
		edges []core.DirectedLink
	}{
		{"mt_state", []string{"state", "area", "edge", "point"}, []core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		}},
		{"mt_river", []string{"river", "net", "edge", "point"}, []core.DirectedLink{
			{Link: "river-net", From: "river", To: "net"},
			{Link: "net-edge", From: "net", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		}},
		{"area_centric", []string{"area", "edge", "point"}, []core.DirectedLink{
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		}},
		{"edge_neighborhood", []string{"edge", "point", "area", "net"}, []core.DirectedLink{
			{Link: "edge-point", From: "edge", To: "point"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "net-edge", From: "edge", To: "net"},
		}},
		{"point_neighborhood", []string{"point", "edge", "area", "state", "net", "river"}, []core.DirectedLink{
			{Link: "edge-point", From: "point", To: "edge"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "state-area", From: "area", To: "state"},
			{Link: "net-edge", From: "edge", To: "net"},
			{Link: "river-net", From: "net", To: "river"},
		}},
	}
	tw := table(w)
	fmt.Fprintln(tw, "molecule type\troot\tmolecules\tcomponent atoms\tderive time")
	for _, st := range structures {
		mt, err := core.Define(syn.DB, st.name, st.types, st.edges)
		if err != nil {
			return err
		}
		start := time.Now()
		set, err := mt.Derive()
		if err != nil {
			return err
		}
		dur := time.Since(start)
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%v\n",
			st.name, mt.Desc().Root(), len(set), set.TotalAtoms(), dur.Round(10*time.Microsecond))
	}
	tw.Flush()
	fmt.Fprintln(w, "\nall five types are derived from the same atom networks; the schema was")
	fmt.Fprintln(w, "never changed — complex objects are defined on demand in the queries.")
	return nil
}

// RunP4 measures the recursive parts explosion: adjacency-based fixpoint
// (MAD links) vs relational self-join closure over the auxiliary relation.
func RunP4(w io.Writer, scale int) error {
	if scale < 1 {
		scale = 1
	}
	header(w, "P4", "parts explosion over the reflexive composition link")
	tw := table(w)
	fmt.Fprintln(tw, "depth\tbranch\tparts\tclosure size\tMAD fixpoint\tself-join closure\tratio")
	depths := []int{6, 8, 10}
	if scale > 1 {
		depths = append(depths, 12)
	}
	for _, depth := range depths {
		b, err := bom.Build(bom.Config{Depth: depth, Branch: 3, Share: 1})
		if err != nil {
			return err
		}
		rt, err := recursive.Define(b.DB, "", "parts", "composition", false, 0)
		if err != nil {
			return err
		}
		start := time.Now()
		closure, err := rt.Closure(b.Root)
		if err != nil {
			return err
		}
		fast := time.Since(start)
		start = time.Now()
		naive, err := recursive.NaiveClosure(b.DB, "composition", b.Root, false)
		if err != nil {
			return err
		}
		slow := time.Since(start)
		if len(closure) != len(naive) {
			return fmt.Errorf("P4: closures disagree (%d vs %d)", len(closure), len(naive))
		}
		fmt.Fprintf(tw, "%d\t3\t%d\t%d\t%v\t%v\t%.1fx\n",
			depth, b.NumParts(), len(closure),
			fast.Round(time.Microsecond), slow.Round(time.Microsecond),
			float64(slow)/float64(fast))
	}
	tw.Flush()
	fmt.Fprintln(w, "\nthe self-join baseline rescans the whole composition occurrence once per")
	fmt.Fprintln(w, "level; the link structures give per-atom adjacency instead.")
	return nil
}

// RunP5 exercises closure: a pipeline of molecule-type operations where
// every result feeds the next operation, validated at every step.
func RunP5(w io.Writer, _ int) error {
	s, err := sampleOrErr()
	if err != nil {
		return err
	}
	header(w, "P5", "operator pipeline over molecule types (Theorems 2–3)")
	mt, err := defineMtState(s.DB, "mt_state")
	if err != nil {
		return err
	}
	typesBefore := s.DB.Schema().NumAtomTypes()
	cur := mt
	steps := []string{}
	for i, threshold := range []float64{50, 100, 200, 300} {
		root := cur.Desc().Root()
		next, err := core.Restrict(cur, expr.Cmp{Op: expr.GT,
			L: expr.Attr{Type: root, Name: "hectare"},
			R: expr.Lit(model.Float(threshold))}, "", nil)
		if err != nil {
			return fmt.Errorf("P5 step %d: %w", i, err)
		}
		set, err := next.Derive()
		if err != nil {
			return err
		}
		if err := core.VerifySet(s.DB, set); err != nil {
			return fmt.Errorf("P5 step %d closure violated: %w", i, err)
		}
		steps = append(steps, fmt.Sprintf("Σ[hectare>%.0f] → %d molecules", threshold, len(set)))
		cur = next
	}
	// Project the final pipeline result.
	proj, err := core.Project(cur, core.Projection{
		Keep: cur.Desc().Types()[:2],
	}, "", nil)
	if err != nil {
		return err
	}
	pset, err := proj.Derive()
	if err != nil {
		return err
	}
	if err := core.VerifySet(s.DB, pset); err != nil {
		return err
	}
	steps = append(steps, fmt.Sprintf("Π[state,area] → %d molecules of %d types", len(pset), proj.Desc().NumTypes()))
	for i, st := range steps {
		fmt.Fprintf(w, "  step %d: %s\n", i+1, st)
	}
	fmt.Fprintf(w, "\nresult of every operation was reusable as the next operand; the database\n")
	fmt.Fprintf(w, "grew from %d to %d atom types through propagation (Definition 9).\n",
		typesBefore, s.DB.Schema().NumAtomTypes())
	return nil
}

// RunP6 reports the PRIMA-style two-layer work split for the chapter-4
// queries over the sample and a scaled synthetic database.
func RunP6(w io.Writer, scale int) error {
	if scale < 1 {
		scale = 1
	}
	header(w, "P6", "two-layer work accounting (atom-oriented vs molecule layer)")
	s, err := sampleOrErr()
	if err != nil {
		return err
	}
	e := prima.New(s.DB)
	for _, q := range []string{
		"SELECT ALL FROM mt_state(state-area-edge-point);",
		"SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';",
	} {
		_, rep, err := e.RunMQL(q)
		if err != nil {
			return err
		}
		fmt.Fprint(w, rep.String())
	}
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 256 * scale, EdgesPerArea: 3, Sharing: 2, Rivers: 4, RiverEdges: 8,
	})
	if err != nil {
		return err
	}
	se := prima.New(syn.DB)
	_, rep, err := se.RunMQL("SELECT ALL FROM state-area-edge-point WHERE state.hectare > 1000;")
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep.String())
	return nil
}

// RunP7 measures derivation parallelism — the "query parallelism"
// investigation the paper's outlook proposes: molecules are independent
// (one per root atom), so derivation scales with workers until memory
// bandwidth dominates.
func RunP7(w io.Writer, scale int) error {
	if scale < 1 {
		scale = 1
	}
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 2048 * scale, EdgesPerArea: 3, Sharing: 2, Rivers: 8, RiverEdges: 16,
	})
	if err != nil {
		return err
	}
	mt, err := defineMtState(syn.DB, "")
	if err != nil {
		return err
	}
	dv, err := core.NewDeriver(syn.DB, mt.Desc())
	if err != nil {
		return err
	}
	header(w, "P7", "parallel molecule derivation (paper outlook: query parallelism)")
	base := time.Duration(0)
	tw := table(w)
	fmt.Fprintln(tw, "workers\tderive time\tspeedup\tmolecules")
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		set := dv.DeriveParallel(workers)
		dur := time.Since(start)
		if workers == 1 {
			base = dur
		}
		fmt.Fprintf(tw, "%d\t%v\t%.2fx\t%d\n",
			workers, dur.Round(10*time.Microsecond), float64(base)/float64(dur), len(set))
	}
	tw.Flush()
	fmt.Fprintln(w, "\nmolecule derivation parallelizes over root atoms with no coordination:")
	fmt.Fprintln(w, "each molecule is an independent hierarchical join over shared-read structures.")
	return nil
}
