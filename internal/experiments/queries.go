package experiments

import (
	"fmt"
	"io"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/mql"
)

// RunQ1 reproduces the paper's first Chapter-4 example — the molecule-type
// definition expressed in the FROM clause — and checks the MQL result
// against the hand-built algebra expression.
func RunQ1(w io.Writer, _ int) error {
	s, err := sampleOrErr()
	if err != nil {
		return err
	}
	header(w, "Q1", "SELECT ALL FROM mt_state(state-area-edge-point)")
	sess := mql.NewSession(s.DB)
	const q = "SELECT ALL FROM mt_state(state-area-edge-point);"
	res, err := sess.Exec(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "MQL:     %s\nalgebra: α[mt_state,{<state-area,state,area>,<area-edge,area,edge>,<edge-point,edge,point>}](state,area,edge,point)\n\n", q)

	mt, err := defineMtState(s.DB, "mt_state_algebra")
	if err != nil {
		return err
	}
	want, err := mt.Derive()
	if err != nil {
		return err
	}
	equal := len(res.Set) == len(want)
	for i := 0; equal && i < len(want); i++ {
		equal = res.Set[i].Key() == want[i].Key()
	}
	fmt.Fprintf(w, "MQL result: %d molecules; algebra result: %d molecules; equal: %v\n\n",
		len(res.Set), len(want), equal)
	if !equal {
		return fmt.Errorf("Q1: MQL and algebra disagree")
	}
	// Show two molecules like the paper's m1 (MG) and m2 excerpt.
	for i, m := range res.Set[:2] {
		fmt.Fprintf(w, "molecule m%d:\n%s", i+1, m.Format(s.DB))
	}
	return nil
}

// RunQ2 reproduces the paper's second example: the symmetric
// point-neighborhood query restricted to point.name = 'pn'.
func RunQ2(w io.Writer, _ int) error {
	s, err := sampleOrErr()
	if err != nil {
		return err
	}
	header(w, "Q2", "SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn'")
	sess := mql.NewSession(s.DB)
	const q = "SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';"
	res, err := sess.Exec(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "MQL:     %s\nalgebra: Σ[restr(point.name='pn')](α[point-neighborhood, …](point,edge,area,state,net,river))\n\n", q)

	types, edges := pointNeighborhoodDesc()
	pn, err := core.Define(s.DB, "pn_algebra", types, edges)
	if err != nil {
		return err
	}
	sigma, err := core.Restrict(pn, expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "point", Name: "name"},
		R: expr.Lit(model.Str("pn"))}, "", nil)
	if err != nil {
		return err
	}
	want, err := sigma.Derive()
	if err != nil {
		return err
	}
	equal := len(res.Set) == len(want) && len(want) == 1 &&
		res.Set[0].Root() == want[0].Root() && res.Set[0].Size() == want[0].Size()
	fmt.Fprintf(w, "MQL result: %d molecule(s); algebra result: %d; equivalent: %v\n",
		len(res.Set), len(want), equal)
	if !equal {
		return fmt.Errorf("Q2: MQL and algebra disagree")
	}
	m := res.Set[0]
	fmt.Fprintf(w, "\nthe pn neighborhood (paper: SP MS MG GO and Parana):\n%s", m.Format(s.DB))
	return nil
}
