package experiments

import (
	"fmt"
	"io"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// RunP8 measures the predicate-pushdown planner: the same restriction
// evaluated naively (derive every molecule, then qualify) and through the
// compiled plan (index or filtered-scan access path, per-atom-type
// pushdown cutting subtrees mid-derivation), with the atom-oriented
// layer's logical work reported for both. Three predicates cover the
// plan shapes: an indexed root equality, an unindexed root equality, and
// a mid-structure conjunct that only pushdown can exploit.
func RunP8(w io.Writer, scale int) error {
	header(w, "P8", "predicate pushdown: naive Σ vs planned access path and derivation")
	syn, err := geo.BuildSynthetic(geo.Config{
		States: 128 * scale, EdgesPerArea: 4, Sharing: 2, Rivers: 4, RiverEdges: 8,
	})
	if err != nil {
		return err
	}
	db := syn.DB
	if err := db.CreateIndex("state", "abbrev"); err != nil {
		return err
	}
	types, edges := mtStateDesc()
	mt, err := core.Define(db, "mt_state_p8", types, edges)
	if err != nil {
		return err
	}

	cases := []struct {
		label string
		pred  expr.Expr
	}{
		{"indexed root eq: state.abbrev = 'S7'", expr.Cmp{Op: expr.EQ,
			L: expr.Attr{Type: "state", Name: "abbrev"}, R: expr.Lit(model.Str("S7"))}},
		{"root range (filtered scan): state.hectare < 120", expr.Cmp{Op: expr.LT,
			L: expr.Attr{Type: "state", Name: "hectare"}, R: expr.Lit(model.Float(120))}},
		{"mid-structure pushdown: edge.tag = 'be3'", expr.Cmp{Op: expr.EQ,
			L: expr.Attr{Type: "edge", Name: "tag"}, R: expr.Lit(model.Str("be3"))}},
	}

	tw := table(w)
	fmt.Fprintf(tw, "predicate\tstrategy\tmolecules\tatoms fetched\tlinks traversed\tindex lookups\n")
	for _, c := range cases {
		naiveN, naiveWork, err := naiveSigma(db, mt, c.pred)
		if err != nil {
			return err
		}
		p, err := plan.Compile(db, mt.Desc(), c.pred)
		if err != nil {
			return err
		}
		db.Stats().Reset()
		set, err := p.Execute()
		if err != nil {
			return err
		}
		planWork := db.Stats().Snapshot()
		if len(set) != naiveN {
			return fmt.Errorf("P8: planner returned %d molecules, naive %d (%s)", len(set), naiveN, c.label)
		}
		fmt.Fprintf(tw, "%s\tnaive Σ\t%d\t%d\t%d\t%d\n", c.label,
			naiveN, naiveWork.AtomsFetched, naiveWork.LinksTraversed, naiveWork.IndexLookups)
		fmt.Fprintf(tw, "\tplanned\t%d\t%d\t%d\t%d\n",
			len(set), planWork.AtomsFetched, planWork.LinksTraversed, planWork.IndexLookups)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Show the chosen plan for the pushdown case, the way EXPLAIN does.
	p, err := plan.Compile(db, mt.Desc(), cases[2].pred)
	if err != nil {
		return err
	}
	if _, err := p.Execute(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nplan for %s:\n%s", cases[2].label, p.Render())
	return nil
}

// naiveSigma derives the full occurrence and qualifies each molecule,
// returning the qualifying count and the logical work spent.
func naiveSigma(db *storage.Database, mt *core.MoleculeType, pred expr.Expr) (int, storage.StatsSnapshot, error) {
	db.Stats().Reset()
	dv, err := mt.Deriver()
	if err != nil {
		return 0, storage.StatsSnapshot{}, err
	}
	n := 0
	var evalErr error
	dv.Walk(func(m *core.Molecule) bool {
		keep, err := expr.EvalPredicate(pred, core.Binding{DB: db, M: m})
		if err != nil {
			evalErr = err
			return false
		}
		if keep {
			n++
		}
		return true
	})
	if evalErr != nil {
		return 0, storage.StatsSnapshot{}, evalErr
	}
	return n, db.Stats().Snapshot(), nil
}
