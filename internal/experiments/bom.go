package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/recursive"
	"mad/internal/storage"
)

// bomLevels is the depth of the P17 assembly graph.
const bomLevels = 12

// BuildBOM constructs the P17 workload (exported for the repository-level
// benchmarks): a deep bill-of-material graph of bomLevels levels with
// `width` parts per level. Every part at level l is composed of three
// parts at level l+1 — children overlap between neighbouring assemblies,
// so the graph reconverges and the same sub-assembly is shared by many
// parents (the Chapter-5 part-explosion shape). Part numbers encode
// level*10000+i and are indexed, so an equality on pn can seed a closure
// from one root without scanning the container.
func BuildBOM(width int) (*storage.Database, error) {
	db := storage.NewDatabase()
	if _, err := db.DefineAtomType("parts", model.MustDesc(model.AttrDesc{Name: "pn", Kind: model.KInt})); err != nil {
		return nil, err
	}
	if _, err := db.DefineLinkType("composition", model.LinkDesc{SideA: "parts", SideB: "parts"}); err != nil {
		return nil, err
	}
	ids := make([][]model.AtomID, bomLevels)
	for l := 0; l < bomLevels; l++ {
		ids[l] = make([]model.AtomID, width)
		for i := 0; i < width; i++ {
			id, err := db.InsertAtom("parts", model.Int(int64(l*10000+i)))
			if err != nil {
				return nil, err
			}
			ids[l][i] = id
		}
	}
	for l := 0; l < bomLevels-1; l++ {
		for i := 0; i < width; i++ {
			for _, j := range []int{(2 * i) % width, (2*i + 1) % width, (i + 7) % width} {
				if err := db.Connect("composition", ids[l][i], ids[l+1][j]); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := db.CreateIndex("parts", "pn"); err != nil {
		return nil, err
	}
	return db, nil
}

// BOMPred selects the explosion root by part number.
func BOMPred(pn int64) expr.Expr {
	return expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "parts", Name: "pn"},
		R: expr.Lit(model.Int(pn))}
}

// RunP17 measures the planned recursion subsystem against the naive
// eager derivation it replaces: a depth-bounded part explosion of ONE
// assembly executed (a) eagerly — every part in the database becomes a
// root, every closure is derived, then all but the requested root are
// thrown away — and (b) through the fixpoint planner, where the indexed
// equality seeds the closure from the single matching root. A second
// comparison streams the full unfiltered explosion and reports
// time-to-first-molecule against full materialization.
func RunP17(w io.Writer, scale int) error {
	header(w, "P17", "BOM part explosion: indexed fixpoint entry vs eager full closure")
	width := 200 * scale
	db, err := BuildBOM(width)
	if err != nil {
		return err
	}
	defer plan.Release(db)
	const depth = 4
	pred := BOMPred(3) // one level-0 assembly

	tw := table(w)
	fmt.Fprintf(tw, "plan\troots derived\tmolecules kept\tatoms fetched\tlinks traversed\n")

	// Eager: the pre-planner semantics — derive the closure of every
	// part, filter afterwards.
	rt, err := recursive.Define(db, "", "parts", "composition", false, depth)
	if err != nil {
		return err
	}
	db.Stats().Reset()
	all, err := rt.Derive()
	if err != nil {
		return err
	}
	c, _ := db.Container("parts")
	kept := 0
	for _, m := range all {
		a, ok := c.Get(m.Root)
		if !ok {
			continue
		}
		keep, err := expr.EvalPredicate(pred, expr.AtomBinding{TypeName: "parts", Desc: c.Desc(), Atom: a})
		if err != nil {
			return err
		}
		db.Stats().AtomsFetched.Add(1)
		if keep {
			kept++
		}
	}
	eager := db.Stats().Snapshot()
	fmt.Fprintf(tw, "eager full closure\t%d\t%d\t%d\t%d\n",
		len(all), kept, eager.AtomsFetched, eager.LinksTraversed)

	// Planned: the indexed equality wins the entry contest and only the
	// matching root's closure is expanded.
	fp, err := plan.CompileFixpoint(db, "parts", "composition", false, depth, pred)
	if err != nil {
		return err
	}
	db.Stats().Reset()
	ms, err := fp.Execute(context.Background())
	if err != nil {
		return err
	}
	planned := db.Stats().Snapshot()
	fmt.Fprintf(tw, "planned fixpoint\t%d\t%d\t%d\t%d\n",
		fp.ActRoots, len(ms), planned.AtomsFetched, planned.LinksTraversed)
	if err := tw.Flush(); err != nil {
		return err
	}
	if planned.AtomsFetched > 0 {
		fmt.Fprintf(w, "\natom-fetch ratio (eager / planned): %.1f×\n",
			float64(eager.AtomsFetched)/float64(planned.AtomsFetched))
	}
	fmt.Fprintf(w, "\nplanned explosion (EXPLAIN form):\n%s", fp.Render())

	// Streaming: first closure of the full explosion arrives long before
	// the set materializes.
	full, err := plan.CompileFixpoint(db, "parts", "composition", false, depth, nil)
	if err != nil {
		return err
	}
	st, err := full.Stream(context.Background())
	if err != nil {
		return err
	}
	start := time.Now()
	if _, err := st.Next(); err != nil {
		return err
	}
	firstAt := time.Since(start)
	for {
		m, err := st.Next()
		if err != nil {
			return err
		}
		if m == nil {
			break
		}
	}
	totalAt := time.Since(start)
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nstreamed full explosion (%d roots): first molecule after %v, all after %v (%.0f%% of wall time to first result)\n",
		full.Out, firstAt.Round(time.Microsecond), totalAt.Round(time.Microsecond),
		100*float64(firstAt)/float64(totalAt))
	return nil
}
