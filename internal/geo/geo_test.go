package geo_test

import (
	"testing"

	"mad/internal/geo"
	"mad/internal/model"
)

func TestSampleMatchesFig1(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DB.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// 10 states, 3 rivers as in Fig. 1 / Fig. 4.
	if n, _ := s.DB.CountAtoms("state"); n != 10 {
		t.Fatalf("states = %d", n)
	}
	if n, _ := s.DB.CountAtoms("river"); n != 3 {
		t.Fatalf("rivers = %d", n)
	}
	if n, _ := s.DB.CountAtoms("area"); n != 10 {
		t.Fatalf("areas = %d", n)
	}
	if n, _ := s.DB.CountAtoms("net"); n != 3 {
		t.Fatalf("nets = %d", n)
	}
	// Every state has exactly one area (1:1 in the sample).
	for ab, st := range s.States {
		partners, err := s.DB.Partners("state-area", st, true)
		if err != nil || len(partners) != 1 {
			t.Fatalf("state %s areas = %v, %v", ab, partners, err)
		}
	}
	// The pn point exists and is named "pn".
	a, ok := s.DB.GetAtom("point", s.PN)
	if !ok {
		t.Fatal("pn missing")
	}
	if name, _ := a.Get(0).AsString(); name != "pn" {
		t.Fatalf("pn name = %q", name)
	}
	// The Parana's net shares edges with state areas: some edge has both
	// an area partner and the Parana net as partner.
	paranaNet := s.Nets["Parana"]
	edges, err := s.DB.Partners("net-edge", paranaNet, true)
	if err != nil || len(edges) == 0 {
		t.Fatalf("Parana edges = %v, %v", edges, err)
	}
	shared := false
	for _, e := range edges {
		areas, _ := s.DB.Partners("area-edge", e, false)
		if len(areas) > 0 {
			shared = true
			break
		}
	}
	if !shared {
		t.Fatal("the Parana must share edges with state borders (paper, Section 2)")
	}
}

func TestSampleHectareRestriction(t *testing.T) {
	// The paper's example σ[hectare>1000] must select a proper subset.
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	over := 0
	if err := s.DB.ScanAtoms("state", func(a model.Atom) bool {
		if h, _ := a.Get(2).AsFloat(); h > 500 {
			over++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if over == 0 || over == 10 {
		t.Fatalf("hectare distribution degenerate: %d over threshold", over)
	}
}

func TestSyntheticConfigValidation(t *testing.T) {
	bad := []geo.Config{
		{States: 0, EdgesPerArea: 1, Sharing: 1},
		{States: 1, EdgesPerArea: 0, Sharing: 1},
		{States: 1, EdgesPerArea: 1, Sharing: 0},
		{States: 1, EdgesPerArea: 1, Sharing: 1, Rivers: -1},
	}
	for _, cfg := range bad {
		if _, err := geo.BuildSynthetic(cfg); err == nil {
			t.Errorf("config %+v must fail", cfg)
		}
	}
}

func TestSyntheticScalesAndShares(t *testing.T) {
	cfg := geo.Config{States: 16, EdgesPerArea: 2, Sharing: 3, Rivers: 2, RiverEdges: 4}
	syn, err := geo.BuildSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.DB.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if len(syn.States) != 16 || len(syn.Areas) != 16 {
		t.Fatal("state/area counts wrong")
	}
	// Border edges have Sharing area partners.
	be := syn.Edges[0] // first border edge
	areas, err := syn.DB.Partners("area-edge", be, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(areas) != cfg.Sharing {
		t.Fatalf("border edge area partners = %d, want %d", len(areas), cfg.Sharing)
	}
	// Deterministic: same config, same counts.
	syn2, err := geo.BuildSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if syn2.DB.TotalAtoms() != syn.DB.TotalAtoms() || syn2.DB.TotalLinks() != syn.DB.TotalLinks() {
		t.Fatal("generator not deterministic")
	}
}

func TestSharingKnobMonotone(t *testing.T) {
	base := geo.Config{States: 12, EdgesPerArea: 1, Sharing: 1, Rivers: 0}
	links := make([]int, 0, 3)
	for _, sh := range []int{1, 2, 4} {
		cfg := base
		cfg.Sharing = sh
		syn, err := geo.BuildSynthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := syn.DB.CountLinks("area-edge")
		links = append(links, n)
	}
	if !(links[0] < links[1] && links[1] < links[2]) {
		t.Fatalf("sharing knob not monotone: %v", links)
	}
}
