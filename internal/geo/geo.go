// Package geo builds the paper's running example: the cartographic
// database of Fig. 1 / Fig. 4 (Brazil, its states, rivers, areas, nets,
// edges and points) in which different complex objects share a common
// geographical model — "different complex objects are contained in one
// schema sharing common subobjects" — plus a deterministic synthetic
// generator that scales the same shape up for benchmarks, with a
// controllable sharing degree.
package geo

import (
	"fmt"

	"mad/internal/model"
	"mad/internal/storage"
)

// Schema declares the geographic schema of Fig. 4 on the database:
//
//	atom types: state, river, city, area, net, edge, point
//	link types: state-area, river-net, city-point,
//	            area-edge, net-edge, edge-point
func Schema(db *storage.Database) error {
	atomTypes := []struct {
		name string
		desc *model.Desc
	}{
		{"state", model.MustDesc(
			model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
			model.AttrDesc{Name: "abbrev", Kind: model.KString, NotNull: true},
			model.AttrDesc{Name: "hectare", Kind: model.KFloat},
		)},
		{"river", model.MustDesc(
			model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
			model.AttrDesc{Name: "length", Kind: model.KFloat},
		)},
		{"city", model.MustDesc(
			model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
			model.AttrDesc{Name: "population", Kind: model.KInt},
		)},
		{"area", model.MustDesc(
			model.AttrDesc{Name: "tag", Kind: model.KString, NotNull: true},
		)},
		{"net", model.MustDesc(
			model.AttrDesc{Name: "tag", Kind: model.KString, NotNull: true},
		)},
		{"edge", model.MustDesc(
			model.AttrDesc{Name: "tag", Kind: model.KString, NotNull: true},
		)},
		{"point", model.MustDesc(
			model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
			model.AttrDesc{Name: "x", Kind: model.KFloat},
			model.AttrDesc{Name: "y", Kind: model.KFloat},
		)},
	}
	for _, at := range atomTypes {
		if _, err := db.DefineAtomType(at.name, at.desc); err != nil {
			return err
		}
	}
	linkTypes := []struct {
		name string
		desc model.LinkDesc
	}{
		{"state-area", model.LinkDesc{SideA: "state", SideB: "area"}},
		{"river-net", model.LinkDesc{SideA: "river", SideB: "net"}},
		{"city-point", model.LinkDesc{SideA: "city", SideB: "point"}},
		{"area-edge", model.LinkDesc{SideA: "area", SideB: "edge"}},
		{"net-edge", model.LinkDesc{SideA: "net", SideB: "edge"}},
		{"edge-point", model.LinkDesc{SideA: "edge", SideB: "point"}},
	}
	for _, lt := range linkTypes {
		if _, err := db.DefineLinkType(lt.name, lt.desc); err != nil {
			return err
		}
	}
	return nil
}

// Sample is the concrete Fig. 1 database with handles to the named atoms.
type Sample struct {
	DB     *storage.Database
	States map[string]model.AtomID // by abbreviation
	Areas  map[string]model.AtomID // by owning state abbreviation
	Rivers map[string]model.AtomID // by name
	Nets   map[string]model.AtomID // by owning river name
	Cities map[string]model.AtomID // by name
	PN     model.AtomID            // the point named "pn" of the Fig. 2 query
}

// stateData reproduces the states of Fig. 1 (hectare figures are the
// states' approximate areas in thousands of km², scaled so that the
// paper's example restriction hectare > 1000 selects a proper subset).
var stateData = []struct {
	name, abbrev string
	hectare      float64
}{
	{"Minas Gerais", "MG", 900},
	{"Bahia", "BA", 1000},
	{"Goias", "GO", 340},
	{"Mato Grosso do Sul", "MS", 357},
	{"Espirito Santo", "ES", 46},
	{"Rio de Janeiro", "RJ", 43},
	{"Sao Paulo", "SP", 248},
	{"Parana", "PR", 199},
	{"Santa Catarina", "SC", 95},
	{"Rio Grande do Sul", "RS", 281},
}

var riverData = []struct {
	name   string
	length float64
}{
	{"Parana", 4880},
	{"Amazonas", 6992},
	{"Uruguai", 1838},
}

// BuildSample constructs the Fig. 1 database occurrence: ten states with
// their areas, three rivers with their nets, border edges shared between
// neighbouring areas, river courses sharing edges with state borders (the
// river Parana shares edge and point tuples with Minas Gerais, Sao Paulo
// and Parana, exactly as the paper describes), and the point "pn" where
// the states SP, MS, MG and GO meet and the Parana passes — the root of
// the Fig. 2 "point neighborhood" molecule.
func BuildSample() (*Sample, error) {
	db := storage.NewDatabase()
	if err := Schema(db); err != nil {
		return nil, err
	}
	s := &Sample{
		DB:     db,
		States: make(map[string]model.AtomID),
		Areas:  make(map[string]model.AtomID),
		Rivers: make(map[string]model.AtomID),
		Nets:   make(map[string]model.AtomID),
		Cities: make(map[string]model.AtomID),
	}
	for _, sd := range stateData {
		id, err := db.InsertAtom("state", model.Str(sd.name), model.Str(sd.abbrev), model.Float(sd.hectare))
		if err != nil {
			return nil, err
		}
		s.States[sd.abbrev] = id
		aid, err := db.InsertAtom("area", model.Str("a_"+sd.abbrev))
		if err != nil {
			return nil, err
		}
		s.Areas[sd.abbrev] = aid
		if err := db.Connect("state-area", id, aid); err != nil {
			return nil, err
		}
	}
	for _, rd := range riverData {
		id, err := db.InsertAtom("river", model.Str(rd.name), model.Float(rd.length))
		if err != nil {
			return nil, err
		}
		s.Rivers[rd.name] = id
		nid, err := db.InsertAtom("net", model.Str("n_"+rd.name))
		if err != nil {
			return nil, err
		}
		s.Nets[rd.name] = nid
		if err := db.Connect("river-net", id, nid); err != nil {
			return nil, err
		}
	}

	// Helper constructors.
	point := func(name string, x, y float64) (model.AtomID, error) {
		return db.InsertAtom("point", model.Str(name), model.Float(x), model.Float(y))
	}
	edge := func(tag string, p1, p2 model.AtomID) (model.AtomID, error) {
		id, err := db.InsertAtom("edge", model.Str(tag))
		if err != nil {
			return 0, err
		}
		if err := db.Connect("edge-point", id, p1); err != nil {
			return 0, err
		}
		if err := db.Connect("edge-point", id, p2); err != nil {
			return 0, err
		}
		return id, nil
	}

	// The pn junction: four edges radiate from pn into the areas of SP,
	// MS, MG and GO; the Parana's net runs along two of them.
	pn, err := point("pn", 0, 0)
	if err != nil {
		return nil, err
	}
	s.PN = pn
	junction := []struct {
		abbrev  string
		onRiver bool
	}{
		{"SP", true}, {"MS", false}, {"MG", true}, {"GO", false},
	}
	for i, j := range junction {
		far, err := point(fmt.Sprintf("p_%s_far", j.abbrev), float64(i+1), 0)
		if err != nil {
			return nil, err
		}
		e, err := edge("e_pn_"+j.abbrev, pn, far)
		if err != nil {
			return nil, err
		}
		if err := db.Connect("area-edge", s.Areas[j.abbrev], e); err != nil {
			return nil, err
		}
		if j.onRiver {
			if err := db.Connect("net-edge", s.Nets["Parana"], e); err != nil {
				return nil, err
			}
		}
	}

	// Shared border edges between neighbouring states (ring order of
	// stateData): edge b_i belongs to area_i and area_{i+1}.
	prevPts := make([]model.AtomID, len(stateData))
	for i := range stateData {
		p, err := point(fmt.Sprintf("p_border_%d", i), float64(i), 1)
		if err != nil {
			return nil, err
		}
		prevPts[i] = p
	}
	for i := range stateData {
		a1 := stateData[i].abbrev
		a2 := stateData[(i+1)%len(stateData)].abbrev
		e, err := edge(fmt.Sprintf("b_%s_%s", a1, a2), prevPts[i], prevPts[(i+1)%len(prevPts)])
		if err != nil {
			return nil, err
		}
		if err := db.Connect("area-edge", s.Areas[a1], e); err != nil {
			return nil, err
		}
		if err := db.Connect("area-edge", s.Areas[a2], e); err != nil {
			return nil, err
		}
	}

	// The Parana's course along the PR border (the third state the paper
	// names as sharing with the river), plus private course edges; the
	// Amazonas and Uruguai get private courses so every net is non-empty.
	prE, err := edge("e_parana_PR", prevPts[7], prevPts[8])
	if err != nil {
		return nil, err
	}
	if err := db.Connect("area-edge", s.Areas["PR"], prE); err != nil {
		return nil, err
	}
	if err := db.Connect("net-edge", s.Nets["Parana"], prE); err != nil {
		return nil, err
	}
	for _, rd := range riverData {
		p1, err := point("p_"+rd.name+"_1", -1, -1)
		if err != nil {
			return nil, err
		}
		p2, err := point("p_"+rd.name+"_2", -2, -2)
		if err != nil {
			return nil, err
		}
		e, err := edge("e_"+rd.name+"_course", p1, p2)
		if err != nil {
			return nil, err
		}
		if err := db.Connect("net-edge", s.Nets[rd.name], e); err != nil {
			return nil, err
		}
	}

	// A few cities as point-like objects.
	for _, cd := range []struct {
		name string
		pop  int64
	}{{"Sao Paulo City", 10000000}, {"Rio de Janeiro City", 6000000}, {"Curitiba", 1800000}} {
		cid, err := db.InsertAtom("city", model.Str(cd.name), model.Int(cd.pop))
		if err != nil {
			return nil, err
		}
		s.Cities[cd.name] = cid
		p, err := point("p_"+cd.name, 5, 5)
		if err != nil {
			return nil, err
		}
		if err := db.Connect("city-point", cid, p); err != nil {
			return nil, err
		}
	}
	return s, nil
}
