package geo

import (
	"fmt"

	"mad/internal/model"
	"mad/internal/storage"
)

// Config parameterizes the synthetic cartography generator. The generator
// is deterministic: the same configuration always produces the same
// database, so benchmark series are reproducible.
type Config struct {
	// States is the number of state/area pairs (molecule roots for the
	// mt_state structure).
	States int
	// EdgesPerArea is each area's private edge count.
	EdgesPerArea int
	// Sharing is the number of consecutive areas attached to each shared
	// border edge; 1 disables sharing (purely hierarchical objects),
	// larger values increase subobject overlap.
	Sharing int
	// Rivers is the number of river/net pairs.
	Rivers int
	// RiverEdges is how many existing border edges each river's net runs
	// along (sharing between network-like and area-like objects).
	RiverEdges int
}

// DefaultConfig returns a small but representative configuration.
func DefaultConfig() Config {
	return Config{States: 32, EdgesPerArea: 4, Sharing: 2, Rivers: 4, RiverEdges: 8}
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.States < 1 {
		return fmt.Errorf("geo: Config.States must be ≥ 1")
	}
	if c.EdgesPerArea < 1 {
		return fmt.Errorf("geo: Config.EdgesPerArea must be ≥ 1")
	}
	if c.Sharing < 1 {
		return fmt.Errorf("geo: Config.Sharing must be ≥ 1")
	}
	if c.Rivers < 0 || c.RiverEdges < 0 {
		return fmt.Errorf("geo: river parameters must be ≥ 0")
	}
	return nil
}

// Synth is a synthetic cartographic database with its handles.
type Synth struct {
	DB     *storage.Database
	Cfg    Config
	States []model.AtomID
	Areas  []model.AtomID
	Rivers []model.AtomID
	Nets   []model.AtomID
	Edges  []model.AtomID
	Points []model.AtomID
}

// BuildSynthetic generates a database of the Fig. 1 shape at the given
// scale. Border edges are attached to Sharing consecutive areas (wrapping
// around), so raising Sharing raises the number of molecules every edge
// (and its points) participates in without changing the molecule count.
func BuildSynthetic(cfg Config) (*Synth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db := storage.NewDatabase()
	if err := Schema(db); err != nil {
		return nil, err
	}
	s := &Synth{DB: db, Cfg: cfg}

	for i := 0; i < cfg.States; i++ {
		st, err := db.InsertAtom("state",
			model.Str(fmt.Sprintf("state%d", i)),
			model.Str(fmt.Sprintf("S%d", i)),
			model.Float(float64(100+i%1900)),
		)
		if err != nil {
			return nil, err
		}
		s.States = append(s.States, st)
		ar, err := db.InsertAtom("area", model.Str(fmt.Sprintf("a%d", i)))
		if err != nil {
			return nil, err
		}
		s.Areas = append(s.Areas, ar)
		if err := db.Connect("state-area", st, ar); err != nil {
			return nil, err
		}
	}

	// One shared border edge per area slot plus EdgesPerArea private
	// edges; each edge has two points, shared edges reuse ring points.
	ringPts := make([]model.AtomID, cfg.States)
	for i := range ringPts {
		p, err := db.InsertAtom("point",
			model.Str(fmt.Sprintf("rp%d", i)), model.Float(float64(i)), model.Float(0))
		if err != nil {
			return nil, err
		}
		ringPts[i] = p
		s.Points = append(s.Points, p)
	}
	var borderEdges []model.AtomID
	for i := 0; i < cfg.States; i++ {
		e, err := db.InsertAtom("edge", model.Str(fmt.Sprintf("be%d", i)))
		if err != nil {
			return nil, err
		}
		borderEdges = append(borderEdges, e)
		s.Edges = append(s.Edges, e)
		if err := db.Connect("edge-point", e, ringPts[i]); err != nil {
			return nil, err
		}
		if err := db.Connect("edge-point", e, ringPts[(i+1)%len(ringPts)]); err != nil {
			return nil, err
		}
		for k := 0; k < cfg.Sharing; k++ {
			if err := db.Connect("area-edge", s.Areas[(i+k)%cfg.States], e); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < cfg.States; i++ {
		for j := 0; j < cfg.EdgesPerArea; j++ {
			p1, err := db.InsertAtom("point",
				model.Str(fmt.Sprintf("pp%d_%d_1", i, j)), model.Float(float64(i)), model.Float(float64(j+1)))
			if err != nil {
				return nil, err
			}
			p2, err := db.InsertAtom("point",
				model.Str(fmt.Sprintf("pp%d_%d_2", i, j)), model.Float(float64(i)), model.Float(float64(j+2)))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, p1, p2)
			e, err := db.InsertAtom("edge", model.Str(fmt.Sprintf("pe%d_%d", i, j)))
			if err != nil {
				return nil, err
			}
			s.Edges = append(s.Edges, e)
			if err := db.Connect("edge-point", e, p1); err != nil {
				return nil, err
			}
			if err := db.Connect("edge-point", e, p2); err != nil {
				return nil, err
			}
			if err := db.Connect("area-edge", s.Areas[i], e); err != nil {
				return nil, err
			}
		}
	}

	// Rivers run along existing border edges: net j takes RiverEdges
	// border edges starting at offset j*RiverEdges (wrapping), so river
	// courses and state borders share edge and point subobjects.
	for j := 0; j < cfg.Rivers; j++ {
		r, err := db.InsertAtom("river",
			model.Str(fmt.Sprintf("river%d", j)), model.Float(float64(1000+j)))
		if err != nil {
			return nil, err
		}
		s.Rivers = append(s.Rivers, r)
		n, err := db.InsertAtom("net", model.Str(fmt.Sprintf("n%d", j)))
		if err != nil {
			return nil, err
		}
		s.Nets = append(s.Nets, n)
		if err := db.Connect("river-net", r, n); err != nil {
			return nil, err
		}
		for k := 0; k < cfg.RiverEdges && len(borderEdges) > 0; k++ {
			e := borderEdges[(j*cfg.RiverEdges+k)%len(borderEdges)]
			if err := db.Connect("net-edge", n, e); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
