package prima_test

import (
	"strings"
	"testing"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/prima"
)

func TestRunReportsBothLayers(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	e := prima.New(s.DB)
	mt, err := core.Define(s.DB, "mt_state",
		[]string{"state", "area", "edge", "point"},
		[]core.DirectedLink{
			{Link: "state-area", From: "state", To: "area"},
			{Link: "area-edge", From: "area", To: "edge"},
			{Link: "edge-point", From: "edge", To: "point"},
		})
	if err != nil {
		t.Fatal(err)
	}
	set, rep, err := e.Run(mt, expr.Cmp{Op: expr.GT,
		L: expr.Attr{Type: "state", Name: "hectare"},
		R: expr.Lit(model.Float(300))})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("qualified = %d", len(set))
	}
	if rep.MoleculesAssembled != 10 || rep.MoleculesQualified != 4 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.AtomLayer.AtomsFetched == 0 || rep.AtomLayer.LinksTraversed == 0 {
		t.Fatal("atom layer work not accounted")
	}
	if rep.AtomsInMolecules == 0 || rep.LinksInMolecules == 0 {
		t.Fatal("molecule layer work not accounted")
	}
	out := rep.String()
	if !strings.Contains(out, "molecule layer") || !strings.Contains(out, "atom layer") {
		t.Fatalf("report rendering: %s", out)
	}
}

func TestRunMQL(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	e := prima.New(s.DB)
	res, rep, err := e.RunMQL("SELECT ALL FROM point-edge-(area-state, net-river) WHERE point.name = 'pn';")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 {
		t.Fatalf("molecules = %d", len(res.Set))
	}
	if rep.MoleculesAssembled != 1 || rep.AtomsInMolecules == 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Session survives across calls.
	if _, _, err := e.RunMQL("SELECT ALL FROM mt_state(state-area-edge-point);"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RunMQL("SELECT ALL FROM mt_state;"); err != nil {
		t.Fatal(err)
	}
}
