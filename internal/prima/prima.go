// Package prima mirrors the two-layer architecture of the PRIMA prototype
// (Chapter 5): "the basic component provides an atom-oriented interface
// (similar to the functionality of atom-type algebra) for the second
// component that performs molecule processing and implements an MQL
// interface (similar to the functionality of molecule algebra)".
//
// The Engine runs queries through both layers while accounting the work
// each performs: the atom-oriented layer's traffic (atoms fetched, links
// traversed, index lookups) is read from the storage statistics, while the
// molecule-processing layer reports molecules assembled, qualification
// evaluations and wall-clock time. The P6 experiment prints this split.
package prima

import (
	"fmt"
	"strings"
	"time"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/mql"
	"mad/internal/storage"
)

// Report is the per-query two-layer work accounting.
type Report struct {
	Query string
	// Atom-oriented interface (lower layer).
	AtomLayer storage.StatsSnapshot
	// Molecule-processing layer (upper layer).
	MoleculesAssembled int
	MoleculesQualified int
	AtomsInMolecules   int
	LinksInMolecules   int
	Elapsed            time.Duration
}

// String renders the report as the two-layer split.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", r.Query)
	fmt.Fprintf(&b, "  molecule layer: %d assembled, %d qualified, %d atoms, %d links, %s\n",
		r.MoleculesAssembled, r.MoleculesQualified, r.AtomsInMolecules, r.LinksInMolecules,
		r.Elapsed.Round(time.Microsecond))
	fmt.Fprintf(&b, "  atom layer:     %d atoms fetched, %d links traversed, %d index lookups\n",
		r.AtomLayer.AtomsFetched, r.AtomLayer.LinksTraversed, r.AtomLayer.IndexLookups)
	return b.String()
}

// Engine is the two-layer query engine.
type Engine struct {
	db   *storage.Database
	sess *mql.Session
}

// New opens an engine over the database.
func New(db *storage.Database) *Engine {
	return &Engine{db: db, sess: mql.NewSession(db)}
}

// Session exposes the engine's MQL session (upper-layer interface).
func (e *Engine) Session() *mql.Session { return e.sess }

// Run derives and restricts a molecule type in the molecule-processing
// layer and reports the per-layer work.
func (e *Engine) Run(mt *core.MoleculeType, pred expr.Expr) (core.MoleculeSet, *Report, error) {
	rep := &Report{Query: fmt.Sprintf("Σ[%v](%s)", predString(pred), mt.Name())}
	before := e.db.Stats().Snapshot()
	start := time.Now()
	dv, err := mt.Deriver()
	if err != nil {
		return nil, nil, err
	}
	var set core.MoleculeSet
	var evalErr error
	dv.Walk(func(m *core.Molecule) bool {
		rep.MoleculesAssembled++
		keep, err := expr.EvalPredicate(pred, core.Binding{DB: e.db, M: m})
		if err != nil {
			evalErr = err
			return false
		}
		if keep {
			rep.MoleculesQualified++
			rep.AtomsInMolecules += m.Size()
			rep.LinksInMolecules += m.NumLinks()
			set = append(set, m)
		}
		return true
	})
	if evalErr != nil {
		return nil, nil, evalErr
	}
	rep.Elapsed = time.Since(start)
	rep.AtomLayer = e.db.Stats().Snapshot().Sub(before)
	return set, rep, nil
}

// RunMQL executes an MQL statement through the upper layer and reports the
// two-layer split.
func (e *Engine) RunMQL(query string) (*mql.Result, *Report, error) {
	rep := &Report{Query: strings.TrimSpace(query)}
	before := e.db.Stats().Snapshot()
	start := time.Now()
	res, err := e.sess.Exec(query)
	if err != nil {
		return nil, nil, err
	}
	rep.Elapsed = time.Since(start)
	rep.AtomLayer = e.db.Stats().Snapshot().Sub(before)
	rep.MoleculesAssembled = len(res.Set) + len(res.RecSet)
	rep.MoleculesQualified = rep.MoleculesAssembled
	for _, m := range res.Set {
		rep.AtomsInMolecules += m.Size()
		rep.LinksInMolecules += m.NumLinks()
	}
	for _, m := range res.RecSet {
		rep.AtomsInMolecules += m.Size()
		rep.LinksInMolecules += len(m.Links)
	}
	return res, rep, nil
}

func predString(pred expr.Expr) string {
	if pred == nil {
		return "true"
	}
	return pred.String()
}
