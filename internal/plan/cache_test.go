package plan_test

import (
	"testing"

	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
)

func TestCacheReusesCompilation(t *testing.T) {
	db, mt := skewedDB(t, 100)
	cache := plan.CacheFor(db)
	if again := plan.CacheFor(db); again != cache {
		t.Fatal("CacheFor must return one cache per database")
	}
	pred := skewedPred()

	p1, cached, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first compile cannot be cached")
	}
	p2, cached, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second compile must hit the cache")
	}
	if p1 == p2 {
		t.Fatal("cache must hand out private clones")
	}
	if _, _, compiles := cache.Counters(); compiles != 1 {
		t.Fatalf("compiles = %d, want 1", compiles)
	}

	// Executing one clone must not leak actuals into the other.
	if _, err := p1.Execute(); err != nil {
		t.Fatal(err)
	}
	if p2.Executed || p2.Access.ActRoots != 0 {
		t.Fatal("clones share execution state")
	}
	p3, _, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Executed || p3.Derived != 0 {
		t.Fatal("cached plan retained actuals from a prior execution")
	}

	// A different predicate is a different entry.
	other := expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "batch"}, R: expr.Lit(model.Int(1))}
	if _, cached, err := cache.Compile(mt.Desc(), other); err != nil || cached {
		t.Fatalf("distinct predicate must compile fresh (cached=%v, err=%v)", cached, err)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
}

// TestCacheLRUEviction checks the eviction policy: filling the cache past
// its cap evicts the *least recently used* entry, so an old-but-hot plan
// survives churn that would have rotated it out under FIFO.
func TestCacheLRUEviction(t *testing.T) {
	db, mt := skewedDB(t, 50)
	plan.Release(db) // cold cache even if another test used this db
	cache := plan.CacheFor(db)
	predFor := func(i int) expr.Expr {
		return expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "batch"}, R: expr.Lit(model.Int(int64(i)))}
	}

	// Fill to the cap (256). Entry 0 is the oldest.
	const limit = 256
	for i := 0; i < limit; i++ {
		if _, _, err := cache.Compile(mt.Desc(), predFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != limit {
		t.Fatalf("cache holds %d entries, want %d", cache.Len(), limit)
	}
	// Touch the oldest entry: under LRU it becomes the most recent.
	if _, cached, err := cache.Compile(mt.Desc(), predFor(0)); err != nil || !cached {
		t.Fatalf("touching entry 0: cached=%v err=%v", cached, err)
	}
	// One more distinct plan evicts the LRU entry — now entry 1, not 0.
	if _, _, err := cache.Compile(mt.Desc(), predFor(limit)); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != limit {
		t.Fatalf("cache holds %d entries after eviction, want %d", cache.Len(), limit)
	}
	if _, cached, err := cache.Compile(mt.Desc(), predFor(0)); err != nil || !cached {
		t.Fatalf("entry 0 was evicted despite being recently used (cached=%v err=%v)", cached, err)
	}
	if _, cached, err := cache.Compile(mt.Desc(), predFor(1)); err != nil || cached {
		t.Fatalf("entry 1 must have been the LRU eviction victim (cached=%v err=%v)", cached, err)
	}
}

// TestCacheRelease checks the registry leak fix: releasing a database
// drops its cache entry, and a later CacheFor starts cold.
func TestCacheRelease(t *testing.T) {
	db, mt := skewedDB(t, 50)
	cache := plan.CacheFor(db)
	if _, _, err := cache.Compile(mt.Desc(), skewedPred()); err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("expected a cached entry before release")
	}
	plan.Release(db)
	fresh := plan.CacheFor(db)
	if fresh == cache {
		t.Fatal("Release must drop the registry entry; CacheFor returned the released cache")
	}
	if fresh.Len() != 0 {
		t.Fatalf("post-release cache holds %d entries, want 0", fresh.Len())
	}
	plan.Release(db) // releasing twice is a no-op
}

// TestCacheInvalidation is the satellite requirement: DDL and ANALYZE
// both bust cached plans, and the recompiled plan reflects the new state.
func TestCacheInvalidation(t *testing.T) {
	db, mt := skewedDB(t, 300)
	cache := plan.CacheFor(db)
	pred := skewedPred()

	if _, _, err := cache.Compile(mt.Desc(), pred); err != nil {
		t.Fatal(err)
	}
	if _, cached, _ := cache.Compile(mt.Desc(), pred); !cached {
		t.Fatal("warm cache expected")
	}

	// ANALYZE busts the cache, and the recompile uses the histograms.
	if _, err := db.Analyze("part"); err != nil {
		t.Fatal(err)
	}
	p, cached, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("ANALYZE must invalidate the cached plan")
	}
	if p.Access.Attr != "grade" || p.Access.EstSource != plan.SrcHistogram {
		t.Fatalf("recompiled plan ignores new statistics: %+v", p.Access)
	}

	// Index DDL busts it again: dropping the grade index forces the plan
	// back onto the batch index.
	if !db.DropIndex("part", "grade") {
		t.Fatal("DropIndex")
	}
	p, cached, err = cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("index DDL must invalidate the cached plan")
	}
	if p.Access.Attr != "batch" {
		t.Fatalf("recompiled plan still uses the dropped index: %+v", p.Access)
	}
	if _, cached, _ = cache.Compile(mt.Desc(), pred); !cached {
		t.Fatal("cache must warm again after recompilation")
	}
	if _, _, compiles := cache.Counters(); compiles != 3 {
		t.Fatalf("compiles = %d, want 3 (cold, post-ANALYZE, post-DDL)", compiles)
	}
}
