package plan_test

import (
	"testing"

	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
)

func TestCacheReusesCompilation(t *testing.T) {
	db, mt := skewedDB(t, 100)
	cache := plan.CacheFor(db)
	if again := plan.CacheFor(db); again != cache {
		t.Fatal("CacheFor must return one cache per database")
	}
	pred := skewedPred()

	p1, cached, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first compile cannot be cached")
	}
	p2, cached, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second compile must hit the cache")
	}
	if p1 == p2 {
		t.Fatal("cache must hand out private clones")
	}
	if _, _, compiles := cache.Counters(); compiles != 1 {
		t.Fatalf("compiles = %d, want 1", compiles)
	}

	// Executing one clone must not leak actuals into the other.
	if _, err := p1.Execute(); err != nil {
		t.Fatal(err)
	}
	if p2.Executed || p2.Access.ActRoots != 0 {
		t.Fatal("clones share execution state")
	}
	p3, _, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Executed || p3.Derived != 0 {
		t.Fatal("cached plan retained actuals from a prior execution")
	}

	// A different predicate is a different entry.
	other := expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "batch"}, R: expr.Lit(model.Int(1))}
	if _, cached, err := cache.Compile(mt.Desc(), other); err != nil || cached {
		t.Fatalf("distinct predicate must compile fresh (cached=%v, err=%v)", cached, err)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
}

// TestCacheInvalidation is the satellite requirement: DDL and ANALYZE
// both bust cached plans, and the recompiled plan reflects the new state.
func TestCacheInvalidation(t *testing.T) {
	db, mt := skewedDB(t, 300)
	cache := plan.CacheFor(db)
	pred := skewedPred()

	if _, _, err := cache.Compile(mt.Desc(), pred); err != nil {
		t.Fatal(err)
	}
	if _, cached, _ := cache.Compile(mt.Desc(), pred); !cached {
		t.Fatal("warm cache expected")
	}

	// ANALYZE busts the cache, and the recompile uses the histograms.
	if _, err := db.Analyze("part"); err != nil {
		t.Fatal(err)
	}
	p, cached, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("ANALYZE must invalidate the cached plan")
	}
	if p.Access.Attr != "grade" || p.Access.EstSource != plan.SrcHistogram {
		t.Fatalf("recompiled plan ignores new statistics: %+v", p.Access)
	}

	// Index DDL busts it again: dropping the grade index forces the plan
	// back onto the batch index.
	if !db.DropIndex("part", "grade") {
		t.Fatal("DropIndex")
	}
	p, cached, err = cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("index DDL must invalidate the cached plan")
	}
	if p.Access.Attr != "batch" {
		t.Fatalf("recompiled plan still uses the dropped index: %+v", p.Access)
	}
	if _, cached, _ = cache.Compile(mt.Desc(), pred); !cached {
		t.Fatal("cache must warm again after recompilation")
	}
	if _, _, compiles := cache.Counters(); compiles != 3 {
		t.Fatalf("compiles = %d, want 3 (cold, post-ANALYZE, post-DDL)", compiles)
	}
}
