package plan_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// streamWorkload builds a deterministic layered database (seeded
// generator, scaled atom count) and a molecule type over it — a workload
// big enough for streams to run multi-batch.
func streamWorkload(t *testing.T, atomsPerType int) (*storage.Database, *core.MoleculeType) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	db, types, edges, err := layeredDB(rng, 3, atomsPerType)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(db, "stream_mt", types, edges)
	if err != nil {
		t.Fatal(err)
	}
	return db, mt
}

// collectStream drains a stream via Next, stopping after max molecules
// when max >= 0 (then closes), and returns what it received.
func collectStream(t *testing.T, st *plan.Stream, max int) core.MoleculeSet {
	t.Helper()
	var got core.MoleculeSet
	for max < 0 || len(got) < max {
		m, err := st.Next()
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if m == nil {
			break
		}
		got = append(got, m)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return got
}

// prefixOf checks that got is exactly want[:len(got)].
func prefixOf(t *testing.T, seed int64, label string, got, want core.MoleculeSet) bool {
	t.Helper()
	if len(got) > len(want) {
		t.Logf("seed %d %s: got %d molecules, full result only has %d", seed, label, len(got), len(want))
		return false
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Logf("seed %d %s: molecule %d differs from the materialized order", seed, label, i)
			return false
		}
	}
	return true
}

// TestStreamPrefixParityRandom is the streaming-execution property: over
// random structures, predicates, statistics regimes and worker counts,
// a Stream consumed up to any point — a LIMIT in the plan, or an early
// Close at a random cancellation point — yields an exact prefix of
// Execute's deterministic root-aligned result order, and a fully
// drained Stream yields exactly that result.
func TestStreamPrefixParityRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 2 + rng.Intn(2)
		db, types, edges, err := layeredDB(rng, depth, 4+rng.Intn(5))
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		if rng.Intn(2) == 0 {
			if err := db.CreateIndex(types[0], "v"); err != nil {
				t.Logf("index: %v", err)
				return false
			}
		}
		if rng.Intn(2) == 0 {
			if _, err := db.Analyze(); err != nil {
				t.Logf("analyze: %v", err)
				return false
			}
		}
		mt, err := core.Define(db, "random", types, edges)
		if err != nil {
			t.Logf("define: %v", err)
			return false
		}
		defer plan.Release(db)
		pred := randomPredicate(rng, types)
		if err := expr.Check(pred, core.Scope{DB: db, Desc: mt.Desc()}); err != nil {
			t.Logf("check: %v", err)
			return false
		}

		compile := func(workers, limit int) *plan.Plan {
			p, err := plan.Compile(db, mt.Desc(), pred)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			p.Workers, p.Limit = workers, limit
			return p
		}

		full, err := compile(1, 0).Execute()
		if err != nil {
			t.Logf("execute: %v", err)
			return false
		}

		for _, workers := range []int{1, 2, 4} {
			// Drained stream ≡ materialized result.
			st, err := compile(workers, 0).Stream(context.Background())
			if err != nil {
				t.Logf("stream: %v", err)
				return false
			}
			if got := collectStream(t, st, -1); len(got) != len(full) || !prefixOf(t, seed, "drain", got, full) {
				return false
			}

			// LIMIT k ≡ the first k molecules of the materialized order
			// (k = 0 means unlimited, so the draw starts at 1).
			k := 1 + rng.Intn(len(full)+2)
			st, err = compile(workers, k).Stream(context.Background())
			if err != nil {
				t.Logf("stream: %v", err)
				return false
			}
			got := collectStream(t, st, -1)
			want := min(k, len(full))
			if len(got) != want || !prefixOf(t, seed, "limit", got, full) {
				t.Logf("seed %d workers %d: LIMIT %d delivered %d, want %d", seed, workers, k, len(got), want)
				return false
			}

			// Close at a random cancellation point ≡ an exact prefix.
			j := rng.Intn(len(full) + 1)
			st, err = compile(workers, 0).Stream(context.Background())
			if err != nil {
				t.Logf("stream: %v", err)
				return false
			}
			if got := collectStream(t, st, j); len(got) != j || !prefixOf(t, seed, "cancel", got, full) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCancelStopsWorkers: cancelling the stream's context makes
// Next report the cancellation and releases every goroutine the stream
// spawned (the -race run of this test is the leak check the acceptance
// criteria ask for).
func TestStreamCancelStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	// ≥ 4 executor batches: with the stream's hand-off channel bounded at
	// 2 batches, the producer cannot run to completion while the consumer
	// has taken only one molecule — cancellation always lands mid-flight.
	db, mt := streamWorkload(t, 400)
	defer plan.Release(db)
	p, err := plan.Compile(db, mt.Desc(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	st, err := p.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := st.Next(); err != nil || m == nil {
		t.Fatalf("first molecule: %v, %v", m, err)
	}
	cancel()
	for {
		m, err := st.Next()
		if err != nil {
			if err != context.Canceled {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			break
		}
		if m == nil {
			t.Fatal("stream ended cleanly despite cancellation")
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close after cancel: %v", err)
	}
	// Every stream goroutine must be gone; give the runtime a moment to
	// retire them.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines: %d before stream, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamSeq: the range-over-func adapter yields the same order and
// leaves Err nil on exhaustion.
func TestStreamSeq(t *testing.T) {
	db, mt := streamWorkload(t, 8)
	defer plan.Release(db)
	p, err := plan.Compile(db, mt.Desc(), nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plan.Compile(db, mt.Desc(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p2.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for m := range st.Seq() {
		if !m.Equal(full[i]) {
			t.Fatalf("molecule %d differs", i)
		}
		i++
	}
	if i != len(full) {
		t.Fatalf("yielded %d, want %d", i, len(full))
	}
	if err := st.Err(); err != nil {
		t.Fatalf("err after exhaustion: %v", err)
	}
}

// TestStreamTruncationSkipsFeedback: a LIMIT-truncated run must not
// record execution feedback (its actuals are a biased sample), while the
// following complete run must.
func TestStreamTruncationSkipsFeedback(t *testing.T) {
	db, mt := streamWorkload(t, 12)
	defer plan.Release(db)
	fb := plan.FeedbackFor(db)
	pred := expr.Cmp{Op: expr.GE, L: expr.CountOf{Type: "t1"}, R: expr.Lit(model.Int(0))}
	if err := expr.Check(pred, core.Scope{DB: db, Desc: mt.Desc()}); err != nil {
		t.Fatal(err)
	}

	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	p.Limit = 3
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	if records, _ := fb.Counters(); records != 0 {
		t.Fatalf("truncated run recorded feedback (%d records)", records)
	}

	p2, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Execute(); err != nil {
		t.Fatal(err)
	}
	if records, _ := fb.Counters(); records != 1 {
		t.Fatalf("complete run records = %d, want 1", records)
	}
}
