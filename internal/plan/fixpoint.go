package plan

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"

	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/recursive"
	"mad/internal/storage"
)

// This file is the recursion subsystem: it compiles a recursive molecule
// type (one atom type closed over one direction of a reflexive link type,
// the Chapter 5 BOM shape) into a planned, streaming semi-naive delta
// fixpoint. Where the seed internal/recursive package derives eagerly —
// every root, latest state, full materialization before the first result
// — a FixpointPlan contests its entry point on the link-fan statistics,
// pins one MVCC snapshot for the whole closure, prunes non-qualifying
// roots before a single link is traversed, expands frontiers in parallel
// over a bounded worker pool, and emits each molecule the moment its own
// closure finishes. DEPTH bounds the per-root iteration; LIMIT cancels
// the in-flight rounds once the cap is reached.

// FixAccessKind names a fixpoint plan's root entry path.
type FixAccessKind int

const (
	// FixScan seeds the closure from every atom of the component type, in
	// container order.
	FixScan FixAccessKind = iota
	// FixIndexEq seeds the closure from the atoms matching an indexed
	// equality on the component type — the part-number probe of the BOM
	// workload, which explodes one assembly instead of all of them.
	FixIndexEq
)

// fixMaxEstRounds caps the rounds the closure-size estimate unrolls for
// an unbounded (DEPTH 0) recursion: past this the geometric series has
// either converged (fan < 1) or hit the container-size cap anyway.
const fixMaxEstRounds = 8

// fixRootBatch is how many seed roots one worker expands per dispatch —
// small enough that the first completed closures reach the consumer while
// the bulk of the seed batch is still deriving.
const fixRootBatch = 32

// FixpointPlan is a compiled recursive derivation: the recursion shape,
// the contested entry path, the closure-size estimate the contest was
// costed with, and — after execution — the fixpoint actuals.
type FixpointPlan struct {
	db    *storage.Database
	epoch uint64
	// rootConjs are the WHERE conjuncts evaluated per seed root at the
	// snapshot timestamp, before any expansion: the prune hooks. The
	// entry conjunct (already exact via the index) is excluded.
	rootConjs []expr.Expr
	entryVal  model.Value

	// AtomType, Link, Up, Depth are the recursion shape: the component
	// atom type closed over one direction of the reflexive link type,
	// optionally depth-bounded.
	AtomType string
	Link     string
	Up       bool
	Depth    int

	// EntryKind is the chosen entry path; EntryAttr/EntryValue identify
	// the indexed equality when EntryKind is FixIndexEq.
	EntryKind   FixAccessKind
	EntryAttr   string
	EstRoots    int
	EntrySource string

	// EstClosure is the estimated closure size per seed root (atoms,
	// including the root) from AvgFan^depth capped by the container size;
	// EstRounds the rounds that estimate unrolled; ClosureSource its
	// provenance ([link-fan], or [observed] once feedback calibrated it).
	EstClosure    float64
	EstRounds     int
	ClosureSource string

	// Alternatives records the entry contest.
	Alternatives []Alternative

	// Workers bounds the expansion pool (0 = all cores); Limit caps the
	// molecules delivered, cancelling in-flight rounds at the cap.
	Workers int
	Limit   int

	// Execution actuals, valid once Executed: seed roots that entered the
	// closure (after prune hooks), roots the hooks cut, the deepest
	// fixpoint round any molecule ran, total frontier atoms expanded,
	// total atoms visited across all closures, molecules delivered.
	ActRoots      int
	PrunedRoots   int
	Rounds        int
	FrontierAtoms int
	VisitedAtoms  int
	Out           int
	Executed      bool
}

// CompileFixpoint plans a recursive derivation over atomType closed under
// one direction of the reflexive link type. The WHERE predicate (may be
// nil) restricts the seed roots: an indexed equality conjunct is eligible
// to seed the closure straight from the index, every other conjunct
// becomes a per-root prune hook evaluated before expansion. The entry
// contest weighs full scan against each indexed equality using the
// histogram/uniform root estimate and the link-fan closure estimate.
func CompileFixpoint(db *storage.Database, atomType, link string, up bool, depth int, pred expr.Expr) (*FixpointPlan, error) {
	c, ok := db.Container(atomType)
	if !ok {
		return nil, fmt.Errorf("plan: unknown atom type %q", atomType)
	}
	lt, ok := db.Schema().LinkType(link)
	if !ok {
		return nil, fmt.Errorf("plan: unknown link type %q", link)
	}
	if !lt.Desc.Reflexive() || lt.Desc.SideA != atomType {
		return nil, fmt.Errorf("plan: link type %q is not reflexive on %q", link, atomType)
	}
	if depth < 0 {
		return nil, fmt.Errorf("plan: negative depth")
	}
	for t := range expr.TypesReferenced(pred) {
		if t != "" && t != atomType {
			return nil, fmt.Errorf("plan: recursive WHERE references %q; only %q is in scope", t, atomType)
		}
	}
	ls, _ := db.LinkStore(link)
	n := c.Len()

	p := &FixpointPlan{
		db:       db,
		epoch:    db.PlanEpoch(),
		AtomType: atomType,
		Link:     link,
		Up:       up,
		Depth:    depth,
	}

	// Closure-size estimate: the geometric frontier series Σ fan^d capped
	// by the container (a closure cannot hold more atoms than exist).
	// Traversal down expands A→B partners, so the per-atom fan is the
	// link occurrence over the A-side population — AvgFan(!up).
	fan := 0.0
	if ls != nil {
		fan = ls.AvgFan(!up)
	}
	p.EstClosure, p.EstRounds = estimateFixClosure(fan, depth, n)
	p.ClosureSource = SrcLinkFan
	if obs, ok := feedbackLookup(db).fixpointObserved(fixKey(atomType, link, up, depth)); ok {
		p.EstClosure, p.ClosureSource = obs, SrcObserved
	}

	// Entry contest: full scan enters every root that survives the WHERE
	// selectivity; an indexed equality enters only the matching roots.
	// Either way each entering root pays one estimated closure.
	conjs := splitConjuncts(pred)
	scanSel, scanSrc := 1.0, ""
	for _, cj := range conjs {
		sel, src := fixConjSelectivity(db, atomType, cj)
		scanSel *= sel
		scanSrc = combineSource(scanSrc, src)
	}
	entering := scaleEst(n, clampSel(scanSel))
	scanCost := float64(n) + float64(entering)*p.EstClosure
	p.Alternatives = append(p.Alternatives, Alternative{
		Label: fmt.Sprintf("fixpoint scan %s (≈%d of %d roots enter ×≈%.1f atoms)", atomType, entering, n, p.EstClosure),
		Cost:  scanCost,
	})
	p.EntryKind, p.EstRoots, p.EntrySource = FixScan, n, SrcContainer
	best, bestOrd := scanCost, -1
	for ord, cj := range conjs {
		attr, v, ok := indexableEq(cj, db, atomType)
		if !ok {
			continue
		}
		est, src := estimateEqCount(db, atomType, attr, v, n)
		cost := float64(est) + float64(est)*p.EstClosure
		alt := Alternative{
			Label: fmt.Sprintf("fixpoint index %s.%s = %s (≈%d roots ×≈%.1f atoms)", atomType, attr, v, est, p.EstClosure),
			Cost:  cost,
		}
		if cost < best {
			best, bestOrd = cost, ord
			p.EntryKind, p.EntryAttr, p.entryVal = FixIndexEq, attr, v
			p.EstRoots, p.EntrySource = est, src
		}
		p.Alternatives = append(p.Alternatives, alt)
	}
	chosen := 0
	if bestOrd >= 0 {
		// Alternatives are appended scan-first, then one per indexable
		// conjunct in conjunct order; recover the winner's position.
		pos := 1
		for ord := range conjs {
			if _, _, ok := indexableEq(conjs[ord], db, atomType); !ok {
				continue
			}
			if ord == bestOrd {
				chosen = pos
				break
			}
			pos++
		}
	}
	p.Alternatives[chosen].Chosen = true

	// Every non-entry conjunct prunes seed roots before expansion. The
	// index already guarantees the entry equality exactly, so it drops
	// out of the hook chain.
	for ord, cj := range conjs {
		if ord == bestOrd {
			continue
		}
		p.rootConjs = append(p.rootConjs, cj)
	}
	return p, nil
}

// estimateFixClosure unrolls the frontier series 1 + fan + fan² + … for
// depth rounds (fixMaxEstRounds when unbounded), capping the running
// total at the container size.
func estimateFixClosure(fan float64, depth, n int) (float64, int) {
	rounds := depth
	if rounds == 0 || rounds > fixMaxEstRounds {
		rounds = fixMaxEstRounds
	}
	total, level := 1.0, 1.0
	for d := 1; d <= rounds; d++ {
		level *= fan
		total += level
		if n > 0 && total >= float64(n) {
			return float64(n), d
		}
		if level < 0.5 {
			// The frontier has died out; further rounds add nothing.
			return total, d
		}
	}
	return total, rounds
}

// fixConjSelectivity estimates an atom-level conjunct's selectivity over
// the recursion's component type (there is no molecule description to
// resolve against, so this is conjSelectivity's single-type core).
func fixConjSelectivity(db *storage.Database, atomType string, c expr.Expr) (float64, string) {
	if a, op, v, ok := attrConstCmp(c); ok {
		return cmpSelectivity(db, atomType, a.Name, op, v)
	}
	return defSelOther, SrcDefault
}

// fixKey is the feedback key of one recursion shape: the closure size a
// run observes depends on the traversal direction and the depth bound,
// not on which roots seeded it.
func fixKey(atomType, link string, up bool, depth int) string {
	dir := "down"
	if up {
		dir = "up"
	}
	return fmt.Sprintf("%s\x00%s\x00%s\x00%d", atomType, link, dir, depth)
}

// fixAtomPred compiles a conjunct into a per-root predicate at commit
// timestamp ts, mirroring Plan.atomPred (same stats accounting, same
// concurrent-safe error capture).
func fixAtomPred(db *storage.Database, typeName string, conjunct expr.Expr, eb *evalErrBox, ts uint64) (func(model.AtomID) bool, error) {
	c, ok := db.Container(typeName)
	if !ok {
		return nil, fmt.Errorf("plan: atom type %q has no container", typeName)
	}
	desc := c.Desc()
	return func(id model.AtomID) bool {
		a, ok := c.GetAt(id, ts)
		if !ok {
			return false
		}
		db.Stats().AtomsFetched.Add(1)
		keep, err := expr.EvalPredicate(conjunct, expr.AtomBinding{TypeName: typeName, Desc: desc, Atom: a})
		if err != nil {
			eb.set(err)
		}
		return err == nil && keep
	}, nil
}

// FixpointStream is the incremental cursor over a fixpoint plan's
// molecules: worker batches land on a bounded channel as their closures
// finish, in deterministic seed order. Like plan.Stream it must be
// drained or Closed, and is not safe for concurrent use.
type FixpointStream struct {
	p      *FixpointPlan
	cancel context.CancelFunc

	snap    *storage.Snapshot
	ownSnap bool

	batches chan []*recursive.Molecule
	errc    chan error

	cur  []*recursive.Molecule
	idx  int
	done bool
	err  error
}

// SnapshotTS reports the commit timestamp the whole closure is pinned
// to: every seed lookup, prune-hook read and frontier expansion resolved
// against this one committed state.
func (st *FixpointStream) SnapshotTS() uint64 { return st.snap.TS() }

// Stream starts the fixpoint and returns the cursor, pinning a snapshot
// of the latest commit for the duration of the run.
func (p *FixpointPlan) Stream(ctx context.Context) (*FixpointStream, error) {
	return p.StreamAt(ctx, nil)
}

// StreamAt is Stream reading through a caller-supplied snapshot (a
// transaction's begin snapshot); the caller keeps ownership. A nil
// snapshot pins the latest commit.
func (p *FixpointPlan) StreamAt(ctx context.Context, snap *storage.Snapshot) (*FixpointStream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ownSnap := snap == nil
	if ownSnap {
		snap = p.db.Snapshot()
	}
	p.ActRoots, p.PrunedRoots, p.Rounds, p.FrontierAtoms, p.VisitedAtoms, p.Out = 0, 0, 0, 0, 0, 0
	p.Executed = false

	eb := &evalErrBox{}
	preds := make([]func(model.AtomID) bool, len(p.rootConjs))
	var err error
	for i, cj := range p.rootConjs {
		preds[i], err = fixAtomPred(p.db, p.AtomType, cj, eb, snap.TS())
		if err != nil {
			if ownSnap {
				snap.Close()
			}
			return nil, err
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	st := &FixpointStream{
		p:       p,
		cancel:  cancel,
		snap:    snap,
		ownSnap: ownSnap,
		batches: make(chan []*recursive.Molecule, streamBufBatches),
		errc:    make(chan error, 1),
	}
	go st.run(ctx, eb, preds)
	return st, nil
}

func (st *FixpointStream) release() {
	if st.ownSnap {
		st.snap.Close()
	}
}

// fixResult is one worker batch: the finished molecules plus the batch's
// fixpoint actuals.
type fixResult struct {
	ms       []*recursive.Molecule
	rounds   int
	frontier int
	visited  int
	err      error
}

// run is the producer: seed the roots through the chosen entry path,
// prune them with the WHERE hooks, expand the survivors' closures over
// the worker pool (deterministic seed order, bounded in-flight batches),
// and hand each finished batch to the consumer. LIMIT cancels the
// in-flight rounds once the cap is delivered.
func (st *FixpointStream) run(ctx context.Context, eb *evalErrBox, preds []func(model.AtomID) bool) {
	defer close(st.batches)
	p := st.p
	ts := st.snap.TS()

	ls, ok := p.db.LinkStore(p.Link)
	if !ok {
		st.errc <- fmt.Errorf("plan: link store %q vanished between compile and execute", p.Link)
		return
	}
	var roots []model.AtomID
	switch p.EntryKind {
	case FixIndexEq:
		ids, ok := p.db.IndexLookupAt(p.AtomType, p.EntryAttr, p.entryVal, ts)
		if !ok {
			st.errc <- fmt.Errorf("plan: index on %s.%s vanished between compile and execute", p.AtomType, p.EntryAttr)
			return
		}
		roots = ids
	default:
		c, ok := p.db.Container(p.AtomType)
		if !ok {
			st.errc <- errors.New("plan: root container vanished between compile and execute")
			return
		}
		roots = c.IDsAt(ts)
	}

	// Prune hooks: non-qualifying roots are cut here, before a single
	// link of their closure is traversed.
	seeds := roots
	if len(preds) > 0 {
		seeds = make([]model.AtomID, 0, len(roots))
		for _, id := range roots {
			keep := true
			for _, pr := range preds {
				if !pr(id) {
					keep = false
					break
				}
			}
			if eb.failed.Load() {
				st.errc <- eb.get()
				return
			}
			if keep {
				seeds = append(seeds, id)
			}
		}
		p.PrunedRoots = len(roots) - len(seeds)
	}
	p.ActRoots = len(seeds)

	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Ordered parallel expansion: the dispatcher enqueues one result slot
	// per seed batch in seed order and spawns its worker; the queue's
	// capacity bounds the in-flight batches at workers+1, and reading the
	// slots in queue order restores the deterministic delivery order
	// whatever order the workers finish in.
	queue := make(chan chan fixResult, workers+1)
	go func() {
		defer close(queue)
		for start := 0; start < len(seeds); start += fixRootBatch {
			end := start + fixRootBatch
			if end > len(seeds) {
				end = len(seeds)
			}
			batch := seeds[start:end]
			resc := make(chan fixResult, 1)
			select {
			case queue <- resc:
			case <-ctx.Done():
				return
			}
			go func() {
				resc <- expandFixBatch(ctx, p, ls, batch, ts)
			}()
		}
	}()

	delivered := 0
	limited := false
	var runErr error
	for resc := range queue {
		r := <-resc
		if r.err != nil {
			if runErr == nil {
				runErr = r.err
			}
			break
		}
		if r.rounds > p.Rounds {
			p.Rounds = r.rounds
		}
		p.FrontierAtoms += r.frontier
		p.VisitedAtoms += r.visited
		ms := r.ms
		if p.Limit > 0 {
			if rest := p.Limit - delivered; len(ms) >= rest {
				ms, limited = ms[:rest], true
			}
		}
		if len(ms) > 0 {
			select {
			case st.batches <- ms:
				delivered += len(ms)
			case <-ctx.Done():
				if runErr == nil {
					runErr = ctx.Err()
				}
			}
		}
		if limited || runErr != nil {
			break
		}
	}
	if limited || runErr != nil {
		// Cancel the in-flight rounds and wait for every outstanding
		// worker to notice: each queued slot is guaranteed a result
		// (workers send into a buffered channel), so draining the queue
		// joins the pool without leaking goroutines.
		st.cancel()
		for resc := range queue {
			<-resc
		}
	}
	if runErr == nil {
		runErr = eb.get()
	}
	if runErr != nil && errors.Is(runErr, context.Canceled) && limited {
		runErr = nil
	}
	if runErr != nil {
		st.errc <- runErr
		return
	}

	p.Out = delivered
	p.Executed = true
	if !limited && ctx.Err() == nil && p.ActRoots > 0 {
		// Only a complete run observed the true closure shape; a
		// truncated one saw a biased prefix.
		feedbackLookup(p.db).recordFixpoint(p, fixKey(p.AtomType, p.Link, p.Up, p.Depth),
			float64(p.VisitedAtoms)/float64(p.ActRoots))
	}
	st.errc <- nil
}

// expandFixBatch derives the closures of one seed batch — per root the
// same semi-naive iteration as recursive.Type.DeriveFor (frontier-only
// expansion, visited-set cycle detection, identical Levels/Links shape
// and work accounting), but reading links at the pinned snapshot.
func expandFixBatch(ctx context.Context, p *FixpointPlan, ls *storage.LinkStore, seeds []model.AtomID, ts uint64) fixResult {
	var r fixResult
	r.ms = make([]*recursive.Molecule, 0, len(seeds))
	for _, root := range seeds {
		if err := ctx.Err(); err != nil {
			r.err = err
			return r
		}
		m := &recursive.Molecule{Root: root, Levels: [][]model.AtomID{{root}}}
		visited := map[model.AtomID]bool{root: true}
		frontier := []model.AtomID{root}
		for depth := 1; len(frontier) > 0 && (p.Depth == 0 || depth <= p.Depth); depth++ {
			if err := ctx.Err(); err != nil {
				r.err = err
				return r
			}
			if depth > r.rounds {
				r.rounds = depth
			}
			r.frontier += len(frontier)
			var next []model.AtomID
			for _, a := range frontier {
				var partners []model.AtomID
				if p.Up {
					partners = ls.PartnersFromBAt(a, ts)
				} else {
					partners = ls.PartnersFromAAt(a, ts)
				}
				p.db.Stats().LinksTraversed.Add(int64(len(partners)) + 1)
				for _, q := range partners {
					m.Links = append(m.Links, model.Link{A: a, B: q})
					if visited[q] {
						continue // cycle or reconvergence: include once
					}
					visited[q] = true
					next = append(next, q)
				}
			}
			if len(next) > 0 {
				m.Levels = append(m.Levels, next)
			}
			frontier = next
		}
		p.db.Stats().AtomsFetched.Add(int64(m.Size()))
		r.visited += m.Size()
		r.ms = append(r.ms, m)
	}
	return r
}

// Next returns the next finished molecule; nil, nil means exhaustion,
// errors are terminal.
func (st *FixpointStream) Next() (*recursive.Molecule, error) {
	if st.done {
		return nil, st.err
	}
	for st.idx >= len(st.cur) {
		batch, ok := <-st.batches
		if !ok {
			st.err = <-st.errc
			st.done = true
			st.cur, st.idx = nil, 0
			st.release()
			return nil, st.err
		}
		st.cur, st.idx = batch, 0
	}
	m := st.cur[st.idx]
	st.idx++
	return m, nil
}

// Err returns the stream's terminal error, nil while molecules are still
// flowing and after clean exhaustion.
func (st *FixpointStream) Err() error { return st.err }

// Close cancels the in-flight fixpoint, waits for the workers to wind
// down and releases the snapshot pin; idempotent, and like Stream.Close
// it swallows the cancellation it caused itself.
func (st *FixpointStream) Close() error {
	st.cancel()
	if !st.done {
		for range st.batches {
			// Drain abandoned batches so the producer can finish.
		}
		if e := <-st.errc; e != nil && !errors.Is(e, context.Canceled) && st.err == nil {
			st.err = e
		}
		st.done = true
		st.cur, st.idx = nil, 0
	}
	st.release()
	if errors.Is(st.err, context.Canceled) {
		return nil
	}
	return st.err
}

// Execute drains a fresh stream into a materialized slice — the
// collect-all bridge the experiments and EXPLAIN use.
func (p *FixpointPlan) Execute(ctx context.Context) ([]*recursive.Molecule, error) {
	st, err := p.Stream(ctx)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var out []*recursive.Molecule
	for {
		m, err := st.Next()
		if err != nil {
			return nil, err
		}
		if m == nil {
			return out, nil
		}
		out = append(out, m)
	}
}

// Render prints the fixpoint plan with estimated and (when executed)
// actual figures — the EXPLAIN output for recursive SELECTs.
func (p *FixpointPlan) Render() string {
	var b strings.Builder
	view := "sub-component view"
	if p.Up {
		view = "super-component view"
	}
	shape := fmt.Sprintf("%s ⟲ %s (%s", p.AtomType, p.Link, view)
	if p.Depth > 0 {
		shape += fmt.Sprintf(", depth ≤ %d", p.Depth)
	}
	shape += ")"
	fmt.Fprintf(&b, "recursive: %s\n", shape)
	switch p.EntryKind {
	case FixIndexEq:
		fmt.Fprintf(&b, "access:    [fixpoint] index entry %s.%s = %s (est %s roots [%s]%s)\n",
			p.AtomType, p.EntryAttr, p.entryVal,
			approx(p.EstRoots), p.EntrySource, p.fixActual(p.ActRoots))
	default:
		fmt.Fprintf(&b, "access:    [fixpoint] full scan of %s (est %s roots [%s]%s)\n",
			p.AtomType, approx(p.EstRoots), p.EntrySource, p.fixActual(p.ActRoots))
	}
	for _, cj := range p.rootConjs {
		line := fmt.Sprintf("pushdown:  Σ↓[%s] prunes seed roots before expansion", cj)
		if p.Executed {
			line += fmt.Sprintf(" (cut %d)", p.PrunedRoots)
		}
		b.WriteString(line + "\n")
	}
	fmt.Fprintf(&b, "closure:   est ≈%.1f atoms/root over ≤%d round(s) [%s]\n",
		p.EstClosure, p.EstRounds, p.ClosureSource)
	if len(p.Alternatives) > 1 {
		parts := make([]string, 0, len(p.Alternatives))
		for _, a := range p.Alternatives {
			s := fmt.Sprintf("%s (cost %s)", a.Label, approx(int(a.Cost+0.5)))
			if a.Chosen {
				s += " ← chosen"
			}
			parts = append(parts, s)
		}
		fmt.Fprintf(&b, "considered: %s\n", strings.Join(parts, "; "))
	}
	b.WriteString("derive:    semi-naive delta fixpoint (frontier-only expansion, visited-set cycle detection, streamed per closure)\n")
	if p.Executed {
		fmt.Fprintf(&b, "actuals:   [fixpoint] rounds %d, frontier %d, visited %d\n",
			p.Rounds, p.FrontierAtoms, p.VisitedAtoms)
		fmt.Fprintf(&b, "output:    %d molecule(s)\n", p.Out)
	}
	return b.String()
}

func (p *FixpointPlan) fixActual(n int) string {
	if !p.Executed {
		return ""
	}
	return fmt.Sprintf(", actual %d", n)
}
