package plan_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mad/internal/core"
	"mad/internal/experiments"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// skewedDB builds the workload the uniform estimate gets wrong — the
// same 90/10 part/comp distribution P9 measures (see
// experiments.BuildSkewed), so the plan tests and the experiment can
// never drift apart.
func skewedDB(t testing.TB, parts int) (*storage.Database, *core.MoleculeType) {
	t.Helper()
	db, mt, err := experiments.BuildSkewed(parts)
	if err != nil {
		t.Fatal(err)
	}
	return db, mt
}

// skewedPred is "part.batch = 0 AND part.grade = 'g3'": the batch index
// looks cheap under the uniform assumption (51 distinct keys) but
// actually selects 90% of the roots; the grade index honestly selects
// 10%.
func skewedPred() expr.Expr {
	return expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "batch"}, R: expr.Lit(model.Int(0))},
		R: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "grade"}, R: expr.Lit(model.Str("g3"))},
	}
}

// TestHistogramFixesAccessPath is the tentpole behavior: on skewed data
// the uniform estimate picks the heavy-hitter index, the histogram
// estimate picks the selective one — and does measurably less work.
func TestHistogramFixesAccessPath(t *testing.T) {
	db, mt := skewedDB(t, 500)
	pred := skewedPred()

	before, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if before.Access.Kind != plan.IndexScan || before.Access.Attr != "batch" {
		t.Fatalf("uniform plan chose %s.%s, want the (mistaken) batch index",
			before.Access.Root, before.Access.Attr)
	}
	if before.Access.EstSource != plan.SrcUniform {
		t.Fatalf("EstSource = %q, want uniform before ANALYZE", before.Access.EstSource)
	}

	if _, err := db.Analyze("part"); err != nil {
		t.Fatal(err)
	}
	after, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if after.Access.Kind != plan.IndexScan || after.Access.Attr != "grade" {
		t.Fatalf("histogram plan chose %s.%s, want the grade index\n%s",
			after.Access.Root, after.Access.Attr, after.Render())
	}
	if after.Access.EstSource != plan.SrcHistogram {
		t.Fatalf("EstSource = %q, want histogram after ANALYZE", after.Access.EstSource)
	}

	db.Stats().Reset()
	setBefore, err := before.Execute()
	if err != nil {
		t.Fatal(err)
	}
	workBefore := db.Stats().Snapshot()
	db.Stats().Reset()
	setAfter, err := after.Execute()
	if err != nil {
		t.Fatal(err)
	}
	workAfter := db.Stats().Snapshot()

	if !sameSets(setBefore, setAfter) {
		t.Fatalf("access paths disagree: %d vs %d molecules", len(setBefore), len(setAfter))
	}
	// Both plans derive the same qualifying molecules, so the saved work
	// shows up in the root candidates fetched and filtered: the batch
	// index feeds 90% of the container through the grade filter, the
	// grade index feeds 10% through the batch filter.
	if workAfter.AtomsFetched >= workBefore.AtomsFetched {
		t.Fatalf("histogram plan fetched %d atoms, uniform %d — no win",
			workAfter.AtomsFetched, workBefore.AtomsFetched)
	}
	// The histogram estimate must be in the right ballpark (±2× of
	// actual), where the uniform estimate was off by an order of
	// magnitude.
	if est, act := after.Access.EstRoots, after.Access.ActRoots; est < act/2 || est > act*2 {
		t.Fatalf("histogram EstRoots %d vs actual %d", est, act)
	}
}

// TestHistogramRangeEstimate checks EstRoots for a selective range
// predicate: with a histogram the range estimate tracks the skew instead
// of assuming the full container, and the selective estimate lets the
// key-bounded index range walk win the contest over the full scan.
func TestHistogramRangeEstimate(t *testing.T) {
	db, mt := skewedDB(t, 500)
	if _, err := db.Analyze("part"); err != nil {
		t.Fatal(err)
	}
	// batch > 0 keeps only the rare 10%.
	pred := expr.Cmp{Op: expr.GT, L: expr.Attr{Type: "part", Name: "batch"}, R: expr.Lit(model.Int(0))}
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p.Access.Kind != plan.IndexScan || !p.Access.Ranged {
		t.Fatalf("selective range predicate should pick the index range walk, got %+v", p.Access)
	}
	if p.Access.EstSource != plan.SrcHistogram {
		t.Fatalf("EstSource = %q, want histogram", p.Access.EstSource)
	}
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	est, act := p.Access.EstRoots, p.Access.ActRoots
	if est < act/2 || est > act*2 {
		t.Fatalf("range EstRoots %d vs actual %d (histogram should be close)", est, act)
	}
}

// residualPredicate builds a conjunction of 2–4 residual-shaped conjuncts
// (multi-type comparisons, NOT, COUNT) in random syntactic order.
func residualPredicate(rng *rand.Rand, types []string) expr.Expr {
	last := types[len(types)-1]
	choices := []func() expr.Expr{
		func() expr.Expr {
			return expr.Cmp{Op: expr.LE, L: expr.Attr{Type: types[0], Name: "w"}, R: expr.Attr{Type: types[1], Name: "w"}}
		},
		func() expr.Expr {
			return expr.Not{E: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: last, Name: "v"}, R: expr.Lit(model.Int(int64(rng.Intn(4))))}}
		},
		func() expr.Expr {
			return expr.Cmp{Op: expr.GE, L: expr.CountOf{Type: types[1]}, R: expr.Lit(model.Int(int64(rng.Intn(3))))}
		},
		func() expr.Expr {
			return expr.Cmp{Op: expr.GT, L: expr.Attr{Type: last, Name: "w"}, R: expr.Attr{Type: types[0], Name: "w"}}
		},
	}
	pred := choices[rng.Intn(len(choices))]()
	for n := 1 + rng.Intn(3); n > 0; n-- {
		pred = expr.And{L: pred, R: choices[rng.Intn(len(choices))]()}
	}
	return pred
}

// TestResidualOrderEquivalence is the ordering-soundness property: for
// random schemas and random residual-heavy predicates, the cost-ordered
// short-circuit evaluation returns exactly the naive result, and so does
// every random permutation of the residual chain (ordering is purely a
// work optimization).
func TestResidualOrderEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, types, edges, err := layeredDB(rng, 2+rng.Intn(2), 4+rng.Intn(4))
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		mt, err := core.Define(db, "resid", types, edges)
		if err != nil {
			t.Logf("define: %v", err)
			return false
		}
		if rng.Intn(2) == 0 {
			if _, err := db.Analyze(); err != nil {
				t.Logf("analyze: %v", err)
				return false
			}
		}
		pred := residualPredicate(rng, types)
		if err := expr.Check(pred, core.Scope{DB: db, Desc: mt.Desc()}); err != nil {
			t.Logf("check: %v", err)
			return false
		}
		want := naiveRestrict(t, mt, pred)

		p, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		if len(p.Residuals) < 2 {
			return true // nothing to permute
		}
		got, err := p.Execute()
		if err != nil {
			t.Logf("execute: %v", err)
			return false
		}
		if !sameSets(got, want) {
			t.Logf("seed %d: ordered residual %d molecules, naive %d\n%s", seed, len(got), len(want), p.Render())
			return false
		}
		// Short-circuit accounting: the first conjunct sees every derived
		// molecule, later conjuncts only the survivors.
		if p.Residuals[0].Evals != p.Derived {
			t.Logf("seed %d: first conjunct evaluated %d of %d derived", seed, p.Residuals[0].Evals, p.Derived)
			return false
		}
		for i := 1; i < len(p.Residuals); i++ {
			if p.Residuals[i].Evals != p.Residuals[i-1].Passed {
				t.Logf("seed %d: chain broken at %d: evals %d, prior passed %d",
					seed, i, p.Residuals[i].Evals, p.Residuals[i-1].Passed)
				return false
			}
		}
		// Any permutation of the chain is result-equivalent.
		rng.Shuffle(len(p.Residuals), func(i, j int) {
			p.Residuals[i], p.Residuals[j] = p.Residuals[j], p.Residuals[i]
		})
		shuffled, err := p.Execute()
		if err != nil {
			t.Logf("shuffled execute: %v", err)
			return false
		}
		if !sameSets(shuffled, want) {
			t.Logf("seed %d: shuffled residual differs (%d vs %d)", seed, len(shuffled), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestResidualOrderPutsSelectiveFirst pins the ordering criterion: a
// cheap, selective conjunct must precede an expensive, unselective one
// regardless of syntactic order.
func TestResidualOrderPutsSelectiveFirst(t *testing.T) {
	db, mt := skewedDB(t, 200)
	if _, err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	// Both conjuncts stay residual (COUNT and NOT never push down). The
	// histogram knows every comp weight is ≥ 0, so NOT(weight >= 0) is
	// estimated near-zero selectivity while the COUNT comparison falls
	// back to the 50% default — the plan must run the NOT first even
	// though source order lists it second.
	weak := expr.Cmp{Op: expr.GE, L: expr.CountOf{Type: "comp"}, R: expr.Lit(model.Int(0))}
	strong := expr.Not{E: expr.Cmp{Op: expr.GE, L: expr.Attr{Type: "comp", Name: "weight"}, R: expr.Lit(model.Float(0))}}
	pred := expr.And{L: weak, R: strong}
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Residuals) != 2 {
		t.Fatalf("want 2 residual conjuncts, got %+v", p.Residuals)
	}
	if _, ok := p.Residuals[0].Conjunct.(expr.Not); !ok {
		t.Fatalf("selective NOT conjunct must run first, got order %s then %s\n%s",
			p.Residuals[0].Conjunct, p.Residuals[1].Conjunct, p.Render())
	}
}

func TestRenderShowsEstimateSource(t *testing.T) {
	db, mt := skewedDB(t, 100)
	pred := skewedPred()
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Render(), "[uniform]") {
		t.Fatalf("render must label the uniform estimate:\n%s", p.Render())
	}
	if _, err := db.Analyze("part"); err != nil {
		t.Fatal(err)
	}
	p, err = plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Render(), "[histogram]") {
		t.Fatalf("render must label the histogram estimate:\n%s", p.Render())
	}
}
