package plan

import (
	"fmt"
	"math"
	"strings"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// Estimate provenance: which statistic produced a cardinality or
// selectivity estimate. EXPLAIN renders the source next to the number so
// a reader can tell a histogram-backed estimate from a uniform guess.
const (
	// SrcHistogram marks estimates read from equi-depth histogram buckets
	// (built by ANALYZE, maintained incrementally).
	SrcHistogram = "histogram"
	// SrcUniform marks the PR-1 estimate occurrence/distinct-keys — used
	// when no histogram covers the attribute but an index does.
	SrcUniform = "uniform"
	// SrcDefault marks fixed magic-constant selectivities for shapes no
	// statistic covers (attribute-vs-attribute, quantifiers, …).
	SrcDefault = "default"
	// SrcContainer marks the container size itself (full scans without a
	// root filter).
	SrcContainer = "container"
	// SrcLinkFan marks estimates computed from link-occurrence fan
	// statistics (average partners per linked atom) — the upward-climb
	// estimates of interior-index access paths.
	SrcLinkFan = "link-fan"
	// SrcObserved marks figures taken from the execution-feedback store:
	// molecule-level residual pass rates and per-root/per-entry work
	// actually measured on earlier executions of the same plan epoch —
	// the strongest provenance of all, since it is not an estimate.
	SrcObserved = "observed"
)

// Default selectivities for predicate shapes no statistic covers. The
// constants follow the classic System-R conventions.
const (
	defSelEq    = 0.10
	defSelRange = 1.0 / 3.0
	defSelOther = 0.50
)

// worseSource returns the weaker of two provenance labels, so a composite
// estimate is only advertised as histogram-backed when every leaf was.
func worseSource(a, b string) string {
	rank := func(s string) int {
		switch s {
		case SrcObserved, SrcHistogram:
			return 0
		case SrcUniform, SrcLinkFan:
			return 1
		default:
			return 2
		}
	}
	if rank(a) >= rank(b) {
		return a
	}
	return b
}

// attrConstCmp recognizes "attr op const" (either orientation, flipping
// the operator when the constant is on the left), the shape histograms
// can estimate directly.
func attrConstCmp(c expr.Expr) (expr.Attr, expr.CmpOp, model.Value, bool) {
	cmp, ok := c.(expr.Cmp)
	if !ok {
		return expr.Attr{}, 0, model.Null(), false
	}
	if a, aok := cmp.L.(expr.Attr); aok {
		if l, lok := cmp.R.(expr.Const); lok {
			return a, cmp.Op, l.V, true
		}
	}
	if a, aok := cmp.R.(expr.Attr); aok {
		if l, lok := cmp.L.(expr.Const); lok {
			return a, flipCmp(cmp.Op), l.V, true
		}
	}
	return expr.Attr{}, 0, model.Null(), false
}

// flipCmp mirrors an operator across the comparison ("5 < x" ≡ "x > 5").
func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	}
	return op
}

// isRangeOp reports whether op is one of the four range comparisons a
// key-bounded ordered index walk can serve.
func isRangeOp(op expr.CmpOp) bool {
	return op == expr.LT || op == expr.LE || op == expr.GT || op == expr.GE
}

// rangeSpec is one merged range restriction over an indexed attribute:
// the interval a group of range conjuncts on the same (type, attribute)
// pins down — a BETWEEN-shaped AND pair arrives as two conjuncts and
// merges into a two-sided spec — plus the conjunct ordinals and
// source-list indexes it absorbs.
type rangeSpec struct {
	typeName, attr string
	hasLo, hasHi   bool
	lo, hi         model.Value
	loInc, hiInc   bool
	ords           []int // conjunct ordinals folded into the bounds
	idxs           []int // indexes into rootConjs / Pushdowns
}

// addBound tightens the spec with one more "attr op v" conjunct; the
// tighter of two bounds on the same side wins (equal bounds prefer the
// exclusive one, matching AND semantics).
func (s *rangeSpec) addBound(op expr.CmpOp, v model.Value) {
	switch op {
	case expr.GT, expr.GE:
		inc := op == expr.GE
		if !s.hasLo {
			s.hasLo, s.lo, s.loInc = true, v, inc
			return
		}
		c := v.Compare(s.lo)
		if c > 0 || (c == 0 && s.loInc && !inc) {
			s.lo, s.loInc = v, inc
		}
	case expr.LT, expr.LE:
		inc := op == expr.LE
		if !s.hasHi {
			s.hasHi, s.hi, s.hiInc = true, v, inc
			return
		}
		c := v.Compare(s.hi)
		if c < 0 || (c == 0 && s.hiInc && !inc) {
			s.hi, s.hiInc = v, inc
		}
	}
}

// fillAccess copies the spec's bounds into an access node.
func (s *rangeSpec) fillAccess(a *Access) {
	a.Ranged = true
	a.HasLo, a.Lo, a.LoInc = s.hasLo, s.lo, s.loInc
	a.HasHi, a.Hi, a.HiInc = s.hasHi, s.hi, s.hiInc
}

// String renders the interval for EXPLAIN and contest labels.
func (s *rangeSpec) String() string {
	switch {
	case s.hasLo && s.hasHi:
		l, r := "(", ")"
		if s.loInc {
			l = "["
		}
		if s.hiInc {
			r = "]"
		}
		return fmt.Sprintf("∈ %s%s, %s%s", l, s.lo, s.hi, r)
	case s.hasLo:
		if s.loInc {
			return fmt.Sprintf("≥ %s", s.lo)
		}
		return fmt.Sprintf("> %s", s.lo)
	case s.hasHi:
		if s.hiInc {
			return fmt.Sprintf("≤ %s", s.hi)
		}
		return fmt.Sprintf("< %s", s.hi)
	}
	return ""
}

// rangeString renders a ranged access's interval (see rangeSpec.String).
func (a *Access) rangeString() string {
	s := rangeSpec{
		hasLo: a.HasLo, lo: a.Lo, loInc: a.LoInc,
		hasHi: a.HasHi, hi: a.Hi, hiInc: a.HiInc,
	}
	return s.String()
}

// estimateRangeCount estimates how many atoms of typeName fall inside
// the merged range: two-sided histogram-bucket interpolation when
// ANALYZE has built one, the System-R range default per bound otherwise.
func estimateRangeCount(db *storage.Database, typeName string, spec *rangeSpec, n int) (int, string) {
	if h, ok := db.Histogram(typeName, spec.attr); ok && h.Total() > 0 {
		var est int64
		switch {
		case spec.hasLo && spec.hasHi:
			est = h.EstimateLess(spec.hi, spec.hiInc) - h.EstimateLess(spec.lo, !spec.loInc)
		case spec.hasLo:
			est = h.Total() - h.EstimateLess(spec.lo, !spec.loInc)
		case spec.hasHi:
			est = h.EstimateLess(spec.hi, spec.hiInc)
		}
		e := int(est)
		if e > n {
			e = n
		}
		if e < 1 {
			e = 1
		}
		return e, SrcHistogram
	}
	sel := 1.0
	if spec.hasLo {
		sel *= defSelRange
	}
	if spec.hasHi {
		sel *= defSelRange
	}
	return scaleEst(n, sel), SrcDefault
}

// attrType resolves the atom type an attribute reference binds to within
// the structure (qualified directly, unqualified via the unique declaring
// component type).
func attrType(db *storage.Database, desc *core.Desc, a expr.Attr) (string, bool) {
	if a.Type != "" {
		return a.Type, desc.HasType(a.Type)
	}
	t, err := core.ResolveUnqualified(db, desc, a.Name)
	return t, err == nil
}

// cmpSelectivity estimates the fraction of typeName atoms satisfying
// "attr op v": histogram buckets when ANALYZE has run, the uniform
// index estimate for equality otherwise, a shape default as last resort.
func cmpSelectivity(db *storage.Database, typeName, attr string, op expr.CmpOp, v model.Value) (float64, string) {
	if h, ok := db.Histogram(typeName, attr); ok {
		total := h.Total() + h.Nulls()
		if total > 0 {
			est := h.EstimateCmp(op.String(), v)
			return clampSel(float64(est) / float64(total)), SrcHistogram
		}
	}
	if op == expr.EQ {
		if keys, ok := db.IndexCardinality(typeName, attr); ok && keys > 0 {
			return clampSel(1 / float64(keys)), SrcUniform
		}
		return defSelEq, SrcDefault
	}
	if op == expr.NE {
		return 1 - defSelEq, SrcDefault
	}
	return defSelRange, SrcDefault
}

// conjSelectivity estimates the fraction of candidates a conjunct keeps,
// recursing over the boolean structure with independence assumptions.
// The returned source is histogram only when every leaf estimate was
// histogram-backed.
func conjSelectivity(db *storage.Database, desc *core.Desc, c expr.Expr) (float64, string) {
	switch n := c.(type) {
	case expr.And:
		ls, lsrc := conjSelectivity(db, desc, n.L)
		rs, rsrc := conjSelectivity(db, desc, n.R)
		return clampSel(ls * rs), worseSource(lsrc, rsrc)
	case expr.Or:
		ls, lsrc := conjSelectivity(db, desc, n.L)
		rs, rsrc := conjSelectivity(db, desc, n.R)
		return clampSel(ls + rs - ls*rs), worseSource(lsrc, rsrc)
	case expr.Not:
		s, src := conjSelectivity(db, desc, n.E)
		return clampSel(1 - s), src
	case expr.Cmp:
		if a, op, v, ok := attrConstCmp(c); ok {
			if t, tok := attrType(db, desc, a); tok {
				return cmpSelectivity(db, t, a.Name, op, v)
			}
		}
		return defSelOther, SrcDefault
	case expr.All:
		return defSelOther, SrcDefault
	case expr.Exists:
		return 0.9, SrcDefault
	}
	return defSelOther, SrcDefault
}

// conjCost scores the relative per-molecule cost of evaluating a conjunct
// under molecule binding: attribute references dominate (each resolves to
// the values of every component atom of its type), quantifiers and
// aggregates add a full component sweep, scalar nodes are noise.
func conjCost(c expr.Expr) float64 {
	switch n := c.(type) {
	case nil:
		return 0
	case expr.Const:
		return 0.1
	case expr.Attr:
		return 2
	case expr.Cmp:
		return 0.5 + conjCost(n.L) + conjCost(n.R)
	case expr.And:
		return 0.25 + conjCost(n.L) + conjCost(n.R)
	case expr.Or:
		return 0.25 + conjCost(n.L) + conjCost(n.R)
	case expr.Not:
		return 0.25 + conjCost(n.E)
	case expr.Arith:
		return 0.5 + conjCost(n.L) + conjCost(n.R)
	case expr.Exists:
		return 1
	case expr.CountOf:
		return 1.5
	case expr.All:
		return 2 + conjCost(n.Attr) + conjCost(n.R)
	case expr.Func:
		cost := 1.0
		for _, a := range n.Args {
			cost += conjCost(a)
		}
		return cost
	}
	return 1
}

// derivCostPerRoot estimates the atoms fetched deriving one molecule of
// the structure: expected component-set sizes accumulated along the
// forward fan of every edge, read from the link stores' average-partner
// statistics. Types with several incoming edges take their smallest
// incoming estimate (downward derivation intersects the parents' partner
// sets). The figure weights the access-path contest — a root batch is
// only as cheap as the derivations it triggers.
func derivCostPerRoot(db *storage.Database, desc *core.Desc) float64 {
	est := make([]float64, desc.NumTypes())
	rootPos, _ := desc.Pos(desc.Root())
	est[rootPos] = 1
	total := 1.0
	for _, t := range desc.Topo() {
		if t == desc.Root() {
			continue
		}
		pos, _ := desc.Pos(t)
		best := math.MaxFloat64
		for _, ei := range desc.Incoming(t) {
			e := desc.Edge(ei)
			fromPos, _ := desc.Pos(e.From)
			ls, ok := db.LinkStore(e.Link)
			if !ok {
				continue
			}
			fan := ls.AvgFan(ls.Desc().SideA == e.From)
			if v := est[fromPos] * fan; v < best {
				best = v
			}
		}
		if best == math.MaxFloat64 {
			best = 0
		}
		est[pos] = best
		total += best
	}
	return total
}

// climbEstimate predicts the upward walk of an interior-index access
// path: starting from `entries` matching atoms of entryType, the expected
// frontier size at every type of the reverse-reachable slice up to the
// root, grown by the child side's average link fan and capped by the
// container sizes. It returns the estimated recovered roots, the
// link-traversal cost of the climb, and the climb path for EXPLAIN: one
// label per climb level (entry first, root last), with sibling parents
// reached at the same level grouped as "{a, b}" so a diamond does not
// read as a chain.
func climbEstimate(db *storage.Database, desc *core.Desc, entryType string, entries int) (estRoots int, climbCost float64, path []string) {
	est := make([]float64, desc.NumTypes())
	level := make([]int, desc.NumTypes()) // climb distance from the entry
	seen := make([]bool, desc.NumTypes())
	entryPos, _ := desc.Pos(entryType)
	est[entryPos] = float64(entries)
	seen[entryPos] = true
	topo := desc.Topo()
	levels := [][]string{{entryType}}
	for i := len(topo) - 1; i >= 0; i-- {
		t := topo[i]
		pos, _ := desc.Pos(t)
		if !seen[pos] {
			continue
		}
		for _, ei := range desc.Incoming(t) {
			e := desc.Edge(ei)
			fromPos, _ := desc.Pos(e.From)
			ls, ok := db.LinkStore(e.Link)
			if !ok {
				continue
			}
			upFan := ls.AvgFan(ls.Desc().SideA == e.To)
			climbCost += est[pos]
			grown := est[fromPos] + est[pos]*upFan
			if n, err := db.CountAtoms(e.From); err == nil && grown > float64(n) {
				grown = float64(n)
			}
			est[fromPos] = grown
			if !seen[fromPos] {
				// A type is labelled with the level it is first reached
				// at; later, longer paths into it do not move the label.
				seen[fromPos] = true
				level[fromPos] = level[pos] + 1
				for len(levels) <= level[fromPos] {
					levels = append(levels, nil)
				}
				levels[level[fromPos]] = append(levels[level[fromPos]], e.From)
			}
		}
	}
	for _, lv := range levels {
		switch len(lv) {
		case 0:
		case 1:
			path = append(path, lv[0])
		default:
			path = append(path, "{"+strings.Join(lv, ", ")+"}")
		}
	}
	rootPos, _ := desc.Pos(desc.Root())
	r := int(est[rootPos] + 0.5)
	if n, err := db.CountAtoms(desc.Root()); err == nil && r > n {
		r = n
	}
	if r < 1 {
		r = 1
	}
	return r, climbCost, path
}

// orderCost scores the comparison work of heap- or sort-ordering e
// molecules — the surcharge unsorted access paths pay in an ordered
// plan's contest. The e·log₂e shape covers both mechanisms (a bounded
// heap does less, but the bound is unknown at compile time); the 0.25
// weight keeps one comparison well below one atom fetch.
func orderCost(e float64) float64 {
	if e <= 0 {
		return 0
	}
	return 0.25 * e * math.Log2(e+1)
}

// residualRank orders residual conjuncts for short-circuit evaluation:
// the classic (selectivity − 1)/cost criterion, most negative first, puts
// cheap, highly selective conjuncts ahead so expected work per molecule
// is minimized. cost is either the static conjCost score or the observed
// ns/eval figure — rankResiduals guarantees a chain never mixes the two.
func residualRank(sel, cost float64) float64 {
	if cost <= 0 {
		cost = 0.1
	}
	return (sel - 1) / cost
}

// clampSel bounds a selectivity estimate away from the degenerate 0 and
// above 1 (estimates are rankings, not proofs — an estimated-zero
// conjunct must still be evaluated).
func clampSel(s float64) float64 {
	if math.IsNaN(s) {
		return defSelOther
	}
	if s < 0.0005 {
		return 0.0005
	}
	if s > 1 {
		return 1
	}
	return s
}
