package plan_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// jobShopDB builds the deterministic intersection fixture: 64 "job"
// roots, each linked to one "machine" (site = i%8, indexed), one "tool"
// (grade = (i/8)%8, indexed) and 16 "step" atoms. A conjunction of
// machine.site = a AND tool.grade = b selects exactly one job, but each
// single entry alone recovers 8 candidate roots — the configuration
// where intersecting before derivation beats any single entry.
func jobShopDB(t testing.TB) (*storage.Database, *core.MoleculeType) {
	t.Helper()
	db := storage.NewDatabase()
	for _, d := range []struct {
		name  string
		attrs []model.AttrDesc
	}{
		{"job", []model.AttrDesc{{Name: "id", Kind: model.KInt}}},
		{"machine", []model.AttrDesc{{Name: "site", Kind: model.KInt}}},
		{"tool", []model.AttrDesc{{Name: "grade", Kind: model.KInt}}},
		{"step", []model.AttrDesc{{Name: "seq", Kind: model.KInt}}},
	} {
		if _, err := db.DefineAtomType(d.name, model.MustDesc(d.attrs...)); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []struct{ name, a, b string }{
		{"jm", "job", "machine"}, {"jt", "job", "tool"}, {"js", "job", "step"},
	} {
		if _, err := db.DefineLinkType(l.name, model.LinkDesc{SideA: l.a, SideB: l.b}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		j, err := db.InsertAtom("job", model.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		m, err := db.InsertAtom("machine", model.Int(int64(i%8)))
		if err != nil {
			t.Fatal(err)
		}
		tl, err := db.InsertAtom("tool", model.Int(int64((i/8)%8)))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Connect("jm", j, m); err != nil {
			t.Fatal(err)
		}
		if err := db.Connect("jt", j, tl); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 16; k++ {
			s, err := db.InsertAtom("step", model.Int(int64(k)))
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Connect("js", j, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, idx := range [][2]string{{"machine", "site"}, {"tool", "grade"}} {
		if err := db.CreateIndex(idx[0], idx[1]); err != nil {
			t.Fatal(err)
		}
	}
	mt, err := core.Define(db, "shop",
		[]string{"job", "machine", "tool", "step"},
		[]core.DirectedLink{
			{Link: "jm", From: "job", To: "machine"},
			{Link: "jt", From: "job", To: "tool"},
			{Link: "js", From: "job", To: "step"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return db, mt
}

func eqConj(typeName, attr string, v int64) expr.Expr {
	return expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: typeName, Name: attr}, R: expr.Lit(model.Int(v))}
}

// TestIndexIntersectionChosen pins the deterministic contest outcome:
// with two selective indexed equalities on different interior types and
// an expensive derivation, the planner must pick the multi-entry
// intersection, the intersection must surface in EXPLAIN with per-entry
// counts, and the result must match both the single-entry compile and
// naive Σ.
func TestIndexIntersectionChosen(t *testing.T) {
	db, mt := jobShopDB(t)
	pred := expr.And{L: eqConj("machine", "site", 3), R: eqConj("tool", "grade", 5)}

	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p.Access.Kind != plan.IndexIntersect {
		t.Fatalf("contest chose %v, want IndexIntersect:\n%s", p.Access.Kind, p.Render())
	}
	if len(p.Access.Entries) != 2 {
		t.Fatalf("intersection has %d entries, want 2", len(p.Access.Entries))
	}
	got, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// job 43 is the only root with site 3 AND grade 5 (43%8 == 3, 43/8 == 5).
	if len(got) != 1 {
		t.Fatalf("intersection delivered %d molecules, want 1", len(got))
	}
	if p.Access.ActSurvivors != 1 {
		t.Fatalf("ActSurvivors = %d, want 1 intersection survivor", p.Access.ActSurvivors)
	}
	for i, e := range p.Access.Entries {
		if e.ActEntries != 8 || e.ActRoots != 8 {
			t.Fatalf("entry %d actuals = %d entries / %d roots, want 8/8", i, e.ActEntries, e.ActRoots)
		}
	}

	r := p.Render()
	for _, want := range []string{"[intersect]", "sorted-merge intersection", "1 surviving root(s)"} {
		if !strings.Contains(r, want) {
			t.Fatalf("EXPLAIN lacks %q:\n%s", want, r)
		}
	}

	// The single-entry baseline must agree on the result while doing more
	// per-path work (it derives every candidate of its one entry).
	sp, err := plan.CompileSingleEntry(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Access.Kind == plan.IndexIntersect {
		t.Fatal("CompileSingleEntry must exclude the intersection candidate")
	}
	sgot, err := sp.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(got, sgot) {
		t.Fatalf("intersected %d vs single-entry %d molecules", len(got), len(sgot))
	}
	if want := naiveRestrict(t, mt, pred); !sameSets(got, want) {
		t.Fatalf("intersected %d vs naive %d molecules", len(got), len(want))
	}
}

// starDB builds a random star schema r → b0, b1, …: every branch type's
// v attribute is indexed, each root connects to a few random atoms per
// branch, so indexed equalities on two branches make the intersection
// candidate eligible.
func starDB(rng *rand.Rand, branches, atomsPerType, domain int) (*storage.Database, []string, []core.DirectedLink, error) {
	db := storage.NewDatabase()
	types := make([]string, branches+1)
	types[0] = "r"
	if _, err := db.DefineAtomType("r", model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})); err != nil {
		return nil, nil, nil, err
	}
	var edges []core.DirectedLink
	for i := 1; i <= branches; i++ {
		types[i] = fmt.Sprintf("b%d", i-1)
		if _, err := db.DefineAtomType(types[i], model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})); err != nil {
			return nil, nil, nil, err
		}
		link := fmt.Sprintf("rb%d", i-1)
		if _, err := db.DefineLinkType(link, model.LinkDesc{SideA: "r", SideB: types[i]}); err != nil {
			return nil, nil, nil, err
		}
		edges = append(edges, core.DirectedLink{Link: link, From: "r", To: types[i]})
		if err := db.CreateIndex(types[i], "v"); err != nil {
			return nil, nil, nil, err
		}
	}
	ids := make([][]model.AtomID, branches+1)
	for i, tn := range types {
		for j := 0; j < atomsPerType; j++ {
			id, err := db.InsertAtom(tn, model.Int(int64(rng.Intn(domain))))
			if err != nil {
				return nil, nil, nil, err
			}
			ids[i] = append(ids[i], id)
		}
	}
	for i := 1; i <= branches; i++ {
		link := fmt.Sprintf("rb%d", i-1)
		for _, r := range ids[0] {
			for k := 0; k < 1+rng.Intn(3); k++ {
				b := ids[i][rng.Intn(len(ids[i]))]
				if err := db.Connect(link, r, b); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	return db, types, edges, nil
}

// TestIntersectionParityRandom is the tentpole's property test: over
// random star schemas, selectivities and entry counts, the intersecting
// compile, the single-entry compile and naive Σ agree exactly — every
// entry conjunct stays a pushdown hook, so recovery over-approximation
// can never leak a false positive through the intersection.
func TestIntersectionParityRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		branches := 2 + rng.Intn(2)
		domain := 2 + rng.Intn(5)
		db, types, edges, err := starDB(rng, branches, 6+rng.Intn(10), domain)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		mt, err := core.Define(db, "star", types, edges)
		if err != nil {
			t.Logf("define: %v", err)
			return false
		}
		// Indexed equalities on at least two distinct branch types, plus an
		// occasional root conjunct so the root filter composes with the
		// intersection.
		pred := expr.Expr(expr.And{
			L: eqConj(types[1], "v", int64(rng.Intn(domain))),
			R: eqConj(types[2], "v", int64(rng.Intn(domain))),
		})
		if branches > 2 && rng.Intn(2) == 0 {
			pred = expr.And{L: pred, R: eqConj(types[3], "v", int64(rng.Intn(domain)))}
		}
		if rng.Intn(2) == 0 {
			pred = expr.And{L: pred, R: expr.Cmp{
				Op: expr.GE, L: expr.Attr{Type: "r", Name: "v"}, R: expr.Lit(model.Int(int64(rng.Intn(domain)))),
			}}
		}

		want := naiveRestrict(t, mt, pred)
		p, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		got, err := p.Execute()
		if err != nil {
			t.Logf("execute: %v", err)
			return false
		}
		if !sameSets(got, want) {
			t.Logf("seed %d: plan %d vs naive %d (pred %s)\n%s", seed, len(got), len(want), pred, p.Render())
			return false
		}
		sp, err := plan.CompileSingleEntry(db, mt.Desc(), pred)
		if err != nil {
			t.Logf("single-entry compile: %v", err)
			return false
		}
		sgot, err := sp.Execute()
		if err != nil {
			t.Logf("single-entry execute: %v", err)
			return false
		}
		if !sameSets(sgot, want) {
			t.Logf("seed %d: single-entry %d vs naive %d (pred %s)", seed, len(sgot), len(want), pred)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRangeEntryParity exercises the range entry paths: a histogram-
// estimated root range must become a key-bounded index range walk whose
// result matches naive Σ, and an interior range entry must stay exact
// through its pushdown hook.
func TestRangeEntryParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db, types, edges, err := starDB(rng, 2, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("r", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(db, "star", types, edges)
	if err != nil {
		t.Fatal(err)
	}

	// Root BETWEEN-shaped pair: both bounds merge into one walk.
	pred := expr.Expr(expr.And{
		L: expr.Cmp{Op: expr.GE, L: expr.Attr{Type: "r", Name: "v"}, R: expr.Lit(model.Int(3))},
		R: expr.Cmp{Op: expr.LT, L: expr.Attr{Type: "r", Name: "v"}, R: expr.Lit(model.Int(6))},
	})
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p.Access.Kind != plan.IndexScan || !p.Access.Ranged {
		t.Fatalf("root range should compile to an index range walk, got:\n%s", p.Render())
	}
	if !p.Access.HasLo || !p.Access.HasHi || !p.Access.LoInc || p.Access.HiInc {
		t.Fatalf("merged bounds wrong: %+v", p.Access)
	}
	got, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if want := naiveRestrict(t, mt, pred); !sameSets(got, want) {
		t.Fatalf("root range walk: plan %d vs naive %d", len(got), len(want))
	}
	if !strings.Contains(p.Render(), "index range walk") {
		t.Fatalf("EXPLAIN lacks the range walk line:\n%s", p.Render())
	}

	// Interior range: exactness must come from the pushdown hook even
	// though the walk's climb over-approximates.
	ipred := expr.Cmp{Op: expr.GE, L: expr.Attr{Type: types[1], Name: "v"}, R: expr.Lit(model.Int(15))}
	ip, err := plan.Compile(db, mt.Desc(), ipred)
	if err != nil {
		t.Fatal(err)
	}
	igot, err := ip.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if want := naiveRestrict(t, mt, ipred); !sameSets(igot, want) {
		t.Fatalf("interior range: plan %d vs naive %d\n%s", len(igot), len(want), ip.Render())
	}
}

// TestRangeWalkParityRandom drives random one- and two-sided ranges on
// an indexed root attribute against naive Σ — with histograms half the
// time, so both the histogram-bucket and default range estimates feed
// the contest.
func TestRangeWalkParityRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, types, edges, err := starDB(rng, 2, 10+rng.Intn(30), 12)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		if err := db.CreateIndex("r", "v"); err != nil {
			t.Logf("index: %v", err)
			return false
		}
		if rng.Intn(2) == 0 {
			if _, err := db.Analyze(); err != nil {
				t.Logf("analyze: %v", err)
				return false
			}
		}
		mt, err := core.Define(db, "star", types, edges)
		if err != nil {
			t.Logf("define: %v", err)
			return false
		}
		ops := []expr.CmpOp{expr.LT, expr.LE, expr.GT, expr.GE}
		pred := expr.Expr(expr.Cmp{
			Op: ops[rng.Intn(len(ops))],
			L:  expr.Attr{Type: "r", Name: "v"},
			R:  expr.Lit(model.Int(int64(rng.Intn(12)))),
		})
		if rng.Intn(2) == 0 {
			pred = expr.And{L: pred, R: expr.Cmp{
				Op: ops[rng.Intn(len(ops))],
				L:  expr.Attr{Type: "r", Name: "v"},
				R:  expr.Lit(model.Int(int64(rng.Intn(12)))),
			}}
		}
		want := naiveRestrict(t, mt, pred)
		p, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		got, err := p.Execute()
		if err != nil {
			t.Logf("execute: %v", err)
			return false
		}
		if !sameSets(got, want) {
			t.Logf("seed %d: plan %d vs naive %d (pred %s)\n%s", seed, len(got), len(want), pred, p.Render())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// driftDB builds the deterministic drift fixture: 16 "grp" roots; 128
// "item" atoms tagged 'hot', each linked to every group; 4096 items with
// unique tags, one group each. The index on item.tag has ~4097 distinct
// keys over 4224 atoms, so the uniform estimate for tag = 'hot' is ~2
// entries — off by 64× from the actual 128, far beyond the drift factor.
func driftDB(t testing.TB) (*storage.Database, *core.MoleculeType) {
	t.Helper()
	db := storage.NewDatabase()
	if _, err := db.DefineAtomType("grp", model.MustDesc(model.AttrDesc{Name: "name", Kind: model.KString})); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineAtomType("item", model.MustDesc(model.AttrDesc{Name: "tag", Kind: model.KString})); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("gi", model.LinkDesc{SideA: "grp", SideB: "item"}); err != nil {
		t.Fatal(err)
	}
	var grps []model.AtomID
	for i := 0; i < 16; i++ {
		id, err := db.InsertAtom("grp", model.Str(fmt.Sprintf("g%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		grps = append(grps, id)
	}
	for i := 0; i < 128; i++ {
		id, err := db.InsertAtom("item", model.Str("hot"))
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range grps {
			if err := db.Connect("gi", g, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 4096; i++ {
		id, err := db.InsertAtom("item", model.Str(fmt.Sprintf("u%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Connect("gi", grps[i%16], id); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateIndex("item", "tag"); err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(db, "drift", []string{"grp", "item"},
		[]core.DirectedLink{{Link: "gi", From: "grp", To: "item"}})
	if err != nil {
		t.Fatal(err)
	}
	return db, mt
}

// TestDriftRecompileFlipsAccessPath is the adaptive-recompile contract:
// a cached plan whose execution observes cardinalities drifting beyond
// the factor is recompiled — just that entry, at an unchanged plan epoch
// — and the recalibrated contest flips the access path, with the
// [recompiled] provenance visible in EXPLAIN and the recompile counted.
func TestDriftRecompileFlipsAccessPath(t *testing.T) {
	db, mt := driftDB(t)
	cache := plan.CacheFor(db)
	defer plan.Release(db)
	pred := expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "item", Name: "tag"}, R: expr.Lit(model.Str("hot"))}
	epoch0 := db.PlanEpoch()

	p1, cached, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first compile must miss")
	}
	if p1.Access.Kind != plan.InteriorIndex {
		t.Fatalf("cold contest chose %v, want InteriorIndex (uniform estimate ~2 entries):\n%s",
			p1.Access.Kind, p1.Render())
	}
	if p1.Recompiled {
		t.Fatal("fresh compile must not carry [recompiled]")
	}

	got, err := p1.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("executed %d molecules, want 16", len(got))
	}
	if p1.Access.ActEntries != 128 {
		t.Fatalf("ActEntries = %d, want 128 hot items", p1.Access.ActEntries)
	}
	if fb := plan.FeedbackFor(db); fb.Drifts() == 0 {
		t.Fatal("execution 64× off the estimate must record a drift")
	}

	// The drifted entry recompiles in place on the next fetch: observed
	// entry and root counts replace the uniform guess and the contest
	// flips to the full scan — at the SAME plan epoch, with no flush.
	p2, cached, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("stale entry must be treated as a miss")
	}
	if p2.Access.Kind != plan.FullScan {
		t.Fatalf("recalibrated contest chose %v, want FullScan:\n%s", p2.Access.Kind, p2.Render())
	}
	if !p2.Recompiled {
		t.Fatal("drift-triggered recompile must stamp Recompiled")
	}
	if !strings.Contains(p2.Render(), "[recompiled]") {
		t.Fatalf("EXPLAIN lacks [recompiled] provenance:\n%s", p2.Render())
	}
	if db.PlanEpoch() != epoch0 {
		t.Fatalf("plan epoch moved %d → %d; targeted recompile must not bump it", epoch0, db.PlanEpoch())
	}
	if n := cache.Recompiles(); n != 1 {
		t.Fatalf("cache counted %d targeted recompiles, want 1", n)
	}
	if !strings.Contains(plan.FeedbackFor(db).Render(), "[recompiled]") {
		t.Fatalf("SHOW FEEDBACK lacks the drift line:\n%s", plan.FeedbackFor(db).Render())
	}

	// Parity: the flipped plan returns the same molecules.
	got2, err := p2.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(got, got2) {
		t.Fatalf("recompiled plan delivered %d molecules, want %d", len(got2), len(got))
	}

	// The entry is fresh again: the next fetch is a plain hit that keeps
	// the provenance.
	p3, cached, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("recompiled entry must serve hits again")
	}
	if !p3.Recompiled {
		t.Fatal("hits on a recompiled entry must inherit the provenance")
	}
}

// TestWarmCacheRoundTrip drives the plan-shape persistence directly: the
// shapes of cached compilations round-trip through plancache.json and
// precompile into a fresh cache, so the first fetch after WarmCache is
// a hit.
func TestWarmCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, mt := jobShopDB(t)
	cache := plan.CacheFor(db)
	defer plan.Release(db)
	pred := expr.And{L: eqConj("machine", "site", 3), R: eqConj("tool", "grade", 5)}
	if _, _, err := cache.Compile(mt.Desc(), pred); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.CompileOrdered(mt.Desc(), nil, &plan.OrderBy{Attr: "id"}); err != nil {
		t.Fatal(err)
	}
	if err := plan.SaveCacheShapes(db, dir); err != nil {
		t.Fatal(err)
	}

	// A second database with the same schema and data warms from the file.
	db2, mt2 := jobShopDB(t)
	defer plan.Release(db2)
	warmed, err := plan.WarmCache(db2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 2 {
		t.Fatalf("warmed %d plans, want 2", warmed)
	}
	if n := plan.CacheFor(db2).Len(); n != 2 {
		t.Fatalf("warm cache holds %d entries, want 2", n)
	}
	p, cached, err := plan.CacheFor(db2).Compile(mt2.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("first fetch after WarmCache must hit")
	}
	if p.Access.Kind != plan.IndexIntersect {
		t.Fatalf("warmed plan chose %v, want IndexIntersect", p.Access.Kind)
	}

	// Missing file: cold start, no error.
	db3, _ := jobShopDB(t)
	defer plan.Release(db3)
	if warmed, err := plan.WarmCache(db3, t.TempDir()); err != nil || warmed != 0 {
		t.Fatalf("missing file: warmed %d, err %v; want 0, nil", warmed, err)
	}
}
