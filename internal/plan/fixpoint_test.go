package plan_test

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/recursive"
	"mad/internal/storage"
)

// fixGraph builds a parts/composition graph: n "part" atoms (pn = 0..n-1)
// and the given directed edges over the reflexive link type. Duplicate
// edges are deduplicated; self-loops and cycles are allowed.
func fixGraph(t testing.TB, n int, edges [][2]int) (*storage.Database, []model.AtomID) {
	t.Helper()
	db := storage.NewDatabase()
	if _, err := db.DefineAtomType("part", model.MustDesc(model.AttrDesc{Name: "pn", Kind: model.KInt})); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("composition", model.LinkDesc{SideA: "part", SideB: "part"}); err != nil {
		t.Fatal(err)
	}
	ids := make([]model.AtomID, n)
	for i := 0; i < n; i++ {
		id, err := db.InsertAtom("part", model.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	seen := make(map[[2]int]bool)
	for _, e := range edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		if err := db.Connect("composition", ids[e[0]], ids[e[1]]); err != nil {
			t.Fatal(err)
		}
	}
	return db, ids
}

// TestFixpointParityRandom: the planned streaming fixpoint is
// element-wise identical to the seed package's naive eager derivation —
// same molecule order, same per-molecule Levels and Links, same closure
// membership — across random DAGs and cyclic graphs, both traversal
// directions, depth bounds 0–4 and worker counts 1–8, with and without
// a root predicate.
func TestFixpointParityRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		var edges [][2]int
		for i := 0; i < r.Intn(3*n+1); i++ {
			edges = append(edges, [2]int{r.Intn(n), r.Intn(n)})
		}
		db, _ := fixGraph(t, n, edges)
		defer plan.Release(db)
		up := r.Intn(2) == 1
		depth := r.Intn(5)
		workers := 1 + r.Intn(8)

		var pred expr.Expr
		if r.Intn(2) == 1 {
			// Root predicate: pn >= k keeps a suffix of the roots.
			pred = expr.Cmp{Op: expr.GE,
				L: expr.Attr{Type: "part", Name: "pn"},
				R: expr.Lit(model.Int(int64(r.Intn(n))))}
		}

		rt, err := recursive.Define(db, "", "part", "composition", up, depth)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := rt.Derive()
		if err != nil {
			t.Fatal(err)
		}
		if pred != nil {
			c, _ := db.Container("part")
			var kept []*recursive.Molecule
			for _, m := range naive {
				a, ok := c.Get(m.Root)
				if !ok {
					continue
				}
				keep, err := expr.EvalPredicate(pred, expr.AtomBinding{TypeName: "part", Desc: c.Desc(), Atom: a})
				if err != nil {
					t.Fatal(err)
				}
				if keep {
					kept = append(kept, m)
				}
			}
			naive = kept
		}

		p, err := plan.CompileFixpoint(db, "part", "composition", up, depth, pred)
		if err != nil {
			t.Fatal(err)
		}
		p.Workers = workers
		got, err := p.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(naive) {
			t.Logf("seed %d: |planned| = %d, |naive| = %d", seed, len(got), len(naive))
			return false
		}
		for i := range got {
			if got[i].Root != naive[i].Root {
				t.Logf("seed %d: molecule %d root %v != %v", seed, i, got[i].Root, naive[i].Root)
				return false
			}
			if !reflect.DeepEqual(got[i].Levels, naive[i].Levels) {
				t.Logf("seed %d: molecule %d levels %v != %v", seed, i, got[i].Levels, naive[i].Levels)
				return false
			}
			if !reflect.DeepEqual(got[i].Links, naive[i].Links) {
				t.Logf("seed %d: molecule %d links differ", seed, i)
				return false
			}
			for _, id := range naive[i].Atoms() {
				if !got[i].Contains(id) {
					t.Logf("seed %d: molecule %d missing %v", seed, i, id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// fixChainForest builds `roots` disjoint chains of `depth` parts each —
// a deep assembly forest with one closure per chain head.
func fixChainForest(t testing.TB, roots, depth int) (*storage.Database, []model.AtomID) {
	t.Helper()
	n := roots * depth
	var edges [][2]int
	for r := 0; r < roots; r++ {
		for d := 0; d < depth-1; d++ {
			edges = append(edges, [2]int{r*depth + d, r*depth + d + 1})
		}
	}
	return fixGraph(t, n, edges)
}

// TestFixpointIndexedEntry: with an index on the root attribute and an
// equality conjunct, the entry contest seeds the closure from the index
// instead of scanning every root, the EXPLAIN rendering carries the
// [fixpoint] contest and actuals, and a complete run records the
// observed closure size into feedback for the next compile.
func TestFixpointIndexedEntry(t *testing.T) {
	db, _ := fixChainForest(t, 64, 8)
	defer plan.Release(db)
	if err := db.CreateIndex("part", "pn"); err != nil {
		t.Fatal(err)
	}
	plan.FeedbackFor(db) // opt into the feedback loop
	pred := expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "part", Name: "pn"},
		R: expr.Lit(model.Int(16))} // a chain head
	p, err := plan.CompileFixpoint(db, "part", "composition", false, 0, pred)
	if err != nil {
		t.Fatal(err)
	}
	if p.EntryKind != plan.FixIndexEq {
		t.Fatalf("entry kind = %v, want FixIndexEq (alternatives: %+v)", p.EntryKind, p.Alternatives)
	}
	if len(p.Alternatives) != 2 {
		t.Fatalf("alternatives = %+v", p.Alternatives)
	}
	db.Stats().Reset()
	ms, err := p.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Size() != 8 {
		t.Fatalf("indexed entry derived %d molecule(s)", len(ms))
	}
	work := db.Stats().Snapshot()
	if work.AtomsFetched > 16 {
		t.Fatalf("indexed entry fetched %d atoms; the contest did not prune the scan", work.AtomsFetched)
	}
	out := p.Render()
	for _, want := range []string{"[fixpoint] index entry part.pn = 16", "considered:", "actuals:   [fixpoint] rounds 8", "closure:", "[link-fan]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if p.Rounds != 8 || p.VisitedAtoms != 8 {
		t.Fatalf("actuals rounds=%d visited=%d", p.Rounds, p.VisitedAtoms)
	}

	// A complete unlimited run calibrates the closure estimate: SHOW
	// FEEDBACK lists it and the next compile carries [observed].
	full, err := plan.CompileFixpoint(db, "part", "composition", false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fbOut := plan.FeedbackFor(db).Render(); !strings.Contains(fbOut, "fixpoint part ⟲ composition") {
		t.Fatalf("feedback missing fixpoint observation:\n%s", fbOut)
	}
	again, err := plan.CompileFixpoint(db, "part", "composition", false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(again.Render(), "[observed]") {
		t.Fatalf("recompile not calibrated:\n%s", again.Render())
	}
}

// TestFixpointLimitStopsWorkers: LIMIT cancels the in-flight expansion
// rounds at the cap — the stream ends cleanly after exactly Limit
// molecules and every producer/worker goroutine winds down (satellite 3's
// goroutine-leak check; run under -race).
func TestFixpointLimitStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	db, _ := fixChainForest(t, 512, 6)
	defer plan.Release(db)
	p, err := plan.CompileFixpoint(db, "part", "composition", false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 4
	p.Limit = 3
	st, err := p.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		m, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("limited stream delivered %d, want 3", n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Abandoning a live stream mid-flight must not leak either.
	p2, err := plan.CompileFixpoint(db, "part", "composition", false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2.Workers = 4
	st2, err := p2.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := st2.Next(); err != nil || m == nil {
		t.Fatalf("first molecule: %v, %v", m, err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFixpointSnapshotPinned: the whole closure reads the snapshot pinned
// at stream open — links committed while the stream drains do not appear
// in any molecule, however late its closure runs.
func TestFixpointSnapshotPinned(t *testing.T) {
	db, ids := fixGraph(t, 3, [][2]int{{0, 1}})
	defer plan.Release(db)
	p, err := plan.CompileFixpoint(db, "part", "composition", false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Commit a new composition edge after the snapshot is pinned.
	if err := db.Connect("composition", ids[1], ids[2]); err != nil {
		t.Fatal(err)
	}
	m, err := st.Next()
	if err != nil || m == nil {
		t.Fatalf("first molecule: %v, %v", m, err)
	}
	if m.Root != ids[0] || m.Size() != 2 {
		t.Fatalf("closure of %v saw the post-snapshot edge: size %d, want 2", m.Root, m.Size())
	}
	if m.Contains(ids[2]) {
		t.Fatal("molecule contains an atom linked after the snapshot was pinned")
	}
}
