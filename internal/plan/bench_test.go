package plan_test

import (
	"testing"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/plan"
)

// BenchmarkCompileOnly isolates the planner-compile cost per statement.
func BenchmarkCompileOnly(b *testing.B) {
	s, err := geo.BuildSample()
	if err != nil {
		b.Fatal(err)
	}
	if err := s.DB.CreateIndex("point", "name"); err != nil {
		b.Fatal(err)
	}
	mt, err := core.Define(s.DB, "", []string{"point", "edge", "area", "state", "net", "river"},
		[]core.DirectedLink{
			{Link: "edge-point", From: "point", To: "edge"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "state-area", From: "area", To: "state"},
			{Link: "net-edge", From: "edge", To: "net"},
			{Link: "river-net", From: "net", To: "river"},
		})
	if err != nil {
		b.Fatal(err)
	}
	pred := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "point", Name: "name"}, R: expr.Lit(model.Str("pn"))},
		R: expr.And{
			L: expr.Cmp{Op: expr.GT, L: expr.Attr{Type: "state", Name: "hectare"}, R: expr.Lit(model.Float(10))},
			R: expr.Cmp{Op: expr.LE, L: expr.Attr{Type: "area", Name: "tag"}, R: expr.Attr{Type: "river", Name: "name"}},
		},
	}
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Compile(s.DB, mt.Desc(), pred); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile_cached", func(b *testing.B) {
		cache := plan.CacheFor(s.DB)
		if _, _, err := cache.Compile(mt.Desc(), pred); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cache.Compile(mt.Desc(), pred); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile_execute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := plan.Compile(s.DB, mt.Desc(), pred)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
