package plan_test

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// orderedReference sorts a materialized result the way an ordered plan
// must deliver it: stable sort by the root attribute (ASC/DESC), ties by
// root atom ID ascending, then the LIMIT cut. This is the specification
// all three delivery paths — index ride, bounded heap, terminal sort —
// are checked against element-wise.
func orderedReference(t *testing.T, db *storage.Database, rootType string, full core.MoleculeSet, order plan.OrderBy, limit int) core.MoleculeSet {
	t.Helper()
	c, ok := db.Container(rootType)
	if !ok {
		t.Fatalf("no container %q", rootType)
	}
	pos, ok := c.Desc().Lookup(order.Attr)
	if !ok {
		t.Fatalf("no attribute %q on %q", order.Attr, rootType)
	}
	ts := db.LatestTS()
	key := func(id model.AtomID) model.Value {
		a, ok := c.GetAt(id, ts)
		if !ok {
			t.Fatalf("root %d vanished", id)
		}
		return a.Get(pos)
	}
	ref := append(core.MoleculeSet(nil), full...)
	sort.SliceStable(ref, func(i, j int) bool {
		cmp := key(ref[i].Root()).Compare(key(ref[j].Root()))
		if order.Desc {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp < 0
		}
		return ref[i].Root() < ref[j].Root()
	})
	if limit > 0 && len(ref) > limit {
		ref = ref[:limit]
	}
	return ref
}

// TestOrderedStreamParityRandom is the ordering property: over random
// structures, predicates, index regimes (the ordered-index ride vs the
// heap/sort paths), directions, limits and worker counts, an ordered
// stream delivers exactly the sort-after-materialize reference —
// element-wise, not just as a set.
func TestOrderedStreamParityRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 2 + rng.Intn(2)
		db, types, edges, err := layeredDB(rng, depth, 4+rng.Intn(6))
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		// Half the runs index the ORDER BY attribute, so both the
		// index-order ride and the heap/sort paths are exercised.
		indexed := rng.Intn(2) == 0
		if indexed {
			if err := db.CreateIndex(types[0], "v"); err != nil {
				t.Logf("index: %v", err)
				return false
			}
		}
		mt, err := core.Define(db, "ordered_random", types, edges)
		if err != nil {
			t.Logf("define: %v", err)
			return false
		}
		defer plan.Release(db)

		var pred expr.Expr
		if rng.Intn(3) > 0 {
			pred = randomPredicate(rng, types)
			if err := expr.Check(pred, core.Scope{DB: db, Desc: mt.Desc()}); err != nil {
				t.Logf("check: %v", err)
				return false
			}
		}
		full, err := mustCompile(t, db, mt, pred, nil, 1, 0).Execute()
		if err != nil {
			t.Logf("execute: %v", err)
			return false
		}

		attrs := []string{"v", "w"}
		order := plan.OrderBy{Attr: attrs[rng.Intn(len(attrs))], Desc: rng.Intn(2) == 0}
		limits := []int{0, 1 + rng.Intn(len(full)+2)}
		for _, limit := range limits {
			ref := orderedReference(t, db, types[0], full, order, limit)
			for _, workers := range []int{1, 2, 4} {
				p := mustCompile(t, db, mt, pred, &order, workers, limit)
				st, err := p.Stream(context.Background())
				if err != nil {
					t.Logf("stream: %v", err)
					return false
				}
				got := collectStream(t, st, -1)
				if len(got) != len(ref) {
					t.Logf("seed %d order %+v limit %d workers %d path %q: got %d molecules, want %d",
						seed, order, limit, workers, p.OrderPath, len(got), len(ref))
					return false
				}
				for i := range got {
					if !got[i].Equal(ref[i]) {
						t.Logf("seed %d order %+v limit %d workers %d path %q: molecule %d differs",
							seed, order, limit, workers, p.OrderPath, i)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func mustCompile(t *testing.T, db *storage.Database, mt *core.MoleculeType, pred expr.Expr, order *plan.OrderBy, workers, limit int) *plan.Plan {
	t.Helper()
	p, err := plan.CompileOrdered(db, mt.Desc(), pred, order)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p.Workers, p.Limit = workers, limit
	return p
}

// TestOrderedIndexRideNoSort: ORDER BY an indexed root attribute must
// ride the ordered index — the plan reports the index-order path (no
// heap, no sort) and delivers in key order straight off the access path.
func TestOrderedIndexRideNoSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db, types, edges, err := layeredDB(rng, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex(types[0], "v"); err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(db, "ordered_ride", types, edges)
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Release(db)

	for _, desc := range []bool{false, true} {
		order := plan.OrderBy{Attr: "v", Desc: desc}
		p := mustCompile(t, db, mt, nil, &order, 2, 0)
		if p.Access.Kind != plan.OrderedScan {
			t.Fatalf("desc=%v: access kind %v, want OrderedScan\n%s", desc, p.Access.Kind, p.Render())
		}
		full, err := mustCompile(t, db, mt, nil, nil, 1, 0).Execute()
		if err != nil {
			t.Fatal(err)
		}
		ref := orderedReference(t, db, types[0], full, order, 0)
		st, err := p.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got := collectStream(t, st, -1)
		if p.OrderPath != plan.OrderIndex {
			t.Fatalf("desc=%v: order path %q, want %q", desc, p.OrderPath, plan.OrderIndex)
		}
		if len(got) != len(ref) {
			t.Fatalf("desc=%v: %d molecules, want %d", desc, len(got), len(ref))
		}
		for i := range got {
			if !got[i].Equal(ref[i]) {
				t.Fatalf("desc=%v: molecule %d differs from reference order", desc, i)
			}
		}
	}
}

// TestOrderedTopKBoundCut: with a LIMIT far below the root count and no
// usable index, the bounded-heap path must prune roots before derivation
// and report the cut in the plan actuals.
func TestOrderedTopKBoundCut(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db, types, edges, err := layeredDB(rng, 2, 512)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(db, "ordered_topk", types, edges)
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Release(db)

	order := plan.OrderBy{Attr: "w", Desc: false}
	p := mustCompile(t, db, mt, nil, &order, 1, 4)
	st, err := p.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := collectStream(t, st, -1)
	if p.OrderPath != plan.OrderTopK {
		t.Fatalf("order path %q, want %q\n%s", p.OrderPath, plan.OrderTopK, p.Render())
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d molecules, want 4", len(got))
	}
	// 512 roots, K=4: the heap bound must have cut the overwhelming
	// majority of roots before derivation (expected survivors ≈
	// K·(1+ln(N/K)) ≈ 23 for sequential workers).
	if p.OrderCut < 256 {
		t.Fatalf("bound cut only %d of 512 roots\n%s", p.OrderCut, p.Render())
	}
	if p.Derived+p.OrderCut != 512 {
		t.Fatalf("derived %d + cut %d ≠ 512 roots", p.Derived, p.OrderCut)
	}
	ref := orderedReference(t, db, types[0], mustMaterialize(t, db, mt), order, 4)
	for i := range got {
		if !got[i].Equal(ref[i]) {
			t.Fatalf("molecule %d differs from reference order", i)
		}
	}
}

func mustMaterialize(t *testing.T, db *storage.Database, mt *core.MoleculeType) core.MoleculeSet {
	t.Helper()
	full, err := mustCompile(t, db, mt, nil, nil, 1, 0).Execute()
	if err != nil {
		t.Fatal(err)
	}
	return full
}

// TestOrderedStreamCancel: cancelling an ordered stream mid-run (both
// the held-back heap path and the index ride) releases every goroutine
// and drops the stream's snapshot pin — no leaks on the paths that defer
// delivery to the end of the run.
func TestOrderedStreamCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db, types, edges, err := layeredDB(rng, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(db, "ordered_cancel", types, edges)
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Release(db)

	before := runtime.NumGoroutine()
	pins := db.LiveSnapshots()
	order := plan.OrderBy{Attr: "w", Desc: true}
	for i := 0; i < 4; i++ {
		p := mustCompile(t, db, mt, nil, &order, 4, 8)
		ctx, cancel := context.WithCancel(context.Background())
		st, err := p.Stream(ctx)
		if err != nil {
			t.Fatal(err)
		}
		cancel() // before, during or after the first delivery — all must unwind
		for {
			m, err := st.Next()
			if err != nil || m == nil {
				break
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close after cancel: %v", err)
		}
	}
	if got := db.LiveSnapshots(); got != pins {
		t.Fatalf("snapshot pins: %d before, %d after cancelled ordered streams", pins, got)
	}
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
