package plan

import (
	"fmt"

	"mad/internal/core"
	"mad/internal/expr"
)

// Restrict is the molecule-type restriction Σ[restr(md)](mt) evaluated
// through the planner: it compiles the predicate into a plan (index or
// filtered-scan access path, per-atom-type pushdown, residual filter),
// executes it, and propagates the qualifying set into the enlarged
// database, closing with α — the planned generalization of
// core.Restrict / core.RestrictWithIndex. The result is always
// occurrence-equivalent to core.Restrict; only the work differs.
func Restrict(mt *core.MoleculeType, pred expr.Expr, resultName string, tr *core.OpTrace) (*core.MoleculeType, error) {
	if err := expr.Check(pred, core.Scope{DB: mt.DB(), Desc: mt.Desc()}); err != nil {
		return nil, err
	}
	p, err := Compile(mt.DB(), mt.Desc(), pred)
	if err != nil {
		return nil, err
	}
	if pred == nil {
		tr.SetOp(fmt.Sprintf("Σ[true](%s)", mt.Name()))
	} else {
		tr.SetOp(fmt.Sprintf("Σ[%s](%s) planned", pred, mt.Name()))
	}
	done := tr.Begin("restriction (planned)")
	set, err := p.Execute()
	if err != nil {
		return nil, err
	}
	done(p.Summary())
	res, err := core.Prop(mt.DB(), resultName, mt.Desc(), set, nil, tr)
	if err != nil {
		return nil, err
	}
	return res.Type, nil
}
