package plan

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mad/internal/storage"
)

// Feedback persistence: the observation store serializes to a JSON file
// beside the storage checkpoint so a restarted server plans warm — its
// residual pass rates, derivation costs and climb costs survive the
// process. Every key in the store is a deterministic string (plan keys,
// conjunct keys, structure descriptors) and every value a counter, so
// JSON round-trips the store exactly.
//
// The file records the plan epoch the observations were made under.
// LoadFeedback installs them at the *database's current* epoch: a
// recovered database rebuilt the same schema, indexes and statistics, so
// the regime is the same even though the counter value is process-local.

// feedbackFile names the persisted observations inside a database
// directory.
const feedbackFile = "feedback.json"

// persistedObs mirrors passObs for JSON.
type persistedObs struct {
	Evals     int64 `json:"evals"`
	Passed    int64 `json:"passed"`
	CostEvals int64 `json:"costEvals,omitempty"`
	Nanos     int64 `json:"nanos,omitempty"`
}

// persistedRatio mirrors ratioObs for JSON.
type persistedRatio struct {
	Sum float64 `json:"sum"`
	N   int64   `json:"n"`
}

// persistedFeedback is the on-disk image of a Feedback store.
type persistedFeedback struct {
	Version   int                                 `json:"version"`
	Epoch     uint64                              `json:"epoch"`
	Residuals map[string]map[string]*persistedObs `json:"residuals,omitempty"`
	Deriv     map[string]*persistedRatio          `json:"deriv,omitempty"`
	Climb     map[string]*persistedRatio          `json:"climb,omitempty"`
}

// SaveFeedback writes db's feedback observations into dir (atomically:
// temp file + rename). A database with no registered feedback store is a
// no-op — there is nothing to warm a restart with.
func SaveFeedback(db *storage.Database, dir string) error {
	fb := feedbackLookup(db)
	if fb == nil {
		return nil
	}
	fb.mu.Lock()
	fb.syncEpochLocked()
	img := persistedFeedback{
		Version:   1,
		Epoch:     fb.epoch,
		Residuals: make(map[string]map[string]*persistedObs, len(fb.residuals)),
		Deriv:     make(map[string]*persistedRatio, len(fb.deriv)),
		Climb:     make(map[string]*persistedRatio, len(fb.climb)),
	}
	for pk, obs := range fb.residuals {
		m := make(map[string]*persistedObs, len(obs))
		for ck, o := range obs {
			m[ck] = &persistedObs{Evals: o.evals, Passed: o.passed, CostEvals: o.costEvals, Nanos: o.nanos}
		}
		img.Residuals[pk] = m
	}
	for k, o := range fb.deriv {
		img.Deriv[k] = &persistedRatio{Sum: o.sum, N: o.n}
	}
	for k, o := range fb.climb {
		img.Climb[k] = &persistedRatio{Sum: o.sum, N: o.n}
	}
	fb.mu.Unlock()

	data, err := json.Marshal(&img)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, feedbackFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFeedback installs persisted observations from dir into db's
// feedback store (creating and registering it). A missing file is not an
// error — the server simply starts with cold feedback; a corrupt file
// is, so silent statistics loss cannot masquerade as a cold start.
func LoadFeedback(db *storage.Database, dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, feedbackFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var img persistedFeedback
	if err := json.Unmarshal(data, &img); err != nil {
		return fmt.Errorf("plan: corrupt feedback file: %w", err)
	}
	if img.Version != 1 {
		return fmt.Errorf("plan: unsupported feedback file version %d", img.Version)
	}
	fb := FeedbackFor(db)
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.residuals = make(map[string]map[string]*passObs, len(img.Residuals))
	for pk, obs := range img.Residuals {
		m := make(map[string]*passObs, len(obs))
		for ck, o := range obs {
			m[ck] = &passObs{evals: o.Evals, passed: o.Passed, costEvals: o.CostEvals, nanos: o.Nanos}
		}
		fb.residuals[pk] = m
	}
	fb.deriv = make(map[string]*ratioObs, len(img.Deriv))
	for k, o := range img.Deriv {
		fb.deriv[k] = &ratioObs{sum: o.Sum, n: o.N}
	}
	fb.climb = make(map[string]*ratioObs, len(img.Climb))
	for k, o := range img.Climb {
		fb.climb[k] = &ratioObs{sum: o.Sum, n: o.N}
	}
	// The recovered database rebuilt the same statistics regime the
	// observations were made under; pin them to its current epoch so the
	// first query reads them instead of discarding them as stale.
	fb.epoch = db.PlanEpoch()
	return nil
}
