package plan_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/plan"
)

// checkParity compares one fused execution against the barrier reference:
// identical molecule sets in identical (root-batch) order, and identical
// EXPLAIN actuals — ActRoots, Derived, Out, every pushdown Cut, every
// residual Evals/Passed. Both plans must already be executed.
func checkParity(t *testing.T, seed int64, workers int, ref, fused *plan.Plan, refSet, fusedSet core.MoleculeSet) bool {
	t.Helper()
	if len(fusedSet) != len(refSet) {
		t.Logf("seed %d workers %d: fused %d molecules, barrier %d", seed, workers, len(fusedSet), len(refSet))
		return false
	}
	for i := range fusedSet {
		if !fusedSet[i].Equal(refSet[i]) {
			t.Logf("seed %d workers %d: molecule %d differs (order must match)", seed, workers, i)
			return false
		}
	}
	if fused.Access.ActRoots != ref.Access.ActRoots || fused.Derived != ref.Derived || fused.Out != ref.Out {
		t.Logf("seed %d workers %d: roots/derived/out %d/%d/%d fused vs %d/%d/%d barrier",
			seed, workers, fused.Access.ActRoots, fused.Derived, fused.Out,
			ref.Access.ActRoots, ref.Derived, ref.Out)
		return false
	}
	for i := range fused.Pushdowns {
		if fused.Pushdowns[i].Cut != ref.Pushdowns[i].Cut {
			t.Logf("seed %d workers %d: pushdown %d cut %d fused vs %d barrier",
				seed, workers, i, fused.Pushdowns[i].Cut, ref.Pushdowns[i].Cut)
			return false
		}
	}
	for i := range fused.Residuals {
		if fused.Residuals[i].Evals != ref.Residuals[i].Evals ||
			fused.Residuals[i].Passed != ref.Residuals[i].Passed {
			t.Logf("seed %d workers %d: residual %d evals/passed %d/%d fused vs %d/%d barrier",
				seed, workers, i,
				fused.Residuals[i].Evals, fused.Residuals[i].Passed,
				ref.Residuals[i].Evals, ref.Residuals[i].Passed)
			return false
		}
	}
	return true
}

// TestFusedParityRandom is the fused-pipeline property: across randomized
// layered structures, predicates (pushdown, residual and root conjuncts
// in every mix), statistics regimes (half the runs analyzed) and worker
// counts — including the workers=1 sequential fallback — the fused
// execution produces exactly the molecule set, order and actuals of the
// barrier reference (PR 3's derive-then-filter pipeline). The feedback
// store is reset before every fused run so each one executes the
// compile-time residual order the reference uses.
func TestFusedParityRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 2 + rng.Intn(2)
		db, types, edges, err := layeredDB(rng, depth, 4+rng.Intn(5))
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		if rng.Intn(2) == 0 {
			if err := db.CreateIndex(types[0], "v"); err != nil {
				t.Logf("index: %v", err)
				return false
			}
		}
		if rng.Intn(2) == 0 {
			// Half the runs analyzed: histogram-backed selectivities order
			// the pushdowns and residuals differently from the defaults.
			if _, err := db.Analyze(); err != nil {
				t.Logf("analyze: %v", err)
				return false
			}
		}
		mt, err := core.Define(db, "random", types, edges)
		if err != nil {
			t.Logf("define: %v", err)
			return false
		}
		defer plan.Release(db)
		pred := randomPredicate(rng, types)
		if err := expr.Check(pred, core.Scope{DB: db, Desc: mt.Desc()}); err != nil {
			t.Logf("check: %v", err)
			return false
		}

		ref, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		ref.Workers = 1
		refSet, err := ref.ExecuteBarrier()
		if err != nil {
			t.Logf("barrier execute: %v", err)
			return false
		}

		for _, workers := range []int{1, 2, 3, 8} {
			plan.FeedbackFor(db).Reset()
			fused, err := plan.Compile(db, mt.Desc(), pred)
			if err != nil {
				t.Logf("compile: %v", err)
				return false
			}
			fused.Workers = workers
			fusedSet, err := fused.Execute()
			if err != nil {
				t.Logf("fused execute (workers=%d): %v", workers, err)
				return false
			}
			if !checkParity(t, seed, workers, ref, fused, refSet, fusedSet) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
