package plan

import (
	"container/heap"
	"context"
	"errors"
	"iter"
	"sort"
	"sync/atomic"
	"time"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// errStreamLimit is the internal sentinel the stream producer returns
// from its emit hook once Plan.Limit molecules have been delivered; the
// executor treats it like any other emit error (stop the workers), and
// the producer strips it before it reaches the consumer.
var errStreamLimit = errors.New("plan: stream limit reached")

// streamBufBatches is the capacity of the stream's hand-off channel, in
// batches: enough that a briefly slow consumer does not stall the worker
// pool, small enough that the molecules buffered between executor and
// consumer stay bounded (the executor itself bounds its in-flight
// batches at workers+1 — see core.DeriveRootsFusedStream).
const streamBufBatches = 2

// Stream is an incremental cursor over a plan's qualifying molecules:
// the fused parallel executor feeds it batch by batch through a bounded
// channel, so the first molecules reach the consumer while the bulk of
// the root batch is still deriving, and the memory footprint stays
// O(workers × batch) instead of O(result). Molecules arrive in exactly
// Execute's deterministic root-aligned order for any worker count — a
// consumed prefix of a Stream is always a prefix of the materialized
// result.
//
// A Stream is not safe for concurrent use. Callers must either drain it
// (Next returning nil, nil) or Close it; an abandoned open stream pins
// its producer goroutine until the surrounding context is cancelled.
type Stream struct {
	p      *Plan
	cancel context.CancelFunc

	// snap is the consistent view the whole run reads through: pinned at
	// cursor open (or supplied by the caller's transaction), it makes
	// every access-path lookup, derivation step and residual evaluation
	// resolve against exactly one commit timestamp, however many writers
	// commit while the stream drains. ownSnap marks a stream-pinned
	// snapshot, released when the stream ends; a caller-supplied one
	// stays the caller's to close.
	snap    *storage.Snapshot
	ownSnap bool

	batches chan core.MoleculeSet
	errc    chan error

	cur  core.MoleculeSet
	idx  int
	done bool
	err  error
}

// SnapshotTS reports the commit timestamp the stream's results are
// consistent with: every molecule the cursor delivers was derived and
// filtered against this one committed state.
func (st *Stream) SnapshotTS() uint64 { return st.snap.TS() }

// Stream starts executing the plan and returns the result cursor. The
// pipeline underneath is Execute's fused one — access path, parallel
// pre-derivation root filter, pruned derivation with the residual chain
// fused onto the deriving worker — but completed batches are handed to
// the consumer the moment they exist instead of being materialized
// root-aligned first. Cancelling ctx (or Close) stops the worker pool
// mid-derivation without leaking goroutines.
//
// The plan's execution actuals (EXPLAIN's "actual" figures, Derived,
// Out) are valid once the stream has ended — drained, errored or closed
// — not while it is live. Feedback is recorded only for complete runs:
// a cancelled or LIMIT-truncated execution observed a biased sample and
// teaches the store nothing.
func (p *Plan) Stream(ctx context.Context) (*Stream, error) {
	return p.StreamAt(ctx, nil)
}

// StreamAt is Stream reading through a caller-supplied snapshot — the
// entry point for transactional SELECTs, which must see their
// transaction's begin snapshot rather than the latest commit. The caller
// keeps ownership: the snapshot must stay open until the stream ends and
// is not closed by it. A nil snapshot pins the latest commit for the
// duration of the stream (Stream's behaviour).
func (p *Plan) StreamAt(ctx context.Context, snap *storage.Snapshot) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fb := feedbackLookup(p.db)
	p.applyFeedback(fb)
	dv, err := core.NewDeriver(p.db, p.desc)
	if err != nil {
		return nil, err
	}
	ownSnap := snap == nil
	if ownSnap {
		snap = p.db.Snapshot()
	}
	dv = dv.AtSnapshot(snap)
	p.resetActuals()

	// Per-atom predicates are safe for concurrent use and shared by all
	// workers; evaluation errors land in the box, and the root-position
	// guard rejects every molecule once an error is pending, so the
	// remaining batch degrades to a cheap root sweep instead of deriving
	// occurrences that will be discarded.
	eb := &evalErrBox{}
	preds := make([]func(model.AtomID) bool, len(p.Pushdowns))
	for i := range p.Pushdowns {
		preds[i], err = p.atomPred(p.Pushdowns[i].Type, p.Pushdowns[i].Conjunct, eb, snap.TS())
		if err != nil {
			if ownSnap {
				snap.Close()
			}
			return nil, err
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	st := &Stream{
		p:       p,
		cancel:  cancel,
		snap:    snap,
		ownSnap: ownSnap,
		batches: make(chan core.MoleculeSet, streamBufBatches),
		errc:    make(chan error, 1),
	}
	go st.run(ctx, dv, eb, preds, fb)
	return st, nil
}

// release drops the stream's pin on its snapshot versions (no-op for a
// caller-supplied snapshot); safe to call more than once.
func (st *Stream) release() {
	if st.ownSnap {
		st.snap.Close()
	}
}

// workerState carries one worker's private execution actuals; the
// producer collects the states on its own goroutine (newWorker contract)
// and merges them after the executor has joined its workers, so the
// hot path performs no atomic operation per molecule.
type workerState struct {
	cuts     []int64
	evals    []int64
	passed   []int64
	nanos    []int64
	derived  int64
	orderCut int64
}

// orderedEntry pairs a qualifying molecule with its ORDER BY key, the
// unit the heap and sort delivery paths work over.
type orderedEntry struct {
	key model.Value
	m   *core.Molecule
}

// orderBound is the published top-K heap bound: the key and root of the
// worst molecule currently in the heap. Workers load it lock-free at
// root position; a stale (older, weaker) bound only under-prunes, never
// cuts a qualifying root.
type orderBound struct {
	key model.Value
	id  model.AtomID
}

// orderCmp compares two (key, root) pairs under the plan's order: the
// key comparison honours ASC/DESC, ties always break by root atom ID
// ascending — the contract that makes the index ride, the bounded heap
// and the terminal sort element-wise identical.
func (p *Plan) orderCmp(ka model.Value, ia model.AtomID, kb model.Value, ib model.AtomID) int {
	c := ka.Compare(kb)
	if p.Order.Desc {
		c = -c
	}
	if c != 0 {
		return c
	}
	switch {
	case ia < ib:
		return -1
	case ia > ib:
		return 1
	}
	return 0
}

// topkHeap is the bounded worst-at-top heap of the OrderTopK delivery
// path: Pop removes the entry that sorts last, so holding the heap at
// Limit entries keeps exactly the best K seen so far.
type topkHeap struct {
	p     *Plan
	items []orderedEntry
}

func (h *topkHeap) Len() int { return len(h.items) }
func (h *topkHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	return h.p.orderCmp(a.key, a.m.Root(), b.key, b.m.Root()) > 0
}
func (h *topkHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *topkHeap) Push(x any)    { h.items = append(h.items, x.(orderedEntry)) }
func (h *topkHeap) Pop() any {
	n := len(h.items) - 1
	e := h.items[n]
	h.items[n] = orderedEntry{}
	h.items = h.items[:n]
	return e
}

// run is the stream's producer: it prepares the root batch, drives the
// streaming fused executor, forwards every emitted batch through the
// bounded channel, and — once the executor has joined its workers —
// merges the per-worker actuals into the plan and closes the stream.
func (st *Stream) run(ctx context.Context, dv *core.Deriver, eb *evalErrBox, preds []func(model.AtomID) bool, fb *Feedback) {
	defer close(st.batches)
	p := st.p

	roots, err := p.prepareRoots(ctx, dv, eb)
	if err != nil {
		st.errc <- err
		return
	}

	// Ordered delivery: an access path that already yields roots in key
	// order (OrderIndex) needs nothing extra — the executor's root-batch
	// order IS the requested order. Otherwise a bounded heap (OrderTopK,
	// Limit set) or a terminal sort (OrderSort) reorders the qualifying
	// molecules before they reach the consumer, and the heap additionally
	// publishes its bound so workers cut hopeless roots pre-derivation.
	p.OrderPath = p.orderPath()
	topK := p.OrderPath == OrderTopK
	sortAll := p.OrderPath == OrderSort
	var keyOf func(model.AtomID) (model.Value, bool)
	if topK || sortAll {
		c, ok := p.db.Container(p.Access.Root)
		if !ok {
			st.errc <- errors.New("plan: root container vanished between compile and execute")
			return
		}
		ts := st.snap.TS()
		keyOf = func(id model.AtomID) (model.Value, bool) {
			a, ok := c.GetAt(id, ts)
			if !ok {
				var zero model.Value
				return zero, false
			}
			// Account the key read like every other predicate fetch, so
			// the early-termination win stays visible in the same ledger.
			p.db.Stats().AtomsFetched.Add(1)
			return a.Get(p.Order.Pos), true
		}
	}
	var bound atomic.Pointer[orderBound]

	rootPos, _ := p.desc.Pos(p.Access.Root)
	// Timing each residual evaluation costs two clock reads per conjunct
	// per molecule; without a feedback store to learn from them the
	// samples would be thrown away, so the hot path only pays when the
	// database opted into the loop.
	timed := fb != nil
	var states []*workerState
	newWorker := func(int) core.FusedWorker {
		ws := &workerState{
			cuts:   make([]int64, len(p.Pushdowns)),
			evals:  make([]int64, len(p.Residuals)),
			passed: make([]int64, len(p.Residuals)),
			nanos:  make([]int64, len(p.Residuals)),
		}
		states = append(states, ws)
		checks := []core.PruneCheck{{Pos: rootPos, Qualifies: func([]model.AtomID) bool {
			return !eb.failed.Load()
		}}}
		if topK {
			// The bound prune: once the heap is full, a root whose key
			// cannot beat the heap's worst entry is cut before its
			// molecule is derived. The bound only tightens over a run, so
			// a stale load under-prunes — harmless — and never over-prunes.
			checks = append(checks, core.PruneCheck{Pos: rootPos, Qualifies: func(atoms []model.AtomID) bool {
				b := bound.Load()
				if b == nil {
					return true
				}
				root := atoms[0]
				k, ok := keyOf(root)
				if !ok {
					return true
				}
				if p.orderCmp(k, root, b.key, b.id) > 0 {
					ws.orderCut++
					return false
				}
				return true
			}})
		}
		for i := range p.Pushdowns {
			i, pred := i, preds[i]
			checks = append(checks, core.PruneCheck{Pos: p.Pushdowns[i].Pos, Qualifies: func(atoms []model.AtomID) bool {
				for _, id := range atoms {
					if pred(id) {
						return true
					}
				}
				ws.cuts[i]++
				return false
			}})
		}
		keep := func(m *core.Molecule) bool {
			if eb.failed.Load() {
				return false
			}
			ws.derived++
			b := core.Binding{DB: p.db, M: m, TS: st.snap.TS()}
			for i := range p.Residuals {
				ws.evals[i]++
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				ok, err := expr.EvalPredicate(p.Residuals[i].Conjunct, b)
				if timed {
					ws.nanos[i] += int64(time.Since(t0))
				}
				if err != nil {
					eb.set(err)
					return false
				}
				if !ok {
					return false
				}
				ws.passed[i]++
			}
			return true
		}
		return core.FusedWorker{Checks: dv.PrepareChecks(checks), Keep: keep}
	}

	// The emit hook feeds consumer backpressure into the batch sizer: a
	// hand-off that would block (bounded channel full) shrinks the next
	// batches so the consumer keeps getting fresh small deliveries; a
	// streak of instant hand-offs grows them back to amortize the channel
	// traffic.
	sizer := core.NewBatchSizer(0, 0, 0)
	delivered := 0
	var emit func(core.MoleculeSet) error
	var kh *topkHeap
	var held []orderedEntry
	switch {
	case topK:
		// Qualifying molecules feed the bounded heap instead of the
		// hand-off channel; the K survivors are delivered after the
		// executor completes. Limit slicing is the heap's job here, so
		// the run never returns errStreamLimit — the whole root batch is
		// examined under the bound prune.
		kh = &topkHeap{p: p}
		emit = func(ms core.MoleculeSet) error {
			for _, m := range ms {
				k, ok := keyOf(m.Root())
				if !ok {
					continue
				}
				heap.Push(kh, orderedEntry{key: k, m: m})
				if kh.Len() > p.Limit {
					heap.Pop(kh)
				}
				if kh.Len() == p.Limit {
					w := kh.items[0]
					bound.Store(&orderBound{key: w.key, id: w.m.Root()})
				}
			}
			return nil
		}
	case sortAll:
		// No bound to exploit without a Limit: collect everything and
		// sort once at the end.
		emit = func(ms core.MoleculeSet) error {
			for _, m := range ms {
				k, ok := keyOf(m.Root())
				if !ok {
					continue
				}
				held = append(held, orderedEntry{key: k, m: m})
			}
			return nil
		}
	default:
		emit = func(ms core.MoleculeSet) error {
			limited := false
			if p.Limit > 0 {
				if rest := p.Limit - delivered; len(ms) >= rest {
					ms, limited = ms[:rest], true
				}
			}
			if len(ms) > 0 {
				select {
				case st.batches <- ms:
					sizer.Observe(false)
					delivered += len(ms)
				default:
					sizer.Observe(true)
					select {
					case st.batches <- ms:
						delivered += len(ms)
					case <-ctx.Done():
						return ctx.Err()
					}
				}
			}
			if limited {
				return errStreamLimit
			}
			return nil
		}
	}

	work, err := dv.DeriveRootsFusedStreamSized(ctx, roots, p.Workers, sizer, newWorker, emit)
	complete := err == nil
	if errors.Is(err, errStreamLimit) {
		err = nil
	}
	if err == nil {
		err = eb.get()
		complete = complete && err == nil
	}

	// Merge the per-worker actuals even for truncated runs — partial
	// actuals still describe the work actually done.
	for _, ws := range states {
		p.Derived += int(ws.derived)
		p.OrderCut += int(ws.orderCut)
		for i := range p.Pushdowns {
			p.Pushdowns[i].Cut += int(ws.cuts[i])
		}
		for i := range p.Residuals {
			p.Residuals[i].Evals += int(ws.evals[i])
			p.Residuals[i].Passed += int(ws.passed[i])
			p.Residuals[i].Nanos += ws.nanos[i]
		}
	}
	if err != nil {
		st.errc <- err
		return
	}

	// The heap and sort paths held their results back; order and deliver
	// them now. The executor has joined its workers, so this runs alone.
	if topK || sortAll {
		var final []orderedEntry
		if topK {
			// Popping the worst-at-top heap yields worst-first; fill the
			// slice back to front for best-first delivery.
			final = make([]orderedEntry, kh.Len())
			for i := len(final) - 1; i >= 0; i-- {
				final[i] = heap.Pop(kh).(orderedEntry)
			}
		} else {
			sort.SliceStable(held, func(i, j int) bool {
				return p.orderCmp(held[i].key, held[i].m.Root(), held[j].key, held[j].m.Root()) < 0
			})
			final = held
			if p.Limit > 0 && len(final) > p.Limit {
				final = final[:p.Limit]
			}
		}
		for len(final) > 0 {
			n := core.DefaultStreamBatch
			if n > len(final) {
				n = len(final)
			}
			batch := make(core.MoleculeSet, n)
			for i := range batch {
				batch[i] = final[i].m
			}
			final = final[n:]
			select {
			case st.batches <- batch:
				delivered += n
			case <-ctx.Done():
				st.errc <- ctx.Err()
				return
			}
		}
	}

	p.Out = delivered
	p.Executed = true
	if complete {
		fb.record(p, work)
	}
	st.errc <- nil
}

// Next returns the next qualifying molecule. A nil molecule with a nil
// error means the stream is exhausted; a non-nil error (cancellation,
// deadline, evaluation error) is terminal and repeated by every further
// call.
func (st *Stream) Next() (*core.Molecule, error) {
	if st.done {
		return nil, st.err
	}
	for st.idx >= len(st.cur) {
		batch, ok := <-st.batches
		if !ok {
			st.err = <-st.errc
			st.done = true
			st.cur, st.idx = nil, 0
			st.release()
			return nil, st.err
		}
		st.cur, st.idx = batch, 0
	}
	m := st.cur[st.idx]
	st.idx++
	return m, nil
}

// Seq adapts the stream to a Go 1.23 range-over-func iterator:
//
//	for m := range st.Seq() { ... }
//
// Breaking out of the loop leaves the stream open — call Close (or
// cancel the stream's context) to release the workers; after the loop,
// Err reports whether iteration ended by exhaustion or by error.
func (st *Stream) Seq() iter.Seq[*core.Molecule] {
	return func(yield func(*core.Molecule) bool) {
		for {
			m, err := st.Next()
			if m == nil || err != nil {
				return
			}
			if !yield(m) {
				return
			}
		}
	}
}

// Err returns the stream's terminal error: nil while molecules are still
// flowing and after clean exhaustion, the cause once Next has reported a
// failure.
func (st *Stream) Err() error { return st.err }

// Close cancels the in-flight execution, waits for the worker pool to
// wind down and releases the stream. It is idempotent and safe after
// exhaustion. Closing an unfinished stream is not an error: Close
// returns the stream's terminal error only when execution had already
// failed for a reason other than the cancellation Close itself caused.
func (st *Stream) Close() error {
	st.cancel()
	if !st.done {
		for range st.batches {
			// Drain abandoned batches so the producer can finish.
		}
		if e := <-st.errc; e != nil && !errors.Is(e, context.Canceled) && st.err == nil {
			st.err = e
		}
		st.done = true
		st.cur, st.idx = nil, 0
	}
	st.release()
	if errors.Is(st.err, context.Canceled) {
		return nil
	}
	return st.err
}
