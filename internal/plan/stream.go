package plan

import (
	"context"
	"errors"
	"iter"
	"time"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// errStreamLimit is the internal sentinel the stream producer returns
// from its emit hook once Plan.Limit molecules have been delivered; the
// executor treats it like any other emit error (stop the workers), and
// the producer strips it before it reaches the consumer.
var errStreamLimit = errors.New("plan: stream limit reached")

// streamBufBatches is the capacity of the stream's hand-off channel, in
// batches: enough that a briefly slow consumer does not stall the worker
// pool, small enough that the molecules buffered between executor and
// consumer stay bounded (the executor itself bounds its in-flight
// batches at workers+1 — see core.DeriveRootsFusedStream).
const streamBufBatches = 2

// Stream is an incremental cursor over a plan's qualifying molecules:
// the fused parallel executor feeds it batch by batch through a bounded
// channel, so the first molecules reach the consumer while the bulk of
// the root batch is still deriving, and the memory footprint stays
// O(workers × batch) instead of O(result). Molecules arrive in exactly
// Execute's deterministic root-aligned order for any worker count — a
// consumed prefix of a Stream is always a prefix of the materialized
// result.
//
// A Stream is not safe for concurrent use. Callers must either drain it
// (Next returning nil, nil) or Close it; an abandoned open stream pins
// its producer goroutine until the surrounding context is cancelled.
type Stream struct {
	p      *Plan
	cancel context.CancelFunc

	// snap is the consistent view the whole run reads through: pinned at
	// cursor open (or supplied by the caller's transaction), it makes
	// every access-path lookup, derivation step and residual evaluation
	// resolve against exactly one commit timestamp, however many writers
	// commit while the stream drains. ownSnap marks a stream-pinned
	// snapshot, released when the stream ends; a caller-supplied one
	// stays the caller's to close.
	snap    *storage.Snapshot
	ownSnap bool

	batches chan core.MoleculeSet
	errc    chan error

	cur  core.MoleculeSet
	idx  int
	done bool
	err  error
}

// SnapshotTS reports the commit timestamp the stream's results are
// consistent with: every molecule the cursor delivers was derived and
// filtered against this one committed state.
func (st *Stream) SnapshotTS() uint64 { return st.snap.TS() }

// Stream starts executing the plan and returns the result cursor. The
// pipeline underneath is Execute's fused one — access path, parallel
// pre-derivation root filter, pruned derivation with the residual chain
// fused onto the deriving worker — but completed batches are handed to
// the consumer the moment they exist instead of being materialized
// root-aligned first. Cancelling ctx (or Close) stops the worker pool
// mid-derivation without leaking goroutines.
//
// The plan's execution actuals (EXPLAIN's "actual" figures, Derived,
// Out) are valid once the stream has ended — drained, errored or closed
// — not while it is live. Feedback is recorded only for complete runs:
// a cancelled or LIMIT-truncated execution observed a biased sample and
// teaches the store nothing.
func (p *Plan) Stream(ctx context.Context) (*Stream, error) {
	return p.StreamAt(ctx, nil)
}

// StreamAt is Stream reading through a caller-supplied snapshot — the
// entry point for transactional SELECTs, which must see their
// transaction's begin snapshot rather than the latest commit. The caller
// keeps ownership: the snapshot must stay open until the stream ends and
// is not closed by it. A nil snapshot pins the latest commit for the
// duration of the stream (Stream's behaviour).
func (p *Plan) StreamAt(ctx context.Context, snap *storage.Snapshot) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fb := feedbackLookup(p.db)
	p.applyFeedback(fb)
	dv, err := core.NewDeriver(p.db, p.desc)
	if err != nil {
		return nil, err
	}
	ownSnap := snap == nil
	if ownSnap {
		snap = p.db.Snapshot()
	}
	dv = dv.AtSnapshot(snap)
	p.resetActuals()

	// Per-atom predicates are safe for concurrent use and shared by all
	// workers; evaluation errors land in the box, and the root-position
	// guard rejects every molecule once an error is pending, so the
	// remaining batch degrades to a cheap root sweep instead of deriving
	// occurrences that will be discarded.
	eb := &evalErrBox{}
	preds := make([]func(model.AtomID) bool, len(p.Pushdowns))
	for i := range p.Pushdowns {
		preds[i], err = p.atomPred(p.Pushdowns[i].Type, p.Pushdowns[i].Conjunct, eb, snap.TS())
		if err != nil {
			if ownSnap {
				snap.Close()
			}
			return nil, err
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	st := &Stream{
		p:       p,
		cancel:  cancel,
		snap:    snap,
		ownSnap: ownSnap,
		batches: make(chan core.MoleculeSet, streamBufBatches),
		errc:    make(chan error, 1),
	}
	go st.run(ctx, dv, eb, preds, fb)
	return st, nil
}

// release drops the stream's pin on its snapshot versions (no-op for a
// caller-supplied snapshot); safe to call more than once.
func (st *Stream) release() {
	if st.ownSnap {
		st.snap.Close()
	}
}

// workerState carries one worker's private execution actuals; the
// producer collects the states on its own goroutine (newWorker contract)
// and merges them after the executor has joined its workers, so the
// hot path performs no atomic operation per molecule.
type workerState struct {
	cuts    []int64
	evals   []int64
	passed  []int64
	nanos   []int64
	derived int64
}

// run is the stream's producer: it prepares the root batch, drives the
// streaming fused executor, forwards every emitted batch through the
// bounded channel, and — once the executor has joined its workers —
// merges the per-worker actuals into the plan and closes the stream.
func (st *Stream) run(ctx context.Context, dv *core.Deriver, eb *evalErrBox, preds []func(model.AtomID) bool, fb *Feedback) {
	defer close(st.batches)
	p := st.p

	roots, err := p.prepareRoots(ctx, dv, eb)
	if err != nil {
		st.errc <- err
		return
	}

	rootPos, _ := p.desc.Pos(p.Access.Root)
	// Timing each residual evaluation costs two clock reads per conjunct
	// per molecule; without a feedback store to learn from them the
	// samples would be thrown away, so the hot path only pays when the
	// database opted into the loop.
	timed := fb != nil
	var states []*workerState
	newWorker := func(int) core.FusedWorker {
		ws := &workerState{
			cuts:   make([]int64, len(p.Pushdowns)),
			evals:  make([]int64, len(p.Residuals)),
			passed: make([]int64, len(p.Residuals)),
			nanos:  make([]int64, len(p.Residuals)),
		}
		states = append(states, ws)
		checks := []core.PruneCheck{{Pos: rootPos, Qualifies: func([]model.AtomID) bool {
			return !eb.failed.Load()
		}}}
		for i := range p.Pushdowns {
			i, pred := i, preds[i]
			checks = append(checks, core.PruneCheck{Pos: p.Pushdowns[i].Pos, Qualifies: func(atoms []model.AtomID) bool {
				for _, id := range atoms {
					if pred(id) {
						return true
					}
				}
				ws.cuts[i]++
				return false
			}})
		}
		keep := func(m *core.Molecule) bool {
			if eb.failed.Load() {
				return false
			}
			ws.derived++
			b := core.Binding{DB: p.db, M: m, TS: st.snap.TS()}
			for i := range p.Residuals {
				ws.evals[i]++
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				ok, err := expr.EvalPredicate(p.Residuals[i].Conjunct, b)
				if timed {
					ws.nanos[i] += int64(time.Since(t0))
				}
				if err != nil {
					eb.set(err)
					return false
				}
				if !ok {
					return false
				}
				ws.passed[i]++
			}
			return true
		}
		return core.FusedWorker{Checks: dv.PrepareChecks(checks), Keep: keep}
	}

	// The emit hook feeds consumer backpressure into the batch sizer: a
	// hand-off that would block (bounded channel full) shrinks the next
	// batches so the consumer keeps getting fresh small deliveries; a
	// streak of instant hand-offs grows them back to amortize the channel
	// traffic.
	sizer := core.NewBatchSizer(0, 0, 0)
	delivered := 0
	emit := func(ms core.MoleculeSet) error {
		limited := false
		if p.Limit > 0 {
			if rest := p.Limit - delivered; len(ms) >= rest {
				ms, limited = ms[:rest], true
			}
		}
		if len(ms) > 0 {
			select {
			case st.batches <- ms:
				sizer.Observe(false)
				delivered += len(ms)
			default:
				sizer.Observe(true)
				select {
				case st.batches <- ms:
					delivered += len(ms)
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		if limited {
			return errStreamLimit
		}
		return nil
	}

	work, err := dv.DeriveRootsFusedStreamSized(ctx, roots, p.Workers, sizer, newWorker, emit)
	complete := err == nil
	if errors.Is(err, errStreamLimit) {
		err = nil
	}
	if err == nil {
		err = eb.get()
		complete = complete && err == nil
	}

	// Merge the per-worker actuals even for truncated runs — partial
	// actuals still describe the work actually done.
	for _, ws := range states {
		p.Derived += int(ws.derived)
		for i := range p.Pushdowns {
			p.Pushdowns[i].Cut += int(ws.cuts[i])
		}
		for i := range p.Residuals {
			p.Residuals[i].Evals += int(ws.evals[i])
			p.Residuals[i].Passed += int(ws.passed[i])
			p.Residuals[i].Nanos += ws.nanos[i]
		}
	}
	if err != nil {
		st.errc <- err
		return
	}
	p.Out = delivered
	p.Executed = true
	if complete {
		fb.record(p, work)
	}
	st.errc <- nil
}

// Next returns the next qualifying molecule. A nil molecule with a nil
// error means the stream is exhausted; a non-nil error (cancellation,
// deadline, evaluation error) is terminal and repeated by every further
// call.
func (st *Stream) Next() (*core.Molecule, error) {
	if st.done {
		return nil, st.err
	}
	for st.idx >= len(st.cur) {
		batch, ok := <-st.batches
		if !ok {
			st.err = <-st.errc
			st.done = true
			st.cur, st.idx = nil, 0
			st.release()
			return nil, st.err
		}
		st.cur, st.idx = batch, 0
	}
	m := st.cur[st.idx]
	st.idx++
	return m, nil
}

// Seq adapts the stream to a Go 1.23 range-over-func iterator:
//
//	for m := range st.Seq() { ... }
//
// Breaking out of the loop leaves the stream open — call Close (or
// cancel the stream's context) to release the workers; after the loop,
// Err reports whether iteration ended by exhaustion or by error.
func (st *Stream) Seq() iter.Seq[*core.Molecule] {
	return func(yield func(*core.Molecule) bool) {
		for {
			m, err := st.Next()
			if m == nil || err != nil {
				return
			}
			if !yield(m) {
				return
			}
		}
	}
}

// Err returns the stream's terminal error: nil while molecules are still
// flowing and after clean exhaustion, the cause once Next has reported a
// failure.
func (st *Stream) Err() error { return st.err }

// Close cancels the in-flight execution, waits for the worker pool to
// wind down and releases the stream. It is idempotent and safe after
// exhaustion. Closing an unfinished stream is not an error: Close
// returns the stream's terminal error only when execution had already
// failed for a reason other than the cancellation Close itself caused.
func (st *Stream) Close() error {
	st.cancel()
	if !st.done {
		for range st.batches {
			// Drain abandoned batches so the producer can finish.
		}
		if e := <-st.errc; e != nil && !errors.Is(e, context.Canceled) && st.err == nil {
			st.err = e
		}
		st.done = true
		st.cur, st.idx = nil, 0
	}
	st.release()
	if errors.Is(st.err, context.Canceled) {
		return nil
	}
	return st.err
}
