package plan_test

import (
	"strings"
	"testing"

	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
)

// misRankedPred builds a two-conjunct residual chain the cost model ranks
// wrong on the assemblyDB workload: the count comparison (always true —
// every assembly holds more parts than units) ranks first on estimates,
// while the genuinely selective serial equality (flagged on 1 of 16
// assemblies, kept out of pushdown by the OR with an always-false count
// comparison) ranks second.
func misRankedPred() expr.Expr {
	alwaysPass := expr.Cmp{Op: expr.GE, L: expr.CountOf{Type: "part"}, R: expr.CountOf{Type: "unit"}}
	selective := expr.Or{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "serial"}, R: expr.Lit(model.Str("S-42"))},
		R: expr.Cmp{Op: expr.LT, L: expr.CountOf{Type: "part"}, R: expr.Lit(model.Int(0))},
	}
	return expr.And{L: alwaysPass, R: selective}
}

func totalEvals(p *plan.Plan) int {
	n := 0
	for i := range p.Residuals {
		n += p.Residuals[i].Evals
	}
	return n
}

// TestFeedbackReranksBySecondExecution drives the loop end to end through
// the plan cache: the first execution runs the mis-ranked estimate order
// and records the observed molecule-level pass rates; the second
// compile's cache hit re-ranks against them, runs the selective conjunct
// first, and evaluates strictly fewer conjuncts.
func TestFeedbackReranksBySecondExecution(t *testing.T) {
	db, mt := assemblyDB(t, 160)
	defer plan.Release(db)
	cache := plan.CacheFor(db)
	pred := misRankedPred()

	p1, _, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Residuals) != 2 {
		t.Fatalf("expected 2 residual conjuncts, got %d:\n%s", len(p1.Residuals), p1.Render())
	}
	if !strings.Contains(p1.Residuals[0].Conjunct.String(), "COUNT(part) >= COUNT(unit)") {
		t.Fatalf("estimates must mis-rank the always-true conjunct first:\n%s", p1.Render())
	}
	if _, err := p1.Execute(); err != nil {
		t.Fatal(err)
	}
	first := totalEvals(p1)

	p2, cached, err := cache.Compile(mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second compile must hit the cache")
	}
	// The cache-hit clone re-ranks *at compile time*, so a compile-only
	// EXPLAIN (ESTIMATE) already shows the order Execute will run.
	if !strings.Contains(p2.Residuals[0].Conjunct.String(), "S-42") {
		t.Fatalf("cache hit must hand out the re-ranked chain before execution:\n%s", p2.Render())
	}
	if _, err := p2.Execute(); err != nil {
		t.Fatal(err)
	}
	second := totalEvals(p2)
	if !strings.Contains(p2.Residuals[0].Conjunct.String(), "S-42") {
		t.Fatalf("observed pass rates must move the selective conjunct first:\n%s", p2.Render())
	}
	if p2.Residuals[0].Source != plan.SrcObserved {
		t.Fatalf("re-ranked conjunct source = %q, want %q", p2.Residuals[0].Source, plan.SrcObserved)
	}
	if second >= first {
		t.Fatalf("feedback must reduce conjunct evaluations: first %d, second %d", first, second)
	}
	if out := p2.Render(); !strings.Contains(out, "[observed]") {
		t.Fatalf("render must carry the observed provenance:\n%s", out)
	}

	// Fresh compiles see the observations too.
	p3, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Residuals[0].Source != plan.SrcObserved {
		t.Fatalf("fresh compile must rank from observations, got source %q", p3.Residuals[0].Source)
	}
}

// TestFeedbackObservesResidualCost checks the evaluation-cost half of
// the residual loop: executions accumulate per-conjunct wall-clock work
// (ResidualConjunct.Nanos), the feedback store turns it into an observed
// ns/eval cost, and once every conjunct of the chain carries one, the
// chain ranks on measured costs — rendered as [observed-cost] by
// EXPLAIN — instead of the static shape score.
func TestFeedbackObservesResidualCost(t *testing.T) {
	db, mt := assemblyDB(t, 96)
	defer plan.Release(db)
	plan.FeedbackFor(db)
	pred := misRankedPred()

	p1, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Residuals {
		if p1.Residuals[i].CostSrc == plan.SrcObserved {
			t.Fatalf("cold compile must rank on the static cost score:\n%s", p1.Render())
		}
	}
	if _, err := p1.Execute(); err != nil {
		t.Fatal(err)
	}
	for i := range p1.Residuals {
		if p1.Residuals[i].Evals > 0 && p1.Residuals[i].Nanos <= 0 {
			t.Fatalf("execution must accumulate wall-clock work per evaluated conjunct:\n%s", p1.Render())
		}
	}

	p2, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p2.Residuals {
		if p2.Residuals[i].ObsCost <= 0 || p2.Residuals[i].CostSrc != plan.SrcObserved {
			t.Fatalf("second compile must rank on observed costs (conjunct %d: obs %.1f src %q):\n%s",
				i, p2.Residuals[i].ObsCost, p2.Residuals[i].CostSrc, p2.Render())
		}
	}
	if out := p2.Render(); !strings.Contains(out, "[observed-cost]") {
		t.Fatalf("render must carry the observed-cost provenance:\n%s", out)
	}
}

// TestFeedbackEpochReset checks the interplay with the storage plan
// epoch: ANALYZE (like any DDL) bumps the epoch, and the next feedback
// access discards every observation recorded under the old statistics
// regime.
func TestFeedbackEpochReset(t *testing.T) {
	db, mt := assemblyDB(t, 64)
	defer plan.Release(db)
	fb := plan.FeedbackFor(db)
	pred := misRankedPred()

	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	if fb.Len() == 0 {
		t.Fatal("execution must record residual observations")
	}
	records, resets := fb.Counters()
	if records == 0 {
		t.Fatal("execution must count as a record")
	}
	if resets != 0 {
		t.Fatalf("no reset expected yet, got %d", resets)
	}

	if _, err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	if fb.Len() != 0 {
		t.Fatal("ANALYZE must reset the feedback store through the plan epoch")
	}
	if _, resets := fb.Counters(); resets != 1 {
		t.Fatalf("resets = %d, want 1", resets)
	}
	p2, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p2.Residuals {
		if p2.Residuals[i].Source == plan.SrcObserved {
			t.Fatalf("post-ANALYZE compile must not use stale observations:\n%s", p2.Render())
		}
	}

	// Executing the plan compiled *before* ANALYZE must not seed the
	// fresh store: its pass rates belong to the replaced regime.
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	if fb.Len() != 0 {
		t.Fatal("a stale plan's execution must not be recorded into the fresh store")
	}
}

// TestFeedbackCalibratesCosts checks the contest-constant half of the
// loop: after an execution, a fresh compile weighs the access-path
// alternatives with the observed per-root derivation work, and — once an
// interior entry ran — the observed per-entry climb work (provenance
// SrcObserved on the plan's Calibration).
func TestFeedbackCalibratesCosts(t *testing.T) {
	db, mt := assemblyDB(t, 200)
	defer plan.Release(db)
	// Direct plan.Compile/Execute callers opt into the loop explicitly.
	plan.FeedbackFor(db)
	pred := expr.Cmp{Op: expr.EQ,
		L: expr.Attr{Type: "part", Name: "serial"}, R: expr.Lit(model.Str("S-42"))}
	if err := db.CreateIndex("part", "serial"); err != nil {
		t.Fatal(err)
	}

	p1, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Calibration.DerivSrc != plan.SrcLinkFan {
		t.Fatalf("cold compile DerivSrc = %q, want %q", p1.Calibration.DerivSrc, plan.SrcLinkFan)
	}
	if p1.Access.Kind != plan.InteriorIndex {
		t.Fatalf("expected the interior entry to win:\n%s", p1.Render())
	}
	if _, err := p1.Execute(); err != nil {
		t.Fatal(err)
	}
	if p1.Access.ActClimb <= 0 {
		t.Fatalf("interior execution must count climb traversals, got %d", p1.Access.ActClimb)
	}

	p2, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Calibration.DerivSrc != plan.SrcObserved || p2.Calibration.DerivPerRoot <= 0 {
		t.Fatalf("second compile must calibrate deriv cost from actuals, got %q %.2f",
			p2.Calibration.DerivSrc, p2.Calibration.DerivPerRoot)
	}
	if p2.Calibration.ClimbSrc != plan.SrcObserved || p2.Calibration.ClimbPerEntry <= 0 {
		t.Fatalf("second compile must calibrate climb cost from actuals, got %q %.2f",
			p2.Calibration.ClimbSrc, p2.Calibration.ClimbPerEntry)
	}
	if out := p2.Render(); !strings.Contains(out, "costs:") || !strings.Contains(out, "links/entry [observed]") {
		t.Fatalf("render must show the calibrated costs line:\n%s", out)
	}
}
