package plan_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// layeredDB generates a random database with a layered schema
// t0 → t1 → … → t_{depth} (one link type per layer) plus a skip link
// t0 → t2 when depth permits, random atoms (attribute v drawn from a
// small domain so equality predicates hit and miss) and random links.
func layeredDB(rng *rand.Rand, depth, atomsPerType int) (*storage.Database, []string, []core.DirectedLink, error) {
	db := storage.NewDatabase()
	types := make([]string, depth+1)
	for i := range types {
		types[i] = fmt.Sprintf("t%d", i)
		desc := model.MustDesc(
			model.AttrDesc{Name: "v", Kind: model.KInt},
			model.AttrDesc{Name: "w", Kind: model.KFloat},
		)
		if _, err := db.DefineAtomType(types[i], desc); err != nil {
			return nil, nil, nil, err
		}
	}
	var edges []core.DirectedLink
	for i := 0; i < depth; i++ {
		name := fmt.Sprintf("l%d", i)
		if _, err := db.DefineLinkType(name, model.LinkDesc{SideA: types[i], SideB: types[i+1]}); err != nil {
			return nil, nil, nil, err
		}
		edges = append(edges, core.DirectedLink{Link: name, From: types[i], To: types[i+1]})
	}
	if depth >= 2 {
		if _, err := db.DefineLinkType("skip", model.LinkDesc{SideA: types[0], SideB: types[2]}); err != nil {
			return nil, nil, nil, err
		}
		edges = append(edges, core.DirectedLink{Link: "skip", From: types[0], To: types[2]})
	}
	ids := make([][]model.AtomID, len(types))
	for i, t := range types {
		for j := 0; j < atomsPerType; j++ {
			id, err := db.InsertAtom(t, model.Int(int64(rng.Intn(4))), model.Float(rng.Float64()*100))
			if err != nil {
				return nil, nil, nil, err
			}
			ids[i] = append(ids[i], id)
		}
	}
	for i := 0; i < depth; i++ {
		name := fmt.Sprintf("l%d", i)
		for _, a := range ids[i] {
			for k := 0; k < 2; k++ {
				b := ids[i+1][rng.Intn(len(ids[i+1]))]
				if err := db.Connect(name, a, b); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	if depth >= 2 {
		for _, a := range ids[0] {
			if rng.Intn(2) == 0 {
				b := ids[2][rng.Intn(len(ids[2]))]
				if err := db.Connect("skip", a, b); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	return db, types, edges, nil
}

// randomPredicate builds a random conjunction exercising every planner
// path: root equality (index hit or miss depending on the caller),
// single-type pushdown conjuncts (plain and OR-shaped) on deeper types,
// and residual-only conjuncts (NOT, COUNT, multi-type comparison).
func randomPredicate(rng *rand.Rand, types []string) expr.Expr {
	eq := func(t string, k int64) expr.Expr {
		return expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: t, Name: "v"}, R: expr.Lit(model.Int(k))}
	}
	choices := []func() expr.Expr{
		func() expr.Expr { return eq(types[0], int64(rng.Intn(5))) },
		func() expr.Expr { return eq(types[len(types)-1], int64(rng.Intn(5))) },
		func() expr.Expr {
			t := types[1+rng.Intn(len(types)-1)]
			return expr.Or{L: eq(t, int64(rng.Intn(4))), R: eq(t, int64(rng.Intn(4)))}
		},
		func() expr.Expr {
			return expr.Cmp{Op: expr.GE, L: expr.Attr{Type: types[1], Name: "w"}, R: expr.Lit(model.Float(rng.Float64() * 100))}
		},
		func() expr.Expr { return expr.Not{E: eq(types[len(types)-1], int64(rng.Intn(4)))} },
		func() expr.Expr {
			return expr.Cmp{Op: expr.GE, L: expr.CountOf{Type: types[1]}, R: expr.Lit(model.Int(int64(rng.Intn(3))))}
		},
		func() expr.Expr {
			return expr.Cmp{Op: expr.LE, L: expr.Attr{Type: types[0], Name: "w"}, R: expr.Attr{Type: types[1], Name: "w"}}
		},
	}
	pred := choices[rng.Intn(len(choices))]()
	for n := rng.Intn(2); n > 0; n-- {
		pred = expr.And{L: pred, R: choices[rng.Intn(len(choices))]()}
	}
	return pred
}

// naiveRestrict is the specification the planner must match: derive the
// full occurrence, keep the molecules fulfilling the predicate.
func naiveRestrict(t *testing.T, mt *core.MoleculeType, pred expr.Expr) core.MoleculeSet {
	t.Helper()
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	var out core.MoleculeSet
	var evalErr error
	dv.Walk(func(m *core.Molecule) bool {
		keep, err := expr.EvalPredicate(pred, core.Binding{DB: mt.DB(), M: m})
		if err != nil {
			evalErr = err
			return false
		}
		if keep {
			out = append(out, m)
		}
		return true
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	return out
}

func sameSets(a, b core.MoleculeSet) bool {
	if len(a) != len(b) {
		return false
	}
	keys := make(map[string]bool, len(a))
	for _, m := range a {
		keys[m.Key()] = true
	}
	for _, m := range b {
		if !keys[m.Key()] {
			return false
		}
	}
	return true
}

// TestPlannerEquivalenceRandom is the planner-vs-naive property: over
// randomized schemas and predicates — with and without a root index, so
// the plan exercises index-hit, index-miss and pushdown-pruned paths —
// the planner's result is set-equal to naive Σ, and the propagated
// restriction (plan.Restrict) re-derives to exactly that set
// (core.EquivalentOccurrence).
func TestPlannerEquivalenceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 2 + rng.Intn(2)
		db, types, edges, err := layeredDB(rng, depth, 4+rng.Intn(5))
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		if rng.Intn(2) == 0 {
			// Half the runs index the root's equality attribute, so the
			// compiled plan alternates between index and scan access.
			if err := db.CreateIndex(types[0], "v"); err != nil {
				t.Logf("index: %v", err)
				return false
			}
		}
		mt, err := core.Define(db, "random", types, edges)
		if err != nil {
			t.Logf("define: %v", err)
			return false
		}
		pred := randomPredicate(rng, types)
		if err := expr.Check(pred, core.Scope{DB: db, Desc: mt.Desc()}); err != nil {
			t.Logf("check: %v", err)
			return false
		}

		want := naiveRestrict(t, mt, pred)

		p, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		got, err := p.Execute()
		if err != nil {
			t.Logf("execute: %v", err)
			return false
		}
		if !sameSets(got, want) {
			t.Logf("seed %d: plan %d molecules, naive %d (pred %s)\nplan:\n%s",
				seed, len(got), len(want), pred, p.Render())
			return false
		}

		// Algebra mode: the propagated planned restriction must be
		// occurrence-equivalent to the planner's qualifying set.
		sigma, err := plan.Restrict(mt, pred, "", nil)
		if err != nil {
			t.Logf("plan.Restrict: %v", err)
			return false
		}
		ok, err := core.EquivalentOccurrence(sigma, got)
		if err != nil {
			t.Logf("equivalent: %v", err)
			return false
		}
		if !ok {
			t.Logf("seed %d: propagated occurrence differs (pred %s)", seed, pred)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// fixture builds a deterministic three-layer database for the targeted
// planner tests: 8 roots, each root's subtree reaching layer-2 atoms
// whose v-attribute makes pushdown selective.
func fixture(t *testing.T) (*storage.Database, *core.MoleculeType) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	db, types, edges, err := layeredDB(rng, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(db, "fix", types, edges)
	if err != nil {
		t.Fatal(err)
	}
	return db, mt
}

func TestCompileChoosesIndexScan(t *testing.T) {
	db, mt := fixture(t)
	if err := db.CreateIndex("t0", "v"); err != nil {
		t.Fatal(err)
	}
	pred := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "t0", Name: "v"}, R: expr.Lit(model.Int(1))},
		R: expr.Cmp{Op: expr.GT, L: expr.Attr{Type: "t0", Name: "w"}, R: expr.Lit(model.Float(-1))},
	}
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p.Access.Kind != plan.IndexScan || p.Access.Attr != "v" {
		t.Fatalf("access = %+v, want index scan on v", p.Access)
	}
	if p.Access.Filter == nil {
		t.Fatal("the non-indexed root conjunct must become the root filter")
	}
	n, _ := db.CountAtoms("t0")
	if p.Access.EstRoots <= 0 || p.Access.EstRoots > n {
		t.Fatalf("EstRoots = %d, want within (0, %d]", p.Access.EstRoots, n)
	}
}

func TestCompileClassifiesPushdownAndResidual(t *testing.T) {
	db, mt := fixture(t)
	pred := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "t2", Name: "v"}, R: expr.Lit(model.Int(2))},
		R: expr.Cmp{Op: expr.LE, L: expr.Attr{Type: "t0", Name: "w"}, R: expr.Attr{Type: "t1", Name: "w"}},
	}
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Pushdowns) != 1 || p.Pushdowns[0].Type != "t2" {
		t.Fatalf("pushdowns = %+v, want one at t2", p.Pushdowns)
	}
	if p.Residual == nil {
		t.Fatal("the multi-type conjunct must stay residual")
	}
	if p.Access.Kind != plan.FullScan {
		t.Fatalf("access = %+v, want full scan", p.Access)
	}
}

func TestPushdownCutsTraversal(t *testing.T) {
	db, mt := fixture(t)
	// A t1-level equality that disqualifies most molecules: pruned
	// derivations must traverse strictly fewer links than naive Σ.
	pred := expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "t1", Name: "v"}, R: expr.Lit(model.Int(3))}

	db.Stats().Reset()
	want := naiveRestrict(t, mt, pred)
	naiveWork := db.Stats().Snapshot()

	db.Stats().Reset()
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	planWork := db.Stats().Snapshot()

	if !sameSets(got, want) {
		t.Fatalf("plan %d molecules, naive %d", len(got), len(want))
	}
	cut := 0
	for _, pd := range p.Pushdowns {
		cut += pd.Cut
	}
	if cut == 0 {
		t.Skip("predicate did not prune on this fixture")
	}
	if planWork.LinksTraversed >= naiveWork.LinksTraversed {
		t.Fatalf("pushdown traversed %d links, naive %d — no cut",
			planWork.LinksTraversed, naiveWork.LinksTraversed)
	}
}

// TestSameTypeConjunctsBothApply guards the prune-hook composition: two
// pushable conjuncts on the same non-root type must each aggregate
// existentially over the full component set (∃v=0 AND ∃v=1 is not
// ∃(v=0 AND v=1)), and neither may be dropped.
func TestSameTypeConjunctsBothApply(t *testing.T) {
	db := storage.NewDatabase()
	desc := model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})
	for _, tn := range []string{"r", "c"} {
		if _, err := db.DefineAtomType(tn, desc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.DefineLinkType("rc", model.LinkDesc{SideA: "r", SideB: "c"}); err != nil {
		t.Fatal(err)
	}
	// Root 1 reaches c-atoms {0, 1}: satisfies both conjuncts.
	// Root 2 reaches only {1}: satisfies one conjunct, must be cut.
	r1, err := db.InsertAtom("r", model.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.InsertAtom("r", model.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	c0, err := db.InsertAtom("c", model.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := db.InsertAtom("c", model.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []struct{ a, b model.AtomID }{{r1, c0}, {r1, c1}, {r2, c1}} {
		if err := db.Connect("rc", l.a, l.b); err != nil {
			t.Fatal(err)
		}
	}
	mt, err := core.Define(db, "rc", []string{"r", "c"},
		[]core.DirectedLink{{Link: "rc", From: "r", To: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	eq := func(k int64) expr.Expr {
		return expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "c", Name: "v"}, R: expr.Lit(model.Int(k))}
	}
	pred := expr.And{L: eq(0), R: eq(1)}

	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Pushdowns) != 2 {
		t.Fatalf("pushdowns = %+v, want both conjuncts at c", p.Pushdowns)
	}
	got, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want := naiveRestrict(t, mt, pred)
	if !sameSets(got, want) {
		t.Fatalf("plan %d molecules, naive %d — a same-type conjunct was dropped", len(got), len(want))
	}
	if len(got) != 1 || got[0].Root() != r1 {
		t.Fatalf("result = %v, want exactly the molecule at r1", got.Roots())
	}
}

// assemblyDB builds the symmetric-access-path fixture: a three-level
// asm → unit → part chain where part.serial is unique except for a few
// flagged parts, so an index on it is genuinely selective while the root
// type offers nothing to index.
func assemblyDB(t *testing.T, assemblies int) (*storage.Database, *core.MoleculeType) {
	t.Helper()
	db := storage.NewDatabase()
	for _, at := range []struct {
		name  string
		attrs []model.AttrDesc
	}{
		{"asm", []model.AttrDesc{{Name: "code", Kind: model.KString}}},
		{"unit", []model.AttrDesc{{Name: "slot", Kind: model.KInt}}},
		{"part", []model.AttrDesc{{Name: "serial", Kind: model.KString}}},
	} {
		if _, err := db.DefineAtomType(at.name, model.MustDesc(at.attrs...)); err != nil {
			t.Fatal(err)
		}
	}
	for _, lt := range []struct{ name, a, b string }{
		{"asm-unit", "asm", "unit"}, {"unit-part", "unit", "part"},
	} {
		if _, err := db.DefineLinkType(lt.name, model.LinkDesc{SideA: lt.a, SideB: lt.b}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < assemblies; i++ {
		aid, err := db.InsertAtom("asm", model.Str(fmt.Sprintf("A%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 3; u++ {
			uid, err := db.InsertAtom("unit", model.Int(int64(u)))
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Connect("asm-unit", aid, uid); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 3; k++ {
				serial := fmt.Sprintf("SN-%d-%d-%d", i, u, k)
				if u == 0 && k == 0 && i%16 == 0 {
					serial = "S-42"
				}
				pid, err := db.InsertAtom("part", model.Str(serial))
				if err != nil {
					t.Fatal(err)
				}
				if err := db.Connect("unit-part", uid, pid); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	mt, err := core.Define(db, "assembly", []string{"asm", "unit", "part"},
		[]core.DirectedLink{
			{Link: "asm-unit", From: "asm", To: "unit"},
			{Link: "unit-part", From: "unit", To: "part"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return db, mt
}

// TestCompileChoosesInteriorIndex pins the tentpole behavior: with a
// selective index on a mid-structure attribute and nothing to index at
// the root, the planner enters the structure at the interior type, keeps
// the entry conjunct as a pushdown hook, records the losing
// alternatives, and the executed plan equals naive Σ on far less work.
func TestCompileChoosesInteriorIndex(t *testing.T) {
	db, mt := assemblyDB(t, 64)
	if err := db.CreateIndex("part", "serial"); err != nil {
		t.Fatal(err)
	}
	pred := expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "serial"}, R: expr.Lit(model.Str("S-42"))}

	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p.Access.Kind != plan.InteriorIndex {
		t.Fatalf("access = %+v, want interior-index entry\n%s", p.Access, p.Render())
	}
	if p.Access.EntryType != "part" || p.Access.Attr != "serial" {
		t.Fatalf("entry = %s.%s, want part.serial", p.Access.EntryType, p.Access.Attr)
	}
	if len(p.Pushdowns) != 1 || p.Pushdowns[0].Type != "part" {
		t.Fatalf("the entry conjunct must stay on as a pushdown hook: %+v", p.Pushdowns)
	}
	if len(p.Alternatives) < 2 {
		t.Fatalf("alternatives = %+v, want at least full scan and interior-index", p.Alternatives)
	}
	chosen := 0
	for _, a := range p.Alternatives {
		if a.Chosen {
			chosen++
		}
	}
	if chosen != 1 {
		t.Fatalf("exactly one alternative must be chosen: %+v", p.Alternatives)
	}

	db.Stats().Reset()
	want := naiveRestrict(t, mt, pred)
	naiveWork := db.Stats().Snapshot()
	db.Stats().Reset()
	got, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	planWork := db.Stats().Snapshot()
	if !sameSets(got, want) {
		t.Fatalf("interior plan %d molecules, naive %d\n%s", len(got), len(want), p.Render())
	}
	if planWork.AtomsFetched >= naiveWork.AtomsFetched {
		t.Fatalf("interior entry fetched %d atoms, root scan %d — no win",
			planWork.AtomsFetched, naiveWork.AtomsFetched)
	}
	if p.Access.ActEntries == 0 || p.Access.ActRoots == 0 {
		t.Fatalf("actuals not filled: %+v", p.Access)
	}

	out := p.Render()
	for _, wantLine := range []string{"[interior-index]", "recover roots upward part ⇡ unit ⇡ asm", "considered:", "← chosen"} {
		if !strings.Contains(out, wantLine) {
			t.Fatalf("render missing %q:\n%s", wantLine, out)
		}
	}
}

// TestInteriorRootScanEquivalenceRandom is the satellite property: over
// randomized structures and predicates that include an equality on an
// indexed non-root type, the compiled plan — whichever entry point the
// cost contest picks — returns exactly the molecule set of the root-scan
// plan compiled before the index existed, and of naive Σ.
func TestInteriorRootScanEquivalenceRandom(t *testing.T) {
	kinds := make(map[plan.AccessKind]int)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 2 + rng.Intn(2)
		db, types, edges, err := layeredDB(rng, depth, 4+rng.Intn(5))
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		mt, err := core.Define(db, "random", types, edges)
		if err != nil {
			t.Logf("define: %v", err)
			return false
		}
		// The predicate always includes an equality on a non-root type
		// (the interior entry candidate) plus random extra conjuncts.
		interiorType := types[1+rng.Intn(len(types)-1)]
		pred := expr.Expr(expr.Cmp{Op: expr.EQ,
			L: expr.Attr{Type: interiorType, Name: "v"}, R: expr.Lit(model.Int(int64(rng.Intn(4))))})
		if rng.Intn(2) == 0 {
			pred = expr.And{L: pred, R: randomPredicate(rng, types)}
		}
		if err := expr.Check(pred, core.Scope{DB: db, Desc: mt.Desc()}); err != nil {
			t.Logf("check: %v", err)
			return false
		}

		// Root-scan plan: compiled while no index exists.
		rootScan, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			t.Logf("compile root scan: %v", err)
			return false
		}
		if rootScan.Access.Kind != plan.FullScan {
			t.Logf("seed %d: pre-index plan is not a root scan", seed)
			return false
		}
		if err := db.CreateIndex(interiorType, "v"); err != nil {
			t.Logf("index: %v", err)
			return false
		}
		if rng.Intn(2) == 0 {
			// Half the runs get histogram estimates for the contest.
			if _, err := db.Analyze(interiorType); err != nil {
				t.Logf("analyze: %v", err)
				return false
			}
		}
		contested, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			t.Logf("compile contested: %v", err)
			return false
		}
		kinds[contested.Access.Kind]++

		want := naiveRestrict(t, mt, pred)
		gotScan, err := rootScan.Execute()
		if err != nil {
			t.Logf("execute root scan: %v", err)
			return false
		}
		gotContested, err := contested.Execute()
		if err != nil {
			t.Logf("execute contested: %v", err)
			return false
		}
		if !sameSets(gotScan, want) {
			t.Logf("seed %d: root-scan plan %d molecules, naive %d", seed, len(gotScan), len(want))
			return false
		}
		if !sameSets(gotContested, want) {
			t.Logf("seed %d: contested plan (%v) %d molecules, naive %d (pred %s)\nplan:\n%s",
				seed, contested.Access.Kind, len(gotContested), len(want), pred, contested.Render())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	t.Logf("access kinds exercised: %v", kinds)
}

// TestInteriorDiamondEquivalence drives the interior entry through a
// multi-parent (diamond) structure, where upward recovery genuinely
// over-approximates: the pushdown hook must discard the recovered roots
// whose molecules exclude every matching seed.
func TestInteriorDiamondEquivalence(t *testing.T) {
	db := storage.NewDatabase()
	vdesc := model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})
	for _, tn := range []string{"r", "x", "y", "z"} {
		if _, err := db.DefineAtomType(tn, vdesc); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []struct{ name, a, b string }{
		{"rx", "r", "x"}, {"ry", "r", "y"}, {"xz", "x", "z"}, {"yz", "y", "z"},
	} {
		if _, err := db.DefineLinkType(l.name, model.LinkDesc{SideA: l.a, SideB: l.b}); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(11))
	var rs, xs, ys, zs []model.AtomID
	insert := func(tn string, out *[]model.AtomID) {
		id, err := db.InsertAtom(tn, model.Int(int64(rng.Intn(6))))
		if err != nil {
			t.Fatal(err)
		}
		*out = append(*out, id)
	}
	for i := 0; i < 24; i++ {
		insert("r", &rs)
		insert("x", &xs)
		insert("y", &ys)
		insert("z", &zs)
	}
	connect := func(link string, as, bs []model.AtomID, n int) {
		for _, a := range as {
			for k := 0; k < n; k++ {
				if err := db.Connect(link, a, bs[rng.Intn(len(bs))]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	connect("rx", rs, xs, 2)
	connect("ry", rs, ys, 2)
	connect("xz", xs, zs, 2)
	connect("yz", ys, zs, 2)
	if err := db.CreateIndex("z", "v"); err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(db, "diamond", []string{"r", "x", "y", "z"},
		[]core.DirectedLink{
			{Link: "rx", From: "r", To: "x"},
			{Link: "ry", From: "r", To: "y"},
			{Link: "xz", From: "x", To: "z"},
			{Link: "yz", From: "y", To: "z"},
		})
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < 6; v++ {
		pred := expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "z", Name: "v"}, R: expr.Lit(model.Int(v))}
		p, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Execute()
		if err != nil {
			t.Fatal(err)
		}
		want := naiveRestrict(t, mt, pred)
		if !sameSets(got, want) {
			t.Fatalf("v=%d: plan (%v access) %d molecules, naive %d\n%s",
				v, p.Access.Kind, len(got), len(want), p.Render())
		}
	}
}

// TestExecuteParallelMatchesSequential drives plan.Execute through the
// worker pool (Workers > 1 over a root batch large enough to fan out)
// and checks result set, order and every EXPLAIN actual against the
// forced-sequential execution of the same plan.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	db, mt := assemblyDB(t, 200)
	// A pushdown conjunct that cuts most molecules plus a residual that
	// thins the rest, so all actuals are exercised.
	pred := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "part", Name: "serial"}, R: expr.Lit(model.Str("S-42"))},
		R: expr.Cmp{Op: expr.GE, L: expr.CountOf{Type: "unit"}, R: expr.Lit(model.Int(1))},
	}
	seq, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	seq.Workers = 1
	wantSet, err := seq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	par, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	par.Workers = 4
	gotSet, err := par.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSet) != len(wantSet) {
		t.Fatalf("parallel %d molecules, sequential %d", len(gotSet), len(wantSet))
	}
	for i := range gotSet {
		if !gotSet[i].Equal(wantSet[i]) {
			t.Fatalf("molecule %d differs between parallel and sequential execution (order must match)", i)
		}
	}
	if par.Access.ActRoots != seq.Access.ActRoots || par.Derived != seq.Derived || par.Out != seq.Out {
		t.Fatalf("actuals differ: parallel roots/derived/out %d/%d/%d, sequential %d/%d/%d",
			par.Access.ActRoots, par.Derived, par.Out, seq.Access.ActRoots, seq.Derived, seq.Out)
	}
	for i := range par.Pushdowns {
		if par.Pushdowns[i].Cut != seq.Pushdowns[i].Cut {
			t.Fatalf("pushdown %d cut %d parallel vs %d sequential", i, par.Pushdowns[i].Cut, seq.Pushdowns[i].Cut)
		}
	}
	for i := range par.Residuals {
		if par.Residuals[i].Evals != seq.Residuals[i].Evals || par.Residuals[i].Passed != seq.Residuals[i].Passed {
			t.Fatalf("residual %d actuals differ", i)
		}
	}
}

func TestRenderShowsCardinalities(t *testing.T) {
	db, mt := fixture(t)
	if err := db.CreateIndex("t0", "v"); err != nil {
		t.Fatal(err)
	}
	pred := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "t0", Name: "v"}, R: expr.Lit(model.Int(1))},
		R: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "t2", Name: "v"}, R: expr.Lit(model.Int(0))},
	}
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	for _, want := range []string{
		"index lookup t0.v",
		"est ≈",
		"actual",
		"pushdown:  Σ↓[t2.v = 0] at t2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
