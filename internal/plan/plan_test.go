package plan_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// layeredDB generates a random database with a layered schema
// t0 → t1 → … → t_{depth} (one link type per layer) plus a skip link
// t0 → t2 when depth permits, random atoms (attribute v drawn from a
// small domain so equality predicates hit and miss) and random links.
func layeredDB(rng *rand.Rand, depth, atomsPerType int) (*storage.Database, []string, []core.DirectedLink, error) {
	db := storage.NewDatabase()
	types := make([]string, depth+1)
	for i := range types {
		types[i] = fmt.Sprintf("t%d", i)
		desc := model.MustDesc(
			model.AttrDesc{Name: "v", Kind: model.KInt},
			model.AttrDesc{Name: "w", Kind: model.KFloat},
		)
		if _, err := db.DefineAtomType(types[i], desc); err != nil {
			return nil, nil, nil, err
		}
	}
	var edges []core.DirectedLink
	for i := 0; i < depth; i++ {
		name := fmt.Sprintf("l%d", i)
		if _, err := db.DefineLinkType(name, model.LinkDesc{SideA: types[i], SideB: types[i+1]}); err != nil {
			return nil, nil, nil, err
		}
		edges = append(edges, core.DirectedLink{Link: name, From: types[i], To: types[i+1]})
	}
	if depth >= 2 {
		if _, err := db.DefineLinkType("skip", model.LinkDesc{SideA: types[0], SideB: types[2]}); err != nil {
			return nil, nil, nil, err
		}
		edges = append(edges, core.DirectedLink{Link: "skip", From: types[0], To: types[2]})
	}
	ids := make([][]model.AtomID, len(types))
	for i, t := range types {
		for j := 0; j < atomsPerType; j++ {
			id, err := db.InsertAtom(t, model.Int(int64(rng.Intn(4))), model.Float(rng.Float64()*100))
			if err != nil {
				return nil, nil, nil, err
			}
			ids[i] = append(ids[i], id)
		}
	}
	for i := 0; i < depth; i++ {
		name := fmt.Sprintf("l%d", i)
		for _, a := range ids[i] {
			for k := 0; k < 2; k++ {
				b := ids[i+1][rng.Intn(len(ids[i+1]))]
				if err := db.Connect(name, a, b); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	if depth >= 2 {
		for _, a := range ids[0] {
			if rng.Intn(2) == 0 {
				b := ids[2][rng.Intn(len(ids[2]))]
				if err := db.Connect("skip", a, b); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	return db, types, edges, nil
}

// randomPredicate builds a random conjunction exercising every planner
// path: root equality (index hit or miss depending on the caller),
// single-type pushdown conjuncts (plain and OR-shaped) on deeper types,
// and residual-only conjuncts (NOT, COUNT, multi-type comparison).
func randomPredicate(rng *rand.Rand, types []string) expr.Expr {
	eq := func(t string, k int64) expr.Expr {
		return expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: t, Name: "v"}, R: expr.Lit(model.Int(k))}
	}
	choices := []func() expr.Expr{
		func() expr.Expr { return eq(types[0], int64(rng.Intn(5))) },
		func() expr.Expr { return eq(types[len(types)-1], int64(rng.Intn(5))) },
		func() expr.Expr {
			t := types[1+rng.Intn(len(types)-1)]
			return expr.Or{L: eq(t, int64(rng.Intn(4))), R: eq(t, int64(rng.Intn(4)))}
		},
		func() expr.Expr {
			return expr.Cmp{Op: expr.GE, L: expr.Attr{Type: types[1], Name: "w"}, R: expr.Lit(model.Float(rng.Float64() * 100))}
		},
		func() expr.Expr { return expr.Not{E: eq(types[len(types)-1], int64(rng.Intn(4)))} },
		func() expr.Expr {
			return expr.Cmp{Op: expr.GE, L: expr.CountOf{Type: types[1]}, R: expr.Lit(model.Int(int64(rng.Intn(3))))}
		},
		func() expr.Expr {
			return expr.Cmp{Op: expr.LE, L: expr.Attr{Type: types[0], Name: "w"}, R: expr.Attr{Type: types[1], Name: "w"}}
		},
	}
	pred := choices[rng.Intn(len(choices))]()
	for n := rng.Intn(2); n > 0; n-- {
		pred = expr.And{L: pred, R: choices[rng.Intn(len(choices))]()}
	}
	return pred
}

// naiveRestrict is the specification the planner must match: derive the
// full occurrence, keep the molecules fulfilling the predicate.
func naiveRestrict(t *testing.T, mt *core.MoleculeType, pred expr.Expr) core.MoleculeSet {
	t.Helper()
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	var out core.MoleculeSet
	var evalErr error
	dv.Walk(func(m *core.Molecule) bool {
		keep, err := expr.EvalPredicate(pred, core.Binding{DB: mt.DB(), M: m})
		if err != nil {
			evalErr = err
			return false
		}
		if keep {
			out = append(out, m)
		}
		return true
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	return out
}

func sameSets(a, b core.MoleculeSet) bool {
	if len(a) != len(b) {
		return false
	}
	keys := make(map[string]bool, len(a))
	for _, m := range a {
		keys[m.Key()] = true
	}
	for _, m := range b {
		if !keys[m.Key()] {
			return false
		}
	}
	return true
}

// TestPlannerEquivalenceRandom is the planner-vs-naive property: over
// randomized schemas and predicates — with and without a root index, so
// the plan exercises index-hit, index-miss and pushdown-pruned paths —
// the planner's result is set-equal to naive Σ, and the propagated
// restriction (plan.Restrict) re-derives to exactly that set
// (core.EquivalentOccurrence).
func TestPlannerEquivalenceRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 2 + rng.Intn(2)
		db, types, edges, err := layeredDB(rng, depth, 4+rng.Intn(5))
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		if rng.Intn(2) == 0 {
			// Half the runs index the root's equality attribute, so the
			// compiled plan alternates between index and scan access.
			if err := db.CreateIndex(types[0], "v"); err != nil {
				t.Logf("index: %v", err)
				return false
			}
		}
		mt, err := core.Define(db, "random", types, edges)
		if err != nil {
			t.Logf("define: %v", err)
			return false
		}
		pred := randomPredicate(rng, types)
		if err := expr.Check(pred, core.Scope{DB: db, Desc: mt.Desc()}); err != nil {
			t.Logf("check: %v", err)
			return false
		}

		want := naiveRestrict(t, mt, pred)

		p, err := plan.Compile(db, mt.Desc(), pred)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		got, err := p.Execute()
		if err != nil {
			t.Logf("execute: %v", err)
			return false
		}
		if !sameSets(got, want) {
			t.Logf("seed %d: plan %d molecules, naive %d (pred %s)\nplan:\n%s",
				seed, len(got), len(want), pred, p.Render())
			return false
		}

		// Algebra mode: the propagated planned restriction must be
		// occurrence-equivalent to the planner's qualifying set.
		sigma, err := plan.Restrict(mt, pred, "", nil)
		if err != nil {
			t.Logf("plan.Restrict: %v", err)
			return false
		}
		ok, err := core.EquivalentOccurrence(sigma, got)
		if err != nil {
			t.Logf("equivalent: %v", err)
			return false
		}
		if !ok {
			t.Logf("seed %d: propagated occurrence differs (pred %s)", seed, pred)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// fixture builds a deterministic three-layer database for the targeted
// planner tests: 8 roots, each root's subtree reaching layer-2 atoms
// whose v-attribute makes pushdown selective.
func fixture(t *testing.T) (*storage.Database, *core.MoleculeType) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	db, types, edges, err := layeredDB(rng, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(db, "fix", types, edges)
	if err != nil {
		t.Fatal(err)
	}
	return db, mt
}

func TestCompileChoosesIndexScan(t *testing.T) {
	db, mt := fixture(t)
	if err := db.CreateIndex("t0", "v"); err != nil {
		t.Fatal(err)
	}
	pred := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "t0", Name: "v"}, R: expr.Lit(model.Int(1))},
		R: expr.Cmp{Op: expr.GT, L: expr.Attr{Type: "t0", Name: "w"}, R: expr.Lit(model.Float(-1))},
	}
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if p.Access.Kind != plan.IndexScan || p.Access.Attr != "v" {
		t.Fatalf("access = %+v, want index scan on v", p.Access)
	}
	if p.Access.Filter == nil {
		t.Fatal("the non-indexed root conjunct must become the root filter")
	}
	n, _ := db.CountAtoms("t0")
	if p.Access.EstRoots <= 0 || p.Access.EstRoots > n {
		t.Fatalf("EstRoots = %d, want within (0, %d]", p.Access.EstRoots, n)
	}
}

func TestCompileClassifiesPushdownAndResidual(t *testing.T) {
	db, mt := fixture(t)
	pred := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "t2", Name: "v"}, R: expr.Lit(model.Int(2))},
		R: expr.Cmp{Op: expr.LE, L: expr.Attr{Type: "t0", Name: "w"}, R: expr.Attr{Type: "t1", Name: "w"}},
	}
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Pushdowns) != 1 || p.Pushdowns[0].Type != "t2" {
		t.Fatalf("pushdowns = %+v, want one at t2", p.Pushdowns)
	}
	if p.Residual == nil {
		t.Fatal("the multi-type conjunct must stay residual")
	}
	if p.Access.Kind != plan.FullScan {
		t.Fatalf("access = %+v, want full scan", p.Access)
	}
}

func TestPushdownCutsTraversal(t *testing.T) {
	db, mt := fixture(t)
	// A t1-level equality that disqualifies most molecules: pruned
	// derivations must traverse strictly fewer links than naive Σ.
	pred := expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "t1", Name: "v"}, R: expr.Lit(model.Int(3))}

	db.Stats().Reset()
	want := naiveRestrict(t, mt, pred)
	naiveWork := db.Stats().Snapshot()

	db.Stats().Reset()
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	planWork := db.Stats().Snapshot()

	if !sameSets(got, want) {
		t.Fatalf("plan %d molecules, naive %d", len(got), len(want))
	}
	cut := 0
	for _, pd := range p.Pushdowns {
		cut += pd.Cut
	}
	if cut == 0 {
		t.Skip("predicate did not prune on this fixture")
	}
	if planWork.LinksTraversed >= naiveWork.LinksTraversed {
		t.Fatalf("pushdown traversed %d links, naive %d — no cut",
			planWork.LinksTraversed, naiveWork.LinksTraversed)
	}
}

// TestSameTypeConjunctsBothApply guards the prune-hook composition: two
// pushable conjuncts on the same non-root type must each aggregate
// existentially over the full component set (∃v=0 AND ∃v=1 is not
// ∃(v=0 AND v=1)), and neither may be dropped.
func TestSameTypeConjunctsBothApply(t *testing.T) {
	db := storage.NewDatabase()
	desc := model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})
	for _, tn := range []string{"r", "c"} {
		if _, err := db.DefineAtomType(tn, desc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.DefineLinkType("rc", model.LinkDesc{SideA: "r", SideB: "c"}); err != nil {
		t.Fatal(err)
	}
	// Root 1 reaches c-atoms {0, 1}: satisfies both conjuncts.
	// Root 2 reaches only {1}: satisfies one conjunct, must be cut.
	r1, err := db.InsertAtom("r", model.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.InsertAtom("r", model.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	c0, err := db.InsertAtom("c", model.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := db.InsertAtom("c", model.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []struct{ a, b model.AtomID }{{r1, c0}, {r1, c1}, {r2, c1}} {
		if err := db.Connect("rc", l.a, l.b); err != nil {
			t.Fatal(err)
		}
	}
	mt, err := core.Define(db, "rc", []string{"r", "c"},
		[]core.DirectedLink{{Link: "rc", From: "r", To: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	eq := func(k int64) expr.Expr {
		return expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "c", Name: "v"}, R: expr.Lit(model.Int(k))}
	}
	pred := expr.And{L: eq(0), R: eq(1)}

	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Pushdowns) != 2 {
		t.Fatalf("pushdowns = %+v, want both conjuncts at c", p.Pushdowns)
	}
	got, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want := naiveRestrict(t, mt, pred)
	if !sameSets(got, want) {
		t.Fatalf("plan %d molecules, naive %d — a same-type conjunct was dropped", len(got), len(want))
	}
	if len(got) != 1 || got[0].Root() != r1 {
		t.Fatalf("result = %v, want exactly the molecule at r1", got.Roots())
	}
}

func TestRenderShowsCardinalities(t *testing.T) {
	db, mt := fixture(t)
	if err := db.CreateIndex("t0", "v"); err != nil {
		t.Fatal(err)
	}
	pred := expr.And{
		L: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "t0", Name: "v"}, R: expr.Lit(model.Int(1))},
		R: expr.Cmp{Op: expr.EQ, L: expr.Attr{Type: "t2", Name: "v"}, R: expr.Lit(model.Int(0))},
	}
	p, err := plan.Compile(db, mt.Desc(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	for _, want := range []string{
		"index lookup t0.v",
		"est ≈",
		"actual",
		"pushdown:  Σ↓[t2.v = 0] at t2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
