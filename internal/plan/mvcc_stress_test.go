package plan_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mad/internal/core"
	"mad/internal/model"
	"mad/internal/plan"
	"mad/internal/storage"
)

// mvccWorkload builds the stress schema: root atoms linked to leaf
// atoms, both carrying a version attribute "v" that every transaction
// keeps equal across a molecule — the invariant the readers check.
func mvccWorkload(t *testing.T) (*storage.Database, *core.MoleculeType) {
	t.Helper()
	db := storage.NewDatabase()
	desc := model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString},
		model.AttrDesc{Name: "v", Kind: model.KInt},
	)
	if _, err := db.DefineAtomType("root", desc); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineAtomType("leaf", desc); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineLinkType("rl", model.LinkDesc{SideA: "root", SideB: "leaf"}); err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(db, "stress_mol", []string{"root", "leaf"},
		[]core.DirectedLink{{Link: "rl", From: "root", To: "leaf"}})
	if err != nil {
		t.Fatal(err)
	}
	return db, mt
}

// insertMolecule buffers one whole molecule (root + nLeaves leaves, all
// at version v) into the transaction.
func insertMolecule(txn *storage.Txn, name string, v int64, nLeaves int) (model.AtomID, []model.AtomID, error) {
	root, err := txn.InsertAtom("root", model.Str(name), model.Int(v))
	if err != nil {
		return 0, nil, err
	}
	leaves := make([]model.AtomID, nLeaves)
	for i := range leaves {
		leaf, err := txn.InsertAtom("leaf", model.Str(fmt.Sprintf("%s_l%d", name, i)), model.Int(v))
		if err != nil {
			return 0, nil, err
		}
		if err := txn.Connect("rl", root, leaf); err != nil {
			return 0, nil, err
		}
		leaves[i] = leaf
	}
	return root, leaves, nil
}

// stressMol is a writer's record of one molecule it owns.
type stressMol struct {
	name   string
	root   model.AtomID
	leaves []model.AtomID
}

// TestMVCCStressWritersVsStreamingReaders is the headline race test of
// the MVCC refactor: 4 writer goroutines commit interleaved atom+link
// mutations (whole-molecule inserts, version bumps, leaf swaps, cascade
// deletes — each transaction keeps every atom of a molecule at one
// version value) while 4 streaming readers run Plan.Stream cursors and
// a background vacuum reclaims dead versions. Each cursor is pinned to
// one commit timestamp, so every molecule it delivers must be whole
// (exactly 2 leaves) and version-uniform when its attributes are read
// back at the cursor's snapshot timestamp — a torn molecule, a
// half-installed commit or a prematurely vacuumed version all fail.
func TestMVCCStressWritersVsStreamingReaders(t *testing.T) {
	const (
		writers      = 4
		readers      = 4
		writerRounds = 40
		readerRounds = 12
		nLeaves      = 2
		seedMols     = 4
	)
	db, mt := mvccWorkload(t)

	// Seed molecules that no writer ever touches: every cursor must see
	// at least these.
	for i := 0; i < seedMols; i++ {
		txn := db.Begin()
		if _, _, err := insertMolecule(txn, fmt.Sprintf("seed%d", i), 0, nLeaves); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	stopVacuum := db.StartVacuum(200 * time.Microsecond)
	defer stopVacuum()

	errc := make(chan error, writers+readers)
	var wg sync.WaitGroup

	// Writers: each owns a disjoint set of molecules, so commits never
	// conflict — every transaction must install or the test fails.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			var mine []stressMol
			ver := int64(1)
			for r := 0; r < writerRounds; r++ {
				txn := db.Begin()
				ver++
				switch {
				case len(mine) == 0 || rng.Intn(4) == 0:
					name := fmt.Sprintf("w%d_m%d", w, r)
					root, leaves, err := insertMolecule(txn, name, ver, nLeaves)
					if err != nil {
						errc <- fmt.Errorf("writer %d insert: %w", w, err)
						return
					}
					mine = append(mine, stressMol{name: name, root: root, leaves: leaves})
				case rng.Intn(5) == 0:
					// Cascade delete: the whole molecule vanishes in one
					// commit (links cascade with the root; orphan leaves
					// are deleted in the same transaction).
					i := rng.Intn(len(mine))
					m := mine[i]
					if err := txn.DeleteAtom("root", m.root); err != nil {
						errc <- fmt.Errorf("writer %d delete root: %w", w, err)
						return
					}
					for _, l := range m.leaves {
						if err := txn.DeleteAtom("leaf", l); err != nil {
							errc <- fmt.Errorf("writer %d delete leaf: %w", w, err)
							return
						}
					}
					mine = append(mine[:i], mine[i+1:]...)
				case rng.Intn(3) == 0:
					// Leaf swap: replace one leaf and bump the whole
					// molecule to the new version, all in one commit.
					i := rng.Intn(len(mine))
					m := &mine[i]
					j := rng.Intn(len(m.leaves))
					old := m.leaves[j]
					fresh, err := txn.InsertAtom("leaf",
						model.Str(fmt.Sprintf("%s_swap%d", m.name, r)), model.Int(ver))
					if err != nil {
						errc <- fmt.Errorf("writer %d swap insert: %w", w, err)
						return
					}
					if err := txn.Connect("rl", m.root, fresh); err != nil {
						errc <- fmt.Errorf("writer %d swap connect: %w", w, err)
						return
					}
					if err := txn.DeleteAtom("leaf", old); err != nil {
						errc <- fmt.Errorf("writer %d swap delete: %w", w, err)
						return
					}
					if err := txn.UpdateAtom("root", m.root,
						[]model.Value{model.Str(m.name), model.Int(ver)}); err != nil {
						errc <- fmt.Errorf("writer %d swap update root: %w", w, err)
						return
					}
					m.leaves[j] = fresh
					for k, l := range m.leaves {
						if k == j {
							continue
						}
						if err := txn.UpdateAtom("leaf", l,
							[]model.Value{model.Str(fmt.Sprintf("%s_l%d", m.name, k)), model.Int(ver)}); err != nil {
							errc <- fmt.Errorf("writer %d swap update leaf: %w", w, err)
							return
						}
					}
				default:
					// Version bump: root and every leaf move to ver
					// together.
					i := rng.Intn(len(mine))
					m := mine[i]
					if err := txn.UpdateAtom("root", m.root,
						[]model.Value{model.Str(m.name), model.Int(ver)}); err != nil {
						errc <- fmt.Errorf("writer %d update root: %w", w, err)
						return
					}
					for k, l := range m.leaves {
						if err := txn.UpdateAtom("leaf", l,
							[]model.Value{model.Str(fmt.Sprintf("%s_l%d", m.name, k)), model.Int(ver)}); err != nil {
							errc <- fmt.Errorf("writer %d update leaf: %w", w, err)
							return
						}
					}
				}
				if err := txn.Commit(); err != nil {
					errc <- fmt.Errorf("writer %d commit round %d: %w", w, r, err)
					return
				}
			}
		}(w)
	}

	// Readers: each opens fresh streaming cursors against the shared
	// database and checks every delivered molecule against the snapshot
	// it is pinned to.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < readerRounds; round++ {
				p, err := plan.Compile(db, mt.Desc(), nil)
				if err != nil {
					errc <- fmt.Errorf("reader %d compile: %w", r, err)
					return
				}
				p.Workers = 2
				st, err := p.Stream(context.Background())
				if err != nil {
					errc <- fmt.Errorf("reader %d stream: %w", r, err)
					return
				}
				ts := st.SnapshotTS()
				n := 0
				for {
					m, err := st.Next()
					if err != nil {
						errc <- fmt.Errorf("reader %d next: %w", r, err)
						return
					}
					if m == nil {
						break
					}
					n++
					roots := m.AtomsOf("root")
					leaves := m.AtomsOf("leaf")
					if len(roots) != 1 || len(leaves) != nLeaves {
						errc <- fmt.Errorf("reader %d ts %d: torn molecule: %d roots, %d leaves",
							r, ts, len(roots), len(leaves))
						st.Close()
						return
					}
					// Read every atom back at the cursor's snapshot
					// timestamp: all must exist and agree on "v".
					ra, ok := db.GetAtomAt("root", roots[0], ts)
					if !ok {
						errc <- fmt.Errorf("reader %d ts %d: root %s vanished from snapshot", r, ts, roots[0])
						st.Close()
						return
					}
					want := ra.Get(1)
					for _, l := range leaves {
						la, ok := db.GetAtomAt("leaf", l, ts)
						if !ok {
							errc <- fmt.Errorf("reader %d ts %d: leaf %s vanished from snapshot", r, ts, l)
							st.Close()
							return
						}
						if got := la.Get(1); !got.Equal(want) {
							errc <- fmt.Errorf("reader %d ts %d: version tear: root v=%s leaf v=%s",
								r, ts, want, got)
							st.Close()
							return
						}
					}
				}
				if err := st.Close(); err != nil {
					errc <- fmt.Errorf("reader %d close: %w", r, err)
					return
				}
				if n < seedMols {
					errc <- fmt.Errorf("reader %d ts %d: only %d molecules (>= %d seeded)", r, ts, n, seedMols)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	stopVacuum()
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// With no snapshots left alive, vacuum reaches a fixpoint.
	db.Vacuum()
	if st := db.Vacuum(); st.Reclaimed != 0 {
		t.Fatalf("vacuum not at fixpoint: %+v", st)
	}
}
