package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mad/internal/expr"
	"mad/internal/storage"
)

// Feedback is the per-database execution-feedback store: it closes the
// loop between the cost model's estimates and what executions actually
// observed. Four kinds of actuals are recorded:
//
//   - per cached plan, the observed *molecule-level* pass rate of every
//     residual conjunct (ResidualConjunct.Passed/Evals). Histograms only
//     know atom-level selectivities, and a molecule holds many atoms of a
//     type, so the per-molecule pass rate of an existential comparison is
//     systematically higher than the atom fraction — the observed rate
//     replaces the guess on subsequent compiles and executions, and the
//     residual chain re-ranks around it (EXPLAIN provenance [observed]);
//   - per cached plan, the observed *wall-clock evaluation cost* of
//     every residual conjunct (ns/eval, from ResidualConjunct.Nanos).
//     Once every conjunct of a chain carries one, ranking switches from
//     the static conjCost shape score to the measured cost (EXPLAIN
//     provenance [observed-cost]);
//   - per structure, the atoms actually fetched per root entering
//     derivation — calibrating derivCostPerRoot, the constant that
//     weights every access-path contest;
//   - per structure and interior entry type, the links actually climbed
//     per entry atom — calibrating the climb weight of interior-index
//     alternatives, which the model otherwise derives from fan statistics
//     by fiat.
//
// The store is epoch-aware: every read and write first compares the
// database's plan epoch against the epoch the observations were recorded
// at, and discards them all on mismatch. ANALYZE, schema or index DDL and
// auto-ANALYZE-on-drift therefore reset stale feedback exactly as they
// invalidate cached plans — observations never outlive the statistics
// regime they were made under.
type Feedback struct {
	mu    sync.Mutex
	db    *storage.Database
	epoch uint64
	// residuals: plan key → conjunct key → accumulated evals/passed.
	residuals map[string]map[string]*passObs
	// deriv: desc key → observed atoms fetched per root derived.
	deriv map[string]*ratioObs
	// climb: desc key + entry type → observed links climbed per entry.
	climb map[string]*ratioObs
	// topk: desc key → observed fraction of roots surviving the top-K
	// heap's bound prune (reaching derivation) on bounded ordered runs.
	topk map[string]*ratioObs
	// fixpoint: recursion-shape key (atom type, link, direction, depth) →
	// observed closure atoms per seed root — calibrating the AvgFan^depth
	// estimate the fixpoint entry contest is costed with.
	fixpoint map[string]*ratioObs
	// access: plan key → what the executed plan's chosen access path
	// actually returned (entry atoms, candidate roots). Keyed per cache
	// entry — the literals are part of the key, so the observation is an
	// exact replay of the same access, not an estimate. A recompile of
	// that entry overrides the matching candidate's cardinalities with
	// these figures, which is what lets the contest flip.
	access map[string]*accessObs
	// driftFactor is the estimate-vs-actual divergence ratio beyond
	// which an execution marks its cache entry stale for a targeted
	// recompile (defaultDriftFactor until SetDriftFactor overrides).
	driftFactor float64

	records, resets, drifts uint64
}

// defaultDriftFactor: a plan whose observed cardinalities diverge from
// the compile-time estimate by more than this ratio (either direction)
// triggers a targeted recompile of just its cache entry.
const defaultDriftFactor = 4.0

// accessObs records what one cache entry's chosen access path actually
// did: its kind and entry identity (to match the candidate on
// recompile), and the averaged entry-atom and candidate-root counts.
type accessObs struct {
	kind      AccessKind
	ranged    bool
	entryType string
	attr      string
	entries   ratioObs
	roots     ratioObs
}

// accessSnapshot is the lock-free copy accessObserved hands the contest.
type accessSnapshot struct {
	kind      AccessKind
	ranged    bool
	entryType string
	attr      string
	entries   float64
	roots     float64
}

// feedbackLimit bounds the number of plans with residual observations,
// mirroring the plan cache's entry bound for the same ad-hoc churn.
const feedbackLimit = cacheLimit

// passObs accumulates molecule-level evaluations of one residual
// conjunct: the pass-rate sample (evals/passed, only from executions
// where the conjunct saw every derived molecule) and the wall-clock
// cost sample (costEvals/nanos, from every execution that evaluated the
// conjunct at all — cost per evaluation is not biased by short-circuit
// position the way the pass rate is).
type passObs struct {
	evals, passed    int64
	costEvals, nanos int64
}

// ratioObs accumulates a work-per-unit observation (atoms per root, links
// per entry) over executions.
type ratioObs struct {
	sum float64
	n   int64
}

func (r *ratioObs) avg() float64 { return r.sum / float64(r.n) }

// feedbacks is the per-database registry behind FeedbackFor, released
// together with the plan cache by Release.
var (
	feedbacksMu sync.Mutex
	feedbacks   = make(map[*storage.Database]*Feedback)
)

// FeedbackFor returns the execution-feedback store shared by every
// session over db, creating it on first use. Registration is opt-in:
// CacheFor creates the store alongside the plan cache (so every MQL
// session learns automatically), while direct plan.Compile/Execute
// callers stay unregistered until they ask — compiling a plan against a
// short-lived database must not pin it in a process-wide registry (the
// leak class PR 3's Release fixed for the cache). Release(db) drops the
// store with the cache.
func FeedbackFor(db *storage.Database) *Feedback {
	feedbacksMu.Lock()
	defer feedbacksMu.Unlock()
	fb, ok := feedbacks[db]
	if !ok {
		fb = newFeedback(db)
		feedbacks[db] = fb
	}
	return fb
}

// feedbackLookup returns the database's feedback store without creating
// or registering one — the compile/execute side goes through this, so
// the loop only runs for databases that opted in (CacheFor or an
// explicit FeedbackFor). Every Feedback method tolerates a nil receiver
// as "no observations".
func feedbackLookup(db *storage.Database) *Feedback {
	feedbacksMu.Lock()
	defer feedbacksMu.Unlock()
	return feedbacks[db]
}

func newFeedback(db *storage.Database) *Feedback {
	return &Feedback{
		db:          db,
		epoch:       db.PlanEpoch(),
		residuals:   make(map[string]map[string]*passObs),
		deriv:       make(map[string]*ratioObs),
		climb:       make(map[string]*ratioObs),
		topk:        make(map[string]*ratioObs),
		fixpoint:    make(map[string]*ratioObs),
		access:      make(map[string]*accessObs),
		driftFactor: defaultDriftFactor,
	}
}

// SetDriftFactor overrides the estimate-vs-actual divergence ratio that
// triggers a targeted recompile; f <= 1 restores the default.
func (fb *Feedback) SetDriftFactor(f float64) {
	if fb == nil {
		return
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if f <= 1 {
		f = defaultDriftFactor
	}
	fb.driftFactor = f
}

// Drifts reports how many executions detected feedback drift beyond the
// factor and requested a targeted recompile of their cache entry.
func (fb *Feedback) Drifts() uint64 {
	if fb == nil {
		return 0
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.drifts
}

// syncEpochLocked drops every observation recorded under an older plan
// epoch; callers hold fb.mu.
func (fb *Feedback) syncEpochLocked() {
	epoch := fb.db.PlanEpoch()
	if epoch == fb.epoch {
		return
	}
	if len(fb.residuals) > 0 || len(fb.deriv) > 0 || len(fb.climb) > 0 || len(fb.topk) > 0 || len(fb.fixpoint) > 0 || len(fb.access) > 0 {
		fb.resets++
	}
	fb.epoch = epoch
	fb.residuals = make(map[string]map[string]*passObs)
	fb.deriv = make(map[string]*ratioObs)
	fb.climb = make(map[string]*ratioObs)
	fb.topk = make(map[string]*ratioObs)
	fb.fixpoint = make(map[string]*ratioObs)
	fb.access = make(map[string]*accessObs)
}

// Reset unconditionally discards every observation — test and experiment
// hook for re-running a workload from a cold feedback state.
func (fb *Feedback) Reset() {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.residuals = make(map[string]map[string]*passObs)
	fb.deriv = make(map[string]*ratioObs)
	fb.climb = make(map[string]*ratioObs)
	fb.topk = make(map[string]*ratioObs)
	fb.fixpoint = make(map[string]*ratioObs)
	fb.access = make(map[string]*accessObs)
	fb.epoch = fb.db.PlanEpoch()
}

// Counters reports feedback traffic: executions recorded and epoch-driven
// resets (ANALYZE/DDL invalidating the observations).
func (fb *Feedback) Counters() (records, resets uint64) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.records, fb.resets
}

// Len returns the number of plans with recorded residual observations.
func (fb *Feedback) Len() int {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.syncEpochLocked()
	return len(fb.residuals)
}

// conjKey canonically encodes one residual conjunct for the observation
// map — the same encoding the plan cache keys predicates with.
func conjKey(c expr.Expr) string {
	var b strings.Builder
	appendExprKey(&b, c)
	return b.String()
}

// record folds an executed plan's actuals into the store: residual pass
// rates under the plan's key, derivation work under the structure's key,
// climb work under the structure + entry type, and the chosen access
// path's observed cardinalities under the plan's key. Called by Execute
// after a successful run; executions of plans compiled under an older
// epoch are discarded rather than recorded — their pass rates and work
// figures belong to the statistics regime ANALYZE/DDL just replaced.
//
// When the observed cardinalities diverge from the compile-time
// estimates beyond the drift factor, just this plan's cache entry is
// marked stale — the next fetch recompiles it against the recorded
// observations and the contest can flip the access path, with no
// epoch-wide cache flush and no feedback reset.
func (fb *Feedback) record(p *Plan, work storage.WorkTally) {
	if fb == nil {
		return
	}
	if fb.recordLocked(p, work) {
		// The drift-triggered staleness mark runs outside fb.mu: the
		// cache registry and entry locks nest the other way on the
		// compile path.
		if c := cacheLookup(fb.db); c != nil {
			c.markStale(p.key)
		}
	}
}

// recordLocked does record's bookkeeping under fb.mu and reports whether
// the execution drifted far enough from its estimates to request a
// targeted recompile of its cache entry.
func (fb *Feedback) recordLocked(p *Plan, work storage.WorkTally) (drifted bool) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.syncEpochLocked()
	if p.epoch != fb.epoch {
		return false
	}
	fb.records++
	if len(p.Residuals) > 0 && p.Derived > 0 {
		obs := fb.residuals[p.key]
		if obs == nil {
			// Bound the store like the plan cache bounds compilations: a
			// long-running process executing endless distinct ad-hoc
			// predicates must not grow fb.residuals without limit between
			// epoch bumps. Eviction is random-replacement (Go's map
			// iteration order) — observations are cheap to relearn, so
			// LRU machinery is not worth carrying here.
			if len(fb.residuals) >= feedbackLimit {
				for k := range fb.residuals {
					delete(fb.residuals, k)
					break
				}
			}
			obs = make(map[string]*passObs)
			fb.residuals[p.key] = obs
		}
		for i := range p.Residuals {
			r := &p.Residuals[i]
			if r.Evals <= 0 {
				continue
			}
			o := obs[r.key]
			if o == nil {
				o = &passObs{}
				obs[r.key] = o
			}
			// The wall-clock cost sample folds in from every execution
			// that evaluated the conjunct: cost per evaluation is a
			// property of the conjunct's shape and the molecule sizes,
			// not of which molecules survived the earlier conjuncts.
			if r.Nanos > 0 {
				o.costEvals += int64(r.Evals)
				o.nanos += r.Nanos
			}
			// The pass rate stores only unconditional samples: a conjunct
			// behind a short-circuit cut saw just the earlier conjuncts'
			// survivors, and folding that conditional rate into the store
			// would let correlated conjuncts lock in or oscillate a wrong
			// order (two mutually exclusive 50% conjuncts would drive
			// each other's "selectivity" to zero). Evals == Derived means
			// the conjunct was evaluated on every derived molecule, so
			// the measured rate is its true molecule-level selectivity.
			if r.Evals != p.Derived {
				continue
			}
			o.evals += int64(r.Evals)
			o.passed += int64(r.Passed)
		}
	}
	// The per-root derivation figure is keyed by structure so every
	// predicate over it benefits — but that is only sound when every
	// root derived in full. A pushdown hook that cut molecules makes
	// the measured atoms/root predicate-specific (a selective prune
	// would teach the contest that derivation is near-free), so such
	// executions do not contribute; the top-K bound prune biases the
	// figure the same way, so bounded ordered runs are excluded too.
	cut := 0
	for i := range p.Pushdowns {
		cut += p.Pushdowns[i].Cut
	}
	if p.Access.ActRoots > 0 && work.AtomsFetched > 0 && cut == 0 && p.OrderCut == 0 {
		dk := p.desc.String()
		o := fb.deriv[dk]
		if o == nil {
			o = &ratioObs{}
			fb.deriv[dk] = o
		}
		o.sum += float64(work.AtomsFetched) / float64(p.Access.ActRoots)
		o.n++
	}
	if p.Access.Kind == InteriorIndex && p.Access.ActEntries > 0 && p.Access.ActClimb > 0 {
		ck := p.desc.String() + "\x00" + p.Access.EntryType
		o := fb.climb[ck]
		if o == nil {
			o = &ratioObs{}
			fb.climb[ck] = o
		}
		o.sum += float64(p.Access.ActClimb) / float64(p.Access.ActEntries)
		o.n++
	}
	// Bound-prune survival: what fraction of the root batch a bounded
	// ordered run actually derived. Keyed by structure — the fraction
	// mostly reflects K against the batch size and the key distribution,
	// and it is what lets the contest prefer the heap path (cheap when
	// survival is tiny) over an index ride on later compiles.
	if p.OrderPath == OrderTopK && p.Access.ActRoots > 0 {
		dk := p.desc.String()
		o := fb.topk[dk]
		if o == nil {
			o = &ratioObs{}
			fb.topk[dk] = o
		}
		o.sum += float64(p.Access.ActRoots-p.OrderCut) / float64(p.Access.ActRoots)
		o.n++
	}
	// Access-path observation + drift detection, for the paths whose
	// cardinalities are genuinely estimated (a full or ordered scan's
	// batch size is the container itself — nothing to calibrate).
	switch p.Access.Kind {
	case IndexScan, InteriorIndex, IndexIntersect:
	default:
		return false
	}
	if p.key == "" {
		return false
	}
	o := fb.access[p.key]
	if o == nil {
		if len(fb.access) >= feedbackLimit {
			for k := range fb.access {
				delete(fb.access, k)
				break
			}
		}
		o = &accessObs{}
		fb.access[p.key] = o
	}
	o.kind = p.Access.Kind
	o.ranged = p.Access.Ranged
	o.entryType = p.Access.EntryType
	o.attr = p.Access.Attr
	o.entries.sum += float64(p.Access.ActEntries)
	o.entries.n++
	o.roots.sum += float64(p.Access.ActSurvivors)
	o.roots.n++
	// Drift: estimate vs actual beyond the factor in either direction,
	// on the entry-atom count and the post-filter root count.
	ratio := func(est, act int) float64 {
		e, a := float64(max(est, 1)), float64(max(act, 1))
		if e > a {
			return e / a
		}
		return a / e
	}
	drift := ratio(p.Access.EstRoots, p.Access.ActRoots)
	if p.Access.EstEntries > 0 {
		if r := ratio(p.Access.EstEntries, p.Access.ActEntries); r > drift {
			drift = r
		}
	}
	if drift > fb.driftFactor {
		fb.drifts++
		return true
	}
	return false
}

// recordFixpoint folds one complete fixpoint execution's observed
// closure size (atoms per seed root) into the store under the recursion
// shape's key. Truncated or cancelled runs must not record — they saw a
// biased prefix of the closure.
func (fb *Feedback) recordFixpoint(p *FixpointPlan, key string, atomsPerRoot float64) {
	if fb == nil {
		return
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.syncEpochLocked()
	if p.epoch != fb.epoch {
		return
	}
	fb.records++
	o := fb.fixpoint[key]
	if o == nil {
		if len(fb.fixpoint) >= feedbackLimit {
			for k := range fb.fixpoint {
				delete(fb.fixpoint, k)
				break
			}
		}
		o = &ratioObs{}
		fb.fixpoint[key] = o
	}
	o.sum += atomsPerRoot
	o.n++
}

// fixpointObserved returns the observed closure atoms per seed root for
// the recursion shape, ok=false before any complete run recorded one.
func (fb *Feedback) fixpointObserved(key string) (float64, bool) {
	if fb == nil {
		return 0, false
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.syncEpochLocked()
	o := fb.fixpoint[key]
	if o == nil || o.n == 0 {
		return 0, false
	}
	return o.avg(), true
}

// observeResiduals overwrites the estimated selectivity of every
// residual conjunct that has recorded observations with its observed
// molecule-level pass rate (provenance SrcObserved), fills in the
// observed per-eval cost where one was measured, and reports whether
// anything changed. Callers re-rank the chain afterwards; both Compile
// (fresh plans) and Stream/Execute (cached clones, which may predate
// the observations) go through here, so a mis-ranked chain is corrected
// by the second execution at the latest.
func (fb *Feedback) observeResiduals(p *Plan) bool {
	if fb == nil || len(p.Residuals) == 0 {
		return false
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.syncEpochLocked()
	if p.epoch != fb.epoch {
		// A plan compiled under an older statistics regime keeps its
		// compile-time order; the cache has already stopped handing it
		// out, so this only affects callers holding stale plans.
		return false
	}
	obs := fb.residuals[p.key]
	if obs == nil {
		return false
	}
	changed := false
	for i := range p.Residuals {
		r := &p.Residuals[i]
		o := obs[r.key]
		if o == nil {
			continue
		}
		if o.evals > 0 {
			r.Sel = clampSel(float64(o.passed) / float64(o.evals))
			r.Source = SrcObserved
			changed = true
		}
		if o.costEvals > 0 {
			r.ObsCost = float64(o.nanos) / float64(o.costEvals)
			if r.ObsCost < 1 {
				// Clock-resolution floor: an observed cost must stay
				// positive, or rankResiduals would fall back to the
				// static score for the whole chain.
				r.ObsCost = 1
			}
			changed = true
		}
	}
	return changed
}

// accessObserved returns what executions of this exact cache entry
// observed about the chosen access path, ok=false before any execution
// recorded one. The contest overrides the matching candidate's
// cardinalities with the snapshot on recompile.
func (fb *Feedback) accessObserved(planKey string) (accessSnapshot, bool) {
	if fb == nil || planKey == "" {
		return accessSnapshot{}, false
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.syncEpochLocked()
	o := fb.access[planKey]
	if o == nil || o.roots.n == 0 {
		return accessSnapshot{}, false
	}
	return accessSnapshot{
		kind:      o.kind,
		ranged:    o.ranged,
		entryType: o.entryType,
		attr:      o.attr,
		entries:   o.entries.avg(),
		roots:     o.roots.avg(),
	}, true
}

// derivCostObserved returns the observed atoms-per-root derivation cost
// for the structure, ok=false before any execution recorded one.
func (fb *Feedback) derivCostObserved(descKey string) (float64, bool) {
	if fb == nil {
		return 0, false
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.syncEpochLocked()
	o := fb.deriv[descKey]
	if o == nil || o.n == 0 {
		return 0, false
	}
	return o.avg(), true
}

// climbObserved returns the observed links-per-entry climb cost for the
// structure's interior entry at entryType, ok=false before any execution
// recorded one.
func (fb *Feedback) climbObserved(descKey, entryType string) (float64, bool) {
	if fb == nil {
		return 0, false
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.syncEpochLocked()
	o := fb.climb[descKey+"\x00"+entryType]
	if o == nil || o.n == 0 {
		return 0, false
	}
	return o.avg(), true
}

// topkObserved returns the observed fraction of roots surviving the
// top-K bound prune for the structure, ok=false before any bounded
// ordered execution recorded one.
func (fb *Feedback) topkObserved(descKey string) (float64, bool) {
	if fb == nil {
		return 0, false
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.syncEpochLocked()
	o := fb.topk[descKey]
	if o == nil || o.n == 0 {
		return 0, false
	}
	return o.avg(), true
}

// Render lists the store's observations — the SHOW FEEDBACK output.
func (fb *Feedback) Render() string {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.syncEpochLocked()
	var b strings.Builder
	fmt.Fprintf(&b, "feedback epoch %d: %d plan(s) observed, %d execution(s) recorded, %d reset(s)\n",
		fb.epoch, len(fb.residuals), fb.records, fb.resets)
	if fb.drifts > 0 {
		fmt.Fprintf(&b, "drift: %d targeted recompile(s) requested (factor %.1f) [recompiled]\n",
			fb.drifts, fb.driftFactor)
	}
	for _, dk := range sortedKeys(fb.deriv) {
		o := fb.deriv[dk]
		fmt.Fprintf(&b, "derive %s: ≈%.1f atoms/root over %d run(s) [observed]\n", dk, o.avg(), o.n)
	}
	for _, ck := range sortedKeys(fb.climb) {
		o := fb.climb[ck]
		parts := strings.SplitN(ck, "\x00", 2)
		fmt.Fprintf(&b, "climb %s entry %s: ≈%.1f links/entry over %d run(s) [observed]\n",
			parts[0], parts[1], o.avg(), o.n)
	}
	for _, tk := range sortedKeys(fb.topk) {
		o := fb.topk[tk]
		fmt.Fprintf(&b, "top-k %s: ≈%.2f of roots survive the bound over %d run(s) [observed]\n",
			tk, o.avg(), o.n)
	}
	for _, fk := range sortedKeys(fb.fixpoint) {
		o := fb.fixpoint[fk]
		parts := strings.Split(fk, "\x00")
		fmt.Fprintf(&b, "fixpoint %s ⟲ %s (%s, depth %s): ≈%.1f atoms/root over %d run(s) [observed]\n",
			parts[0], parts[1], parts[2], parts[3], o.avg(), o.n)
	}
	return b.String()
}

// sortedKeys returns the map's keys in ascending order for deterministic
// rendering.
func sortedKeys(m map[string]*ratioObs) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// releaseFeedback drops the database's feedback store from the registry;
// called by Release together with the plan cache.
func releaseFeedback(db *storage.Database) {
	feedbacksMu.Lock()
	defer feedbacksMu.Unlock()
	delete(feedbacks, db)
}
