package plan

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// Plan-cache warmth: alongside the feedback observations, a checkpoint
// persists the *shapes* of the cached plans — structure, predicate,
// order — as a small JSON file. On Open the shapes precompile through
// the plan cache, so a restarted server answers its first queries off
// warm plans costed against the freshly loaded feedback instead of
// paying a cold compile per statement. Only what is needed to replay
// the compile is saved; the compiled plans themselves are rebuilt, so
// they always reflect the recovered database's statistics and indexes.
//
// Shape-keyed (PREPARE'd) entries are skipped: their cache identity is
// the placeholder-canonicalized predicate, which the next PREPARE
// recreates anyway, and persisting one binding's literals under the
// shape key would warm the wrong plan.

// planCacheFile names the persisted plan shapes inside a database
// directory.
const planCacheFile = "plancache.json"

// persistedValue is a model.Value image for JSON.
type persistedValue struct {
	Kind string  `json:"kind"` // "null" "bool" "int" "float" "string" "id"
	B    bool    `json:"b,omitempty"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
}

func encodeValue(v model.Value) *persistedValue {
	switch v.Kind() {
	case model.KBool:
		b, _ := v.AsBool()
		return &persistedValue{Kind: "bool", B: b}
	case model.KInt:
		i, _ := v.AsInt()
		return &persistedValue{Kind: "int", I: i}
	case model.KFloat:
		f, _ := v.AsFloat()
		return &persistedValue{Kind: "float", F: f}
	case model.KString:
		s, _ := v.AsString()
		return &persistedValue{Kind: "string", S: s}
	case model.KID:
		id, _ := v.AsID()
		return &persistedValue{Kind: "id", I: int64(id)}
	default:
		return &persistedValue{Kind: "null"}
	}
}

func (p *persistedValue) decode() (model.Value, error) {
	switch p.Kind {
	case "null":
		return model.Null(), nil
	case "bool":
		return model.Bool(p.B), nil
	case "int":
		return model.Int(p.I), nil
	case "float":
		return model.Float(p.F), nil
	case "string":
		return model.Str(p.S), nil
	case "id":
		return model.ID(model.AtomID(p.I)), nil
	default:
		return model.Null(), fmt.Errorf("plan: unknown persisted value kind %q", p.Kind)
	}
}

// persistedExpr is one qualification-formula node for JSON. Node selects
// the expr type; the other fields are populated per node kind.
type persistedExpr struct {
	Node string           `json:"node"`
	Op   uint8            `json:"op,omitempty"`
	Type string           `json:"type,omitempty"`
	Name string           `json:"name,omitempty"`
	V    *persistedValue  `json:"v,omitempty"`
	L    *persistedExpr   `json:"l,omitempty"`
	R    *persistedExpr   `json:"r,omitempty"`
	Args []*persistedExpr `json:"args,omitempty"`
}

// encodeExpr images e for JSON; ok is false on a node kind the codec
// does not know (the whole entry is then skipped rather than persisted
// lossily).
func encodeExpr(e expr.Expr) (*persistedExpr, bool) {
	if e == nil {
		return nil, true
	}
	switch n := e.(type) {
	case expr.Const:
		return &persistedExpr{Node: "const", V: encodeValue(n.V)}, true
	case expr.Attr:
		return &persistedExpr{Node: "attr", Type: n.Type, Name: n.Name}, true
	case expr.Cmp:
		l, ok1 := encodeExpr(n.L)
		r, ok2 := encodeExpr(n.R)
		return &persistedExpr{Node: "cmp", Op: uint8(n.Op), L: l, R: r}, ok1 && ok2
	case expr.And:
		l, ok1 := encodeExpr(n.L)
		r, ok2 := encodeExpr(n.R)
		return &persistedExpr{Node: "and", L: l, R: r}, ok1 && ok2
	case expr.Or:
		l, ok1 := encodeExpr(n.L)
		r, ok2 := encodeExpr(n.R)
		return &persistedExpr{Node: "or", L: l, R: r}, ok1 && ok2
	case expr.Not:
		l, ok := encodeExpr(n.E)
		return &persistedExpr{Node: "not", L: l}, ok
	case expr.Arith:
		l, ok1 := encodeExpr(n.L)
		r, ok2 := encodeExpr(n.R)
		return &persistedExpr{Node: "arith", Op: uint8(n.Op), L: l, R: r}, ok1 && ok2
	case expr.Exists:
		return &persistedExpr{Node: "exists", Type: n.Type}, true
	case expr.CountOf:
		return &persistedExpr{Node: "countof", Type: n.Type}, true
	case expr.All:
		r, ok := encodeExpr(n.R)
		return &persistedExpr{Node: "all", Op: uint8(n.Op), Type: n.Attr.Type, Name: n.Attr.Name, R: r}, ok
	case expr.Func:
		out := &persistedExpr{Node: "func", Name: n.Name}
		for _, a := range n.Args {
			pa, ok := encodeExpr(a)
			if !ok {
				return nil, false
			}
			out.Args = append(out.Args, pa)
		}
		return out, true
	default:
		return nil, false
	}
}

func (p *persistedExpr) decode() (expr.Expr, error) {
	if p == nil {
		return nil, nil
	}
	dec2 := func() (expr.Expr, expr.Expr, error) {
		l, err := p.L.decode()
		if err != nil {
			return nil, nil, err
		}
		r, err := p.R.decode()
		return l, r, err
	}
	switch p.Node {
	case "const":
		if p.V == nil {
			return nil, fmt.Errorf("plan: persisted const without value")
		}
		v, err := p.V.decode()
		if err != nil {
			return nil, err
		}
		return expr.Lit(v), nil
	case "attr":
		return expr.Attr{Type: p.Type, Name: p.Name}, nil
	case "cmp":
		l, r, err := dec2()
		if err != nil {
			return nil, err
		}
		return expr.Cmp{Op: expr.CmpOp(p.Op), L: l, R: r}, nil
	case "and":
		l, r, err := dec2()
		if err != nil {
			return nil, err
		}
		return expr.And{L: l, R: r}, nil
	case "or":
		l, r, err := dec2()
		if err != nil {
			return nil, err
		}
		return expr.Or{L: l, R: r}, nil
	case "not":
		l, err := p.L.decode()
		if err != nil {
			return nil, err
		}
		return expr.Not{E: l}, nil
	case "arith":
		l, r, err := dec2()
		if err != nil {
			return nil, err
		}
		return expr.Arith{Op: expr.ArithOp(p.Op), L: l, R: r}, nil
	case "exists":
		return expr.Exists{Type: p.Type}, nil
	case "countof":
		return expr.CountOf{Type: p.Type}, nil
	case "all":
		r, err := p.R.decode()
		if err != nil {
			return nil, err
		}
		return expr.All{Attr: expr.Attr{Type: p.Type, Name: p.Name}, Op: expr.CmpOp(p.Op), R: r}, nil
	case "func":
		out := expr.Func{Name: p.Name, Args: make([]expr.Expr, len(p.Args))}
		for i, a := range p.Args {
			e, err := a.decode()
			if err != nil {
				return nil, err
			}
			out.Args[i] = e
		}
		return out, nil
	default:
		return nil, fmt.Errorf("plan: unknown persisted expr node %q", p.Node)
	}
}

// persistedEdge mirrors core.DirectedLink for JSON.
type persistedEdge struct {
	Link string `json:"link"`
	From string `json:"from"`
	To   string `json:"to"`
}

// persistedShape is everything needed to replay one cached compile.
type persistedShape struct {
	Types []string        `json:"types"`
	Edges []persistedEdge `json:"edges,omitempty"`
	Pred  *persistedExpr  `json:"pred,omitempty"`
	Order *OrderBy        `json:"order,omitempty"`
}

// persistedCache is the on-disk image of a plan cache's shapes.
type persistedCache struct {
	Version int              `json:"version"`
	Shapes  []persistedShape `json:"shapes,omitempty"`
}

// SaveCacheShapes writes the shapes of db's cached plans into dir
// (atomically: temp file + rename), most recently used first. A database
// with no cache — or a cache holding only shape-keyed entries — writes
// an empty image, so a stale file never warms plans the cache has since
// evicted.
func SaveCacheShapes(db *storage.Database, dir string) error {
	c := cacheLookup(db)
	if c == nil {
		return nil
	}
	img := persistedCache{Version: 1}
	c.mu.Lock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if e.shaped {
			continue
		}
		p := e.plan
		pred, ok := encodeExpr(p.pred)
		if !ok {
			continue
		}
		shape := persistedShape{Types: p.desc.Types(), Pred: pred}
		for _, dl := range p.desc.Edges() {
			shape.Edges = append(shape.Edges, persistedEdge{Link: dl.Link, From: dl.From, To: dl.To})
		}
		if p.Order != nil {
			o := *p.Order
			shape.Order = &o
		}
		img.Shapes = append(img.Shapes, shape)
	}
	c.mu.Unlock()

	data, err := json.Marshal(&img)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, planCacheFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// WarmCache precompiles the plan shapes persisted in dir into db's plan
// cache (creating it). A missing file is not an error — the cache simply
// starts cold; a corrupt file is, mirroring LoadFeedback. A shape that no
// longer compiles (the schema moved underneath it) is skipped: warmth is
// an optimization, not a correctness property. Returns how many plans
// were warmed.
func WarmCache(db *storage.Database, dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, planCacheFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var img persistedCache
	if err := json.Unmarshal(data, &img); err != nil {
		return 0, fmt.Errorf("plan: corrupt plan-cache file: %w", err)
	}
	if img.Version != 1 {
		return 0, fmt.Errorf("plan: unsupported plan-cache file version %d", img.Version)
	}
	c := CacheFor(db)
	warmed := 0
	// The file lists entries most recently used first; compile in reverse
	// so the hottest shape ends up at the front of the warmed LRU.
	for i := len(img.Shapes) - 1; i >= 0; i-- {
		s := img.Shapes[i]
		edges := make([]core.DirectedLink, len(s.Edges))
		for j, e := range s.Edges {
			edges[j] = core.DirectedLink{Link: e.Link, From: e.From, To: e.To}
		}
		desc, err := core.NewDesc(db, s.Types, edges)
		if err != nil {
			continue
		}
		pred, err := s.Pred.decode()
		if err != nil {
			continue
		}
		if _, _, err := c.CompileOrdered(desc, pred, s.Order); err != nil {
			continue
		}
		warmed++
	}
	return warmed, nil
}
