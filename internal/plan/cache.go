package plan

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/storage"
)

// cacheLimit bounds a cache's entry count; the least recently used entry
// is evicted first, so hot named-molecule plans survive ad-hoc structure
// churn. Named molecule types are few — the bound exists only to keep
// the churn from growing the cache without end.
const cacheLimit = 256

// Cache memoizes compiled plans per database, keyed by the structure
// description and the predicate rendering. Entries carry the database's
// plan epoch at compile time; a lookup whose epoch no longer matches
// (index DDL, schema DDL or ANALYZE happened since) recompiles, so a
// cached plan never outlives the statistics and access paths it was
// costed against. Get hands out clones: concurrent sessions each execute
// their own copy while sharing the compile work.
type Cache struct {
	mu      sync.Mutex
	db      *storage.Database
	entries map[string]*list.Element
	lru     *list.List // cacheEntry values, most recently used at front

	hits, misses, compiles uint64
}

type cacheEntry struct {
	key   string
	epoch uint64
	plan  *Plan
}

// caches is the per-database cache registry behind CacheFor.
var (
	cachesMu sync.Mutex
	caches   = make(map[*storage.Database]*Cache)
)

// CacheFor returns the plan cache shared by every session over db,
// creating it on first use. Creating the cache also registers the
// database's execution-feedback store, so every session that plans
// through the cache learns from its executions automatically.
func CacheFor(db *storage.Database) *Cache {
	cachesMu.Lock()
	defer cachesMu.Unlock()
	c, ok := caches[db]
	if !ok {
		c = &Cache{db: db, entries: make(map[string]*list.Element), lru: list.New()}
		caches[db] = c
		// Register the feedback store while still holding cachesMu: a
		// concurrent Release must never run between the two insertions,
		// or it would miss the feedback entry and leave it pinning the
		// database forever. (feedbacksMu nests under cachesMu here and
		// is never taken the other way around.)
		FeedbackFor(db)
	}
	return c
}

// Release drops the database's cache and execution-feedback store from
// their registries. Call it when a database goes out of use — the
// registries otherwise pin both structures and the database for the life
// of the process. A later CacheFor/FeedbackFor on the same database
// simply starts cold.
func Release(db *storage.Database) {
	cachesMu.Lock()
	delete(caches, db)
	cachesMu.Unlock()
	releaseFeedback(db)
}

// cacheKey identifies a plan: the structure rendering (memoized by Desc)
// plus a canonical predicate encoding. Both are canonical for plan
// purposes — two descs rendering alike derive identically, and the
// planner only inspects predicate structure. The predicate encoding is
// hand-rolled because it runs on every statement: expr.String's
// fmt-based rendering would cost more than the compile it saves.
func cacheKey(desc *core.Desc, pred expr.Expr, order *OrderBy) string {
	if pred == nil && order == nil {
		return desc.String()
	}
	var b strings.Builder
	b.Grow(len(desc.String()) + 64)
	b.WriteString(desc.String())
	if pred != nil {
		b.WriteByte(0)
		appendExprKey(&b, pred)
	}
	if order != nil {
		// \x04 cannot open a predicate encoding, so ordered and
		// unordered keys over the same predicate never collide.
		b.WriteByte(4)
		if order.Desc {
			b.WriteByte('v')
		} else {
			b.WriteByte('^')
		}
		b.WriteString(order.Attr)
	}
	return b.String()
}

// appendExprKey writes a canonical, collision-free encoding of e: every
// node is tagged, fields are separated by unprintable bytes that cannot
// occur inside identifiers.
func appendExprKey(b *strings.Builder, e expr.Expr) {
	switch n := e.(type) {
	case expr.Const:
		b.WriteByte('c')
		b.WriteString(n.V.String())
	case expr.Attr:
		b.WriteByte('a')
		b.WriteString(n.Type)
		b.WriteByte(1)
		b.WriteString(n.Name)
	case expr.Cmp:
		b.WriteByte('=')
		b.WriteByte(byte(n.Op))
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.And:
		b.WriteByte('&')
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Or:
		b.WriteByte('|')
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Not:
		b.WriteByte('!')
		appendExprKey(b, n.E)
	case expr.Arith:
		b.WriteByte('+')
		b.WriteByte(byte(n.Op))
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Exists:
		b.WriteByte('e')
		b.WriteString(n.Type)
	case expr.CountOf:
		b.WriteByte('#')
		b.WriteString(n.Type)
	case expr.All:
		b.WriteByte('A')
		b.WriteByte(byte(n.Op))
		appendExprKey(b, n.Attr)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Func:
		b.WriteByte('f')
		b.WriteString(n.Name)
		b.WriteByte(1)
		b.WriteString(strconv.Itoa(len(n.Args)))
		for _, a := range n.Args {
			b.WriteByte(2)
			appendExprKey(b, a)
		}
	default:
		// Unknown node kinds fall back to the rendered form.
		b.WriteByte('?')
		b.WriteString(e.String())
	}
	b.WriteByte(3)
}

// Compile returns a plan for deriving desc under pred, reusing the cached
// compilation when the database's plan epoch still matches; cached
// reports whether recompilation was skipped. The returned plan is always
// a private clone with fresh actuals — callers Execute it freely.
func (c *Cache) Compile(desc *core.Desc, pred expr.Expr) (p *Plan, cached bool, err error) {
	return c.CompileOrdered(desc, pred, nil)
}

// CompileOrdered is Compile with an ORDER BY on a root attribute; the
// order is part of the cache identity, so ordered and unordered plans
// over the same predicate are memoized independently.
func (c *Cache) CompileOrdered(desc *core.Desc, pred expr.Expr, order *OrderBy) (p *Plan, cached bool, err error) {
	key := cacheKey(desc, pred, order)
	epoch := c.db.PlanEpoch()

	c.mu.Lock()
	if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry).epoch == epoch {
		c.hits++
		c.lru.MoveToFront(el) // LRU: a hit renews the entry
		p := el.Value.(*cacheEntry).plan.clone()
		c.mu.Unlock()
		// The cached compilation may predate executions that recorded
		// observed pass rates; re-rank the clone so a compile-only
		// EXPLAIN shows the chain Execute will actually run.
		p.applyFeedback(feedbackLookup(c.db))
		return p, true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Compile outside the cache lock: compilation reads the database and
	// may be slow; worst case two sessions race and both store equivalent
	// plans.
	fresh, err := compileKeyed(c.db, desc, pred, order, key)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	c.compiles++
	if el, exists := c.entries[key]; exists {
		e := el.Value.(*cacheEntry)
		e.epoch, e.plan = epoch, fresh
		c.lru.MoveToFront(el)
	} else {
		if c.lru.Len() >= cacheLimit {
			// Evict the least recently used entry.
			back := c.lru.Back()
			delete(c.entries, back.Value.(*cacheEntry).key)
			c.lru.Remove(back)
		}
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, epoch: epoch, plan: fresh})
	}
	p = fresh.clone()
	c.mu.Unlock()
	return p, false, nil
}

// Counters reports cache traffic: lookups served from cache, lookups
// that missed (cold or invalidated), and plans actually compiled — the
// compile-count probe tests and experiments assert against.
func (c *Cache) Counters() (hits, misses, compiles uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.compiles
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// clone copies the plan with private pushdown and residual slices and
// zeroed actuals, so executions of the same cached compilation never
// share mutable state. The Alternatives and UpPath slices stay shared —
// they are compile-time provenance and never mutated after compilation.
func (p *Plan) clone() *Plan {
	q := *p
	q.Pushdowns = append([]Pushdown(nil), p.Pushdowns...)
	q.Residuals = append([]ResidualConjunct(nil), p.Residuals...)
	if p.Order != nil {
		o := *p.Order
		q.Order = &o
	}
	q.resetActuals()
	return &q
}
