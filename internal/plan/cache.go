package plan

import (
	"strconv"
	"strings"
	"sync"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/storage"
)

// cacheLimit bounds a cache's entry count; the oldest entries are evicted
// first. Named molecule types are few, so the bound exists only to keep
// ad-hoc structure churn from growing the cache without end.
const cacheLimit = 256

// Cache memoizes compiled plans per database, keyed by the structure
// description and the predicate rendering. Entries carry the database's
// plan epoch at compile time; a lookup whose epoch no longer matches
// (index DDL, schema DDL or ANALYZE happened since) recompiles, so a
// cached plan never outlives the statistics and access paths it was
// costed against. Get hands out clones: concurrent sessions each execute
// their own copy while sharing the compile work.
type Cache struct {
	mu      sync.Mutex
	db      *storage.Database
	entries map[string]*cacheEntry
	order   []string // insertion order, for FIFO eviction

	hits, misses, compiles uint64
}

type cacheEntry struct {
	epoch uint64
	plan  *Plan
}

// caches is the per-database cache registry behind CacheFor.
var (
	cachesMu sync.Mutex
	caches   = make(map[*storage.Database]*Cache)
)

// CacheFor returns the plan cache shared by every session over db,
// creating it on first use.
func CacheFor(db *storage.Database) *Cache {
	cachesMu.Lock()
	defer cachesMu.Unlock()
	c, ok := caches[db]
	if !ok {
		c = &Cache{db: db, entries: make(map[string]*cacheEntry)}
		caches[db] = c
	}
	return c
}

// cacheKey identifies a plan: the structure rendering (memoized by Desc)
// plus a canonical predicate encoding. Both are canonical for plan
// purposes — two descs rendering alike derive identically, and the
// planner only inspects predicate structure. The predicate encoding is
// hand-rolled because it runs on every statement: expr.String's
// fmt-based rendering would cost more than the compile it saves.
func cacheKey(desc *core.Desc, pred expr.Expr) string {
	if pred == nil {
		return desc.String()
	}
	var b strings.Builder
	b.Grow(len(desc.String()) + 64)
	b.WriteString(desc.String())
	b.WriteByte(0)
	appendExprKey(&b, pred)
	return b.String()
}

// appendExprKey writes a canonical, collision-free encoding of e: every
// node is tagged, fields are separated by unprintable bytes that cannot
// occur inside identifiers.
func appendExprKey(b *strings.Builder, e expr.Expr) {
	switch n := e.(type) {
	case expr.Const:
		b.WriteByte('c')
		b.WriteString(n.V.String())
	case expr.Attr:
		b.WriteByte('a')
		b.WriteString(n.Type)
		b.WriteByte(1)
		b.WriteString(n.Name)
	case expr.Cmp:
		b.WriteByte('=')
		b.WriteByte(byte(n.Op))
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.And:
		b.WriteByte('&')
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Or:
		b.WriteByte('|')
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Not:
		b.WriteByte('!')
		appendExprKey(b, n.E)
	case expr.Arith:
		b.WriteByte('+')
		b.WriteByte(byte(n.Op))
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Exists:
		b.WriteByte('e')
		b.WriteString(n.Type)
	case expr.CountOf:
		b.WriteByte('#')
		b.WriteString(n.Type)
	case expr.All:
		b.WriteByte('A')
		b.WriteByte(byte(n.Op))
		appendExprKey(b, n.Attr)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Func:
		b.WriteByte('f')
		b.WriteString(n.Name)
		b.WriteByte(1)
		b.WriteString(strconv.Itoa(len(n.Args)))
		for _, a := range n.Args {
			b.WriteByte(2)
			appendExprKey(b, a)
		}
	default:
		// Unknown node kinds fall back to the rendered form.
		b.WriteByte('?')
		b.WriteString(e.String())
	}
	b.WriteByte(3)
}

// Compile returns a plan for deriving desc under pred, reusing the cached
// compilation when the database's plan epoch still matches; cached
// reports whether recompilation was skipped. The returned plan is always
// a private clone with fresh actuals — callers Execute it freely.
func (c *Cache) Compile(desc *core.Desc, pred expr.Expr) (p *Plan, cached bool, err error) {
	key := cacheKey(desc, pred)
	epoch := c.db.PlanEpoch()

	c.mu.Lock()
	if e, ok := c.entries[key]; ok && e.epoch == epoch {
		c.hits++
		p := e.plan.clone()
		c.mu.Unlock()
		return p, true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Compile outside the cache lock: compilation reads the database and
	// may be slow; worst case two sessions race and both store equivalent
	// plans.
	fresh, err := Compile(c.db, desc, pred)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	c.compiles++
	if _, exists := c.entries[key]; !exists {
		if len(c.order) >= cacheLimit {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, key)
	}
	c.entries[key] = &cacheEntry{epoch: epoch, plan: fresh}
	p = fresh.clone()
	c.mu.Unlock()
	return p, false, nil
}

// Counters reports cache traffic: lookups served from cache, lookups
// that missed (cold or invalidated), and plans actually compiled — the
// compile-count probe tests and experiments assert against.
func (c *Cache) Counters() (hits, misses, compiles uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.compiles
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// clone copies the plan with private pushdown and residual slices and
// zeroed actuals, so executions of the same cached compilation never
// share mutable state.
func (p *Plan) clone() *Plan {
	q := *p
	q.Pushdowns = append([]Pushdown(nil), p.Pushdowns...)
	q.Residuals = append([]ResidualConjunct(nil), p.Residuals...)
	q.Access.ActRoots = 0
	q.Derived, q.Out = 0, 0
	q.Executed = false
	for i := range q.Pushdowns {
		q.Pushdowns[i].Cut = 0
	}
	for i := range q.Residuals {
		q.Residuals[i].Evals, q.Residuals[i].Passed = 0, 0
	}
	return &q
}
