package plan

import (
	"container/list"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/storage"
)

// cacheLimit bounds a cache's entry count; the least recently used entry
// is evicted first, so hot named-molecule plans survive ad-hoc structure
// churn. Named molecule types are few — the bound exists only to keep
// the churn from growing the cache without end.
const cacheLimit = 256

// Cache memoizes compiled plans per database, keyed by the structure
// description and the predicate rendering. Entries carry the database's
// plan epoch at compile time; a lookup whose epoch no longer matches
// (index DDL, schema DDL or ANALYZE happened since) recompiles, so a
// cached plan never outlives the statistics and access paths it was
// costed against. Get hands out clones: concurrent sessions each execute
// their own copy while sharing the compile work.
type Cache struct {
	mu      sync.Mutex
	db      *storage.Database
	entries map[string]*list.Element
	lru     *list.List // cacheEntry values, most recently used at front

	hits, misses, compiles uint64
	// recompiles counts drift-triggered targeted recompiles: fetches that
	// found their entry marked stale by the feedback store and reran the
	// contest without an epoch-wide flush.
	recompiles uint64
}

type cacheEntry struct {
	key   string
	epoch uint64
	plan  *Plan
	// label is the human-readable identity SHOW CACHE lists the entry
	// under; shaped marks entries keyed on a PREPARE'd statement shape
	// (placeholder-canonicalized predicate) rather than literal text.
	label  string
	shaped bool
	// stale marks an entry the feedback store asked to recompile: its
	// executed actuals drifted from the compile-time estimates beyond the
	// drift factor. A stale entry is a miss — the next fetch recompiles in
	// place (provenance [recompiled]) without touching the plan epoch.
	stale bool
	// hits and recompiles are the per-entry counters SHOW CACHE exposes;
	// createdAt dates the entry's first compilation for the age column.
	hits       uint64
	recompiles uint64
	createdAt  time.Time
}

// caches is the per-database cache registry behind CacheFor.
var (
	cachesMu sync.Mutex
	caches   = make(map[*storage.Database]*Cache)
)

// CacheFor returns the plan cache shared by every session over db,
// creating it on first use. Creating the cache also registers the
// database's execution-feedback store, so every session that plans
// through the cache learns from its executions automatically.
func CacheFor(db *storage.Database) *Cache {
	cachesMu.Lock()
	defer cachesMu.Unlock()
	c, ok := caches[db]
	if !ok {
		c = &Cache{db: db, entries: make(map[string]*list.Element), lru: list.New()}
		caches[db] = c
		// Register the feedback store while still holding cachesMu: a
		// concurrent Release must never run between the two insertions,
		// or it would miss the feedback entry and leave it pinning the
		// database forever. (feedbacksMu nests under cachesMu here and
		// is never taken the other way around.)
		FeedbackFor(db)
	}
	return c
}

// cacheLookup returns the database's plan cache without creating one —
// the feedback store's drift path uses it, and a database that never
// planned through a cache has no entries to mark stale.
func cacheLookup(db *storage.Database) *Cache {
	cachesMu.Lock()
	defer cachesMu.Unlock()
	return caches[db]
}

// markStale flags the cache entry compiled under key for a targeted
// recompile: the entry stays in place (its counters and LRU position
// survive) but the next fetch treats it as a miss and reruns the contest.
// Reports whether an entry was found.
func (c *Cache) markStale(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	el.Value.(*cacheEntry).stale = true
	return true
}

// Release drops the database's cache and execution-feedback store from
// their registries. Call it when a database goes out of use — the
// registries otherwise pin both structures and the database for the life
// of the process. A later CacheFor/FeedbackFor on the same database
// simply starts cold.
func Release(db *storage.Database) {
	cachesMu.Lock()
	delete(caches, db)
	cachesMu.Unlock()
	releaseFeedback(db)
}

// cacheKey identifies a plan: the structure rendering (memoized by Desc)
// plus a canonical predicate encoding. Both are canonical for plan
// purposes — two descs rendering alike derive identically, and the
// planner only inspects predicate structure. The predicate encoding is
// hand-rolled because it runs on every statement: expr.String's
// fmt-based rendering would cost more than the compile it saves.
func cacheKey(desc *core.Desc, pred expr.Expr, order *OrderBy) string {
	if pred == nil && order == nil {
		return desc.String()
	}
	var b strings.Builder
	b.Grow(len(desc.String()) + 64)
	b.WriteString(desc.String())
	if pred != nil {
		b.WriteByte(0)
		appendExprKey(&b, pred)
	}
	if order != nil {
		// \x04 cannot open a predicate encoding, so ordered and
		// unordered keys over the same predicate never collide.
		b.WriteByte(4)
		if order.Desc {
			b.WriteByte('v')
		} else {
			b.WriteByte('^')
		}
		b.WriteString(order.Attr)
	}
	return b.String()
}

// appendExprKey writes a canonical, collision-free encoding of e: every
// node is tagged, fields are separated by unprintable bytes that cannot
// occur inside identifiers.
func appendExprKey(b *strings.Builder, e expr.Expr) {
	switch n := e.(type) {
	case expr.Const:
		b.WriteByte('c')
		b.WriteString(n.V.String())
	case expr.Attr:
		b.WriteByte('a')
		b.WriteString(n.Type)
		b.WriteByte(1)
		b.WriteString(n.Name)
	case expr.Cmp:
		b.WriteByte('=')
		b.WriteByte(byte(n.Op))
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.And:
		b.WriteByte('&')
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Or:
		b.WriteByte('|')
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Not:
		b.WriteByte('!')
		appendExprKey(b, n.E)
	case expr.Arith:
		b.WriteByte('+')
		b.WriteByte(byte(n.Op))
		appendExprKey(b, n.L)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Exists:
		b.WriteByte('e')
		b.WriteString(n.Type)
	case expr.CountOf:
		b.WriteByte('#')
		b.WriteString(n.Type)
	case expr.All:
		b.WriteByte('A')
		b.WriteByte(byte(n.Op))
		appendExprKey(b, n.Attr)
		b.WriteByte(2)
		appendExprKey(b, n.R)
	case expr.Func:
		b.WriteByte('f')
		b.WriteString(n.Name)
		b.WriteByte(1)
		b.WriteString(strconv.Itoa(len(n.Args)))
		for _, a := range n.Args {
			b.WriteByte(2)
			appendExprKey(b, a)
		}
	default:
		// Unknown node kinds fall back to the rendered form.
		b.WriteByte('?')
		b.WriteString(e.String())
	}
	b.WriteByte(3)
}

// Compile returns a plan for deriving desc under pred, reusing the cached
// compilation when the database's plan epoch still matches; cached
// reports whether recompilation was skipped. The returned plan is always
// a private clone with fresh actuals — callers Execute it freely.
func (c *Cache) Compile(desc *core.Desc, pred expr.Expr) (p *Plan, cached bool, err error) {
	return c.CompileOrdered(desc, pred, nil)
}

// CompileOrdered is Compile with an ORDER BY on a root attribute; the
// order is part of the cache identity, so ordered and unordered plans
// over the same predicate are memoized independently.
func (c *Cache) CompileOrdered(desc *core.Desc, pred expr.Expr, order *OrderBy) (p *Plan, cached bool, err error) {
	return c.compileAt(desc, pred, order, cacheKey(desc, pred, order), false)
}

// ShapeKey returns the cache identity of a statement shape: the canonical
// structure+predicate+order encoding with the placeholder sentinels still
// in place, so every EXECUTE of a PREPARE'd statement maps to the same
// entry regardless of the literals bound.
func ShapeKey(desc *core.Desc, pred expr.Expr, order *OrderBy) string {
	return cacheKey(desc, pred, order)
}

// CompileShaped compiles pred (a fully bound predicate — placeholders
// already substituted) under a statement-shape key instead of the literal
// key: a hit clones the cached compilation and rebinds its literals by
// conjunct ordinal, so repeated point queries through PREPARE/EXECUTE
// stop recompiling on literal text. A shape whose rebinding metadata does
// not line up (the entry predates this shape's conjunct layout) falls
// back to a fresh compile, stored under the same shape key.
func (c *Cache) CompileShaped(desc *core.Desc, pred expr.Expr, order *OrderBy, shapeKey string) (p *Plan, cached bool, err error) {
	return c.compileAt(desc, pred, order, shapeKey, true)
}

// compileAt is the shared hit/miss machinery behind CompileOrdered and
// CompileShaped: key is the cache identity, shaped selects literal
// rebinding on a hit. A stale entry (drift-marked by the feedback store)
// counts as a miss, recompiles in place, and stamps the fresh plan
// Recompiled — the [recompiled] EXPLAIN provenance.
func (c *Cache) compileAt(desc *core.Desc, pred expr.Expr, order *OrderBy, key string, shaped bool) (p *Plan, cached bool, err error) {
	epoch := c.db.PlanEpoch()

	wasStale := false
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.epoch == epoch && !e.stale {
			q := e.plan.clone()
			if !shaped || q.rebind(pred) {
				e.hits++
				c.hits++
				c.lru.MoveToFront(el) // LRU: a hit renews the entry
				c.mu.Unlock()
				// The cached compilation may predate executions that
				// recorded observed pass rates; re-rank the clone so a
				// compile-only EXPLAIN shows the chain Execute will
				// actually run.
				q.applyFeedback(feedbackLookup(c.db))
				return q, true, nil
			}
			// Rebinding metadata mismatch: recompile below.
		}
		wasStale = e.epoch == epoch && e.stale
	}
	c.misses++
	c.mu.Unlock()

	// Compile outside the cache lock: compilation reads the database and
	// may be slow; worst case two sessions race and both store equivalent
	// plans.
	fresh, err := compileKeyed(c.db, desc, pred, order, key, false)
	if err != nil {
		return nil, false, err
	}
	// A drift-triggered recompile carries the [recompiled] provenance for
	// the life of the entry — clones inherit it, so EXPLAIN shows why the
	// access path changed without re-executing.
	fresh.Recompiled = wasStale

	c.mu.Lock()
	c.compiles++
	if el, exists := c.entries[key]; exists {
		e := el.Value.(*cacheEntry)
		if e.stale && e.epoch == epoch {
			e.recompiles++
			c.recompiles++
		}
		e.epoch, e.plan, e.stale = epoch, fresh, false
		c.lru.MoveToFront(el)
	} else {
		if c.lru.Len() >= cacheLimit {
			// Evict the least recently used entry.
			back := c.lru.Back()
			delete(c.entries, back.Value.(*cacheEntry).key)
			c.lru.Remove(back)
		}
		c.entries[key] = c.lru.PushFront(&cacheEntry{
			key: key, epoch: epoch, plan: fresh,
			label: entryLabel(desc, pred, order), shaped: shaped,
			createdAt: time.Now(),
		})
	}
	p = fresh.clone()
	c.mu.Unlock()
	return p, false, nil
}

// entryLabel renders the human-readable identity SHOW CACHE lists a
// cache entry under. Shaped entries show the literals of the compile that
// populated them — later EXECUTEs rebind without touching the label.
func entryLabel(desc *core.Desc, pred expr.Expr, order *OrderBy) string {
	var b strings.Builder
	b.WriteString(desc.Root())
	if pred != nil {
		fmt.Fprintf(&b, " WHERE %s", pred)
	}
	if order != nil {
		dir := "ASC"
		if order.Desc {
			dir = "DESC"
		}
		fmt.Fprintf(&b, " ORDER BY %s %s", order.Attr, dir)
	}
	return b.String()
}

// rebind retargets a shape-cached plan clone at a freshly bound
// predicate: every pushdown, residual and root-filter conjunct, the
// access equality value (root or interior or per-intersection-entry) and
// the access range bounds are replayed from the new predicate's conjuncts
// by the ordinals the compile recorded. The shape key guarantees the
// conjunct layout matches; rebind reports false (caller recompiles) if
// the metadata nevertheless fails to line up.
func (p *Plan) rebind(newPred expr.Expr) bool {
	conjs := splitConjuncts(newPred)
	at := func(ord int) (expr.Expr, bool) {
		if ord < 0 || ord >= len(conjs) {
			return nil, false
		}
		return conjs[ord], true
	}
	for i := range p.Pushdowns {
		c, ok := at(p.Pushdowns[i].ord)
		if !ok {
			return false
		}
		p.Pushdowns[i].Conjunct = c
	}
	if len(p.Residuals) > 0 {
		ords := make([]int, 0, len(p.Residuals))
		for i := range p.Residuals {
			c, ok := at(p.Residuals[i].ord)
			if !ok {
				return false
			}
			p.Residuals[i].Conjunct = c
			p.Residuals[i].key = conjKey(c)
			ords = append(ords, p.Residuals[i].ord)
		}
		// Residuals are cost-ordered; rebuild the source-order conjunction.
		sort.Ints(ords)
		p.Residual = nil
		for _, o := range ords {
			p.Residual = combine(p.Residual, conjs[o])
		}
	}
	p.Access.Filter = nil
	for _, o := range p.filterOrds {
		c, ok := at(o)
		if !ok {
			return false
		}
		p.Access.Filter = combine(p.Access.Filter, c)
	}
	if p.accessValueOrd >= 0 {
		c, ok := at(p.accessValueOrd)
		if !ok {
			return false
		}
		_, _, v, ok := attrConstCmp(c)
		if !ok {
			return false
		}
		p.Access.Value = v
	}
	for i := range p.Access.Entries {
		c, ok := at(p.Access.Entries[i].ord)
		if !ok {
			return false
		}
		_, _, v, ok := attrConstCmp(c)
		if !ok {
			return false
		}
		p.Access.Entries[i].Value = v
	}
	if p.Access.Ranged {
		spec := rangeSpec{typeName: p.Access.Root, attr: p.Access.Attr}
		for _, o := range p.rangeOrds {
			c, ok := at(o)
			if !ok {
				return false
			}
			_, op, v, ok := attrConstCmp(c)
			if !ok || !isRangeOp(op) {
				return false
			}
			spec.addBound(op, v)
		}
		spec.fillAccess(&p.Access)
	}
	p.pred = newPred
	return true
}

// Counters reports cache traffic: lookups served from cache, lookups
// that missed (cold or invalidated), and plans actually compiled — the
// compile-count probe tests and experiments assert against.
func (c *Cache) Counters() (hits, misses, compiles uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.compiles
}

// Recompiles reports how many drift-triggered targeted recompiles the
// cache has performed — fetches that found their entry stale-marked by
// the feedback store and reran the contest in place.
func (c *Cache) Recompiles() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recompiles
}

// Render prints the cache's aggregate traffic and every entry with its
// per-entry counters, most recently used first — the SHOW CACHE output.
func (c *Cache) Render() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "plan cache: %d entr%s — %d hit(s), %d miss(es), %d compile(s), %d targeted recompile(s)\n",
		len(c.entries), plural(len(c.entries), "y", "ies"), c.hits, c.misses, c.compiles, c.recompiles)
	now := time.Now()
	i := 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		i++
		line := fmt.Sprintf("%3d. %s — hits %d, age %s, recompiles %d",
			i, e.label, e.hits, now.Sub(e.createdAt).Round(time.Second), e.recompiles)
		if e.shaped {
			line += " [shape]"
		}
		if e.stale {
			line += " [stale]"
		}
		if e.plan.Recompiled {
			line += " [recompiled]"
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// plural picks the singular or plural suffix for n.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// clone copies the plan with private pushdown and residual slices and
// zeroed actuals, so executions of the same cached compilation never
// share mutable state. The Alternatives and UpPath slices stay shared —
// they are compile-time provenance and never mutated after compilation.
func (p *Plan) clone() *Plan {
	q := *p
	q.Pushdowns = append([]Pushdown(nil), p.Pushdowns...)
	q.Residuals = append([]ResidualConjunct(nil), p.Residuals...)
	q.Access.Entries = append([]AccessEntry(nil), p.Access.Entries...)
	if p.Order != nil {
		o := *p.Order
		q.Order = &o
	}
	q.resetActuals()
	return &q
}
