// Package plan compiles molecule queries into explicit plan DAGs. A plan
// fixes, before any atom is touched,
//
//   - the root access path: an equality lookup through a secondary index
//     (chosen by estimated selectivity from storage cardinalities) or a
//     full scan of the root type's container, optionally pre-filtered by
//     the root-only conjuncts of the qualification formula;
//   - the derivation node, annotated with per-atom-type pushdown
//     conjuncts: conjuncts referencing a single non-root atom type are
//     evaluated inside core.Deriver while the structure template is laid
//     over the atom network, cutting non-qualifying subtrees as soon as
//     the referenced type's component set is complete, instead of
//     post-filtering whole molecules (the optimization the paper
//     anticipates for query processing, Chapter 5); and
//   - the residual filter: whatever part of the formula genuinely needs
//     the whole molecule (multi-type conjuncts, quantifiers over non-root
//     types) runs after derivation under molecule binding.
//
// The planner is sound with respect to the molecule algebra: a plan's
// result is always set-equal to naive Σ (core.Restrict) over the same
// predicate — pushdown decides early whether a molecule can qualify, it
// never changes the content of qualifying molecules.
package plan

import (
	"fmt"
	"strings"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// AccessKind discriminates root access paths.
type AccessKind uint8

// Access paths.
const (
	// FullScan reads every atom of the root type's container.
	FullScan AccessKind = iota
	// IndexScan reads only the root atoms a secondary index maps an
	// equality conjunct's value to.
	IndexScan
)

// Access is the root access-path node of a plan.
type Access struct {
	Kind AccessKind
	Root string
	// Attr and Value parameterize an IndexScan (root.Attr = Value).
	Attr  string
	Value model.Value
	// Filter holds the remaining root-only conjuncts; they are evaluated
	// per root atom before derivation starts (every molecule has exactly
	// one root atom, so per-atom evaluation equals molecule evaluation).
	Filter expr.Expr
	// EstRoots estimates how many roots enter derivation: the container
	// size for a full scan, occurrence/distinct-keys for an index scan.
	EstRoots int
	// ActRoots counts the roots that actually entered derivation.
	ActRoots int
}

// Pushdown is one conjunct pushed below derivation at one atom type.
type Pushdown struct {
	Type     string
	Pos      int
	Conjunct expr.Expr
	// Cut counts the molecules this node disqualified mid-derivation.
	Cut int
}

// Plan is a compiled query plan: access path → derivation with pushdown →
// residual restriction. Projection stays with the caller (MQL applies it
// via PruneTo in query mode, Π with propagation in algebra mode).
type Plan struct {
	db   *storage.Database
	desc *core.Desc

	Access    Access
	Pushdowns []Pushdown
	Residual  expr.Expr

	// Execution actuals (valid after Execute).
	Derived  int // molecules fully derived (survived every pushdown)
	Out      int // molecules after the residual filter
	Executed bool
}

// Desc returns the structure the plan derives.
func (p *Plan) Desc() *core.Desc { return p.desc }

// Compile builds the plan for deriving desc under pred (nil = no
// restriction). pred must already be statically valid for the structure
// (expr.Check against core.Scope).
func Compile(db *storage.Database, desc *core.Desc, pred expr.Expr) (*Plan, error) {
	p := &Plan{
		db:   db,
		desc: desc,
		Access: Access{
			Kind: FullScan,
			Root: desc.Root(),
		},
	}
	n, err := db.CountAtoms(desc.Root())
	if err != nil {
		return nil, err
	}
	p.Access.EstRoots = n

	var rootConjs []expr.Expr
	for _, c := range splitConjuncts(pred) {
		t, single := conjunctType(db, desc, c)
		switch {
		case single && t == desc.Root():
			rootConjs = append(rootConjs, c)
		case single && pushableShape(c):
			pos, _ := desc.Pos(t)
			p.Pushdowns = append(p.Pushdowns, Pushdown{Type: t, Pos: pos, Conjunct: c})
		default:
			p.Residual = combine(p.Residual, c)
		}
	}

	// Root access path: among the root conjuncts, pick the indexed
	// equality with the lowest estimated cardinality; everything else
	// becomes the pre-derivation root filter.
	best := -1
	bestEst := n + 1
	for i, c := range rootConjs {
		attr, val, ok := indexableEq(c, db, desc.Root())
		if !ok {
			continue
		}
		keys, _ := db.IndexCardinality(desc.Root(), attr)
		est := estimateEq(n, keys)
		if est < bestEst {
			best, bestEst = i, est
			p.Access.Attr, p.Access.Value = attr, val
		}
	}
	if best >= 0 {
		p.Access.Kind = IndexScan
		p.Access.EstRoots = bestEst
	}
	for i, c := range rootConjs {
		if i == best {
			continue
		}
		p.Access.Filter = combine(p.Access.Filter, c)
	}
	// Pushdown order follows the topological order of the structure so
	// the rendered plan reads in traversal order.
	if len(p.Pushdowns) > 1 {
		topoPos := make(map[string]int, desc.NumTypes())
		for i, t := range desc.Topo() {
			topoPos[t] = i
		}
		for i := 1; i < len(p.Pushdowns); i++ {
			for j := i; j > 0 && topoPos[p.Pushdowns[j].Type] < topoPos[p.Pushdowns[j-1].Type]; j-- {
				p.Pushdowns[j], p.Pushdowns[j-1] = p.Pushdowns[j-1], p.Pushdowns[j]
			}
		}
	}
	return p, nil
}

// splitConjuncts flattens the top-level AND tree of pred.
func splitConjuncts(pred expr.Expr) []expr.Expr {
	if pred == nil {
		return nil
	}
	if and, ok := pred.(expr.And); ok {
		return append(splitConjuncts(and.L), splitConjuncts(and.R)...)
	}
	return []expr.Expr{pred}
}

// combine conjoins two optional predicates.
func combine(a, b expr.Expr) expr.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return expr.And{L: a, R: b}
}

// conjunctType resolves every reference of the conjunct (attributes,
// quantifier and aggregate targets) to its atom type within the structure
// — unqualified attributes resolve to the unique declaring component type,
// mirroring molecule-binding semantics — and reports whether they all
// name one single type.
func conjunctType(db *storage.Database, desc *core.Desc, c expr.Expr) (string, bool) {
	// Fast path for the dominant shape: qualified attribute vs constant.
	if cmp, ok := c.(expr.Cmp); ok {
		a, aok := cmp.L.(expr.Attr)
		_, cok := cmp.R.(expr.Const)
		if !aok || !cok {
			a, aok = cmp.R.(expr.Attr)
			_, cok = cmp.L.(expr.Const)
		}
		if aok && cok && a.Type != "" {
			return a.Type, desc.HasType(a.Type)
		}
	}
	types := make(map[string]bool)
	for t := range expr.TypesReferenced(c) {
		if t == "" {
			continue
		}
		types[t] = true
	}
	for _, a := range expr.References(c) {
		if a.Type != "" {
			continue
		}
		t, err := core.ResolveUnqualified(db, desc, a.Name)
		if err != nil {
			return "", false
		}
		types[t] = true
	}
	if len(types) != 1 {
		return "", false
	}
	for t := range types {
		if !desc.HasType(t) {
			return "", false
		}
		return t, true
	}
	return "", false
}

// pushableShape reports whether a single-type conjunct may be evaluated
// per component atom with existential (OR) aggregation. That holds for
// comparisons whose attribute side is the bare attribute reference and
// whose other side is reference-free, and for disjunctions of such
// comparisons: molecule-level evaluation of these forms is existential
// over the component atoms, and ∃ distributes over OR. Negation,
// universal/count quantifiers and arithmetic over the multi-valued side
// do not commute with ∃ and stay in the residual filter.
func pushableShape(e expr.Expr) bool {
	switch n := e.(type) {
	case expr.Or:
		return pushableShape(n.L) && pushableShape(n.R)
	case expr.Cmp:
		if _, ok := n.L.(expr.Attr); ok && referenceFree(n.R) {
			return true
		}
		if _, ok := n.R.(expr.Attr); ok && referenceFree(n.L) {
			return true
		}
	}
	return false
}

// referenceFree reports that e mentions no attribute, quantifier or
// aggregate — it evaluates to the same constant under any binding.
func referenceFree(e expr.Expr) bool {
	return len(expr.TypesReferenced(e)) == 0
}

// indexableEq detects root.attr = constant (either orientation) where the
// root type carries an index on attr, returning the attribute and value.
func indexableEq(c expr.Expr, db *storage.Database, root string) (string, model.Value, bool) {
	cmp, ok := c.(expr.Cmp)
	if !ok || cmp.Op != expr.EQ {
		return "", model.Null(), false
	}
	a, aok := cmp.L.(expr.Attr)
	l, lok := cmp.R.(expr.Const)
	if !aok || !lok {
		a, aok = cmp.R.(expr.Attr)
		l, lok = cmp.L.(expr.Const)
	}
	if !aok || !lok {
		return "", model.Null(), false
	}
	if !db.HasIndex(root, a.Name) {
		return "", model.Null(), false
	}
	return a.Name, l.V, true
}

// estimateEq is the planner's equality-selectivity estimate: occurrence
// size divided by the index's distinct-key count, rounded up.
func estimateEq(n, keys int) int {
	if keys <= 0 {
		return n
	}
	est := (n + keys - 1) / keys
	if est < 1 {
		est = 1
	}
	return est
}

// atomPred compiles a conjunct into a per-atom predicate over the named
// type. Evaluation errors surface through errp (first one wins).
func (p *Plan) atomPred(typeName string, conjunct expr.Expr, errp *error) (func(model.AtomID) bool, error) {
	c, ok := p.db.Container(typeName)
	if !ok {
		return nil, fmt.Errorf("plan: atom type %q has no container", typeName)
	}
	desc := c.Desc()
	return func(id model.AtomID) bool {
		a, ok := c.Get(id)
		if !ok {
			return false
		}
		// Account the read like molecule-binding evaluation does, so the
		// naive-vs-planned logical-work comparisons stay fair.
		p.db.Stats().AtomsFetched.Add(1)
		keep, err := expr.EvalPredicate(conjunct, expr.AtomBinding{TypeName: typeName, Desc: desc, Atom: a})
		if err != nil && *errp == nil {
			*errp = err
		}
		return err == nil && keep
	}, nil
}

// Execute runs the plan and returns the qualifying molecules, filling the
// actual-cardinality fields. It never enlarges the database; algebra-mode
// callers propagate the returned set themselves (see Restrict).
func (p *Plan) Execute() (core.MoleculeSet, error) {
	dv, err := core.NewDeriver(p.db, p.desc)
	if err != nil {
		return nil, err
	}
	p.Access.ActRoots, p.Derived, p.Out = 0, 0, 0
	p.Executed = false
	for i := range p.Pushdowns {
		p.Pushdowns[i].Cut = 0
	}

	var evalErr error
	var checks []core.PruneCheck
	for i := range p.Pushdowns {
		pd := &p.Pushdowns[i]
		pred, err := p.atomPred(pd.Type, pd.Conjunct, &evalErr)
		if err != nil {
			return nil, err
		}
		checks = append(checks, core.PruneCheck{Pos: pd.Pos, Qualifies: func(atoms []model.AtomID) bool {
			for _, id := range atoms {
				if pred(id) {
					return true
				}
			}
			pd.Cut++
			return false
		}})
	}

	var rootFilter func(model.AtomID) bool
	if p.Access.Filter != nil {
		rootFilter, err = p.atomPred(p.Access.Root, p.Access.Filter, &evalErr)
		if err != nil {
			return nil, err
		}
	}

	var set core.MoleculeSet
	keep := func(m *core.Molecule) bool {
		p.Derived++
		ok, err := expr.EvalPredicate(p.Residual, core.Binding{DB: p.db, M: m})
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			set = append(set, m)
		}
		return true
	}

	switch p.Access.Kind {
	case IndexScan:
		roots, ok := p.db.IndexLookup(p.Access.Root, p.Access.Attr, p.Access.Value)
		if !ok {
			return nil, fmt.Errorf("plan: index on %s.%s vanished between compile and execute", p.Access.Root, p.Access.Attr)
		}
		prepared := dv.PrepareChecks(checks)
		for _, r := range roots {
			if rootFilter != nil && !rootFilter(r) {
				if evalErr != nil {
					return nil, evalErr
				}
				continue
			}
			p.Access.ActRoots++
			m, ok, err := dv.DeriveForPrepared(r, prepared)
			if err != nil {
				return nil, err
			}
			if evalErr != nil {
				return nil, evalErr
			}
			if ok && !keep(m) {
				break
			}
		}
	default:
		// The root filter runs as a prune hook at the root position: it
		// rejects the molecule before any link is traversed. ActRoots
		// counts the roots that pass it and enter derivation proper.
		// Once an evaluation error is pending, every remaining root is
		// rejected here too, so the walk degrades to a cheap scan instead
		// of deriving the rest of the occurrence.
		rootPos, _ := p.desc.Pos(p.Access.Root)
		rootChecks := append([]core.PruneCheck{{Pos: rootPos, Qualifies: func(atoms []model.AtomID) bool {
			if evalErr != nil {
				return false
			}
			if rootFilter != nil && !(len(atoms) == 1 && rootFilter(atoms[0])) {
				return false
			}
			p.Access.ActRoots++
			return true
		}}}, checks...)
		dv.WalkPruned(rootChecks, func(m *core.Molecule) bool {
			return keep(m)
		})
	}
	if evalErr != nil {
		return nil, evalErr
	}
	p.Out = len(set)
	p.Executed = true
	return set, nil
}

// Summary is the one-line account of an executed plan.
func (p *Plan) Summary() string {
	cut := 0
	for _, pd := range p.Pushdowns {
		cut += pd.Cut
	}
	return fmt.Sprintf("%d roots in, %d pruned mid-derivation, %d derived, %d qualified",
		p.Access.ActRoots, cut, p.Derived, p.Out)
}

// Render prints the plan tree with estimated and (when executed) actual
// cardinalities, leaves first — the EXPLAIN output.
func (p *Plan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "structure: %s\n", p.desc)
	fmt.Fprintf(&b, "root:      %s\n", p.desc.Root())
	switch p.Access.Kind {
	case IndexScan:
		fmt.Fprintf(&b, "access:    index lookup %s.%s = %s (est %s roots%s)\n",
			p.Access.Root, p.Access.Attr, p.Access.Value,
			approx(p.Access.EstRoots), p.actual(p.Access.ActRoots))
	default:
		fmt.Fprintf(&b, "access:    full scan of %s (est %d roots%s)\n",
			p.Access.Root, p.Access.EstRoots, p.actual(p.Access.ActRoots))
	}
	if p.Access.Filter != nil {
		fmt.Fprintf(&b, "           root filter %s before derivation\n", p.Access.Filter)
	}
	fmt.Fprintf(&b, "derive:    structure template over the atom network%s\n", p.actual(p.Derived))
	for _, pd := range p.Pushdowns {
		line := fmt.Sprintf("pushdown:  Σ↓[%s] at %s — cuts the subtree when no %s atom qualifies",
			pd.Conjunct, pd.Type, pd.Type)
		if p.Executed {
			line += fmt.Sprintf(" (cut %d)", pd.Cut)
		}
		b.WriteString(line + "\n")
	}
	if p.Residual != nil {
		fmt.Fprintf(&b, "residual:  Σ[%s] per derived molecule%s\n", p.Residual, p.actual(p.Out))
	} else if p.Executed {
		fmt.Fprintf(&b, "output:    %d molecule(s)\n", p.Out)
	}
	return b.String()
}

// actual renders ", actual n" when the plan ran.
func (p *Plan) actual(n int) string {
	if !p.Executed {
		return ""
	}
	return fmt.Sprintf(", actual %d", n)
}

// approx renders an estimate as ≈n.
func approx(n int) string { return fmt.Sprintf("≈%d", n) }
