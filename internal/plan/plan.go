// Package plan compiles molecule queries into explicit plan DAGs. A plan
// fixes, before any atom is touched,
//
//   - the root access path: an equality lookup through a secondary index
//     (chosen by estimated selectivity from storage cardinalities) or a
//     full scan of the root type's container, optionally pre-filtered by
//     the root-only conjuncts of the qualification formula;
//   - the derivation node, annotated with per-atom-type pushdown
//     conjuncts: conjuncts referencing a single non-root atom type are
//     evaluated inside core.Deriver while the structure template is laid
//     over the atom network, cutting non-qualifying subtrees as soon as
//     the referenced type's component set is complete, instead of
//     post-filtering whole molecules (the optimization the paper
//     anticipates for query processing, Chapter 5); and
//   - the residual filter: whatever part of the formula genuinely needs
//     the whole molecule (multi-type conjuncts, quantifiers over non-root
//     types) runs after derivation under molecule binding, its conjuncts
//     ordered by estimated selectivity × evaluation cost so cheap,
//     selective conjuncts short-circuit the expensive ones.
//
// Cardinality and selectivity estimates come from the equi-depth
// histograms of storage/stats when ANALYZE has built them, falling back
// to the uniform occurrence/distinct-keys assumption (and finally to
// fixed shape defaults); EXPLAIN labels every estimate with its source.
// Compiled plans are memoized per database in a Cache invalidated by the
// storage layer's plan epoch (DDL, index changes, ANALYZE).
//
// The planner is sound with respect to the molecule algebra: a plan's
// result is always set-equal to naive Σ (core.Restrict) over the same
// predicate — pushdown decides early whether a molecule can qualify, it
// never changes the content of qualifying molecules, and residual
// ordering only permutes a commutative conjunction.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// AccessKind discriminates root access paths.
type AccessKind uint8

// Access paths.
const (
	// FullScan reads every atom of the root type's container.
	FullScan AccessKind = iota
	// IndexScan reads only the root atoms a secondary index maps an
	// equality conjunct's value to.
	IndexScan
)

// Access is the root access-path node of a plan.
type Access struct {
	Kind AccessKind
	Root string
	// Attr and Value parameterize an IndexScan (root.Attr = Value).
	Attr  string
	Value model.Value
	// Filter holds the remaining root-only conjuncts; they are evaluated
	// per root atom before derivation starts (every molecule has exactly
	// one root atom, so per-atom evaluation equals molecule evaluation).
	Filter expr.Expr
	// EstRoots estimates how many roots enter derivation: histogram
	// buckets when available, otherwise the container size for a full
	// scan and occurrence/distinct-keys for an index scan, scaled by the
	// estimated selectivity of the root filter.
	EstRoots int
	// EstSource records which statistic produced EstRoots (SrcHistogram,
	// SrcUniform, SrcContainer or SrcDefault) for EXPLAIN.
	EstSource string
	// ActRoots counts the roots that actually entered derivation.
	ActRoots int
}

// Pushdown is one conjunct pushed below derivation at one atom type.
type Pushdown struct {
	Type     string
	Pos      int
	Conjunct expr.Expr
	// Sel estimates the fraction of the type's atoms satisfying the
	// conjunct (a per-atom, not per-molecule, selectivity); Source
	// records the statistic behind it.
	Sel    float64
	Source string
	// Cut counts the molecules this node disqualified mid-derivation.
	Cut int
}

// ResidualConjunct is one molecule-level conjunct of the residual filter,
// annotated with the cost-model estimates that ordered it and, after
// execution, with evaluation actuals.
type ResidualConjunct struct {
	Conjunct expr.Expr
	// Sel estimates the fraction of molecules the conjunct keeps; Source
	// records which statistic produced it.
	Sel    float64
	Source string
	// Cost scores the relative per-molecule evaluation cost.
	Cost float64
	// Evals and Passed count molecules evaluated and kept (short-circuit
	// means later conjuncts see fewer molecules than earlier ones).
	Evals  int
	Passed int
}

// Plan is a compiled query plan: access path → derivation with pushdown →
// residual restriction. Projection stays with the caller (MQL applies it
// via PruneTo in query mode, Π with propagation in algebra mode).
type Plan struct {
	db   *storage.Database
	desc *core.Desc

	Access    Access
	Pushdowns []Pushdown
	// Residual is the whole residual conjunction in source order (nil
	// when everything pushed down); Residuals holds the same conjuncts
	// split and cost-ordered for short-circuit evaluation.
	Residual  expr.Expr
	Residuals []ResidualConjunct

	// Execution actuals (valid after Execute).
	Derived  int // molecules fully derived (survived every pushdown)
	Out      int // molecules after the residual filter
	Executed bool
}

// Desc returns the structure the plan derives.
func (p *Plan) Desc() *core.Desc { return p.desc }

// Compile builds the plan for deriving desc under pred (nil = no
// restriction). pred must already be statically valid for the structure
// (expr.Check against core.Scope).
func Compile(db *storage.Database, desc *core.Desc, pred expr.Expr) (*Plan, error) {
	p := &Plan{
		db:   db,
		desc: desc,
		Access: Access{
			Kind:      FullScan,
			Root:      desc.Root(),
			EstSource: SrcContainer,
		},
	}
	n, err := db.CountAtoms(desc.Root())
	if err != nil {
		return nil, err
	}
	p.Access.EstRoots = n

	var rootConjs []expr.Expr
	for _, c := range splitConjuncts(pred) {
		t, single := conjunctType(db, desc, c)
		switch {
		case single && t == desc.Root():
			rootConjs = append(rootConjs, c)
		case single && pushableShape(c):
			pos, _ := desc.Pos(t)
			sel, src := conjSelectivity(db, desc, c)
			p.Pushdowns = append(p.Pushdowns, Pushdown{
				Type: t, Pos: pos, Conjunct: c, Sel: sel, Source: src,
			})
		default:
			p.Residual = combine(p.Residual, c)
			sel, src := conjSelectivity(db, desc, c)
			p.Residuals = append(p.Residuals, ResidualConjunct{
				Conjunct: c, Sel: sel, Source: src, Cost: conjCost(c),
			})
		}
	}

	// Root access path: among the root conjuncts, pick the indexed
	// equality with the lowest estimated cardinality — histogram buckets
	// when ANALYZE has run, occurrence/distinct-keys otherwise — and turn
	// everything else into the pre-derivation root filter.
	best := -1
	bestEst := n + 1
	bestSrc := SrcUniform
	for i, c := range rootConjs {
		attr, val, ok := indexableEq(c, db, desc.Root())
		if !ok {
			continue
		}
		est, src := estimateEqCount(db, desc.Root(), attr, val, n)
		if est < bestEst {
			best, bestEst, bestSrc = i, est, src
			p.Access.Attr, p.Access.Value = attr, val
		}
	}
	if best >= 0 {
		p.Access.Kind = IndexScan
		p.Access.EstRoots = bestEst
		p.Access.EstSource = bestSrc
	}
	filterSel := 1.0
	filterSrc := ""
	for i, c := range rootConjs {
		if i == best {
			continue
		}
		p.Access.Filter = combine(p.Access.Filter, c)
		sel, src := conjSelectivity(db, desc, c)
		filterSel *= sel
		if filterSrc == "" {
			filterSrc = src
		} else {
			filterSrc = worseSource(filterSrc, src)
		}
	}
	if p.Access.Filter != nil {
		// Scale the root estimate by the filter's selectivity: EstRoots
		// approximates the roots that *enter derivation*, after the
		// pre-derivation filter.
		p.Access.EstRoots = scaleEst(p.Access.EstRoots, filterSel)
		if p.Access.Kind == IndexScan {
			p.Access.EstSource = worseSource(bestSrc, filterSrc)
		} else {
			p.Access.EstSource = filterSrc
		}
	}
	// Order the residual conjuncts by the (selectivity − 1)/cost rank so
	// short-circuit evaluation does the least expected work per molecule.
	sort.SliceStable(p.Residuals, func(i, j int) bool {
		return residualRank(p.Residuals[i]) < residualRank(p.Residuals[j])
	})
	// Pushdown order follows the topological order of the structure so
	// the rendered plan reads in traversal order.
	if len(p.Pushdowns) > 1 {
		topoPos := make(map[string]int, desc.NumTypes())
		for i, t := range desc.Topo() {
			topoPos[t] = i
		}
		for i := 1; i < len(p.Pushdowns); i++ {
			for j := i; j > 0 && topoPos[p.Pushdowns[j].Type] < topoPos[p.Pushdowns[j-1].Type]; j-- {
				p.Pushdowns[j], p.Pushdowns[j-1] = p.Pushdowns[j-1], p.Pushdowns[j]
			}
		}
	}
	return p, nil
}

// splitConjuncts flattens the top-level AND tree of pred.
func splitConjuncts(pred expr.Expr) []expr.Expr {
	if pred == nil {
		return nil
	}
	if and, ok := pred.(expr.And); ok {
		return append(splitConjuncts(and.L), splitConjuncts(and.R)...)
	}
	return []expr.Expr{pred}
}

// combine conjoins two optional predicates.
func combine(a, b expr.Expr) expr.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return expr.And{L: a, R: b}
}

// conjunctType resolves every reference of the conjunct (attributes,
// quantifier and aggregate targets) to its atom type within the structure
// — unqualified attributes resolve to the unique declaring component type,
// mirroring molecule-binding semantics — and reports whether they all
// name one single type.
func conjunctType(db *storage.Database, desc *core.Desc, c expr.Expr) (string, bool) {
	// Fast path for the dominant shape: qualified attribute vs constant.
	if cmp, ok := c.(expr.Cmp); ok {
		a, aok := cmp.L.(expr.Attr)
		_, cok := cmp.R.(expr.Const)
		if !aok || !cok {
			a, aok = cmp.R.(expr.Attr)
			_, cok = cmp.L.(expr.Const)
		}
		if aok && cok && a.Type != "" {
			return a.Type, desc.HasType(a.Type)
		}
	}
	types := make(map[string]bool)
	for t := range expr.TypesReferenced(c) {
		if t == "" {
			continue
		}
		types[t] = true
	}
	for _, a := range expr.References(c) {
		if a.Type != "" {
			continue
		}
		t, err := core.ResolveUnqualified(db, desc, a.Name)
		if err != nil {
			return "", false
		}
		types[t] = true
	}
	if len(types) != 1 {
		return "", false
	}
	for t := range types {
		if !desc.HasType(t) {
			return "", false
		}
		return t, true
	}
	return "", false
}

// pushableShape reports whether a single-type conjunct may be evaluated
// per component atom with existential (OR) aggregation. That holds for
// comparisons whose attribute side is the bare attribute reference and
// whose other side is reference-free, and for disjunctions of such
// comparisons: molecule-level evaluation of these forms is existential
// over the component atoms, and ∃ distributes over OR. Negation,
// universal/count quantifiers and arithmetic over the multi-valued side
// do not commute with ∃ and stay in the residual filter.
func pushableShape(e expr.Expr) bool {
	switch n := e.(type) {
	case expr.Or:
		return pushableShape(n.L) && pushableShape(n.R)
	case expr.Cmp:
		if _, ok := n.L.(expr.Attr); ok && referenceFree(n.R) {
			return true
		}
		if _, ok := n.R.(expr.Attr); ok && referenceFree(n.L) {
			return true
		}
	}
	return false
}

// referenceFree reports that e mentions no attribute, quantifier or
// aggregate — it evaluates to the same constant under any binding.
func referenceFree(e expr.Expr) bool {
	return len(expr.TypesReferenced(e)) == 0
}

// indexableEq detects root.attr = constant (either orientation) where the
// root type carries an index on attr, returning the attribute and value.
func indexableEq(c expr.Expr, db *storage.Database, root string) (string, model.Value, bool) {
	cmp, ok := c.(expr.Cmp)
	if !ok || cmp.Op != expr.EQ {
		return "", model.Null(), false
	}
	a, aok := cmp.L.(expr.Attr)
	l, lok := cmp.R.(expr.Const)
	if !aok || !lok {
		a, aok = cmp.R.(expr.Attr)
		l, lok = cmp.L.(expr.Const)
	}
	if !aok || !lok {
		return "", model.Null(), false
	}
	if !db.HasIndex(root, a.Name) {
		return "", model.Null(), false
	}
	return a.Name, l.V, true
}

// estimateEqCount estimates how many atoms of typeName carry attr = v:
// histogram buckets when ANALYZE has built them (the estimate that stays
// honest under skew), the uniform occurrence/distinct-keys assumption
// otherwise.
func estimateEqCount(db *storage.Database, typeName, attr string, v model.Value, n int) (int, string) {
	if h, ok := db.Histogram(typeName, attr); ok && h.Total() > 0 {
		est := int(h.EstimateEq(v))
		if est > n {
			est = n
		}
		return est, SrcHistogram
	}
	keys, _ := db.IndexCardinality(typeName, attr)
	return estimateEqUniform(n, keys), SrcUniform
}

// estimateEqUniform is the PR-1 equality estimate: occurrence size
// divided by the index's distinct-key count, rounded up.
func estimateEqUniform(n, keys int) int {
	if keys <= 0 {
		return n
	}
	est := (n + keys - 1) / keys
	if est < 1 {
		est = 1
	}
	return est
}

// scaleEst scales a cardinality estimate by a selectivity, keeping a
// nonzero floor when the base was nonzero (an estimated-empty filter must
// not advertise an impossible zero).
func scaleEst(n int, sel float64) int {
	if n <= 0 {
		return 0
	}
	est := int(float64(n)*sel + 0.5)
	if est < 1 {
		est = 1
	}
	if est > n {
		est = n
	}
	return est
}

// atomPred compiles a conjunct into a per-atom predicate over the named
// type. Evaluation errors surface through errp (first one wins).
func (p *Plan) atomPred(typeName string, conjunct expr.Expr, errp *error) (func(model.AtomID) bool, error) {
	c, ok := p.db.Container(typeName)
	if !ok {
		return nil, fmt.Errorf("plan: atom type %q has no container", typeName)
	}
	desc := c.Desc()
	return func(id model.AtomID) bool {
		a, ok := c.Get(id)
		if !ok {
			return false
		}
		// Account the read like molecule-binding evaluation does, so the
		// naive-vs-planned logical-work comparisons stay fair.
		p.db.Stats().AtomsFetched.Add(1)
		keep, err := expr.EvalPredicate(conjunct, expr.AtomBinding{TypeName: typeName, Desc: desc, Atom: a})
		if err != nil && *errp == nil {
			*errp = err
		}
		return err == nil && keep
	}, nil
}

// Execute runs the plan and returns the qualifying molecules, filling the
// actual-cardinality fields. It never enlarges the database; algebra-mode
// callers propagate the returned set themselves (see Restrict).
func (p *Plan) Execute() (core.MoleculeSet, error) {
	dv, err := core.NewDeriver(p.db, p.desc)
	if err != nil {
		return nil, err
	}
	p.Access.ActRoots, p.Derived, p.Out = 0, 0, 0
	p.Executed = false
	for i := range p.Pushdowns {
		p.Pushdowns[i].Cut = 0
	}
	for i := range p.Residuals {
		p.Residuals[i].Evals, p.Residuals[i].Passed = 0, 0
	}

	var evalErr error
	var checks []core.PruneCheck
	for i := range p.Pushdowns {
		pd := &p.Pushdowns[i]
		pred, err := p.atomPred(pd.Type, pd.Conjunct, &evalErr)
		if err != nil {
			return nil, err
		}
		checks = append(checks, core.PruneCheck{Pos: pd.Pos, Qualifies: func(atoms []model.AtomID) bool {
			for _, id := range atoms {
				if pred(id) {
					return true
				}
			}
			pd.Cut++
			return false
		}})
	}

	var rootFilter func(model.AtomID) bool
	if p.Access.Filter != nil {
		rootFilter, err = p.atomPred(p.Access.Root, p.Access.Filter, &evalErr)
		if err != nil {
			return nil, err
		}
	}

	// The residual runs as a short-circuit chain over the cost-ordered
	// conjuncts: the first failing conjunct rejects the molecule and the
	// later (costlier or less selective) ones never run for it.
	var set core.MoleculeSet
	keep := func(m *core.Molecule) bool {
		p.Derived++
		b := core.Binding{DB: p.db, M: m}
		for i := range p.Residuals {
			r := &p.Residuals[i]
			r.Evals++
			ok, err := expr.EvalPredicate(r.Conjunct, b)
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true // molecule rejected; keep walking
			}
			r.Passed++
		}
		set = append(set, m)
		return true
	}

	switch p.Access.Kind {
	case IndexScan:
		roots, ok := p.db.IndexLookup(p.Access.Root, p.Access.Attr, p.Access.Value)
		if !ok {
			return nil, fmt.Errorf("plan: index on %s.%s vanished between compile and execute", p.Access.Root, p.Access.Attr)
		}
		prepared := dv.PrepareChecks(checks)
		for _, r := range roots {
			if rootFilter != nil && !rootFilter(r) {
				if evalErr != nil {
					return nil, evalErr
				}
				continue
			}
			p.Access.ActRoots++
			m, ok, err := dv.DeriveForPrepared(r, prepared)
			if err != nil {
				return nil, err
			}
			if evalErr != nil {
				return nil, evalErr
			}
			if ok && !keep(m) {
				break
			}
		}
	default:
		// The root filter runs as a prune hook at the root position: it
		// rejects the molecule before any link is traversed. ActRoots
		// counts the roots that pass it and enter derivation proper.
		// Once an evaluation error is pending, every remaining root is
		// rejected here too, so the walk degrades to a cheap scan instead
		// of deriving the rest of the occurrence.
		rootPos, _ := p.desc.Pos(p.Access.Root)
		rootChecks := append([]core.PruneCheck{{Pos: rootPos, Qualifies: func(atoms []model.AtomID) bool {
			if evalErr != nil {
				return false
			}
			if rootFilter != nil && !(len(atoms) == 1 && rootFilter(atoms[0])) {
				return false
			}
			p.Access.ActRoots++
			return true
		}}}, checks...)
		dv.WalkPruned(rootChecks, func(m *core.Molecule) bool {
			return keep(m)
		})
	}
	if evalErr != nil {
		return nil, evalErr
	}
	p.Out = len(set)
	p.Executed = true
	return set, nil
}

// Summary is the one-line account of an executed plan.
func (p *Plan) Summary() string {
	cut := 0
	for _, pd := range p.Pushdowns {
		cut += pd.Cut
	}
	return fmt.Sprintf("%d roots in, %d pruned mid-derivation, %d derived, %d qualified",
		p.Access.ActRoots, cut, p.Derived, p.Out)
}

// Render prints the plan tree with estimated and (when executed) actual
// cardinalities, leaves first — the EXPLAIN output.
func (p *Plan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "structure: %s\n", p.desc)
	fmt.Fprintf(&b, "root:      %s\n", p.desc.Root())
	switch p.Access.Kind {
	case IndexScan:
		fmt.Fprintf(&b, "access:    index lookup %s.%s = %s (est %s roots [%s]%s)\n",
			p.Access.Root, p.Access.Attr, p.Access.Value,
			approx(p.Access.EstRoots), p.Access.EstSource, p.actual(p.Access.ActRoots))
	default:
		fmt.Fprintf(&b, "access:    full scan of %s (est %s roots [%s]%s)\n",
			p.Access.Root, approx(p.Access.EstRoots), p.Access.EstSource, p.actual(p.Access.ActRoots))
	}
	if p.Access.Filter != nil {
		fmt.Fprintf(&b, "           root filter %s before derivation\n", p.Access.Filter)
	}
	fmt.Fprintf(&b, "derive:    structure template over the atom network%s\n", p.actual(p.Derived))
	for _, pd := range p.Pushdowns {
		line := fmt.Sprintf("pushdown:  Σ↓[%s] at %s (est atom sel %.2f [%s]) — cuts the subtree when no %s atom qualifies",
			pd.Conjunct, pd.Type, pd.Sel, pd.Source, pd.Type)
		if p.Executed {
			line += fmt.Sprintf(" (cut %d)", pd.Cut)
		}
		b.WriteString(line + "\n")
	}
	for i, r := range p.Residuals {
		line := fmt.Sprintf("residual:  %d. Σ[%s] (est sel %.2f [%s], cost %.1f)",
			i+1, r.Conjunct, r.Sel, r.Source, r.Cost)
		if p.Executed {
			line += fmt.Sprintf(" — passed %d/%d", r.Passed, r.Evals)
		}
		b.WriteString(line + "\n")
	}
	if p.Executed {
		fmt.Fprintf(&b, "output:    %d molecule(s)\n", p.Out)
	}
	return b.String()
}

// actual renders ", actual n" when the plan ran.
func (p *Plan) actual(n int) string {
	if !p.Executed {
		return ""
	}
	return fmt.Sprintf(", actual %d", n)
}

// approx renders an estimate as ≈n.
func approx(n int) string { return fmt.Sprintf("≈%d", n) }
