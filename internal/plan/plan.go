// Package plan compiles molecule queries into explicit plan DAGs. A plan
// fixes, before any atom is touched,
//
//   - the access path: the entry point into the structure. The planner
//     enumerates every alternative — a full scan of the root type's
//     container (optionally pre-filtered by the root-only conjuncts), an
//     equality lookup through a secondary index on the *root* type, or an
//     equality lookup through an index on any *interior* atom type of the
//     structure. The links of the model are symmetric, so an interior
//     entry is legal: the matching interior atoms are climbed upward
//     against the declared edge directions (core.Deriver.RecoverRoots) to
//     the candidate roots, which are then derived downward as usual. Each
//     alternative is costed against histogram estimates and link fan-out
//     statistics, and EXPLAIN records the contest;
//   - the derivation node, annotated with per-atom-type pushdown
//     conjuncts: conjuncts referencing a single non-root atom type are
//     evaluated inside core.Deriver while the structure template is laid
//     over the atom network, cutting non-qualifying subtrees as soon as
//     the referenced type's component set is complete, instead of
//     post-filtering whole molecules (the optimization the paper
//     anticipates for query processing, Chapter 5); hooks at the same
//     type fire most-selective-first; and
//   - the residual filter: whatever part of the formula genuinely needs
//     the whole molecule (multi-type conjuncts, quantifiers over non-root
//     types) runs under molecule binding, its conjuncts ordered by
//     estimated selectivity × evaluation cost so cheap, selective
//     conjuncts short-circuit the expensive ones.
//
// Execution is fused and streaming: the root batch is cut into batches
// that fan out over the worker pool (core.DeriveRootsFusedStream), each
// worker runs the residual chain on a molecule the moment it finishes
// deriving it — no barrier separates derivation from filtering,
// rejected molecules never cross a goroutine, and every worker keeps
// private Evals/Passed/Cut accumulators merged at batch end so the
// EXPLAIN actuals stay exact — and every finished batch is emitted in
// root order through Stream's bounded channel, so consumers see the
// first molecules while the bulk of the batch is still deriving, with a
// live set bounded by O(workers × batch). Execute collects a Stream;
// cancelling the stream's context (or reaching Plan.Limit) stops the
// workers mid-derivation.
//
// Cardinality and selectivity estimates come from the equi-depth
// histograms of storage/stats when ANALYZE has built them, falling back
// to the uniform occurrence/distinct-keys assumption (and finally to
// fixed shape defaults); EXPLAIN labels every estimate with its source.
// Executions feed a per-database Feedback store with what they actually
// observed — molecule-level residual pass rates, per-root derivation
// work, per-entry climb work — and later compiles and executions prefer
// those observations (provenance [observed]) over the guesses, so a
// mis-ranked residual chain or a mis-weighted access-path contest is
// corrected by the second execution. Compiled plans are memoized per
// database in a Cache invalidated by the storage layer's plan epoch
// (DDL, index changes, ANALYZE), which resets the feedback store too.
//
// The planner is sound with respect to the molecule algebra: a plan's
// result is always set-equal to naive Σ (core.Restrict) over the same
// predicate — pushdown decides early whether a molecule can qualify, it
// never changes the content of qualifying molecules, residual ordering
// only permutes a commutative conjunction, and an interior entry only
// narrows the root batch (root recovery is a superset of the qualifying
// roots, and the entry conjunct stays on as a prune hook).
package plan

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mad/internal/core"
	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// AccessKind discriminates access paths.
type AccessKind uint8

// Access paths.
const (
	// FullScan reads every atom of the root type's container.
	FullScan AccessKind = iota
	// IndexScan reads only the root atoms a secondary index maps an
	// equality conjunct's value to.
	IndexScan
	// InteriorIndex enters the structure at a non-root atom type: an
	// index maps an equality conjunct's value to interior atoms, and the
	// candidate roots are recovered by climbing the structure's links
	// upward (the symmetric-use property makes the reverse traversal
	// legal). The entry conjunct additionally stays on as a pushdown
	// prune hook, which restores exactness — recovery over-approximates
	// at multi-parent types.
	InteriorIndex
	// OrderedScan walks a secondary index on the ORDER BY attribute in
	// key order, producing the whole root batch already sorted — the
	// access path that makes an ordered stream sort-free.
	OrderedScan
	// IndexIntersect composes several interior entries: two or more
	// selective indexed conjuncts on *different* atom types each run
	// their own entry lookup and upward climb, and the candidate-root
	// sets are intersected (sorted merge on root IDs) before a single
	// molecule is derived — a molecule-level index AND. Every entry
	// conjunct additionally stays on as a pushdown prune hook, which
	// restores exactness exactly as for a single interior entry.
	IndexIntersect
)

// Ordered-delivery mechanisms, as EXPLAIN provenance labels: how a plan
// with an ORDER BY turns the root-batch stream into a key-ordered one.
const (
	// OrderIndex: the access path already produces roots in key order
	// (an OrderedScan, or an index equality on the ORDER BY attribute
	// itself — one key, ties broken by atom ID). Zero sorting work.
	OrderIndex = "index-order"
	// OrderTopK: a bounded heap keeps the best LIMIT molecules while the
	// stream drains, and the heap's current bound is pushed into the
	// access path as a root prune — roots that cannot beat it are cut
	// before derivation.
	OrderTopK = "top-k heap"
	// OrderSort: no index and no LIMIT — the full result is collected
	// and sorted before delivery.
	OrderSort = "sort"
)

// OrderBy asks a plan to deliver molecules ordered by a root attribute.
// Ties (equal keys) are broken by root atom ID ascending regardless of
// direction, so every delivery mechanism — index ride, bounded heap,
// terminal sort — produces the identical sequence.
type OrderBy struct {
	Attr string
	Desc bool
	// Pos is the attribute's position in the root container's
	// descriptor, resolved at compile time.
	Pos int
}

// Access is the access-path node of a plan: how the root batch entering
// derivation is produced.
type Access struct {
	Kind AccessKind
	Root string
	// Attr and Value parameterize the entry equality: root.Attr = Value
	// for an IndexScan, EntryType.Attr = Value for an InteriorIndex.
	Attr  string
	Value model.Value
	// EntryType and EntryPos name the interior entry type of an
	// InteriorIndex access and its position in the description.
	EntryType string
	EntryPos  int
	// UpPath lists the atom types the upward climb of an InteriorIndex
	// access passes through, entry first, root last — for EXPLAIN.
	UpPath []string
	// Filter holds the remaining root-only conjuncts; they are evaluated
	// per root atom before derivation starts (every molecule has exactly
	// one root atom, so per-atom evaluation equals molecule evaluation).
	Filter expr.Expr
	// EstEntries estimates the interior atoms matching an InteriorIndex
	// entry equality (EntrySource records the statistic behind it);
	// ActEntries counts the atoms the index returned.
	EstEntries  int
	EntrySource string
	ActEntries  int
	// EstRoots estimates how many roots enter derivation: histogram
	// buckets when available, otherwise the container size for a full
	// scan and occurrence/distinct-keys for an index scan, scaled by the
	// estimated selectivity of the root filter. For an InteriorIndex it
	// is the climb estimate scaled the same way.
	EstRoots int
	// EstSource records which statistic produced EstRoots (SrcHistogram,
	// SrcUniform, SrcContainer, SrcLinkFan or SrcDefault) for EXPLAIN.
	EstSource string
	// ActRoots counts the roots that actually entered derivation.
	ActRoots int
	// ActClimb counts the link traversals the upward climb of an
	// InteriorIndex access actually performed — the actual the feedback
	// store calibrates future climb weights from.
	ActClimb int

	// Ranged marks an IndexScan or InteriorIndex whose index access is a
	// key-bounded walk of the ordered index over a range conjunction
	// (<, <=, >, >=, BETWEEN-shaped AND pairs) instead of an equality
	// lookup. Lo/Hi carry the merged bounds; HasLo/HasHi mark one-sided
	// ranges and LoInc/HiInc the bound inclusivity.
	Ranged       bool
	HasLo, HasHi bool
	Lo, Hi       model.Value
	LoInc, HiInc bool

	// Entries carries the per-entry detail of an IndexIntersect access:
	// each entry's lookup, climb and recovery figures, estimate and
	// actual. The aggregate ActEntries/ActClimb fields above sum over
	// the entries.
	Entries []AccessEntry
	// ActSurvivors counts the candidate roots the access path produced
	// before the root filter ran: the sorted-merge intersection
	// survivors of an IndexIntersect, the recovered roots of an
	// InteriorIndex, the posting/walk size of an IndexScan — the figure
	// the feedback store calibrates future contests with.
	ActSurvivors int
}

// AccessEntry is one entry point of an IndexIntersect access: an indexed
// equality on one interior type, with its own climb to candidate roots.
type AccessEntry struct {
	Type  string
	Pos   int
	Attr  string
	Value model.Value
	// UpPath lists the atom types this entry's upward climb passes
	// through, entry first, root last.
	UpPath []string
	// EstEntries/ActEntries: atoms the entry lookup returns; EstRoots/
	// ActRoots: candidate roots the climb recovers; ActClimb: link
	// traversals performed. When the intersection short-circuits on an
	// empty running set, later entries are never probed and keep zero
	// actuals.
	EstEntries  int
	EntrySource string
	ActEntries  int
	EstRoots    int
	ActRoots    int
	ActClimb    int
	// ord is the entry conjunct's ordinal in the split predicate, for
	// rebinding a shape-cached plan to fresh literals.
	ord int
}

// Calibration records the contest constants a compile weighed the
// access-path alternatives with, and where they came from: the model's
// fan-statistic estimate (SrcLinkFan) until executions have been
// recorded, the feedback store's observed actuals (SrcObserved) after.
type Calibration struct {
	// DerivPerRoot is the expected atoms fetched deriving one molecule.
	DerivPerRoot float64
	DerivSrc     string
	// ClimbPerEntry is the expected link traversals per interior entry
	// atom, filled only when the chosen access path is an interior entry.
	ClimbPerEntry float64
	ClimbSrc      string
	// TopKSurvival is the fraction of roots expected to survive the
	// top-K heap's bound prune and reach derivation, filled only for
	// ordered plans: 1 until the feedback store has recorded a bounded
	// run of this structure, the observed fraction after.
	TopKSurvival float64
	TopKSrc      string
}

// Alternative is one access path the planner considered, with its total
// estimated cost (atom fetches + link traversals to produce the root
// batch, plus expected derivation work) — the EXPLAIN provenance for why
// the chosen entry point won.
type Alternative struct {
	Label  string
	Cost   float64
	Chosen bool
}

// Pushdown is one conjunct pushed below derivation at one atom type.
type Pushdown struct {
	Type     string
	Pos      int
	Conjunct expr.Expr
	// Sel estimates the fraction of the type's atoms satisfying the
	// conjunct (a per-atom, not per-molecule, selectivity); Source
	// records the statistic behind it.
	Sel    float64
	Source string
	// Cut counts the molecules this node disqualified mid-derivation.
	Cut int
	// ord is the conjunct's ordinal in the split predicate, for
	// rebinding a shape-cached plan to fresh literals.
	ord int
}

// ResidualConjunct is one molecule-level conjunct of the residual filter,
// annotated with the cost-model estimates that ordered it and, after
// execution, with evaluation actuals.
type ResidualConjunct struct {
	Conjunct expr.Expr
	// key is the conjunct's canonical encoding, computed once at compile
	// time — the feedback store files and looks up observations under it
	// on every execution, so re-encoding the tree per run (under the
	// store's lock) would repeat the cost cacheKey was engineered to
	// avoid.
	key string
	// Sel estimates the fraction of molecules the conjunct keeps; Source
	// records which statistic produced it.
	Sel    float64
	Source string
	// Cost scores the relative per-molecule evaluation cost (the static
	// shape-based conjCost score).
	Cost float64
	// ObsCost is the observed wall-clock evaluation cost in ns/eval, 0
	// until the feedback store has recorded executions; CostSrc is
	// SrcObserved when the chain was ranked on the observed costs
	// (rendered as [observed-cost] by EXPLAIN), "" when the static score
	// decided.
	ObsCost float64
	CostSrc string
	// Evals and Passed count molecules evaluated and kept (short-circuit
	// means later conjuncts see fewer molecules than earlier ones);
	// Nanos accumulates the wall-clock nanoseconds spent evaluating the
	// conjunct — the actual the feedback store learns ObsCost from.
	Evals  int
	Passed int
	Nanos  int64
	// ord is the conjunct's ordinal in the split predicate, for
	// rebinding a shape-cached plan to fresh literals.
	ord int
}

// Plan is a compiled query plan: access path → derivation with pushdown →
// residual restriction. Projection stays with the caller (MQL applies it
// via PruneTo in query mode, Π with propagation in algebra mode).
type Plan struct {
	db   *storage.Database
	desc *core.Desc
	// key is the plan's cache identity (structure + canonical predicate
	// encoding); the feedback store files residual observations under it.
	key string
	// epoch is the database's plan epoch at compile time; the feedback
	// store discards observations from plans compiled under an older
	// statistics regime.
	epoch uint64
	// pred is the whole compiled predicate — kept so the plan-cache
	// image can persist the shape and so shape-cached plans can rebind.
	pred expr.Expr
	// Rebinding metadata: which conjunct ordinals of the split predicate
	// fed the root filter, the access equality value, and the access
	// range bounds. A shape-keyed cache hit with fresh literals replays
	// these against the new predicate's conjuncts instead of recompiling.
	filterOrds     []int
	accessValueOrd int
	rangeOrds      []int
	// noIntersect excludes the multi-entry intersection candidate from
	// the access-path contest (the single-entry baseline the P16
	// benchmark and the parity tests measure the intersection against).
	noIntersect bool

	Access Access
	// Calibration is the contest-constant provenance of this compile.
	Calibration Calibration
	// Alternatives records every access path considered at compile time,
	// most attractive first, with the chosen one marked.
	Alternatives []Alternative
	Pushdowns    []Pushdown
	// Residual is the whole residual conjunction in source order (nil
	// when everything pushed down); Residuals holds the same conjuncts
	// split and cost-ordered for short-circuit evaluation.
	Residual  expr.Expr
	Residuals []ResidualConjunct

	// Workers bounds the worker pool derivation fans the root batch out
	// over: 0 selects GOMAXPROCS, 1 forces sequential derivation.
	Workers int
	// Limit caps the molecules a Stream delivers (and therefore what
	// Execute returns): 0 means unlimited. When the cap is reached the
	// in-flight derivation is cancelled, so a LIMIT query never derives
	// far past its answer. A truncated run's actuals cover only the work
	// actually done and are not recorded into the feedback store. On an
	// ordered plan without an index ride, Limit instead selects the
	// top-K heap: the whole root batch is examined (under the heap-bound
	// prune), and exactly the K best molecules are delivered.
	Limit int
	// Order, when non-nil, makes the stream deliver molecules sorted by
	// the root attribute; OrderPath records the mechanism the run used
	// (OrderIndex, OrderTopK or OrderSort) and OrderCut counts the roots
	// the top-K heap bound cut before derivation.
	Order     *OrderBy
	OrderPath string
	OrderCut  int

	// Recompiled marks a plan produced by a drift-triggered targeted
	// recompile: the feedback store observed this cache entry's actuals
	// diverging from its compile-time estimates beyond the drift factor,
	// marked just that entry stale, and the next fetch reran the contest
	// on calibrated numbers — without bumping the plan epoch. EXPLAIN
	// renders it as [recompiled].
	Recompiled bool

	// Execution actuals (valid after Execute).
	Derived  int // molecules fully derived (survived every pushdown)
	Out      int // molecules after the residual filter
	Executed bool
}

// presorted reports whether the access path already yields roots in the
// requested order: an OrderedScan by construction, or an index equality
// on the ORDER BY attribute itself (every root shares the one key, so
// the ID-ascending posting is the tie-broken order for both directions).
func (p *Plan) presorted() bool {
	if p.Order == nil {
		return false
	}
	return p.Access.Kind == OrderedScan ||
		(p.Access.Kind == IndexScan && p.Access.Attr == p.Order.Attr)
}

// orderPath predicts the ordered-delivery mechanism the next run will
// use under the plan's current Limit — what OrderPath will record.
func (p *Plan) orderPath() string {
	switch {
	case p.Order == nil:
		return ""
	case p.presorted():
		return OrderIndex
	case p.Limit > 0:
		return OrderTopK
	default:
		return OrderSort
	}
}

// Desc returns the structure the plan derives.
func (p *Plan) Desc() *core.Desc { return p.desc }

// rootConjInfo carries the per-root-conjunct analysis access-path
// enumeration works from.
type rootConjInfo struct {
	conj expr.Expr
	sel  float64
	src  string
	// ord is the conjunct's ordinal in the split predicate.
	ord int
	// Equality-index candidacy (indexable reports whether the conjunct
	// is root.attr = const with an index on attr).
	indexable bool
	attr      string
	val       model.Value
	est       int
	estSrc    string
	// Range-index candidacy: the conjunct is root.attr <op> const for a
	// range operator with an index on attr; range conjuncts on the same
	// attribute merge into one key-bounded ordered walk.
	rangeable bool
	rattr     string
	rop       expr.CmpOp
	rval      model.Value
}

// Compile builds the plan for deriving desc under pred (nil = no
// restriction). pred must already be statically valid for the structure
// (expr.Check against core.Scope).
func Compile(db *storage.Database, desc *core.Desc, pred expr.Expr) (*Plan, error) {
	return compileKeyed(db, desc, pred, nil, cacheKey(desc, pred, nil), false)
}

// CompileSingleEntry is Compile with the multi-entry index-intersection
// candidate excluded from the access-path contest — the best
// single-entry baseline the P16 benchmark and the intersection parity
// tests measure the composed path against.
func CompileSingleEntry(db *storage.Database, desc *core.Desc, pred expr.Expr) (*Plan, error) {
	return compileKeyed(db, desc, pred, nil, cacheKey(desc, pred, nil), true)
}

// CompileOrdered is Compile with an ORDER BY on a root attribute: the
// access-path contest additionally weighs an ordered index ride against
// heap-ordered delivery, and the resulting plan's streams deliver in key
// order. order must name an attribute of the root type; a nil order
// degrades to Compile.
func CompileOrdered(db *storage.Database, desc *core.Desc, pred expr.Expr, order *OrderBy) (*Plan, error) {
	return compileKeyed(db, desc, pred, order, cacheKey(desc, pred, order), false)
}

// compileKeyed is Compile with the cache key already computed — the plan
// cache passes the key it looked up with, so a miss does not encode the
// predicate tree a second time.
func compileKeyed(db *storage.Database, desc *core.Desc, pred expr.Expr, order *OrderBy, key string, noIntersect bool) (*Plan, error) {
	p := &Plan{
		db:             db,
		desc:           desc,
		key:            key,
		epoch:          db.PlanEpoch(),
		pred:           pred,
		accessValueOrd: -1,
		noIntersect:    noIntersect,
		Access: Access{
			Kind:      FullScan,
			Root:      desc.Root(),
			EstSource: SrcContainer,
		},
	}
	if order != nil {
		c, ok := db.Container(desc.Root())
		if !ok {
			return nil, fmt.Errorf("plan: root type %q has no container", desc.Root())
		}
		pos, ok := c.Desc().Lookup(order.Attr)
		if !ok {
			return nil, fmt.Errorf("plan: root type %q has no attribute %q to order by", desc.Root(), order.Attr)
		}
		p.Order = &OrderBy{Attr: order.Attr, Desc: order.Desc, Pos: pos}
	}
	n, err := db.CountAtoms(desc.Root())
	if err != nil {
		return nil, err
	}
	p.Access.EstRoots = n

	var rootConjs []rootConjInfo
	for ord, c := range splitConjuncts(pred) {
		t, single := conjunctType(db, desc, c)
		switch {
		case single && t == desc.Root():
			info := rootConjInfo{conj: c, ord: ord}
			info.sel, info.src = conjSelectivity(db, desc, c)
			if attr, val, ok := indexableEq(c, db, t); ok {
				info.indexable, info.attr, info.val = true, attr, val
				info.est, info.estSrc = estimateEqCount(db, t, attr, val, n)
			} else if a, op, v, ok := attrConstCmp(c); ok && isRangeOp(op) && db.HasIndex(t, a.Name) {
				info.rangeable, info.rattr, info.rop, info.rval = true, a.Name, op, v
			}
			rootConjs = append(rootConjs, info)
		case single && pushableShape(c):
			pos, _ := desc.Pos(t)
			sel, src := conjSelectivity(db, desc, c)
			p.Pushdowns = append(p.Pushdowns, Pushdown{
				Type: t, Pos: pos, Conjunct: c, Sel: sel, Source: src, ord: ord,
			})
		default:
			p.Residual = combine(p.Residual, c)
			sel, src := conjSelectivity(db, desc, c)
			p.Residuals = append(p.Residuals, ResidualConjunct{
				Conjunct: c, key: conjKey(c), Sel: sel, Source: src, Cost: conjCost(c), ord: ord,
			})
		}
	}

	// Lookup only: compiling against a database that never opted into
	// feedback (CacheFor or FeedbackFor) must not register it — all
	// Feedback methods treat a nil receiver as "no observations".
	fb := feedbackLookup(db)
	p.chooseAccess(n, rootConjs, fb)

	// Residual selectivities and evaluation costs: the feedback store's
	// observed molecule-level pass rates and wall-clock per-eval costs
	// supersede the histogram/default guesses wherever executions of
	// this plan (same epoch) have been recorded; rankResiduals orders
	// the chain around whatever figures are in force.
	fb.observeResiduals(p)
	p.rankResiduals()
	// Pushdown order follows the topological order of the structure (a
	// hook can only fire once its type's component set is complete);
	// among hooks at the same type, the most selective fires first so
	// the cheapest cut decides before the weaker conjuncts run.
	if len(p.Pushdowns) > 1 {
		topoPos := make(map[string]int, desc.NumTypes())
		for i, t := range desc.Topo() {
			topoPos[t] = i
		}
		before := func(a, b Pushdown) bool {
			pa, pb := topoPos[a.Type], topoPos[b.Type]
			if pa != pb {
				return pa < pb
			}
			return a.Sel < b.Sel
		}
		for i := 1; i < len(p.Pushdowns); i++ {
			for j := i; j > 0 && before(p.Pushdowns[j], p.Pushdowns[j-1]); j-- {
				p.Pushdowns[j], p.Pushdowns[j-1] = p.Pushdowns[j-1], p.Pushdowns[j]
			}
		}
	}
	return p, nil
}

// chooseAccess enumerates the access-path alternatives — root full scan,
// the best root-index equality, key-bounded range walks on indexed range
// conjuncts (root and interior), an interior-index entry per indexed
// pushdown equality, and a multi-entry index intersection when indexed
// equalities land on two or more different interior types — costs each as
//
//	(atoms fetched + links climbed to produce the root batch)
//	+ roots entering derivation × expected per-molecule derivation work
//
// and installs the cheapest. The losing alternatives are recorded for
// EXPLAIN. The contest constants come from the model's fan statistics
// until the feedback store has recorded executions of this structure —
// then the observed per-root derivation work and per-entry climb work
// replace the fiat weights (Calibration records the provenance), and an
// access observation recorded for this exact cache entry overrides the
// matching candidate's cardinalities — the calibration a drift-triggered
// recompile flips the contest with.
func (p *Plan) chooseAccess(n int, rootConjs []rootConjInfo, fb *Feedback) {
	desc := p.desc
	derivCost := derivCostPerRoot(p.db, desc)
	p.Calibration.DerivPerRoot, p.Calibration.DerivSrc = derivCost, SrcLinkFan
	if obs, ok := fb.derivCostObserved(desc.String()); ok {
		derivCost = obs
		p.Calibration.DerivPerRoot, p.Calibration.DerivSrc = obs, SrcObserved
	}
	aobs, aobsOK := fb.accessObserved(p.key)

	// Selectivity of the whole root filter, and with the conjuncts the
	// access path absorbs taken out.
	allSel, allSrc := 1.0, ""
	for _, rc := range rootConjs {
		allSel *= rc.sel
		allSrc = combineSource(allSrc, rc.src)
	}
	selWithout := func(skip map[int]bool) (float64, string) {
		sel, src := 1.0, ""
		for i, rc := range rootConjs {
			if skip[i] {
				continue
			}
			sel *= rc.sel
			src = combineSource(src, rc.src)
		}
		return sel, src
	}

	// Full scan: every root atom fetched, the filter thins the batch.
	fullEntering := scaleEst(n, allSel)
	alts := []Alternative{{
		Label: fmt.Sprintf("full scan of %s", desc.Root()),
		Cost:  float64(n) + float64(fullEntering)*derivCost,
	}}
	type candidate struct {
		alt      int // index into alts
		entering int // roots expected to enter derivation
		// presorted marks candidates whose root batch already carries
		// the requested order, exempting them from the ordering
		// surcharge below.
		presorted bool
		apply     func()
	}
	cands := []candidate{{alt: 0, entering: fullEntering, apply: func() {
		p.Access.Kind = FullScan
		p.Access.EstRoots = n
		p.Access.EstSource = SrcContainer
		p.installRootFilter(rootConjs, nil, n)
	}}}

	// Best root-index equality.
	bestRoot := -1
	for i, rc := range rootConjs {
		if rc.indexable && (bestRoot < 0 || rc.est < rootConjs[bestRoot].est) {
			bestRoot = i
		}
	}
	if bestRoot >= 0 {
		rc := rootConjs[bestRoot]
		est, estSrc := rc.est, rc.estSrc
		if aobsOK && aobs.kind == IndexScan && !aobs.ranged && aobs.attr == rc.attr {
			est, estSrc = obsCount(aobs.entries), SrcObserved
		}
		restSel, _ := selWithout(map[int]bool{bestRoot: true})
		entering := scaleEst(est, restSel)
		alts = append(alts, Alternative{
			Label: fmt.Sprintf("index %s.%s", desc.Root(), rc.attr),
			Cost:  float64(est) + float64(entering)*derivCost,
		})
		cands = append(cands, candidate{alt: len(alts) - 1, entering: entering,
			presorted: p.Order != nil && rc.attr == p.Order.Attr, apply: func() {
				rc := rootConjs[bestRoot]
				p.Access.Kind = IndexScan
				p.Access.Attr, p.Access.Value = rc.attr, rc.val
				p.Access.EstRoots = est
				p.Access.EstSource = estSrc
				p.accessValueOrd = rc.ord
				p.installRootFilter(rootConjs, map[int]bool{bestRoot: true}, est)
			}})
	}

	// Root range entries: range conjuncts on an indexed root attribute
	// merge per attribute into one key-bounded walk of the ordered index
	// view. The walk is exact, so the covered conjuncts leave the root
	// filter; a walk on the ORDER BY attribute doubles as an index-order
	// ride.
	rootRanges, rootRangeAttrs := map[string]*rangeSpec{}, []string(nil)
	for i, rc := range rootConjs {
		if !rc.rangeable {
			continue
		}
		s := rootRanges[rc.rattr]
		if s == nil {
			s = &rangeSpec{typeName: desc.Root(), attr: rc.rattr}
			rootRanges[rc.rattr] = s
			rootRangeAttrs = append(rootRangeAttrs, rc.rattr)
		}
		s.addBound(rc.rop, rc.rval)
		s.ords = append(s.ords, rc.ord)
		s.idxs = append(s.idxs, i)
	}
	for _, attr := range rootRangeAttrs {
		attr, spec := attr, rootRanges[attr]
		est, estSrc := estimateRangeCount(p.db, desc.Root(), spec, n)
		if aobsOK && aobs.kind == IndexScan && aobs.ranged && aobs.attr == attr {
			est, estSrc = obsCount(aobs.entries), SrcObserved
		}
		skip := map[int]bool{}
		for _, i := range spec.idxs {
			skip[i] = true
		}
		restSel, _ := selWithout(skip)
		entering := scaleEst(est, restSel)
		alts = append(alts, Alternative{
			Label: fmt.Sprintf("index range %s.%s %s", desc.Root(), attr, spec),
			Cost:  float64(est) + float64(entering)*derivCost,
		})
		cands = append(cands, candidate{alt: len(alts) - 1, entering: entering,
			presorted: p.Order != nil && attr == p.Order.Attr, apply: func() {
				p.Access.Kind = IndexScan
				p.Access.Attr = attr
				spec.fillAccess(&p.Access)
				p.Access.EstRoots = est
				p.Access.EstSource = estSrc
				p.rangeOrds = spec.ords
				p.installRootFilter(rootConjs, skip, est)
			}})
	}

	// Interior-index entries: one candidate per pushdown conjunct that is
	// an indexed equality on its (non-root) type.
	for pi := range p.Pushdowns {
		pd := &p.Pushdowns[pi]
		attr, val, ok := indexableEq(pd.Conjunct, p.db, pd.Type)
		if !ok {
			continue
		}
		nT, err := p.db.CountAtoms(pd.Type)
		if err != nil {
			continue
		}
		entries, entriesSrc := estimateEqCount(p.db, pd.Type, attr, val, nT)
		if aobsOK && aobs.kind == InteriorIndex && !aobs.ranged && aobs.entryType == pd.Type && aobs.attr == attr {
			entries, entriesSrc = obsCount(aobs.entries), SrcObserved
		}
		recovered, climbCost, upPath := climbEstimate(p.db, desc, pd.Type, entries)
		climbPerEntry, climbSrc := 0.0, SrcLinkFan
		if entries > 0 {
			climbPerEntry = climbCost / float64(entries)
		}
		if obs, ok := fb.climbObserved(desc.String(), pd.Type); ok {
			// Observed links-per-entry from recorded executions replaces
			// the fan-statistic climb weight.
			climbPerEntry, climbSrc = obs, SrcObserved
			climbCost = obs * float64(entries)
		}
		if aobsOK && aobs.kind == InteriorIndex && !aobs.ranged && aobs.entryType == pd.Type && aobs.attr == attr && aobs.roots > 0 {
			recovered = obsCount(aobs.roots)
		}
		entering := scaleEst(recovered, allSel)
		alts = append(alts, Alternative{
			Label: fmt.Sprintf("interior-index %s.%s", pd.Type, attr),
			Cost:  float64(entries) + climbCost + float64(recovered) + float64(entering)*derivCost,
		})
		cands = append(cands, candidate{alt: len(alts) - 1, entering: entering, apply: func() {
			pd := &p.Pushdowns[pi]
			p.Access.Kind = InteriorIndex
			p.Access.Attr, p.Access.Value = attr, val
			p.Access.EntryType = pd.Type
			p.Access.EntryPos = pd.Pos
			p.Access.UpPath = upPath
			p.Access.EstEntries = entries
			p.Access.EntrySource = entriesSrc
			p.Access.EstRoots = recovered
			p.Access.EstSource = combineSource(SrcLinkFan, entriesSrc)
			p.Calibration.ClimbPerEntry, p.Calibration.ClimbSrc = climbPerEntry, climbSrc
			p.accessValueOrd = pd.ord
			p.installRootFilter(rootConjs, nil, recovered)
		}})
	}

	// Interior range entries: range conjuncts pushed down at an indexed
	// interior attribute merge into a key-bounded walk of that index,
	// then climb upward exactly like an equality entry. The covered
	// conjuncts stay on as pushdown hooks — recovery over-approximates,
	// so exactness comes from the hooks, not the walk.
	intRanges, intRangeKeys := map[string]*rangeSpec{}, []string(nil)
	for pi := range p.Pushdowns {
		pd := &p.Pushdowns[pi]
		a, op, v, ok := attrConstCmp(pd.Conjunct)
		if !ok || !isRangeOp(op) || !p.db.HasIndex(pd.Type, a.Name) {
			continue
		}
		k := pd.Type + "\x00" + a.Name
		s := intRanges[k]
		if s == nil {
			s = &rangeSpec{typeName: pd.Type, attr: a.Name}
			intRanges[k] = s
			intRangeKeys = append(intRangeKeys, k)
		}
		s.addBound(op, v)
		s.ords = append(s.ords, pd.ord)
		s.idxs = append(s.idxs, pi)
	}
	for _, k := range intRangeKeys {
		spec := intRanges[k]
		nT, err := p.db.CountAtoms(spec.typeName)
		if err != nil {
			continue
		}
		entries, entriesSrc := estimateRangeCount(p.db, spec.typeName, spec, nT)
		if aobsOK && aobs.kind == InteriorIndex && aobs.ranged && aobs.entryType == spec.typeName && aobs.attr == spec.attr {
			entries, entriesSrc = obsCount(aobs.entries), SrcObserved
		}
		recovered, climbCost, upPath := climbEstimate(p.db, desc, spec.typeName, entries)
		climbPerEntry, climbSrc := 0.0, SrcLinkFan
		if entries > 0 {
			climbPerEntry = climbCost / float64(entries)
		}
		if obs, ok := fb.climbObserved(desc.String(), spec.typeName); ok {
			climbPerEntry, climbSrc = obs, SrcObserved
			climbCost = obs * float64(entries)
		}
		if aobsOK && aobs.kind == InteriorIndex && aobs.ranged && aobs.entryType == spec.typeName && aobs.attr == spec.attr && aobs.roots > 0 {
			recovered = obsCount(aobs.roots)
		}
		entering := scaleEst(recovered, allSel)
		pos, _ := desc.Pos(spec.typeName)
		alts = append(alts, Alternative{
			Label: fmt.Sprintf("interior-range %s.%s %s", spec.typeName, spec.attr, spec),
			Cost:  float64(entries) + climbCost + float64(recovered) + float64(entering)*derivCost,
		})
		cands = append(cands, candidate{alt: len(alts) - 1, entering: entering, apply: func() {
			p.Access.Kind = InteriorIndex
			p.Access.Attr = spec.attr
			spec.fillAccess(&p.Access)
			p.Access.EntryType = spec.typeName
			p.Access.EntryPos = pos
			p.Access.UpPath = upPath
			p.Access.EstEntries = entries
			p.Access.EntrySource = entriesSrc
			p.Access.EstRoots = recovered
			p.Access.EstSource = combineSource(SrcLinkFan, entriesSrc)
			p.Calibration.ClimbPerEntry, p.Calibration.ClimbSrc = climbPerEntry, climbSrc
			p.rangeOrds = spec.ords
			p.installRootFilter(rootConjs, nil, recovered)
		}})
	}

	// Index intersection: the best indexed equality entry per distinct
	// interior type; when two or more types qualify, every entry climbs
	// to candidate roots and the sorted sets intersect before a single
	// molecule is derived. Cost is Σ(access + climb + merge) over the
	// entries plus derivation of the expected survivors (independence
	// assumption: survivors ≈ n × Π(recoveredᵢ/n)).
	if !p.noIntersect && n > 0 {
		type interEntry struct {
			pi      int
			attr    string
			val     model.Value
			entries int
			src     string
		}
		bestByType, typeOrder := map[string]interEntry{}, []string(nil)
		for pi := range p.Pushdowns {
			pd := &p.Pushdowns[pi]
			attr, val, ok := indexableEq(pd.Conjunct, p.db, pd.Type)
			if !ok {
				continue
			}
			nT, err := p.db.CountAtoms(pd.Type)
			if err != nil {
				continue
			}
			entries, src := estimateEqCount(p.db, pd.Type, attr, val, nT)
			prev, seen := bestByType[pd.Type]
			if !seen {
				typeOrder = append(typeOrder, pd.Type)
			}
			if !seen || entries < prev.entries {
				bestByType[pd.Type] = interEntry{pi: pi, attr: attr, val: val, entries: entries, src: src}
			}
		}
		if len(typeOrder) >= 2 {
			ents := make([]AccessEntry, 0, len(typeOrder))
			labels := make([]string, 0, len(typeOrder))
			access, frac := 0.0, 1.0
			sumEntries := 0
			estSrc := SrcLinkFan
			for _, t := range typeOrder {
				ie := bestByType[t]
				pd := &p.Pushdowns[ie.pi]
				recovered, climbCost, upPath := climbEstimate(p.db, desc, t, ie.entries)
				if obs, ok := fb.climbObserved(desc.String(), t); ok {
					climbCost = obs * float64(ie.entries)
				}
				ents = append(ents, AccessEntry{
					Type: t, Pos: pd.Pos, Attr: ie.attr, Value: ie.val,
					UpPath: upPath, EstEntries: ie.entries, EntrySource: ie.src,
					EstRoots: recovered, ord: pd.ord,
				})
				labels = append(labels, fmt.Sprintf("%s.%s", t, ie.attr))
				access += float64(ie.entries) + climbCost + float64(recovered)
				frac *= float64(recovered) / float64(n)
				sumEntries += ie.entries
				estSrc = combineSource(estSrc, ie.src)
			}
			survivors := scaleEst(n, frac)
			if aobsOK && aobs.kind == IndexIntersect && aobs.roots > 0 {
				survivors, estSrc = obsCount(aobs.roots), SrcObserved
			}
			entering := scaleEst(survivors, allSel)
			alts = append(alts, Alternative{
				Label: fmt.Sprintf("intersect[%s]", strings.Join(labels, " ∧ ")),
				Cost:  access + float64(entering)*derivCost,
			})
			cands = append(cands, candidate{alt: len(alts) - 1, entering: entering, apply: func() {
				p.Access.Kind = IndexIntersect
				p.Access.Entries = ents
				p.Access.EstEntries = sumEntries
				p.Access.EstRoots = survivors
				p.Access.EstSource = estSrc
				p.installRootFilter(rootConjs, nil, survivors)
			}})
		}
	}

	// Ordered scan: when the ORDER BY attribute carries a root index,
	// walking it in key order produces the batch pre-sorted — the same
	// production cost as a full scan, none of the ordering work.
	if p.Order != nil && p.db.HasIndex(desc.Root(), p.Order.Attr) {
		alts = append(alts, Alternative{
			Label: fmt.Sprintf("ordered index %s.%s", desc.Root(), p.Order.Attr),
			Cost:  float64(n) + float64(fullEntering)*derivCost,
		})
		cands = append(cands, candidate{alt: len(alts) - 1, entering: fullEntering,
			presorted: true, apply: func() {
				p.Access.Kind = OrderedScan
				p.Access.Attr = p.Order.Attr
				p.Access.EstRoots = n
				p.Access.EstSource = SrcContainer
				p.installRootFilter(rootConjs, nil, n)
			}})
	}

	// Ordering surcharge: alternatives whose batch arrives unsorted pay
	// the heap/sort comparison work over the molecules entering
	// derivation — and, once the feedback store has observed how small a
	// fraction of roots survives the top-K bound prune, their derivation
	// term shrinks to that fraction, so a calibrated heap path can beat
	// the index ride it lost to on fiat weights.
	if p.Order != nil {
		survival, src := 1.0, ""
		if obs, ok := fb.topkObserved(desc.String()); ok {
			survival, src = obs, SrcObserved
		}
		p.Calibration.TopKSurvival, p.Calibration.TopKSrc = survival, src
		for _, c := range cands {
			if c.presorted {
				continue
			}
			e := float64(c.entering)
			alts[c.alt].Cost += orderCost(e) - e*derivCost*(1-survival)
		}
	}

	// Pick the cheapest; earlier candidates win ties (scan before root
	// index before interior — the simpler machinery when costs agree).
	best := 0
	for i := 1; i < len(cands); i++ {
		if alts[cands[i].alt].Cost < alts[cands[best].alt].Cost {
			best = i
		}
	}
	alts[cands[best].alt].Chosen = true
	sort.SliceStable(alts, func(i, j int) bool { return alts[i].Cost < alts[j].Cost })
	p.Alternatives = alts
	cands[best].apply()
}

// installRootFilter conjoins every root conjunct except the skipped ones
// (those the access path absorbs exactly — an index equality or a
// key-bounded range walk) into the pre-derivation root filter and scales
// EstRoots (currently `produced` roots) by the filter's selectivity.
func (p *Plan) installRootFilter(rootConjs []rootConjInfo, skip map[int]bool, produced int) {
	filterSel := 1.0
	filterSrc := ""
	for i, rc := range rootConjs {
		if skip[i] {
			continue
		}
		p.Access.Filter = combine(p.Access.Filter, rc.conj)
		p.filterOrds = append(p.filterOrds, rc.ord)
		filterSel *= rc.sel
		filterSrc = combineSource(filterSrc, rc.src)
	}
	if p.Access.Filter != nil {
		// Scale the root estimate by the filter's selectivity: EstRoots
		// approximates the roots that *enter derivation*, after the
		// pre-derivation filter.
		p.Access.EstRoots = scaleEst(produced, filterSel)
		if p.Access.Kind == FullScan {
			// The filter's statistic supersedes the bare container size.
			p.Access.EstSource = filterSrc
		} else {
			p.Access.EstSource = combineSource(p.Access.EstSource, filterSrc)
		}
	}
}

// combineSource merges provenance labels, treating "" as absent.
func combineSource(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return worseSource(a, b)
}

// splitConjuncts flattens the top-level AND tree of pred.
func splitConjuncts(pred expr.Expr) []expr.Expr {
	if pred == nil {
		return nil
	}
	if and, ok := pred.(expr.And); ok {
		return append(splitConjuncts(and.L), splitConjuncts(and.R)...)
	}
	return []expr.Expr{pred}
}

// combine conjoins two optional predicates.
func combine(a, b expr.Expr) expr.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return expr.And{L: a, R: b}
}

// conjunctType resolves every reference of the conjunct (attributes,
// quantifier and aggregate targets) to its atom type within the structure
// — unqualified attributes resolve to the unique declaring component type,
// mirroring molecule-binding semantics — and reports whether they all
// name one single type.
func conjunctType(db *storage.Database, desc *core.Desc, c expr.Expr) (string, bool) {
	// Fast path for the dominant shape: qualified attribute vs constant.
	if cmp, ok := c.(expr.Cmp); ok {
		a, aok := cmp.L.(expr.Attr)
		_, cok := cmp.R.(expr.Const)
		if !aok || !cok {
			a, aok = cmp.R.(expr.Attr)
			_, cok = cmp.L.(expr.Const)
		}
		if aok && cok && a.Type != "" {
			return a.Type, desc.HasType(a.Type)
		}
	}
	types := make(map[string]bool)
	for t := range expr.TypesReferenced(c) {
		if t == "" {
			continue
		}
		types[t] = true
	}
	for _, a := range expr.References(c) {
		if a.Type != "" {
			continue
		}
		t, err := core.ResolveUnqualified(db, desc, a.Name)
		if err != nil {
			return "", false
		}
		types[t] = true
	}
	if len(types) != 1 {
		return "", false
	}
	for t := range types {
		if !desc.HasType(t) {
			return "", false
		}
		return t, true
	}
	return "", false
}

// pushableShape reports whether a single-type conjunct may be evaluated
// per component atom with existential (OR) aggregation. That holds for
// comparisons whose attribute side is the bare attribute reference and
// whose other side is reference-free, and for disjunctions of such
// comparisons: molecule-level evaluation of these forms is existential
// over the component atoms, and ∃ distributes over OR. Negation,
// universal/count quantifiers and arithmetic over the multi-valued side
// do not commute with ∃ and stay in the residual filter.
func pushableShape(e expr.Expr) bool {
	switch n := e.(type) {
	case expr.Or:
		return pushableShape(n.L) && pushableShape(n.R)
	case expr.Cmp:
		if _, ok := n.L.(expr.Attr); ok && referenceFree(n.R) {
			return true
		}
		if _, ok := n.R.(expr.Attr); ok && referenceFree(n.L) {
			return true
		}
	}
	return false
}

// referenceFree reports that e mentions no attribute, quantifier or
// aggregate — it evaluates to the same constant under any binding.
func referenceFree(e expr.Expr) bool {
	return len(expr.TypesReferenced(e)) == 0
}

// indexableEq detects typeName.attr = constant (either orientation) where
// the type carries an index on attr, returning the attribute and value.
func indexableEq(c expr.Expr, db *storage.Database, typeName string) (string, model.Value, bool) {
	cmp, ok := c.(expr.Cmp)
	if !ok || cmp.Op != expr.EQ {
		return "", model.Null(), false
	}
	a, aok := cmp.L.(expr.Attr)
	l, lok := cmp.R.(expr.Const)
	if !aok || !lok {
		a, aok = cmp.R.(expr.Attr)
		l, lok = cmp.L.(expr.Const)
	}
	if !aok || !lok {
		return "", model.Null(), false
	}
	if !db.HasIndex(typeName, a.Name) {
		return "", model.Null(), false
	}
	return a.Name, l.V, true
}

// estimateEqCount estimates how many atoms of typeName carry attr = v:
// histogram buckets when ANALYZE has built them (the estimate that stays
// honest under skew), the uniform occurrence/distinct-keys assumption
// otherwise.
func estimateEqCount(db *storage.Database, typeName, attr string, v model.Value, n int) (int, string) {
	if h, ok := db.Histogram(typeName, attr); ok && h.Total() > 0 {
		est := int(h.EstimateEq(v))
		if est > n {
			est = n
		}
		return est, SrcHistogram
	}
	keys, _ := db.IndexCardinality(typeName, attr)
	return estimateEqUniform(n, keys), SrcUniform
}

// estimateEqUniform is the PR-1 equality estimate: occurrence size
// divided by the index's distinct-key count, rounded up.
func estimateEqUniform(n, keys int) int {
	if keys <= 0 {
		return n
	}
	est := (n + keys - 1) / keys
	if est < 1 {
		est = 1
	}
	return est
}

// scaleEst scales a cardinality estimate by a selectivity, keeping a
// nonzero floor when the base was nonzero (an estimated-empty filter must
// not advertise an impossible zero).
func scaleEst(n int, sel float64) int {
	if n <= 0 {
		return 0
	}
	est := int(float64(n)*sel + 0.5)
	if est < 1 {
		est = 1
	}
	if est > n {
		est = n
	}
	return est
}

// evalErrBox captures the first evaluation error raised by a per-atom
// predicate; derivation fans out over the worker pool, so the capture
// must be safe for concurrent use. The failed flag gives hooks a cheap
// lock-free "is an error pending" probe on the hot path.
type evalErrBox struct {
	failed atomic.Bool
	mu     sync.Mutex
	err    error
}

func (b *evalErrBox) set(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	b.failed.Store(true)
}

func (b *evalErrBox) get() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// atomPred compiles a conjunct into a per-atom predicate over the named
// type, reading atom values at commit timestamp ts (zero = latest view).
// Evaluation errors surface through eb (first one wins); the returned
// predicate is safe for concurrent use.
func (p *Plan) atomPred(typeName string, conjunct expr.Expr, eb *evalErrBox, ts uint64) (func(model.AtomID) bool, error) {
	c, ok := p.db.Container(typeName)
	if !ok {
		return nil, fmt.Errorf("plan: atom type %q has no container", typeName)
	}
	desc := c.Desc()
	return func(id model.AtomID) bool {
		var a model.Atom
		var ok bool
		if ts != 0 {
			a, ok = c.GetAt(id, ts)
		} else {
			a, ok = c.Get(id)
		}
		if !ok {
			return false
		}
		// Account the read like molecule-binding evaluation does, so the
		// naive-vs-planned logical-work comparisons stay fair.
		p.db.Stats().AtomsFetched.Add(1)
		keep, err := expr.EvalPredicate(conjunct, expr.AtomBinding{TypeName: typeName, Desc: desc, Atom: a})
		if err != nil {
			eb.set(err)
		}
		return err == nil && keep
	}, nil
}

// rootBatch produces the root atoms the access path feeds into
// derivation, before the root filter: an index lookup's posting list, the
// roots recovered upward from an interior entry, or the whole container.
// Index postings resolve at the deriver's pinned timestamp, so the batch
// agrees with the occurrence view derivation will traverse.
func (p *Plan) rootBatch(dv *core.Deriver) ([]model.AtomID, error) {
	lookup := func(typeName, attr string, v model.Value) ([]model.AtomID, bool) {
		if ts := dv.TS(); ts != 0 {
			return p.db.IndexLookupAt(typeName, attr, v, ts)
		}
		return p.db.IndexLookup(typeName, attr, v)
	}
	switch p.Access.Kind {
	case IndexScan:
		if p.Access.Ranged {
			roots, err := p.rangeWalk(dv, p.Access.Root, p.presorted())
			if err == nil {
				p.Access.ActEntries = len(roots)
				p.Access.ActSurvivors = len(roots)
			}
			return roots, err
		}
		roots, ok := lookup(p.Access.Root, p.Access.Attr, p.Access.Value)
		if !ok {
			return nil, fmt.Errorf("plan: index on %s.%s vanished between compile and execute", p.Access.Root, p.Access.Attr)
		}
		p.Access.ActEntries = len(roots)
		p.Access.ActSurvivors = len(roots)
		return roots, nil
	case InteriorIndex:
		var entries []model.AtomID
		if p.Access.Ranged {
			var err error
			entries, err = p.rangeWalk(dv, p.Access.EntryType, false)
			if err != nil {
				return nil, err
			}
		} else {
			var ok bool
			entries, ok = lookup(p.Access.EntryType, p.Access.Attr, p.Access.Value)
			if !ok {
				return nil, fmt.Errorf("plan: index on %s.%s vanished between compile and execute", p.Access.EntryType, p.Access.Attr)
			}
		}
		p.Access.ActEntries = len(entries)
		roots, climbed, err := dv.RecoverRootsCounted(p.Access.EntryPos, entries)
		p.Access.ActClimb = int(climbed)
		p.Access.ActSurvivors = len(roots)
		return roots, err
	case IndexIntersect:
		// Every entry runs its own lookup and upward climb; the sorted
		// candidate-root sets (RecoverRoots returns ascending IDs)
		// intersect progressively, short-circuiting the remaining
		// entries the moment the running intersection empties.
		var inter []model.AtomID
		for i := range p.Access.Entries {
			en := &p.Access.Entries[i]
			entries, ok := lookup(en.Type, en.Attr, en.Value)
			if !ok {
				return nil, fmt.Errorf("plan: index on %s.%s vanished between compile and execute", en.Type, en.Attr)
			}
			en.ActEntries = len(entries)
			p.Access.ActEntries += len(entries)
			roots, climbed, err := dv.RecoverRootsCounted(en.Pos, entries)
			if err != nil {
				return nil, err
			}
			en.ActClimb = int(climbed)
			p.Access.ActClimb += int(climbed)
			en.ActRoots = len(roots)
			if i == 0 {
				inter = roots
			} else {
				inter = intersectSorted(inter, roots)
			}
			if len(inter) == 0 {
				break
			}
		}
		p.Access.ActSurvivors = len(inter)
		return inter, nil
	case OrderedScan:
		ts := dv.TS()
		if ts == 0 {
			ts = p.db.LatestTS()
		}
		var roots []model.AtomID
		ok := p.db.IndexOrderedAt(p.Access.Root, p.Access.Attr, ts, p.Order.Desc, func(_ model.Value, ids []model.AtomID) bool {
			roots = append(roots, ids...)
			return true
		})
		if !ok {
			return nil, fmt.Errorf("plan: index on %s.%s vanished between compile and execute", p.Access.Root, p.Access.Attr)
		}
		return roots, nil
	default:
		return dv.RootIDs(), nil
	}
}

// rangeWalk produces the atoms of typeName whose indexed attribute falls
// inside the access range, by a key-bounded walk of the ordered index
// view: keys below the low bound are skipped, the walk stops past the
// high bound, null keys never qualify (a null compares to nothing under
// predicate evaluation). keyOrder keeps the walk's key order — the
// ORDER BY ride — and walks descending when the order asks for it;
// otherwise the batch is re-sorted by atom ID so every access path
// yields the same deterministic root order.
func (p *Plan) rangeWalk(dv *core.Deriver, typeName string, keyOrder bool) ([]model.AtomID, error) {
	ts := dv.TS()
	if ts == 0 {
		ts = p.db.LatestTS()
	}
	descending := keyOrder && p.Order != nil && p.Order.Desc
	a := &p.Access
	var out []model.AtomID
	ok := p.db.IndexOrderedAt(typeName, a.Attr, ts, descending, func(v model.Value, ids []model.AtomID) bool {
		if v.IsNull() {
			return true
		}
		if a.HasLo {
			if c := v.Compare(a.Lo); c < 0 || (c == 0 && !a.LoInc) {
				// Below the low bound: ascending walks skip forward,
				// descending walks are done.
				return !descending
			}
		}
		if a.HasHi {
			if c := v.Compare(a.Hi); c > 0 || (c == 0 && !a.HiInc) {
				return descending
			}
		}
		out = append(out, ids...)
		return true
	})
	if !ok {
		return nil, fmt.Errorf("plan: index on %s.%s vanished between compile and execute", typeName, a.Attr)
	}
	if !keyOrder {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out, nil
}

// intersectSorted merges two ascending, deduplicated root-ID slices into
// their intersection.
func intersectSorted(a, b []model.AtomID) []model.AtomID {
	out := make([]model.AtomID, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// obsCount rounds an observed average cardinality to the integer the
// contest compares estimates with, floored at 1 (an observation exists,
// so the cardinality was not structurally zero).
func obsCount(avg float64) int {
	n := int(avg + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// applyFeedback re-ranks the residual chain around the feedback store's
// observed molecule-level pass rates and per-eval costs (no-op when fb
// is nil or has no observations for this plan). Fresh compiles, cache
// hits and Stream/Execute all go through it, so every surface — EXPLAIN
// (ESTIMATE) included — shows the chain the engine will actually run.
func (p *Plan) applyFeedback(fb *Feedback) {
	if fb.observeResiduals(p) {
		p.rankResiduals()
	}
}

// rankResiduals orders the residual chain by the (selectivity − 1)/cost
// criterion so short-circuit evaluation does the least expected work per
// molecule. The per-eval cost is the static conjCost shape score until
// the feedback store has observed a wall-clock cost for every conjunct
// of the chain; the two scales are incommensurable, so a chain never
// mixes them — all-observed chains rank on measured ns/eval (provenance
// [observed-cost] in EXPLAIN), everything else on the static score.
func (p *Plan) rankResiduals() {
	useObs := len(p.Residuals) > 0
	for i := range p.Residuals {
		if p.Residuals[i].ObsCost <= 0 {
			useObs = false
			break
		}
	}
	cost := func(r *ResidualConjunct) float64 {
		if useObs {
			return r.ObsCost
		}
		return r.Cost
	}
	for i := range p.Residuals {
		if useObs {
			p.Residuals[i].CostSrc = SrcObserved
		} else {
			p.Residuals[i].CostSrc = ""
		}
	}
	sort.SliceStable(p.Residuals, func(i, j int) bool {
		ri, rj := &p.Residuals[i], &p.Residuals[j]
		return residualRank(ri.Sel, cost(ri)) < residualRank(rj.Sel, cost(rj))
	})
}

// resetActuals zeroes every execution actual before a run.
func (p *Plan) resetActuals() {
	p.Access.ActRoots, p.Access.ActEntries, p.Access.ActClimb = 0, 0, 0
	p.Access.ActSurvivors = 0
	for i := range p.Access.Entries {
		e := &p.Access.Entries[i]
		e.ActEntries, e.ActRoots, e.ActClimb = 0, 0, 0
	}
	p.Derived, p.Out = 0, 0
	p.OrderPath, p.OrderCut = "", 0
	p.Executed = false
	for i := range p.Pushdowns {
		p.Pushdowns[i].Cut = 0
	}
	for i := range p.Residuals {
		p.Residuals[i].Evals, p.Residuals[i].Passed, p.Residuals[i].Nanos = 0, 0, 0
	}
}

// prepareRoots runs the access path and the pre-derivation root filter,
// returning the root batch entering derivation. Shared by the streaming
// and the barrier execution; cancelling ctx abandons the filter.
func (p *Plan) prepareRoots(ctx context.Context, dv *core.Deriver, eb *evalErrBox) ([]model.AtomID, error) {
	var rootFilter func(model.AtomID) bool
	var err error
	if p.Access.Filter != nil {
		rootFilter, err = p.atomPred(p.Access.Root, p.Access.Filter, eb, dv.TS())
		if err != nil {
			return nil, err
		}
	}
	roots, err := p.rootBatch(dv)
	if err != nil {
		return nil, err
	}
	if rootFilter != nil {
		roots, err = p.filterRoots(ctx, roots, rootFilter, eb)
		if err != nil {
			return nil, err
		}
	}
	if err := eb.get(); err != nil {
		return nil, err
	}
	p.Access.ActRoots = len(roots)
	return roots, nil
}

// parallelFilterMin is the root-batch size below which the pre-derivation
// root filter stays sequential: a per-atom comparison is so cheap that
// spawning goroutines for a small batch costs more than it saves.
const parallelFilterMin = 128

// filterRoots evaluates the pre-derivation root filter over the batch,
// fanning it over the worker pool when the batch is big enough to pay.
// Every worker fills a private range of keep flags and the compaction
// runs sequentially afterwards, so the output order (and therefore every
// downstream result order) is exactly the sequential one.
func (p *Plan) filterRoots(ctx context.Context, roots []model.AtomID, rootFilter func(model.AtomID) bool, eb *evalErrBox) ([]model.AtomID, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(roots) < parallelFilterMin || len(roots) < 2*workers {
		kept := make([]model.AtomID, 0, len(roots))
		for _, r := range roots {
			if eb.failed.Load() {
				break
			}
			if rootFilter(r) {
				kept = append(kept, r)
			}
		}
		return kept, nil
	}

	var stop atomic.Bool
	if ctx != nil {
		unregister := context.AfterFunc(ctx, func() { stop.Store(true) })
		defer unregister()
	}
	keep := make([]bool, len(roots))
	chunk := (len(roots) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := min(lo+chunk, len(roots))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if stop.Load() || eb.failed.Load() {
					return
				}
				keep[i] = rootFilter(roots[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	kept := make([]model.AtomID, 0, len(roots))
	for i, ok := range keep {
		if ok {
			kept = append(kept, roots[i])
		}
	}
	return kept, nil
}

// Execute runs the plan and returns the qualifying molecules, filling
// the actual-cardinality fields. It is a collect-all wrapper over
// Stream: the same fused pipeline (access path → parallel root filter →
// fused pruned derivation + cost-ordered residual chain on the worker
// pool) runs underneath, Execute merely drains the stream into a set —
// so the feedback machinery (actuals merge, [observed] re-ranking,
// execution recording) behaves identically on both surfaces. Execute
// never enlarges the database; algebra-mode callers propagate the
// returned set themselves (see Restrict).
func (p *Plan) Execute() (core.MoleculeSet, error) {
	return p.ExecuteContext(context.Background())
}

// ExecuteContext is Execute honoring a context: cancelling ctx stops the
// worker pool mid-derivation and returns ctx.Err().
func (p *Plan) ExecuteContext(ctx context.Context) (core.MoleculeSet, error) {
	st, err := p.Stream(ctx)
	if err != nil {
		return nil, err
	}
	var set core.MoleculeSet
	for {
		m, err := st.Next()
		if err != nil {
			st.Close()
			return nil, err
		}
		if m == nil {
			return set, nil
		}
		set = append(set, m)
	}
}

// CanCountFast reports whether the plan can answer a COUNT without
// deriving a single molecule: with no interior pushdowns and no residual
// chain, every root entering derivation yields exactly one qualifying
// molecule (a root always derives), so the count is the filtered
// root-batch length itself.
func (p *Plan) CanCountFast() bool {
	return len(p.Pushdowns) == 0 && len(p.Residuals) == 0
}

// ExecuteCountAt counts the plan's qualifying molecules through snap (nil
// pins the latest commit for the call). When CanCountFast holds, only the
// access path and the pre-derivation root filter run — zero derivations,
// zero molecules materialized. Otherwise the counting rides the stream,
// where a LIMIT still cancels derivation mid-run the moment the bound is
// reached (the errStreamLimit path).
func (p *Plan) ExecuteCountAt(ctx context.Context, snap *storage.Snapshot) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !p.CanCountFast() {
		st, err := p.StreamAt(ctx, snap)
		if err != nil {
			return 0, err
		}
		n := 0
		for {
			m, err := st.Next()
			if err != nil {
				st.Close()
				return 0, err
			}
			if m == nil {
				return n, nil
			}
			n++
		}
	}
	dv, err := core.NewDeriver(p.db, p.desc)
	if err != nil {
		return 0, err
	}
	if snap == nil {
		snap = p.db.Snapshot()
		defer snap.Close()
	}
	dv = dv.AtSnapshot(snap)
	p.resetActuals()
	roots, err := p.prepareRoots(ctx, dv, &evalErrBox{})
	if err != nil {
		return 0, err
	}
	n := len(roots)
	if p.Limit > 0 && n > p.Limit {
		n = p.Limit
	}
	p.Out = n
	p.Executed = true
	return n, nil
}

// ExecuteBarrier is the pre-fusion execution pipeline — parallel pruned
// derivation, then a barrier, then the residual chain on a single
// goroutine — retained as the reference implementation: the parity
// property tests check the fused pipeline's molecule sets and actuals
// against it, and the P11 benchmark measures the fusion win over it. It
// neither consults nor feeds the feedback store.
func (p *Plan) ExecuteBarrier() (core.MoleculeSet, error) {
	dv, err := core.NewDeriver(p.db, p.desc)
	if err != nil {
		return nil, err
	}
	// The barrier pipeline pins a snapshot exactly like Stream does, so
	// the fused-vs-barrier parity properties keep holding under
	// concurrent writers.
	snap := p.db.Snapshot()
	defer snap.Close()
	dv = dv.AtSnapshot(snap)
	p.resetActuals()

	var eb evalErrBox
	rootPos, _ := p.desc.Pos(p.Access.Root)
	checks := []core.PruneCheck{{Pos: rootPos, Qualifies: func([]model.AtomID) bool {
		return !eb.failed.Load()
	}}}
	cuts := make([]int64, len(p.Pushdowns))
	for i := range p.Pushdowns {
		pd := &p.Pushdowns[i]
		pred, err := p.atomPred(pd.Type, pd.Conjunct, &eb, snap.TS())
		if err != nil {
			return nil, err
		}
		checks = append(checks, core.PruneCheck{Pos: pd.Pos, Qualifies: func(atoms []model.AtomID) bool {
			for _, id := range atoms {
				if pred(id) {
					return true
				}
			}
			atomic.AddInt64(&cuts[i], 1)
			return false
		}})
	}

	roots, err := p.prepareRoots(context.Background(), dv, &eb)
	if err != nil {
		return nil, err
	}

	derived, err := dv.DeriveRootsPrunedParallel(roots, dv.PrepareChecks(checks), p.Workers)
	if err != nil {
		return nil, err
	}
	if err := eb.get(); err != nil {
		return nil, err
	}
	for i := range p.Pushdowns {
		p.Pushdowns[i].Cut = int(atomic.LoadInt64(&cuts[i]))
	}

	// The residual runs as a short-circuit chain over the cost-ordered
	// conjuncts: the first failing conjunct rejects the molecule and the
	// later (costlier or less selective) ones never run for it. Molecules
	// are visited in root-batch order, so results stay deterministic.
	var set core.MoleculeSet
	for _, m := range derived {
		if m == nil {
			continue // cut by a pushdown hook
		}
		p.Derived++
		b := core.Binding{DB: p.db, M: m, TS: snap.TS()}
		keep := true
		for i := range p.Residuals {
			r := &p.Residuals[i]
			r.Evals++
			ok, err := expr.EvalPredicate(r.Conjunct, b)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
			r.Passed++
		}
		if keep {
			set = append(set, m)
		}
	}
	p.Out = len(set)
	p.Executed = true
	return set, nil
}

// Summary is the one-line account of an executed plan.
func (p *Plan) Summary() string {
	cut := 0
	for _, pd := range p.Pushdowns {
		cut += pd.Cut
	}
	return fmt.Sprintf("%d roots in, %d pruned mid-derivation, %d derived, %d qualified",
		p.Access.ActRoots, cut, p.Derived, p.Out)
}

// Render prints the plan tree with estimated and (when executed) actual
// cardinalities, leaves first — the EXPLAIN output.
func (p *Plan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "structure: %s\n", p.desc)
	fmt.Fprintf(&b, "root:      %s\n", p.desc.Root())
	switch p.Access.Kind {
	case IndexScan:
		if p.Access.Ranged {
			fmt.Fprintf(&b, "access:    index range walk %s.%s %s (est %s roots [%s]%s)\n",
				p.Access.Root, p.Access.Attr, p.Access.rangeString(),
				approx(p.Access.EstRoots), p.Access.EstSource, p.actual(p.Access.ActRoots))
		} else {
			fmt.Fprintf(&b, "access:    index lookup %s.%s = %s (est %s roots [%s]%s)\n",
				p.Access.Root, p.Access.Attr, p.Access.Value,
				approx(p.Access.EstRoots), p.Access.EstSource, p.actual(p.Access.ActRoots))
		}
	case InteriorIndex:
		if p.Access.Ranged {
			fmt.Fprintf(&b, "access:    [interior-index] range entry at %s.%s %s (est %s atoms [%s]%s)\n",
				p.Access.EntryType, p.Access.Attr, p.Access.rangeString(),
				approx(p.Access.EstEntries), p.Access.EntrySource, p.actual(p.Access.ActEntries))
		} else {
			fmt.Fprintf(&b, "access:    [interior-index] entry at %s.%s = %s (est %s atoms [%s]%s)\n",
				p.Access.EntryType, p.Access.Attr, p.Access.Value,
				approx(p.Access.EstEntries), p.Access.EntrySource, p.actual(p.Access.ActEntries))
		}
		fmt.Fprintf(&b, "           recover roots upward %s (est %s roots [%s]%s)\n",
			strings.Join(p.Access.UpPath, " ⇡ "),
			approx(p.Access.EstRoots), p.Access.EstSource, p.actual(p.Access.ActRoots))
	case IndexIntersect:
		fmt.Fprintf(&b, "access:    [intersect] %d-entry index intersection (est %s roots [%s]%s)\n",
			len(p.Access.Entries), approx(p.Access.EstRoots), p.Access.EstSource, p.actual(p.Access.ActRoots))
		for _, en := range p.Access.Entries {
			fmt.Fprintf(&b, "           entry %s.%s = %s (est %s atoms [%s]%s) ⇡ %s (est %s roots%s)\n",
				en.Type, en.Attr, en.Value,
				approx(en.EstEntries), en.EntrySource, p.actual(en.ActEntries),
				strings.Join(en.UpPath, " ⇡ "), approx(en.EstRoots), p.actual(en.ActRoots))
		}
		if p.Executed {
			fmt.Fprintf(&b, "           sorted-merge intersection → %d surviving root(s)\n", p.Access.ActSurvivors)
		}
	case OrderedScan:
		fmt.Fprintf(&b, "access:    ordered index walk of %s.%s (est %s roots [%s]%s)\n",
			p.Access.Root, p.Access.Attr,
			approx(p.Access.EstRoots), p.Access.EstSource, p.actual(p.Access.ActRoots))
	default:
		fmt.Fprintf(&b, "access:    full scan of %s (est %s roots [%s]%s)\n",
			p.Access.Root, approx(p.Access.EstRoots), p.Access.EstSource, p.actual(p.Access.ActRoots))
	}
	if p.Access.Filter != nil {
		fmt.Fprintf(&b, "           root filter %s before derivation\n", p.Access.Filter)
	}
	if p.Recompiled {
		b.WriteString("provenance: [recompiled] — feedback drift marked this cache entry stale; the contest reran on calibrated numbers\n")
	}
	if p.Order != nil {
		dir := "asc"
		if p.Order.Desc {
			dir = "desc"
		}
		path := p.OrderPath
		if path == "" {
			path = p.orderPath()
		}
		line := fmt.Sprintf("order:     by %s.%s %s [%s]", p.desc.Root(), p.Order.Attr, dir, path)
		if path == OrderTopK {
			line += fmt.Sprintf(" (K=%d)", p.Limit)
			if p.Executed {
				line += fmt.Sprintf(" — bound cut %d of %d roots before derivation", p.OrderCut, p.Access.ActRoots)
			}
		}
		b.WriteString(line + "\n")
	}
	if len(p.Alternatives) > 1 {
		parts := make([]string, 0, len(p.Alternatives))
		for _, a := range p.Alternatives {
			s := fmt.Sprintf("%s (cost %s)", a.Label, approx(int(a.Cost+0.5)))
			if a.Chosen {
				s += " ← chosen"
			}
			parts = append(parts, s)
		}
		fmt.Fprintf(&b, "considered: %s\n", strings.Join(parts, "; "))
	}
	// The contest-constant provenance is only worth a line once the
	// feedback loop has replaced a fiat weight with a recorded actual.
	if p.Calibration.DerivSrc == SrcObserved || p.Calibration.ClimbSrc == SrcObserved || p.Calibration.TopKSrc == SrcObserved {
		line := fmt.Sprintf("costs:     derive ≈%.1f atoms/root [%s]", p.Calibration.DerivPerRoot, p.Calibration.DerivSrc)
		if p.Access.Kind == InteriorIndex && p.Calibration.ClimbSrc != "" {
			line += fmt.Sprintf("; climb ≈%.1f links/entry [%s]", p.Calibration.ClimbPerEntry, p.Calibration.ClimbSrc)
		}
		if p.Calibration.TopKSrc == SrcObserved {
			line += fmt.Sprintf("; top-k survival ≈%.2f [%s]", p.Calibration.TopKSurvival, p.Calibration.TopKSrc)
		}
		b.WriteString(line + "\n")
	}
	fmt.Fprintf(&b, "derive:    structure template over the atom network%s\n", p.actual(p.Derived))
	for _, pd := range p.Pushdowns {
		line := fmt.Sprintf("pushdown:  Σ↓[%s] at %s (est atom sel %.2f [%s]) — cuts the subtree when no %s atom qualifies",
			pd.Conjunct, pd.Type, pd.Sel, pd.Source, pd.Type)
		if p.Executed {
			line += fmt.Sprintf(" (cut %d)", pd.Cut)
		}
		b.WriteString(line + "\n")
	}
	for i, r := range p.Residuals {
		cost := fmt.Sprintf("cost %.1f", r.Cost)
		if r.CostSrc == SrcObserved {
			cost = fmt.Sprintf("cost ≈%.0fns [observed-cost]", r.ObsCost)
		}
		line := fmt.Sprintf("residual:  %d. Σ[%s] (est sel %.2f [%s], %s)",
			i+1, r.Conjunct, r.Sel, r.Source, cost)
		if p.Executed {
			line += fmt.Sprintf(" — passed %d/%d", r.Passed, r.Evals)
		}
		b.WriteString(line + "\n")
	}
	if p.Executed {
		fmt.Fprintf(&b, "output:    %d molecule(s)\n", p.Out)
	}
	return b.String()
}

// actual renders ", actual n" when the plan ran.
func (p *Plan) actual(n int) string {
	if !p.Executed {
		return ""
	}
	return fmt.Sprintf(", actual %d", n)
}

// approx renders an estimate as ≈n.
func approx(n int) string { return fmt.Sprintf("≈%d", n) }
