package bom_test

import (
	"testing"

	"mad/internal/bom"
)

func TestConfigValidation(t *testing.T) {
	bad := []bom.Config{
		{Depth: 0, Branch: 1},
		{Depth: 1, Branch: 0},
		{Depth: 1, Branch: 2, Share: 2},
		{Depth: 1, Branch: 2, Share: -1},
	}
	for _, cfg := range bad {
		if _, err := bom.Build(cfg); err == nil {
			t.Errorf("config %+v must fail", cfg)
		}
	}
}

func TestPureTreeCounts(t *testing.T) {
	b, err := bom.Build(bom.Config{Depth: 3, Branch: 2, Share: 0})
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 2 + 4 + 8 = 15 parts, 14 composition links.
	if b.NumParts() != 15 {
		t.Fatalf("parts = %d", b.NumParts())
	}
	if n, _ := b.DB.CountLinks("composition"); n != 14 {
		t.Fatalf("links = %d", n)
	}
	if err := b.DB.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestSharingReducesParts(t *testing.T) {
	tree, err := bom.Build(bom.Config{Depth: 4, Branch: 3, Share: 0})
	if err != nil {
		t.Fatal(err)
	}
	dag, err := bom.Build(bom.Config{Depth: 4, Branch: 3, Share: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dag.NumParts() >= tree.NumParts() {
		t.Fatalf("sharing must reduce part count: %d vs %d", dag.NumParts(), tree.NumParts())
	}
	// Links stay at Branch per parent regardless of sharing.
	lt, _ := tree.DB.CountLinks("composition")
	ld, _ := dag.DB.CountLinks("composition")
	if lt == 0 || ld == 0 {
		t.Fatal("links missing")
	}
	if err := dag.DB.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := bom.Build(bom.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := bom.Build(bom.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumParts() != b.NumParts() {
		t.Fatal("generator not deterministic")
	}
	na, _ := a.DB.CountLinks("composition")
	nb, _ := b.DB.CountLinks("composition")
	if na != nb {
		t.Fatal("link counts differ")
	}
}
