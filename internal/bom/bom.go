// Package bom generates bill-of-material databases — the paper's running
// example for reflexive link types and recursive queries: "when modeling
// the bill-of-material application with its super-component and
// sub-component view, we just have to define one reflexive link type
// called 'composition' on the atom type 'parts'" (Section 3.1).
//
// The generator builds a deterministic component DAG: Depth levels of
// parts where every part at level i is composed of Branch parts at level
// i+1, with an optional sharing knob that makes consecutive parents reuse
// sub-components (turning the tree into a DAG, as real BOMs are).
package bom

import (
	"fmt"

	"mad/internal/model"
	"mad/internal/storage"
)

// Config parameterizes the generator.
type Config struct {
	// Depth is the number of composition levels below the root (≥ 1).
	Depth int
	// Branch is the number of sub-components per part (≥ 1).
	Branch int
	// Share makes each part reuse this many of its left neighbour's
	// sub-components instead of minting fresh ones (0 = pure tree).
	Share int
}

// DefaultConfig returns a small representative BOM.
func DefaultConfig() Config { return Config{Depth: 4, Branch: 3, Share: 1} }

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.Depth < 1 || c.Branch < 1 {
		return fmt.Errorf("bom: Depth and Branch must be ≥ 1")
	}
	if c.Share < 0 || c.Share >= c.Branch {
		return fmt.Errorf("bom: Share must be in [0, Branch)")
	}
	return nil
}

// BOM is a generated bill-of-material database.
type BOM struct {
	DB     *storage.Database
	Cfg    Config
	Root   model.AtomID
	Levels [][]model.AtomID // parts per level, root first
}

// Schema declares the parts atom type and the reflexive composition link
// type on a database.
func Schema(db *storage.Database) error {
	if _, err := db.DefineAtomType("parts", model.MustDesc(
		model.AttrDesc{Name: "name", Kind: model.KString, NotNull: true},
		model.AttrDesc{Name: "weight", Kind: model.KFloat},
	)); err != nil {
		return err
	}
	// Side A = super-component, side B = sub-component; the symmetric link
	// serves both the parts-explosion and the where-used view.
	_, err := db.DefineLinkType("composition", model.LinkDesc{SideA: "parts", SideB: "parts"})
	return err
}

// Build generates the database.
func Build(cfg Config) (*BOM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db := storage.NewDatabase()
	if err := Schema(db); err != nil {
		return nil, err
	}
	b := &BOM{DB: db, Cfg: cfg}
	root, err := db.InsertAtom("parts", model.Str("part_0_0"), model.Float(1))
	if err != nil {
		return nil, err
	}
	b.Root = root
	b.Levels = append(b.Levels, []model.AtomID{root})
	for depth := 1; depth <= cfg.Depth; depth++ {
		parents := b.Levels[depth-1]
		var level []model.AtomID
		for pi, parent := range parents {
			for k := 0; k < cfg.Branch; k++ {
				var child model.AtomID
				if k < cfg.Share && pi > 0 && len(level) >= cfg.Branch {
					// Reuse the left neighbour's k-th fresh sub-component.
					child = level[len(level)-cfg.Branch+k]
				} else {
					child, err = db.InsertAtom("parts",
						model.Str(fmt.Sprintf("part_%d_%d", depth, len(level))),
						model.Float(float64(depth)+float64(k)/10))
					if err != nil {
						return nil, err
					}
					level = append(level, child)
				}
				if err := db.Connect("composition", parent, child); err != nil {
					return nil, err
				}
			}
		}
		b.Levels = append(b.Levels, level)
	}
	return b, nil
}

// NumParts returns the total part count.
func (b *BOM) NumParts() int {
	n := 0
	for _, l := range b.Levels {
		n += len(l)
	}
	return n
}
