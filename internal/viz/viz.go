// Package viz renders MAD schemas and molecule structures as Graphviz DOT
// documents: the MAD diagram of Fig. 1 (atom types as boxes, link types as
// undirected edges — links are symmetric) and the molecule-structure type
// graphs of Fig. 2 (directed, acyclic, rooted). It also renders a single
// molecule instance, marking subobjects shared between paths.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"mad/internal/core"
	"mad/internal/model"
	"mad/internal/storage"
)

// quote escapes a string for DOT.
func quote(s string) string {
	return `"` + strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s) + `"`
}

// SchemaDOT renders the database schema as an undirected graph.
func SchemaDOT(db *storage.Database) string {
	var b strings.Builder
	b.WriteString("graph mad_schema {\n  node [shape=box];\n")
	for _, at := range db.Schema().AtomTypes() {
		n, _ := db.CountAtoms(at.Name)
		fmt.Fprintf(&b, "  %s [label=%s];\n",
			quote(at.Name), quote(fmt.Sprintf("%s\n%d atoms", at.Name, n)))
	}
	for _, lt := range db.Schema().LinkTypes() {
		fmt.Fprintf(&b, "  %s -- %s [label=%s];\n",
			quote(lt.Desc.SideA), quote(lt.Desc.SideB), quote(lt.Name))
	}
	b.WriteString("}\n")
	return b.String()
}

// StructureDOT renders a molecule-type description as a directed graph
// with the root emphasized.
func StructureDOT(desc *core.Desc) string {
	var b strings.Builder
	b.WriteString("digraph molecule_structure {\n  rankdir=TB;\n  node [shape=box];\n")
	fmt.Fprintf(&b, "  %s [style=bold];\n", quote(desc.Root()))
	for _, t := range desc.Types() {
		if t != desc.Root() {
			fmt.Fprintf(&b, "  %s;\n", quote(t))
		}
	}
	for _, e := range desc.Edges() {
		fmt.Fprintf(&b, "  %s -> %s [label=%s];\n", quote(e.From), quote(e.To), quote(e.Link))
	}
	b.WriteString("}\n")
	return b.String()
}

// MoleculeDOT renders one molecule instance: component atoms as nodes
// (labelled with their first attribute), component links as edges; atoms
// reached over several paths are highlighted — the shared subobjects.
func MoleculeDOT(db *storage.Database, m *core.Molecule) string {
	var b strings.Builder
	b.WriteString("digraph molecule {\n  rankdir=TB;\n  node [shape=box];\n")
	d := m.Desc()

	// Count how many component links arrive at each atom; >1 means the
	// atom is shared between paths inside this molecule.
	indeg := make(map[model.AtomID]int)
	for e := 0; e < d.NumEdges(); e++ {
		for _, l := range m.LinksAt(e) {
			indeg[l.B]++
		}
	}
	var nodes []string
	for i, t := range d.Types() {
		for _, id := range m.AtomsAt(i) {
			label := t + "\n" + id.String()
			if a, ok := db.GetAtom(t, id); ok && len(a.Vals) > 0 {
				label = t + "\n" + a.Get(0).String()
			}
			attrs := fmt.Sprintf("label=%s", quote(label))
			if id == m.Root() {
				attrs += ", style=bold"
			}
			if indeg[id] > 1 {
				attrs += `, color=red, penwidth=2`
			}
			nodes = append(nodes, fmt.Sprintf("  %s [%s];\n", quote(id.String()), attrs))
		}
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		b.WriteString(n)
	}
	for e := 0; e < d.NumEdges(); e++ {
		edge := d.Edge(e)
		for _, l := range m.LinksAt(e) {
			fmt.Fprintf(&b, "  %s -> %s [label=%s];\n",
				quote(l.A.String()), quote(l.B.String()), quote(edge.Link))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
