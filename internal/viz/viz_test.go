package viz_test

import (
	"strings"
	"testing"

	"mad/internal/core"
	"mad/internal/geo"
	"mad/internal/viz"
)

func TestSchemaDOT(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	dot := viz.SchemaDOT(s.DB)
	for _, want := range []string{
		"graph mad_schema",
		`"state"`,
		`"state" -- "area" [label="state-area"]`,
		"10 atoms",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("schema DOT missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(dot, "}\n") {
		t.Fatal("unterminated DOT")
	}
}

func TestStructureDOT(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	desc, err := core.NewDesc(s.DB,
		[]string{"point", "edge", "area", "state", "net", "river"},
		[]core.DirectedLink{
			{Link: "edge-point", From: "point", To: "edge"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "state-area", From: "area", To: "state"},
			{Link: "net-edge", From: "edge", To: "net"},
			{Link: "river-net", From: "net", To: "river"},
		})
	if err != nil {
		t.Fatal(err)
	}
	dot := viz.StructureDOT(desc)
	for _, want := range []string{
		"digraph molecule_structure",
		`"point" [style=bold]`, // root emphasized
		`"edge" -> "area"`,
		`"edge" -> "net"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("structure DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestMoleculeDOTMarksSharing(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	mt, err := core.Define(s.DB, "pn",
		[]string{"point", "edge", "area", "state", "net", "river"},
		[]core.DirectedLink{
			{Link: "edge-point", From: "point", To: "edge"},
			{Link: "area-edge", From: "edge", To: "area"},
			{Link: "state-area", From: "area", To: "state"},
			{Link: "net-edge", From: "edge", To: "net"},
			{Link: "river-net", From: "net", To: "river"},
		})
	if err != nil {
		t.Fatal(err)
	}
	dv, err := mt.Deriver()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dv.DeriveFor(s.PN)
	if err != nil {
		t.Fatal(err)
	}
	dot := viz.MoleculeDOT(s.DB, m)
	// The Parana net atom is reached from two edges → shared → red.
	if !strings.Contains(dot, "color=red") {
		t.Fatalf("shared subobject not highlighted:\n%s", dot)
	}
	if !strings.Contains(dot, "style=bold") {
		t.Fatal("root not emphasized")
	}
	if !strings.Contains(dot, "Parana") {
		t.Fatal("attribute labels missing")
	}
}

func TestQuotingEscapes(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	dot := viz.SchemaDOT(s.DB)
	if strings.Contains(dot, "\"\"") {
		t.Fatal("double-double quotes suggest broken escaping")
	}
}
