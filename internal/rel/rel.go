// Package rel is the flat relational baseline the paper compares against
// (Chapter 2): relations, tuples, selection, projection, cartesian
// product, hash and nested-loop joins, union and difference. Its purpose
// is the P1 experiment — "a transformation to the relational model becomes
// quite cumbersome, since all n:m relationship types have to be modeled by
// some auxiliary relations. With this, the queries and their processing
// obviously become more complicated and perhaps less efficient" — so the
// package also imports a MAD database into the flat schema that
// transformation produces: one relation per atom type (with a surrogate id
// column) and one auxiliary relation per link type.
package rel

import (
	"fmt"
	"strings"

	"mad/internal/model"
	"mad/internal/storage"
)

// Col describes one relation column.
type Col struct {
	Name string
	Kind model.Kind
}

// Schema is an ordered list of uniquely named columns.
type Schema struct {
	cols  []Col
	index map[string]int
}

// NewSchema builds a schema, rejecting duplicate names.
func NewSchema(cols ...Col) (*Schema, error) {
	s := &Schema{cols: append([]Col(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		if c.Name == "" {
			return nil, fmt.Errorf("rel: empty column name")
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("rel: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema panicking on error (fixtures).
func MustSchema(cols ...Col) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the column count.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Col { return s.cols[i] }

// Lookup returns a column position by name.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Concat appends another schema (prefixing with p when names collide).
func (s *Schema) Concat(o *Schema, prefix string) *Schema {
	cols := append([]Col(nil), s.cols...)
	for _, c := range o.cols {
		name := c.Name
		if _, clash := s.index[name]; clash {
			name = prefix + "." + name
		}
		cols = append(cols, Col{Name: name, Kind: c.Kind})
	}
	ns, err := NewSchema(cols...)
	if err != nil {
		// A second collision can only happen when prefix already occurs;
		// disambiguate deterministically.
		for i := range cols {
			cols[i].Name = fmt.Sprintf("c%d_%s", i, cols[i].Name)
		}
		ns = MustSchema(cols...)
	}
	return ns
}

// Tuple is one row; it has exactly schema.Len() values.
type Tuple []model.Value

// Relation is a named multiset of tuples over a schema. The baseline
// follows SQL multiset semantics; Distinct removes duplicates when set
// semantics are required.
type Relation struct {
	Name   string
	Schema *Schema
	Tuples []Tuple
}

// New creates an empty relation.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Insert appends a tuple after arity checking.
func (r *Relation) Insert(vals ...model.Value) error {
	if len(vals) != r.Schema.Len() {
		return fmt.Errorf("rel: %s: %d values for %d columns", r.Name, len(vals), r.Schema.Len())
	}
	r.Tuples = append(r.Tuples, Tuple(vals))
	return nil
}

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.Tuples) }

// Select keeps the tuples satisfying the predicate.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.Name+"_sel", r.Schema)
	for _, t := range r.Tuples {
		if pred(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// SelectEq keeps tuples whose named column equals v.
func (r *Relation) SelectEq(col string, v model.Value) (*Relation, error) {
	i, ok := r.Schema.Lookup(col)
	if !ok {
		return nil, fmt.Errorf("rel: %s has no column %q", r.Name, col)
	}
	return r.Select(func(t Tuple) bool { return t[i].Equal(v) }), nil
}

// Project keeps the named columns, in the given order (multiset result;
// call Distinct for set semantics).
func (r *Relation) Project(cols ...string) (*Relation, error) {
	pos := make([]int, len(cols))
	newCols := make([]Col, len(cols))
	for i, c := range cols {
		p, ok := r.Schema.Lookup(c)
		if !ok {
			return nil, fmt.Errorf("rel: %s has no column %q", r.Name, c)
		}
		pos[i] = p
		newCols[i] = r.Schema.Col(p)
	}
	schema, err := NewSchema(newCols...)
	if err != nil {
		return nil, err
	}
	out := New(r.Name+"_proj", schema)
	for _, t := range r.Tuples {
		nt := make(Tuple, len(pos))
		for i, p := range pos {
			nt[i] = t[p]
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}

// tupleKey canonicalizes a tuple for hashing.
func tupleKey(t Tuple) string {
	var b strings.Builder
	for _, v := range t {
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}

// Distinct removes duplicate tuples, preserving first occurrence order.
func (r *Relation) Distinct() *Relation {
	out := New(r.Name, r.Schema)
	seen := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		k := tupleKey(t)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Tuples = append(out.Tuples, t)
	}
	return out
}

// Product is the cartesian product.
func (r *Relation) Product(o *Relation) *Relation {
	schema := r.Schema.Concat(o.Schema, o.Name)
	out := New(r.Name+"_x_"+o.Name, schema)
	for _, t := range r.Tuples {
		for _, u := range o.Tuples {
			nt := make(Tuple, 0, len(t)+len(u))
			nt = append(nt, t...)
			nt = append(nt, u...)
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out
}

// HashJoin equi-joins r and o on r.leftCol = o.rightCol, building a hash
// table over the smaller input.
func (r *Relation) HashJoin(o *Relation, leftCol, rightCol string) (*Relation, error) {
	li, ok := r.Schema.Lookup(leftCol)
	if !ok {
		return nil, fmt.Errorf("rel: %s has no column %q", r.Name, leftCol)
	}
	ri, ok := o.Schema.Lookup(rightCol)
	if !ok {
		return nil, fmt.Errorf("rel: %s has no column %q", o.Name, rightCol)
	}
	schema := r.Schema.Concat(o.Schema, o.Name)
	out := New(r.Name+"_join_"+o.Name, schema)
	// Build on the right, probe with the left (right is usually the
	// smaller auxiliary relation in the experiments; symmetry is fine).
	build := make(map[model.Key][]Tuple, len(o.Tuples))
	for _, u := range o.Tuples {
		k := u[ri].Key()
		build[k] = append(build[k], u)
	}
	for _, t := range r.Tuples {
		for _, u := range build[t[li].Key()] {
			nt := make(Tuple, 0, len(t)+len(u))
			nt = append(nt, t...)
			nt = append(nt, u...)
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out, nil
}

// NestedLoopJoin is the quadratic equi-join, kept as the naive comparator.
func (r *Relation) NestedLoopJoin(o *Relation, leftCol, rightCol string) (*Relation, error) {
	li, ok := r.Schema.Lookup(leftCol)
	if !ok {
		return nil, fmt.Errorf("rel: %s has no column %q", r.Name, leftCol)
	}
	ri, ok := o.Schema.Lookup(rightCol)
	if !ok {
		return nil, fmt.Errorf("rel: %s has no column %q", o.Name, rightCol)
	}
	schema := r.Schema.Concat(o.Schema, o.Name)
	out := New(r.Name+"_nljoin_"+o.Name, schema)
	for _, t := range r.Tuples {
		for _, u := range o.Tuples {
			if t[li].Equal(u[ri]) {
				nt := make(Tuple, 0, len(t)+len(u))
				nt = append(nt, t...)
				nt = append(nt, u...)
				out.Tuples = append(out.Tuples, nt)
			}
		}
	}
	return out, nil
}

// Union concatenates two union-compatible relations (multiset).
func (r *Relation) Union(o *Relation) (*Relation, error) {
	if err := compatible(r, o); err != nil {
		return nil, err
	}
	out := New(r.Name+"_union", r.Schema)
	out.Tuples = append(out.Tuples, r.Tuples...)
	out.Tuples = append(out.Tuples, o.Tuples...)
	return out, nil
}

// Diff returns the tuples of r not present in o (set difference).
func (r *Relation) Diff(o *Relation) (*Relation, error) {
	if err := compatible(r, o); err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(o.Tuples))
	for _, t := range o.Tuples {
		drop[tupleKey(t)] = true
	}
	out := New(r.Name+"_diff", r.Schema)
	for _, t := range r.Tuples {
		if !drop[tupleKey(t)] {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

func compatible(r, o *Relation) error {
	if r.Schema.Len() != o.Schema.Len() {
		return fmt.Errorf("rel: %s and %s are not union-compatible", r.Name, o.Name)
	}
	for i := 0; i < r.Schema.Len(); i++ {
		if r.Schema.Col(i).Kind != o.Schema.Col(i).Kind {
			return fmt.Errorf("rel: column %d kind mismatch", i)
		}
	}
	return nil
}

// Database is a named set of relations.
type Database struct {
	rels  map[string]*Relation
	order []string
}

// NewDatabase creates an empty relational database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Add registers a relation.
func (d *Database) Add(r *Relation) error {
	if _, dup := d.rels[r.Name]; dup {
		return fmt.Errorf("rel: relation %q already exists", r.Name)
	}
	d.rels[r.Name] = r
	d.order = append(d.order, r.Name)
	return nil
}

// Rel resolves a relation by name.
func (d *Database) Rel(name string) (*Relation, bool) {
	r, ok := d.rels[name]
	return r, ok
}

// Names lists the relations in registration order.
func (d *Database) Names() []string { return append([]string(nil), d.order...) }

// NumRelations returns the relation count — the schema-size figure of the
// F1 comparison.
func (d *Database) NumRelations() int { return len(d.rels) }

// ImportMAD performs the flat transformation of a MAD database the paper
// describes: one relation per atom type with a surrogate "id" column
// prepended, and one auxiliary relation "<link>__aux"(a_id, b_id) per link
// type — the general n:m encoding.
func ImportMAD(db *storage.Database) (*Database, error) {
	out := NewDatabase()
	for _, at := range db.Schema().AtomTypes() {
		cols := []Col{{Name: "id", Kind: model.KID}}
		for _, ad := range at.Desc.Attrs() {
			cols = append(cols, Col{Name: ad.Name, Kind: ad.Kind})
		}
		schema, err := NewSchema(cols...)
		if err != nil {
			return nil, err
		}
		r := New(at.Name, schema)
		if err := db.ScanAtoms(at.Name, func(a model.Atom) bool {
			vals := make([]model.Value, 0, len(a.Vals)+1)
			vals = append(vals, model.ID(a.ID))
			vals = append(vals, a.Vals...)
			r.Tuples = append(r.Tuples, vals)
			return true
		}); err != nil {
			return nil, err
		}
		if err := out.Add(r); err != nil {
			return nil, err
		}
	}
	for _, lt := range db.Schema().LinkTypes() {
		schema := MustSchema(Col{Name: "a_id", Kind: model.KID}, Col{Name: "b_id", Kind: model.KID})
		r := New(lt.Name+"__aux", schema)
		ls, ok := db.LinkStore(lt.Name)
		if !ok {
			return nil, fmt.Errorf("rel: link type %q has no store", lt.Name)
		}
		ls.Scan(func(l model.Link) bool {
			r.Tuples = append(r.Tuples, Tuple{model.ID(l.A), model.ID(l.B)})
			return true
		})
		if err := out.Add(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Renamed returns a view of the relation with one column renamed; tuples
// are shared with the receiver.
func (r *Relation) Renamed(old, new string) (*Relation, error) {
	i, ok := r.Schema.Lookup(old)
	if !ok {
		return nil, fmt.Errorf("rel: %s has no column %q", r.Name, old)
	}
	cols := make([]Col, r.Schema.Len())
	for j := 0; j < r.Schema.Len(); j++ {
		cols[j] = r.Schema.Col(j)
	}
	cols[i].Name = new
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return &Relation{Name: r.Name, Schema: schema, Tuples: r.Tuples}, nil
}
