package rel_test

import (
	"testing"

	"mad/internal/geo"
	"mad/internal/model"
	"mad/internal/rel"
)

func parts(t *testing.T) *rel.Relation {
	t.Helper()
	r := rel.New("parts", rel.MustSchema(
		rel.Col{Name: "id", Kind: model.KInt},
		rel.Col{Name: "name", Kind: model.KString},
		rel.Col{Name: "weight", Kind: model.KFloat},
	))
	rows := []struct {
		id     int64
		name   string
		weight float64
	}{
		{1, "bolt", 0.1}, {2, "nut", 0.05}, {3, "engine", 120}, {4, "bolt", 0.1},
	}
	for _, row := range rows {
		if err := r.Insert(model.Int(row.id), model.Str(row.name), model.Float(row.weight)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestSchemaValidation(t *testing.T) {
	if _, err := rel.NewSchema(rel.Col{Name: "a", Kind: model.KInt}, rel.Col{Name: "a", Kind: model.KInt}); err == nil {
		t.Fatal("duplicate column must fail")
	}
	if _, err := rel.NewSchema(rel.Col{Name: "", Kind: model.KInt}); err == nil {
		t.Fatal("empty column must fail")
	}
}

func TestInsertArity(t *testing.T) {
	r := parts(t)
	if err := r.Insert(model.Int(9)); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

func TestSelectProject(t *testing.T) {
	r := parts(t)
	sel, err := r.SelectEq("name", model.Str("bolt"))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 2 {
		t.Fatalf("select = %d", sel.Len())
	}
	proj, err := r.Project("name")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 4 {
		t.Fatal("projection is multiset")
	}
	if proj.Distinct().Len() != 3 {
		t.Fatal("distinct projection wrong")
	}
	if _, err := r.Project("nosuch"); err == nil {
		t.Fatal("unknown column must fail")
	}
}

func TestJoinsAgree(t *testing.T) {
	r := parts(t)
	s := rel.New("supply", rel.MustSchema(
		rel.Col{Name: "part_id", Kind: model.KInt},
		rel.Col{Name: "supplier", Kind: model.KString},
	))
	for _, row := range []struct {
		id  int64
		sup string
	}{{1, "acme"}, {1, "globex"}, {3, "acme"}} {
		if err := s.Insert(model.Int(row.id), model.Str(row.sup)); err != nil {
			t.Fatal(err)
		}
	}
	hj, err := r.HashJoin(s, "id", "part_id")
	if err != nil {
		t.Fatal(err)
	}
	nl, err := r.NestedLoopJoin(s, "id", "part_id")
	if err != nil {
		t.Fatal(err)
	}
	if hj.Len() != 3 || nl.Len() != 3 {
		t.Fatalf("hash=%d nested=%d, want 3", hj.Len(), nl.Len())
	}
	if hj.Schema.Len() != r.Schema.Len()+s.Schema.Len() {
		t.Fatal("join schema width wrong")
	}
}

func TestUnionDiff(t *testing.T) {
	r := parts(t)
	sel, _ := r.SelectEq("name", model.Str("bolt"))
	u, err := r.Union(sel)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 6 {
		t.Fatalf("union multiset = %d", u.Len())
	}
	d, err := r.Diff(sel)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 { // nut, engine
		t.Fatalf("diff = %d", d.Len())
	}
	other := rel.New("o", rel.MustSchema(rel.Col{Name: "x", Kind: model.KBool}))
	if _, err := r.Union(other); err == nil {
		t.Fatal("incompatible union must fail")
	}
}

func TestProductWidthAndCount(t *testing.T) {
	r := parts(t)
	s := rel.New("tag", rel.MustSchema(rel.Col{Name: "tag", Kind: model.KString}))
	_ = s.Insert(model.Str("x"))
	_ = s.Insert(model.Str("y"))
	p := r.Product(s)
	if p.Len() != 8 {
		t.Fatalf("product = %d", p.Len())
	}
}

func TestImportMAD(t *testing.T) {
	s, err := geo.BuildSample()
	if err != nil {
		t.Fatal(err)
	}
	rdb, err := rel.ImportMAD(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	// One relation per atom type + one auxiliary per link type.
	wantRels := s.DB.Schema().NumAtomTypes() + s.DB.Schema().NumLinkTypes()
	if rdb.NumRelations() != wantRels {
		t.Fatalf("relations = %d, want %d", rdb.NumRelations(), wantRels)
	}
	states, ok := rdb.Rel("state")
	if !ok || states.Len() != 10 {
		t.Fatalf("states = %v", states)
	}
	aux, ok := rdb.Rel("state-area__aux")
	if !ok || aux.Len() != 10 {
		t.Fatalf("aux = %v", aux)
	}
	// The mt_state query as the relational 7-way join pipeline.
	areas, _ := rdb.Rel("area")
	ae, _ := rdb.Rel("area-edge__aux")
	edges, _ := rdb.Rel("edge")
	ep, _ := rdb.Rel("edge-point__aux")
	points, _ := rdb.Rel("point")
	j1, err := states.HashJoin(aux, "id", "a_id")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := j1.HashJoin(areas, "b_id", "id")
	if err != nil {
		t.Fatal(err)
	}
	j3, err := j2.HashJoin(ae, "b_id", "a_id")
	if err == nil {
		_ = j3
	} else {
		t.Fatal(err)
	}
	// Column names collide across joins; verify the pipeline is at least
	// runnable and row counts grow with the fan-out.
	if j2.Len() != 10 {
		t.Fatalf("state⋈area = %d", j2.Len())
	}
	_ = edges
	_ = ep
	_ = points
}
