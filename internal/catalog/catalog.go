// Package catalog manages the schema half of a MAD database: the set of
// named atom types and link types (DB = <AT, LT>, Definition 3). The
// catalog owns naming — including the fresh-name machinery the propagation
// operator needs when it enlarges a database with renamed result types
// (Definition 9) — while occurrences (the atoms and links themselves) live
// in the storage engine.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mad/internal/model"
)

// AtomType is a named atom type: at = <aname, ad, av> minus the occurrence
// av, which the storage engine keeps per type number. The catalog assigns
// each atom type a dense TypeNum used inside atom identifiers.
type AtomType struct {
	Name string
	Num  model.TypeNum
	Desc *model.Desc
}

// String renders the atom type as a DDL-ish line.
func (t *AtomType) String() string {
	return fmt.Sprintf("ATOM TYPE %s %s", t.Name, t.Desc)
}

// LinkType is a named link type: lt = <lname, ld, lv> minus the occurrence
// lv, kept by the storage engine.
type LinkType struct {
	Name string
	Desc model.LinkDesc
}

// String renders the link type as a DDL-ish line.
func (t *LinkType) String() string {
	s := fmt.Sprintf("LINK TYPE %s BETWEEN %s AND %s", t.Name, t.Desc.SideA, t.Desc.SideB)
	if t.Desc.CardA != model.Unbounded || t.Desc.CardB != model.Unbounded {
		s += fmt.Sprintf(" [%s, %s]", t.Desc.CardA, t.Desc.CardB)
	}
	return s
}

// Schema is the mutable catalog of a database. All methods are safe for
// concurrent use: the storage engine serializes occurrence access, but
// name generation and lookups also happen outside its lock (e.g. from
// concurrent MQL sessions defining molecule types over one database).
type Schema struct {
	mu          sync.RWMutex
	atomsByName map[string]*AtomType
	atomsByNum  map[model.TypeNum]*AtomType
	linksByName map[string]*LinkType
	atomOrder   []string // declaration order, for stable rendering
	linkOrder   []string
	nextNum     model.TypeNum
	fresh       int // counter for generated names
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		atomsByName: make(map[string]*AtomType),
		atomsByNum:  make(map[model.TypeNum]*AtomType),
		linksByName: make(map[string]*LinkType),
		nextNum:     1, // type number 0 is reserved so the zero AtomID stays invalid
	}
}

// validName rejects empty names and names that would collide with MQL
// structure syntax (the '-' separator is allowed because the paper's own
// examples use it: "state-area"; parentheses, commas and whitespace are not).
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("catalog: empty name")
	}
	if strings.ContainsAny(name, " \t\n(),;'\"[]") {
		return fmt.Errorf("catalog: name %q contains reserved characters", name)
	}
	return nil
}

// AddAtomType declares a new atom type. Names are unique across atom types.
func (s *Schema) AddAtomType(name string, desc *model.Desc) (*AtomType, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := validName(name); err != nil {
		return nil, err
	}
	if desc == nil {
		return nil, fmt.Errorf("catalog: atom type %q has nil description", name)
	}
	if _, dup := s.atomsByName[name]; dup {
		return nil, fmt.Errorf("catalog: atom type %q already defined", name)
	}
	if _, dup := s.linksByName[name]; dup {
		return nil, fmt.Errorf("catalog: name %q already names a link type", name)
	}
	at := &AtomType{Name: name, Num: s.nextNum, Desc: desc}
	s.nextNum++
	s.atomsByName[name] = at
	s.atomsByNum[at.Num] = at
	s.atomOrder = append(s.atomOrder, name)
	return at, nil
}

// AddLinkType declares a new link type between two existing atom types.
// Several link types may connect the same pair, and a link type may be
// reflexive (Definition 2 commentary).
func (s *Schema) AddLinkType(name string, desc model.LinkDesc) (*LinkType, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := validName(name); err != nil {
		return nil, err
	}
	if _, dup := s.linksByName[name]; dup {
		return nil, fmt.Errorf("catalog: link type %q already defined", name)
	}
	if _, dup := s.atomsByName[name]; dup {
		return nil, fmt.Errorf("catalog: name %q already names an atom type", name)
	}
	if _, ok := s.atomsByName[desc.SideA]; !ok {
		return nil, fmt.Errorf("catalog: link type %q references unknown atom type %q", name, desc.SideA)
	}
	if _, ok := s.atomsByName[desc.SideB]; !ok {
		return nil, fmt.Errorf("catalog: link type %q references unknown atom type %q", name, desc.SideB)
	}
	lt := &LinkType{Name: name, Desc: desc}
	s.linksByName[name] = lt
	s.linkOrder = append(s.linkOrder, name)
	return lt, nil
}

// AtomType resolves an atom type by name (the atyp function of the paper).
func (s *Schema) AtomType(name string) (*AtomType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	at, ok := s.atomsByName[name]
	return at, ok
}

// AtomTypeByNum resolves an atom type by its dense number.
func (s *Schema) AtomTypeByNum(num model.TypeNum) (*AtomType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	at, ok := s.atomsByNum[num]
	return at, ok
}

// LinkType resolves a link type by name (the ltyp function of the paper).
func (s *Schema) LinkType(name string) (*LinkType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lt, ok := s.linksByName[name]
	return lt, ok
}

// AtomTypes returns the atom types in declaration order.
func (s *Schema) AtomTypes() []*AtomType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*AtomType, 0, len(s.atomOrder))
	for _, n := range s.atomOrder {
		out = append(out, s.atomsByName[n])
	}
	return out
}

// LinkTypes returns the link types in declaration order.
func (s *Schema) LinkTypes() []*LinkType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*LinkType, 0, len(s.linkOrder))
	for _, n := range s.linkOrder {
		out = append(out, s.linksByName[n])
	}
	return out
}

// LinkTypesOf returns every link type that has the named atom type on
// either side, in declaration order. This powers the symmetric "point
// neighborhood" navigation of Fig. 2.
func (s *Schema) LinkTypesOf(atomType string) []*LinkType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*LinkType
	for _, n := range s.linkOrder {
		if lt := s.linksByName[n]; lt.Desc.Mentions(atomType) {
			out = append(out, lt)
		}
	}
	return out
}

// LinkTypesBetween returns every link type connecting the two named atom
// types (order-insensitive).
func (s *Schema) LinkTypesBetween(a, b string) []*LinkType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*LinkType
	for _, n := range s.linkOrder {
		lt := s.linksByName[n]
		d := lt.Desc
		if (d.SideA == a && d.SideB == b) || (d.SideA == b && d.SideB == a) {
			out = append(out, lt)
		}
	}
	return out
}

// UniqueLinkBetween resolves the '-' shorthand of MQL: it returns the sole
// link type between two atom types and errs when none or several exist
// ("if there is only one link type defined between two atom types we can
// simplify the syntax ... by using the symbol '-'", Chapter 4).
func (s *Schema) UniqueLinkBetween(a, b string) (*LinkType, error) {
	lts := s.LinkTypesBetween(a, b)
	switch len(lts) {
	case 0:
		return nil, fmt.Errorf("catalog: no link type between %q and %q", a, b)
	case 1:
		return lts[0], nil
	}
	names := make([]string, len(lts))
	for i, lt := range lts {
		names[i] = lt.Name
	}
	sort.Strings(names)
	return nil, fmt.Errorf("catalog: ambiguous link between %q and %q: %s (name the link type explicitly)",
		a, b, strings.Join(names, ", "))
}

// FreshAtomName generates a name not yet used by any type, derived from
// base. Propagation uses it to install "renamed atom types" (Definition 9).
func (s *Schema) FreshAtomName(base string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if base == "" {
		base = "result"
	}
	for {
		s.fresh++
		name := fmt.Sprintf("%s~%d", base, s.fresh)
		if _, ok := s.atomsByName[name]; ok {
			continue
		}
		if _, ok := s.linksByName[name]; ok {
			continue
		}
		return name
	}
}

// FreshLinkName generates an unused link-type name derived from base.
func (s *Schema) FreshLinkName(base string) string {
	return s.FreshAtomName(base) // shared namespace rules
}

// HasName reports whether the name is taken by any atom or link type.
func (s *Schema) HasName(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.atomsByName[name]; ok {
		return true
	}
	_, ok := s.linksByName[name]
	return ok
}

// NumAtomTypes returns the count of declared atom types.
func (s *Schema) NumAtomTypes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.atomsByName)
}

// NumLinkTypes returns the count of declared link types.
func (s *Schema) NumLinkTypes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.linkOrder)
}

// Render prints the schema as DDL, one declaration per line, in
// declaration order — the MAD diagram of Fig. 1 in textual form.
func (s *Schema) Render() string {
	var b strings.Builder
	for _, at := range s.AtomTypes() {
		fmt.Fprintf(&b, "%s;\n", at)
	}
	for _, lt := range s.LinkTypes() {
		fmt.Fprintf(&b, "%s;\n", lt)
	}
	return b.String()
}
