package catalog_test

import (
	"strings"
	"testing"

	"mad/internal/catalog"
	"mad/internal/model"
)

func schemaWith(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema()
	desc := model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})
	for _, n := range []string{"a", "b", "c"} {
		if _, err := s.AddAtomType(n, desc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AddLinkType("ab", model.LinkDesc{SideA: "a", SideB: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddLinkType("bc", model.LinkDesc{SideA: "b", SideB: "c"}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNamespaceRules(t *testing.T) {
	s := schemaWith(t)
	desc := model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})
	if _, err := s.AddAtomType("a", desc); err == nil {
		t.Fatal("duplicate atom type must fail")
	}
	if _, err := s.AddAtomType("ab", desc); err == nil {
		t.Fatal("atom type colliding with link type must fail")
	}
	if _, err := s.AddLinkType("a", model.LinkDesc{SideA: "a", SideB: "b"}); err == nil {
		t.Fatal("link type colliding with atom type must fail")
	}
	if _, err := s.AddLinkType("xz", model.LinkDesc{SideA: "a", SideB: "nosuch"}); err == nil {
		t.Fatal("dangling link side must fail")
	}
	if _, err := s.AddAtomType("has space", desc); err == nil {
		t.Fatal("reserved characters must fail")
	}
	if _, err := s.AddAtomType("", desc); err == nil {
		t.Fatal("empty name must fail")
	}
	// Hyphenated names are allowed (paper's own style).
	if _, err := s.AddLinkType("a-c", model.LinkDesc{SideA: "a", SideB: "c"}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeNumbersDenseAndStable(t *testing.T) {
	s := schemaWith(t)
	a, _ := s.AtomType("a")
	b, _ := s.AtomType("b")
	if a.Num == 0 || b.Num == 0 {
		t.Fatal("type number 0 is reserved")
	}
	if a.Num == b.Num {
		t.Fatal("type numbers must be unique")
	}
	if got, ok := s.AtomTypeByNum(a.Num); !ok || got != a {
		t.Fatal("AtomTypeByNum broken")
	}
}

func TestLinkTypeQueries(t *testing.T) {
	s := schemaWith(t)
	if got := s.LinkTypesOf("b"); len(got) != 2 {
		t.Fatalf("LinkTypesOf(b) = %d", len(got))
	}
	if got := s.LinkTypesBetween("a", "b"); len(got) != 1 || got[0].Name != "ab" {
		t.Fatalf("LinkTypesBetween = %v", got)
	}
	if got := s.LinkTypesBetween("b", "a"); len(got) != 1 {
		t.Fatal("LinkTypesBetween must be order-insensitive")
	}
	lt, err := s.UniqueLinkBetween("a", "b")
	if err != nil || lt.Name != "ab" {
		t.Fatalf("UniqueLinkBetween = %v, %v", lt, err)
	}
	if _, err := s.UniqueLinkBetween("a", "c"); err == nil {
		t.Fatal("no link between a and c yet")
	}
	// Second link type between the same pair makes '-' ambiguous.
	if _, err := s.AddLinkType("ab2", model.LinkDesc{SideA: "a", SideB: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UniqueLinkBetween("a", "b"); err == nil {
		t.Fatal("ambiguous shorthand must fail")
	}
}

func TestFreshNames(t *testing.T) {
	s := schemaWith(t)
	n1 := s.FreshAtomName("a")
	n2 := s.FreshAtomName("a")
	if n1 == n2 {
		t.Fatal("fresh names must differ")
	}
	if s.HasName(n1) {
		t.Fatal("fresh names are not registered until defined")
	}
	desc := model.MustDesc(model.AttrDesc{Name: "v", Kind: model.KInt})
	if _, err := s.AddAtomType(n1, desc); err != nil {
		t.Fatalf("fresh name must be definable: %v", err)
	}
	n3 := s.FreshAtomName("")
	if n3 == "" || s.HasName(n3) {
		t.Fatal("empty base must still generate")
	}
}

func TestRenderDeterministic(t *testing.T) {
	s := schemaWith(t)
	out := s.Render()
	if !strings.Contains(out, "ATOM TYPE a") || !strings.Contains(out, "LINK TYPE ab BETWEEN a AND b") {
		t.Fatalf("render: %s", out)
	}
	if s.Render() != out {
		t.Fatal("render must be deterministic")
	}
	// Declaration order preserved.
	ia := strings.Index(out, "ATOM TYPE a")
	ib := strings.Index(out, "ATOM TYPE b")
	if ia > ib {
		t.Fatal("declaration order lost")
	}
}

func TestCardinalityRendering(t *testing.T) {
	s := schemaWith(t)
	lt, err := s.AddLinkType("lim", model.LinkDesc{
		SideA: "a", SideB: "b",
		CardA: model.Cardinality{Max: 1},
		CardB: model.Cardinality{Min: 1, Max: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lt.String(), "[0:1, 1:3]") {
		t.Fatalf("cardinality rendering: %s", lt)
	}
}
