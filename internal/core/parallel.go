package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"mad/internal/model"
	"mad/internal/storage"
)

// DeriveParallel materializes the molecule-type occurrence using the given
// number of worker goroutines (≤ 0 selects GOMAXPROCS). Molecules are
// independent — one per root atom — so derivation parallelizes perfectly
// as long as the database is not mutated concurrently; the result order is
// identical to Derive (root container order).
//
// The paper closes by proposing the molecule algebra "as a focal point for
// detailed investigations in query parallelism" (Chapter 5); this is the
// obvious first such investigation, and the P7 experiment measures it.
func (dv *Deriver) DeriveParallel(workers int) MoleculeSet {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	roots := dv.roots.IDs()
	if workers == 1 || len(roots) < 2*workers {
		return dv.Derive()
	}
	out := make(MoleculeSet, len(roots))
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derive(roots[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// DeriveRootsParallel is DeriveParallel restricted to the given roots.
func (dv *Deriver) DeriveRootsParallel(roots []model.AtomID, workers int) (MoleculeSet, error) {
	for _, r := range roots {
		if !dv.roots.Has(r) {
			return nil, errNotRoot(dv, r)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(roots) < 2*workers {
		return dv.DeriveRoots(roots)
	}
	out := make(MoleculeSet, len(roots))
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derive(roots[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// DeriveRootsPrunedParallel derives the molecules for the given roots
// under already-prepared prune hooks, fanning the roots out over the
// worker pool. The result is aligned with roots: entry i is nil when a
// hook cut the molecule at roots[i], so callers can both compact the set
// and count prunes while preserving root order. The hooks run
// concurrently — callers must make their Qualifies closures and any
// state they capture safe for concurrent use (the planner aggregates its
// EXPLAIN actuals atomically for exactly this reason).
func (dv *Deriver) DeriveRootsPrunedParallel(roots []model.AtomID, pc PreparedChecks, workers int) (MoleculeSet, error) {
	for _, r := range roots {
		if !dv.roots.Has(r) {
			return nil, errNotRoot(dv, r)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(MoleculeSet, len(roots))
	if workers == 1 || len(roots) < 2*workers {
		for i, r := range roots {
			out[i] = dv.derivePruned(r, pc)
		}
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derivePruned(roots[i], pc)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// FusedWorker is one worker's harness for a fused derive+filter batch.
// Checks are the worker-private prune hooks — their Qualifies closures
// may keep worker-local accumulators (cut counts) without any
// synchronization, because exactly one worker runs them. Keep is the
// filter sink, run on the worker goroutine immediately after a molecule
// survives every hook: returning false drops the molecule from the
// result (it is recycled into the worker's scratch, so rejected
// molecules never cross a goroutine boundary and cost no allocation on
// the next derivation).
type FusedWorker struct {
	Checks PreparedChecks
	Keep   func(m *Molecule) bool
}

// DefaultStreamBatch is the root-batch granularity of the streaming
// fused executor when the caller passes batchSize <= 0: large enough
// that the per-batch channel traffic disappears against the derivation
// work, small enough that the first molecules reach the consumer long
// before the root batch is exhausted.
const DefaultStreamBatch = 64

// DeriveRootsFusedParallel fuses derivation and filtering: each worker
// derives a molecule and immediately runs its filter sink on it in one
// pass, with no barrier between the two stages. newWorker is called on
// the coordinating goroutine, once per worker actually spawned (ids
// 0..n-1), so callers can set up per-worker accumulators lock-free and
// merge them after the call returns — the planner keeps its EXPLAIN
// actuals exact and race-free exactly this way.
//
// The result preserves root-batch order (molecules cut by a hook or
// rejected by the sink are compacted away), so the output stays
// deterministic for any worker count. Cancelling ctx stops every worker
// loop mid-derivation and returns ctx.Err(); ctx may be nil for
// uncancellable batches. The returned tally is the batch's derivation
// work — atoms fetched and links traversed — also already folded into
// the database's shared statistics.
func (dv *Deriver) DeriveRootsFusedParallel(ctx context.Context, roots []model.AtomID, workers int, newWorker func(w int) FusedWorker) (MoleculeSet, storage.WorkTally, error) {
	out := make(MoleculeSet, 0, len(roots))
	work, err := dv.DeriveRootsFusedStream(ctx, roots, workers, 0, newWorker, func(batch MoleculeSet) error {
		out = append(out, batch...)
		return nil
	})
	if err != nil {
		return nil, work, err
	}
	return out, work, nil
}

// DeriveRootsFusedStream is the incremental form of the fused executor:
// the root batch is cut into batches of batchSize (<= 0 selects
// DefaultStreamBatch), each batch is derived and filtered by one worker
// of the pool, and emit receives the surviving molecules of every batch
// — already compacted, in exact root-batch order — as soon as that batch
// is done. At most workers+1 batches are in flight at any moment, so the
// executor's footprint is bounded by O(workers × batchSize) molecules no
// matter how large the root batch is; batches are pipelined, not
// barriered — worker w derives batch k+1 while emit still drains batch k.
//
// emit runs on the calling goroutine; returning an error from it stops
// the workers and surfaces that error. Cancelling ctx stops every worker
// loop mid-derivation (checked per root) and returns ctx.Err(); no
// goroutine outlives the call either way. Empty batches are not emitted.
// newWorker follows the DeriveRootsFusedParallel contract: called on the
// calling goroutine, once per worker actually spawned.
func (dv *Deriver) DeriveRootsFusedStream(ctx context.Context, roots []model.AtomID, workers, batchSize int, newWorker func(w int) FusedWorker, emit func(MoleculeSet) error) (storage.WorkTally, error) {
	var work storage.WorkTally
	for _, r := range roots {
		if !dv.roots.Has(r) {
			return work, errNotRoot(dv, r)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if batchSize <= 0 {
		batchSize = DefaultStreamBatch
	}

	// stop flags cancellation to the per-root worker loops without the
	// mutex a ctx.Err() probe would take on every root.
	var stop atomic.Bool
	unregister := context.AfterFunc(ctx, func() { stop.Store(true) })
	defer unregister()

	// deriveBatch derives roots[lo:hi) under one worker's hooks and sink,
	// compacting in root order. A cancelled batch returns what it had —
	// the emitter discards it, so a partial batch is never delivered.
	deriveBatch := func(fw FusedWorker, sc *deriveScratch, lo, hi int) MoleculeSet {
		batch := make(MoleculeSet, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if stop.Load() {
				break
			}
			m := dv.deriveScratched(roots[i], fw.Checks, sc)
			if m == nil {
				continue
			}
			if fw.Keep != nil && !fw.Keep(m) {
				sc.recycle(m)
				continue
			}
			batch = append(batch, m)
		}
		return batch
	}

	numBatches := (len(roots) + batchSize - 1) / batchSize
	if workers > numBatches {
		workers = numBatches
	}
	if workers <= 1 {
		// Sequential fast path: one worker, batches emitted in place.
		sc := newDeriveScratch()
		fw := newWorker(0)
		var err error
		for bi := 0; bi < numBatches && err == nil; bi++ {
			lo := bi * batchSize
			hi := min(lo+batchSize, len(roots))
			batch := deriveBatch(fw, sc, lo, hi)
			// ctx.Err() — not the stop flag — decides: Err is set
			// synchronously with cancellation while the AfterFunc above
			// runs asynchronously, and stop implies Err non-nil, so a
			// batch cut short mid-derivation is never delivered.
			if err = ctx.Err(); err != nil {
				break
			}
			if len(batch) > 0 {
				err = emit(batch)
			}
		}
		work = sc.work
		sc.flush(dv.db)
		return work, err
	}

	// Pipelined path. Workers pull batch indexes from batchCh and publish
	// each finished batch into its dedicated one-slot channel, so a send
	// never blocks and the emitter below replays the batches in order.
	// The sem token bound keeps at most workers+1 batches in flight:
	// the dispatcher acquires before handing out an index, the emitter
	// releases after draining the batch.
	results := make([]chan MoleculeSet, numBatches)
	for i := range results {
		results[i] = make(chan MoleculeSet, 1)
	}
	batchCh := make(chan int)
	sem := make(chan struct{}, workers+1)
	abort := make(chan struct{}) // closed when the emitter bails early
	var wg sync.WaitGroup
	tallies := make([]storage.WorkTally, workers)
	for w := 0; w < workers; w++ {
		fw := newWorker(w)
		wg.Add(1)
		go func(w int, fw FusedWorker) {
			defer wg.Done()
			sc := newDeriveScratch()
			for bi := range batchCh {
				lo := bi * batchSize
				hi := min(lo+batchSize, len(roots))
				results[bi] <- deriveBatch(fw, sc, lo, hi)
			}
			tallies[w] = sc.work
			sc.flush(dv.db)
		}(w, fw)
	}
	go func() { // dispatcher
		defer close(batchCh)
		for bi := 0; bi < numBatches; bi++ {
			select {
			case sem <- struct{}{}:
			case <-abort:
				return
			}
			select {
			case batchCh <- bi:
			case <-abort:
				return
			}
		}
	}()

	err := func() error {
		defer close(abort)
		for bi := 0; bi < numBatches; bi++ {
			var batch MoleculeSet
			select {
			case batch = <-results[bi]:
			case <-ctx.Done():
				return ctx.Err()
			}
			// ctx.Err() — not the stop flag — decides: Err is set
			// synchronously with cancellation while the AfterFunc above
			// runs asynchronously, and a worker only cuts a batch short
			// after stop (which implies Err non-nil), so a partial batch
			// is never delivered.
			if err := ctx.Err(); err != nil {
				return err
			}
			if len(batch) > 0 {
				if err := emit(batch); err != nil {
					stop.Store(true)
					return err
				}
			}
			<-sem
		}
		return nil
	}()
	wg.Wait()
	for _, t := range tallies {
		work.Add(t)
	}
	return work, err
}

func errNotRoot(dv *Deriver, r model.AtomID) error {
	_, err := dv.DeriveFor(r) // reuse its error message
	return err
}
