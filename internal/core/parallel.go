package core

import (
	"runtime"
	"sync"

	"mad/internal/model"
)

// DeriveParallel materializes the molecule-type occurrence using the given
// number of worker goroutines (≤ 0 selects GOMAXPROCS). Molecules are
// independent — one per root atom — so derivation parallelizes perfectly
// as long as the database is not mutated concurrently; the result order is
// identical to Derive (root container order).
//
// The paper closes by proposing the molecule algebra "as a focal point for
// detailed investigations in query parallelism" (Chapter 5); this is the
// obvious first such investigation, and the P7 experiment measures it.
func (dv *Deriver) DeriveParallel(workers int) MoleculeSet {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	roots := dv.roots.IDs()
	if workers == 1 || len(roots) < 2*workers {
		return dv.Derive()
	}
	out := make(MoleculeSet, len(roots))
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derive(roots[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// DeriveRootsParallel is DeriveParallel restricted to the given roots.
func (dv *Deriver) DeriveRootsParallel(roots []model.AtomID, workers int) (MoleculeSet, error) {
	for _, r := range roots {
		if !dv.roots.Has(r) {
			return nil, errNotRoot(dv, r)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(roots) < 2*workers {
		return dv.DeriveRoots(roots)
	}
	out := make(MoleculeSet, len(roots))
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derive(roots[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// DeriveRootsPrunedParallel derives the molecules for the given roots
// under already-prepared prune hooks, fanning the roots out over the
// worker pool. The result is aligned with roots: entry i is nil when a
// hook cut the molecule at roots[i], so callers can both compact the set
// and count prunes while preserving root order. The hooks run
// concurrently — callers must make their Qualifies closures and any
// state they capture safe for concurrent use (the planner aggregates its
// EXPLAIN actuals atomically for exactly this reason).
func (dv *Deriver) DeriveRootsPrunedParallel(roots []model.AtomID, pc PreparedChecks, workers int) (MoleculeSet, error) {
	for _, r := range roots {
		if !dv.roots.Has(r) {
			return nil, errNotRoot(dv, r)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(MoleculeSet, len(roots))
	if workers == 1 || len(roots) < 2*workers {
		for i, r := range roots {
			out[i] = dv.derivePruned(r, pc)
		}
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derivePruned(roots[i], pc)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

func errNotRoot(dv *Deriver, r model.AtomID) error {
	_, err := dv.DeriveFor(r) // reuse its error message
	return err
}
