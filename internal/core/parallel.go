package core

import (
	"runtime"
	"sync"

	"mad/internal/model"
	"mad/internal/storage"
)

// DeriveParallel materializes the molecule-type occurrence using the given
// number of worker goroutines (≤ 0 selects GOMAXPROCS). Molecules are
// independent — one per root atom — so derivation parallelizes perfectly
// as long as the database is not mutated concurrently; the result order is
// identical to Derive (root container order).
//
// The paper closes by proposing the molecule algebra "as a focal point for
// detailed investigations in query parallelism" (Chapter 5); this is the
// obvious first such investigation, and the P7 experiment measures it.
func (dv *Deriver) DeriveParallel(workers int) MoleculeSet {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	roots := dv.roots.IDs()
	if workers == 1 || len(roots) < 2*workers {
		return dv.Derive()
	}
	out := make(MoleculeSet, len(roots))
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derive(roots[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// DeriveRootsParallel is DeriveParallel restricted to the given roots.
func (dv *Deriver) DeriveRootsParallel(roots []model.AtomID, workers int) (MoleculeSet, error) {
	for _, r := range roots {
		if !dv.roots.Has(r) {
			return nil, errNotRoot(dv, r)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(roots) < 2*workers {
		return dv.DeriveRoots(roots)
	}
	out := make(MoleculeSet, len(roots))
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derive(roots[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// DeriveRootsPrunedParallel derives the molecules for the given roots
// under already-prepared prune hooks, fanning the roots out over the
// worker pool. The result is aligned with roots: entry i is nil when a
// hook cut the molecule at roots[i], so callers can both compact the set
// and count prunes while preserving root order. The hooks run
// concurrently — callers must make their Qualifies closures and any
// state they capture safe for concurrent use (the planner aggregates its
// EXPLAIN actuals atomically for exactly this reason).
func (dv *Deriver) DeriveRootsPrunedParallel(roots []model.AtomID, pc PreparedChecks, workers int) (MoleculeSet, error) {
	for _, r := range roots {
		if !dv.roots.Has(r) {
			return nil, errNotRoot(dv, r)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(MoleculeSet, len(roots))
	if workers == 1 || len(roots) < 2*workers {
		for i, r := range roots {
			out[i] = dv.derivePruned(r, pc)
		}
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derivePruned(roots[i], pc)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// FusedWorker is one worker's harness for a fused derive+filter batch.
// Checks are the worker-private prune hooks — their Qualifies closures
// may keep worker-local accumulators (cut counts) without any
// synchronization, because exactly one worker runs them. Keep is the
// filter sink, run on the worker goroutine immediately after a molecule
// survives every hook: returning false drops the molecule from the
// result (it is recycled into the worker's scratch, so rejected
// molecules never cross a goroutine boundary and cost no allocation on
// the next derivation).
type FusedWorker struct {
	Checks PreparedChecks
	Keep   func(m *Molecule) bool
}

// DeriveRootsFusedParallel fuses derivation and filtering: each worker
// derives a molecule and immediately runs its filter sink on it in one
// pass, with no barrier between the two stages. newWorker is called on
// the coordinating goroutine, once per worker actually spawned (ids
// 0..n-1), so callers can set up per-worker accumulators lock-free and
// merge them after the call returns — the planner keeps its EXPLAIN
// actuals exact and race-free exactly this way.
//
// The result is aligned with roots: entry i is nil when a hook cut the
// molecule at roots[i] or the sink rejected it, so callers can compact
// while preserving root order (the output stays deterministic for any
// worker count). The returned tally is the batch's derivation work —
// atoms fetched and links traversed — also already folded into the
// database's shared statistics.
func (dv *Deriver) DeriveRootsFusedParallel(roots []model.AtomID, workers int, newWorker func(w int) FusedWorker) (MoleculeSet, storage.WorkTally, error) {
	var work storage.WorkTally
	for _, r := range roots {
		if !dv.roots.Has(r) {
			return nil, work, errNotRoot(dv, r)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(MoleculeSet, len(roots))
	runWorker := func(fw FusedWorker, sc *deriveScratch, lo, hi int) {
		for i := lo; i < hi; i++ {
			m := dv.deriveScratched(roots[i], fw.Checks, sc)
			if m == nil {
				continue
			}
			if fw.Keep != nil && !fw.Keep(m) {
				sc.recycle(m)
				continue
			}
			out[i] = m
		}
	}
	if workers == 1 || len(roots) < 2*workers {
		sc := newDeriveScratch()
		runWorker(newWorker(0), sc, 0, len(roots))
		work = sc.work
		sc.flush(dv.db)
		return out, work, nil
	}
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	tallies := make([]storage.WorkTally, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		fw := newWorker(w)
		wg.Add(1)
		go func(w int, fw FusedWorker, lo, hi int) {
			defer wg.Done()
			sc := newDeriveScratch()
			runWorker(fw, sc, lo, hi)
			tallies[w] = sc.work
			sc.flush(dv.db)
		}(w, fw, lo, hi)
	}
	wg.Wait()
	for _, t := range tallies {
		work.Add(t)
	}
	return out, work, nil
}

func errNotRoot(dv *Deriver, r model.AtomID) error {
	_, err := dv.DeriveFor(r) // reuse its error message
	return err
}
