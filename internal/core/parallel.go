package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"mad/internal/model"
	"mad/internal/storage"
)

// DeriveParallel materializes the molecule-type occurrence using the given
// number of worker goroutines (≤ 0 selects GOMAXPROCS). Molecules are
// independent — one per root atom — so derivation parallelizes perfectly
// as long as the database is not mutated concurrently; the result order is
// identical to Derive (root container order).
//
// The paper closes by proposing the molecule algebra "as a focal point for
// detailed investigations in query parallelism" (Chapter 5); this is the
// obvious first such investigation, and the P7 experiment measures it.
func (dv *Deriver) DeriveParallel(workers int) MoleculeSet {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	roots := dv.rootIDs()
	if workers == 1 || len(roots) < 2*workers {
		return dv.Derive()
	}
	out := make(MoleculeSet, len(roots))
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derive(roots[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// DeriveRootsParallel is DeriveParallel restricted to the given roots.
func (dv *Deriver) DeriveRootsParallel(roots []model.AtomID, workers int) (MoleculeSet, error) {
	for _, r := range roots {
		if !dv.rootHas(r) {
			return nil, errNotRoot(dv, r)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(roots) < 2*workers {
		return dv.DeriveRoots(roots)
	}
	out := make(MoleculeSet, len(roots))
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derive(roots[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// DeriveRootsPrunedParallel derives the molecules for the given roots
// under already-prepared prune hooks, fanning the roots out over the
// worker pool. The result is aligned with roots: entry i is nil when a
// hook cut the molecule at roots[i], so callers can both compact the set
// and count prunes while preserving root order. The hooks run
// concurrently — callers must make their Qualifies closures and any
// state they capture safe for concurrent use (the planner aggregates its
// EXPLAIN actuals atomically for exactly this reason).
func (dv *Deriver) DeriveRootsPrunedParallel(roots []model.AtomID, pc PreparedChecks, workers int) (MoleculeSet, error) {
	for _, r := range roots {
		if !dv.rootHas(r) {
			return nil, errNotRoot(dv, r)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(MoleculeSet, len(roots))
	if workers == 1 || len(roots) < 2*workers {
		for i, r := range roots {
			out[i] = dv.derivePruned(r, pc)
		}
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(roots) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(roots) {
			break
		}
		hi := lo + chunk
		if hi > len(roots) {
			hi = len(roots)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = dv.derivePruned(roots[i], pc)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// FusedWorker is one worker's harness for a fused derive+filter batch.
// Checks are the worker-private prune hooks — their Qualifies closures
// may keep worker-local accumulators (cut counts) without any
// synchronization, because exactly one worker runs them. Keep is the
// filter sink, run on the worker goroutine immediately after a molecule
// survives every hook: returning false drops the molecule from the
// result (it is recycled into the worker's scratch, so rejected
// molecules never cross a goroutine boundary and cost no allocation on
// the next derivation).
type FusedWorker struct {
	Checks PreparedChecks
	Keep   func(m *Molecule) bool
}

// DefaultStreamBatch is the root-batch granularity of the streaming
// fused executor when the caller passes batchSize <= 0: large enough
// that the per-batch channel traffic disappears against the derivation
// work, small enough that the first molecules reach the consumer long
// before the root batch is exhausted.
const DefaultStreamBatch = 64

// MinStreamBatch and MaxStreamBatch bound the adaptive batch sizer:
// under sustained backpressure batches shrink toward MinStreamBatch so
// the consumer keeps receiving fresh, small deliveries instead of
// waiting on big ones; with a fast consumer they grow toward
// MaxStreamBatch to amortize the per-batch hand-off.
const (
	MinStreamBatch = 16
	MaxStreamBatch = 1024
)

// BatchSizer adapts the streaming executor's root-batch granularity to
// consumer backpressure. The producer calls Observe after every emit —
// blocked=true when the bounded hand-off channel was full — and the
// dispatcher reads Size when cutting the next batch: a blocked emit
// halves the size immediately (backpressure is urgent), while growth
// waits for a streak of unblocked emits and then doubles (growth is
// speculative). Size and Observe may run on different goroutines.
type BatchSizer struct {
	size atomic.Int64
	fast atomic.Int64
	min  int64
	max  int64
}

// growStreak is how many consecutive unblocked emits the sizer wants to
// see before doubling the batch size.
const growStreak = 4

// NewBatchSizer returns a sizer starting at start (DefaultStreamBatch
// when <= 0), clamped to [min, max] (MinStreamBatch / MaxStreamBatch
// when <= 0). min == max pins the size, turning Observe into a no-op —
// how the fixed-batch entry point reuses the adaptive machinery.
func NewBatchSizer(start, min, max int) *BatchSizer {
	if start <= 0 {
		start = DefaultStreamBatch
	}
	if min <= 0 {
		min = MinStreamBatch
	}
	if max <= 0 {
		max = MaxStreamBatch
	}
	if max < min {
		max = min
	}
	if start < min {
		start = min
	}
	if start > max {
		start = max
	}
	b := &BatchSizer{min: int64(min), max: int64(max)}
	b.size.Store(int64(start))
	return b
}

// Size returns the current batch size.
func (b *BatchSizer) Size() int { return int(b.size.Load()) }

// Observe feeds one emit outcome back into the sizer.
func (b *BatchSizer) Observe(blocked bool) {
	if b.min == b.max {
		return
	}
	if blocked {
		b.fast.Store(0)
		if s := b.size.Load() / 2; s >= b.min {
			b.size.Store(s)
		} else {
			b.size.Store(b.min)
		}
		return
	}
	if b.fast.Add(1) >= growStreak {
		b.fast.Store(0)
		if s := b.size.Load() * 2; s <= b.max {
			b.size.Store(s)
		} else {
			b.size.Store(b.max)
		}
	}
}

// DeriveRootsFusedParallel fuses derivation and filtering: each worker
// derives a molecule and immediately runs its filter sink on it in one
// pass, with no barrier between the two stages. newWorker is called on
// the coordinating goroutine, once per worker actually spawned (ids
// 0..n-1), so callers can set up per-worker accumulators lock-free and
// merge them after the call returns — the planner keeps its EXPLAIN
// actuals exact and race-free exactly this way.
//
// The result preserves root-batch order (molecules cut by a hook or
// rejected by the sink are compacted away), so the output stays
// deterministic for any worker count. Cancelling ctx stops every worker
// loop mid-derivation and returns ctx.Err(); ctx may be nil for
// uncancellable batches. The returned tally is the batch's derivation
// work — atoms fetched and links traversed — also already folded into
// the database's shared statistics.
func (dv *Deriver) DeriveRootsFusedParallel(ctx context.Context, roots []model.AtomID, workers int, newWorker func(w int) FusedWorker) (MoleculeSet, storage.WorkTally, error) {
	out := make(MoleculeSet, 0, len(roots))
	work, err := dv.DeriveRootsFusedStream(ctx, roots, workers, 0, newWorker, func(batch MoleculeSet) error {
		out = append(out, batch...)
		return nil
	})
	if err != nil {
		return nil, work, err
	}
	return out, work, nil
}

// DeriveRootsFusedStream is the incremental form of the fused executor:
// the root batch is cut into batches of batchSize (<= 0 selects
// DefaultStreamBatch), each batch is derived and filtered by one worker
// of the pool, and emit receives the surviving molecules of every batch
// — already compacted, in exact root-batch order — as soon as that batch
// is done. At most workers+1 batches are in flight at any moment, so the
// executor's footprint is bounded by O(workers × batchSize) molecules no
// matter how large the root batch is; batches are pipelined, not
// barriered — worker w derives batch k+1 while emit still drains batch k.
//
// emit runs on the calling goroutine; returning an error from it stops
// the workers and surfaces that error. Cancelling ctx stops every worker
// loop mid-derivation (checked per root) and returns ctx.Err(); no
// goroutine outlives the call either way. Empty batches are not emitted.
// newWorker follows the DeriveRootsFusedParallel contract: called on the
// calling goroutine, once per worker actually spawned.
func (dv *Deriver) DeriveRootsFusedStream(ctx context.Context, roots []model.AtomID, workers, batchSize int, newWorker func(w int) FusedWorker, emit func(MoleculeSet) error) (storage.WorkTally, error) {
	if batchSize <= 0 {
		batchSize = DefaultStreamBatch
	}
	// A pinned sizer (min == max) reproduces the fixed-batch behaviour.
	return dv.DeriveRootsFusedStreamSized(ctx, roots, workers, NewBatchSizer(batchSize, batchSize, batchSize), newWorker, emit)
}

// fusedSlot is one dispatched root range of the streaming executor,
// with a one-slot channel its worker publishes the finished batch into
// so a worker send never blocks.
type fusedSlot struct {
	lo, hi int
	out    chan MoleculeSet
}

// DeriveRootsFusedStreamSized is DeriveRootsFusedStream with an adaptive
// batch sizer: the dispatcher consults sizer.Size when cutting each root
// range, so an emit callback that feeds outcomes back via sizer.Observe
// makes the batch granularity track consumer backpressure — batches
// shrink while the consumer's hand-off channel stays full and grow again
// once it drains faster than the workers derive. A nil sizer selects an
// adaptive one with the default bounds.
func (dv *Deriver) DeriveRootsFusedStreamSized(ctx context.Context, roots []model.AtomID, workers int, sizer *BatchSizer, newWorker func(w int) FusedWorker, emit func(MoleculeSet) error) (storage.WorkTally, error) {
	var work storage.WorkTally
	for _, r := range roots {
		if !dv.rootHas(r) {
			return work, errNotRoot(dv, r)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if sizer == nil {
		sizer = NewBatchSizer(0, 0, 0)
	}

	// stop flags cancellation to the per-root worker loops without the
	// mutex a ctx.Err() probe would take on every root.
	var stop atomic.Bool
	unregister := context.AfterFunc(ctx, func() { stop.Store(true) })
	defer unregister()

	// deriveBatch derives roots[lo:hi) under one worker's hooks and sink,
	// compacting in root order. A cancelled batch returns what it had —
	// the emitter discards it, so a partial batch is never delivered.
	deriveBatch := func(fw FusedWorker, sc *deriveScratch, lo, hi int) MoleculeSet {
		batch := make(MoleculeSet, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if stop.Load() {
				break
			}
			m := dv.deriveScratched(roots[i], fw.Checks, sc)
			if m == nil {
				continue
			}
			if fw.Keep != nil && !fw.Keep(m) {
				sc.recycle(m)
				continue
			}
			batch = append(batch, m)
		}
		return batch
	}

	// Clamp the pool by the batch count the current size implies: more
	// workers than batches would idle from the start (the size can only
	// shrink the count further mid-run, which just idles stragglers).
	if est := (len(roots) + sizer.Size() - 1) / sizer.Size(); workers > est {
		workers = est
	}
	if workers <= 1 {
		// Sequential fast path: one worker, batches emitted in place.
		sc := newDeriveScratch()
		fw := newWorker(0)
		var err error
		for lo := 0; lo < len(roots) && err == nil; {
			hi := min(lo+sizer.Size(), len(roots))
			batch := deriveBatch(fw, sc, lo, hi)
			lo = hi
			// ctx.Err() — not the stop flag — decides: Err is set
			// synchronously with cancellation while the AfterFunc above
			// runs asynchronously, and stop implies Err non-nil, so a
			// batch cut short mid-derivation is never delivered.
			if err = ctx.Err(); err != nil {
				break
			}
			if len(batch) > 0 {
				err = emit(batch)
			}
		}
		work = sc.work
		sc.flush(dv.db)
		return work, err
	}

	// Pipelined path. The dispatcher cuts root ranges at the sizer's
	// current granularity, workers pull the slots from workCh and publish
	// each finished batch into the slot's one-slot channel, and the
	// emitter below replays the slots in dispatch order. The sem token
	// bound keeps at most workers+1 slots in flight — the dispatcher
	// acquires before cutting a slot, the emitter releases after draining
	// it — which also bounds slotCh's occupancy, so its sends never block.
	slotCh := make(chan *fusedSlot, workers+1)
	workCh := make(chan *fusedSlot)
	sem := make(chan struct{}, workers+1)
	abort := make(chan struct{}) // closed when the emitter bails early
	var wg sync.WaitGroup
	tallies := make([]storage.WorkTally, workers)
	for w := 0; w < workers; w++ {
		fw := newWorker(w)
		wg.Add(1)
		go func(w int, fw FusedWorker) {
			defer wg.Done()
			sc := newDeriveScratch()
			for s := range workCh {
				s.out <- deriveBatch(fw, sc, s.lo, s.hi)
			}
			tallies[w] = sc.work
			sc.flush(dv.db)
		}(w, fw)
	}
	go func() { // dispatcher
		defer close(workCh)
		defer close(slotCh)
		for lo := 0; lo < len(roots); {
			hi := min(lo+sizer.Size(), len(roots))
			s := &fusedSlot{lo: lo, hi: hi, out: make(chan MoleculeSet, 1)}
			lo = hi
			select {
			case sem <- struct{}{}:
			case <-abort:
				return
			}
			slotCh <- s // never blocks: occupancy ≤ sem tokens ≤ cap
			select {
			case workCh <- s:
			case <-abort:
				return
			}
		}
	}()

	err := func() error {
		defer close(abort)
		for s := range slotCh {
			var batch MoleculeSet
			select {
			case batch = <-s.out:
			case <-ctx.Done():
				return ctx.Err()
			}
			// ctx.Err() — not the stop flag — decides: Err is set
			// synchronously with cancellation while the AfterFunc above
			// runs asynchronously, and a worker only cuts a batch short
			// after stop (which implies Err non-nil), so a partial batch
			// is never delivered.
			if err := ctx.Err(); err != nil {
				return err
			}
			if len(batch) > 0 {
				if err := emit(batch); err != nil {
					stop.Store(true)
					return err
				}
			}
			<-sem
		}
		return nil
	}()
	wg.Wait()
	for _, t := range tallies {
		work.Add(t)
	}
	return work, err
}

func errNotRoot(dv *Deriver, r model.AtomID) error {
	_, err := dv.DeriveFor(r) // reuse its error message
	return err
}
