package core

import (
	"fmt"

	"mad/internal/expr"
	"mad/internal/model"
	"mad/internal/storage"
)

// MoleculeType is mt = <mname, md, mv> (Definition 7): a name, a
// molecule-type description over a database, and the molecule-type
// occurrence mv = m_dom(md). The occurrence is *intensional* — derived on
// demand from the atom networks, which is exactly what makes MAD object
// definition dynamic — but can be materialized with Derive.
type MoleculeType struct {
	name string
	desc *Desc
	db   *storage.Database
}

// Define is the operator molecule-type definition α[mname, G](C)
// (Definition 8): it validates <C, G> against the database and yields the
// molecule type whose occurrence is m_dom(<C, G>). An empty name draws a
// fresh one from the catalog's generator.
func Define(db *storage.Database, name string, types []string, edges []DirectedLink) (*MoleculeType, error) {
	desc, err := NewDesc(db, types, edges)
	if err != nil {
		return nil, err
	}
	return DefineDesc(db, name, desc)
}

// DefineDesc is Define for an already-validated description.
func DefineDesc(db *storage.Database, name string, desc *Desc) (*MoleculeType, error) {
	if name == "" {
		name = db.Schema().FreshAtomName("mt")
	}
	return &MoleculeType{name: name, desc: desc, db: db}, nil
}

// Name returns mname.
func (mt *MoleculeType) Name() string { return mt.name }

// Desc returns the molecule-type description md.
func (mt *MoleculeType) Desc() *Desc { return mt.desc }

// DB returns the database the type is defined over (possibly an enlarged
// database produced by earlier operations).
func (mt *MoleculeType) DB() *storage.Database { return mt.db }

// Deriver returns a prepared derivation plan for the type.
func (mt *MoleculeType) Deriver() (*Deriver, error) { return NewDeriver(mt.db, mt.desc) }

// Derive materializes the occurrence mv = m_dom(md).
func (mt *MoleculeType) Derive() (MoleculeSet, error) {
	dv, err := mt.Deriver()
	if err != nil {
		return nil, err
	}
	return dv.Derive(), nil
}

// Cardinality returns |mv| without materializing molecules: one molecule
// is derived per root atom.
func (mt *MoleculeType) Cardinality() (int, error) {
	return mt.db.CountAtoms(mt.desc.Root())
}

// String renders the type in the paper's notation.
func (mt *MoleculeType) String() string {
	return fmt.Sprintf("<%s, %s, m_dom>", mt.name, mt.desc)
}

// Binding adapts a molecule to the expression engine: a qualified
// reference t.a yields the a-values of all component atoms of type t, so
// comparisons follow the existential semantics described in package expr;
// the molecule-type restriction predicate qual(m, restr(md)) of
// Definition 10 evaluates expressions under this binding.
type Binding struct {
	DB *storage.Database
	M  *Molecule

	// TS pins attribute fetches to one commit timestamp (zero = latest
	// view). Streamed executions set it to their cursor's snapshot so a
	// molecule derived at that snapshot is also *evaluated* against it —
	// a concurrent UPDATE can never make a residual predicate judge a
	// molecule against values from a different commit than its structure.
	TS uint64

	// Lookup, when non-nil, overrides component-atom reads entirely:
	// attribute fetches resolve through it instead of the container (and
	// TS is ignored). The read-your-writes query path sets it to a
	// transaction's EffAtom so predicates judge molecules against the
	// same effective view their structure was derived from.
	Lookup func(typeName string, id model.AtomID) (model.Atom, bool)
}

// ResolveUnqualified finds the unique component type of the structure
// declaring the attribute — THE rule for unqualified references, shared
// by molecule bindings, static scopes and the query planner so their
// resolutions can never diverge. It errs when no type or several types
// declare the attribute.
func ResolveUnqualified(db *storage.Database, d *Desc, attr string) (string, error) {
	var found string
	for _, t := range d.Types() {
		c, ok := db.Container(t)
		if !ok {
			continue
		}
		if _, has := c.Desc().Lookup(attr); has {
			if found != "" {
				return "", fmt.Errorf("expr: attribute %q is ambiguous (in %q and %q); qualify it", attr, found, t)
			}
			found = t
		}
	}
	if found == "" {
		return "", fmt.Errorf("expr: no component type declares attribute %q", attr)
	}
	return found, nil
}

// Resolve returns the referenced values across the molecule's component
// atoms. Unqualified names resolve when exactly one component type
// declares the attribute.
func (b Binding) Resolve(typeName, attr string) ([]model.Value, error) {
	d := b.M.Desc()
	if typeName == "" {
		found, err := ResolveUnqualified(b.DB, d, attr)
		if err != nil {
			return nil, err
		}
		typeName = found
	}
	pos, ok := d.Pos(typeName)
	if !ok {
		return nil, fmt.Errorf("expr: atom type %q is not part of the molecule structure", typeName)
	}
	c, ok := b.DB.Container(typeName)
	if !ok {
		return nil, fmt.Errorf("expr: atom type %q has no container", typeName)
	}
	i, ok := c.Desc().Lookup(attr)
	if !ok {
		return nil, fmt.Errorf("expr: atom type %q has no attribute %q", typeName, attr)
	}
	ids := b.M.AtomsAt(pos)
	out := make([]model.Value, 0, len(ids))
	for _, id := range ids {
		var a model.Atom
		var ok bool
		switch {
		case b.Lookup != nil:
			a, ok = b.Lookup(typeName, id)
		case b.TS != 0:
			a, ok = c.GetAt(id, b.TS)
		default:
			a, ok = c.Get(id)
		}
		if !ok {
			return nil, fmt.Errorf("expr: component atom %v missing from %q", id, typeName)
		}
		out = append(out, a.Get(i))
	}
	b.DB.Stats().AtomsFetched.Add(int64(len(ids)))
	return out, nil
}

// Count returns the number of component atoms of the named type.
func (b Binding) Count(typeName string) (int, error) {
	pos, ok := b.M.Desc().Pos(typeName)
	if !ok {
		return 0, fmt.Errorf("expr: atom type %q is not part of the molecule structure", typeName)
	}
	return len(b.M.AtomsAt(pos)), nil
}

// Scope statically validates qualification formulas against a
// molecule-type description (used by the MQL semantic analyzer).
type Scope struct {
	DB   *storage.Database
	Desc *Desc
}

// ResolveAttr resolves a (possibly unqualified) reference to its kind.
func (s Scope) ResolveAttr(typeName, attr string) (model.Kind, error) {
	if typeName == "" {
		found, err := ResolveUnqualified(s.DB, s.Desc, attr)
		if err != nil {
			return model.KNull, err
		}
		typeName = found
	}
	if !s.Desc.HasType(typeName) {
		return model.KNull, fmt.Errorf("expr: atom type %q is not part of the molecule structure", typeName)
	}
	c, ok := s.DB.Container(typeName)
	if !ok {
		return model.KNull, fmt.Errorf("expr: atom type %q has no container", typeName)
	}
	i, ok := c.Desc().Lookup(attr)
	if !ok {
		return model.KNull, fmt.Errorf("expr: atom type %q has no attribute %q", typeName, attr)
	}
	return c.Desc().Attr(i).Kind, nil
}

// HasType reports whether the type participates in the structure.
func (s Scope) HasType(typeName string) bool { return s.Desc.HasType(typeName) }

// compile-time interface checks
var (
	_ expr.Binding = Binding{}
	_ expr.Scope   = Scope{}
)
